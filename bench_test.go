// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§VII). Each benchmark runs the corresponding experiment
// harness and reports its headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduction alongside timing. Benchmarks default to a reduced
// scale to stay tractable; cmd/ursa-bench runs the same harnesses at full
// scale and writes the complete rendered tables.
package ursa_test

import (
	"testing"

	"ursa/internal/experiments"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/topology"
	"ursa/internal/workload"
)

// benchScale keeps each benchmark iteration in the seconds range.
const benchScale = 0.25

// benchOpts uses the default worker pool (GOMAXPROCS), so grid benchmarks
// report the parallel harness's wall clock. Results are identical at any
// parallelism; see BenchmarkFig11Sequential for the 1-worker baseline.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Scale: benchScale}
}

// BenchmarkFig02Backpressure regenerates the §III backpressure heat maps:
// per-tier p99 across nested-RPC, event-driven-RPC and MQ chains with the
// leaf tier CPU-throttled (Fig. 2).
func BenchmarkFig02Backpressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunBackpressure(benchOpts())
		nested := r.Inflation("nested-rpc")
		event := r.Inflation("event-rpc")
		mq := r.Inflation("mq")
		b.ReportMetric(nested[3], "nested_t4_inflation_x")
		b.ReportMetric(nested[1], "nested_t2_inflation_x")
		b.ReportMetric(event[3], "event_t4_inflation_x")
		b.ReportMetric(mq[3], "mq_t4_inflation_x")
	}
}

// BenchmarkFig04Profiling regenerates the backpressure-free threshold
// profiling curves for the post and timeline-read services (Fig. 4; paper
// thresholds 46.2% and 60.0%).
func BenchmarkFig04Profiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunProfiling(benchOpts())
		b.ReportMetric(r.Services["post-storage"].Threshold*100, "post_threshold_pct")
		b.ReportMetric(r.Services["user-timeline"].Threshold*100, "timeline_threshold_pct")
	}
}

// BenchmarkTab05Exploration regenerates Table V: exploration overhead of
// Ursa vs the 10k-sample ML baselines (paper: ≥16.7× fewer samples, ≥128×
// less time).
func BenchmarkTab05Exploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunExploration(benchOpts())
		for _, row := range r.Rows {
			switch row.App {
			case "social-network":
				b.ReportMetric(row.TimeRatio, "social_time_ratio_x")
				b.ReportMetric(float64(row.UrsaSamples), "social_ursa_samples")
			case "media-service":
				b.ReportMetric(row.TimeRatio, "media_time_ratio_x")
			case "video-pipeline":
				b.ReportMetric(row.TimeRatio, "video_time_ratio_x")
			}
		}
	}
}

// BenchmarkFig09ModelAccuracy regenerates the estimated-vs-measured latency
// study on the social network (Fig. 9; paper ratios 0.97–1.05).
func BenchmarkFig09ModelAccuracy(b *testing.B) {
	c, _ := experiments.AppCaseByName("social-network")
	classes := []string{
		topology.UploadPost, topology.UpdateTimeline,
		topology.ObjectDetect, topology.SentimentAnalysis,
	}
	for i := 0; i < b.N; i++ {
		r := experiments.RunAccuracy(benchOpts(), c, classes)
		b.ReportMetric(r.Ratio[topology.UploadPost], "upload_post_est_over_meas")
		b.ReportMetric(r.Ratio[topology.ObjectDetect], "object_detect_est_over_meas")
	}
}

// BenchmarkFig10ModelAccuracy regenerates Fig. 10 on the video pipeline
// (paper ratios 0.96 and 1.00 for low/high priority).
func BenchmarkFig10ModelAccuracy(b *testing.B) {
	c, _ := experiments.AppCaseByName("video-pipeline")
	classes := []string{topology.HighPriority, topology.LowPriority}
	for i := 0; i < b.N; i++ {
		r := experiments.RunAccuracy(benchOpts(), c, classes)
		b.ReportMetric(r.Ratio[topology.HighPriority], "high_est_over_meas")
		b.ReportMetric(r.Ratio[topology.LowPriority], "low_est_over_meas")
	}
}

// BenchmarkFig11SLAViolations regenerates the SLA-violation comparison on
// the social network (Fig. 11; full grid via cmd/ursa-bench -exp fig11).
func BenchmarkFig11SLAViolations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunComparison(benchOpts(), []string{"social-network"}, nil)
		if c, ok := r.Cell("social-network", "dynamic", "ursa"); ok {
			b.ReportMetric(c.ViolationRate*100, "ursa_dynamic_viol_pct")
		}
		if c, ok := r.Cell("social-network", "dynamic", "auto-a"); ok {
			b.ReportMetric(c.ViolationRate*100, "autoa_dynamic_viol_pct")
		}
		if c, ok := r.Cell("social-network", "dynamic", "sinan"); ok {
			b.ReportMetric(c.ViolationRate*100, "sinan_dynamic_viol_pct")
		}
	}
}

// BenchmarkFig11Sequential runs the same grid with Parallelism: 1 — the
// sequential baseline for the worker pool's speedup (the rendered tables are
// byte-identical; only wall clock differs).
func BenchmarkFig11Sequential(b *testing.B) {
	opts := benchOpts()
	opts.Parallelism = 1
	for i := 0; i < b.N; i++ {
		r := experiments.RunComparison(opts, []string{"social-network"}, nil)
		if c, ok := r.Cell("social-network", "dynamic", "ursa"); ok {
			b.ReportMetric(c.ViolationRate*100, "ursa_dynamic_viol_pct")
		}
	}
}

// BenchmarkFig12CPUAllocation regenerates the CPU-allocation comparison on
// the social network (Fig. 12).
func BenchmarkFig12CPUAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunComparison(benchOpts(), []string{"social-network"}, nil)
		for _, sys := range []string{"ursa", "sinan", "firm", "auto-b"} {
			if c, ok := r.Cell("social-network", "constant", sys); ok {
				b.ReportMetric(c.AvgCPUs, sys+"_constant_cpus")
			}
		}
	}
}

// BenchmarkFig13DiurnalTrace regenerates the diurnal scaling traces
// (Fig. 13): Ursa scaling representative social-network services with load.
func BenchmarkFig13DiurnalTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunDiurnal(benchOpts())
		lo, hi := r.ScalingRange("post-storage")
		b.ReportMetric(lo, "post_storage_min_cpus")
		b.ReportMetric(hi, "post_storage_max_cpus")
	}
}

// BenchmarkTab06ControlPlane regenerates Table VI: wall-clock control-plane
// latency for deployment decisions and model updates.
func BenchmarkTab06ControlPlane(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunControlPlane(benchOpts())
		b.ReportMetric(r.DeployMs["ursa"], "ursa_deploy_ms")
		b.ReportMetric(r.DeployMs["sinan"], "sinan_deploy_ms")
		b.ReportMetric(r.DeployMs["firm"], "firm_deploy_ms")
		b.ReportMetric(r.DeployMs["auto-a"], "auto_deploy_ms")
		b.ReportMetric(r.UpdateMs["ursa"], "ursa_update_ms")
	}
}

// BenchmarkFig14Adaptation regenerates the service-change study (Fig. 14):
// partial re-exploration after the object-detect model swap.
func BenchmarkFig14Adaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAdaptation(benchOpts())
		b.ReportMetric(float64(r.ReexploreSamples), "reexplore_samples")
		b.ReportMetric(r.ViolationRateOriginal*100, "original_req_viol_pct")
		b.ReportMetric(r.ViolationRateUpdated*100, "updated_req_viol_pct")
	}
}

// BenchmarkControllerDecision micro-benchmarks one Ursa control decision on
// a deployed social network — the critical-path cost Table VI attributes to
// Ursa's data plane.
func BenchmarkControllerDecision(b *testing.B) {
	opts := benchOpts()
	c, _ := experiments.AppCaseByName("social-network")
	mgr := opts.NewUrsaManager(c)
	eng := sim.NewEngine(1)
	app, err := services.NewApp(eng, c.Spec)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.New(eng, app, workload.Constant{Value: c.TotalRPS}, c.Mix)
	gen.Start()
	mgr.Attach(app)
	eng.RunUntil(5 * sim.Minute)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One simulated minute per iteration advances metrics and runs one
		// controller tick.
		eng.RunFor(sim.Minute)
	}
	b.StopTimer()
	mgr.Detach()
}

// BenchmarkAblation quantifies Ursa's design choices: the percentile-budget
// DP vs an equal split, the controller's t-test vs raw crossings, and the
// backpressure-free exploration boundary.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAblation(benchOpts())
		b.ReportMetric(r.BudgetCPUs, "budget_dp_cpus")
		b.ReportMetric(r.EqualSplitCPUs, "equal_split_cpus")
		b.ReportMetric(float64(r.TTestActions), "ttest_actions")
		b.ReportMetric(float64(r.NoTTestActions), "no_ttest_actions")
	}
}

// BenchmarkCorpus runs a small slice of the Fig. C1 generated-topology
// study (Ursa vs default autoscaling over seeded random applications); the
// full 100-topology × all-baselines corpus is `make bench-corpus`
// (BENCH_corpus.json).
func BenchmarkCorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunCorpus(benchOpts(),
			experiments.CorpusParams{N: 5, Systems: []string{"ursa", "auto-a"}})
		b.ReportMetric(r.Verdicts[0].WinRate*100, "win_rate_vs_auto_a_pct")
		b.ReportMetric(r.Worst[0].ViolationRate*100, "ursa_worst_viol_pct")
	}
}
