// ursa-bench regenerates the paper's tables and figures on the simulated
// testbed and writes the rendered results under an output directory.
//
// Usage:
//
//	ursa-bench -exp all -scale 1.0 -out results
//	ursa-bench -exp fig11 -apps social-network,media-service -scale 0.3
//
// Experiments: fig2, fig4, tab5, fig9, fig10, fig11 (includes fig12), fig13,
// tab6, fig14, figf1 (fault injection / recovery), figr1 (region failover),
// figr2 (follow-the-sun multi-region load), figc1 (generated-topology
// corpus; -corpus-n sizes it, -corpus-json also writes the machine-readable
// result), figs1 (fleet scaling curve; -figs1-nodes/-figs1-tenants size the
// sweeps, -figs1-json writes BENCH_placement.json), all. Scale < 1 shortens
// deployments and ML sample counts proportionally; shapes are preserved.
// -no-fast-resolve disables the incremental re-solve fast path everywhere,
// reproducing outputs from before it became the default.
//
// Independent simulation cells run concurrently on a bounded worker pool
// (-parallel, default GOMAXPROCS); results are merged in a canonical order,
// so any parallelism level writes byte-identical tables. -parallel 1 forces
// fully sequential execution.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ursa/internal/experiments"
	"ursa/internal/topology"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig2|fig4|tab5|fig9|fig10|fig11|fig13|tab6|fig14|figf1|figr1|figr2|figc1|figs1|ablation|all")
		scale    = flag.Float64("scale", 1.0, "duration/sample scale (1.0 = paper-like proportions)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("out", "results", "output directory")
		apps     = flag.String("apps", "", "comma-separated app filter for fig11/fig12")
		systems  = flag.String("systems", "", "comma-separated system filter for fig11/fig12")
		parallel = flag.Int("parallel", 0, "worker pool size for independent simulation cells (0 = GOMAXPROCS, 1 = sequential)")
		quiet    = flag.Bool("q", false, "suppress progress logging")
		noFast   = flag.Bool("no-fast-resolve", false, "disable the incremental re-solve fast path (full model solve on every Optimize)")

		corpusN    = flag.Int("corpus-n", 100, "number of generated topologies for figc1")
		corpusJSON = flag.String("corpus-json", "", "also write the figc1 result as JSON to this path")

		figs1Nodes   = flag.String("figs1-nodes", "", "comma-separated node counts for the figs1 node sweep (default 8..1024 doubling)")
		figs1Tenants = flag.String("figs1-tenants", "", "comma-separated tenant counts for the figs1 tenant sweep (default 1..32 doubling)")
		figs1JSON    = flag.String("figs1-json", "", "also write the figs1 result as JSON to this path (BENCH_placement.json)")
	)
	flag.Parse()

	opts := experiments.Options{Seed: *seed, Scale: *scale, Parallelism: *parallel, NoFastResolve: *noFast}
	if !*quiet {
		opts.Log = os.Stderr
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	var appFilter, sysFilter []string
	if *apps != "" {
		appFilter = strings.Split(*apps, ",")
	}
	if *systems != "" {
		sysFilter = strings.Split(*systems, ",")
	}

	type job struct {
		name string
		fn   func() string
	}
	var jobs []job
	run := func(name string, fn func() string) {
		if *exp != "all" && *exp != name {
			return
		}
		jobs = append(jobs, job{name, fn})
	}

	run("fig2", func() string { return experiments.RunBackpressure(opts).Render() })
	run("fig4", func() string { return experiments.RunProfiling(opts).Render() })
	run("tab5", func() string { return experiments.RunExploration(opts).Render() })
	run("fig9", func() string {
		c, _ := experiments.AppCaseByName("social-network")
		return experiments.RunAccuracy(opts, c, []string{
			topology.UploadPost, topology.UpdateTimeline,
			topology.ObjectDetect, topology.SentimentAnalysis,
		}).Render()
	})
	run("fig10", func() string {
		c, _ := experiments.AppCaseByName("video-pipeline")
		return experiments.RunAccuracy(opts, c, []string{
			topology.HighPriority, topology.LowPriority,
		}).Render()
	})
	run("fig11", func() string { return experiments.RunComparison(opts, appFilter, sysFilter).Render() })
	run("fig13", func() string { return experiments.RunDiurnal(opts).Render() })
	run("tab6", func() string { return experiments.RunControlPlane(opts).Render() })
	run("fig14", func() string { return experiments.RunAdaptation(opts).Render() })
	run("figf1", func() string { return experiments.RunResilience(opts).Render() })
	run("figr1", func() string { return experiments.RunRegionFailover(opts).Render() })
	run("figr2", func() string { return experiments.RunFollowTheSun(opts).Render() })
	run("figc1", func() string {
		r := experiments.RunCorpus(opts, experiments.CorpusParams{N: *corpusN, Systems: sysFilter})
		if *corpusJSON != "" {
			if err := os.WriteFile(*corpusJSON, r.JSON(), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *corpusJSON)
		}
		return r.Render()
	})
	run("figs1", func() string {
		r := experiments.RunScaling(opts, experiments.ScalingParams{
			Nodes:   parseInts(*figs1Nodes),
			Tenants: parseInts(*figs1Tenants),
		})
		if *figs1JSON != "" {
			if err := os.WriteFile(*figs1JSON, r.JSON(), 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *figs1JSON)
		}
		return r.Render()
	})
	run("ablation", func() string { return experiments.RunAblation(opts).Render() })

	// Experiments themselves are independent jobs: fan them over the same
	// bounded pool (single-deployment studies like fig13 then overlap with
	// the grids), but buffer their tables and emit everything in the
	// canonical order above, so output is identical at any parallelism.
	texts := make([]string, len(jobs))
	experiments.ForEach(opts, len(jobs), func(i int) {
		fmt.Fprintf(os.Stderr, "== %s ==\n", jobs[i].name)
		texts[i] = jobs[i].fn()
	})
	for i, j := range jobs {
		path := filepath.Join(*out, j.name+".txt")
		if err := os.WriteFile(path, []byte(texts[i]), 0o644); err != nil {
			fatal(err)
		}
		fmt.Print(texts[i])
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

// parseInts parses a comma-separated int list; empty input returns nil (the
// experiment's default sweep).
func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil || v <= 0 {
			fatal(fmt.Errorf("bad count %q in %q", part, s))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ursa-bench:", err)
	os.Exit(1)
}
