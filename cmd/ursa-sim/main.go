// ursa-sim runs one benchmark application under one resource manager and
// one load pattern, then prints a per-class SLA and resource report.
//
// Usage:
//
//	ursa-sim -app social-network -system ursa -load dynamic -minutes 30
//	ursa-sim -app video-pipeline -system auto-a -load constant
//	ursa-sim -topology examples/specs/two-tier.json -system ursa
//	ursa-sim -dump-topology media-service > my-app.yaml
//	ursa-sim -validate examples/specs/*.yaml examples/specs/*.json
//	ursa-sim -app social-network -system ursa -resilience -fail-node node-7 -fail-at 10 -fail-for 5
//	ursa-sim -app social-network -system ursa -regions -resilience -fail-region eu-west
//	ursa-sim -app social-network -system none -minutes 10 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Systems: ursa, sinan, firm, auto-a, auto-b, none.
//
// Topologies as data: -topology runs an application authored as a declarative
// spec file (YAML or JSON — the schema the built-in apps themselves use, see
// examples/specs/ and DESIGN.md §4g); -dump-topology prints any built-in app
// (or a generated corpus-s<seed>-<n> member) in that same canonical form, so
// the fastest way to author a variant is to dump a built-in and edit it.
// -validate type-checks spec files without running anything.
//
// Profiling: -cpuprofile / -memprofile write runtime/pprof profiles of the
// whole run (inspect with `go tool pprof`), so hot-path regressions are
// diagnosable without editing code.
//
// Fault injection: -fail-node crashes a node mid-run (the app is then bound
// to the paper's 8-node testbed so placements are real); -resilience arms
// client-side RPC timeouts and retries — required for runs where replicas
// can die, or callers of crashed replicas hang forever, exactly like an
// unprotected real client.
//
// Geo-regions: -regions deploys on the app's region topology (a spec file's
// regions: section, or the Fig.R1 three-region layout for the built-in
// social-network): replicas pin to their home region, cross-region RPC pays
// WAN latency, and -spill controls overflow placement. -fail-region fails
// every node of a region mid-run (timing via -fail-at/-fail-for).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"ursa/internal/baselines"
	"ursa/internal/baselines/autoscale"
	"ursa/internal/cluster"
	"ursa/internal/experiments"
	"ursa/internal/faults"
	"ursa/internal/metrics"
	"ursa/internal/region"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/spec"
	"ursa/internal/topology"
	"ursa/internal/trace"
	"ursa/internal/workload"
)

func main() {
	var (
		appName  = flag.String("app", "social-network", "application: social-network|vanilla-social-network|media-service|video-pipeline")
		system   = flag.String("system", "ursa", "manager: ursa|sinan|firm|auto-a|auto-b|none")
		load     = flag.String("load", "constant", "load pattern: constant|diurnal|burst")
		minutes  = flag.Int("minutes", 30, "deployment duration (simulated minutes)")
		rpsMult  = flag.Float64("rps", 1.0, "multiplier on the app's nominal RPS")
		seed     = flag.Int64("seed", 1, "random seed")
		scale    = flag.Float64("scale", 0.5, "training/exploration scale for managers that need it")
		parallel = flag.Int("parallel", 0, "worker pool size for harness-level preparation (0 = GOMAXPROCS, 1 = sequential)")
		quiet    = flag.Bool("q", false, "suppress progress logging")
		noFast   = flag.Bool("no-fast-resolve", false, "disable ursa's incremental re-solve fast path (full model solve on every Optimize)")
		specFile = flag.String("spec", "", "load a custom application spec from a JSON file (overrides -app; rate via -basirps)")
		baseRPS  = flag.Float64("basirps", 100, "nominal RPS for a -spec application")
		topoFile = flag.String("topology", "", "load an application from a declarative spec file (.yaml or .json, see examples/specs/); overrides -app")
		dumpTopo = flag.String("dump-topology", "", "print the canonical spec of a built-in app or corpus-s<seed>-<n> member, then exit")
		validate = flag.Bool("validate", false, "parse, validate and compile the spec files given as arguments, then exit (non-zero on error)")

		failNode   = flag.String("fail-node", "", "crash this node mid-run (e.g. node-7); binds the app to the paper testbed cluster")
		failAt     = flag.Float64("fail-at", 10, "minutes after warm-up at which the node (or region) fails")
		failFor    = flag.Float64("fail-for", 5, "minutes until the failed node (or region) recovers (0 = never)")
		resilience = flag.Bool("resilience", false, "enable client-side RPC timeouts and retries")

		useRegions = flag.Bool("regions", false, "deploy on the app's geo-region topology: the spec's regions: section, or the Fig.R1 layout for social-network")
		spill      = flag.Bool("spill", true, "with -regions, let placement overflow into the nearest foreign region when home is capacity-short")
		failRegion = flag.String("fail-region", "", "with -regions, fail every node of this region mid-run (timing via -fail-at/-fail-for)")

		telemetry   = flag.String("telemetry", "exact", "latency collectors: exact (raw samples) | sketch (bounded-error quantile sketches, flat memory)")
		sketchAlpha = flag.Float64("sketch-alpha", 0.01, "relative-error bound for -telemetry sketch")
		retention   = flag.Int("retention", 0, "trim telemetry windows older than this many minutes (0 = keep everything)")
		traceOut    = flag.String("trace-out", "", "stream sampled request traces to this file as OTLP-style JSONL spans")
		traceSample = flag.Int("trace-sample", 20, "with -trace-out, trace one of every N jobs")
		metricsOut  = flag.String("metrics-out", "", "write retained per-window latency/arrival metrics to this file as OTLP-style JSONL summary points")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write an end-of-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()

	if *validate {
		runValidate(flag.Args())
	}
	if *dumpTopo != "" {
		runDumpTopology(*dumpTopo)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting CPU profile: %v", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fatalf("closing %s: %v", *cpuProfile, err)
			}
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fatalf("%v", err)
		}
		runtime.GC() // settle live-heap accounting before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatalf("writing heap profile: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", *memProfile, err)
		}
	}()

	var c experiments.AppCase
	var regionTopo region.Topology
	switch {
	case *topoFile != "":
		data, err := os.ReadFile(*topoFile)
		if err != nil {
			fatalf("%v", err)
		}
		f, err := spec.Parse(filepath.Base(*topoFile), data)
		if err != nil {
			fatalf("%v", err)
		}
		compiled, err := spec.Build(f)
		if err != nil {
			fatalf("%v", err)
		}
		c = experiments.AppCase{Name: compiled.Spec.Name, Spec: compiled.Spec,
			Mix: compiled.Mix, TotalRPS: compiled.Rate}
		regionTopo = compiled.Regions
	case *specFile != "":
		data, err := os.ReadFile(*specFile)
		if err != nil {
			fatalf("%v", err)
		}
		var appSpec services.AppSpec
		if err := json.Unmarshal(data, &appSpec); err != nil {
			fatalf("decoding %s: %v", *specFile, err)
		}
		if err := appSpec.Validate(); err != nil {
			fatalf("spec invalid: %v", err)
		}
		mix := workload.Mix{}
		for _, class := range appSpec.EntryClasses() {
			mix[class] = 1
		}
		c = experiments.AppCase{Name: appSpec.Name, Spec: appSpec, Mix: mix, TotalRPS: *baseRPS}
	default:
		var ok bool
		c, ok = experiments.AppCaseByName(*appName)
		if !ok {
			fatalf("unknown app %q", *appName)
		}
	}
	c.TotalRPS *= *rpsMult

	opts := experiments.Options{Seed: *seed, Scale: *scale, Parallelism: *parallel, NoFastResolve: *noFast}
	if !*quiet {
		opts.Log = os.Stderr
	}

	var mgr baselines.Manager
	switch *system {
	case "ursa":
		mgr = opts.NewUrsaManager(c)
	case "sinan":
		mgr = opts.NewSinanManager(c)
	case "firm":
		mgr = opts.NewFirmManager(c)
	case "auto-a":
		mgr = autoscale.New(autoscale.AutoA())
	case "auto-b":
		mgr = autoscale.New(autoscale.AutoB())
	case "none":
		mgr = nil
	default:
		fatalf("unknown system %q", *system)
	}

	dur := sim.Time(*minutes) * sim.Minute
	var pattern workload.Pattern
	switch *load {
	case "constant":
		pattern = workload.Constant{Value: c.TotalRPS}
	case "diurnal":
		pattern = workload.Diurnal{Base: c.TotalRPS * 0.5, Peak: c.TotalRPS * 1.5, Period: dur}
	case "burst":
		pattern = workload.Modulate{
			Base: workload.Constant{Value: c.TotalRPS}, Factor: 2,
			Start: dur * 2 / 5, Len: dur / 5,
		}
	default:
		fatalf("unknown load %q", *load)
	}

	tc := services.TelemetryConfig{Retention: sim.Time(*retention) * sim.Minute}
	switch *telemetry {
	case "exact":
	case "sketch":
		tc.SketchAlpha = *sketchAlpha
	default:
		fatalf("unknown telemetry mode %q (want exact|sketch)", *telemetry)
	}

	eng := sim.NewEngine(*seed)
	warm := 2 * sim.Minute
	var (
		app           *services.App
		err           error
		in            *faults.Injector
		cl            *cluster.Cluster
		rm            *region.Map
		regionEvicted int
	)
	switch {
	case *useRegions:
		if *failNode != "" {
			fatalf("-regions is incompatible with -fail-node (use -fail-region)")
		}
		if regionTopo.Empty() && c.Name == "social-network" {
			// The built-in app has no regions: section; use the Fig.R1 layout.
			regionTopo = experiments.SocialNetworkRegions()
		}
		if regionTopo.Empty() {
			fatalf("-regions: %s declares no regions (add a regions: section to the spec)", c.Name)
		}
		regionTopo.Spill = *spill
		cl = regionTopo.Cluster(cluster.WorstFit)
		rm, err = region.New(regionTopo, cl)
		if err != nil {
			fatalf("%v", err)
		}
		if *failRegion != "" {
			known := false
			for _, g := range regionTopo.Groups {
				known = known || g.Name == *failRegion
			}
			if !known {
				fatalf("unknown region %q", *failRegion)
			}
		}
	case *failNode != "":
		// Node faults need real placements to evict: bind to the testbed.
		cl = cluster.PaperTestbed()
		if cl.NodeByName(*failNode) == nil {
			fatalf("unknown node %q (testbed has node-0 … node-7)", *failNode)
		}
	}
	if rm != nil {
		app, err = services.NewAppTelemetryPlaced(eng, c.Spec, 0, cl, tc, rm)
	} else {
		app, err = services.NewAppTelemetry(eng, c.Spec, 0, cl, tc)
	}
	if err != nil {
		fatalf("deploy: %v", err)
	}
	if rm != nil {
		rm.Bind(eng, app)
		if *failRegion != "" {
			eng.Schedule(warm+sim.Time(*failAt*float64(sim.Minute)), func() {
				regionEvicted = rm.FailRegion(*failRegion)
			})
			if *failFor > 0 {
				eng.Schedule(warm+sim.Time((*failAt+*failFor)*float64(sim.Minute)), func() {
					rm.RecoverRegion(*failRegion)
				})
			}
		}
	} else if cl != nil {
		in = faults.New(eng, app, cl, faults.Schedule{NodeFails: []faults.NodeFail{{
			Node: *failNode,
			At:   warm + sim.Time(*failAt*float64(sim.Minute)),
			For:  sim.Time(*failFor * float64(sim.Minute)),
		}}})
		in.Start()
	}

	var spanFile *os.File
	var spanW *trace.SpanWriter
	if *traceOut != "" {
		spanFile, err = os.Create(*traceOut)
		if err != nil {
			fatalf("%v", err)
		}
		tr := trace.NewTracer(*traceSample, 1) // stream, don't retain
		spanW = trace.NewSpanWriter(spanFile)
		tr.Exporter = spanW.ExportTrace
		app.Tracer = tr
	}
	if *resilience {
		app.SetResilience(services.ResiliencePolicy{})
	} else if *failNode != "" || *failRegion != "" {
		fmt.Fprintln(os.Stderr, "ursa-sim: warning: node/region failure without -resilience — callers of crashed replicas will hang")
	}
	gen := workload.New(eng, app, pattern, c.Mix)
	gen.Start()
	if mgr != nil {
		mgr.Attach(app)
	}
	eng.RunUntil(warm)
	alloc0 := app.AllocIntegralCPUSeconds()
	eng.RunUntil(warm + dur)
	alloc1 := app.AllocIntegralCPUSeconds()
	if mgr != nil {
		mgr.Detach()
	}
	if spanW != nil {
		// Close out jobs still in flight (or abandoned by faults) as
		// incomplete traces so the export captures them too.
		app.Tracer.FlushOpen(eng.Now())
		if err := spanW.Flush(); err != nil {
			fatalf("writing %s: %v", *traceOut, err)
		}
		if err := spanFile.Close(); err != nil {
			fatalf("closing %s: %v", *traceOut, err)
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, app, c.Spec); err != nil {
			fatalf("writing %s: %v", *metricsOut, err)
		}
	}

	fmt.Printf("\n%s under %s (%s load, %d min):\n\n", c.Name, *system, *load, *minutes)
	fmt.Printf("%-22s %10s %12s %10s\n", "class", "SLA(ms)", "pXX(ms)", "violated")
	totalWin, violWin := 0, 0
	for _, cs := range c.Spec.Classes {
		rec := app.E2E.Class(cs.Name)
		if rec == nil {
			continue
		}
		lat := rec.PercentileBetween(warm, warm+dur, cs.SLAPercentile)
		// Whole windows only: a trailing partial window would skew the
		// violation denominator (same rule as the experiment harness).
		tw, vw := 0, 0
		for w := warm; w+sim.Minute <= warm+dur; w += sim.Minute {
			if rec.Count(w, w+sim.Minute) == 0 {
				continue
			}
			tw++
			if rec.PercentileBetween(w, w+sim.Minute, cs.SLAPercentile) > cs.SLAMillis {
				vw++
			}
		}
		totalWin += tw
		violWin += vw
		fmt.Printf("%-22s %10.0f %12.1f %9.1f%%\n", cs.Name, cs.SLAMillis, lat,
			100*float64(vw)/float64(max(1, tw)))
	}
	fmt.Printf("\noverall SLA violation rate: %.1f%%\n", 100*float64(violWin)/float64(max(1, totalWin)))
	fmt.Printf("average CPU allocation:     %.1f cores\n", (alloc1-alloc0)/dur.Seconds())
	if mgr != nil {
		fmt.Printf("avg decision latency:       %.3f ms\n", mgr.AvgDecisionMillis())
	}
	fmt.Printf("jobs injected/completed:    %d/%d\n", app.InjectedJobs, app.CompletedJobs())
	if *resilience || in != nil || *failRegion != "" {
		fmt.Printf("jobs failed:                %d (availability %.3f%%)\n", app.FailedJobs(), app.Availability()*100)
	}
	if *resilience {
		var retries, errors float64
		for _, name := range app.ServiceNames() {
			svc := app.Service(name)
			retries += svc.RPCRetries.Total(0, warm+dur)
			errors += svc.RPCErrors.Total(0, warm+dur)
		}
		fmt.Printf("rpc errors/retries:         %.0f/%.0f\n", errors, retries)
	}
	if in != nil {
		fmt.Printf("replicas evicted:           %d (unschedulable events: %d)\n", in.Evicted, app.UnschedulableEvents)
		fmt.Println("\nfault log:")
		for _, rec := range in.Records {
			fmt.Printf("  %-12v %s\n", rec.At, rec.Detail)
		}
	}
	if rm != nil {
		fmt.Printf("replicas spilled:           %d (WAN hops: %d)\n", rm.Spilled, rm.WANHops)
		if *failRegion != "" {
			fmt.Printf("replicas evicted:           %d (unschedulable events: %d)\n", regionEvicted, app.UnschedulableEvents)
		}
	}
}

// writeMetrics dumps every retained telemetry window as OTLP-style JSONL
// summary points: end-to-end latency per class, per-service response time,
// and per-service arrival counts.
func writeMetrics(path string, app *services.App, spec services.AppSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	qs := []float64{50, 90, 99}
	var pts []metrics.MetricPoint
	for _, class := range app.E2E.Classes() {
		pts = append(pts, metrics.WindowPoints("ursa.e2e.latency",
			[]metrics.KV{{Key: "class", Value: class}}, app.E2E.Class(class), qs)...)
	}
	for _, name := range app.ServiceNames() {
		svc := app.Service(name)
		attrs := []metrics.KV{{Key: "service", Value: name}}
		pts = append(pts, metrics.WindowPoints("ursa.service.resptime", attrs, svc.RespTime, qs)...)
		pts = append(pts, metrics.CounterPoints("ursa.service.arrivals", attrs, svc.ArrivalsAll)...)
	}
	if err := metrics.WritePoints(f, pts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runValidate parses, validates and compiles each spec file, reporting every
// failure before exiting; the exit status is non-zero if any file is invalid.
func runValidate(files []string) {
	if len(files) == 0 {
		fatalf("-validate: no spec files given")
	}
	bad := 0
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err == nil {
			var f *spec.File
			if f, err = spec.Parse(filepath.Base(path), data); err == nil {
				_, err = spec.Build(f)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			bad++
			continue
		}
		fmt.Printf("ok %s\n", path)
	}
	if bad > 0 {
		fatalf("%d of %d spec files invalid", bad, len(files))
	}
	os.Exit(0)
}

// runDumpTopology prints the canonical spec of a built-in application or a
// generated corpus member (name form corpus-s<seed>-<index>, as reported by
// the figc1 experiment), then exits.
func runDumpTopology(name string) {
	var (
		appSpec services.AppSpec
		mix     workload.Mix
		rate    float64
	)
	if app, ok := topology.AppByName(name); ok {
		appSpec, mix, rate = app.Spec, app.Mix, app.RPS
	} else {
		var seed int64
		var idx int
		if n, _ := fmt.Sscanf(name, "corpus-s%d-%d", &seed, &idx); n == 2 {
			c, _, err := experiments.GenerateCorpusCase(seed, idx)
			if err != nil {
				fatalf("generating %s: %v", name, err)
			}
			appSpec, mix, rate = c.Spec, c.Mix, c.TotalRPS
		} else {
			fatalf("unknown topology %q (want a built-in app or corpus-s<seed>-<n>)", name)
		}
	}
	data, err := spec.Dump(appSpec, mix, rate)
	if err != nil {
		fatalf("dumping %s: %v", name, err)
	}
	os.Stdout.Write(data)
	os.Exit(0)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ursa-sim: "+format+"\n", args...)
	os.Exit(1)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
