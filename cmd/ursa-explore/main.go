// ursa-explore runs Ursa's offline pipeline for one application —
// backpressure-free threshold profiling (§III) followed by per-service LPR
// exploration (Algorithm 1) — and prints the resulting profiles and the
// optimised scaling thresholds.
//
// Usage:
//
//	ursa-explore -app social-network
//	ursa-explore -app media-service -service video-store
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ursa/internal/core"
	"ursa/internal/experiments"
)

func main() {
	var (
		appName = flag.String("app", "social-network", "application to explore")
		service = flag.String("service", "", "explore only this service")
		seed    = flag.Int64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 1.0, "sample-count scale")
		quiet   = flag.Bool("q", false, "suppress progress logging")
		save    = flag.String("save", "", "write exploration profiles to this JSON file")
		load    = flag.String("load", "", "reuse exploration profiles from this JSON file (skips exploring)")
	)
	flag.Parse()

	c, ok := experiments.AppCaseByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "ursa-explore: unknown app %q\n", *appName)
		os.Exit(1)
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale}
	if !*quiet {
		opts.Log = os.Stderr
	}

	var (
		ex       *core.Explorer
		profiles map[string]*core.Profile
	)
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ursa-explore: %v\n", err)
			os.Exit(1)
		}
		profiles, err = core.LoadProfiles(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ursa-explore: %v\n", err)
			os.Exit(1)
		}
		ex = &core.Explorer{Spec: c.Spec, Mix: c.Mix, TotalRPS: c.TotalRPS}
		fmt.Printf("application: %s  (load %.0f RPS)\n", c.Name, c.TotalRPS)
		fmt.Printf("exploration: loaded %d profiles from %s\n\n", len(profiles), *load)
	} else {
		var sum core.ExplorationSummary
		ex, profiles, sum = opts.UrsaProfiles(c)
		fmt.Printf("application: %s  (load %.0f RPS)\n", c.Name, c.TotalRPS)
		fmt.Printf("exploration: %d samples, wall %.2f h (parallel), total %.2f h\n\n",
			sum.Samples, sum.WallTime.Hours(), sum.TotalTime.Hours())
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ursa-explore: %v\n", err)
			os.Exit(1)
		}
		if err := core.SaveProfiles(f, profiles); err != nil {
			fmt.Fprintf(os.Stderr, "ursa-explore: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("profiles written to %s\n\n", *save)
	}

	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if *service != "" && name != *service {
			continue
		}
		p := profiles[name]
		fmt.Printf("%s  (cpus/replica %.0f, backpressure-free util %.0f%%, %d samples)\n",
			name, p.CPUsPerReplica, p.BackpressureUtil*100, p.Samples)
		fmt.Printf("  %9s %10s %8s", "replicas", "util", "class")
		fmt.Printf("%14s %10s %10s\n", "lpr(rps)", "p50(ms)", "p99(ms)")
		for _, pt := range p.Points {
			classes := make([]string, 0, len(pt.LPR))
			for cl := range pt.LPR {
				classes = append(classes, cl)
			}
			sort.Strings(classes)
			for i, cl := range classes {
				if i == 0 {
					fmt.Printf("  %9d %9.0f%% ", pt.Replicas, pt.Util*100)
				} else {
					fmt.Printf("  %9s %10s ", "", "")
				}
				fmt.Printf("%8s%14.1f %10.1f %10.1f\n",
					truncate(cl, 8), pt.LPR[cl], pt.LatencyAt(cl, 50), pt.LatencyAt(cl, 99))
			}
		}
		fmt.Println()
	}

	// Solve the model for the nominal load and print the chosen thresholds.
	mgr := core.NewManager(c.Spec, profiles)
	loads := (&core.Explorer{Spec: c.Spec, Mix: ex.Mix, TotalRPS: ex.TotalRPS}).ServiceClassLoads()
	sol, err := mgr.Optimize(loads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ursa-explore: optimization failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("optimised thresholds (projected total %.1f CPUs, %d B&B nodes):\n", sol.TotalCPUs, sol.Nodes)
	for _, name := range names {
		ch := sol.Choices[name]
		if ch == nil {
			continue
		}
		fmt.Printf("  %-20s", name)
		classes := make([]string, 0, len(ch.LPR))
		for cl := range ch.LPR {
			classes = append(classes, cl)
		}
		sort.Strings(classes)
		for _, cl := range classes {
			fmt.Printf(" %s=%.1frps", truncate(cl, 12), ch.LPR[cl])
		}
		fmt.Println()
	}
	fmt.Println("\ncertified latency bounds:")
	for class, bound := range sol.BoundMs {
		cs := c.Spec.Class(class)
		fmt.Printf("  %-22s p%.0f ≤ %8.1f ms  (SLA %.0f ms)\n", class, cs.SLAPercentile, bound, cs.SLAMillis)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
