// Command benchjson converts `go test -bench` text output on stdin into a
// JSON report on stdout. The Makefile's bench-core target pipes the simulator
// hot-path benchmarks through it to produce BENCH_simcore.json, so perf
// regressions in the event core and the virtual-time CPU scheduler are
// visible as diffs rather than buried in CI logs.
//
// Usage:
//
//	go test -bench=... -benchmem ./... | benchjson > BENCH_simcore.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Alloc stats always serialize: allocs_per_op == 0 is the event core's
	// headline number, not an absent measurement.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra holds custom units emitted via b.ReportMetric (e.g. the
	// telemetry benchmarks' "bytes/window"), keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkEngineSchedule-8   96741511   12.06 ns/op   0 B/op   0 allocs/op
//
// and returns ok=false for any other line.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so names are stable across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			// Custom b.ReportMetric units pass through by name.
			if strings.Contains(unit, "/") {
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] = v
			}
		}
	}
	if r.NsPerOp == 0 && r.Iterations == 0 {
		return Result{}, false
	}
	return r, true
}

func main() {
	rep := Report{Results: []Result{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		default:
			if r, ok := parseLine(line); ok {
				r.Package = pkg
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
}
