GO ?= go

.PHONY: all build vet test race check bench bench-core bench-decision bench-resilience bench-region bench-telemetry bench-throughput bench-corpus bench-placement validate-specs clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The parallel experiment
# harness (internal/experiments/pool.go) must stay clean here; CI runs this
# target on every push.
race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# bench-core runs the simulator hot-path microbenchmarks (event core,
# virtual-time CPU scheduler, windowed metrics queries) and writes a JSON
# report with ns/op and allocs/op per benchmark. Diff BENCH_simcore.json to
# spot perf regressions in the hot path.
bench-core:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine|BenchmarkCPUSched|BenchmarkWindowed' \
		-benchmem ./internal/sim ./internal/services ./internal/metrics \
		| $(GO) run ./cmd/benchjson > BENCH_simcore.json
	@echo wrote BENCH_simcore.json

# bench-decision runs the control-plane decision-path benchmarks: the
# optimised solver vs the retained reference implementation (the headline
# Solve/SolveReference ratio), the window estimator and the incremental
# re-solve fast path. Diff BENCH_decision.json to spot decision-latency
# regressions.
bench-decision:
	$(GO) test -run '^$$' -bench 'BenchmarkSolve|BenchmarkEstimateBound|BenchmarkResolveFastPath' \
		-benchmem ./internal/core \
		| $(GO) run ./cmd/benchjson > BENCH_decision.json
	@echo wrote BENCH_decision.json

# bench-resilience smoke-runs the Fig. F1 chaos grid (node failure +
# recovery on the paper testbed) once at small scale: every fault-injection
# path — crash-eviction, manager re-placement, retries — executes end to end.
bench-resilience:
	$(GO) test -run '^$$' -bench 'BenchmarkResilience' -benchtime=1x ./internal/experiments

# bench-region smoke-runs the multi-region grids once at small scale —
# Fig. R1 (whole-region outage: correlated eviction, cross-region re-solve,
# WAN-delayed RPC) and Fig. R2 (follow-the-sun spill placement) — so every
# geo-topology path executes end to end. Diff BENCH_region.json to spot
# run-time regressions in the region layer.
bench-region:
	$(GO) test -run '^$$' -bench 'BenchmarkRegion' -benchtime=1x ./internal/experiments \
		| $(GO) run ./cmd/benchjson > BENCH_region.json
	@echo wrote BENCH_region.json

# bench-telemetry runs the bounded-memory telemetry benchmarks: quantile
# sketch add/merge/query ns/op plus the headline bytes/window comparison
# between exact (raw-sample) and sketch-backed windows. Diff
# BENCH_telemetry.json to spot sketch ingest regressions or memory growth.
bench-telemetry:
	$(GO) test -run '^$$' -bench 'BenchmarkSketch|BenchmarkWindowedSketch|BenchmarkTelemetry' \
		-benchmem ./internal/stats ./internal/metrics \
		| $(GO) run ./cmd/benchjson > BENCH_telemetry.json
	@echo wrote BENCH_telemetry.json

# bench-throughput runs the single-run throughput headline: a 10×-scale
# social-network app at 1000 RPS, reporting wall-clock events/sec and heap
# allocations per injected request for the default fast path ("fused":
# batched arrivals + pooled step frames) and the retained pre-PR
# implementation ("reference"). Diff BENCH_throughput.json to track the
# events/sec trajectory PR over PR.
bench-throughput:
	$(GO) test -run '^$$' -bench 'BenchmarkThroughput' -benchtime=3x \
		-benchmem ./internal/experiments \
		| $(GO) run ./cmd/benchjson > BENCH_throughput.json
	@echo wrote BENCH_throughput.json

# bench-corpus runs the Fig. C1 generalization study: 100 topologies sampled
# from the seeded random generator (internal/spec), each deployed under Ursa
# and every baseline, reporting per-baseline win rates and worst cells. The
# whole corpus is a pure function of the seed, so BENCH_corpus.json is
# byte-reproducible; diff it to spot decision-quality regressions on apps
# nobody hand-tuned. Takes ~15 minutes at scale 0.25.
bench-corpus:
	$(GO) run ./cmd/ursa-bench -exp figc1 -scale 0.25 -corpus-n 100 \
		-corpus-json BENCH_corpus.json -out results
	@echo wrote BENCH_corpus.json

# bench-placement runs the Fig. S1 fleet-scaling study: a generated tenant
# fleet deployed behind the shared arbiter on synthetic clusters from 8 to
# 1024 nodes, plus the Place+Release micro-timing of the free-capacity index
# against the retained linear scan. Diff BENCH_placement.json's place_speedup
# column to track the indexed-placement headline (≥10× at 1024 nodes).
bench-placement:
	$(GO) test -run '^$$' -bench 'BenchmarkPlace|BenchmarkSetDown' \
		-benchmem ./internal/cluster
	$(GO) run ./cmd/ursa-bench -exp figs1 -scale 0.25 \
		-figs1-json BENCH_placement.json -out results
	@echo wrote BENCH_placement.json

# validate-specs type-checks every checked-in declarative topology file; CI
# runs this so a schema drift or a bad edit to examples/specs/ fails fast.
validate-specs:
	$(GO) run ./cmd/ursa-sim -validate examples/specs/*.yaml examples/specs/*.json

clean:
	$(GO) clean ./...
	rm -rf results
