GO ?= go

.PHONY: all build vet test race check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The parallel experiment
# harness (internal/experiments/pool.go) must stay clean here; CI runs this
# target on every push.
race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

clean:
	$(GO) clean ./...
	rm -rf results
