module ursa

go 1.22
