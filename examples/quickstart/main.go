// Quickstart: build a tiny two-tier application, explore its allocation
// space with Algorithm 1, solve the performance model, and let Ursa manage
// it under a bursty load — all in under a hundred lines.
package main

import (
	"fmt"
	"log"

	"ursa"
)

func main() {
	// 1. Declare the application: an api tier calling a storage tier via
	//    nested RPC, one request class with a 60 ms p99 SLA.
	spec := ursa.AppSpec{
		Name: "quickstart",
		Services: []ursa.ServiceSpec{
			{
				Name: "api", Threads: 4096, CPUs: 1, InitialReplicas: 2,
				IngressCostMs: 0.1,
				Handlers: map[string][]ursa.Step{
					"get": ursa.Seq(
						ursa.Compute{MeanMs: 2, CV: 0.4},
						ursa.Call{Service: "storage", Mode: ursa.NestedRPC},
					),
				},
			},
			{
				Name: "storage", Threads: 4096, CPUs: 1, InitialReplicas: 2,
				IngressCostMs: 0.1,
				Handlers: map[string][]ursa.Step{
					"get": ursa.Seq(ursa.Compute{MeanMs: 5, CV: 0.4}),
				},
			},
		},
		Classes: []ursa.ClassSpec{
			{Name: "get", Entry: "api", SLAPercentile: 99, SLAMillis: 60},
		},
	}
	mix := ursa.Mix{"get": 1}

	// 2. Explore each service's load-per-replica space (Algorithm 1).
	ex := &ursa.Explorer{
		Spec:       spec,
		Mix:        mix,
		TotalRPS:   200,
		Thresholds: map[string]float64{"api": 0.7, "storage": 0.7},
	}
	profiles, sum, err := ex.ExploreAll(ursa.ExploreConfig{
		WindowsPerPoint: 6,
		Window:          20 * ursa.Second,
	})
	if err != nil {
		log.Fatalf("exploration: %v", err)
	}
	fmt.Printf("explored %d samples across %d services\n", sum.Samples, len(profiles))
	for name, p := range profiles {
		fmt.Printf("  %-8s %d LPR points, backpressure-free util %.0f%%\n",
			name, len(p.Points), p.BackpressureUtil*100)
	}

	// 3. Deploy under a bursty load and let Ursa manage replicas.
	eng := ursa.NewEngine(42)
	app, err := ursa.NewApp(eng, spec)
	if err != nil {
		log.Fatal(err)
	}
	mgr := ursa.NewManager(spec, profiles)
	if err := mgr.Run(app, mix, 200, ursa.ControllerConfig{}, ursa.AnomalyConfig{}); err != nil {
		log.Fatalf("deploy: %v", err)
	}
	gen := ursa.NewGenerator(eng, app, ursa.Modulate{
		Base:   ursa.Constant{Value: 200},
		Factor: 2,
		Start:  10 * ursa.Minute,
		Len:    5 * ursa.Minute,
	}, mix)
	gen.Start()

	fmt.Println("\nminute  rps  api-replicas  storage-replicas  p99(ms)")
	for m := ursa.Time(1); m <= 25; m++ {
		eng.RunUntil(m * ursa.Minute)
		rec := app.E2E.Class("get")
		p99 := rec.PercentileBetween((m-1)*ursa.Minute, m*ursa.Minute, 99)
		fmt.Printf("%6d %4.0f %13d %17d %8.1f\n",
			m,
			app.Service("api").ArrivalsAll.Rate((m-1)*ursa.Minute, m*ursa.Minute),
			app.Service("api").Replicas(),
			app.Service("storage").Replicas(),
			p99)
	}
	mgr.Stop()

	viol := 0
	for m := ursa.Time(1); m <= 25; m++ {
		if app.E2E.Class("get").PercentileBetween((m-1)*ursa.Minute, m*ursa.Minute, 99) > 60 {
			viol++
		}
	}
	fmt.Printf("\nSLA violation rate: %.1f%% of minutes (burst included)\n", float64(viol)/25*100)
}
