// Social network under Ursa: the full §VI benchmark — eight request classes
// with individual SLAs, message-queue-fed ML services — explored once and
// then managed under a diurnal load while the report tracks per-class SLA
// compliance and the cluster's CPU footprint.
package main

import (
	"fmt"
	"log"

	"ursa"
)

func main() {
	spec := ursa.SocialNetwork()
	mix := ursa.SocialNetworkMix()
	const rps = 100

	// Backpressure-free thresholds are profiled per RPC service in the full
	// pipeline; this example uses a uniform conservative threshold to keep
	// its runtime short (see examples/quickstart and cmd/ursa-explore for
	// the profiling step).
	thresholds := map[string]float64{}
	for _, s := range spec.Services {
		thresholds[s.Name] = 0.55
	}
	ex := &ursa.Explorer{Spec: spec, Mix: mix, TotalRPS: rps, Thresholds: thresholds}
	fmt.Println("exploring the allocation space (Algorithm 1)...")
	profiles, sum, err := ex.ExploreAll(ursa.ExploreConfig{
		WindowsPerPoint: 5,
		Window:          15 * ursa.Second,
	})
	if err != nil {
		log.Fatalf("exploration: %v", err)
	}
	fmt.Printf("collected %d samples (%.1f simulated hours across services)\n\n",
		sum.Samples, sum.TotalTime.Hours())

	eng := ursa.NewEngine(7)
	app, err := ursa.NewApp(eng, spec)
	if err != nil {
		log.Fatal(err)
	}
	mgr := ursa.NewManager(spec, profiles)
	if err := mgr.Run(app, mix, rps, ursa.ControllerConfig{}, ursa.AnomalyConfig{}); err != nil {
		log.Fatalf("deploy: %v", err)
	}
	gen := ursa.NewGenerator(eng, app, ursa.Diurnal{
		Base: rps * 0.5, Peak: rps * 1.5, Period: 40 * ursa.Minute,
	}, mix)
	gen.Start()

	const horizon = 40 * ursa.Minute
	fmt.Println("minute  rps  total-cpus  (diurnal load, Ursa managing)")
	for m := ursa.Time(4); m <= 40; m += 4 {
		eng.RunUntil(m * ursa.Minute)
		fmt.Printf("%6d %4.0f %11.0f\n", m,
			app.Service("frontend").ArrivalsAll.Rate((m-1)*ursa.Minute, m*ursa.Minute),
			app.TotalAllocatedCPUs())
	}
	mgr.Stop()

	fmt.Println("\nper-class SLA compliance over the run:")
	fmt.Printf("%-22s %10s %10s %10s\n", "class", "SLA(ms)", "pXX(ms)", "violated")
	warm := 2 * ursa.Minute
	for _, cs := range spec.Classes {
		rec := app.E2E.Class(cs.Name)
		if rec == nil {
			continue
		}
		latency := rec.PercentileBetween(warm, horizon, cs.SLAPercentile)
		total, viol := 0, 0
		for w := warm; w < horizon; w += ursa.Minute {
			vals := rec.Between(w, w+ursa.Minute)
			if len(vals) == 0 {
				continue
			}
			total++
			if percentile(vals, cs.SLAPercentile) > cs.SLAMillis {
				viol++
			}
		}
		fmt.Printf("%-22s %10.0f %10.1f %9.1f%%\n",
			cs.Name, cs.SLAMillis, latency, 100*float64(viol)/float64(max(1, total)))
	}
	fmt.Printf("\naverage CPU allocation: %.1f cores\n",
		app.AllocIntegralCPUSeconds()/horizon.Seconds())
}

// percentile computes the p-th percentile of xs (nearest-rank interpolation).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
