// Adapting to service changes (§VII-G): the social network's object
// detector swaps DETR for MobileNet. Ursa re-explores only the modified
// service — a few dozen samples instead of a full exploration — recalculates
// the LPR thresholds, and redeploys with the SLA intact.
package main

import (
	"fmt"
	"log"

	"ursa"
)

func main() {
	spec := ursa.SocialNetwork()
	mix := ursa.SocialNetworkMix()
	const rps = 100

	thresholds := map[string]float64{}
	for _, s := range spec.Services {
		thresholds[s.Name] = 0.55
	}
	cfg := ursa.ExploreConfig{WindowsPerPoint: 5, Window: 15 * ursa.Second}

	ex := &ursa.Explorer{Spec: spec, Mix: mix, TotalRPS: rps, Thresholds: thresholds}
	fmt.Println("full exploration of the original application...")
	profiles, sum, err := ex.ExploreAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d samples across %d services\n\n", sum.Samples, len(profiles))

	run := func(label string, spec ursa.AppSpec, profiles map[string]*ursa.Profile) {
		eng := ursa.NewEngine(3)
		app, err := ursa.NewApp(eng, spec)
		if err != nil {
			log.Fatal(err)
		}
		mgr := ursa.NewManager(spec, profiles)
		if err := mgr.Run(app, mix, rps, ursa.ControllerConfig{}, ursa.AnomalyConfig{}); err != nil {
			log.Fatal(err)
		}
		gen := ursa.NewGenerator(eng, app, ursa.Constant{Value: rps}, mix)
		gen.Start()
		eng.RunUntil(20 * ursa.Minute)
		mgr.Stop()
		rec := app.E2E.Class("object-detect")
		fmt.Printf("%s:\n", label)
		fmt.Printf("  object-detect p50 %.1fs  p99 %.1fs  (SLA 10s)\n",
			rec.PercentileBetween(2*ursa.Minute, 20*ursa.Minute, 50)/1000,
			rec.PercentileBetween(2*ursa.Minute, 20*ursa.Minute, 99)/1000)
		fmt.Printf("  object-detect-ml allocation: %.0f cpus\n\n",
			app.Service("object-detect-ml").AllocatedCPUs())
	}

	run("original (DETR)", spec, profiles)

	// The business-logic update: swap the detector model.
	updated := ursa.SocialNetwork()
	updated.ServiceSpecByName("object-detect-ml").Handlers = map[string][]ursa.Step{
		"object-detect": ursa.Seq(
			ursa.Call{Service: "image-store", Mode: ursa.NestedRPC},
			ursa.Call{Service: "post-storage", Mode: ursa.NestedRPC},
			ursa.Compute{MeanMs: 620, CV: 0.4}, // MobileNet: ≈4× lighter
		),
	}

	fmt.Println("partial re-exploration of object-detect-ml only...")
	ex2 := &ursa.Explorer{Spec: updated, Mix: mix, TotalRPS: rps, Thresholds: thresholds}
	p, err := ex2.ExploreService("object-detect-ml", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d samples (vs %d for a full exploration)\n\n", p.Samples, sum.Samples)

	merged := map[string]*ursa.Profile{}
	for k, v := range profiles {
		merged[k] = v
	}
	merged["object-detect-ml"] = p
	run("updated (MobileNet)", updated, merged)
}
