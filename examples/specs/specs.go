// Package specs embeds the checked-in topology spec files so the topology
// package and the simulator binaries can load the benchmark applications
// without depending on a filesystem path. The files themselves are the
// source of truth for the §VI benchmark apps; internal/topology compiles
// them through internal/spec.
package specs

import "embed"

// FS holds every checked-in spec document, addressed by bare filename
// (e.g. "social-network.yaml").
//
//go:embed *.yaml *.json
var FS embed.FS
