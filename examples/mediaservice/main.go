// Media service: Ursa vs default autoscaling on the §VI media benchmark,
// deployed on the paper's 8-node cluster, under a bursty load. The report
// contrasts SLA compliance and CPU cost — the Fig. 11/12 story on one app —
// and uses the tracer to show where a slow get-info request spent its time.
package main

import (
	"fmt"
	"log"

	"ursa"
)

func main() {
	spec := ursa.MediaService()
	mix := ursa.MediaServiceMix()
	const rps = 60
	const horizon = 30 * ursa.Minute

	// Explore once; both managers could reuse these profiles, but only Ursa
	// needs them.
	thresholds := map[string]float64{}
	for _, s := range spec.Services {
		thresholds[s.Name] = 0.55
	}
	ex := &ursa.Explorer{Spec: spec, Mix: mix, TotalRPS: rps, Thresholds: thresholds}
	fmt.Println("exploring the media service...")
	profiles, _, err := ex.ExploreAll(ursa.ExploreConfig{WindowsPerPoint: 5, Window: 15 * ursa.Second})
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		name      string
		violation float64
		cpus      float64
	}
	burst := ursa.Modulate{
		Base:   ursa.Constant{Value: rps},
		Factor: 1.8,
		Start:  12 * ursa.Minute,
		Len:    6 * ursa.Minute,
	}

	run := func(name string, attach func(*ursa.App) func()) outcome {
		eng := ursa.NewEngine(5)
		app, err := ursa.NewAppOnCluster(eng, spec, ursa.PaperTestbed())
		if err != nil {
			log.Fatal(err)
		}
		app.Tracer = ursa.NewTracer(50, 2000)
		detach := attach(app)
		gen := ursa.NewGenerator(eng, app, burst, mix)
		gen.Start()
		warm := 2 * ursa.Minute
		eng.RunUntil(warm)
		a0 := app.AllocIntegralCPUSeconds()
		eng.RunUntil(warm + horizon)
		a1 := app.AllocIntegralCPUSeconds()
		detach()

		total, viol := 0, 0
		for _, cs := range spec.Classes {
			rec := app.E2E.Class(cs.Name)
			if rec == nil {
				continue
			}
			for w := warm; w < warm+horizon; w += ursa.Minute {
				if rec.Count(w, w+ursa.Minute) == 0 {
					continue
				}
				total++
				if rec.PercentileBetween(w, w+ursa.Minute, cs.SLAPercentile) > cs.SLAMillis {
					viol++
				}
			}
		}
		// Show the critical path of the slowest traced get-info request.
		if slow := app.Tracer.SlowestTrace("get-info"); slow != nil && name == "ursa" {
			svc, tm := slow.CriticalService()
			fmt.Printf("\nslowest traced get-info under %s: %v end-to-end; critical service %s (%v)\n",
				name, slow.Latency(), svc, tm)
		}
		return outcome{name, float64(viol) / float64(max(1, total)), (a1 - a0) / horizon.Seconds()}
	}

	results := []outcome{
		run("ursa", func(app *ursa.App) func() {
			mgr := ursa.NewManager(spec, profiles)
			if err := mgr.Run(app, mix, rps, ursa.ControllerConfig{}, ursa.AnomalyConfig{}); err != nil {
				log.Fatal(err)
			}
			return mgr.Stop
		}),
		run("auto-a", func(app *ursa.App) func() {
			as := ursa.NewAutoscaler(ursa.AutoscalerA())
			as.Attach(app)
			return as.Detach
		}),
		run("auto-b", func(app *ursa.App) func() {
			as := ursa.NewAutoscaler(ursa.AutoscalerB())
			as.Attach(app)
			return as.Detach
		}),
	}

	fmt.Printf("\n%-8s %12s %12s  (media service, +80%% burst mid-run)\n", "system", "violations", "avg CPUs")
	for _, r := range results {
		fmt.Printf("%-8s %11.1f%% %12.1f\n", r.name, r.violation*100, r.cpus)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
