// Video processing pipeline under Ursa: two request *priorities* with SLAs
// at different percentiles (p99 for high, p50 for low), three MQ-connected
// stages. The example shows priority-aware queueing (low-priority work runs
// only when no high-priority request waits) and Ursa handling a priority-mix
// shift through its anomaly detector.
package main

import (
	"fmt"
	"log"

	"ursa"
)

func main() {
	spec := ursa.VideoPipeline()
	mix := ursa.VideoPipelineMix(50, 50)
	const rps = 4

	thresholds := map[string]float64{}
	for _, s := range spec.Services {
		thresholds[s.Name] = 1.0 // MQ consumers exert no RPC backpressure
	}
	ex := &ursa.Explorer{Spec: spec, Mix: mix, TotalRPS: rps, Thresholds: thresholds}
	fmt.Println("exploring the pipeline's allocation space...")
	profiles, _, err := ex.ExploreAll(ursa.ExploreConfig{
		WindowsPerPoint: 5,
		Window:          30 * ursa.Second,
	})
	if err != nil {
		log.Fatalf("exploration: %v", err)
	}

	eng := ursa.NewEngine(11)
	app, err := ursa.NewApp(eng, spec)
	if err != nil {
		log.Fatal(err)
	}
	mgr := ursa.NewManager(spec, profiles)
	if err := mgr.Run(app, mix, rps, ursa.ControllerConfig{}, ursa.AnomalyConfig{}); err != nil {
		log.Fatalf("deploy: %v", err)
	}
	gen := ursa.NewGenerator(eng, app, ursa.Constant{Value: rps}, mix)
	gen.Start()

	// Shift the priority mix mid-run (the skewed-load regime of §VII-E).
	eng.At(20*ursa.Minute, func() {
		gen.Stop()
		g2 := ursa.NewGenerator(eng, app, ursa.Constant{Value: rps}, ursa.VideoPipelineMix(75, 25))
		g2.Start()
		fmt.Println("-- priority mix shifted to 75:25 at minute 20 --")
	})

	const horizon = 40 * ursa.Minute
	fmt.Println("minute  hi-p99(s)  lo-p50(s)  queue(hi/lo @ face-rec)  cpus")
	for m := ursa.Time(4); m <= 40; m += 4 {
		eng.RunUntil(m * ursa.Minute)
		hi := app.E2E.Class("high-priority").PercentileBetween((m-4)*ursa.Minute, m*ursa.Minute, 99)
		lo := app.E2E.Class("low-priority").PercentileBetween((m-4)*ursa.Minute, m*ursa.Minute, 50)
		fr := app.Service("face-recognition")
		fmt.Printf("%6d %10.1f %10.1f %12d/%-10d %5.0f\n",
			m, hi/1000, lo/1000,
			fr.QueueLenPriority(0), fr.QueueLenPriority(1),
			app.TotalAllocatedCPUs())
	}
	mgr.Stop()

	fmt.Println("\nSLA check (high: p99 ≤ 20s; low: p50 ≤ 4s):")
	for _, cs := range spec.Classes {
		lat := app.E2E.Class(cs.Name).PercentileBetween(2*ursa.Minute, horizon, cs.SLAPercentile)
		status := "OK"
		if lat > cs.SLAMillis {
			status = "VIOLATED"
		}
		fmt.Printf("  %-15s p%.0f = %6.1fs  (SLA %4.0fs)  %s\n",
			cs.Name, cs.SLAPercentile, lat/1000, cs.SLAMillis/1000, status)
	}
}
