// Package ursa is a reproduction of "Ursa: Lightweight Resource Management
// for Cloud-Native Microservices" (HPCA 2024) as a self-contained Go
// library. It bundles:
//
//   - a deterministic discrete-event microservice simulator (replicas,
//     processor-sharing CPUs, nested/event-driven RPC and message queues)
//     standing in for the paper's Kubernetes + Dapr testbed;
//   - Ursa itself: backpressure-free threshold profiling (§III), per-service
//     LPR exploration (Algorithm 1), the SLA-decomposition performance model
//     and MIP optimization engine (§IV), the threshold resource controller
//     and anomaly detector (§V);
//   - the competing systems of §VII-B — Sinan (CNN + boosted trees), Firm
//     (per-service RL agents) and two autoscaling configurations — with all
//     ML implemented from scratch on the standard library;
//   - the §VI benchmark applications (social network, media service, video
//     processing pipeline) and the harnesses that regenerate every table
//     and figure of the paper's evaluation.
//
// # Quick start
//
//	eng := ursa.NewEngine(1)
//	spec := ursa.SocialNetwork()
//	app, _ := ursa.NewApp(eng, spec)
//
//	// Explore the allocation space (Algorithm 1) ...
//	ex := &ursa.Explorer{Spec: spec, Mix: ursa.SocialNetworkMix(), TotalRPS: 100}
//	profiles, _, _ := ex.ExploreAll(ursa.ExploreConfig{})
//
//	// ... and let Ursa manage the deployment.
//	mgr := ursa.NewManager(spec, profiles)
//	mgr.Run(app, ursa.SocialNetworkMix(), 100, ursa.ControllerConfig{}, ursa.AnomalyConfig{})
//	gen := ursa.NewGenerator(eng, app, ursa.Constant{Value: 100}, ursa.SocialNetworkMix())
//	gen.Start()
//	eng.RunUntil(30 * ursa.Minute)
//
// See examples/ for complete programs and DESIGN.md for the system map.
package ursa

import (
	"ursa/internal/baselines/autoscale"
	"ursa/internal/cluster"
	"ursa/internal/core"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/topology"
	"ursa/internal/trace"
	"ursa/internal/workload"
)

// Simulation engine.
type (
	// Engine is the deterministic discrete-event simulator all components
	// run on.
	Engine = sim.Engine
	// Time is simulated time in nanoseconds since the epoch.
	Time = sim.Time
)

// Time units.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// NewEngine creates a simulation engine with the given seed.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// Application modelling.
type (
	// App is a deployed application on the simulator.
	App = services.App
	// AppSpec declares an application: services plus request classes.
	AppSpec = services.AppSpec
	// ServiceSpec declares one microservice.
	ServiceSpec = services.ServiceSpec
	// ClassSpec declares one request class or priority with its SLA.
	ClassSpec = services.ClassSpec
	// Step is one handler operation (Compute, Call, Spawn, Par).
	Step = services.Step
	// Compute burns CPU for a log-normally distributed duration.
	Compute = services.Compute
	// Call invokes another service via RPC or message queue.
	Call = services.Call
	// Spawn enqueues a new measured job of another class.
	Spawn = services.Spawn
	// Par runs branches concurrently within a handler.
	Par = services.Par
	// CallMode selects nested RPC, event-driven RPC, or MQ.
	CallMode = services.CallMode
)

// Communication modes (Fig. 1).
const (
	NestedRPC = services.NestedRPC
	EventRPC  = services.EventRPC
	MQ        = services.MQ
)

// NewApp validates a spec and deploys it on the engine.
func NewApp(eng *Engine, spec AppSpec) (*App, error) { return services.NewApp(eng, spec) }

// Seq builds a handler body from steps.
func Seq(steps ...Step) []Step { return services.Seq(steps...) }

// Workload generation.
type (
	// Pattern is a time-varying request rate.
	Pattern = workload.Pattern
	// Constant is a fixed-rate pattern.
	Constant = workload.Constant
	// Diurnal ramps between Base and Peak over Period.
	Diurnal = workload.Diurnal
	// Burst multiplies Base by Factor during a window.
	Burst = workload.Burst
	// Modulate superimposes a burst on any base pattern.
	Modulate = workload.Modulate
	// Mix is a weighted request-class mix.
	Mix = workload.Mix
	// Generator injects open-loop Poisson load into an app.
	Generator = workload.Generator
)

// NewGenerator builds a load generator; call Start to begin.
func NewGenerator(eng *Engine, app *App, p Pattern, mix Mix) *Generator {
	return workload.New(eng, app, p, mix)
}

// Ursa's core (the paper's contribution).
type (
	// Explorer runs per-service LPR exploration (Algorithm 1).
	Explorer = core.Explorer
	// ExploreConfig parameterises exploration.
	ExploreConfig = core.ExploreConfig
	// Profile is one service's exploration output.
	Profile = core.Profile
	// ProfilerConfig parameterises backpressure-threshold profiling (§III).
	ProfilerConfig = core.ProfilerConfig
	// BackpressureProfile is the §III profiling outcome.
	BackpressureProfile = core.BackpressureResult
	// Model is the §IV performance model.
	Model = core.Model
	// Solution is the optimised per-service LPR thresholds.
	Solution = core.Solution
	// ClassTarget is one end-to-end SLA constraint.
	ClassTarget = core.ClassTarget
	// Manager is the assembled Ursa system (Fig. 5).
	Manager = core.Manager
	// ControllerConfig parameterises the resource controller.
	ControllerConfig = core.ControllerConfig
	// AnomalyConfig parameterises the anomaly detector.
	AnomalyConfig = core.AnomalyConfig
)

// NewManager assembles Ursa from exploration output.
func NewManager(spec AppSpec, profiles map[string]*Profile) *Manager {
	return core.NewManager(spec, profiles)
}

// ProfileBackpressureThreshold runs the Fig. 3 profiling engine against one
// service and returns its backpressure-free CPU utilisation threshold.
func ProfileBackpressureThreshold(svc ServiceSpec, classRPS map[string]float64, cfg ProfilerConfig) BackpressureProfile {
	return core.ProfileBackpressureThreshold(svc, classRPS, cfg)
}

// TargetsFor derives SLA targets for every class of a spec.
func TargetsFor(spec AppSpec) []ClassTarget { return core.TargetsFor(spec) }

// Benchmark applications (§VI).
var (
	// SocialNetwork builds the re-implemented social network.
	SocialNetwork = topology.SocialNetwork
	// SocialNetworkMix is its §VII-C request mix.
	SocialNetworkMix = topology.SocialNetworkMix
	// VanillaSocialNetwork disables the ML services.
	VanillaSocialNetwork = topology.VanillaSocialNetwork
	// MediaService builds the re-implemented media service.
	MediaService = topology.MediaService
	// MediaServiceMix is its request mix.
	MediaServiceMix = topology.MediaServiceMix
	// VideoPipeline builds the video processing pipeline.
	VideoPipeline = topology.VideoPipeline
	// VideoPipelineMix builds a high:low priority mix.
	VideoPipelineMix = topology.VideoPipelineMix
	// BackpressureChain builds the §III study chain.
	BackpressureChain = topology.BackpressureChain
)

// Baseline resource managers (§VII-B), exposed for comparisons.

// AutoscalerConfig configures a threshold autoscaler.
type AutoscalerConfig = autoscale.Config

// Autoscaler is a CPU-threshold step scaler.
type Autoscaler = autoscale.Autoscaler

// NewAutoscaler builds an autoscaler with a custom policy.
func NewAutoscaler(cfg AutoscalerConfig) *Autoscaler { return autoscale.New(cfg) }

// AutoscalerA returns the default AWS-step-scaling policy (Auto-a).
func AutoscalerA() AutoscalerConfig { return autoscale.AutoA() }

// AutoscalerB returns the conservative tuned policy (Auto-b).
func AutoscalerB() AutoscalerConfig { return autoscale.AutoB() }

// Tracing.

// Tracer samples jobs and records per-service spans; attach one to an App
// via its Tracer field.
type Tracer = trace.Tracer

// NewTracer builds a tracer sampling one of every n jobs, retaining at most
// cap completed traces.
func NewTracer(n, cap int) *Tracer { return trace.NewTracer(n, cap) }

// Cluster capacity.

// Cluster is a pool of physical nodes gating replica placement.
type Cluster = cluster.Cluster

// NewCluster builds a cluster from node CPU capacities.
func NewCluster(capacities ...float64) *Cluster {
	return cluster.New(cluster.WorstFit, capacities...)
}

// PaperTestbed reproduces the §VII-A cluster (8 nodes, 40–88 CPUs).
func PaperTestbed() *Cluster { return cluster.PaperTestbed() }

// NewAppOnCluster deploys an application bounded by a cluster's capacity.
func NewAppOnCluster(eng *Engine, spec AppSpec, cl *Cluster) (*App, error) {
	return services.NewAppOnCluster(eng, spec, cl)
}

// SaveProfiles / LoadProfiles persist exploration output as JSON.
var (
	SaveProfiles = core.SaveProfiles
	LoadProfiles = core.LoadProfiles
)
