package experiments

import (
	"fmt"
	"strings"

	"ursa/internal/baselines"
	"ursa/internal/cluster"
	"ursa/internal/region"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// RegionCell is one (system, scenario) outcome of the Fig. R1 region-failover
// experiment: the social-network app spread over three geo-regions, with and
// without a whole-region outage mid-run.
type RegionCell struct {
	System   string
	Scenario string // "no-fault", "region-fail"

	ViolationRate float64
	Availability  float64
	// RecoveryMin is minutes from the region failure until the SLA was
	// re-established (first of two consecutive clean minute windows); 0 for
	// the no-fault scenario, -1 when the SLA never recovered within the run.
	RecoveryMin   float64
	AvgCPUs       float64
	Retries       float64
	Errors        float64
	Evicted       int
	Unschedulable int
	// Spilled counts replicas placed outside their home region; WANHops
	// counts cross-region RPC deliveries that paid WAN latency.
	Spilled int
	WANHops int
	Backlog int
}

// RegionFailoverResult is the full Fig. R1 output.
type RegionFailoverResult struct {
	Cells   []RegionCell
	Region  string // the failed region
	FailAt  sim.Time
	FailFor sim.Time
}

// RegionSystems lists the systems compared under a region outage. Ursa runs
// with the spill policy on — a cross-region re-solve moves the dead region's
// services into surviving regions — while the threshold autoscalers model
// independent per-region deployments (spill off): each region scales only
// itself, so a dead region's capacity is simply gone.
func RegionSystems() []string { return []string{"ursa", "auto-a", "auto-b"} }

// SocialNetworkRegions carves the paper testbed's eight nodes (512 CPUs)
// into three geo-regions along the app's tier boundaries: the interactive
// RPC chain in us-east, the MQ/ML tier in us-west, and the storage tier in
// eu-west. WAN latencies are kept small enough that the 75 ms interactive
// SLAs remain feasible at baseline — the point of Fig. R1 is the outage, not
// a WAN-saturated steady state.
func SocialNetworkRegions() region.Topology {
	return region.Topology{
		Groups: []region.Group{
			{Name: "us-east", Capacities: []float64{88, 72, 64}},
			{Name: "us-west", Capacities: []float64{80, 64, 56}},
			{Name: "eu-west", Capacities: []float64{48, 40}},
		},
		Links: []region.Link{
			{From: "us-east", To: "us-west", LatencyMs: 12, JitterMs: 3},
			{From: "us-east", To: "eu-west", LatencyMs: 28, JitterMs: 3},
			{From: "us-west", To: "eu-west", LatencyMs: 36, JitterMs: 3},
		},
		Bindings: map[string]string{
			"frontend":     "us-east",
			"compose-post": "us-east",
			"text-service": "us-east",
			"user-service": "us-east",
			"url-shorten":  "us-east",

			"home-timeline":    "us-west",
			"social-graph":     "us-west",
			"sentiment-ml":     "us-west",
			"object-detect-ml": "us-west",

			"post-storage":  "eu-west",
			"user-timeline": "eu-west",
			"image-store":   "eu-west",
		},
	}
}

// RunRegionFailover executes the Fig. R1 grid: each system runs the
// social-network app across SocialNetworkRegions under constant load, once
// undisturbed and once with the storage region (eu-west) failing a third of
// the way in and recovering a quarter-run later. Every interactive class
// calls into eu-west, so the outage is total unless the manager can re-place
// the storage tier elsewhere. Cells run concurrently up to
// Options.Parallelism and merge in canonical order.
func RunRegionFailover(opts Options) RegionFailoverResult {
	opts.defaults()
	dur := opts.scaleTime(30*sim.Minute, 10*sim.Minute)
	warm := 2 * sim.Minute
	failAt := warm + dur/3
	failFor := dur / 4
	const failed = "eu-west"

	c, _ := AppCaseByName("social-network")
	scenarios := []string{"no-fault", "region-fail"}
	type cellJob struct{ system, scen string }
	var jobs []cellJob
	for _, s := range RegionSystems() {
		for _, scen := range scenarios {
			jobs = append(jobs, cellJob{s, scen})
		}
	}

	cells := make([]RegionCell, len(jobs))
	opts.forEach(len(jobs), func(i int) {
		j := jobs[i]
		mgr := opts.newManagerFor(c, j.system)
		opts.logf("figr1: %s / %s", j.system, j.scen)
		cells[i] = opts.runRegionCell(c, mgr, j.system == "ursa", j.scen == "region-fail",
			failed, warm, dur, failAt, failFor)
		cells[i].System, cells[i].Scenario = j.system, j.scen
	})
	return RegionFailoverResult{Cells: cells, Region: failed, FailAt: failAt, FailFor: failFor}
}

// runRegionCell is runResilient's geo sibling: the app deploys through
// region.Deploy (placement pinned from the first replica), the WAN injector
// delays cross-region RPC, and the outage is driven by FailRegion — every
// node of the region at once — instead of a single faults.NodeFail.
func (o *Options) runRegionCell(c AppCase, mgr baselines.Manager, spill, fail bool,
	failed string, warm, dur, failAt, failFor sim.Time) RegionCell {
	eng := sim.NewEngine(o.Seed + 1000)
	app, m, err := region.Deploy(eng, c.Spec, SocialNetworkRegions(), cluster.WorstFit, spill)
	if err != nil {
		panic(err)
	}
	app.SetResilience(resiliencePolicy())
	evicted := 0
	if fail {
		eng.Schedule(failAt, func() { evicted = m.FailRegion(failed) })
		eng.Schedule(failAt+failFor, func() { m.RecoverRegion(failed) })
	}
	gen := workload.New(eng, app, workload.Constant{Value: c.TotalRPS}, c.Mix)
	gen.Start()
	mgr.Attach(app)

	eng.RunUntil(warm)
	allocStart := app.AllocIntegralCPUSeconds()
	end := warm + dur
	eng.RunUntil(end)
	allocEnd := app.AllocIntegralCPUSeconds()
	mgr.Detach()

	var retries, errors float64
	for _, name := range app.ServiceNames() {
		svc := app.Service(name)
		retries += svc.RPCRetries.Total(0, end)
		errors += svc.RPCErrors.Total(0, end)
	}
	cell := RegionCell{
		ViolationRate: violationRate(app, c.Spec, warm, end),
		Availability:  app.Availability(),
		AvgCPUs:       (allocEnd - allocStart) / dur.Seconds(),
		Retries:       retries,
		Errors:        errors,
		Evicted:       evicted,
		Unschedulable: app.UnschedulableEvents,
		Spilled:       m.Spilled,
		WANHops:       m.WANHops,
		Backlog:       app.InjectedJobs - app.CompletedJobs() - app.FailedJobs(),
	}
	if fail {
		cell.RecoveryMin = recoveryMinutes(app, c.Spec, failAt, end)
	}
	return cell
}

// Cell finds a specific result.
func (r RegionFailoverResult) Cell(system, scenario string) (RegionCell, bool) {
	for _, c := range r.Cells {
		if c.System == system && c.Scenario == scenario {
			return c, true
		}
	}
	return RegionCell{}, false
}

// Render prints the Fig. R1 table.
func (r RegionFailoverResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.R1 — region failover (%s down %v→%v)\n",
		r.Region, r.FailAt, r.FailAt+r.FailFor)
	fmt.Fprintf(&b, "%-8s %-12s %8s %8s %9s %8s %8s %8s %8s %8s %8s %8s\n",
		"system", "scenario", "viol%", "avail%", "recovery", "avgCPU", "evicted", "unsched", "spilled", "wanhops", "retries", "backlog")
	for _, c := range r.Cells {
		rec := "-"
		switch {
		case c.Scenario == "no-fault":
		case c.RecoveryMin < 0:
			rec = "never"
		default:
			rec = fmt.Sprintf("%.0f min", c.RecoveryMin)
		}
		fmt.Fprintf(&b, "%-8s %-12s %7.1f%% %7.2f%% %9s %8.1f %8d %8d %8d %8d %8.0f %8d\n",
			c.System, c.Scenario, c.ViolationRate*100, c.Availability*100, rec,
			c.AvgCPUs, c.Evicted, c.Unschedulable, c.Spilled, c.WANHops, c.Retries, c.Backlog)
	}
	return b.String()
}
