package experiments

import (
	"reflect"
	"runtime"
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/topology"
	"ursa/internal/workload"
)

// scaledSocialNetwork is the paper's social-network app with every tier's
// replica count multiplied by k — the "one big run" the ROADMAP north star
// cares about, sized so the app digests k× the canonical 100 RPS.
func scaledSocialNetwork(k int) services.AppSpec {
	spec := topology.SocialNetwork()
	for i := range spec.Services {
		spec.Services[i].InitialReplicas *= k
		if spec.Services[i].MaxReplicas > 0 {
			spec.Services[i].MaxReplicas *= k
		}
	}
	return spec
}

// setFastPath selects the batched-arrival + fused-frame fast path (the
// default) or the retained reference paths, returning a restore func.
func setFastPath(fast bool) func() {
	prevArr, prevSteps := workload.UseLegacyArrivals, services.UseReferenceSteps
	workload.UseLegacyArrivals = !fast
	services.UseReferenceSteps = !fast
	return func() {
		workload.UseLegacyArrivals = prevArr
		services.UseReferenceSteps = prevSteps
	}
}

// BenchmarkThroughput is the tracked single-run throughput headline: a
// 10×-scale social network at 1000 RPS, simulated for 2 minutes per
// iteration. It reports wall-clock events/sec and heap allocs per injected
// request for the default fast path ("fused") and the retained pre-PR
// implementation ("reference") — the pair BENCH_throughput.json records, so
// every future PR moves a visible number against a pinned baseline.
func BenchmarkThroughput(b *testing.B) {
	const (
		scale   = 10
		rps     = 1000
		simTime = 2 * sim.Minute
	)
	for _, mode := range []struct {
		name string
		fast bool
	}{{"fused", true}, {"reference", false}} {
		b.Run(mode.name, func(b *testing.B) {
			restore := setFastPath(mode.fast)
			defer restore()
			var events uint64
			var jobs, allocs uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := sim.NewEngine(int64(i) + 1)
				app := services.MustNewApp(eng, scaledSocialNetwork(scale))
				gen := workload.New(eng, app, workload.Constant{Value: rps}, topology.SocialNetworkMix())
				gen.Start()
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				eng.RunUntil(simTime)
				runtime.ReadMemStats(&m1)
				events += eng.Fired()
				jobs += uint64(app.InjectedJobs)
				allocs += m1.Mallocs - m0.Mallocs
			}
			b.StopTimer()
			if jobs == 0 {
				b.Fatal("no jobs injected")
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
			b.ReportMetric(float64(allocs)/float64(jobs), "allocs/req")
		})
	}
}

// TestThroughputPathsPreserveFig2 is the experiment-level byte-identity pin
// for this PR's fast paths: the full fig2 backpressure run (all three call
// modes, CPU throttling mid-run) must render byte-identically with batched
// arrivals + fused frames vs the retained reference paths, across ≥20 seeds
// and across Parallelism settings.
func TestThroughputPathsPreserveFig2(t *testing.T) {
	seeds := int64(20)
	if testing.Short() {
		seeds = 3
	}
	if raceEnabled {
		// The identity property is deterministic; under race one seed is
		// enough to exercise the fused path (incl. Parallelism 4) with the
		// detector on while keeping the package inside the test timeout.
		seeds = 1
	}
	for seed := int64(1); seed <= seeds; seed++ {
		restore := setFastPath(false)
		ref := RunBackpressure(Options{Seed: seed, Parallelism: 1})
		restore()

		restore = setFastPath(true)
		fused := RunBackpressure(Options{Seed: seed, Parallelism: 1})
		fusedPar := RunBackpressure(Options{Seed: seed, Parallelism: 4})
		restore()

		if !reflect.DeepEqual(ref.Grid, fused.Grid) {
			t.Fatalf("seed %d: fast-path fig2 grid diverges from reference", seed)
		}
		if ref.Render() != fused.Render() {
			t.Fatalf("seed %d: fast-path fig2 render diverges from reference", seed)
		}
		if fused.Render() != fusedPar.Render() {
			t.Fatalf("seed %d: fig2 render differs across Parallelism 1 vs 4", seed)
		}
	}
}
