package experiments

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
)

// poolCase is a deliberately tiny application so cache/pool tests explore in
// milliseconds instead of re-running the full social network.
func poolCase(name string) AppCase {
	spec := services.AppSpec{
		Name: name,
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 2048, CPUs: 1, InitialReplicas: 2,
			IngressCostMs: 0.1, IngressWindow: 32,
			Handlers: map[string][]services.Step{
				"req": services.Seq(services.Compute{MeanMs: 5, CV: 0.4}),
			},
		}},
		Classes: []services.ClassSpec{{Name: "req", Entry: "api", SLAPercentile: 99, SLAMillis: 60}},
	}
	return AppCase{Name: name, Spec: spec, Mix: map[string]float64{"req": 1}, TotalRPS: 60}
}

// TestForEachCoversAllIndices checks the pool runs every task exactly once
// at several worker counts, including n < workers and workers = 1.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, par := range []int{1, 2, 7, 64} {
		o := &Options{Parallelism: par}
		const n = 37
		hits := make([]int, n)
		var mu sync.Mutex
		o.forEach(n, func(i int) {
			mu.Lock()
			hits[i]++
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("parallelism %d: task %d ran %d times", par, i, h)
			}
		}
	}
}

// TestForEachPropagatesPanic checks a worker panic surfaces in the caller,
// matching the sequential failure mode.
func TestForEachPropagatesPanic(t *testing.T) {
	o := &Options{Parallelism: 4}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic was swallowed by the pool")
		}
	}()
	o.forEach(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

// TestProfileCacheConcurrent hammers ursaProfiles for the same app from many
// goroutines: the exploration must run exactly once (singleflight) and every
// caller must get an equal but independent deep copy. Run with -race.
func TestProfileCacheConcurrent(t *testing.T) {
	c := poolCase("pool-cache-app")
	opts := Options{Seed: 1, Scale: 0.25}
	opts.defaults()

	const goroutines = 16
	var wg sync.WaitGroup
	raw := make([]map[string]float64, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			o := opts
			_, p, _ := o.ursaProfiles(c)
			// Mutate the returned copy aggressively: later callers must not
			// see it.
			first := map[string]float64{}
			for name, prof := range p {
				if len(prof.Points) > 0 {
					for cls, v := range prof.Points[0].LPR {
						first[name+"/"+cls] = v
					}
				}
			}
			raw[g] = first
			for _, prof := range p {
				for i := range prof.Points {
					for cls := range prof.Points[i].LPR {
						prof.Points[i].LPR[cls] = -1
					}
				}
			}
		}(g)
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(raw[0], raw[g]) {
			t.Fatalf("goroutine %d saw different profile content:\n%v\nvs\n%v", g, raw[0], raw[g])
		}
	}
	for _, v := range raw[0] {
		if v < 0 {
			t.Fatal("a goroutine observed another goroutine's mutation: cache returned shared state")
		}
	}
	// And a fresh fetch after all that vandalism is still pristine.
	o := opts
	_, p, _ := o.ursaProfiles(c)
	for name, prof := range p {
		for i := range prof.Points {
			for cls, v := range prof.Points[i].LPR {
				if v < 0 {
					t.Fatalf("cache entry %s point %d class %s polluted by caller mutation", name, i, cls)
				}
			}
		}
	}
}

// TestComparisonParallelDeterminism asserts the §VII-E grid merges to
// identical cells and byte-identical rendered tables at Parallelism 1 and 8.
// DecisionMs is wall-clock (non-deterministic even sequentially) and is not
// part of any rendered table, so it is zeroed before comparing cells.
func TestComparisonParallelDeterminism(t *testing.T) {
	apps := []string{"social-network"}
	systems := []string{"ursa", "firm", "auto-a"}

	seqOpts := Options{Seed: 1, Scale: 0.25, Parallelism: 1}
	parOpts := Options{Seed: 1, Scale: 0.25, Parallelism: 8}
	seq := RunComparison(seqOpts, apps, systems)
	par := RunComparison(parOpts, apps, systems)

	if len(seq.Cells) == 0 || len(seq.Cells) != len(par.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq.Cells), len(par.Cells))
	}
	for i := range seq.Cells {
		a, b := seq.Cells[i], par.Cells[i]
		a.DecisionMs, b.DecisionMs = 0, 0
		if a != b {
			t.Errorf("cell %d differs:\nsequential: %+v\nparallel:   %+v", i, seq.Cells[i], par.Cells[i])
		}
	}
	if sr, pr := seq.Render(), par.Render(); sr != pr {
		t.Errorf("rendered tables differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", sr, pr)
	}
}

// TestComparisonFilterSkipsTraining asserts systems excluded by the filter
// are never prepared: running the grid for auto-a only must not train Sinan
// or Firm prototypes for the app.
func TestComparisonFilterSkipsTraining(t *testing.T) {
	c := poolCase("pool-filter-app")
	opts := Options{Seed: 1, Scale: 0.25}
	opts.defaults()

	jobs := comparisonJobs(8*sim.Minute, []string{c.Name}, []string{"auto-a"})
	if len(jobs) != 0 {
		t.Fatalf("custom case is not part of AppCases; got %d jobs", len(jobs))
	}

	// Drive the lazy construction path directly: only auto-a is requested.
	mgr := opts.newManagerFor(c, "auto-a")
	if mgr == nil || mgr.Name() != "auto-a" {
		t.Fatalf("newManagerFor returned %v", mgr)
	}
	protoMu.Lock()
	defer protoMu.Unlock()
	for _, sys := range []string{"sinan", "firm"} {
		key := fmt.Sprintf("%s/%s/%d/%.3f", sys, c.Name, opts.Seed, opts.Scale)
		if _, ok := protoCache[key]; ok {
			t.Errorf("%s prototype was trained despite being filtered out", sys)
		}
	}
}

// TestFreshManagersPerCell asserts clone-based construction: two managers
// for the same (app, system) must be distinct instances, so no deployment
// can leak warm state into the next.
func TestFreshManagersPerCell(t *testing.T) {
	c := poolCase("pool-fresh-app")
	opts := Options{Seed: 1, Scale: 0.25}
	opts.defaults()
	for _, sys := range []string{"ursa", "auto-a", "auto-b"} {
		a := opts.newManagerFor(c, sys)
		b := opts.newManagerFor(c, sys)
		if a == b {
			t.Errorf("%s: newManagerFor returned the same instance twice", sys)
		}
	}
}
