package experiments

import (
	"fmt"
	"strings"
	"testing"

	"ursa/internal/topology"
)

// quick returns smoke-scale options; experiments assert the paper's *shapes*
// even at this scale.
func quick() Options { return Options{Seed: 1, Scale: 0.25} }

func TestBackpressureShapes(t *testing.T) {
	r := RunBackpressure(quick())
	if len(r.Grid) != 3 {
		t.Fatalf("modes = %d", len(r.Grid))
	}
	nested := r.Inflation("nested-rpc")
	if nested[3] < 3 {
		t.Errorf("nested: tier4 inflation %.1fx, want ≥3x", nested[3])
	}
	if nested[1] > 1.5 || nested[2] > 1.5 {
		t.Errorf("nested: backpressure did not attenuate: %v", nested)
	}
	event := r.Inflation("event-rpc")
	if event[3] < 2 {
		t.Errorf("event: tier4 inflation %.1fx, want ≥2x", event[3])
	}
	mq := r.Inflation("mq")
	for tier := 0; tier < 4; tier++ {
		if mq[tier] > 1.5 {
			t.Errorf("mq: tier%d inflated %.1fx", tier+1, mq[tier])
		}
	}
	if mq[4] < 2 {
		t.Errorf("mq: throttled leaf should inflate: %v", mq)
	}
	if !strings.Contains(r.Render(), "nested-rpc") {
		t.Error("render missing nested-rpc section")
	}
}

func TestProfilingShapes(t *testing.T) {
	r := RunProfiling(quick())
	for _, name := range []string{"post-storage", "user-timeline"} {
		pr, ok := r.Services[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		// Paper thresholds: 46.2% and 60.0%; ours must land mid-range.
		if pr.Threshold < 0.25 || pr.Threshold > 0.9 {
			t.Errorf("%s threshold = %.2f, want mid-range", name, pr.Threshold)
		}
		// Backpressure visible: >5x latency at the tightest limit.
		first, last := pr.Steps[0], pr.Steps[len(pr.Steps)-1]
		if first.ProxyP99Mean < last.ProxyP99Mean*5 {
			t.Errorf("%s: no clear backpressure (%.1f vs %.1f)", name, first.ProxyP99Mean, last.ProxyP99Mean)
		}
		if !last.Converged {
			t.Errorf("%s: sweep never converged", name)
		}
	}
}

func TestExplorationOverheadShapes(t *testing.T) {
	r := RunExploration(quick())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The headline: ≥16x fewer samples and ≥128x less exploration time.
		if row.SampleRatio < 10 {
			t.Errorf("%s: sample ratio %.1fx too small", row.App, row.SampleRatio)
		}
		if row.TimeRatio < 128 {
			t.Errorf("%s: time ratio %.1fx, paper reports >128x", row.App, row.TimeRatio)
		}
		if row.UrsaSamples <= 0 || row.UrsaHours <= 0 {
			t.Errorf("%s: empty accounting %+v", row.App, row)
		}
	}
	if !strings.Contains(r.Render(), "Table V") {
		t.Error("render missing header")
	}
}

func TestAccuracyShapes(t *testing.T) {
	c, _ := AppCaseByName("social-network")
	r := RunAccuracy(quick(), c, []string{topology.UploadPost, topology.UpdateTimeline})
	for class, ratio := range r.Ratio {
		// Paper: mean estimated/measured between 0.96 and 1.05; allow a
		// wider band at smoke scale.
		if ratio < 0.8 || ratio > 1.3 {
			t.Errorf("%s: est/meas ratio %.2f out of range", class, ratio)
		}
		if len(r.Series[class]) == 0 {
			t.Errorf("%s: no accuracy points", class)
		}
	}
}

func TestControlPlaneShapes(t *testing.T) {
	r := RunControlPlane(quick())
	ursa, sinan := r.DeployMs["ursa"], r.DeployMs["sinan"]
	if ursa <= 0 || sinan <= 0 {
		t.Fatalf("missing deploy latencies: %+v", r.DeployMs)
	}
	// The paper's headline: Ursa's decisions are orders of magnitude
	// faster than Sinan's centralized model inference.
	if sinan < ursa*10 {
		t.Errorf("sinan (%.3fms) should be ≫ ursa (%.3fms)", sinan, ursa)
	}
	if auto := r.DeployMs["auto-a"]; auto > ursa*10 {
		t.Errorf("autoscaling (%.3f) should be at least as fast as ursa (%.3f)", auto, ursa)
	}
	if r.UpdateMs["ursa"] <= 0 {
		t.Error("ursa update latency missing")
	}
	if !strings.Contains(r.Render(), "Table VI") {
		t.Error("render missing header")
	}
}

func TestDiurnalShapes(t *testing.T) {
	r := RunDiurnal(quick())
	if len(r.Services) == 0 {
		t.Fatal("no traces")
	}
	// Ursa must scale at least one tracked service up and down with load.
	scaled := false
	for name := range r.Services {
		lo, hi := r.ScalingRange(name)
		if hi > lo {
			scaled = true
		}
	}
	if !scaled {
		t.Error("no service scaled under diurnal load")
	}
}

func TestAdaptationShapes(t *testing.T) {
	r := RunAdaptation(quick())
	// Partial re-exploration must be much cheaper than a full one.
	if r.ReexploreSamples <= 0 || r.ReexploreSamples > 120 {
		t.Errorf("re-exploration samples = %d", r.ReexploreSamples)
	}
	// Both deployments hold the 10s SLA: the fraction of requests over the
	// target stays in the low percents (paper: 0.62% and 0.50%).
	if r.ViolationRateOriginal > 0.03 {
		t.Errorf("original request-violation rate %.2f%%", r.ViolationRateOriginal*100)
	}
	if r.ViolationRateUpdated > 0.03 {
		t.Errorf("updated request-violation rate %.2f%%", r.ViolationRateUpdated*100)
	}
	if len(r.Original) == 0 || len(r.Updated) == 0 {
		t.Fatal("missing latency samples")
	}
	// The lighter model must be visibly faster.
	xs, ys := CDF(r.Updated)
	if len(xs) != len(ys) || ys[len(ys)-1] != 1 {
		t.Error("CDF malformed")
	}
}

func TestComparisonShapesSocial(t *testing.T) {
	r := RunComparison(quick(), []string{"social-network"}, nil)
	if len(r.Cells) != 15 {
		t.Fatalf("cells = %d, want 15", len(r.Cells))
	}
	for _, load := range []string{"constant", "dynamic", "skewed"} {
		ursa, _ := r.Cell("social-network", load, "ursa")
		autob, _ := r.Cell("social-network", load, "auto-b")
		firm, _ := r.Cell("social-network", load, "firm")
		// Ursa keeps violations low (paper: 0.1–8.5%).
		if ursa.ViolationRate > 0.15 {
			t.Errorf("%s: ursa violation rate %.1f%%", load, ursa.ViolationRate*100)
		}
		// Auto-b and Firm allocate substantially more than Ursa.
		if autob.AvgCPUs < ursa.AvgCPUs*1.2 {
			t.Errorf("%s: auto-b (%.0f) should allocate ≫ ursa (%.0f)", load, autob.AvgCPUs, ursa.AvgCPUs)
		}
		if firm.AvgCPUs < ursa.AvgCPUs*1.2 {
			t.Errorf("%s: firm (%.0f) should allocate ≫ ursa (%.0f)", load, firm.AvgCPUs, ursa.AvgCPUs)
		}
	}
	// Under dynamic load, default autoscaling suffers the most violations.
	ua, _ := r.Cell("social-network", "dynamic", "auto-a")
	ursa, _ := r.Cell("social-network", "dynamic", "ursa")
	if ua.ViolationRate <= ursa.ViolationRate {
		t.Errorf("dynamic: auto-a (%.1f%%) should violate more than ursa (%.1f%%)",
			ua.ViolationRate*100, ursa.ViolationRate*100)
	}
	if !strings.Contains(r.Render(), "Fig.11") {
		t.Error("render missing header")
	}
}

func TestAblationShapes(t *testing.T) {
	r := RunAblation(quick())
	// The optimized percentile DP never costs more than the naive split.
	if r.EqualSplitFeasible && r.EqualSplitCPUs < r.BudgetCPUs-1e-9 {
		t.Errorf("equal split (%f) beat the DP (%f)", r.EqualSplitCPUs, r.BudgetCPUs)
	}
	if r.BudgetCPUs <= 0 {
		t.Fatal("budget solve failed")
	}
	// Removing the t-test must not reduce scaling actions (it exists to
	// absorb noise-induced flapping).
	if r.NoTTestActions < r.TTestActions {
		t.Errorf("no-ttest actions (%d) < ttest actions (%d)", r.NoTTestActions, r.TTestActions)
	}
	// Both exploration variants should deploy; threshold-off must not be
	// dramatically safer (it explores an unsafe region).
	if r.ThresholdOnViolation > 0.2 {
		t.Errorf("threshold-on violations %.1f%%", r.ThresholdOnViolation*100)
	}
	if !strings.Contains(r.Render(), "Ablation 1") {
		t.Error("render missing")
	}
}

func TestCorpusShapes(t *testing.T) {
	r := RunCorpus(quick(), CorpusParams{N: 3, Systems: []string{"ursa", "auto-a"}})
	if len(r.Topologies) != 3 {
		t.Fatalf("topologies = %d", len(r.Topologies))
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(r.Cells))
	}
	for _, topo := range r.Topologies {
		if topo.Services < 2 || topo.RPS <= 0 {
			t.Errorf("degenerate topology %+v", topo)
		}
	}
	if len(r.Verdicts) != 1 || r.Verdicts[0].Baseline != "auto-a" {
		t.Fatalf("verdicts: %+v", r.Verdicts)
	}
	v := r.Verdicts[0]
	if v.Wins+v.Ties+v.Losses != 3 {
		t.Errorf("verdict does not cover corpus: %+v", v)
	}
	if len(r.Worst) != 2 {
		t.Errorf("worst: %+v", r.Worst)
	}
	if !strings.Contains(r.Render(), "Fig.C1") {
		t.Error("render missing header")
	}
	// The JSON artifact is deterministic: same opts, same bytes.
	r2 := RunCorpus(quick(), CorpusParams{N: 3, Systems: []string{"ursa", "auto-a"}})
	if string(r.JSON()) != string(r2.JSON()) {
		t.Error("corpus JSON not reproducible for identical options")
	}
}

func TestScalingShapes(t *testing.T) {
	params := ScalingParams{Nodes: []int{8, 16}, Tenants: []int{1, 2}, FixedNodes: 16, FixedTenants: 2}
	r := RunScaling(quick(), params)
	if len(r.NodeSweep) != 2 || len(r.TenantSweep) != 2 {
		t.Fatalf("sweeps = %d/%d cells", len(r.NodeSweep), len(r.TenantSweep))
	}
	for _, c := range append(append([]ScalingCell{}, r.NodeSweep...), r.TenantSweep...) {
		if c.Admitted+c.Rejected == 0 {
			t.Errorf("cell nodes=%d tenants=%d admitted nothing and rejected nothing", c.Nodes, c.Tenants)
		}
		if c.Admitted > 0 && c.DecisionMs <= 0 {
			t.Errorf("cell nodes=%d tenants=%d: no decision latency recorded", c.Nodes, c.Tenants)
		}
		if c.PlaceNsIndexed <= 0 || c.PlaceNsLinear <= 0 {
			t.Errorf("cell nodes=%d tenants=%d: placement timing missing", c.Nodes, c.Tenants)
		}
	}
	// The fast path is on by default at fleet scale; a steady constant load
	// must serve a meaningful share of re-solves incrementally.
	last := r.TenantSweep[len(r.TenantSweep)-1]
	if last.Admitted > 0 && last.FastShare <= 0 {
		t.Errorf("fast_share = 0 with the fast path on by default")
	}
	if !strings.Contains(r.Render(), "Fig.S1") {
		t.Error("render missing header")
	}
	// Simulated metrics are reproducible; wall-clock fields are not, so
	// compare the deterministic subset.
	r2 := RunScaling(quick(), params)
	detKey := func(res ScalingResult) string {
		var b strings.Builder
		for _, c := range append(append([]ScalingCell{}, res.NodeSweep...), res.TenantSweep...) {
			fmt.Fprintf(&b, "%d/%d:%d/%d/%v/%d\n", c.Nodes, c.Tenants, c.Admitted, c.Rejected, c.ViolationRate, c.Unschedulable)
		}
		return b.String()
	}
	if detKey(r) != detKey(r2) {
		t.Error("scaling simulated metrics not reproducible for identical options")
	}
}

func TestCorpusBeats(t *testing.T) {
	meets := func(cpus float64) CorpusCell { return CorpusCell{ViolationRate: 0.01, AvgCPUs: cpus} }
	fails := func(v float64) CorpusCell { return CorpusCell{ViolationRate: v, AvgCPUs: 10} }
	if !corpusBeats(meets(10), fails(0.5)) {
		t.Error("meeting SLA must beat failing it")
	}
	if !corpusBeats(meets(8), meets(10)) {
		t.Error("meeting on fewer CPUs must win")
	}
	if corpusBeats(meets(10), meets(10.1)) {
		t.Error("within 2% CPUs is a tie")
	}
	if !corpusBeats(fails(0.2), fails(0.4)) || corpusBeats(fails(0.4), fails(0.2)) {
		t.Error("among failures, lower violation wins")
	}
}

func TestSolveGenericMIPWiring(t *testing.T) {
	// The exact MIP (1) toy instance: δ picks the cheap points (cost 2+3)
	// whose best percentile latencies 10+15 fit the 40ms target.
	if got := SolveGenericMIP(); got != 5 {
		t.Fatalf("SolveGenericMIP = %v, want 5", got)
	}
}
