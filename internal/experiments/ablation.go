package experiments

import (
	"fmt"
	"strings"

	"ursa/internal/core"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// AblationResult quantifies three design choices DESIGN.md calls out:
//
//  1. The Theorem 1 percentile-assignment freedom in MIP (1) vs a naive
//     equal-split decomposition — measured as projected CPU cost.
//  2. The Welch-t-test confirmation in the resource controller vs acting on
//     raw threshold crossings — measured as scaling actions (flapping) and
//     violation rate under noisy load.
//  3. The backpressure-free exploration boundary (§III) vs exploring all
//     the way to saturation — measured as deployment violation rate (the
//     independence assumption of the model breaks beyond the threshold).
type AblationResult struct {
	// Percentile policy ablation.
	BudgetCPUs     float64
	EqualSplitCPUs float64
	// EqualSplitFeasible is false when the naive decomposition cannot
	// certify the SLAs at all.
	EqualSplitFeasible bool

	// Controller t-test ablation.
	TTestActions, NoTTestActions      int
	TTestViolation, NoTTestViolation  float64
	TTestAvgCPUs, NoTTestAvgCPUs      float64
	ThresholdOnViolation              float64
	ThresholdOffViolation             float64
	ThresholdOnCPUs, ThresholdOffCPUs float64
}

// RunAblation executes the three studies on the social network.
func RunAblation(opts Options) AblationResult {
	opts.defaults()
	c, _ := AppCaseByName("social-network")
	ex, profiles, _ := opts.ursaProfiles(c)
	loads := ex.ServiceClassLoads()
	var res AblationResult

	// 1. Percentile policy.
	opts.logf("ablation: percentile policy")
	targets := core.TargetsFor(c.Spec)
	budget := &core.Model{Profiles: profiles, Targets: targets, Loads: loads}
	if sol, err := budget.Solve(); err == nil {
		res.BudgetCPUs = sol.TotalCPUs
	}
	equal := &core.Model{Profiles: profiles, Targets: targets, Loads: loads, EqualSplitPercentiles: true}
	if sol, err := equal.Solve(); err == nil {
		res.EqualSplitFeasible = true
		res.EqualSplitCPUs = sol.TotalCPUs
	}

	// 2 + 3 run four independent deployments (t-test on/off, exploration
	// threshold on/off); fan them over the worker pool. Each task writes its
	// own result fields, so the merge is deterministic.
	runDeploy := func(p map[string]*core.Profile) (float64, float64) {
		eng := sim.NewEngine(opts.Seed + 81)
		app, err := services.NewApp(eng, c.Spec)
		if err != nil {
			panic(err)
		}
		mgr := opts.newCoreManager(c.Spec, p)
		if err := mgr.Run(app, c.Mix, c.TotalRPS, core.ControllerConfig{}, core.AnomalyConfig{}); err != nil {
			panic(err)
		}
		gen := workload.New(eng, app, workload.Constant{Value: c.TotalRPS}, c.Mix)
		gen.Start()
		dur := opts.scaleTime(30*sim.Minute, 10*sim.Minute)
		warm := 2 * sim.Minute
		eng.RunUntil(warm)
		a0 := app.AllocIntegralCPUSeconds()
		eng.RunUntil(warm + dur)
		a1 := app.AllocIntegralCPUSeconds()
		mgr.Stop()
		return violationRate(app, c.Spec, warm, warm+dur), (a1 - a0) / dur.Seconds()
	}
	tasks := []func(){
		// 2. Controller t-test under load that hovers at a replica boundary:
		// the offered rate sits right where ceil(load/threshold) flips, so a
		// controller that acts on raw window estimates flaps while the
		// t-test absorbs the noise.
		func() {
			opts.logf("ablation: controller with t-test")
			res.TTestActions, res.TTestViolation, res.TTestAvgCPUs = runBoundaryController(opts, false)
		},
		func() {
			opts.logf("ablation: controller without t-test")
			res.NoTTestActions, res.NoTTestViolation, res.NoTTestAvgCPUs = runBoundaryController(opts, true)
		},
		// 3. Backpressure threshold on/off during exploration.
		func() {
			opts.logf("ablation: deployment with backpressure-free boundary")
			res.ThresholdOnViolation, res.ThresholdOnCPUs = runDeploy(profiles)
		},
		func() {
			opts.logf("ablation: exploring to saturation (threshold off)")
			exOff := &core.Explorer{Spec: c.Spec, Mix: c.Mix, TotalRPS: c.TotalRPS, Thresholds: map[string]float64{}}
			for _, s := range c.Spec.Services {
				exOff.Thresholds[s.Name] = 1.0 // explore all the way to saturation
			}
			profOff, _, err := exOff.ExploreAll(opts.exploreConfig())
			if err == nil {
				res.ThresholdOffViolation, res.ThresholdOffCPUs = runDeploy(profOff)
			}
		},
	}
	opts.forEach(len(tasks), func(i int) { tasks[i]() })
	return res
}

// runBoundaryController deploys a single-service app whose load sits at a
// replica-count boundary and counts scaling actions with and without the
// Welch-t-test confirmation.
func runBoundaryController(opts Options, disableTTest bool) (actions int, violation, cpus float64) {
	spec := services.AppSpec{
		Name: "boundary",
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 2048, CPUs: 1, InitialReplicas: 4,
			IngressCostMs: 0.1, IngressWindow: 32,
			Handlers: map[string][]services.Step{
				"req": services.Seq(services.Compute{MeanMs: 5, CV: 0.4}),
			},
		}},
		Classes: []services.ClassSpec{{Name: "req", Entry: "api", SLAPercentile: 99, SLAMillis: 60}},
	}
	// Threshold 30 rps/replica; offered load 119 rps → ceil flips 4 ↔ 5
	// with per-window Poisson noise.
	sol := &core.Solution{Choices: map[string]*core.Choice{
		"api": {
			Service:     "api",
			LPR:         map[string]float64{"req": 30},
			RateSamples: map[string][]float64{"req": {29.4, 29.8, 30.0, 30.2, 30.6}},
		},
	}}
	eng := sim.NewEngine(opts.Seed + 80)
	app, err := services.NewApp(eng, spec)
	if err != nil {
		panic(err)
	}
	ctl := core.NewController(app, sol, core.ControllerConfig{
		Headroom:     1.0,
		DisableTTest: disableTTest,
	})
	prev := app.Service("api").Replicas()
	tick := eng.Every(sim.Minute, func() {
		ctl.Tick()
		if r := app.Service("api").Replicas(); r != prev {
			actions++
			prev = r
		}
	})
	gen := workload.New(eng, app, workload.Constant{Value: 119}, workload.Mix{"req": 1})
	gen.Start()
	dur := opts.scaleTime(60*sim.Minute, 20*sim.Minute)
	warm := 2 * sim.Minute
	eng.RunUntil(warm)
	a0 := app.AllocIntegralCPUSeconds()
	eng.RunUntil(warm + dur)
	a1 := app.AllocIntegralCPUSeconds()
	tick.Stop()
	violation = violationRate(app, spec, warm, warm+dur)
	cpus = (a1 - a0) / dur.Seconds()
	return actions, violation, cpus
}

// Render prints the three ablation tables.
func (r AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation 1 — percentile assignment in MIP (1):\n")
	fmt.Fprintf(&b, "  optimized budget DP: %8.1f CPUs\n", r.BudgetCPUs)
	if r.EqualSplitFeasible {
		fmt.Fprintf(&b, "  naive equal split:   %8.1f CPUs  (+%.1f%%)\n",
			r.EqualSplitCPUs, 100*(r.EqualSplitCPUs-r.BudgetCPUs)/r.BudgetCPUs)
	} else {
		b.WriteString("  naive equal split:   infeasible (cannot certify the SLAs)\n")
	}
	b.WriteString("\nAblation 2 — controller t-test under constant (noisy) load:\n")
	fmt.Fprintf(&b, "  with t-test:    %4d scaling actions  %5.1f%% violations  %7.1f CPUs\n",
		r.TTestActions, r.TTestViolation*100, r.TTestAvgCPUs)
	fmt.Fprintf(&b, "  without t-test: %4d scaling actions  %5.1f%% violations  %7.1f CPUs\n",
		r.NoTTestActions, r.NoTTestViolation*100, r.NoTTestAvgCPUs)
	b.WriteString("\nAblation 3 — backpressure-free exploration boundary:\n")
	fmt.Fprintf(&b, "  thresholds on:  %5.1f%% violations  %7.1f CPUs\n", r.ThresholdOnViolation*100, r.ThresholdOnCPUs)
	fmt.Fprintf(&b, "  thresholds off: %5.1f%% violations  %7.1f CPUs\n", r.ThresholdOffViolation*100, r.ThresholdOffCPUs)
	return b.String()
}
