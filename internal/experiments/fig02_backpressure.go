package experiments

import (
	"fmt"
	"math"
	"strings"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/topology"
	"ursa/internal/workload"
)

// BackpressureCell is one (tier, minute) cell of the Fig. 2 heat map.
type BackpressureCell struct {
	Tier   int
	Minute int
	P99Ms  float64
}

// BackpressureResult reproduces Fig. 2: per-tier p99 response time per
// one-minute interval for the three chain types, with the leaf tier's CPU
// throttled during minutes 3–6.
type BackpressureResult struct {
	// Grid maps mode → [tier-1][minute] p99 (ms).
	Grid map[string][][]float64
	// Minutes is the horizontal extent (10 in the paper).
	Minutes int
}

// RunBackpressure executes the §III case study. The three chain types are
// independent simulations and run concurrently up to Options.Parallelism.
func RunBackpressure(opts Options) BackpressureResult {
	opts.defaults()
	const minutes = 10
	modes := []services.CallMode{services.NestedRPC, services.EventRPC, services.MQ}
	grids := make([][][]float64, len(modes))
	opts.forEach(len(modes), func(i int) {
		mode := modes[i]
		opts.logf("fig2: running %v chain", mode)
		eng := sim.NewEngine(opts.Seed)
		app := services.MustNewApp(eng, topology.BackpressureChain(mode))
		gen := workload.New(eng, app, workload.Constant{Value: 120}, workload.Mix{"req": 1})
		gen.Start()
		leaf := app.Service(topology.ChainTier(5))
		eng.At(3*sim.Minute, func() { leaf.SetCPUFactor(0.38) })
		eng.At(6*sim.Minute, func() { leaf.SetCPUFactor(1) })
		eng.RunUntil(minutes * sim.Minute)

		grid := make([][]float64, 5)
		for tier := 1; tier <= 5; tier++ {
			svc := app.Service(topology.ChainTier(tier))
			grid[tier-1] = svc.RespTime.PerWindowPercentile(minutes*sim.Minute, 99)
			// The rendered heat-map and Inflation averages treat a minute with
			// no completions as 0 ms (a starved tier reads as cold, exactly as
			// before); the NaN marker matters to live monitoring, not here.
			for m, v := range grid[tier-1] {
				if math.IsNaN(v) {
					grid[tier-1][m] = 0
				}
			}
		}
		grids[i] = grid
	})
	res := BackpressureResult{Grid: map[string][][]float64{}, Minutes: minutes}
	for i, mode := range modes {
		res.Grid[mode.String()] = grids[i]
	}
	return res
}

// Inflation reports, for one mode, each tier's p99 during the anomaly
// (minutes 3–5) relative to before it (minutes 0–2).
func (r BackpressureResult) Inflation(mode string) [5]float64 {
	var out [5]float64
	grid := r.Grid[mode]
	if grid == nil {
		return out
	}
	for tier := 0; tier < 5; tier++ {
		before := (grid[tier][0] + grid[tier][1] + grid[tier][2]) / 3
		during := (grid[tier][3] + grid[tier][4] + grid[tier][5]) / 3
		if before > 0 {
			out[tier] = during / before
		}
	}
	return out
}

// Render prints the three heat maps as aligned tables.
func (r BackpressureResult) Render() string {
	var b strings.Builder
	for _, mode := range []string{"nested-rpc", "event-rpc", "mq"} {
		grid := r.Grid[mode]
		if grid == nil {
			continue
		}
		fmt.Fprintf(&b, "Fig.2 — %s chain, per-tier p99 (ms) per minute (anomaly: min 3-6)\n", mode)
		fmt.Fprintf(&b, "%-6s", "tier")
		for m := 0; m < r.Minutes; m++ {
			fmt.Fprintf(&b, "%9s", fmt.Sprintf("m%d", m))
		}
		b.WriteString("\n")
		for tier := 0; tier < 5; tier++ {
			fmt.Fprintf(&b, "%-6s", fmt.Sprintf("t%d", tier+1))
			for m := 0; m < r.Minutes; m++ {
				fmt.Fprintf(&b, "%9.1f", grid[tier][m])
			}
			b.WriteString("\n")
		}
		inf := r.Inflation(mode)
		fmt.Fprintf(&b, "inflation during anomaly: t1=%.1fx t2=%.1fx t3=%.1fx t4=%.1fx t5=%.1fx\n\n",
			inf[0], inf[1], inf[2], inf[3], inf[4])
	}
	return b.String()
}
