// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII) on the simulated testbed: the backpressure study
// (Fig. 2), threshold profiling (Fig. 4), exploration overhead (Table V),
// model accuracy (Fig. 9/10), the performance comparison (Fig. 11/12), the
// diurnal scaling trace (Fig. 13), control-plane latency (Table VI) and
// adaptation to service changes (Fig. 14).
//
// Every experiment takes Options so benchmarks can trade fidelity for run
// time: Scale < 1 shortens deployments and sample counts proportionally
// without changing the workload shapes.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"ursa/internal/baselines"
	"ursa/internal/baselines/autoscale"
	"ursa/internal/baselines/firm"
	"ursa/internal/baselines/sinan"
	"ursa/internal/core"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/topology"
	"ursa/internal/workload"
)

// Options controls experiment scale and reproducibility.
type Options struct {
	// Seed drives every stochastic component.
	Seed int64
	// Scale shrinks run durations and ML sample counts (1.0 = paper-like
	// proportions, 0.2 = quick smoke run).
	Scale float64
	// Log, when non-nil, receives progress lines. Writes are serialized, so
	// any io.Writer is safe even under parallel execution.
	Log io.Writer
	// Parallelism bounds the worker pool that fans independent simulation
	// cells across goroutines: 0 (the default) means GOMAXPROCS, 1 forces
	// sequential execution. Results are merged in a canonical order, so any
	// setting produces byte-identical rendered output.
	Parallelism int
	// NoFastResolve disables the managers' incremental re-solve fast path
	// (ReSolveEpsilon = 0), forcing a full model solve on every Optimize —
	// the -no-fast-resolve escape hatch, and the way to reproduce outputs
	// from before the fast path became the default.
	NoFastResolve bool
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
}

// logMu serializes progress lines so concurrent cells never interleave
// partial writes on a shared writer.
var logMu sync.Mutex

func (o *Options) logf(format string, args ...any) {
	if o.Log == nil {
		return
	}
	logMu.Lock()
	defer logMu.Unlock()
	fmt.Fprintf(o.Log, format+"\n", args...)
}

// scaleInt scales a count, with a floor.
func (o *Options) scaleInt(n, min int) int {
	v := int(float64(n) * o.Scale)
	if v < min {
		v = min
	}
	return v
}

// scaleTime scales a duration, with a floor.
func (o *Options) scaleTime(t, min sim.Time) sim.Time {
	v := sim.Time(float64(t) * o.Scale)
	if v < min {
		v = min
	}
	return v
}

// AppCase is one benchmark application with its nominal load.
type AppCase struct {
	Name     string
	Spec     services.AppSpec
	Mix      workload.Mix
	TotalRPS float64
}

// AppCases returns the §VII-E evaluation applications, sourced from the
// spec-compiled topology layer. The order is fixed (it reaches rendered
// table row order) and intentionally not alphabetical: vanilla rides next to
// its parent app, as in the paper's tables.
func AppCases() []AppCase {
	order := []string{"social-network", "vanilla-social-network", "media-service", "video-pipeline"}
	cases := make([]AppCase, 0, len(order))
	for _, name := range order {
		a, ok := topology.AppByName(name)
		if !ok {
			panic(fmt.Sprintf("experiments: benchmark app %q missing from topology", name))
		}
		cases = append(cases, AppCase{a.Name, a.Spec, a.Mix, a.RPS})
	}
	return cases
}

// AppCaseByName finds a case.
func AppCaseByName(name string) (AppCase, bool) {
	for _, c := range AppCases() {
		if c.Name == name {
			return c, true
		}
	}
	return AppCase{}, false
}

// exploreWindow is the shortened exploration window used by the harness; the
// Table V accounting still charges one minute per sample, like the paper.
const exploreWindow = 15 * sim.Second

// exploreConfig builds the Ursa exploration settings for an app case.
func (o *Options) exploreConfig() core.ExploreConfig {
	return core.ExploreConfig{
		WindowsPerPoint:  o.scaleInt(10, 4),
		Window:           exploreWindow,
		SLAViolationFreq: 0.10,
		Seed:             o.Seed,
	}
}

// profileCache memoises exploration output per (app, seed, scale): the
// experiments share one exploration per application, exactly as the paper
// explores once and reuses the profiles across every deployment run. Entries
// carry a sync.Once, so concurrent cells asking for the same app block on a
// single exploration (singleflight) instead of duplicating it.
var (
	profileMu    sync.Mutex
	profileCache = map[string]*profileCacheEntry{}
)

type profileCacheEntry struct {
	once     sync.Once
	ex       *core.Explorer
	profiles map[string]*core.Profile
	sum      core.ExplorationSummary
}

// ursaProfiles runs backpressure profiling + LPR exploration for an app and
// returns the explorer, profiles and Table V accounting. The profiles map is
// a deep copy: deployments mutate profile points in place (e.g. by sorting),
// and handing out the cached map by reference would let one run pollute
// every later cache hit. The explorer is shared and must be treated as
// read-only after exploration.
func (o *Options) ursaProfiles(c AppCase) (*core.Explorer, map[string]*core.Profile, core.ExplorationSummary) {
	key := fmt.Sprintf("%s/%d/%.3f", c.Name, o.Seed, o.Scale)
	profileMu.Lock()
	e := profileCache[key]
	if e == nil {
		e = &profileCacheEntry{}
		profileCache[key] = e
	}
	profileMu.Unlock()
	e.once.Do(func() { e.ex, e.profiles, e.sum = o.ursaProfilesUncached(c) })
	return e.ex, core.CloneProfiles(e.profiles), e.sum
}

func (o *Options) ursaProfilesUncached(c AppCase) (*core.Explorer, map[string]*core.Profile, core.ExplorationSummary) {
	ex := &core.Explorer{
		Spec:       c.Spec,
		Mix:        c.Mix,
		TotalRPS:   c.TotalRPS,
		Thresholds: map[string]float64{},
	}
	// Backpressure thresholds for RPC-connected services (§III).
	loads := ex.ServiceClassLoads()
	for i := range c.Spec.Services {
		ss := c.Spec.Services[i]
		if ss.IngressCostMs <= 0 {
			ex.Thresholds[ss.Name] = 1.0
			continue
		}
		perReplica := core.ScaleProfilingLoad(ss, loads[ss.Name], 0.85)
		res := core.ProfileBackpressureThreshold(ss, perReplica, core.ProfilerConfig{
			Seed:           o.Seed,
			WindowsPerStep: o.scaleInt(8, 4),
			Window:         15 * sim.Second,
			// Coarser sweep than Fig. 4's: the harness only needs the
			// threshold, not the full curve.
			Factors: []float64{0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0},
		})
		thr := res.Threshold
		if thr < 0.3 {
			thr = 0.3 // degenerate sweeps floor at a conservative value
		}
		ex.Thresholds[ss.Name] = thr
	}
	profiles, sum, err := ex.ExploreAll(o.exploreConfig())
	if err != nil {
		panic(fmt.Sprintf("exploration for %s failed: %v", c.Name, err))
	}
	return ex, profiles, sum
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ursaManager builds a ready-to-attach Ursa manager for an app case.
type ursaAdapter struct {
	mgr      *core.Manager
	mix      workload.Mix
	totalRPS float64
}

func (u *ursaAdapter) Name() string { return "ursa" }
func (u *ursaAdapter) Attach(app *services.App) {
	if err := u.mgr.Run(app, u.mix, u.totalRPS, core.ControllerConfig{}, core.AnomalyConfig{}); err != nil {
		panic(fmt.Sprintf("ursa deploy failed: %v", err))
	}
}
func (u *ursaAdapter) Detach() { u.mgr.Stop() }
func (u *ursaAdapter) AvgDecisionMillis() float64 {
	// Table VI's "deploy" column is the per-tick scaling decision; model
	// solves are its separate "update" column. Manager.AvgDecisionMillis
	// reports the combined per-decision cost when both matter.
	if u.mgr.Controller == nil {
		return 0
	}
	return u.mgr.Controller.AvgDecisionMillis()
}

var _ baselines.Manager = (*ursaAdapter)(nil)

// newUrsa prepares Ursa (exploration + model) for a case.
func (o *Options) newUrsa(c AppCase) *ursaAdapter {
	_, profiles, _ := o.ursaProfiles(c)
	mgr := o.newCoreManager(c.Spec, profiles)
	return &ursaAdapter{mgr: mgr, mix: c.Mix, totalRPS: c.TotalRPS}
}

// newCoreManager builds an Ursa manager with the harness-level fast-path
// setting applied; every experiment constructs its managers through this.
func (o *Options) newCoreManager(spec services.AppSpec, profiles map[string]*core.Profile) *core.Manager {
	mgr := core.NewManager(spec, profiles)
	if o.NoFastResolve {
		mgr.ReSolveEpsilon = 0
	}
	return mgr
}

// newSinan hands out a fresh clone of the trained Sinan prototype for a
// case, collecting data and training it on first use (singleflight).
func (o *Options) newSinan(c AppCase) *sinan.Sinan {
	key := fmt.Sprintf("sinan/%s/%d/%.3f", c.Name, o.Seed, o.Scale)
	proto := protoFor(key, func() any {
		o.logf("prep: collecting + training sinan for %s", c.Name)
		res := sinan.Collect(c.Spec, c.Mix, c.TotalRPS, sinan.CollectConfig{
			Samples: o.scaleInt(1000, 150),
			Window:  exploreWindow,
			Seed:    o.Seed,
		})
		return sinan.Train(c.Spec, res.SvcNames, res.RPSNorm, res.Samples, sinan.Config{
			Seed:   o.Seed,
			Epochs: o.scaleInt(60, 20),
		})
	}).(*sinan.Sinan)
	return proto.Clone()
}

// newFirm hands out a fresh clone of the pretrained Firm prototype for a
// case, pretraining it on first use (singleflight). Cloning (rather than
// reusing one instance) matters doubly for Firm: it keeps training online
// during deployment, so a shared instance would both race under parallel
// cells and carry warm RL state from one run into the next.
func (o *Options) newFirm(c AppCase) *firm.Firm {
	key := fmt.Sprintf("firm/%s/%d/%.3f", c.Name, o.Seed, o.Scale)
	proto := protoFor(key, func() any {
		o.logf("prep: pretraining firm for %s", c.Name)
		f := firm.New(c.Spec, specServiceNames(c.Spec), c.TotalRPS*2, firm.Config{Seed: o.Seed})
		firm.Pretrain(f, c.Mix, c.TotalRPS, firm.PretrainConfig{
			Samples: o.scaleInt(1000, 150),
			Window:  exploreWindow,
			Seed:    o.Seed,
		})
		f.SetExplore(false)
		return f
	}).(*firm.Firm)
	return proto.Clone()
}

// newManagerFor constructs a fresh, never-before-attached manager for one
// deployment cell. Expensive preparation (exploration, ML training) is
// cached per app and deduplicated; the returned manager is always pristine,
// so cells can run in any order — or concurrently — with identical results.
// Because construction is lazy, systems excluded by a filter are never
// prepared at all.
func (o *Options) newManagerFor(c AppCase, system string) baselines.Manager {
	switch system {
	case "ursa":
		return o.newUrsa(c)
	case "sinan":
		return o.newSinan(c)
	case "firm":
		return o.newFirm(c)
	case "auto-a":
		return autoscaleA()
	case "auto-b":
		return autoscaleB()
	}
	panic(fmt.Sprintf("experiments: unknown system %q", system))
}

// UrsaProfiles exposes the exploration pipeline (profiling + Algorithm 1)
// for the CLI tools.
func (o *Options) UrsaProfiles(c AppCase) (*core.Explorer, map[string]*core.Profile, core.ExplorationSummary) {
	o.defaults()
	return o.ursaProfiles(c)
}

// NewUrsaManager prepares Ursa (profiling + exploration + model) for a case.
func (o *Options) NewUrsaManager(c AppCase) baselines.Manager {
	o.defaults()
	return o.newUrsa(c)
}

// NewSinanManager collects data and trains Sinan for a case.
func (o *Options) NewSinanManager(c AppCase) baselines.Manager {
	o.defaults()
	return o.newSinan(c)
}

// NewFirmManager pretrains Firm for a case.
func (o *Options) NewFirmManager(c AppCase) baselines.Manager {
	o.defaults()
	return o.newFirm(c)
}

// autoscaleA and autoscaleB build the two autoscaling baselines.
func autoscaleA() baselines.Manager { return autoscale.New(autoscale.AutoA()) }
func autoscaleB() baselines.Manager { return autoscale.New(autoscale.AutoB()) }

func specServiceNames(spec services.AppSpec) []string {
	out := make([]string, 0, len(spec.Services))
	for _, s := range spec.Services {
		out = append(out, s.Name)
	}
	sort.Strings(out)
	return out
}

// deployResult is the outcome of one managed deployment run.
type deployResult struct {
	ViolationRate float64
	AvgCPUs       float64
	DecisionMs    float64
}

// runDeployment attaches a manager to a fresh app, drives the load pattern
// for the given duration, and measures the §VII-E metrics: per-window SLA
// violation rate and average allocated CPUs.
func (o *Options) runDeployment(c AppCase, mgr baselines.Manager, pattern workload.Pattern, mix workload.Mix, dur sim.Time) deployResult {
	eng := sim.NewEngine(o.Seed + 1000)
	app, err := services.NewApp(eng, c.Spec)
	if err != nil {
		panic(err)
	}
	gen := workload.New(eng, app, pattern, mix)
	gen.Start()
	mgr.Attach(app)

	warm := 2 * sim.Minute
	eng.RunUntil(warm)
	allocStart := app.AllocIntegralCPUSeconds()
	eng.RunUntil(warm + dur)
	allocEnd := app.AllocIntegralCPUSeconds()
	mgr.Detach()

	return deployResult{
		ViolationRate: violationRate(app, c.Spec, warm, warm+dur),
		AvgCPUs:       (allocEnd - allocStart) / dur.Seconds(),
		DecisionMs:    mgr.AvgDecisionMillis(),
	}
}

// violationRate computes the per-(class, window) violation fraction over
// whole one-minute windows. A trailing partial window (when the scaled
// duration is not minute-aligned) is dropped rather than counted: its
// percentile rests on a fraction of a window's samples, which would skew the
// denominator at small Scale.
func violationRate(app *services.App, spec services.AppSpec, from, to sim.Time) float64 {
	total, violated := 0, 0
	for _, cs := range spec.Classes {
		rec := app.E2E.Class(cs.Name)
		if rec == nil {
			continue
		}
		for w := from; w+sim.Minute <= to; w += sim.Minute {
			if rec.Count(w, w+sim.Minute) == 0 {
				continue
			}
			total++
			if rec.PercentileBetween(w, w+sim.Minute, cs.SLAPercentile) > cs.SLAMillis {
				violated++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(violated) / float64(total)
}
