package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// DiurnalPoint is one minute of the Fig. 13 trace for one service.
type DiurnalPoint struct {
	Minute int
	RPS    float64
	CPUs   float64
}

// DiurnalResult reproduces Fig. 13: per-service load and CPU allocation
// under a diurnal pattern when managed by Ursa.
type DiurnalResult struct {
	App      string
	Services map[string][]DiurnalPoint
}

// RunDiurnal deploys Ursa on the social network under a diurnal load and
// traces representative services.
func RunDiurnal(opts Options) DiurnalResult {
	opts.defaults()
	c, _ := AppCaseByName("social-network")
	tracked := []string{"compose-post", "post-storage", "user-timeline", "sentiment-ml"}

	ursa := opts.newUrsa(c)
	dur := opts.scaleTime(48*sim.Minute, 16*sim.Minute)
	eng := sim.NewEngine(opts.Seed + 7)
	app, err := services.NewApp(eng, c.Spec)
	if err != nil {
		panic(err)
	}
	gen := workload.New(eng, app, workload.Diurnal{
		Base: c.TotalRPS * 0.5, Peak: c.TotalRPS * 1.5, Period: dur,
	}, c.Mix)
	gen.Start()
	ursa.Attach(app)

	res := DiurnalResult{App: c.Name, Services: map[string][]DiurnalPoint{}}
	minute := 0
	probe := eng.Every(sim.Minute, func() {
		now := eng.Now()
		for _, name := range tracked {
			svc := app.Service(name)
			res.Services[name] = append(res.Services[name], DiurnalPoint{
				Minute: minute,
				RPS:    svc.ArrivalsAll.Rate(now-sim.Minute, now),
				CPUs:   svc.AllocatedCPUs(),
			})
		}
		minute++
	})
	eng.RunUntil(dur)
	probe.Stop()
	ursa.Detach()
	return res
}

// Render prints the per-service traces.
func (r DiurnalResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.13 — %s under diurnal load (Ursa): per-minute RPS and CPU allocation\n", r.App)
	names := make([]string, 0, len(r.Services))
	for name := range r.Services {
		names = append(names, name)
	}
	sort.Strings(names) // map order would shuffle sections run to run
	for _, name := range names {
		pts := r.Services[name]
		fmt.Fprintf(&b, "\n%s:\n%8s %10s %8s\n", name, "min", "rps", "cpus")
		for _, p := range pts {
			fmt.Fprintf(&b, "%8d %10.1f %8.1f\n", p.Minute, p.RPS, p.CPUs)
		}
	}
	return b.String()
}

// ScalingRange reports min/max allocated CPUs per tracked service — the
// Fig. 13 takeaway is that allocation follows load up and down.
func (r DiurnalResult) ScalingRange(service string) (min, max float64) {
	pts := r.Services[service]
	if len(pts) == 0 {
		return 0, 0
	}
	min, max = pts[0].CPUs, pts[0].CPUs
	for _, p := range pts {
		if p.CPUs < min {
			min = p.CPUs
		}
		if p.CPUs > max {
			max = p.CPUs
		}
	}
	return min, max
}
