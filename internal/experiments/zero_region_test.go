package experiments

import (
	"os"
	"testing"
)

// The goldens were captured at the commit immediately before the region
// subsystem (and call-step error rates) landed. A zero-region, zero-error-rate
// run must stay byte-identical to those builds: the region layer installs no
// placer, no net hook and no RNG stream unless a topology is configured, and
// error draws create their stream lazily on first nonzero ErrorProb.
func assertGolden(t *testing.T, path, got string) {
	t.Helper()
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing: %v", err)
	}
	if got != string(want) {
		t.Fatalf("output diverged from pre-region golden %s\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

func TestZeroRegionBackpressureByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig2 grid in -short mode")
	}
	opts := Options{Seed: 1, Scale: 0.25, Parallelism: 4}
	assertGolden(t, "testdata/fig2_zero_region.golden", RunBackpressure(opts).Render())
}

func TestZeroRegionResilienceByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full figf1 grid in -short mode")
	}
	opts := Options{Seed: 1, Scale: 0.25, Parallelism: 4}
	assertGolden(t, "testdata/figf1_zero_region.golden", RunResilience(opts).Render())
}
