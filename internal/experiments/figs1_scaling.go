package experiments

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"ursa/internal/cluster"
	"ursa/internal/core"
	"ursa/internal/sim"
	"ursa/internal/spec"
	"ursa/internal/workload"
)

// Fig. S1 (beyond the paper) is the fleet-scaling curve of ROADMAP item 1:
// how the control plane behaves as the cluster grows from the paper's 8-node
// testbed to 1024 nodes and from 1 tenant application to 32 behind one
// shared arbiter. Two sweeps share one generated tenant fleet: nodes at a
// fixed tenant count, and tenants at a fixed node count. Each cell deploys
// the fleet through core.Arbiter (admission → per-tenant managers →
// steady-state refresh), measures decision latency, fast-path share, mean
// SLA violation rate and admission outcomes, and micro-times Place+Release
// on a half-filled twin pair of clusters — the maintained free-capacity
// index against the retained linear reference. Simulated metrics are
// deterministic per (seed, scale); the *_ns placement timings and
// decision_ms are wall-clock, like Table VI's.

// ScalingParams sizes the Fig. S1 grid.
type ScalingParams struct {
	// Nodes is the cluster-size sweep (default 8..1024 doubling), run at
	// FixedTenants tenants.
	Nodes []int
	// Tenants is the tenant-count sweep (default 1..32 doubling), run at
	// FixedNodes nodes.
	Tenants []int
	// FixedNodes is the cluster size of the tenant sweep (default 256).
	FixedNodes int
	// FixedTenants is the tenant count of the node sweep (default 8).
	FixedTenants int
	// NoFastResolve disables the managers' incremental re-solve fast path
	// (the -no-fast-resolve escape hatch).
	NoFastResolve bool
}

func (p *ScalingParams) defaults() {
	if p.Nodes == nil {
		p.Nodes = []int{8, 16, 32, 64, 128, 256, 512, 1024}
	}
	if p.Tenants == nil {
		p.Tenants = []int{1, 2, 4, 8, 16, 32}
	}
	if p.FixedNodes <= 0 {
		p.FixedNodes = 256
	}
	if p.FixedTenants <= 0 {
		p.FixedTenants = 8
	}
}

// ScalingCell is one (nodes, tenants) fleet deployment outcome.
type ScalingCell struct {
	Nodes   int `json:"nodes"`
	Tenants int `json:"tenants"`
	// Admitted/Rejected split the tenant fleet by admission outcome
	// (rejections include infeasible generated SLAs, not just capacity).
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected"`
	// DecisionMs is the mean wall-clock control-plane decision latency
	// across the fleet (model solves + controller ticks).
	DecisionMs float64 `json:"decision_ms"`
	// FastShare is the fraction of model solves served by the incremental
	// re-solve fast path.
	FastShare float64 `json:"fast_share"`
	// PlaceNsIndexed/PlaceNsLinear micro-time one Place+Release cycle on a
	// ~55%-filled cluster of this size; PlaceSpeedup is their ratio.
	PlaceNsIndexed float64 `json:"place_ns_indexed"`
	PlaceNsLinear  float64 `json:"place_ns_linear"`
	PlaceSpeedup   float64 `json:"place_speedup"`
	// ViolationRate is the mean per-tenant SLA violation fraction.
	ViolationRate float64 `json:"violation_rate"`
	// Unschedulable counts replica placements that failed for capacity.
	Unschedulable int `json:"unschedulable"`
}

// ScalingResult is the full Fig. S1 output, JSON-serializable for
// BENCH_placement.json.
type ScalingResult struct {
	Seed          int64         `json:"seed"`
	Scale         float64       `json:"scale"`
	NoFastResolve bool          `json:"no_fast_resolve,omitempty"`
	FixedNodes    int           `json:"fixed_nodes"`
	FixedTenants  int           `json:"fixed_tenants"`
	NodeSweep     []ScalingCell `json:"node_sweep"`
	TenantSweep   []ScalingCell `json:"tenant_sweep"`
}

// GenerateFleetCase builds tenant i of the experiment fleet for the given
// master seed, as an AppCase ready for the harness. Tenant i is independent
// of fleet size, so every cell of both sweeps shares exploration output for
// its common tenants via the profile cache.
func GenerateFleetCase(seed int64, i int) (AppCase, error) {
	f, err := spec.FleetMember(spec.FleetParams{Seed: seed}, i)
	if err != nil {
		return AppCase{}, err
	}
	c, err := spec.Build(f)
	if err != nil {
		return AppCase{}, err
	}
	return AppCase{Name: f.App, Spec: c.Spec, Mix: c.Mix, TotalRPS: c.Rate}, nil
}

// placeCycleNs micro-times Place+Release on a fresh synthetic cluster of n
// nodes filled to ~55%, indexed or linear.
func placeCycleNs(n int, seed int64, linear bool, iters int) float64 {
	caps := cluster.SyntheticCapacities(n, seed)
	var cl *cluster.Cluster
	if linear {
		cl = cluster.NewReference(cluster.WorstFit, caps...)
	} else {
		cl = cluster.New(cluster.WorstFit, caps...)
	}
	sizes := []float64{1, 2, 4, 8}
	for i := 0; cl.TotalUsed() < 0.55*cl.TotalCapacity(); i++ {
		if _, err := cl.Place(sizes[i%len(sizes)]); err != nil {
			panic(err)
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		p, err := cl.Place(sizes[i%len(sizes)])
		if err != nil {
			panic(err)
		}
		cl.Release(p)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// runScalingCell deploys a tenant fleet on a synthetic cluster behind one
// arbiter and drives it under each tenant's nominal load.
func runScalingCell(opts Options, nodes, tenants int, dur sim.Time, noFast bool) ScalingCell {
	cell := ScalingCell{Nodes: nodes, Tenants: tenants}

	eng := sim.NewEngine(opts.Seed + 2000)
	cl := cluster.Synthetic(cluster.WorstFit, nodes, opts.Seed)
	arb := core.NewArbiter(eng, cl)

	// Admit the fleet in tenant order. A tenant can fail admission for
	// capacity (ErrAdmission), an infeasible generated SLA (solve error), or
	// an exploration panic — all count as rejected, and the fleet runs on.
	admit := func(i int) (ten *core.Tenant, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("tenant %02d: %v", i, r)
			}
		}()
		c, err := GenerateFleetCase(opts.Seed, i)
		if err != nil {
			return nil, err
		}
		_, profiles, _ := opts.ursaProfiles(c)
		return arb.Admit(core.TenantSpec{
			Name:          c.Name,
			Spec:          c.Spec,
			Profiles:      profiles,
			Mix:           c.Mix,
			TotalRPS:      c.TotalRPS,
			NoFastResolve: noFast,
		})
	}
	admitted := make([]*core.Tenant, 0, tenants)
	for i := 0; i < tenants; i++ {
		ten, err := admit(i)
		if err != nil {
			opts.logf("figs1: nodes=%d tenants=%d: reject: %v", nodes, tenants, err)
			cell.Rejected++
			continue
		}
		admitted = append(admitted, ten)
		workload.New(eng, ten.App, workload.Constant{Value: ten.TotalRPS}, ten.Mix).Start()
	}
	cell.Admitted = len(admitted)

	warm := 2 * sim.Minute
	if len(admitted) > 0 {
		arb.StartRefresh(0)
		eng.RunUntil(warm + dur)
		viol := 0.0
		for _, ten := range admitted {
			viol += violationRate(ten.App, ten.App.Spec, warm, warm+dur)
		}
		cell.ViolationRate = viol / float64(len(admitted))
		cell.DecisionMs = arb.AvgDecisionMillis()
		cell.FastShare = arb.FastShare()
		cell.Unschedulable = arb.UnschedulableEvents()
		arb.Stop()
	}

	iters := opts.scaleInt(200000, 20000)
	cell.PlaceNsIndexed = placeCycleNs(nodes, opts.Seed, false, iters)
	cell.PlaceNsLinear = placeCycleNs(nodes, opts.Seed, true, iters)
	if cell.PlaceNsIndexed > 0 {
		cell.PlaceSpeedup = cell.PlaceNsLinear / cell.PlaceNsIndexed
	}
	return cell
}

// RunScaling executes the Fig. S1 grid: the node sweep at FixedTenants and
// the tenant sweep at FixedNodes. Cells fan out across the worker pool and
// merge in canonical order.
func RunScaling(opts Options, params ScalingParams) ScalingResult {
	opts.defaults()
	params.defaults()
	if opts.NoFastResolve {
		params.NoFastResolve = true
	}
	res := ScalingResult{
		Seed:          opts.Seed,
		Scale:         opts.Scale,
		NoFastResolve: params.NoFastResolve,
		FixedNodes:    params.FixedNodes,
		FixedTenants:  params.FixedTenants,
	}

	dur := opts.scaleTime(10*sim.Minute, 4*sim.Minute)
	type job struct{ nodes, tenants int }
	var jobs []job
	for _, n := range params.Nodes {
		jobs = append(jobs, job{n, params.FixedTenants})
	}
	for _, tn := range params.Tenants {
		jobs = append(jobs, job{params.FixedNodes, tn})
	}
	cells := make([]ScalingCell, len(jobs))
	opts.forEach(len(jobs), func(i int) {
		opts.logf("figs1: nodes=%d tenants=%d", jobs[i].nodes, jobs[i].tenants)
		cells[i] = runScalingCell(opts, jobs[i].nodes, jobs[i].tenants, dur, params.NoFastResolve)
	})
	res.NodeSweep = cells[:len(params.Nodes)]
	res.TenantSweep = cells[len(params.Nodes):]
	return res
}

// JSON renders the result for BENCH_placement.json.
func (r ScalingResult) JSON() []byte {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		panic(err)
	}
	return append(data, '\n')
}

// Render prints the Fig. S1 scaling tables.
func (r ScalingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.S1 — fleet scaling curve (seed %d, scale %.2f", r.Seed, r.Scale)
	if r.NoFastResolve {
		b.WriteString(", fast resolve off")
	}
	b.WriteString(")\nplace-ns and decision-ms are wall-clock; simulated metrics are deterministic\n")

	table := func(title, key string, cells []ScalingCell, label func(ScalingCell) int) {
		fmt.Fprintf(&b, "\n%s\n", title)
		fmt.Fprintf(&b, "%8s %12s %12s %8s %11s %6s %6s %9s %7s %8s\n",
			key, "place-idx", "place-lin", "speedup", "decision", "fast", "viol", "admitted", "reject", "unsched")
		for _, c := range cells {
			fmt.Fprintf(&b, "%8d %10.0fns %10.0fns %7.1fx %9.3fms %5.0f%% %5.1f%% %9d %7d %8d\n",
				label(c), c.PlaceNsIndexed, c.PlaceNsLinear, c.PlaceSpeedup,
				c.DecisionMs, c.FastShare*100, c.ViolationRate*100,
				c.Admitted, c.Rejected, c.Unschedulable)
		}
	}
	table(fmt.Sprintf("node sweep (%d tenants):", r.FixedTenants), "nodes",
		r.NodeSweep, func(c ScalingCell) int { return c.Nodes })
	table(fmt.Sprintf("tenant sweep (%d nodes):", r.FixedNodes), "tenants",
		r.TenantSweep, func(c ScalingCell) int { return c.Tenants })
	return b.String()
}
