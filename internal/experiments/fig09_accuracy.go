package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ursa/internal/core"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/workload"
)

// AccuracyPoint is one 5-minute window of Fig. 9/10: the model's estimated
// latency vs the measured latency for one request class.
type AccuracyPoint struct {
	Minute      float64
	EstimatedMs float64
	MeasuredMs  float64
}

// AccuracyResult reproduces Fig. 9 (social network) or Fig. 10 (video
// pipeline): estimated vs measured latency over a deployment with
// dynamically changing resource allocations.
type AccuracyResult struct {
	App string
	// Series maps class → windows.
	Series map[string][]AccuracyPoint
	// Ratio maps class → mean(estimated/measured).
	Ratio map[string]float64
}

// RunAccuracy measures estimation accuracy for the given app case. Per
// §VII-D, per-service and end-to-end distributions are recorded every
// window while allocations change; the estimator is the Theorem 1 bound on
// the window's own per-service distributions, scaled by the expected
// overestimation ratio calibrated on the first quarter of windows.
func RunAccuracy(opts Options, c AppCase, classes []string) AccuracyResult {
	opts.defaults()
	windowLen := 5 * sim.Minute
	nWindows := opts.scaleInt(30, 8) // 150 min at full scale

	eng := sim.NewEngine(opts.Seed)
	app, err := services.NewApp(eng, c.Spec)
	if err != nil {
		panic(err)
	}
	gen := workload.New(eng, app, workload.Constant{Value: c.TotalRPS}, c.Mix)
	gen.Start()

	// Dynamically vary allocations (the online-exploration regime of
	// §VII-D): random walk over replica counts, staying feasible.
	rng := eng.RNG("fig9-walk")
	names := app.ServiceNames()
	eng.Every(2*windowLen/3, func() {
		name := names[rng.Intn(len(names))]
		svc := app.Service(name)
		delta := rng.Intn(3) - 1
		svc.SetReplicas(svc.Replicas() + delta)
	})

	targets := map[string]core.ClassTarget{}
	for _, tgt := range core.TargetsFor(c.Spec) {
		targets[tgt.Name] = tgt
	}

	type window struct {
		bounds   map[string]float64
		measured map[string]float64
	}
	var wins []window
	for w := 0; w < nWindows; w++ {
		start := eng.Now()
		eng.RunFor(windowLen)
		end := eng.Now()
		dists := map[string][]float64{}
		for _, name := range names {
			svc := app.Service(name)
			for _, class := range svc.RespByClass.Classes() {
				rec := svc.RespByClass.Class(class)
				dists[name+"/"+class] = rec.Between(start, end)
			}
		}
		win := window{bounds: map[string]float64{}, measured: map[string]float64{}}
		for _, class := range classes {
			tgt := targets[class]
			if bound, ok := core.EstimateBound(tgt, dists); ok {
				win.bounds[class] = bound
			}
			if rec := app.E2E.Class(class); rec != nil {
				vals := rec.Between(start, end)
				if len(vals) > 0 {
					win.measured[class] = stats.Percentile(vals, tgt.Percentile)
				}
			}
		}
		wins = append(wins, win)
	}

	// Calibrate the overestimation ratio on the first quarter of windows.
	calib := map[string]float64{}
	nCal := maxInt(1, len(wins)/4)
	for _, class := range classes {
		var ratios []float64
		for _, w := range wins[:nCal] {
			if b, ok := w.bounds[class]; ok && b > 0 {
				if m, ok := w.measured[class]; ok && m > 0 {
					ratios = append(ratios, m/b)
				}
			}
		}
		if len(ratios) > 0 {
			calib[class] = stats.Mean(ratios)
		} else {
			calib[class] = 1
		}
	}

	res := AccuracyResult{App: c.Name, Series: map[string][]AccuracyPoint{}, Ratio: map[string]float64{}}
	for _, class := range classes {
		var ratios []float64
		for wi, w := range wins[nCal:] {
			b, okB := w.bounds[class]
			m, okM := w.measured[class]
			if !okB || !okM || m <= 0 {
				continue
			}
			est := b * calib[class]
			res.Series[class] = append(res.Series[class], AccuracyPoint{
				Minute:      float64(nCal+wi) * windowLen.Minutes(),
				EstimatedMs: est,
				MeasuredMs:  m,
			})
			ratios = append(ratios, est/m)
		}
		if len(ratios) > 0 {
			res.Ratio[class] = stats.Mean(ratios)
		}
	}
	return res
}

// Render prints the estimated-vs-measured series.
func (r AccuracyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.9/10 — %s: estimated vs measured latency\n", r.App)
	classes := make([]string, 0, len(r.Series))
	for class := range r.Series {
		classes = append(classes, class)
	}
	sort.Strings(classes) // map order would shuffle sections run to run
	for _, class := range classes {
		pts := r.Series[class]
		fmt.Fprintf(&b, "class %s (mean est/meas ratio %.2f):\n", class, r.Ratio[class])
		fmt.Fprintf(&b, "%8s %14s %14s\n", "min", "estimated(ms)", "measured(ms)")
		for _, p := range pts {
			fmt.Fprintf(&b, "%8.0f %14.1f %14.1f\n", p.Minute, p.EstimatedMs, p.MeasuredMs)
		}
	}
	return b.String()
}
