// Parallel experiment harness. Every simulation cell of the evaluation grid
// — one (app, scenario, system, seed) deployment — builds its own sim.Engine
// and manager, so cells are embarrassingly parallel. forEach fans them over
// a bounded worker pool and writes each result into its index slot, so the
// merged output is byte-identical to a sequential run (Parallelism: 1).
//
// Shared state is confined to two caches, both singleflight-deduplicated:
// profileCache (exploration output, returned as deep copies) and protoCache
// (trained Sinan/Firm prototypes, handed out as clones). Progress logging is
// serialized through a package-level mutex.
package experiments

import (
	"runtime"
	"sync"
)

// workers resolves the effective worker count: Options.Parallelism when
// positive, GOMAXPROCS otherwise.
func (o *Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs fn(0) … fn(n-1) on a pool of at most workers() goroutines.
// Callers pre-size their result slice and have fn(i) write slot i only, which
// makes the merge order canonical regardless of scheduling. A panic in any
// task is re-raised in the caller once all workers have drained, matching the
// sequential failure mode.
func (o *Options) forEach(n int, fn func(i int)) {
	w := o.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	jobs := make(chan int)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r })
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// ForEach exposes the bounded worker pool to callers that orchestrate
// several experiments at once (e.g. cmd/ursa-bench -exp all): fn(i) runs for
// every i in [0, n) on at most opts.Parallelism workers. Callers must write
// results into index-addressed slots to keep output deterministic.
func ForEach(opts Options, n int, fn func(i int)) {
	opts.defaults()
	opts.forEach(n, fn)
}

// protoCache memoises expensive trained-manager prototypes (Sinan's CNN+GBT,
// Firm's pretrained agents) per (system, app, seed, scale). Prototypes are
// never attached to an app; callers clone them per deployment cell. The
// per-entry sync.Once gives singleflight semantics: concurrent cells asking
// for the same prototype block on one training run instead of duplicating it.
var (
	protoMu    sync.Mutex
	protoCache = map[string]*protoEntry{}
)

type protoEntry struct {
	once sync.Once
	val  any
}

// protoFor returns the cached value for key, building it at most once.
func protoFor(key string, build func() any) any {
	protoMu.Lock()
	e := protoCache[key]
	if e == nil {
		e = &protoEntry{}
		protoCache[key] = e
	}
	protoMu.Unlock()
	e.once.Do(func() { e.val = build() })
	return e.val
}

// resetCaches clears the exploration and prototype caches (test hook).
func resetCaches() {
	profileMu.Lock()
	profileCache = map[string]*profileCacheEntry{}
	profileMu.Unlock()
	protoMu.Lock()
	protoCache = map[string]*protoEntry{}
	protoMu.Unlock()
}
