package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ursa/internal/core"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/topology"
	"ursa/internal/workload"
)

// AdaptationResult reproduces §VII-G / Fig. 14: the object-detection service
// swaps its model (DETR → MobileNet); Ursa re-explores only that service,
// recalculates thresholds, and redeploys.
type AdaptationResult struct {
	// ReexploreSamples / ReexploreHours are the partial-exploration cost.
	ReexploreSamples int
	ReexploreHours   float64
	// Original / Updated hold the end-to-end object-detect latency samples
	// of the deployments before and after the change.
	Original, Updated []float64
	// ViolationRateOriginal / Updated are the fractions of object-detect
	// requests whose latency exceeded the SLA target — the metric Fig. 14
	// reports against the latency CDF (0.62% and 0.50% in the paper).
	ViolationRateOriginal float64
	ViolationRateUpdated  float64
	SLAMillis             float64
}

// mobilenetSocialNetwork returns the social network with the object
// detector swapped to a lighter model (≈3.5× less CPU per inference).
func mobilenetSocialNetwork() services.AppSpec {
	spec := topology.SocialNetwork()
	ss := spec.ServiceSpecByName("object-detect-ml")
	ss.Handlers = map[string][]services.Step{
		topology.ObjectDetect: services.Seq(
			services.Call{Service: "image-store", Mode: services.NestedRPC},
			services.Call{Service: "post-storage", Mode: services.NestedRPC},
			services.Compute{MeanMs: 620, CV: 0.4},
		),
	}
	return spec
}

// RunAdaptation executes the service-change study.
func RunAdaptation(opts Options) AdaptationResult {
	opts.defaults()
	c, _ := AppCaseByName("social-network")
	res := AdaptationResult{SLAMillis: 10000}

	// Full exploration on the original app, deploy, measure.
	opts.logf("fig14: exploring original application")
	ex, profiles, _ := opts.ursaProfiles(c)
	dur := opts.scaleTime(20*sim.Minute, 16*sim.Minute)
	res.Original, res.ViolationRateOriginal = opts.deployAndMeasureClass(c.Spec, profiles, c, topology.ObjectDetect, dur)

	// Service update: only the modified service is re-explored (§V.2).
	opts.logf("fig14: partial re-exploration of object-detect-ml")
	updated := mobilenetSocialNetwork()
	ex2 := &core.Explorer{Spec: updated, Mix: ex.Mix, TotalRPS: ex.TotalRPS, Thresholds: ex.Thresholds}
	p, err := ex2.ExploreService("object-detect-ml", opts.exploreConfig())
	if err != nil {
		panic(err)
	}
	res.ReexploreSamples = p.Samples
	res.ReexploreHours = (sim.Time(p.Samples) * sim.Minute).Hours()
	newProfiles := map[string]*core.Profile{}
	for k, v := range profiles {
		newProfiles[k] = v
	}
	newProfiles["object-detect-ml"] = p

	updatedCase := c
	updatedCase.Spec = updated
	res.Updated, res.ViolationRateUpdated = opts.deployAndMeasureClass(updated, newProfiles, updatedCase, topology.ObjectDetect, dur)
	return res
}

// deployAndMeasureClass runs Ursa on a spec and returns the end-to-end
// latency samples and per-window violation rate for one class.
func (o *Options) deployAndMeasureClass(spec services.AppSpec, profiles map[string]*core.Profile, c AppCase, class string, dur sim.Time) ([]float64, float64) {
	eng := sim.NewEngine(o.Seed + 40)
	app, err := services.NewApp(eng, spec)
	if err != nil {
		panic(err)
	}
	mgr := o.newCoreManager(spec, profiles)
	if err := mgr.Run(app, c.Mix, c.TotalRPS, core.ControllerConfig{}, core.AnomalyConfig{}); err != nil {
		panic(err)
	}
	gen := workload.New(eng, app, workload.Constant{Value: c.TotalRPS}, c.Mix)
	gen.Start()
	warm := 2 * sim.Minute
	eng.RunUntil(warm + dur)
	mgr.Stop()

	rec := app.E2E.Class(class)
	if rec == nil {
		return nil, 0
	}
	samples := rec.Between(warm, warm+dur)
	cs := spec.Class(class)
	violated := 0
	for _, v := range samples {
		if v > cs.SLAMillis {
			violated++
		}
	}
	rate := 0.0
	if len(samples) > 0 {
		rate = float64(violated) / float64(len(samples))
	}
	return samples, rate
}

// CDF returns sorted (latency, cumulative fraction) pairs for rendering.
func CDF(samples []float64) ([]float64, []float64) {
	xs := append([]float64(nil), samples...)
	sort.Float64s(xs)
	ys := make([]float64, len(xs))
	for i := range xs {
		ys[i] = float64(i+1) / float64(len(xs))
	}
	return xs, ys
}

// Render prints the adaptation summary and latency CDF quantiles.
func (r AdaptationResult) Render() string {
	var b strings.Builder
	b.WriteString("Fig.14 — adapting to a service change (object-detect: DETR → MobileNet)\n")
	fmt.Fprintf(&b, "partial re-exploration: %d samples, %.2f h\n", r.ReexploreSamples, r.ReexploreHours)
	fmt.Fprintf(&b, "SLA violation rate: original %.2f%%, updated %.2f%% (SLA %.0f ms)\n",
		r.ViolationRateOriginal*100, r.ViolationRateUpdated*100, r.SLAMillis)
	fmt.Fprintf(&b, "%10s %14s %14s\n", "quantile", "original(ms)", "updated(ms)")
	for _, q := range []float64{10, 25, 50, 75, 90, 99} {
		fmt.Fprintf(&b, "%9.0f%% %14.0f %14.0f\n", q,
			stats.Percentile(r.Original, q), stats.Percentile(r.Updated, q))
	}
	return b.String()
}
