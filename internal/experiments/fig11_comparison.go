package experiments

import (
	"fmt"
	"sort"
	"strings"

	"ursa/internal/sim"
	"ursa/internal/topology"
	"ursa/internal/workload"
)

// ComparisonCell is one (app, load, system) deployment outcome — a bar of
// Fig. 11 (SLA violation rate) and Fig. 12 (average CPU allocation).
type ComparisonCell struct {
	App           string
	Load          string // "constant", "dynamic", "skewed"
	System        string
	ViolationRate float64
	AvgCPUs       float64
	DecisionMs    float64
}

// ComparisonResult reproduces Fig. 11 and Fig. 12.
type ComparisonResult struct {
	Cells []ComparisonCell
}

// Systems lists the competing approaches of §VII-B.
func Systems() []string { return []string{"ursa", "sinan", "firm", "auto-a", "auto-b"} }

// loadScenario describes one load regime for an app.
type loadScenario struct {
	name    string
	pattern workload.Pattern
	mix     workload.Mix
}

// loadScenarios builds the §VII-E load grid for a case: constant, dynamic
// (diurnal + burst phases) and skewed request mixes. Scenario features are
// placed relative to dur so scaled-down runs still exercise them.
func loadScenarios(c AppCase, dur sim.Time) []loadScenario {
	// Dynamic load: a diurnal ramp with a sharp burst superimposed (the
	// paper's bursts raise RPS by 50–125% abruptly).
	dynamic := workload.Modulate{
		Base:   workload.Diurnal{Base: c.TotalRPS * 0.6, Peak: c.TotalRPS * 1.3, Period: dur * 4 / 5},
		Factor: 2.0,
		Start:  dur * 2 / 5,
		Len:    dur / 5,
	}
	scenarios := []loadScenario{
		{"constant", workload.Constant{Value: c.TotalRPS}, c.Mix},
		{"dynamic", dynamic, c.Mix},
	}
	var skewed workload.Mix
	switch c.Name {
	case "video-pipeline":
		// Priority ratios not covered by exploration: 40:60 (the paper also
		// runs 60:40; the bench CLI exposes both).
		skewed = topology.VideoPipelineMix(40, 60)
	case "media-service":
		skewed = c.Mix.Scaled(topology.RateVideo, 2)
	default:
		skewed = c.Mix.Scaled(topology.UploadComment, 2)
	}
	scenarios = append(scenarios, loadScenario{"skewed", workload.Constant{Value: c.TotalRPS}, skewed})
	return scenarios
}

// comparisonCellJob is one (app, scenario, system) deployment of the grid.
type comparisonCellJob struct {
	c      AppCase
	scen   loadScenario
	system string
}

// comparisonJobs enumerates the filtered grid in its canonical order.
func comparisonJobs(dur sim.Time, appFilter, systemFilter []string) []comparisonCellJob {
	var jobs []comparisonCellJob
	for _, c := range AppCases() {
		if appFilter != nil && !contains(appFilter, c.Name) {
			continue
		}
		for _, scen := range loadScenarios(c, dur) {
			for _, system := range Systems() {
				if systemFilter != nil && !contains(systemFilter, system) {
					continue
				}
				jobs = append(jobs, comparisonCellJob{c: c, scen: scen, system: system})
			}
		}
	}
	return jobs
}

// RunComparison executes the Fig. 11/12 grid. Apps and systems may be
// filtered (nil means all). Every cell gets a fresh manager — reusing one
// across scenarios would make baseline results depend on scenario order and
// carry warm RL/autoscaler state between runs — and cells run concurrently
// up to Options.Parallelism, merged back in canonical grid order. Expensive
// preparation (exploration, ML training) happens lazily, so filtered-out
// systems are never trained.
func RunComparison(opts Options, appFilter, systemFilter []string) ComparisonResult {
	opts.defaults()
	dur := opts.scaleTime(30*sim.Minute, 8*sim.Minute)
	jobs := comparisonJobs(dur, appFilter, systemFilter)
	cells := make([]ComparisonCell, len(jobs))
	opts.forEach(len(jobs), func(i int) {
		j := jobs[i]
		mgr := opts.newManagerFor(j.c, j.system)
		opts.logf("fig11: %s / %s / %s", j.c.Name, j.scen.name, j.system)
		r := opts.runDeployment(j.c, mgr, j.scen.pattern, j.scen.mix, dur)
		cells[i] = ComparisonCell{
			App: j.c.Name, Load: j.scen.name, System: j.system,
			ViolationRate: r.ViolationRate,
			AvgCPUs:       r.AvgCPUs,
			DecisionMs:    r.DecisionMs,
		}
	})
	return ComparisonResult{Cells: cells}
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Cell finds a specific result.
func (r ComparisonResult) Cell(app, load, system string) (ComparisonCell, bool) {
	for _, c := range r.Cells {
		if c.App == app && c.Load == load && c.System == system {
			return c, true
		}
	}
	return ComparisonCell{}, false
}

// Render prints the Fig. 11 and Fig. 12 tables.
func (r ComparisonResult) Render() string {
	var b strings.Builder
	apps := map[string]bool{}
	loads := map[string]bool{}
	for _, c := range r.Cells {
		apps[c.App] = true
		loads[c.Load] = true
	}
	appList := keys(apps)
	loadList := keys(loads)
	b.WriteString("Fig.11 — SLA violation rate (%) / Fig.12 — average CPU allocation (cores)\n")
	for _, app := range appList {
		fmt.Fprintf(&b, "\n%s:\n%-10s", app, "load")
		for _, s := range Systems() {
			fmt.Fprintf(&b, "%20s", s)
		}
		b.WriteString("\n")
		for _, load := range loadList {
			fmt.Fprintf(&b, "%-10s", load)
			for _, s := range Systems() {
				if c, ok := r.Cell(app, load, s); ok {
					fmt.Fprintf(&b, "%11.1f%%/%6.1fc", c.ViolationRate*100, c.AvgCPUs)
				} else {
					fmt.Fprintf(&b, "%20s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
