package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ursa/internal/sim"
	"ursa/internal/spec"
	"ursa/internal/workload"
)

// The corpus experiment (Fig. C1 — beyond the paper) asks the
// generalization question the three hand-built benchmarks cannot: does
// Ursa's win over the baselines hold across the topology space, or only on
// the apps it was tuned against? It samples N random layered-DAG
// applications from the seeded generator in internal/spec, runs Ursa and
// every baseline on each at the generated nominal load, and reports
// per-baseline win rates plus the worst cell each system produced. The
// whole corpus is reproducible from (seed, N): topology i of a run is
// Generate(seed*offset + i), and cells are merged in canonical order, so
// output is byte-identical at any parallelism.

// CorpusParams sizes the generated-topology experiment.
type CorpusParams struct {
	// N is the number of generated topologies (default 100).
	N int
	// Systems to compare (default Systems(): ursa + all baselines).
	Systems []string
}

func (p *CorpusParams) defaults() {
	if p.N <= 0 {
		p.N = 100
	}
	if p.Systems == nil {
		p.Systems = Systems()
	}
}

// corpusSeedStride separates per-topology generator seed streams.
const corpusSeedStride = 1000003

// CorpusTopology summarizes one generated application.
type CorpusTopology struct {
	Name     string  `json:"name"`
	Seed     int64   `json:"seed"`
	Services int     `json:"services"`
	Classes  int     `json:"classes"`
	RPS      float64 `json:"rps"`
}

// CorpusCell is one (topology, system) deployment outcome.
type CorpusCell struct {
	Topology      string  `json:"topology"`
	System        string  `json:"system"`
	ViolationRate float64 `json:"violation_rate"`
	AvgCPUs       float64 `json:"avg_cpus"`
	// DeployFailed marks a manager that could not produce a deployment at
	// all (e.g. no feasible LPR combination for a generated SLA); the cell
	// scores as a total SLA failure.
	DeployFailed bool `json:"deploy_failed,omitempty"`
}

// CorpusVerdict aggregates Ursa-vs-baseline outcomes over the corpus.
type CorpusVerdict struct {
	Baseline string  `json:"baseline"`
	Wins     int     `json:"wins"`
	Ties     int     `json:"ties"`
	Losses   int     `json:"losses"`
	WinRate  float64 `json:"win_rate"`
}

// CorpusWorst is a system's worst cell: its highest violation rate.
type CorpusWorst struct {
	System        string  `json:"system"`
	Topology      string  `json:"topology"`
	ViolationRate float64 `json:"violation_rate"`
	AvgCPUs       float64 `json:"avg_cpus"`
}

// CorpusResult is the full Fig. C1 output, JSON-serializable for
// BENCH_corpus.json.
type CorpusResult struct {
	N          int              `json:"n"`
	Seed       int64            `json:"seed"`
	Scale      float64          `json:"scale"`
	Systems    []string         `json:"systems"`
	Topologies []CorpusTopology `json:"topologies"`
	Cells      []CorpusCell     `json:"cells"`
	Verdicts   []CorpusVerdict  `json:"verdicts"`
	Worst      []CorpusWorst    `json:"worst"`
}

// corpusMeets is the SLA bar for "this system handled the topology": at most
// 5% of (class, minute) windows violated.
const corpusMeets = 0.05

// corpusBeats reports whether outcome a strictly beats outcome b: meeting
// the SLA when b does not, meeting it on ≥2% fewer CPUs, or — when both
// fail — failing by less.
func corpusBeats(a, b CorpusCell) bool {
	am, bm := a.ViolationRate <= corpusMeets, b.ViolationRate <= corpusMeets
	switch {
	case am && !bm:
		return true
	case am && bm:
		return a.AvgCPUs < b.AvgCPUs*0.98
	case !am && !bm:
		return a.ViolationRate < b.ViolationRate-1e-9
	default:
		return false
	}
}

// GenerateCorpusCase builds topology i of the corpus for the given master
// seed, as an AppCase ready for the harness. Exposed so ursa-sim can dump
// corpus members for inspection.
func GenerateCorpusCase(seed int64, i int) (AppCase, CorpusTopology, error) {
	gp := spec.GenParams{
		Name: fmt.Sprintf("corpus-s%d-%03d", seed, i),
		Seed: seed*corpusSeedStride + int64(i),
	}
	f, err := spec.Generate(gp)
	if err != nil {
		return AppCase{}, CorpusTopology{}, err
	}
	c, err := spec.Build(f)
	if err != nil {
		return AppCase{}, CorpusTopology{}, err
	}
	return AppCase{Name: gp.Name, Spec: c.Spec, Mix: c.Mix, TotalRPS: c.Rate},
		CorpusTopology{
			Name:     gp.Name,
			Seed:     gp.Seed,
			Services: len(c.Spec.Services),
			Classes:  len(c.Spec.Classes),
			RPS:      c.Rate,
		}, nil
}

// runCorpusCell deploys one (topology, system) cell. Generated topologies
// are adversarial by design: a sampled SLA can be infeasible for a manager's
// explored allocation space, and such a manager panics on deploy. The corpus
// records that as a total SLA failure for the cell — a finding, not a crash.
func runCorpusCell(opts Options, c AppCase, system string, dur sim.Time) (cell CorpusCell) {
	cell = CorpusCell{Topology: c.Name, System: system}
	defer func() {
		if r := recover(); r != nil {
			opts.logf("figc1: %s / %s: deploy failed: %v", c.Name, system, r)
			cell.ViolationRate, cell.AvgCPUs, cell.DeployFailed = 1, 0, true
		}
	}()
	mgr := opts.newManagerFor(c, system)
	r := opts.runDeployment(c, mgr, workload.Constant{Value: c.TotalRPS}, c.Mix, dur)
	cell.ViolationRate, cell.AvgCPUs = r.ViolationRate, r.AvgCPUs
	return cell
}

// RunCorpus executes the generated-topology grid: N topologies × systems,
// each deployed at its generated nominal load for a scaled window.
func RunCorpus(opts Options, params CorpusParams) CorpusResult {
	opts.defaults()
	params.defaults()
	res := CorpusResult{N: params.N, Seed: opts.Seed, Scale: opts.Scale, Systems: params.Systems}

	cases := make([]AppCase, params.N)
	for i := 0; i < params.N; i++ {
		c, topo, err := GenerateCorpusCase(opts.Seed, i)
		if err != nil {
			panic(fmt.Sprintf("figc1: generate %d: %v", i, err))
		}
		cases[i] = c
		res.Topologies = append(res.Topologies, topo)
	}

	dur := opts.scaleTime(12*sim.Minute, 5*sim.Minute)
	type cellJob struct {
		ci     int
		system string
	}
	var jobs []cellJob
	for i := range cases {
		for _, s := range params.Systems {
			jobs = append(jobs, cellJob{i, s})
		}
	}
	cells := make([]CorpusCell, len(jobs))
	opts.forEach(len(jobs), func(j int) {
		job := jobs[j]
		opts.logf("figc1: %s / %s", cases[job.ci].Name, job.system)
		cells[j] = runCorpusCell(opts, cases[job.ci], job.system, dur)
	})
	res.Cells = cells

	// Ursa-vs-baseline verdicts per topology.
	cell := func(topo, system string) (CorpusCell, bool) {
		for _, c := range cells {
			if c.Topology == topo && c.System == system {
				return c, true
			}
		}
		return CorpusCell{}, false
	}
	for _, b := range params.Systems {
		if b == "ursa" {
			continue
		}
		v := CorpusVerdict{Baseline: b}
		for _, t := range res.Topologies {
			u, uok := cell(t.Name, "ursa")
			bc, bok := cell(t.Name, b)
			if !uok || !bok {
				continue
			}
			switch {
			case corpusBeats(u, bc):
				v.Wins++
			case corpusBeats(bc, u):
				v.Losses++
			default:
				v.Ties++
			}
		}
		if n := v.Wins + v.Ties + v.Losses; n > 0 {
			v.WinRate = float64(v.Wins) / float64(n)
		}
		res.Verdicts = append(res.Verdicts, v)
	}

	// Worst cell per system.
	for _, s := range params.Systems {
		w := CorpusWorst{System: s, ViolationRate: -1}
		for _, c := range cells {
			if c.System == s && c.ViolationRate > w.ViolationRate {
				w.Topology, w.ViolationRate, w.AvgCPUs = c.Topology, c.ViolationRate, c.AvgCPUs
			}
		}
		if w.ViolationRate >= 0 {
			res.Worst = append(res.Worst, w)
		}
	}
	return res
}

// JSON renders the result for BENCH_corpus.json.
func (r CorpusResult) JSON() []byte {
	data, err := json.MarshalIndent(r, "", " ")
	if err != nil {
		panic(err)
	}
	return append(data, '\n')
}

// Render prints the Fig. C1 summary table.
func (r CorpusResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.C1 — generated-topology corpus (N=%d, seed %d, scale %.2f)\n", r.N, r.Seed, r.Scale)
	fmt.Fprintf(&b, "SLA bar: ≤%.0f%% violated windows\n\n", corpusMeets*100)

	fmt.Fprintf(&b, "%-10s %6s %6s %8s %10s\n", "vs", "wins", "ties", "losses", "win-rate")
	for _, v := range r.Verdicts {
		fmt.Fprintf(&b, "%-10s %6d %6d %8d %9.1f%%\n", v.Baseline, v.Wins, v.Ties, v.Losses, v.WinRate*100)
	}

	b.WriteString("\nper-system aggregate / worst cell:\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %7s %12s %18s\n", "system", "mean-viol", "mean-cpus", "failed", "worst-viol", "worst-topology")
	for _, s := range r.Systems {
		var viol, cpus float64
		n, failed := 0, 0
		for _, c := range r.Cells {
			if c.System == s {
				viol += c.ViolationRate
				cpus += c.AvgCPUs
				n++
				if c.DeployFailed {
					failed++
				}
			}
		}
		if n == 0 {
			continue
		}
		var worst CorpusWorst
		for _, w := range r.Worst {
			if w.System == s {
				worst = w
			}
		}
		fmt.Fprintf(&b, "%-10s %9.1f%% %9.1fc %7d %11.1f%% %18s\n",
			s, viol/float64(n)*100, cpus/float64(n), failed, worst.ViolationRate*100, worst.Topology)
	}

	// The hardest topologies overall, by Ursa violation, for drill-down.
	type hard struct {
		name string
		v    float64
	}
	var hards []hard
	for _, c := range r.Cells {
		if c.System == "ursa" {
			hards = append(hards, hard{c.Topology, c.ViolationRate})
		}
	}
	sort.Slice(hards, func(i, j int) bool {
		if hards[i].v != hards[j].v {
			return hards[i].v > hards[j].v
		}
		return hards[i].name < hards[j].name
	})
	if len(hards) > 5 {
		hards = hards[:5]
	}
	b.WriteString("\nhardest topologies for ursa:\n")
	for _, h := range hards {
		fmt.Fprintf(&b, "  %-18s %5.1f%%\n", h.name, h.v*100)
	}
	return b.String()
}
