package experiments

import (
	"fmt"
	"strings"
	"time"

	"ursa/internal/baselines/firm"
	"ursa/internal/core"
	"ursa/internal/mip"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// ControlPlaneResult reproduces Table VI: average wall-clock control-plane
// latency (ms) for deployment decisions and for model updates.
type ControlPlaneResult struct {
	// DeployMs maps system → mean per-decision latency.
	DeployMs map[string]float64
	// UpdateMs maps system → model-update latency (Ursa: one MIP re-solve;
	// Firm: one RL training iteration; autoscaling: threshold check; Sinan
	// retraining is reported by the paper as N/A / minutes-scale).
	UpdateMs map[string]float64
}

// RunControlPlane measures decision and update latencies on the social
// network. All systems run the same deployment; latencies are wall-clock.
// Unlike the other grids, the measurement loop deliberately stays sequential
// regardless of Options.Parallelism: Table VI reports wall-clock latency,
// and running the systems concurrently would distort it through CPU
// contention. Manager preparation still reuses the shared trained-prototype
// caches, so nothing is retrained here.
func RunControlPlane(opts Options) ControlPlaneResult {
	opts.defaults()
	c, _ := AppCaseByName("social-network")
	res := ControlPlaneResult{DeployMs: map[string]float64{}, UpdateMs: map[string]float64{}}

	dur := opts.scaleTime(15*sim.Minute, 6*sim.Minute)
	ursa := opts.newUrsa(c)
	mgrs := map[string]interface {
		Attach(*services.App)
		Detach()
		AvgDecisionMillis() float64
	}{
		"ursa":   ursa,
		"sinan":  opts.newSinan(c),
		"firm":   opts.newFirm(c),
		"auto-a": autoscaleA(),
	}
	for _, name := range []string{"ursa", "sinan", "firm", "auto-a"} {
		opts.logf("tab6: measuring %s deployment decisions", name)
		mgr := mgrs[name]
		eng := sim.NewEngine(opts.Seed + 20)
		app, err := services.NewApp(eng, c.Spec)
		if err != nil {
			panic(err)
		}
		gen := workload.New(eng, app, workload.Constant{Value: c.TotalRPS}, c.Mix)
		gen.Start()
		mgr.Attach(app)
		eng.RunUntil(dur)
		mgr.Detach()
		res.DeployMs[name] = mgr.AvgDecisionMillis()
	}

	// Update latencies.
	// Ursa: re-solve the exact MIP (1) through the generic branch-and-bound
	// (the Gurobi-equivalent path of §V.3) plus the specialised solver.
	ex := &core.Explorer{Spec: c.Spec, Mix: c.Mix, TotalRPS: c.TotalRPS}
	model := &core.Model{
		Profiles: ursa.mgr.Profiles,
		Targets:  ursa.mgr.Targets,
		Loads:    ex.ServiceClassLoads(),
	}
	start := time.Now()
	if _, err := model.Solve(); err != nil {
		panic(err)
	}
	res.UpdateMs["ursa"] = float64(time.Since(start).Nanoseconds()) / 1e6

	// Firm: one online training iteration per agent.
	f := mgrs["firm"].(*firm.Firm)
	res.UpdateMs["firm"] = f.AvgTrainMillis()
	res.UpdateMs["auto-a"] = res.DeployMs["auto-a"]
	// Sinan retraining is a full model refit; the paper reports it as
	// minutes on a GPU (N/A for the online path).
	res.UpdateMs["sinan"] = -1

	return res
}

// SolveGenericMIP exposes the exact MIP (1) formulation through the generic
// branch-and-bound solver for a tiny instance — used by benchmarks to report
// the Gurobi-substitute solve time. It returns the solver's objective.
func SolveGenericMIP() float64 {
	// Two services × two LPR points × two percentiles, one class, built
	// directly in MIP (1) form (one-hot δ and γ, linearised products).
	// Variables: δ_a0 δ_a1 δ_b0 δ_b1 γ_a0 γ_a1 γ_b0 γ_b1 z_a00.. (8 z's).
	// For brevity the latency matrix is constant per point so γ choice is
	// free; the instance verifies wiring, not scale.
	nVar := 8 + 8
	costs := []float64{2, 4, 3, 6} // δ costs
	c := make([]float64, nVar)
	copy(c, costs)
	var A [][]float64
	var B []float64
	row := func() []float64 { return make([]float64, nVar) }
	// One-hot constraints (= 1 as two inequalities).
	oneHots := [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}}
	for _, oh := range oneHots {
		r1, r2 := row(), row()
		for _, j := range oh {
			r1[j] = 1
			r2[j] = -1
		}
		A = append(A, r1, r2)
		B = append(B, 1, -1)
	}
	// z_ij ≥ δ_i + γ_j − 1 → δ + γ − z ≤ 1, for the 8 (δ, γ) pairs within
	// each service.
	zBase := 8
	pairs := [][2]int{{0, 4}, {0, 5}, {1, 4}, {1, 5}, {2, 6}, {2, 7}, {3, 6}, {3, 7}}
	lat := []float64{10, 14, 30, 42, 15, 21, 45, 63}
	latRow := row()
	for zi, p := range pairs {
		r := row()
		r[p[0]] = 1
		r[p[1]] = 1
		r[zBase+zi] = -1
		A = append(A, r)
		B = append(B, 1)
		latRow[zBase+zi] = lat[zi]
	}
	// Latency constraint Σ z·D ≤ 40 (forces the fast points).
	A = append(A, latRow)
	B = append(B, 40)
	integer := make([]bool, nVar)
	for j := 0; j < 8; j++ {
		integer[j] = true
	}
	r := mip.Solve(mip.Problem{C: c, A: A, B: B, Integer: integer})
	return r.Obj
}

// Render prints Table VI.
func (r ControlPlaneResult) Render() string {
	var b strings.Builder
	b.WriteString("Table VI — control plane latency (wall-clock ms)\n")
	fmt.Fprintf(&b, "%-10s %12s %12s\n", "system", "deploy", "update")
	for _, name := range []string{"ursa", "sinan", "firm", "auto-a"} {
		upd := "n/a"
		if v, ok := r.UpdateMs[name]; ok && v >= 0 {
			upd = fmt.Sprintf("%.3f", v)
		}
		fmt.Fprintf(&b, "%-10s %12.3f %12s\n", name, r.DeployMs[name], upd)
	}
	return b.String()
}
