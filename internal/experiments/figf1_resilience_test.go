package experiments

import (
	"strings"
	"testing"
)

func TestResilienceShapes(t *testing.T) {
	r := RunResilience(quick())
	if len(r.Cells) != len(ResilienceSystems())*2 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	for _, system := range ResilienceSystems() {
		base, ok := r.Cell(system, "no-fault")
		if !ok {
			t.Fatalf("missing no-fault cell for %s", system)
		}
		fail, ok := r.Cell(system, "node-fail")
		if !ok {
			t.Fatalf("missing node-fail cell for %s", system)
		}
		if base.Evicted != 0 || base.RecoveryMin != 0 {
			t.Errorf("%s no-fault: evicted=%d recovery=%v, want zeros", system, base.Evicted, base.RecoveryMin)
		}
		if fail.Evicted == 0 {
			t.Errorf("%s node-fail: nothing evicted — node-7 held no replicas?", system)
		}
		for _, c := range []ResilienceCell{base, fail} {
			if c.Availability <= 0 || c.Availability > 1 {
				t.Errorf("%s/%s availability = %v", c.System, c.Scenario, c.Availability)
			}
			if c.AvgCPUs <= 0 {
				t.Errorf("%s/%s avg CPUs = %v", c.System, c.Scenario, c.AvgCPUs)
			}
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Fig.F1") || !strings.Contains(out, "node-fail") {
		t.Errorf("render missing sections:\n%s", out)
	}
}

// TestResilienceParallelismInvariant asserts the figf1 grid renders
// byte-identically at any worker-pool size — the determinism contract every
// experiment in this package keeps.
func TestResilienceParallelismInvariant(t *testing.T) {
	seq := quick()
	seq.Parallelism = 1
	par := quick()
	par.Parallelism = 4
	a := RunResilience(seq).Render()
	b := RunResilience(par).Render()
	if a != b {
		t.Fatalf("output differs across parallelism:\n--- seq ---\n%s--- par ---\n%s", a, b)
	}
}

// BenchmarkResilience is the `make bench-resilience` smoke target: one full
// small-scale figf1 grid per iteration.
func BenchmarkResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := quick()
		opts.Parallelism = 1
		RunResilience(opts)
	}
}
