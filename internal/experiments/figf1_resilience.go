package experiments

import (
	"fmt"
	"strings"

	"ursa/internal/baselines"
	"ursa/internal/cluster"
	"ursa/internal/faults"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/workload"
)

// ResilienceCell is one (system, scenario) deployment outcome of the Fig. F1
// recovery experiment: the social-network app on the paper testbed, with and
// without a mid-run node failure.
type ResilienceCell struct {
	System   string
	Scenario string // "no-fault", "node-fail"

	ViolationRate float64
	// Availability is completed/(completed+failed) jobs over the whole run.
	Availability float64
	// RecoveryMin is how long after the failure the SLA was re-established
	// (first of two consecutive clean minute windows): 0 for the no-fault
	// scenario, -1 when the SLA never recovered within the run.
	RecoveryMin   float64
	AvgCPUs       float64
	Retries       float64
	Errors        float64
	Evicted       int
	Unschedulable int
	// Backlog is jobs injected but neither completed nor failed when the run
	// ends — a wedged service (e.g. an entry tier no one restores) shows up
	// here even though its empty latency windows can't violate any SLA.
	Backlog int
}

// ResilienceResult reproduces Fig. F1 — the chaos/recovery study, an axis the
// paper's evaluation never exercises.
type ResilienceResult struct {
	Cells   []ResilienceCell
	FailAt  sim.Time
	FailFor sim.Time
}

// ResilienceSystems lists the systems compared under fault injection: Ursa
// against the two threshold autoscalers (the ML baselines have no story for
// sudden capacity loss and would only add training cost to the grid).
func ResilienceSystems() []string { return []string{"ursa", "auto-a", "auto-b"} }

// resiliencePolicy is the client-side retry policy every Fig. F1 cell runs
// with — including the no-fault ones, so the comparison isolates the fault
// itself rather than the cost of the resilience machinery.
func resiliencePolicy() services.ResiliencePolicy {
	return services.ResiliencePolicy{
		TimeoutMs:     500,
		MaxRetries:    3,
		BackoffBaseMs: 20,
		BackoffMaxMs:  500,
		JitterFrac:    0.25,
	}
}

// RunResilience executes the Fig. F1 grid: each system runs the
// social-network app on the PaperTestbed cluster under constant load, once
// undisturbed and once with the largest node (node-7, 88 CPUs) failing a
// third of the way in and recovering a quarter-run later. Cells run
// concurrently up to Options.Parallelism and merge in canonical order.
func RunResilience(opts Options) ResilienceResult {
	opts.defaults()
	dur := opts.scaleTime(30*sim.Minute, 10*sim.Minute)
	warm := 2 * sim.Minute
	failAt := warm + dur/3
	failFor := dur / 4

	c, _ := AppCaseByName("social-network")
	scenarios := []string{"no-fault", "node-fail"}
	type cellJob struct{ system, scen string }
	var jobs []cellJob
	for _, s := range ResilienceSystems() {
		for _, scen := range scenarios {
			jobs = append(jobs, cellJob{s, scen})
		}
	}

	cells := make([]ResilienceCell, len(jobs))
	opts.forEach(len(jobs), func(i int) {
		j := jobs[i]
		mgr := opts.newManagerFor(c, j.system)
		opts.logf("figf1: %s / %s", j.system, j.scen)
		var sched faults.Schedule
		if j.scen == "node-fail" {
			sched.NodeFails = []faults.NodeFail{{Node: "node-7", At: failAt, For: failFor}}
		}
		cells[i] = opts.runResilient(c, mgr, sched, warm, dur, failAt)
		cells[i].System, cells[i].Scenario = j.system, j.scen
	})
	return ResilienceResult{Cells: cells, FailAt: failAt, FailFor: failFor}
}

// runResilient is runDeployment's fault-injecting sibling: the app is bound
// to the paper testbed (node failures need real placements to evict), a
// retry policy protects every RPC edge, and the injector arms the schedule
// before load starts.
func (o *Options) runResilient(c AppCase, mgr baselines.Manager, sched faults.Schedule, warm, dur sim.Time, failAt sim.Time) ResilienceCell {
	eng := sim.NewEngine(o.Seed + 1000)
	cl := cluster.PaperTestbed()
	app, err := services.NewAppOnCluster(eng, c.Spec, cl)
	if err != nil {
		panic(err)
	}
	app.SetResilience(resiliencePolicy())
	in := faults.New(eng, app, cl, sched)
	in.Start()
	gen := workload.New(eng, app, workload.Constant{Value: c.TotalRPS}, c.Mix)
	gen.Start()
	mgr.Attach(app)

	eng.RunUntil(warm)
	allocStart := app.AllocIntegralCPUSeconds()
	end := warm + dur
	eng.RunUntil(end)
	allocEnd := app.AllocIntegralCPUSeconds()
	mgr.Detach()

	var retries, errors float64
	for _, name := range app.ServiceNames() {
		svc := app.Service(name)
		retries += svc.RPCRetries.Total(0, end)
		errors += svc.RPCErrors.Total(0, end)
	}
	cell := ResilienceCell{
		ViolationRate: violationRate(app, c.Spec, warm, end),
		Availability:  app.Availability(),
		AvgCPUs:       (allocEnd - allocStart) / dur.Seconds(),
		Retries:       retries,
		Errors:        errors,
		Evicted:       in.Evicted,
		Unschedulable: app.UnschedulableEvents,
		Backlog:       app.InjectedJobs - app.CompletedJobs() - app.FailedJobs(),
	}
	if !sched.Empty() {
		cell.RecoveryMin = recoveryMinutes(app, c.Spec, failAt, end)
	}
	return cell
}

// recoveryMinutes measures the time from the failure until the SLA is
// re-established: the start of the first of two consecutive minute-aligned
// windows in which every class with samples meets its SLA (two in a row so a
// single lucky window during the outage does not count as recovery). Returns
// -1 when no such pair exists before the run ends.
func recoveryMinutes(app *services.App, spec services.AppSpec, failAt, end sim.Time) float64 {
	start := failAt - failAt%sim.Minute
	if start < failAt {
		start += sim.Minute
	}
	clean := 0
	for w := start; w+sim.Minute <= end; w += sim.Minute {
		ok, any := true, false
		for _, cs := range spec.Classes {
			rec := app.E2E.Class(cs.Name)
			if rec == nil {
				continue
			}
			vals := rec.Between(w, w+sim.Minute)
			if len(vals) == 0 {
				continue
			}
			any = true
			if stats.Percentile(vals, cs.SLAPercentile) > cs.SLAMillis {
				ok = false
			}
		}
		if ok && any {
			clean++
			if clean == 2 {
				return (w - sim.Minute - failAt).Seconds() / 60
			}
		} else {
			clean = 0
		}
	}
	return -1
}

// Cell finds a specific result.
func (r ResilienceResult) Cell(system, scenario string) (ResilienceCell, bool) {
	for _, c := range r.Cells {
		if c.System == system && c.Scenario == scenario {
			return c, true
		}
	}
	return ResilienceCell{}, false
}

// Render prints the Fig. F1 table.
func (r ResilienceResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.F1 — resilience under a node failure (node-7 down %v→%v)\n",
		r.FailAt, r.FailAt+r.FailFor)
	fmt.Fprintf(&b, "%-8s %-10s %8s %8s %9s %8s %8s %8s %8s %8s %8s\n",
		"system", "scenario", "viol%", "avail%", "recovery", "avgCPU", "retries", "errors", "evicted", "unsched", "backlog")
	for _, c := range r.Cells {
		rec := "-"
		switch {
		case c.Scenario == "no-fault":
		case c.RecoveryMin < 0:
			rec = "never"
		default:
			rec = fmt.Sprintf("%.0f min", c.RecoveryMin)
		}
		fmt.Fprintf(&b, "%-8s %-10s %7.1f%% %7.2f%% %9s %8.1f %8.0f %8.0f %8d %8d %8d\n",
			c.System, c.Scenario, c.ViolationRate*100, c.Availability*100, rec,
			c.AvgCPUs, c.Retries, c.Errors, c.Evicted, c.Unschedulable, c.Backlog)
	}
	return b.String()
}
