package experiments

import (
	"fmt"
	"strings"

	"ursa/internal/core"
	"ursa/internal/sim"
	"ursa/internal/topology"
)

// ProfilingResult reproduces Fig. 4: the backpressure-free threshold
// profiling curves for two social-network services — the post service
// (post-storage) and the timeline-read service (user-timeline).
type ProfilingResult struct {
	Services map[string]core.BackpressureResult
}

// RunProfiling sweeps the CPU limit for the two services under their
// nominal aggregate loads (fan-in synthesized by the workload generator).
func RunProfiling(opts Options) ProfilingResult {
	opts.defaults()
	spec := topology.SocialNetwork()
	ex := &core.Explorer{Spec: spec, Mix: topology.SocialNetworkMix(), TotalRPS: 100}
	loads := ex.ServiceClassLoads()

	names := []string{"post-storage", "user-timeline"}
	sweeps := make([]core.BackpressureResult, len(names))
	opts.forEach(len(names), func(i int) {
		name := names[i]
		opts.logf("fig4: profiling %s", name)
		ss := spec.ServiceSpecByName(name)
		// Aggregate (fan-in) load, rescaled so the sweep spans saturation
		// at low limits through convergence at high ones.
		perReplica := core.ScaleProfilingLoad(*ss, loads[name], 0.85)
		sweeps[i] = core.ProfileBackpressureThreshold(*ss, perReplica, core.ProfilerConfig{
			Seed:           opts.Seed,
			WindowsPerStep: opts.scaleInt(8, 4),
			Window:         15 * sim.Second,
		})
	})
	res := ProfilingResult{Services: map[string]core.BackpressureResult{}}
	for i, name := range names {
		res.Services[name] = sweeps[i]
	}
	return res
}

// Render prints the sweep tables (the Fig. 4 curves in text form).
func (r ProfilingResult) Render() string {
	var b strings.Builder
	for _, name := range []string{"post-storage", "user-timeline"} {
		pr, ok := r.Services[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "Fig.4 — threshold profiling of %s (backpressure-free util threshold: %.1f%%)\n", name, pr.Threshold*100)
		fmt.Fprintf(&b, "%10s %14s %12s %10s %10s\n", "cpu-limit", "proxy-p99(ms)", "±std", "svc-p99", "util")
		for _, st := range pr.Steps {
			mark := ""
			if st.Converged {
				mark = "  <- converged"
			}
			fmt.Fprintf(&b, "%10.2f %14.2f %12.2f %10.2f %9.1f%%%s\n",
				st.CPULimit, st.ProxyP99Mean, st.ProxyP99Std, st.ServiceP99, st.Util*100, mark)
		}
		b.WriteString("\n")
	}
	return b.String()
}
