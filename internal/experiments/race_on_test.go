//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector. Long property sweeps scale their seed counts down under race
// (roughly a 20x slowdown on simulation-heavy loops) so the package stays
// inside the default go test timeout; the full sweeps run in the non-race
// suite.
const raceEnabled = true
