package experiments

import (
	"fmt"
	"strings"

	"ursa/internal/baselines/firm"
	"ursa/internal/baselines/sinan"
	"ursa/internal/sim"
)

// ExplorationRow is one application's Table V entry.
type ExplorationRow struct {
	App          string
	UrsaSamples  int
	UrsaHours    float64 // wall exploration time (parallel per-service)
	MLSamples    int
	MLHours      float64 // samples × 1 min, the paper's accounting
	SampleRatio  float64
	TimeRatio    float64
	UrsaSimHours float64 // actually simulated time (sum)
}

// ExplorationResult reproduces Table V.
type ExplorationResult struct {
	Rows []ExplorationRow
	// MLTargetSamples is the paper-faithful sample budget the ratios are
	// normalised to (10,000); the harness may simulate fewer windows and
	// extrapolate linearly, which is exact for time accounting.
	MLTargetSamples int
}

// RunExploration measures exploration overhead for Ursa vs the ML baselines
// on the three main applications (the paper's Table V uses social, media and
// video).
func RunExploration(opts Options) ExplorationResult {
	opts.defaults()
	mlTarget := 10000
	var apps []AppCase
	for _, c := range AppCases() {
		if c.Name == "vanilla-social-network" {
			continue // Table V covers the three primary apps
		}
		apps = append(apps, c)
	}
	// Each app's row (exploration + ML collection + pretraining) is
	// independent: fan the rows over the worker pool and keep table order.
	rows := make([]ExplorationRow, len(apps))
	opts.forEach(len(apps), func(i int) {
		rows[i] = opts.explorationRow(apps[i], mlTarget)
	})
	return ExplorationResult{Rows: rows, MLTargetSamples: mlTarget}
}

// explorationRow measures one application's Table V entry.
func (o *Options) explorationRow(c AppCase, mlTarget int) ExplorationRow {
	o.logf("tab5: exploring %s with Ursa", c.Name)
	_, profiles, sum := o.ursaProfiles(c)

	// ML collection: run a scaled number of windows to exercise the
	// real collection code, then account at the paper's 10k × 1 min.
	o.logf("tab5: collecting ML samples for %s", c.Name)
	collected := sinan.Collect(c.Spec, c.Mix, c.TotalRPS, sinan.CollectConfig{
		Samples: o.scaleInt(400, 100),
		Window:  exploreWindow,
		Seed:    o.Seed,
	})
	_ = collected
	f := firm.New(c.Spec, specServiceNames(c.Spec), c.TotalRPS*2, firm.Config{Seed: o.Seed})
	firm.Pretrain(f, c.Mix, c.TotalRPS, firm.PretrainConfig{
		Samples: o.scaleInt(200, 60),
		Window:  exploreWindow,
		Seed:    o.Seed,
	})

	// Per the paper, Ursa's exploration time is the longest single
	// service's profiling time (services explore in parallel), with
	// each sample costing one minute.
	perServiceMax := 0
	for _, p := range profiles {
		if p.Samples > perServiceMax {
			perServiceMax = p.Samples
		}
	}
	ursaHours := (sim.Time(perServiceMax) * sim.Minute).Hours()

	mlHours := (sim.Time(mlTarget) * sim.Minute).Hours()
	row := ExplorationRow{
		App:          c.Name,
		UrsaSamples:  sum.Samples,
		UrsaHours:    ursaHours,
		MLSamples:    mlTarget,
		MLHours:      mlHours,
		UrsaSimHours: sum.TotalTime.Hours(),
	}
	if row.UrsaSamples > 0 {
		row.SampleRatio = float64(row.MLSamples) / float64(row.UrsaSamples)
	}
	if row.UrsaHours > 0 {
		row.TimeRatio = row.MLHours / row.UrsaHours
	}
	return row
}

// Render prints Table V.
func (r ExplorationResult) Render() string {
	var b strings.Builder
	b.WriteString("Table V — exploration overhead (samples, hours at 1 sample/min)\n")
	fmt.Fprintf(&b, "%-24s %14s %12s %14s %12s %10s %10s\n",
		"app", "ursa-samples", "ursa-hours", "ml-samples", "ml-hours", "sample-x", "time-x")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %14d %12.1f %14d %12.1f %9.1fx %9.1fx\n",
			row.App, row.UrsaSamples, row.UrsaHours, row.MLSamples, row.MLHours,
			row.SampleRatio, row.TimeRatio)
	}
	return b.String()
}
