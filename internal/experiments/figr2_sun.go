package experiments

import (
	"fmt"
	"strings"

	"ursa/internal/baselines"
	"ursa/internal/cluster"
	"ursa/internal/region"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// SunCell is one (system, region) outcome of the Fig. R2 follow-the-sun
// experiment: one social-network tenant per region on a shared three-region
// cluster, each driven by the same diurnal curve phase-shifted a third of a
// period — every region's peak lands in the others' troughs.
type SunCell struct {
	System string
	Region string

	ViolationRate float64
	Availability  float64
	AvgCPUs       float64
	PeakCPUs      float64
	Unschedulable int
	Spilled       int
}

// SunResult is the full Fig. R2 output.
type SunResult struct {
	Cells  []SunCell
	Base   float64
	Peak   float64
	Period sim.Time
}

// SunSystems lists the systems compared. Ursa runs with spill on: a region at
// peak borrows the idle capacity of regions in their trough. The autoscalers
// run spill off — independent per-region deployments that must absorb their
// own peak inside their own capacity.
func SunSystems() []string { return []string{"ursa", "auto-a", "auto-b"} }

// sunRegions lists the Fig. R2 regions in longitude (peak) order.
func sunRegions() []string { return []string{"us-east", "eu-west", "ap-south"} }

// sunTopology sizes each region below one tenant's peak demand but well above
// its trough, so the fleet fits only if capacity can follow the sun. WAN
// numbers are nominal: every tenant is fully homed in one region, so its RPC
// edges never cross a link (spilled replicas keep home coordinates).
func sunTopology() region.Topology {
	groups := make([]region.Group, len(sunRegions()))
	for i, name := range sunRegions() {
		groups[i] = region.Group{Name: name, Capacities: []float64{48, 40}}
	}
	return region.Topology{
		Groups:           groups,
		DefaultLatencyMs: 70,
		DefaultJitterMs:  5,
	}
}

// RunFollowTheSun executes the Fig. R2 grid: per system, three tenants on one
// shared cluster, each pinned to its own region and loaded with a diurnal
// pattern offset by a third of the period. Systems run concurrently up to
// Options.Parallelism and merge in canonical order.
func RunFollowTheSun(opts Options) SunResult {
	opts.defaults()
	dur := opts.scaleTime(48*sim.Minute, 16*sim.Minute)
	c, _ := AppCaseByName("social-network")
	res := SunResult{Base: c.TotalRPS * 0.5, Peak: c.TotalRPS * 1.5, Period: dur}

	systems := SunSystems()
	rows := make([][]SunCell, len(systems))
	opts.forEach(len(systems), func(i int) {
		opts.logf("figr2: %s", systems[i])
		rows[i] = opts.runSunSystem(c, systems[i], dur)
	})
	for _, r := range rows {
		res.Cells = append(res.Cells, r...)
	}
	return res
}

// runSunSystem deploys one tenant copy of the app per region on a shared
// grouped cluster — each with its own region map (all services bound home)
// and its own manager — and drives the phase-shifted diurnal load.
func (o *Options) runSunSystem(c AppCase, system string, dur sim.Time) []SunCell {
	eng := sim.NewEngine(o.Seed + 1000)
	topo := sunTopology()
	topo.Spill = system == "ursa"
	cl := topo.Cluster(cluster.WorstFit)

	type tenant struct {
		app *services.App
		m   *region.Map
		mgr baselines.Manager
	}
	regions := sunRegions()
	tenants := make([]tenant, len(regions))
	for i, home := range regions {
		t := topo
		t.Bindings = map[string]string{}
		for _, ss := range c.Spec.Services {
			t.Bindings[ss.Name] = home
		}
		m, err := region.New(t, cl)
		if err != nil {
			panic(err)
		}
		spec := c.Spec
		spec.Name = c.Spec.Name + "-" + home
		app, err := services.NewAppOnClusterPlaced(eng, spec, cl, m)
		if err != nil {
			panic(err)
		}
		m.Bind(eng, app)

		var mgr baselines.Manager
		if system == "ursa" {
			// Share the one cached exploration across tenants: the profiles
			// depend on the spec's services, not the tenant name.
			_, profiles, _ := o.ursaProfiles(c)
			mgr = &ursaAdapter{mgr: o.newCoreManager(spec, profiles), mix: c.Mix, totalRPS: c.TotalRPS}
		} else {
			mgr = o.newManagerFor(c, system)
		}
		pattern := workload.Shift{
			Inner:  workload.Diurnal{Base: c.TotalRPS * 0.5, Peak: c.TotalRPS * 1.5, Period: dur},
			Offset: sim.Time(i) * (dur / sim.Time(len(regions))),
		}
		workload.New(eng, app, pattern, c.Mix).Start()
		mgr.Attach(app)
		tenants[i] = tenant{app: app, m: m, mgr: mgr}
	}

	warm := 2 * sim.Minute
	eng.RunUntil(warm)
	allocStart := make([]float64, len(tenants))
	for i, t := range tenants {
		allocStart[i] = t.app.AllocIntegralCPUSeconds()
	}
	// Track each tenant's peak allocation once a minute: the follow-the-sun
	// signature is peak ≫ average per region while the shared cluster stays
	// below the sum of peaks.
	peaks := make([]float64, len(tenants))
	probe := eng.Every(sim.Minute, func() {
		for i, t := range tenants {
			if a := t.app.TotalAllocatedCPUs(); a > peaks[i] {
				peaks[i] = a
			}
		}
	})
	end := warm + dur
	eng.RunUntil(end)
	probe.Stop()

	cells := make([]SunCell, len(tenants))
	for i, t := range tenants {
		t.mgr.Detach()
		cells[i] = SunCell{
			System:        system,
			Region:        regions[i],
			ViolationRate: violationRate(t.app, t.app.Spec, warm, end),
			Availability:  t.app.Availability(),
			AvgCPUs:       (t.app.AllocIntegralCPUSeconds() - allocStart[i]) / dur.Seconds(),
			PeakCPUs:      peaks[i],
			Unschedulable: t.app.UnschedulableEvents,
			Spilled:       t.m.Spilled,
		}
	}
	return cells
}

// Cell finds a specific result.
func (r SunResult) Cell(system, region string) (SunCell, bool) {
	for _, c := range r.Cells {
		if c.System == system && c.Region == region {
			return c, true
		}
	}
	return SunCell{}, false
}

// Render prints the Fig. R2 table.
func (r SunResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig.R2 — follow-the-sun (diurnal %g→%g RPS per tenant, peaks %v apart)\n",
		r.Base, r.Peak, r.Period/sim.Time(len(sunRegions())))
	fmt.Fprintf(&b, "%-8s %-10s %8s %8s %8s %8s %8s %8s\n",
		"system", "region", "viol%", "avail%", "avgCPU", "peakCPU", "unsched", "spilled")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-8s %-10s %7.1f%% %7.2f%% %8.1f %8.1f %8d %8d\n",
			c.System, c.Region, c.ViolationRate*100, c.Availability*100,
			c.AvgCPUs, c.PeakCPUs, c.Unschedulable, c.Spilled)
	}
	return b.String()
}
