package experiments

import (
	"strings"
	"testing"
)

func TestRegionFailoverShapes(t *testing.T) {
	r := RunRegionFailover(quick())
	if len(r.Cells) != len(RegionSystems())*2 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	for _, system := range RegionSystems() {
		base, ok := r.Cell(system, "no-fault")
		if !ok {
			t.Fatalf("missing no-fault cell for %s", system)
		}
		fail, ok := r.Cell(system, "region-fail")
		if !ok {
			t.Fatalf("missing region-fail cell for %s", system)
		}
		if base.Evicted != 0 || base.RecoveryMin != 0 {
			t.Errorf("%s no-fault: evicted=%d recovery=%v, want zeros", system, base.Evicted, base.RecoveryMin)
		}
		if fail.Evicted == 0 {
			t.Errorf("%s region-fail: nothing evicted — eu-west held no replicas?", system)
		}
		for _, c := range []RegionCell{base, fail} {
			if c.Availability <= 0 || c.Availability > 1 {
				t.Errorf("%s/%s availability = %v", c.System, c.Scenario, c.Availability)
			}
			if c.AvgCPUs <= 0 {
				t.Errorf("%s/%s avg CPUs = %v", c.System, c.Scenario, c.AvgCPUs)
			}
			// Every interactive request crosses at least one WAN edge
			// (frontend region → storage region), so a run without hops
			// means the injector never saw cross-region traffic.
			if c.WANHops == 0 {
				t.Errorf("%s/%s: no WAN hops recorded", c.System, c.Scenario)
			}
		}
	}

	// The Fig. R1 claim: Ursa's cross-region re-solve rides through the
	// outage with availability no worse than the per-region autoscalers,
	// and actually recovers the SLA.
	ursa, _ := r.Cell("ursa", "region-fail")
	if ursa.Spilled == 0 {
		t.Errorf("ursa region-fail: no replicas spilled out of the dead region")
	}
	if ursa.RecoveryMin < 0 {
		t.Errorf("ursa region-fail: SLA never recovered")
	}
	for _, system := range RegionSystems()[1:] {
		c, _ := r.Cell(system, "region-fail")
		if ursa.Availability < c.Availability {
			t.Errorf("ursa availability %.4f < %s availability %.4f under region failure",
				ursa.Availability, system, c.Availability)
		}
	}

	out := r.Render()
	if !strings.Contains(out, "Fig.R1") || !strings.Contains(out, "region-fail") {
		t.Errorf("render missing sections:\n%s", out)
	}
}

func TestFollowTheSunShapes(t *testing.T) {
	r := RunFollowTheSun(quick())
	if len(r.Cells) != len(SunSystems())*len(sunRegions()) {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	for _, system := range SunSystems() {
		for _, reg := range sunRegions() {
			c, ok := r.Cell(system, reg)
			if !ok {
				t.Fatalf("missing cell %s/%s", system, reg)
			}
			if c.Availability <= 0 || c.Availability > 1 {
				t.Errorf("%s/%s availability = %v", system, reg, c.Availability)
			}
			if c.AvgCPUs <= 0 || c.PeakCPUs < c.AvgCPUs {
				t.Errorf("%s/%s cpus: avg=%v peak=%v", system, reg, c.AvgCPUs, c.PeakCPUs)
			}
			// Spill off means placement can never leave the home region.
			if system != "ursa" && c.Spilled != 0 {
				t.Errorf("%s/%s spilled %d replicas with spill off", system, reg, c.Spilled)
			}
		}
	}
	// The Fig. R2 claim: with spill, at least one tenant's peak exceeds its
	// own region's capacity — it borrowed trough capacity elsewhere.
	capacity := 0.0
	for _, cp := range sunTopology().Groups[0].Capacities {
		capacity += cp
	}
	overCap := false
	for _, reg := range sunRegions() {
		c, _ := r.Cell("ursa", reg)
		if c.PeakCPUs > capacity {
			overCap = true
		}
	}
	if !overCap {
		t.Errorf("ursa: no tenant peaked above its region capacity %.0f — nothing followed the sun", capacity)
	}
	if !strings.Contains(r.Render(), "Fig.R2") {
		t.Errorf("render missing header:\n%s", r.Render())
	}
}

// TestRegionParallelismInvariant asserts both region grids render
// byte-identically at any worker-pool size — the determinism contract every
// experiment in this package keeps.
func TestRegionParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("duplicate figr1 grid in -short mode")
	}
	seq := quick()
	seq.Parallelism = 1
	par := quick()
	par.Parallelism = 4
	if a, b := RunRegionFailover(seq).Render(), RunRegionFailover(par).Render(); a != b {
		t.Fatalf("figr1 output differs across parallelism:\n--- seq ---\n%s--- par ---\n%s", a, b)
	}
	if a, b := RunFollowTheSun(seq).Render(), RunFollowTheSun(par).Render(); a != b {
		t.Fatalf("figr2 output differs across parallelism:\n--- seq ---\n%s--- par ---\n%s", a, b)
	}
}

// BenchmarkRegion is the `make bench-region` smoke target: one small-scale
// figr1 + figr2 grid per iteration.
func BenchmarkRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := quick()
		opts.Parallelism = 1
		RunRegionFailover(opts)
		RunFollowTheSun(opts)
	}
}
