package faults

import (
	"math"
	"testing"

	"ursa/internal/cluster"
	"ursa/internal/services"
	"ursa/internal/sim"
)

// testSpec: frontend (5 ms) → backend (10 ms) over nested RPC, one replica
// each, all deterministic.
func testSpec() services.AppSpec {
	return services.AppSpec{
		Name: "faulty",
		Services: []services.ServiceSpec{
			{
				Name:            "frontend",
				Threads:         4,
				CPUs:            4,
				InitialReplicas: 1,
				Handlers: map[string][]services.Step{
					"get": services.Seq(
						services.Compute{MeanMs: 5, CV: -1},
						services.Call{Service: "backend", Mode: services.NestedRPC},
					),
				},
			},
			{
				Name:            "backend",
				Threads:         4,
				CPUs:            1,
				InitialReplicas: 1,
				Handlers: map[string][]services.Step{
					"get": services.Seq(services.Compute{MeanMs: 10, CV: -1}),
				},
			},
		},
		Classes: []services.ClassSpec{{Name: "get", Entry: "frontend", SLAPercentile: 99, SLAMillis: 100}},
	}
}

func TestEmptyScheduleIsInert(t *testing.T) {
	eng := sim.NewEngine(1)
	app := services.MustNewApp(eng, testSpec())
	before := eng.Pending()
	in := New(eng, app, nil, Schedule{})
	in.Start()
	if eng.Pending() != before {
		t.Fatalf("empty schedule scheduled events: %d → %d", before, eng.Pending())
	}
	if app.Net != nil {
		t.Fatal("empty schedule installed a net injector")
	}
	if len(in.Records) != 0 {
		t.Fatalf("records = %v", in.Records)
	}
}

func TestNodeFailEvictsAndRecovers(t *testing.T) {
	cl := cluster.New(cluster.BestFit, 8, 8)
	eng := sim.NewEngine(1)
	app, err := services.NewAppOnCluster(eng, testSpec(), cl)
	if err != nil {
		t.Fatal(err)
	}
	// BestFit packs frontend (4) and backend (1) onto node-0.
	n0 := cl.NodeByName("node-0")
	if n0.Used() != 5 {
		t.Fatalf("node-0 used = %v, want 5", n0.Used())
	}
	in := New(eng, app, cl, Schedule{
		NodeFails: []NodeFail{{Node: "node-0", At: 10 * sim.Millisecond, For: 100 * sim.Millisecond}},
	})
	in.Start()

	eng.RunUntil(50 * sim.Millisecond)
	if !n0.Down() {
		t.Fatal("node-0 not down mid-failure")
	}
	if in.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", in.Evicted)
	}
	if n0.Used() != 0 {
		t.Fatalf("node-0 still holds %v CPUs", n0.Used())
	}
	// Placements must skip the down node.
	if p, err := cl.Place(2); err != nil {
		t.Fatal(err)
	} else if p.Node.Name != "node-1" {
		t.Fatalf("placed on %s during failure, want node-1", p.Node.Name)
	}

	eng.RunUntil(200 * sim.Millisecond)
	if n0.Down() {
		t.Fatal("node-0 did not recover")
	}
	if len(in.Records) != 2 {
		t.Fatalf("records = %v", in.Records)
	}
}

func TestReplicaCrashRestartWithWarmup(t *testing.T) {
	eng := sim.NewEngine(1)
	app := services.MustNewApp(eng, testSpec())
	in := New(eng, app, nil, Schedule{
		ReplicaCrashes: []ReplicaCrash{{
			Service:      "backend",
			At:           10 * sim.Millisecond,
			RestartAfter: 50 * sim.Millisecond,
			Warmup:       500 * sim.Millisecond,
			WarmupFactor: 0.2,
		}},
	})
	in.Start()

	eng.RunUntil(20 * sim.Millisecond)
	be := app.Service("backend")
	if be.Replicas() != 0 {
		t.Fatalf("backend replicas = %d mid-crash, want 0", be.Replicas())
	}
	eng.RunUntil(100 * sim.Millisecond)
	if be.Replicas() != 1 {
		t.Fatalf("backend replicas = %d after restart, want 1", be.Replicas())
	}
	// During warm-up the 1-CPU backend runs at 0.2 cores: 10 ms → 50 ms.
	app.Inject("get")
	eng.RunUntil(sim.Second) // past warm-up
	app.Inject("get")
	eng.RunUntil(2 * sim.Second)
	lats := app.E2E.Class("get").All()
	if len(lats) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(lats))
	}
	if math.Abs(lats[0]-55) > 1e-6 { // 5 ms frontend + 50 ms derated backend
		t.Fatalf("warm-up latency = %v ms, want 55", lats[0])
	}
	if math.Abs(lats[1]-15) > 1e-6 {
		t.Fatalf("post-warm-up latency = %v ms, want 15", lats[1])
	}
}

func TestInterferenceSlowsResidentReplicas(t *testing.T) {
	cl := cluster.New(cluster.BestFit, 8)
	eng := sim.NewEngine(1)
	app, err := services.NewAppOnCluster(eng, testSpec(), cl)
	if err != nil {
		t.Fatal(err)
	}
	in := New(eng, app, cl, Schedule{
		Interference: []Interference{{Node: "node-0", At: 10 * sim.Millisecond, For: 200 * sim.Millisecond, Factor: 0.5}},
	})
	in.Start()

	eng.RunUntil(50 * sim.Millisecond)
	// Backend (1 CPU) now runs at 0.5 cores: 10 ms burst takes 20 ms; the
	// frontend (4 CPUs → 2) still runs its single 5 ms burst at full speed.
	app.Inject("get")
	eng.RunUntil(sim.Second) // interference cleared at 210 ms
	app.Inject("get")
	eng.RunUntil(2 * sim.Second)
	lats := app.E2E.Class("get").All()
	if len(lats) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(lats))
	}
	if math.Abs(lats[0]-25) > 1e-6 { // 5 + 20
		t.Fatalf("interfered latency = %v ms, want 25", lats[0])
	}
	if math.Abs(lats[1]-15) > 1e-6 {
		t.Fatalf("restored latency = %v ms, want 15", lats[1])
	}
}

func TestNetFaultDropsAreSeedDeterministic(t *testing.T) {
	run := func() (completed, failed, dropped int) {
		eng := sim.NewEngine(42)
		app := services.MustNewApp(eng, testSpec())
		app.SetResilience(services.ResiliencePolicy{TimeoutMs: 30, MaxRetries: 2, BackoffBaseMs: 5, BackoffMaxMs: 20, JitterFrac: 0.3})
		in := New(eng, app, nil, Schedule{
			NetFaults: []NetFault{{Src: "frontend", Dst: "backend", At: 0, For: sim.Minute, DropProb: 0.5}},
		})
		in.Start()
		rng := eng.RNG("load")
		var arrive func()
		arrive = func() {
			app.Inject("get")
			eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/50), arrive)
		}
		eng.Schedule(0, arrive)
		eng.RunUntil(30 * sim.Second)
		return app.CompletedJobs(), app.FailedJobs(), in.Dropped
	}
	c1, f1, d1 := run()
	c2, f2, d2 := run()
	if c1 != c2 || f1 != f2 || d1 != d2 {
		t.Fatalf("nondeterministic: run1=(%d,%d,%d) run2=(%d,%d,%d)", c1, f1, d1, c2, f2, d2)
	}
	if d1 == 0 {
		t.Fatal("no drops injected")
	}
	if c1 == 0 {
		t.Fatal("no jobs survived despite retries")
	}
	if f1 == 0 {
		t.Fatal("expected some jobs to exhaust retries at 50% drop rate")
	}
}
