// Package faults implements deterministic, seeded fault injection for the
// simulated cluster — the chaos-engineering axis the paper's evaluation
// never exercises. A Schedule declares what goes wrong and when: node
// crash/recovery (capacity drains, resident replicas are evicted and the
// manager must re-place them), replica crash-restart with a warm-up penalty,
// CPU interference (a node's effective capacity degrades, slowing every
// resident replica's processor-sharing rate), and per-edge RPC latency
// injection / message drops.
//
// Determinism contract: with an empty Schedule, Start schedules zero events
// and installs no hooks, so the run is byte-identical to one without an
// Injector at all (the sim engine's FIFO tie-break is event-count
// sensitive, so even a never-firing event would perturb same-time
// orderings). With a non-empty schedule and a fixed seed, runs are exactly
// reproducible: drop decisions draw from a dedicated named RNG stream that
// leaves every other stream untouched.
package faults

import (
	"fmt"
	"math/rand"

	"ursa/internal/cluster"
	"ursa/internal/services"
	"ursa/internal/sim"
)

// NodeFail crashes a node at At: the node is marked down (Place skips it),
// every resident replica is crash-evicted, and the app's OnEviction hook
// fires so the manager can re-place. If For > 0 the node recovers at
// At+For.
type NodeFail struct {
	Node string
	At   sim.Time
	For  sim.Time
}

// ReplicaCrash kills one active replica of a service at At (index Replica,
// clamped into range). If RestartAfter > 0 a replacement starts that much
// later, derated to WarmupFactor × nominal CPU for Warmup (cold start).
type ReplicaCrash struct {
	Service      string
	At           sim.Time
	Replica      int
	RestartAfter sim.Time
	Warmup       sim.Time
	WarmupFactor float64
}

// Interference degrades a node's effective CPU speed to Factor × nominal
// over [At, At+For) — co-located noisy neighbours, in the paper's terms a
// CPU anomaly the detector should catch.
type Interference struct {
	Node   string
	At     sim.Time
	For    sim.Time
	Factor float64
}

// NetFault injects per-edge RPC faults over [At, At+For): every resilient
// send matching Src→Dst gains DelayMs of delivery latency and is dropped
// with probability DropProb. Empty Src/Dst match any service. Only
// resilient sends consult the injector; enable a ResiliencePolicy on the
// app or drops will hang their callers (as they would a real unprotected
// client).
type NetFault struct {
	Src      string
	Dst      string
	At       sim.Time
	For      sim.Time
	DelayMs  float64
	DropProb float64
}

// Schedule declares a full fault scenario. Events firing at the same
// instant execute in field-then-slice order (NodeFails first, then
// ReplicaCrashes, then Interference) — the order is part of the scenario.
type Schedule struct {
	NodeFails      []NodeFail
	ReplicaCrashes []ReplicaCrash
	Interference   []Interference
	NetFaults      []NetFault
}

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool {
	return len(s.NodeFails) == 0 && len(s.ReplicaCrashes) == 0 &&
		len(s.Interference) == 0 && len(s.NetFaults) == 0
}

// Record is one line of the injector's event log.
type Record struct {
	At     sim.Time
	Detail string
}

// Injector wires a Schedule into a running app. Build with New, arm with
// Start before injecting load.
type Injector struct {
	eng   *sim.Engine
	app   *services.App
	cl    *cluster.Cluster
	sched Schedule
	rng   *rand.Rand

	// Records logs every fault event actually applied, in firing order.
	Records []Record
	// Evicted counts replicas crash-evicted by node failures and replica
	// crashes; Dropped and Delayed count net-fault interceptions.
	Evicted int
	Dropped int
	Delayed int
}

// New builds an injector. cl may be nil when the schedule contains no
// node-level faults.
func New(eng *sim.Engine, app *services.App, cl *cluster.Cluster, sched Schedule) *Injector {
	return &Injector{eng: eng, app: app, cl: cl, sched: sched}
}

func (in *Injector) log(detail string, args ...any) {
	in.Records = append(in.Records, Record{At: in.eng.Now(), Detail: fmt.Sprintf(detail, args...)})
}

// Start schedules every fault in the schedule. With an empty schedule it
// does nothing at all — no events, no hooks — preserving byte-identity with
// an injector-free run.
func (in *Injector) Start() {
	if in.sched.Empty() {
		return
	}
	for _, f := range in.sched.NodeFails {
		f := f
		in.eng.At(f.At, func() { in.failNode(f) })
	}
	for _, f := range in.sched.ReplicaCrashes {
		f := f
		in.eng.At(f.At, func() { in.crashReplica(f) })
	}
	for _, f := range in.sched.Interference {
		f := f
		in.eng.At(f.At, func() { in.interfere(f) })
	}
	if len(in.sched.NetFaults) > 0 {
		in.rng = in.eng.RNG("faults/net")
		in.app.Net = in
	}
}

func (in *Injector) node(name string) *cluster.Node {
	if in.cl == nil {
		panic("faults: node fault scheduled without a cluster")
	}
	n := in.cl.NodeByName(name)
	if n == nil {
		panic(fmt.Sprintf("faults: unknown node %q", name))
	}
	return n
}

func (in *Injector) failNode(f NodeFail) {
	n := in.node(f.Node)
	if n.Down() {
		return
	}
	n.SetDown(true)
	evs := in.app.EvictNode(n)
	lost := 0
	for _, ev := range evs {
		lost += ev.Replicas
	}
	in.Evicted += lost
	in.log("node %s down, %d replica(s) evicted", f.Node, lost)
	if f.For > 0 {
		in.eng.Schedule(f.For, func() {
			n.SetDown(false)
			in.log("node %s recovered", f.Node)
		})
	}
}

func (in *Injector) crashReplica(f ReplicaCrash) {
	svc := in.app.Service(f.Service)
	if svc == nil {
		panic(fmt.Sprintf("faults: unknown service %q", f.Service))
	}
	idx := f.Replica
	if n := svc.Replicas(); idx >= n {
		idx = n - 1
	}
	if idx < 0 || !svc.CrashReplica(idx) {
		return
	}
	in.Evicted++
	in.log("replica %d of %s crashed", idx, f.Service)
	if f.RestartAfter > 0 {
		in.eng.Schedule(f.RestartAfter, func() {
			if svc.AddReplicaWarm(f.WarmupFactor, f.Warmup) {
				in.log("replica of %s restarted (warmup %v at %.0f%%)", f.Service, f.Warmup, f.WarmupFactor*100)
			} else {
				in.log("replica restart of %s unschedulable", f.Service)
			}
		})
	}
}

func (in *Injector) interfere(f Interference) {
	n := in.node(f.Node)
	factor := f.Factor
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("faults: interference factor %v out of (0,1]", factor))
	}
	n.SetCPUFactor(factor)
	in.app.RefreshNodeCPU(n)
	in.log("node %s interference: cpu ×%.2f", f.Node, factor)
	if f.For > 0 {
		in.eng.Schedule(f.For, func() {
			n.SetCPUFactor(1)
			in.app.RefreshNodeCPU(n)
			in.log("node %s interference cleared", f.Node)
		})
	}
}

// Intercept implements services.NetInjector: the first active matching rule
// decides the edge's fate. Drop decisions draw from the injector's own RNG
// stream, so they are seed-deterministic and perturb no other stream.
func (in *Injector) Intercept(src, dst string) (sim.Time, bool) {
	now := in.eng.Now()
	for _, f := range in.sched.NetFaults {
		if now < f.At || (f.For > 0 && now >= f.At+f.For) {
			continue
		}
		if (f.Src != "" && f.Src != src) || (f.Dst != "" && f.Dst != dst) {
			continue
		}
		if f.DropProb > 0 && in.rng.Float64() < f.DropProb {
			in.Dropped++
			return 0, true
		}
		if f.DelayMs > 0 {
			in.Delayed++
			return sim.Millis2Time(f.DelayMs), false
		}
		return 0, false
	}
	return 0, false
}
