package faults

import (
	"bytes"
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/trace"
)

// TestFaultRunSpanExportRoundTrip pins the acceptance path: a run with a
// mid-flight replica crash streams its spans as JSONL, the stream decodes,
// and the job caught by the crash comes back as an incomplete trace with
// its abandoned span intact.
func TestFaultRunSpanExportRoundTrip(t *testing.T) {
	eng := sim.NewEngine(1)
	app := services.MustNewApp(eng, testSpec())
	app.SetResilience(services.ResiliencePolicy{MaxRetries: 1})

	var buf bytes.Buffer
	sw := trace.NewSpanWriter(&buf)
	tr := trace.NewTracer(1, 0)
	tr.Exporter = sw.ExportTrace
	app.Tracer = tr

	in := New(eng, app, nil, Schedule{
		ReplicaCrashes: []ReplicaCrash{{
			Service: "backend",
			At:      12 * sim.Millisecond, // mid-handler for the first job
			// No restart: retries exhaust and the job terminally fails.
		}},
	})
	in.Start()

	app.Inject("get") // enters backend at ~5 ms, dies in the crash
	eng.RunUntil(5 * sim.Second)
	tr.FlushOpen(eng.Now())
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := trace.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := trace.DecodeSpans(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("decoded %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Complete {
		t.Fatal("crash-killed job decoded as complete")
	}
	abandoned := false
	for _, s := range got.Spans {
		if s.Abandoned {
			abandoned = true
		}
	}
	if !abandoned {
		t.Fatalf("no abandoned span survived the round trip: %+v", got.Spans)
	}
	// And the decoded trace matches what the tracer retained in memory.
	mem := tr.Traces()[0]
	if got.JobID != mem.JobID || got.Start != mem.Start || got.End != mem.End ||
		len(got.Spans) != len(mem.Spans) {
		t.Fatalf("decoded trace diverges from retained one:\nmem  %+v\nback %+v", mem, got)
	}
}
