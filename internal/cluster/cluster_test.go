package cluster

import (
	"errors"
	"testing"
	"testing/quick"

	"math/rand"
)

func TestPlaceAndRelease(t *testing.T) {
	c := New(BestFit, 4, 8)
	p1, err := c.Place(4)
	if err != nil {
		t.Fatal(err)
	}
	// Best fit: the 4-CPU node is the tightest fit.
	if p1.Node.Capacity != 4 {
		t.Fatalf("best-fit picked node with capacity %v", p1.Node.Capacity)
	}
	if c.TotalUsed() != 4 {
		t.Fatalf("used = %v", c.TotalUsed())
	}
	c.Release(p1)
	if c.TotalUsed() != 0 {
		t.Fatalf("used after release = %v", c.TotalUsed())
	}
}

func TestWorstFitSpreads(t *testing.T) {
	c := New(WorstFit, 8, 16)
	p, _ := c.Place(2)
	if p.Node.Capacity != 16 {
		t.Fatalf("worst-fit picked capacity %v, want 16", p.Node.Capacity)
	}
}

func TestNoCapacity(t *testing.T) {
	c := New(BestFit, 4)
	if _, err := c.Place(2); err != nil {
		t.Fatal(err)
	}
	_, err := c.Place(3)
	var nc ErrNoCapacity
	if !errors.As(err, &nc) || nc.CPUs != 3 {
		t.Fatalf("err = %v", err)
	}
}

func TestNoCapacityMessage(t *testing.T) {
	c := New(BestFit, 4, 8)
	if _, err := c.Place(3); err != nil { // node-0 now has 1 free
		t.Fatal(err)
	}
	if _, err := c.Place(6); err != nil { // node-1 now has 2 free
		t.Fatal(err)
	}
	_, err := c.Place(5)
	want := "cluster: no node with 5.0 free CPUs (largest free fragment 2.0, 3.0 total free)"
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %q", err, want)
	}
	c.NodeByName("node-1").SetDown(true)
	_, err = c.Place(5)
	want = "cluster: no node with 5.0 free CPUs (largest free fragment 1.0, 1.0 total free); 1 node(s) down"
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %q", err, want)
	}
}

func TestPlaceTieBreaksOnLowestIndex(t *testing.T) {
	// Equal free capacity everywhere: both strategies must deterministically
	// pick the lowest-index node.
	for _, s := range []Strategy{BestFit, WorstFit} {
		c := New(s, 8, 8, 8)
		p, err := c.Place(2)
		if err != nil {
			t.Fatal(err)
		}
		if p.Node.Name != "node-0" {
			t.Fatalf("strategy %v: tie broke to %s, want node-0", s, p.Node.Name)
		}
	}
}

func TestPlaceSkipsDownNodes(t *testing.T) {
	c := New(WorstFit, 8, 16)
	c.NodeByName("node-1").SetDown(true)
	p, err := c.Place(2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Node.Name != "node-0" {
		t.Fatalf("placed on %s, want node-0 (node-1 is down)", p.Node.Name)
	}
	if got := c.AvailableCapacity(); got != 8 {
		t.Fatalf("AvailableCapacity = %v, want 8", got)
	}
	if got := c.FitsReplicas(4); got != 1 { // only node-0's remaining 6 CPUs count
		t.Fatalf("FitsReplicas(4) = %d, want 1", got)
	}
	c.NodeByName("node-1").SetDown(false)
	p2, err := c.Place(2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Node.Name != "node-1" {
		t.Fatalf("after recovery placed on %s, want node-1", p2.Node.Name)
	}
}

func TestPlaceDoesNotAllocate(t *testing.T) {
	c := New(BestFit, 16, 24, 32)
	allocs := testing.AllocsPerRun(100, func() {
		p, err := c.Place(2)
		if err != nil {
			t.Fatal(err)
		}
		c.Release(p)
	})
	if allocs != 0 {
		t.Fatalf("Place+Release allocates %.1f objects per call, want 0", allocs)
	}
}

func TestFitsReplicas(t *testing.T) {
	c := New(BestFit, 10, 7)
	if got := c.FitsReplicas(4); got != 3 { // 2 in node-0, 1 in node-1
		t.Fatalf("FitsReplicas(4) = %d", got)
	}
	if got := c.FitsReplicas(12); got != 0 {
		t.Fatalf("FitsReplicas(12) = %d", got)
	}
}

func TestPaperTestbed(t *testing.T) {
	c := PaperTestbed()
	if len(c.Nodes()) != 8 {
		t.Fatalf("nodes = %d", len(c.Nodes()))
	}
	if c.TotalCapacity() != 40+48+56+64+64+72+80+88 {
		t.Fatalf("capacity = %v", c.TotalCapacity())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	c := New(BestFit, 4)
	p, _ := c.Place(4)
	c.Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	c.Release(p)
}

// Property: any sequence of placements and releases conserves capacity and
// never over-commits a node.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Strategy(rng.Intn(2)), 16, 24, 32)
		var live []Placement
		total := 0.0
		for i := 0; i < 200; i++ {
			if rng.Float64() < 0.6 || len(live) == 0 {
				cpus := float64(1 + rng.Intn(8))
				p, err := c.Place(cpus)
				if err == nil {
					live = append(live, p)
					total += cpus
				}
			} else {
				k := rng.Intn(len(live))
				c.Release(live[k])
				total -= live[k].CPUs
				live = append(live[:k], live[k+1:]...)
			}
			if c.TotalUsed() != total {
				return false
			}
			for _, n := range c.Nodes() {
				if n.Used() > n.Capacity+1e-9 || n.Used() < -1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
