// Package cluster models the physical cluster underneath the simulated
// services: a fixed pool of nodes with CPU capacity, replica placement, and
// allocation accounting. The paper's testbed is 8 machines with 40–88 CPUs
// each (§VII-A); binding an application to a Cluster makes replica scaling
// subject to real capacity, so autoscalers can hit the wall the way they do
// in production. Nodes also carry a failure lifecycle (SetDown) and an
// effective-capacity factor (SetCPUFactor) so fault injection can drain
// capacity and degrade co-located replicas.
package cluster

import "fmt"

// Node is one machine.
type Node struct {
	Name     string
	Capacity float64 // CPUs
	used     float64
	down     bool
	// cpuFactor scales the node's effective CPU speed (interference model);
	// 0 means unset and reads as 1.
	cpuFactor float64
}

// Used reports allocated CPUs.
func (n *Node) Used() float64 { return n.used }

// Free reports unallocated CPUs.
func (n *Node) Free() float64 { return n.Capacity - n.used }

// Down reports whether the node is failed.
func (n *Node) Down() bool { return n.down }

// SetDown fails (true) or recovers (false) the node. Place skips down nodes;
// existing allocations are untouched — evicting resident replicas is the
// caller's job (services.App.EvictNode).
func (n *Node) SetDown(down bool) { n.down = down }

// CPUFactor reports the node's effective-capacity multiplier (1 = nominal).
func (n *Node) CPUFactor() float64 {
	if n.cpuFactor == 0 {
		return 1
	}
	return n.cpuFactor
}

// SetCPUFactor models CPU interference: resident replicas run at factor ×
// their nominal rate. Allocation bookkeeping is unchanged — the node still
// "holds" the same CPUs, they are just slower.
func (n *Node) SetCPUFactor(f float64) {
	if f <= 0 {
		panic("cluster: non-positive cpu factor")
	}
	n.cpuFactor = f
}

// Placement records where a replica landed; keep it to release later.
type Placement struct {
	Node *Node
	CPUs float64
}

// Strategy selects the node for a new replica among those that fit.
type Strategy int

// Placement strategies.
const (
	// BestFit packs replicas tightly (least free capacity that fits) —
	// fewer fragmentation stalls, more co-location.
	BestFit Strategy = iota
	// WorstFit spreads replicas (most free capacity) — Kubernetes'
	// least-allocated default scoring.
	WorstFit
)

// Cluster is a pool of nodes.
type Cluster struct {
	nodes    []*Node
	strategy Strategy
}

// New builds a cluster from node capacities.
func New(strategy Strategy, capacities ...float64) *Cluster {
	c := &Cluster{strategy: strategy}
	for i, cap := range capacities {
		if cap <= 0 {
			panic("cluster: non-positive node capacity")
		}
		c.nodes = append(c.nodes, &Node{Name: fmt.Sprintf("node-%d", i), Capacity: cap})
	}
	if len(c.nodes) == 0 {
		panic("cluster: no nodes")
	}
	return c
}

// PaperTestbed builds the §VII-A cluster: 8 machines, 40–88 CPUs.
func PaperTestbed() *Cluster {
	return New(WorstFit, 40, 48, 56, 64, 64, 72, 80, 88)
}

// Nodes lists the nodes (callers must not mutate).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodeByName finds a node by name, or nil.
func (c *Cluster) NodeByName(name string) *Node {
	for _, n := range c.nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// TotalCapacity sums node capacities, down or not.
func (c *Cluster) TotalCapacity() float64 {
	t := 0.0
	for _, n := range c.nodes {
		t += n.Capacity
	}
	return t
}

// AvailableCapacity sums the capacities of up nodes only.
func (c *Cluster) AvailableCapacity() float64 {
	t := 0.0
	for _, n := range c.nodes {
		if !n.down {
			t += n.Capacity
		}
	}
	return t
}

// TotalUsed sums allocated CPUs.
func (c *Cluster) TotalUsed() float64 {
	t := 0.0
	for _, n := range c.nodes {
		t += n.used
	}
	return t
}

// ErrNoCapacity is returned when no node can host the replica. It carries
// enough of the capacity picture to diagnose placement failures in long
// runs: the largest free fragment (is this fragmentation or exhaustion?)
// and the total free capacity across up nodes.
type ErrNoCapacity struct {
	CPUs        float64 // requested
	LargestFree float64 // biggest free fragment on any up node
	TotalFree   float64 // free CPUs summed over up nodes
	DownNodes   int     // nodes currently failed
}

// Error implements error.
func (e ErrNoCapacity) Error() string {
	msg := fmt.Sprintf("cluster: no node with %.1f free CPUs (largest free fragment %.1f, %.1f total free)",
		e.CPUs, e.LargestFree, e.TotalFree)
	if e.DownNodes > 0 {
		msg += fmt.Sprintf("; %d node(s) down", e.DownNodes)
	}
	return msg
}

// Place allocates cpus on an up node per the strategy. Ties on equal free
// capacity break to the lowest node index, deterministically.
func (c *Cluster) Place(cpus float64) (Placement, error) {
	if cpus <= 0 {
		panic("cluster: non-positive placement")
	}
	var best *Node
	for _, n := range c.nodes {
		if n.down || n.Free() < cpus-1e-9 {
			continue
		}
		if best == nil {
			best = n
			continue
		}
		// Strict comparisons keep the first (lowest-index) node on ties.
		free, bfree := n.Free(), best.Free()
		if (c.strategy == BestFit && free < bfree) || (c.strategy == WorstFit && free > bfree) {
			best = n
		}
	}
	if best == nil {
		e := ErrNoCapacity{CPUs: cpus}
		for _, n := range c.nodes {
			if n.down {
				e.DownNodes++
				continue
			}
			if f := n.Free(); f > e.LargestFree {
				e.LargestFree = f
			}
			e.TotalFree += n.Free()
		}
		return Placement{}, e
	}
	best.used += cpus
	return Placement{Node: best, CPUs: cpus}, nil
}

// Release returns a placement's CPUs to its node.
func (c *Cluster) Release(p Placement) {
	if p.Node == nil {
		return
	}
	p.Node.used -= p.CPUs
	if p.Node.used < -1e-9 {
		panic("cluster: released more than allocated")
	}
	if p.Node.used < 0 {
		p.Node.used = 0
	}
}

// FitsReplicas reports how many replicas of the given size the cluster
// could still place on up nodes (a capacity planner's view; does not
// allocate).
func (c *Cluster) FitsReplicas(cpus float64) int {
	n := 0
	for _, node := range c.nodes {
		if node.down {
			continue
		}
		free := node.Free()
		for free >= cpus-1e-9 {
			free -= cpus
			n++
		}
	}
	return n
}
