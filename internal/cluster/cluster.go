// Package cluster models the physical cluster underneath the simulated
// services: a fixed pool of nodes with CPU capacity, replica placement, and
// allocation accounting. The paper's testbed is 8 machines with 40–88 CPUs
// each (§VII-A); binding an application to a Cluster makes replica scaling
// subject to real capacity, so autoscalers can hit the wall the way they do
// in production. Nodes also carry a failure lifecycle (SetDown) and an
// effective-capacity factor (SetCPUFactor) so fault injection can drain
// capacity and degrade co-located replicas.
//
// Placement runs on a maintained free-capacity index (index.go): Place,
// Release and SetDown are O(log n) in the node count, and the capacity
// aggregates (TotalCapacity, AvailableCapacity, TotalUsed, the ErrNoCapacity
// diagnostic) are kept incrementally instead of re-scanning all nodes — the
// fleet-scale path for 1000-node clusters. The original linear best/worst-fit
// scan is retained behind NewReference as the ground truth: the index must
// pick a byte-identical node sequence, lowest-index tie-break included
// (TestIndexedPlaceMatchesReference).
package cluster

import (
	"fmt"
	"math/rand"
)

// Node is one machine.
type Node struct {
	Name     string
	Capacity float64 // CPUs
	used     float64
	down     bool
	// cpuFactor scales the node's effective CPU speed (interference model);
	// 0 means unset and reads as 1.
	cpuFactor float64

	c *Cluster // owning cluster (index + aggregate maintenance)
	g *group   // owning node group (nil on ungrouped clusters)
	i int32    // index in c.nodes, the placement tie-break key
}

// Used reports allocated CPUs.
func (n *Node) Used() float64 { return n.used }

// Free reports unallocated CPUs.
func (n *Node) Free() float64 { return n.Capacity - n.used }

// Down reports whether the node is failed.
func (n *Node) Down() bool { return n.down }

// SetDown fails (true) or recovers (false) the node. Place skips down nodes;
// existing allocations are untouched — evicting resident replicas is the
// caller's job (services.App.EvictNode). O(log n): the node leaves or
// rejoins the free-capacity index and the up-capacity aggregates.
func (n *Node) SetDown(down bool) {
	if n.down == down {
		return
	}
	n.down = down
	c := n.c
	if c.linear {
		return
	}
	if down {
		c.idx.erase(n.i)
		c.availCap -= n.Capacity
		c.usedUp -= n.used
		c.downCount++
	} else {
		c.idx.insert(n.i, n.Free())
		c.availCap += n.Capacity
		c.usedUp += n.used
		c.downCount--
	}
	if g := n.g; g != nil {
		if down {
			g.idx.erase(n.i)
			g.availCap -= n.Capacity
			g.usedUp -= n.used
			g.downCount++
		} else {
			g.idx.insert(n.i, n.Free())
			g.availCap += n.Capacity
			g.usedUp += n.used
			g.downCount--
		}
	}
}

// CPUFactor reports the node's effective-capacity multiplier (1 = nominal).
func (n *Node) CPUFactor() float64 {
	if n.cpuFactor == 0 {
		return 1
	}
	return n.cpuFactor
}

// SetCPUFactor models CPU interference: resident replicas run at factor ×
// their nominal rate. Allocation bookkeeping is unchanged — the node still
// "holds" the same CPUs, they are just slower — so the free-capacity index
// is untouched and this stays O(1).
func (n *Node) SetCPUFactor(f float64) {
	if f <= 0 {
		panic("cluster: non-positive cpu factor")
	}
	n.cpuFactor = f
}

// Placement records where a replica landed; keep it to release later.
type Placement struct {
	Node *Node
	CPUs float64
}

// Strategy selects the node for a new replica among those that fit.
type Strategy int

// Placement strategies.
const (
	// BestFit packs replicas tightly (least free capacity that fits) —
	// fewer fragmentation stalls, more co-location.
	BestFit Strategy = iota
	// WorstFit spreads replicas (most free capacity) — Kubernetes'
	// least-allocated default scoring.
	WorstFit
)

// Cluster is a pool of nodes.
type Cluster struct {
	nodes    []*Node
	byName   map[string]*Node
	strategy Strategy

	// linear marks a retained-reference cluster (NewReference): Place runs
	// the original O(n) scan and every aggregate re-scans all nodes. The
	// equivalence property test and the placement benchmarks drive both
	// implementations against each other.
	linear bool

	// Incrementally maintained aggregates (indexed mode only). Capacities
	// are fixed after New, so totalCap never changes; the others move in
	// O(1) on Place/Release/SetDown.
	totalCap  float64
	availCap  float64 // capacity summed over up nodes
	usedUp    float64 // used CPUs summed over up nodes
	totalUsed float64
	downCount int

	idx freeIndex

	// Node groups (NewGrouped): declaration-ordered members with group-scoped
	// indexes for region-restricted placement. Empty on ungrouped clusters.
	groups      []*group
	groupByName map[string]*group
}

// New builds a cluster from node capacities.
func New(strategy Strategy, capacities ...float64) *Cluster {
	return build(strategy, false, capacities)
}

// NewReference builds a cluster that places with the original linear
// best/worst-fit scan instead of the free-capacity index — the retained
// ground-truth implementation for equivalence tests and benchmarks.
func NewReference(strategy Strategy, capacities ...float64) *Cluster {
	return build(strategy, true, capacities)
}

func build(strategy Strategy, linear bool, capacities []float64) *Cluster {
	c := &Cluster{strategy: strategy, linear: linear, byName: make(map[string]*Node, len(capacities))}
	for i, cap := range capacities {
		if cap <= 0 {
			panic("cluster: non-positive node capacity")
		}
		n := &Node{Name: fmt.Sprintf("node-%d", i), Capacity: cap, c: c, i: int32(i)}
		c.nodes = append(c.nodes, n)
		c.byName[n.Name] = n
		c.totalCap += cap
		c.availCap += cap
	}
	if len(c.nodes) == 0 {
		panic("cluster: no nodes")
	}
	if !linear {
		c.idx.init(len(c.nodes), strategy == WorstFit)
		for _, n := range c.nodes {
			c.idx.insert(n.i, n.Capacity)
		}
	}
	return c
}

// PaperTestbed builds the §VII-A cluster: 8 machines, 40–88 CPUs.
func PaperTestbed() *Cluster {
	return New(WorstFit, 40, 48, 56, 64, 64, 72, 80, 88)
}

// Synthetic builds an n-node fleet whose capacities are drawn
// deterministically from the paper testbed's range (40–88 CPUs in steps of
// 8) — the cluster-size knob for fleet-scale experiments. Equal (n, seed)
// produce identical clusters on any platform.
func Synthetic(strategy Strategy, n int, seed int64) *Cluster {
	return New(strategy, SyntheticCapacities(n, seed)...)
}

// SyntheticCapacities draws the node capacities Synthetic uses, so callers
// can build a retained-reference twin (NewReference) of the same fleet.
func SyntheticCapacities(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = float64(40 + 8*rng.Intn(7))
	}
	return caps
}

// Nodes lists the nodes (callers must not mutate).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// NodeByName finds a node by name, or nil.
func (c *Cluster) NodeByName(name string) *Node {
	return c.byName[name]
}

// TotalCapacity sums node capacities, down or not.
func (c *Cluster) TotalCapacity() float64 {
	if c.linear {
		t := 0.0
		for _, n := range c.nodes {
			t += n.Capacity
		}
		return t
	}
	return c.totalCap
}

// AvailableCapacity sums the capacities of up nodes only.
func (c *Cluster) AvailableCapacity() float64 {
	if c.linear {
		t := 0.0
		for _, n := range c.nodes {
			if !n.down {
				t += n.Capacity
			}
		}
		return t
	}
	return c.availCap
}

// TotalUsed sums allocated CPUs.
func (c *Cluster) TotalUsed() float64 {
	if c.linear {
		t := 0.0
		for _, n := range c.nodes {
			t += n.used
		}
		return t
	}
	return c.totalUsed
}

// ErrNoCapacity is returned when no node can host the replica. It carries
// enough of the capacity picture to diagnose placement failures in long
// runs: the largest free fragment (is this fragmentation or exhaustion?)
// and the total free capacity across up nodes.
type ErrNoCapacity struct {
	CPUs        float64 // requested
	Group       string  // node group the request was restricted to ("" = whole cluster)
	LargestFree float64 // biggest free fragment on any up node
	TotalFree   float64 // free CPUs summed over up nodes
	DownNodes   int     // nodes currently failed
}

// Error implements error.
func (e ErrNoCapacity) Error() string {
	where := "node"
	if e.Group != "" {
		where = fmt.Sprintf("node in group %q", e.Group)
	}
	msg := fmt.Sprintf("cluster: no %s with %.1f free CPUs (largest free fragment %.1f, %.1f total free)",
		where, e.CPUs, e.LargestFree, e.TotalFree)
	if e.DownNodes > 0 {
		msg += fmt.Sprintf("; %d node(s) down", e.DownNodes)
	}
	return msg
}

// fitEps absorbs float accumulation error in the fit check: a node fits when
// its free capacity is within 1e-9 of the request.
const fitEps = 1e-9

// Place allocates cpus on an up node per the strategy. Ties on equal free
// capacity break to the lowest node index, deterministically. O(log n) via
// the free-capacity index; the ErrNoCapacity diagnostic reads the
// incrementally maintained aggregates instead of re-scanning nodes.
func (c *Cluster) Place(cpus float64) (Placement, error) {
	if cpus <= 0 {
		panic("cluster: non-positive placement")
	}
	if c.linear {
		return c.placeLinear(cpus)
	}
	var pick int32 = -1
	switch c.strategy {
	case BestFit:
		// Tightest fit: the smallest (free, index) key with free ≥ request.
		pick = c.idx.ceil(cpus - fitEps)
	case WorstFit:
		// Emptiest node in one descent: the WorstFit index orders equal-free
		// ties by descending index, so max() is already the lowest-index
		// holder of the largest free fragment.
		if m := c.idx.max(); m != -1 && c.idx.freeOf(m) >= cpus-fitEps {
			pick = m
		}
	}
	if pick == -1 {
		return Placement{}, ErrNoCapacity{
			CPUs:        cpus,
			LargestFree: c.largestFree(),
			TotalFree:   c.availCap - c.usedUp,
			DownNodes:   c.downCount,
		}
	}
	return c.commitPlace(c.nodes[pick], cpus), nil
}

// commitPlace books an indexed-mode allocation on the chosen node, keeping the
// cluster-wide and (when the node belongs to one) group-level indexes and
// aggregates in step.
func (c *Cluster) commitPlace(best *Node, cpus float64) Placement {
	best.used += cpus
	c.totalUsed += cpus
	c.usedUp += cpus
	c.idx.update(best.i, best.Free())
	if g := best.g; g != nil {
		g.idx.update(best.i, best.Free())
		g.usedUp += cpus
	}
	return Placement{Node: best, CPUs: cpus}
}

// largestFree reports the biggest free fragment on any up node (0 when every
// node is down).
func (c *Cluster) largestFree() float64 {
	if m := c.idx.max(); m != -1 {
		return c.idx.freeOf(m)
	}
	return 0
}

// placeLinear is the retained pre-index implementation: one O(n) scan per
// placement, with an O(n) diagnostic scan on failure. The property test pins
// the indexed path to this node for node.
func (c *Cluster) placeLinear(cpus float64) (Placement, error) {
	var best *Node
	for _, n := range c.nodes {
		if n.down || n.Free() < cpus-fitEps {
			continue
		}
		if best == nil {
			best = n
			continue
		}
		// Strict comparisons keep the first (lowest-index) node on ties.
		free, bfree := n.Free(), best.Free()
		if (c.strategy == BestFit && free < bfree) || (c.strategy == WorstFit && free > bfree) {
			best = n
		}
	}
	if best == nil {
		e := ErrNoCapacity{CPUs: cpus}
		for _, n := range c.nodes {
			if n.down {
				e.DownNodes++
				continue
			}
			if f := n.Free(); f > e.LargestFree {
				e.LargestFree = f
			}
			e.TotalFree += n.Free()
		}
		return Placement{}, e
	}
	best.used += cpus
	return Placement{Node: best, CPUs: cpus}, nil
}

// Release returns a placement's CPUs to its node.
func (c *Cluster) Release(p Placement) {
	if p.Node == nil {
		return
	}
	n := p.Node
	old := n.used
	n.used -= p.CPUs
	if n.used < -fitEps {
		panic("cluster: released more than allocated")
	}
	if n.used < 0 {
		n.used = 0
	}
	if c.linear {
		return
	}
	delta := old - n.used
	c.totalUsed -= delta
	if !n.down {
		// Down nodes are out of the index; their used CPUs rejoin the up
		// aggregates when SetDown(false) re-links them.
		c.usedUp -= delta
		c.idx.update(n.i, n.Free())
		if g := n.g; g != nil {
			g.usedUp -= delta
			g.idx.update(n.i, n.Free())
		}
	}
}

// FitsReplicas reports how many replicas of the given size the cluster
// could still place on up nodes (a capacity planner's view; does not
// allocate).
func (c *Cluster) FitsReplicas(cpus float64) int {
	n := 0
	for _, node := range c.nodes {
		if node.down {
			continue
		}
		free := node.Free()
		for free >= cpus-fitEps {
			free -= cpus
			n++
		}
	}
	return n
}
