// Package cluster models the physical cluster underneath the simulated
// services: a fixed pool of nodes with CPU capacity, replica placement, and
// allocation accounting. The paper's testbed is 8 machines with 40–88 CPUs
// each (§VII-A); binding an application to a Cluster makes replica scaling
// subject to real capacity, so autoscalers can hit the wall the way they do
// in production.
package cluster

import (
	"fmt"
	"sort"
)

// Node is one machine.
type Node struct {
	Name     string
	Capacity float64 // CPUs
	used     float64
}

// Used reports allocated CPUs.
func (n *Node) Used() float64 { return n.used }

// Free reports unallocated CPUs.
func (n *Node) Free() float64 { return n.Capacity - n.used }

// Placement records where a replica landed; keep it to release later.
type Placement struct {
	Node *Node
	CPUs float64
}

// Strategy selects the node for a new replica among those that fit.
type Strategy int

// Placement strategies.
const (
	// BestFit packs replicas tightly (least free capacity that fits) —
	// fewer fragmentation stalls, more co-location.
	BestFit Strategy = iota
	// WorstFit spreads replicas (most free capacity) — Kubernetes'
	// least-allocated default scoring.
	WorstFit
)

// Cluster is a pool of nodes.
type Cluster struct {
	nodes    []*Node
	strategy Strategy
}

// New builds a cluster from node capacities.
func New(strategy Strategy, capacities ...float64) *Cluster {
	c := &Cluster{strategy: strategy}
	for i, cap := range capacities {
		if cap <= 0 {
			panic("cluster: non-positive node capacity")
		}
		c.nodes = append(c.nodes, &Node{Name: fmt.Sprintf("node-%d", i), Capacity: cap})
	}
	if len(c.nodes) == 0 {
		panic("cluster: no nodes")
	}
	return c
}

// PaperTestbed builds the §VII-A cluster: 8 machines, 40–88 CPUs.
func PaperTestbed() *Cluster {
	return New(WorstFit, 40, 48, 56, 64, 64, 72, 80, 88)
}

// Nodes lists the nodes (callers must not mutate).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// TotalCapacity sums node capacities.
func (c *Cluster) TotalCapacity() float64 {
	t := 0.0
	for _, n := range c.nodes {
		t += n.Capacity
	}
	return t
}

// TotalUsed sums allocated CPUs.
func (c *Cluster) TotalUsed() float64 {
	t := 0.0
	for _, n := range c.nodes {
		t += n.used
	}
	return t
}

// ErrNoCapacity is returned when no node can host the replica.
type ErrNoCapacity struct {
	CPUs float64
}

// Error implements error.
func (e ErrNoCapacity) Error() string {
	return fmt.Sprintf("cluster: no node with %.1f free CPUs", e.CPUs)
}

// Place allocates cpus on a node per the strategy.
func (c *Cluster) Place(cpus float64) (Placement, error) {
	if cpus <= 0 {
		panic("cluster: non-positive placement")
	}
	var candidates []*Node
	for _, n := range c.nodes {
		if n.Free() >= cpus-1e-9 {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) == 0 {
		return Placement{}, ErrNoCapacity{CPUs: cpus}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if c.strategy == BestFit {
			return candidates[i].Free() < candidates[j].Free()
		}
		return candidates[i].Free() > candidates[j].Free()
	})
	n := candidates[0]
	n.used += cpus
	return Placement{Node: n, CPUs: cpus}, nil
}

// Release returns a placement's CPUs to its node.
func (c *Cluster) Release(p Placement) {
	if p.Node == nil {
		return
	}
	p.Node.used -= p.CPUs
	if p.Node.used < -1e-9 {
		panic("cluster: released more than allocated")
	}
	if p.Node.used < 0 {
		p.Node.used = 0
	}
}

// FitsReplicas reports how many replicas of the given size the cluster
// could still place (a capacity planner's view; does not allocate).
func (c *Cluster) FitsReplicas(cpus float64) int {
	n := 0
	for _, node := range c.nodes {
		free := node.Free()
		for free >= cpus-1e-9 {
			free -= cpus
			n++
		}
	}
	return n
}
