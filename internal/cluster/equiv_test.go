package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestIndexedPlaceMatchesReference is the equivalence property pin for the
// free-capacity index: randomized place/release/down/recover/CPU-factor
// sequences must make the indexed cluster pick a byte-identical node
// sequence — lowest-index tie-break included — to the retained linear-scan
// reference, for both strategies, across ≥40 seeds. Aggregates and
// ErrNoCapacity diagnostics are compared on every step too. Every drawn
// size and capacity is a multiple of 0.5, so all float sums are exact and
// equality checks are legitimate.
func TestIndexedPlaceMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 48; seed++ {
		for _, s := range []Strategy{BestFit, WorstFit} {
			seed, s := seed, s
			t.Run(fmt.Sprintf("seed=%d/strategy=%d", seed, s), func(t *testing.T) {
				runEquivSequence(t, seed, s)
			})
		}
	}
}

func runEquivSequence(t *testing.T, seed int64, s Strategy) {
	rng := rand.New(rand.NewSource(seed))
	nNodes := 1 + rng.Intn(64)
	caps := make([]float64, nNodes)
	for i := range caps {
		caps[i] = float64(4 + rng.Intn(61)) // 4..64 CPUs
	}
	idx := New(s, caps...)
	ref := NewReference(s, caps...)

	type pair struct{ ip, rp Placement }
	var live []pair
	for op := 0; op < 300; op++ {
		switch u := rng.Float64(); {
		case u < 0.55 || len(live) == 0:
			cpus := 0.5 * float64(1+rng.Intn(16)) // 0.5 .. 8.0
			ip, ierr := idx.Place(cpus)
			rp, rerr := ref.Place(cpus)
			switch {
			case (ierr == nil) != (rerr == nil):
				t.Fatalf("op %d: Place(%v) errs diverge: indexed %v, reference %v", op, cpus, ierr, rerr)
			case ierr != nil:
				if ierr.Error() != rerr.Error() {
					t.Fatalf("op %d: Place(%v) error diverges:\n  indexed:   %v\n  reference: %v", op, cpus, ierr, rerr)
				}
			default:
				if ip.Node.Name != rp.Node.Name {
					t.Fatalf("op %d: Place(%v) picked %s, reference picked %s", op, cpus, ip.Node.Name, rp.Node.Name)
				}
				live = append(live, pair{ip, rp})
			}
		case u < 0.80:
			k := rng.Intn(len(live))
			idx.Release(live[k].ip)
			ref.Release(live[k].rp)
			live = append(live[:k], live[k+1:]...)
		case u < 0.92:
			i := rng.Intn(nNodes)
			down := rng.Float64() < 0.5
			idx.nodes[i].SetDown(down)
			ref.nodes[i].SetDown(down)
		default:
			// CPU interference must not perturb placement or the index.
			i := rng.Intn(nNodes)
			f := 0.25 + 1.5*rng.Float64()
			idx.nodes[i].SetCPUFactor(f)
			ref.nodes[i].SetCPUFactor(f)
		}
		if got, want := idx.TotalUsed(), ref.TotalUsed(); got != want {
			t.Fatalf("op %d: TotalUsed %v != reference %v", op, got, want)
		}
		if got, want := idx.AvailableCapacity(), ref.AvailableCapacity(); got != want {
			t.Fatalf("op %d: AvailableCapacity %v != reference %v", op, got, want)
		}
		if got, want := idx.TotalCapacity(), ref.TotalCapacity(); got != want {
			t.Fatalf("op %d: TotalCapacity %v != reference %v", op, got, want)
		}
		for i, n := range idx.nodes {
			if rn := ref.nodes[i]; n.used != rn.used || n.down != rn.down {
				t.Fatalf("op %d: node %d state diverged: used %v/%v down %v/%v",
					op, i, n.used, rn.used, n.down, rn.down)
			}
		}
		if op%37 == 0 {
			cpus := 0.5 * float64(1+rng.Intn(8))
			if got, want := idx.FitsReplicas(cpus), ref.FitsReplicas(cpus); got != want {
				t.Fatalf("op %d: FitsReplicas(%v) %d != reference %d", op, cpus, got, want)
			}
		}
	}
}

// TestFreeIndexOrdering drives the treap directly through random re-keys and
// erases and checks the in-order traversal stays sorted by (free, index)
// with exactly the linked slots present — in both tie orders (ascending
// index for BestFit, descending for WorstFit).
func TestFreeIndexOrdering(t *testing.T) {
	for _, tieDesc := range []bool{false, true} {
		t.Run(fmt.Sprintf("tieDesc=%v", tieDesc), func(t *testing.T) {
			runFreeIndexOrdering(t, tieDesc)
		})
	}
}

func runFreeIndexOrdering(t *testing.T, tieDesc bool) {
	rng := rand.New(rand.NewSource(11))
	const n = 40
	var idx freeIndex
	idx.init(n, tieDesc)
	linked := make(map[int32]bool, n)
	free := make([]float64, n)
	for i := int32(0); i < n; i++ {
		free[i] = float64(rng.Intn(32))
		idx.insert(i, free[i])
		linked[i] = true
	}
	for op := 0; op < 2000; op++ {
		i := int32(rng.Intn(n))
		switch {
		case !linked[i]:
			free[i] = float64(rng.Intn(32))
			idx.insert(i, free[i])
			linked[i] = true
		case rng.Float64() < 0.3:
			idx.erase(i)
			linked[i] = false
		default:
			free[i] = float64(rng.Intn(32))
			idx.update(i, free[i])
		}

		var walk func(int32, []int32) []int32
		walk = func(cur int32, out []int32) []int32 {
			if cur == -1 {
				return out
			}
			out = walk(idx.s[cur].left, out)
			out = append(out, cur)
			return walk(idx.s[cur].right, out)
		}
		order := walk(idx.root, nil)
		want := 0
		for _, ok := range linked {
			if ok {
				want++
			}
		}
		if len(order) != want {
			t.Fatalf("op %d: traversal has %d slots, want %d", op, len(order), want)
		}
		for k := 1; k < len(order); k++ {
			a, b := order[k-1], order[k]
			tieBad := a > b
			if tieDesc {
				tieBad = a < b
			}
			if idx.s[a].free > idx.s[b].free || (idx.s[a].free == idx.s[b].free && tieBad) {
				t.Fatalf("op %d: traversal out of order at %d: (%v,%d) before (%v,%d)",
					op, k, idx.s[a].free, a, idx.s[b].free, b)
			}
		}
	}
}
