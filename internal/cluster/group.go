package cluster

import "fmt"

// NodeGroup declares one named node group — a region's machines — for
// NewGrouped. Capacities follow the same convention as New.
type NodeGroup struct {
	Name       string
	Capacities []float64
}

// group is the runtime state of one node group: its members, a group-scoped
// free-capacity index (same treap, same node slots, only members linked), and
// incrementally maintained capacity aggregates mirroring the cluster-wide
// ones. Place, Release and SetDown keep both levels in step, so a
// group-restricted placement query stays O(log n).
type group struct {
	name  string
	nodes []*Node

	idx       freeIndex
	availCap  float64 // capacity summed over up members
	usedUp    float64 // used CPUs summed over up members
	downCount int
}

// largestFree reports the biggest free fragment on any up member.
func (g *group) largestFree() float64 {
	if m := g.idx.max(); m != -1 {
		return g.idx.freeOf(m)
	}
	return 0
}

// NewGrouped builds an indexed cluster partitioned into named node groups.
// Nodes are named "<group>-<j>" (j counting within the group); the flat node
// order is declaration order, so the global placement tie-break prefers
// earlier-declared groups exactly as New prefers earlier capacities. Grouped
// clusters always run the maintained index (there is no linear reference for
// group-restricted placement).
func NewGrouped(strategy Strategy, specs ...NodeGroup) *Cluster {
	if len(specs) == 0 {
		panic("cluster: no node groups")
	}
	var caps []float64
	for _, gs := range specs {
		caps = append(caps, gs.Capacities...)
	}
	c := build(strategy, false, caps)
	c.groupByName = make(map[string]*group, len(specs))
	i := 0
	for _, gs := range specs {
		if gs.Name == "" {
			panic("cluster: empty group name")
		}
		if len(gs.Capacities) == 0 {
			panic(fmt.Sprintf("cluster: group %q has no nodes", gs.Name))
		}
		if _, dup := c.groupByName[gs.Name]; dup {
			panic(fmt.Sprintf("cluster: duplicate group %q", gs.Name))
		}
		g := &group{name: gs.Name}
		g.idx.init(len(c.nodes), strategy == WorstFit)
		for range gs.Capacities {
			n := c.nodes[i]
			delete(c.byName, n.Name)
			n.Name = fmt.Sprintf("%s-%d", gs.Name, len(g.nodes))
			c.byName[n.Name] = n
			n.g = g
			g.nodes = append(g.nodes, n)
			g.idx.insert(n.i, n.Capacity)
			g.availCap += n.Capacity
			i++
		}
		c.groups = append(c.groups, g)
		c.groupByName[gs.Name] = g
	}
	return c
}

// Group reports the node's group name ("" on ungrouped clusters).
func (n *Node) Group() string {
	if n.g == nil {
		return ""
	}
	return n.g.name
}

// GroupNames lists the cluster's node groups in declaration order (nil on
// ungrouped clusters).
func (c *Cluster) GroupNames() []string {
	var names []string
	for _, g := range c.groups {
		names = append(names, g.name)
	}
	return names
}

// GroupNodes lists a group's members (callers must not mutate), or nil for an
// unknown group.
func (c *Cluster) GroupNodes(name string) []*Node {
	if g := c.groupByName[name]; g != nil {
		return g.nodes
	}
	return nil
}

// GroupAvailableCapacity sums the capacities of a group's up members.
func (c *Cluster) GroupAvailableCapacity(name string) float64 {
	if g := c.groupByName[name]; g != nil {
		return g.availCap
	}
	return 0
}

// GroupUsed sums allocated CPUs on a group's up members.
func (c *Cluster) GroupUsed(name string) float64 {
	if g := c.groupByName[name]; g != nil {
		return g.usedUp
	}
	return 0
}

// PlaceIn allocates cpus on an up node of the named group, with the same
// strategy and deterministic tie-break as Place. O(log n) via the group's own
// free-capacity index; the ErrNoCapacity diagnostic is group-scoped.
func (c *Cluster) PlaceIn(name string, cpus float64) (Placement, error) {
	if cpus <= 0 {
		panic("cluster: non-positive placement")
	}
	if c.linear {
		panic("cluster: PlaceIn on a reference (linear) cluster")
	}
	g := c.groupByName[name]
	if g == nil {
		return Placement{}, fmt.Errorf("cluster: unknown node group %q", name)
	}
	var pick int32 = -1
	switch c.strategy {
	case BestFit:
		pick = g.idx.ceil(cpus - fitEps)
	case WorstFit:
		if m := g.idx.max(); m != -1 && g.idx.freeOf(m) >= cpus-fitEps {
			pick = m
		}
	}
	if pick == -1 {
		return Placement{}, ErrNoCapacity{
			CPUs:        cpus,
			Group:       name,
			LargestFree: g.largestFree(),
			TotalFree:   g.availCap - g.usedUp,
			DownNodes:   g.downCount,
		}
	}
	return c.commitPlace(c.nodes[pick], cpus), nil
}
