package cluster

// freeIndex is the maintained free-capacity index over up nodes: a treap
// keyed by (free CPUs, node index) with deterministic per-node priorities.
// It answers the placement query in O(log n) expected time with a single
// descent per strategy:
//
//   - BestFit (tieDesc=false, ties order by ascending index): ceil(request)
//     lands on the smallest (free, index) pair with free ≥ request — the
//     tightest fitting node, lowest index among equal-free ties.
//   - WorstFit (tieDesc=true, ties order by descending index): max() lands
//     on the largest free and, because equal-free ties sort lower indexes
//     later, directly on the lowest-index holder of that maximum.
//
// Keys are the exact float64 free values the retained linear scan compares
// (Capacity − used, maintained by identical arithmetic), and the tie order
// reproduces its first-wins tie-break, so the index picks a byte-identical
// node sequence — pinned by TestIndexedPlaceMatchesReference.
//
// Node slots are fixed at construction (clusters never grow), so the treap
// lives in one flat per-node slot array with no allocation after New: an
// update is erase + reinsert of one slot, both iterative over a scratch
// descent stack. Priorities are a splitmix64 hash of the node index —
// deterministic across runs and platforms, no RNG state.
type freeIndex struct {
	s       []slot
	root    int32
	tieDesc bool
	// path is the scratch descent stack for insert's rotate-up pass. Treap
	// depth with hashed priorities is ~2·log2(n); 128 covers any plausible
	// fleet with enormous margin.
	path [128]int32
}

// slot is one treap node, 24 bytes: key (free), heap priority, children.
type slot struct {
	free        float64
	prio        uint32
	left, right int32
}

func (t *freeIndex) init(n int, tieDesc bool) {
	t.s = make([]slot, n)
	for i := 0; i < n; i++ {
		t.s[i].prio = uint32(splitmix64(uint64(i)+1) >> 32)
	}
	t.root = -1
	t.tieDesc = tieDesc
}

// less orders slots by (free, index), index direction per tieDesc.
func (t *freeIndex) less(a, b int32) bool {
	if t.s[a].free != t.s[b].free {
		return t.s[a].free < t.s[b].free
	}
	if t.tieDesc {
		return a > b
	}
	return a < b
}

// insert links slot i into the treap under the given key.
func (t *freeIndex) insert(i int32, free float64) {
	s := t.s
	s[i].free = free
	s[i].left, s[i].right = -1, -1
	if t.root == -1 {
		t.root = i
		return
	}
	top := 0
	for cur := t.root; ; {
		t.path[top] = cur
		top++
		if t.less(i, cur) {
			if s[cur].left == -1 {
				s[cur].left = i
				break
			}
			cur = s[cur].left
		} else {
			if s[cur].right == -1 {
				s[cur].right = i
				break
			}
			cur = s[cur].right
		}
	}
	// Rotate i up while it outranks its parent.
	for top > 0 {
		p := t.path[top-1]
		if s[p].prio >= s[i].prio {
			break
		}
		if s[p].left == i {
			s[p].left = s[i].right
			s[i].right = p
		} else {
			s[p].right = s[i].left
			s[i].left = p
		}
		top--
		t.relink(top, p, i)
	}
}

// erase unlinks slot i: navigate to it by its stored key, rotate it down
// until it has at most one child, then splice it out. The slot's key must
// not have changed since insert.
func (t *freeIndex) erase(i int32) {
	s := t.s
	parent := int32(-1)
	for cur := t.root; cur != i; {
		if cur == -1 {
			panic("cluster: free index erase of unlinked node")
		}
		parent = cur
		if t.less(i, cur) {
			cur = s[cur].left
		} else {
			cur = s[cur].right
		}
	}
	for {
		l, r := s[i].left, s[i].right
		if l == -1 || r == -1 {
			child := l
			if l == -1 {
				child = r
			}
			t.spliceChild(parent, i, child)
			return
		}
		// Rotate the higher-priority child above i, then keep sinking i.
		var up int32
		if s[l].prio > s[r].prio {
			s[i].left = s[l].right
			s[l].right = i
			up = l
		} else {
			s[i].right = s[r].left
			s[r].left = i
			up = r
		}
		t.spliceChild(parent, i, up)
		parent = up
	}
}

// relink points the parent at path depth top-1 (or the root) at repl, which
// just replaced old as the subtree head during insert's rotate-up.
func (t *freeIndex) relink(top int, old, repl int32) {
	if top == 0 {
		t.root = repl
		return
	}
	g := t.path[top-1]
	if t.s[g].left == old {
		t.s[g].left = repl
	} else {
		t.s[g].right = repl
	}
}

// spliceChild replaces parent's child old (or the root) with repl.
func (t *freeIndex) spliceChild(parent, old, repl int32) {
	switch {
	case parent == -1:
		t.root = repl
	case t.s[parent].left == old:
		t.s[parent].left = repl
	default:
		t.s[parent].right = repl
	}
}

// update re-keys slot i to the given free value.
func (t *freeIndex) update(i int32, free float64) {
	t.erase(i)
	t.insert(i, free)
}

// ceil returns the first slot in key order with free ≥ minFree, or -1.
func (t *freeIndex) ceil(minFree float64) int32 {
	best := int32(-1)
	for cur := t.root; cur != -1; {
		if t.s[cur].free >= minFree {
			best = cur
			cur = t.s[cur].left
		} else {
			cur = t.s[cur].right
		}
	}
	return best
}

// max returns the slot with the largest key, or -1 when empty.
func (t *freeIndex) max() int32 {
	cur := t.root
	if cur == -1 {
		return -1
	}
	for t.s[cur].right != -1 {
		cur = t.s[cur].right
	}
	return cur
}

// freeOf reads the stored key of a linked slot.
func (t *freeIndex) freeOf(i int32) float64 { return t.s[i].free }

// splitmix64 is the SplitMix64 finalizer — a fixed, platform-independent
// hash used for treap priorities.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
