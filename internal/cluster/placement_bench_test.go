package cluster

import (
	"fmt"
	"testing"
)

// BenchmarkPlace times one Place+Release cycle on a half-full synthetic
// fleet, for the maintained free-capacity index ("indexed") and the retained
// linear scan ("linear"), across node counts. The headline fleet-scale claim
// is the indexed/linear ratio at 1024 nodes (BENCH_placement.json pins it).
func BenchmarkPlace(b *testing.B) {
	for _, impl := range []string{"indexed", "linear"} {
		for _, nodes := range []int{8, 64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/nodes=%d", impl, nodes), func(b *testing.B) {
				for _, s := range []Strategy{WorstFit} {
					caps := SyntheticCapacities(nodes, 7)
					var c *Cluster
					if impl == "indexed" {
						c = New(s, caps...)
					} else {
						c = NewReference(s, caps...)
					}
					// Fill to ~50% so fit checks exercise realistic
					// fragmentation rather than an empty fleet.
					sizes := []float64{1, 2, 4, 8}
					for i := 0; c.TotalUsed() < 0.5*c.TotalCapacity(); i++ {
						if _, err := c.Place(sizes[i%len(sizes)]); err != nil {
							b.Fatal(err)
						}
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						p, err := c.Place(sizes[i%len(sizes)])
						if err != nil {
							b.Fatal(err)
						}
						c.Release(p)
					}
				}
			})
		}
	}
}

// BenchmarkSetDown times the node failure/recovery lifecycle on a loaded
// fleet: the index maintenance cost of draining and restoring a node.
func BenchmarkSetDown(b *testing.B) {
	for _, nodes := range []int{8, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			c := Synthetic(WorstFit, nodes, 7)
			for c.TotalUsed() < 0.5*c.TotalCapacity() {
				if _, err := c.Place(4); err != nil {
					b.Fatal(err)
				}
			}
			n := c.nodes[nodes/2]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.SetDown(true)
				n.SetDown(false)
			}
		})
	}
}
