package baselines

import (
	"math"
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

func obsApp(t *testing.T) (*sim.Engine, *services.App) {
	t.Helper()
	eng := sim.NewEngine(1)
	app := services.MustNewApp(eng, services.AppSpec{
		Name: "obs",
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 64, CPUs: 2, InitialReplicas: 2,
			Handlers: map[string][]services.Step{
				"get": services.Seq(services.Compute{MeanMs: 5, CV: -1}),
			},
		}},
		Classes: []services.ClassSpec{{Name: "get", Entry: "api", SLAPercentile: 99, SLAMillis: 20}},
	})
	return eng, app
}

func TestObserveBasics(t *testing.T) {
	eng, app := obsApp(t)
	g := workload.New(eng, app, workload.Constant{Value: 100}, workload.Mix{"get": 1})
	g.Start()
	eng.RunUntil(3 * sim.Minute)
	obs := Observe(app, 2*sim.Minute, 3*sim.Minute)
	so, ok := obs.Services["api"]
	if !ok {
		t.Fatal("service missing from observation")
	}
	if so.Replicas != 2 || so.CPUAlloc != 4 {
		t.Fatalf("service obs = %+v", so)
	}
	if math.Abs(so.RPS-100) > 10 {
		t.Fatalf("RPS = %v", so.RPS)
	}
	// util ≈ 100 rps × 5ms / 4 cores = 0.125.
	if math.Abs(so.Util-0.125) > 0.05 {
		t.Fatalf("Util = %v", so.Util)
	}
	if obs.Violated {
		t.Fatal("healthy app reported violated")
	}
	if obs.P99["get"] <= 0 || obs.LatP["get"] <= 0 {
		t.Fatalf("latency missing: %+v", obs)
	}
}

func TestObserveDetectsViolation(t *testing.T) {
	eng, app := obsApp(t)
	g := workload.New(eng, app, workload.Constant{Value: 100}, workload.Mix{"get": 1})
	g.Start()
	app.Service("api").SetCPUFactor(0.05) // 5ms burst → ≥50ms, SLA 20ms
	eng.RunUntil(2 * sim.Minute)
	obs := Observe(app, sim.Minute, 2*sim.Minute)
	if !obs.Violated {
		t.Fatalf("throttled app not flagged: %+v", obs.LatP)
	}
}

func TestServiceNamesSorted(t *testing.T) {
	obs := Observation{Services: map[string]ServiceObs{"b": {}, "a": {}, "c": {}}}
	names := obs.ServiceNamesSorted()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}
