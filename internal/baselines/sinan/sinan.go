// Package sinan reimplements Sinan (§VII-B), the model-based ML-driven
// baseline: a CNN that predicts next-window end-to-end latency per request
// class for a candidate allocation, plus gradient-boosted trees that predict
// the probability of an SLA violation further into the future. A centralised
// scheduler queries both models with candidate allocations each interval and
// applies the cheapest allocation predicted safe.
package sinan

import (
	"math/rand"
	"time"

	"ursa/internal/baselines"
	"ursa/internal/ml/gbt"
	"ursa/internal/ml/nn"
	"ursa/internal/ml/tensor"
	"ursa/internal/services"
	"ursa/internal/sim"
)

// Config parameterises Sinan.
type Config struct {
	// Window is the decision/sampling interval.
	Window sim.Time
	// MaxReplicas bounds per-service allocations during collection and
	// control.
	MaxReplicas int
	// Filters / Hidden size the CNN.
	Filters, Hidden int
	// Epochs is the CNN training epoch count.
	Epochs int
	// Trees / Depth size the violation GBT.
	Trees, Depth int
	// SafetyProb rejects candidates whose predicted violation probability
	// exceeds it.
	SafetyProb float64
	// Seed drives model init and collection randomness.
	Seed int64
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = sim.Minute
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 24
	}
	if c.Filters <= 0 {
		c.Filters = 8
	}
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 60
	}
	if c.Trees <= 0 {
		c.Trees = 60
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.SafetyProb <= 0 {
		c.SafetyProb = 0.5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// channels per service in the CNN input: replicas, util, rps, candidate.
const channels = 4

// Sample is one training example: state + candidate allocation features and
// the next-window outcome.
type Sample struct {
	Features []float64
	// LatencyNorm is per-class latency at the SLA percentile, normalised by
	// the SLA target (1.0 = exactly at SLA).
	LatencyNorm []float64
	// Violated is 1 when any class broke its SLA in the following window.
	Violated float64
}

// Sinan is the trained system.
type Sinan struct {
	cfg      Config
	spec     services.AppSpec
	svcNames []string
	classes  []services.ClassSpec

	latNet  *nn.Network
	violGBT *gbt.Classifier
	rpsNorm float64

	app    *services.App
	ticker *sim.Ticker
	rng    *rand.Rand

	decisions int
	seconds   float64
}

// featureVector builds the CNN input: channel-major [replicas | util | rps |
// candidate] over services.
func featureVector(svcNames []string, obs baselines.Observation, candidate map[string]int, maxReplicas int, rpsNorm float64) []float64 {
	s := len(svcNames)
	f := make([]float64, channels*s)
	for i, name := range svcNames {
		so := obs.Services[name]
		f[0*s+i] = float64(so.Replicas) / float64(maxReplicas)
		f[1*s+i] = so.Util
		f[2*s+i] = so.RPS / rpsNorm
		f[3*s+i] = float64(candidate[name]) / float64(maxReplicas)
	}
	return f
}

// Train fits Sinan's models to collected samples.
func Train(spec services.AppSpec, svcNames []string, rpsNorm float64, samples []Sample, cfg Config) *Sinan {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	classes := spec.Classes
	s := &Sinan{
		cfg:      cfg,
		spec:     spec,
		svcNames: svcNames,
		classes:  classes,
		rpsNorm:  rpsNorm,
		rng:      rng,
	}
	width := len(svcNames)
	kernel := 3
	if kernel > width {
		kernel = width
	}
	conv := nn.NewConv1D(channels, width, kernel, cfg.Filters, rng)
	s.latNet = &nn.Network{Layers: []nn.Layer{
		conv, &nn.ReLU{},
		nn.NewDense(conv.OutLen(), cfg.Hidden, rng), &nn.ReLU{},
		nn.NewDense(cfg.Hidden, len(classes), rng),
	}}

	// CNN training: mini-batch Adam on normalised latencies.
	x := tensor.New(len(samples), channels*width)
	y := tensor.New(len(samples), len(classes))
	for i, sm := range samples {
		copy(x.Data[i*x.Cols:], sm.Features)
		copy(y.Data[i*y.Cols:], sm.LatencyNorm)
	}
	opt := nn.NewAdam(1e-3)
	const batch = 64
	idx := rng.Perm(len(samples))
	for e := 0; e < cfg.Epochs; e++ {
		for off := 0; off < len(idx); off += batch {
			end := off + batch
			if end > len(idx) {
				end = len(idx)
			}
			bx := tensor.New(end-off, x.Cols)
			by := tensor.New(end-off, y.Cols)
			for bi, si := range idx[off:end] {
				copy(bx.Data[bi*bx.Cols:], x.Data[si*x.Cols:(si+1)*x.Cols])
				copy(by.Data[bi*by.Cols:], y.Data[si*y.Cols:(si+1)*y.Cols])
			}
			s.latNet.ZeroGrad()
			out := s.latNet.Forward(bx)
			_, grad := nn.MSELoss(out, by)
			s.latNet.Backward(grad)
			opt.Step(s.latNet.Params())
		}
	}

	// Violation GBT on the same features.
	gx := make([][]float64, len(samples))
	gy := make([]float64, len(samples))
	for i, sm := range samples {
		gx[i] = sm.Features
		gy[i] = sm.Violated
	}
	s.violGBT = gbt.TrainClassifier(gx, gy, gbt.Config{Trees: cfg.Trees, Depth: cfg.Depth})
	return s
}

// Clone returns a copy of the trained system with pristine runtime state,
// ready to attach to another application instance (possibly on another
// goroutine). The CNN is deep-copied because Forward caches activations;
// the GBT is shared, as prediction is a read-only tree walk. Clones are
// identical, so deployments fanned over clones are deterministic.
func (s *Sinan) Clone() *Sinan {
	return &Sinan{
		cfg:      s.cfg,
		spec:     s.spec,
		svcNames: s.svcNames,
		classes:  s.classes,
		latNet:   s.latNet.Clone(),
		violGBT:  s.violGBT,
		rpsNorm:  s.rpsNorm,
		rng:      rand.New(rand.NewSource(s.cfg.Seed)),
	}
}

// Name implements baselines.Manager.
func (s *Sinan) Name() string { return "sinan" }

// Attach implements baselines.Manager.
func (s *Sinan) Attach(app *services.App) {
	s.app = app
	s.ticker = app.Eng.Every(s.cfg.Window, s.tick)
}

// Detach implements baselines.Manager.
func (s *Sinan) Detach() {
	if s.ticker != nil {
		s.ticker.Stop()
	}
}

// AvgDecisionMillis implements baselines.Manager.
func (s *Sinan) AvgDecisionMillis() float64 {
	if s.decisions == 0 {
		return 0
	}
	return s.seconds / float64(s.decisions) * 1e3
}

// candidates enumerates allocations to evaluate: hold, per-service ±1, and
// a global +1 escape hatch.
func (s *Sinan) candidates(cur map[string]int) []map[string]int {
	clone := func() map[string]int {
		m := make(map[string]int, len(cur))
		for k, v := range cur {
			m[k] = v
		}
		return m
	}
	out := []map[string]int{clone()}
	for _, name := range s.svcNames {
		if cur[name] < s.cfg.MaxReplicas {
			c := clone()
			c[name]++
			out = append(out, c)
		}
		if cur[name] > 1 {
			c := clone()
			c[name]--
			out = append(out, c)
		}
	}
	up := clone()
	for _, name := range s.svcNames {
		if up[name] < s.cfg.MaxReplicas {
			up[name]++
		}
	}
	out = append(out, up)
	return out
}

func (s *Sinan) tick() {
	start := float64(time.Now().UnixNano()) / 1e9
	now := s.app.Eng.Now()
	from := now - s.cfg.Window
	if from < 0 {
		from = 0
	}
	obs := baselines.Observe(s.app, from, now)
	cur := map[string]int{}
	for _, name := range s.svcNames {
		cur[name] = s.app.Service(name).Replicas()
	}
	cands := s.candidates(cur)

	// Batch all candidates through the CNN.
	width := len(s.svcNames)
	x := tensor.New(len(cands), channels*width)
	feats := make([][]float64, len(cands))
	for i, c := range cands {
		feats[i] = featureVector(s.svcNames, obs, c, s.cfg.MaxReplicas, s.rpsNorm)
		copy(x.Data[i*x.Cols:], feats[i])
	}
	pred := s.latNet.Forward(x)

	bestIdx, bestCost := -1, 0.0
	for i, c := range cands {
		safe := true
		for j := range s.classes {
			if pred.Data[i*pred.Cols+j] >= 1.0 {
				safe = false
				break
			}
		}
		if safe && s.violGBT.PredictProb(feats[i]) > s.cfg.SafetyProb {
			safe = false
		}
		if !safe {
			continue
		}
		cost := 0.0
		for name, r := range c {
			cpus := 1.0
			if ss := s.spec.ServiceSpecByName(name); ss != nil {
				cpus = ss.CPUs
			}
			cost += float64(r) * cpus
		}
		if bestIdx == -1 || cost < bestCost {
			bestIdx, bestCost = i, cost
		}
	}
	var chosen map[string]int
	if bestIdx >= 0 {
		chosen = cands[bestIdx]
	} else {
		// Nothing predicted safe: scale out the most utilised services.
		chosen = cur
		for _, name := range s.svcNames {
			if obs.Services[name].Util > 0.4 && chosen[name] < s.cfg.MaxReplicas {
				chosen[name]++
			}
		}
	}
	for name, r := range chosen {
		if r != s.app.Service(name).Replicas() {
			s.app.Service(name).SetReplicas(r)
		}
	}
	s.decisions++
	s.seconds += float64(time.Now().UnixNano())/1e9 - start
}
