package sinan

import (
	"math/rand"

	"ursa/internal/baselines"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// CollectConfig parameterises the data-collection process.
type CollectConfig struct {
	// Samples is the number of (state, candidate → outcome) examples to
	// gather; the paper uses 10,000.
	Samples int
	// Window is the per-sample observation window. The paper samples once
	// per minute; benchmarks may shorten the window to keep the simulated
	// collection tractable while keeping the paper's once-per-minute
	// accounting for Table V.
	Window sim.Time
	// TargetViolationRatio balances the dataset — Sinan keeps violating to
	// non-violating samples near 1:1 so the models are unbiased.
	TargetViolationRatio float64
	// MaxReplicas bounds the explored allocations.
	MaxReplicas int
	// Seed drives the random exploration.
	Seed int64
}

func (c *CollectConfig) defaults() {
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	if c.Window <= 0 {
		c.Window = sim.Minute
	}
	if c.TargetViolationRatio <= 0 {
		c.TargetViolationRatio = 0.5
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 24
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// CollectResult is the gathered dataset plus accounting for Table V.
type CollectResult struct {
	Samples  []Sample
	SvcNames []string
	RPSNorm  float64
	// SimTime is the simulated time the collection actually ran;
	// AccountedTime is samples × 1 minute (the paper's sampling cadence).
	SimTime       sim.Time
	AccountedTime sim.Time
}

// Collect runs Sinan's balanced data-collection process: the application
// serves the replayed workload while the collector walks the allocation
// space, steering toward a 1:1 violating/meeting ratio.
func Collect(spec services.AppSpec, mix workload.Mix, totalRPS float64, cfg CollectConfig) CollectResult {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	eng := sim.NewEngine(cfg.Seed)
	app, err := services.NewAppWindow(eng, spec, cfg.Window)
	if err != nil {
		panic(err)
	}
	gen := workload.New(eng, app, workload.Constant{Value: totalRPS}, mix)
	gen.Start()

	svcNames := app.ServiceNames()
	rpsNorm := totalRPS * 2

	cur := map[string]int{}
	for _, name := range svcNames {
		cur[name] = app.Service(name).Replicas()
	}

	res := CollectResult{SvcNames: svcNames, RPSNorm: rpsNorm}
	violations := 0
	eng.RunUntil(cfg.Window) // warm-up

	for len(res.Samples) < cfg.Samples {
		from := eng.Now() - cfg.Window
		obs := baselines.Observe(app, from, eng.Now())

		// Pick the next allocation: bias toward creating violations when
		// the dataset has too few, and toward relieving them when too many.
		ratio := 0.0
		if len(res.Samples) > 0 {
			ratio = float64(violations) / float64(len(res.Samples))
		}
		next := map[string]int{}
		for name, r := range cur {
			next[name] = r
		}
		name := svcNames[rng.Intn(len(svcNames))]
		if ratio < cfg.TargetViolationRatio {
			// Squeeze a random service.
			if next[name] > 1 {
				next[name] -= 1 + rng.Intn(2)
				if next[name] < 1 {
					next[name] = 1
				}
			}
		} else {
			if next[name] < cfg.MaxReplicas {
				next[name] += 1 + rng.Intn(2)
				if next[name] > cfg.MaxReplicas {
					next[name] = cfg.MaxReplicas
				}
			}
		}
		feats := featureVector(svcNames, obs, next, cfg.MaxReplicas, rpsNorm)
		for n, r := range next {
			if app.Service(n).Replicas() != r {
				app.Service(n).SetReplicas(r)
			}
		}
		cur = next

		// Observe the outcome window.
		wStart := eng.Now()
		eng.RunFor(cfg.Window)
		out := baselines.Observe(app, wStart, eng.Now())
		sm := Sample{Features: feats}
		for _, cs := range spec.Classes {
			norm := out.LatP[cs.Name] / cs.SLAMillis
			sm.LatencyNorm = append(sm.LatencyNorm, norm)
		}
		if out.Violated {
			sm.Violated = 1
			violations++
		}
		res.Samples = append(res.Samples, sm)
	}
	res.SimTime = eng.Now()
	res.AccountedTime = sim.Time(len(res.Samples)) * sim.Minute
	return res
}
