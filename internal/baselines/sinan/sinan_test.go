package sinan

import (
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/workload"
)

func sinanApp() services.AppSpec {
	return services.AppSpec{
		Name: "sinan-app",
		Services: []services.ServiceSpec{
			{
				Name: "front", Threads: 2048, CPUs: 1, InitialReplicas: 3,
				IngressCostMs: 0.1, IngressWindow: 32,
				Handlers: map[string][]services.Step{
					"req": services.Seq(services.Compute{MeanMs: 2, CV: 0.4},
						services.Call{Service: "back", Mode: services.NestedRPC}),
				},
			},
			{
				Name: "back", Threads: 2048, CPUs: 1, InitialReplicas: 3,
				IngressCostMs: 0.1, IngressWindow: 32,
				Handlers: map[string][]services.Step{
					"req": services.Seq(services.Compute{MeanMs: 4, CV: 0.4}),
				},
			},
		},
		Classes: []services.ClassSpec{
			{Name: "req", Entry: "front", SLAPercentile: 99, SLAMillis: 60},
		},
	}
}

func TestCollectBalancesViolations(t *testing.T) {
	res := Collect(sinanApp(), workload.Mix{"req": 1}, 260, CollectConfig{
		Samples: 120, Window: 15 * sim.Second, Seed: 9,
	})
	if len(res.Samples) != 120 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	viol := 0.0
	for _, s := range res.Samples {
		viol += s.Violated
		if len(s.Features) != channels*2 {
			t.Fatalf("feature length = %d", len(s.Features))
		}
		if len(s.LatencyNorm) != 1 {
			t.Fatalf("latency targets = %v", s.LatencyNorm)
		}
	}
	ratio := viol / float64(len(res.Samples))
	if ratio < 0.2 || ratio > 0.8 {
		t.Fatalf("violation ratio = %.2f, want balanced-ish", ratio)
	}
	if res.AccountedTime != 120*sim.Minute {
		t.Fatalf("accounted time = %v", res.AccountedTime)
	}
	if res.SimTime >= res.AccountedTime {
		t.Fatal("shortened windows should simulate less than accounted time")
	}
}

func TestTrainAndPredictDiscriminates(t *testing.T) {
	res := Collect(sinanApp(), workload.Mix{"req": 1}, 260, CollectConfig{
		Samples: 200, Window: 15 * sim.Second, Seed: 10,
	})
	s := Train(sinanApp(), res.SvcNames, res.RPSNorm, res.Samples, Config{Seed: 10, Epochs: 40})
	// The violation model must assign higher probability to violating
	// samples than to safe ones on average.
	var pv, ps, nv, ns float64
	for _, sm := range res.Samples {
		p := s.violGBT.PredictProb(sm.Features)
		if sm.Violated > 0.5 {
			pv += p
			nv++
		} else {
			ps += p
			ns++
		}
	}
	if nv == 0 || ns == 0 {
		t.Skip("degenerate dataset")
	}
	if pv/nv <= ps/ns {
		t.Fatalf("violation model does not discriminate: violating %.2f vs safe %.2f", pv/nv, ps/ns)
	}
}

func TestSinanManagesLoad(t *testing.T) {
	spec := sinanApp()
	res := Collect(spec, workload.Mix{"req": 1}, 260, CollectConfig{
		Samples: 250, Window: 15 * sim.Second, Seed: 11,
	})
	s := Train(spec, res.SvcNames, res.RPSNorm, res.Samples, Config{Seed: 11, Epochs: 50, Window: 30 * sim.Second})

	eng := sim.NewEngine(12)
	app, err := services.NewAppWindow(eng, spec, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(eng, app, workload.Constant{Value: 260}, workload.Mix{"req": 1})
	g.Start()
	s.Attach(app)
	eng.RunUntil(30 * sim.Minute)
	s.Detach()

	// Sinan should keep the system mostly functional: some violations are
	// expected (that is the paper's finding), but not a meltdown.
	rec := app.E2E.Class("req")
	total, violated := 0, 0
	for w := 2 * sim.Minute; w < 30*sim.Minute; w += sim.Minute {
		vals := rec.Between(w, w+sim.Minute)
		if len(vals) == 0 {
			continue
		}
		total++
		if stats.Percentile(vals, 99) > 60 {
			violated++
		}
	}
	if total == 0 {
		t.Fatal("no traffic")
	}
	rate := float64(violated) / float64(total)
	if rate > 0.6 {
		t.Fatalf("sinan melted down: violation rate %.0f%%", rate*100)
	}
	if s.AvgDecisionMillis() <= 0 {
		t.Fatal("decision latency not recorded")
	}
	if s.Name() != "sinan" {
		t.Fatal("name")
	}
}

func TestCandidatesEnumeration(t *testing.T) {
	spec := sinanApp()
	s := &Sinan{cfg: Config{MaxReplicas: 8}, spec: spec, svcNames: []string{"back", "front"}}
	cands := s.candidates(map[string]int{"front": 2, "back": 1})
	// hold + front±1 + back+1 (back-1 invalid at 1) + global up = 5.
	if len(cands) != 5 {
		t.Fatalf("candidates = %d: %v", len(cands), cands)
	}
	for _, c := range cands {
		for _, r := range c {
			if r < 1 || r > 8 {
				t.Fatalf("candidate out of bounds: %v", c)
			}
		}
	}
}
