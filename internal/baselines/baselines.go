// Package baselines provides the competing resource-management systems of
// §VII-B — the Sinan and Firm ML-driven managers (in sub-packages) and the
// two autoscaling configurations — plus the shared application-observation
// utilities they all consume.
package baselines

import (
	"sort"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
)

// Manager is the minimal contract every resource manager implements so the
// evaluation harness can drive them interchangeably.
type Manager interface {
	// Name identifies the system ("ursa", "sinan", "firm", "auto-a", ...).
	Name() string
	// Attach starts the manager's control loop on a running app.
	Attach(app *services.App)
	// Detach stops the control loop.
	Detach()
	// AvgDecisionMillis reports the mean wall-clock latency of one control
	// decision (Table VI).
	AvgDecisionMillis() float64
}

// ServiceObs is one service's state during one window.
type ServiceObs struct {
	Replicas int
	CPUAlloc float64
	Util     float64
	RPS      float64
}

// Observation is an application-wide snapshot over one metrics window.
type Observation struct {
	Services map[string]ServiceObs
	// P99 maps class → 99th percentile end-to-end latency in the window
	// (0 when idle); LatP maps class → latency at the class's own SLA
	// percentile.
	P99  map[string]float64
	LatP map[string]float64
	// Violated reports whether any class broke its SLA in the window.
	Violated bool
}

// Observe snapshots the app over [from, to).
func Observe(app *services.App, from, to sim.Time) Observation {
	obs := Observation{
		Services: map[string]ServiceObs{},
		P99:      map[string]float64{},
		LatP:     map[string]float64{},
	}
	for _, name := range app.ServiceNames() {
		svc := app.Service(name)
		utils := svc.UtilSamples.Between(from, to)
		obs.Services[name] = ServiceObs{
			Replicas: svc.Replicas(),
			CPUAlloc: svc.AllocatedCPUs(),
			Util:     stats.Mean(utils),
			RPS:      svc.ArrivalsAll.Rate(from, to),
		}
	}
	for _, cs := range app.Spec.Classes {
		rec := app.E2E.Class(cs.Name)
		if rec == nil {
			continue
		}
		vals := rec.Between(from, to)
		if len(vals) == 0 {
			continue
		}
		obs.P99[cs.Name] = stats.Percentile(vals, 99)
		lp := stats.Percentile(vals, cs.SLAPercentile)
		obs.LatP[cs.Name] = lp
		if lp > cs.SLAMillis {
			obs.Violated = true
		}
	}
	return obs
}

// ServiceNamesSorted lists an observation's services deterministically.
func (o Observation) ServiceNamesSorted() []string {
	out := make([]string, 0, len(o.Services))
	for n := range o.Services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
