package autoscale

import (
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

func scaleApp(eng *sim.Engine, replicas int) *services.App {
	return services.MustNewApp(eng, services.AppSpec{
		Name: "as",
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 256, CPUs: 1, InitialReplicas: replicas,
			Handlers: map[string][]services.Step{
				"get": services.Seq(services.Compute{MeanMs: 5, CV: 0.3}),
			},
		}},
		Classes: []services.ClassSpec{{Name: "get", Entry: "api", SLAPercentile: 99, SLAMillis: 100}},
	})
}

func TestScalesUpUnderLoad(t *testing.T) {
	eng := sim.NewEngine(1)
	app := scaleApp(eng, 1)
	// 150 RPS × 5ms = 0.75 core-s/s on 1 core → util 75% > 60%.
	g := workload.New(eng, app, workload.Constant{Value: 150}, workload.Mix{"get": 1})
	g.Start()
	as := New(AutoA())
	as.Attach(app)
	eng.RunUntil(10 * sim.Minute)
	as.Detach()
	if got := app.Service("api").Replicas(); got < 2 {
		t.Fatalf("replicas = %d, want ≥2", got)
	}
	if as.Name() != "auto-a" {
		t.Fatalf("name = %q", as.Name())
	}
	if as.AvgDecisionMillis() < 0 {
		t.Fatal("decision accounting broken")
	}
}

func TestScalesDownWhenIdle(t *testing.T) {
	eng := sim.NewEngine(2)
	app := scaleApp(eng, 6)
	// 30 RPS over 6 cores → util 2.5% < 30%.
	g := workload.New(eng, app, workload.Constant{Value: 30}, workload.Mix{"get": 1})
	g.Start()
	as := New(AutoA())
	as.Attach(app)
	// Auto-a's 5-minute cooldown allows roughly one scale-in per 5 min.
	eng.RunUntil(30 * sim.Minute)
	as.Detach()
	if got := app.Service("api").Replicas(); got > 2 {
		t.Fatalf("replicas = %d, want scaled down", got)
	}
}

func TestAutoBIsMoreConservative(t *testing.T) {
	run := func(cfg Config) float64 {
		eng := sim.NewEngine(3)
		app := scaleApp(eng, 2)
		g := workload.New(eng, app, workload.Constant{Value: 120}, workload.Mix{"get": 1})
		g.Start()
		as := New(cfg)
		as.Attach(app)
		eng.RunUntil(20 * sim.Minute)
		as.Detach()
		return app.AllocIntegralCPUSeconds()
	}
	a, b := run(AutoA()), run(AutoB())
	if b <= a {
		t.Fatalf("Auto-b should allocate more than Auto-a: a=%.0f b=%.0f cpu·s", a, b)
	}
}

func TestMinReplicasFloor(t *testing.T) {
	eng := sim.NewEngine(4)
	app := scaleApp(eng, 3)
	// No load at all: scale-in pressure forever.
	as := New(Config{Name: "floor", Up: 0.6, Down: 0.3, MinReplicas: 2})
	as.Attach(app)
	eng.RunUntil(30 * sim.Minute)
	as.Detach()
	if got := app.Service("api").Replicas(); got != 2 {
		t.Fatalf("replicas = %d, want floor 2", got)
	}
}

func TestStepScalingProportional(t *testing.T) {
	eng := sim.NewEngine(5)
	app := scaleApp(eng, 2)
	// Demand 400×5ms = 2 core-s/s on 2 cores → util ≈ 100%, far above 60%:
	// with uncapped steps (Auto-b style) the adjustment must exceed 1.
	g := workload.New(eng, app, workload.Constant{Value: 400}, workload.Mix{"get": 1})
	g.Start()
	as := New(Config{Name: "prop", Up: 0.60, Down: 0.30, Interval: sim.Minute, Windows: 2})
	as.Attach(app)
	eng.RunUntil(2*sim.Minute + sim.Second)
	as.Detach()
	if got := app.Service("api").Replicas(); got < 3 {
		t.Fatalf("replicas = %d after one breach, want proportional step ≥3", got)
	}
}

func TestAutoACooldownLimitsActionRate(t *testing.T) {
	eng := sim.NewEngine(6)
	app := scaleApp(eng, 1)
	// Permanent overload: Auto-a may only add one replica per cooldown.
	g := workload.New(eng, app, workload.Constant{Value: 800}, workload.Mix{"get": 1})
	g.Start()
	as := New(AutoA())
	as.Attach(app)
	eng.RunUntil(16 * sim.Minute)
	as.Detach()
	got := app.Service("api").Replicas()
	// ~3 action opportunities in 16 min (cooldown 5 min, eval 3 min).
	if got > 5 {
		t.Fatalf("replicas = %d, cooldown not enforced", got)
	}
	if got < 2 {
		t.Fatalf("replicas = %d, no scaling at all", got)
	}
}

// TestRestoresWipedService covers the fault-injection interaction: a crash
// that kills every replica leaves no utilisation signal, so the autoscaler
// must restore minimum capacity directly rather than wait for an alarm that
// can never fire.
func TestRestoresWipedService(t *testing.T) {
	eng := sim.NewEngine(1)
	app := scaleApp(eng, 1)
	as := New(AutoA())
	as.Attach(app)
	eng.RunUntil(4 * sim.Minute)
	svc := app.Service("api")
	if !svc.CrashReplica(0) {
		t.Fatal("crash failed")
	}
	if svc.Replicas() != 0 {
		t.Fatalf("replicas = %d after crash, want 0", svc.Replicas())
	}
	// Next evaluation tick must bring the service back, cooldown or not.
	eng.RunUntil(8 * sim.Minute)
	as.Detach()
	if got := svc.Replicas(); got < AutoA().MinReplicas {
		t.Fatalf("replicas = %d after wipe, want ≥%d", got, AutoA().MinReplicas)
	}
}
