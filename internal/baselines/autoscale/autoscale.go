// Package autoscale implements threshold autoscaling (§VII-B): the default
// AWS-step-scaling configuration (Auto-a: scale out above 60% CPU, in below
// 30%) and a manually tuned conservative configuration (Auto-b) that trades
// resources for SLA safety.
package autoscale

import (
	"math"
	"time"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
)

// Config is a threshold-scaling policy.
type Config struct {
	Name string
	// Up scales out when utilisation exceeds it.
	Up float64
	// Down scales in when utilisation falls below it.
	Down float64
	// Interval is the evaluation period.
	Interval sim.Time
	// Windows is how many recent windows the utilisation average spans.
	Windows int
	// MinReplicas floors every service.
	MinReplicas int
	// Cooldown is the minimum time between consecutive scaling actions on
	// the same service (AWS's default step-scaling cooldown is 300 s).
	Cooldown sim.Time
	// MaxStep caps the replicas added per action (0 = proportional).
	MaxStep int
}

// AutoA returns the default AWS step-scaling configuration: 60%/30%
// thresholds evaluated over 3-minute alarm periods, ±1-replica steps and a
// 5-minute cooldown — fine for steady load, slow against bursts and diurnal
// ramps.
func AutoA() Config {
	return Config{
		Name: "auto-a", Up: 0.60, Down: 0.30, Interval: 3 * sim.Minute,
		Windows: 3, MinReplicas: 1, Cooldown: 5 * sim.Minute, MaxStep: 1,
	}
}

// AutoB returns the manually tuned conservative configuration: it reacts at
// much lower utilisation, immediately and proportionally, preserving SLAs at
// the cost of over-provisioning.
func AutoB() Config {
	return Config{Name: "auto-b", Up: 0.30, Down: 0.12, Interval: sim.Minute, Windows: 2, MinReplicas: 2}
}

// Autoscaler applies a Config to every service of an app.
type Autoscaler struct {
	cfg Config
	app *services.App

	ticker     *sim.Ticker
	lastAction map[string]sim.Time

	decisions int
	seconds   float64
}

// New builds an autoscaler with the given policy.
func New(cfg Config) *Autoscaler {
	if cfg.Interval <= 0 {
		cfg.Interval = sim.Minute
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 2
	}
	if cfg.MinReplicas <= 0 {
		cfg.MinReplicas = 1
	}
	return &Autoscaler{cfg: cfg}
}

// Name implements baselines.Manager.
func (a *Autoscaler) Name() string { return a.cfg.Name }

// Attach implements baselines.Manager.
func (a *Autoscaler) Attach(app *services.App) {
	a.app = app
	a.lastAction = map[string]sim.Time{}
	a.ticker = app.Eng.Every(a.cfg.Interval, a.tick)
}

// Detach implements baselines.Manager.
func (a *Autoscaler) Detach() {
	if a.ticker != nil {
		a.ticker.Stop()
	}
}

// AvgDecisionMillis implements baselines.Manager.
func (a *Autoscaler) AvgDecisionMillis() float64 {
	if a.decisions == 0 {
		return 0
	}
	return a.seconds / float64(a.decisions) * 1e3
}

func (a *Autoscaler) tick() {
	start := float64(time.Now().UnixNano()) / 1e9
	now := a.app.Eng.Now()
	from := now - sim.Time(a.cfg.Windows)*a.cfg.Interval
	if from < 0 {
		from = 0
	}
	for _, name := range a.app.ServiceNames() {
		svc := a.app.Service(name)
		if svc.Replicas() == 0 {
			// A crash (fault injection) can wipe every replica, and a dead
			// service emits no utilisation signal for the thresholds to act
			// on. Enforce minimum capacity the way a real scaling group
			// does — immediately, outside the alarm/cooldown machinery.
			// Unreachable in fault-free runs: graceful scale-in never drops
			// below one replica.
			svc.SetReplicas(a.cfg.MinReplicas)
			a.lastAction[name] = now
			continue
		}
		if last, ok := a.lastAction[name]; ok && a.cfg.Cooldown > 0 && now-last < a.cfg.Cooldown {
			continue
		}
		utils := svc.UtilSamples.Between(from, now)
		if len(utils) == 0 {
			continue
		}
		util := stats.Mean(utils)
		cur := svc.Replicas()
		switch {
		case util > a.cfg.Up:
			// Step scaling: the further past the threshold, the bigger the
			// step (AWS-style proportional adjustment), optionally capped.
			step := int(math.Ceil(float64(cur) * (util - a.cfg.Up) / a.cfg.Up))
			if step < 1 {
				step = 1
			}
			if a.cfg.MaxStep > 0 && step > a.cfg.MaxStep {
				step = a.cfg.MaxStep
			}
			svc.SetReplicas(cur + step)
			a.lastAction[name] = now
		case util < a.cfg.Down && cur > a.cfg.MinReplicas:
			svc.SetReplicas(cur - 1)
			a.lastAction[name] = now
		}
	}
	a.decisions++
	a.seconds += float64(time.Now().UnixNano())/1e9 - start
}
