// Package firm reimplements Firm (§VII-B), the model-free ML-driven
// baseline: one reinforcement-learning agent per microservice directly
// adjusts that service's replica count given its resource usage and the
// end-to-end SLA status. The reward is the weighted sum of resource savings
// and SLA violation status, which is why Firm sometimes trades SLA for
// savings (§VII-E).
package firm

import (
	"math"
	"math/rand"
	"time"

	"ursa/internal/baselines"
	"ursa/internal/ml/rl"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// Config parameterises Firm.
type Config struct {
	// Window is the decision interval.
	Window sim.Time
	// MaxReplicas bounds per-service allocation.
	MaxReplicas int
	// MaxStep is the largest replica delta one action can apply.
	MaxStep int
	// W1 weighs resource savings, W2 weighs SLA violations in the reward.
	W1, W2 float64
	// Hidden sizes the actor/critic networks; Batch the training batches.
	Hidden, Batch int
	// Seed drives the agents.
	Seed int64
}

func (c *Config) defaults() {
	if c.Window <= 0 {
		c.Window = sim.Minute
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 24
	}
	if c.MaxStep <= 0 {
		c.MaxStep = 2
	}
	if c.W1 <= 0 {
		// Savings dominate by default: Firm "prioritizes resource savings
		// over SLA if the savings are significant" (§VII-E).
		c.W1 = 1.5
	}
	if c.W2 <= 0 {
		c.W2 = 1.0
	}
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Batch <= 0 {
		c.Batch = 32
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

const stateDim = 4 // util, rps, replicas, worst SLA slack

// Firm is the per-service RL manager.
type Firm struct {
	cfg      Config
	spec     services.AppSpec
	svcNames []string
	agents   map[string]*rl.Agent
	replays  map[string]*rl.Replay
	rpsNorm  float64

	app     *services.App
	ticker  *sim.Ticker
	explore bool

	prevState  map[string][]float64
	prevAction map[string]float64

	decisions int
	seconds   float64
	// TrainIterations counts RL updates (model-update latency accounting).
	TrainIterations int
	TrainSeconds    float64
}

// New builds an untrained Firm instance for an application.
func New(spec services.AppSpec, svcNames []string, rpsNorm float64, cfg Config) *Firm {
	cfg.defaults()
	f := &Firm{
		cfg:        cfg,
		spec:       spec,
		svcNames:   svcNames,
		agents:     map[string]*rl.Agent{},
		replays:    map[string]*rl.Replay{},
		rpsNorm:    rpsNorm,
		explore:    true,
		prevState:  map[string][]float64{},
		prevAction: map[string]float64{},
	}
	for i, name := range svcNames {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		f.agents[name] = rl.NewAgent(stateDim, cfg.Hidden, rng)
		f.replays[name] = rl.NewReplay(4096)
	}
	return f
}

// Clone returns a copy of the (pre-)trained system with pristine runtime
// state: agents and replay buffers are deep-copied (Firm keeps training
// online during deployment), each with a deterministically reseeded RNG.
// Clones are identical, so one pretrained prototype can fan out over many
// deployments — concurrently or not — without leaking warm RL state
// between runs.
func (f *Firm) Clone() *Firm {
	c := &Firm{
		cfg:        f.cfg,
		spec:       f.spec,
		svcNames:   f.svcNames,
		agents:     make(map[string]*rl.Agent, len(f.agents)),
		replays:    make(map[string]*rl.Replay, len(f.replays)),
		rpsNorm:    f.rpsNorm,
		explore:    f.explore,
		prevState:  map[string][]float64{},
		prevAction: map[string]float64{},
	}
	for i, name := range f.svcNames {
		rng := rand.New(rand.NewSource(f.cfg.Seed + int64(i)))
		c.agents[name] = f.agents[name].Clone(rng)
		c.replays[name] = f.replays[name].Clone()
	}
	return c
}

// SetExplore toggles exploration noise (off for evaluation).
func (f *Firm) SetExplore(on bool) { f.explore = on }

// Name implements baselines.Manager.
func (f *Firm) Name() string { return "firm" }

// Attach implements baselines.Manager.
func (f *Firm) Attach(app *services.App) {
	f.app = app
	f.prevState = map[string][]float64{}
	f.prevAction = map[string]float64{}
	f.ticker = app.Eng.Every(f.cfg.Window, f.tick)
}

// Detach implements baselines.Manager.
func (f *Firm) Detach() {
	if f.ticker != nil {
		f.ticker.Stop()
	}
}

// AvgDecisionMillis implements baselines.Manager.
func (f *Firm) AvgDecisionMillis() float64 {
	if f.decisions == 0 {
		return 0
	}
	return f.seconds / float64(f.decisions) * 1e3
}

// AvgTrainMillis reports the mean wall-clock cost of one online training
// iteration across agents (the "update" row of Table VI).
func (f *Firm) AvgTrainMillis() float64 {
	if f.TrainIterations == 0 {
		return 0
	}
	return f.TrainSeconds / float64(f.TrainIterations) * 1e3
}

func (f *Firm) state(obs baselines.Observation, name string) []float64 {
	so := obs.Services[name]
	slack := 0.0
	for _, cs := range f.spec.Classes {
		if lat, ok := obs.LatP[cs.Name]; ok {
			if s := lat / cs.SLAMillis; s > slack {
				slack = s
			}
		}
	}
	if slack > 3 {
		slack = 3
	}
	return []float64{
		so.Util,
		so.RPS / f.rpsNorm,
		float64(so.Replicas) / float64(f.cfg.MaxReplicas),
		slack,
	}
}

// reward implements Firm's weighted objective: savings minus violations.
// A small continuous pressure term on the SLA slack smooths the otherwise
// sparse binary violation signal so the tiny agents converge.
func (f *Firm) reward(obs baselines.Observation, name string) float64 {
	so := obs.Services[name]
	saving := 1 - float64(so.Replicas)/float64(f.cfg.MaxReplicas)
	violation := 0.0
	if obs.Violated {
		violation = 1
	}
	slack := 0.0
	for _, cs := range f.spec.Classes {
		if lat, ok := obs.LatP[cs.Name]; ok {
			if s := lat / cs.SLAMillis; s > slack {
				slack = s
			}
		}
	}
	pressure := slack - 0.8
	if pressure < 0 {
		pressure = 0
	}
	if pressure > 2 {
		pressure = 2
	}
	return f.cfg.W1*saving - f.cfg.W2*(violation+0.5*pressure)
}

func (f *Firm) tick() {
	now := f.app.Eng.Now()
	from := now - f.cfg.Window
	if from < 0 {
		from = 0
	}
	obs := baselines.Observe(f.app, from, now)

	// Store the transitions that ended in this window and train online.
	tStart := float64(time.Now().UnixNano()) / 1e9
	for _, name := range f.svcNames {
		st := f.state(obs, name)
		if prev, ok := f.prevState[name]; ok {
			f.replays[name].Add(rl.Transition{
				State:     prev,
				Action:    f.prevAction[name],
				Reward:    f.reward(obs, name),
				NextState: st,
			})
			for it := 0; it < 3; it++ {
				f.agents[name].Train(f.replays[name], f.cfg.Batch)
			}
			f.TrainIterations += 3
		}
	}
	f.TrainSeconds += float64(time.Now().UnixNano())/1e9 - tStart

	// Decide and apply actions.
	dStart := float64(time.Now().UnixNano()) / 1e9
	for _, name := range f.svcNames {
		st := f.state(obs, name)
		act := f.agents[name].Act(st, f.explore)
		f.prevState[name] = st
		f.prevAction[name] = act
		svc := f.app.Service(name)
		cur := svc.Replicas()
		delta := int(math.Round(act * float64(f.cfg.MaxStep)))
		want := cur + delta
		if want < 1 {
			want = 1
		}
		if want > f.cfg.MaxReplicas {
			want = f.cfg.MaxReplicas
		}
		if want != cur {
			svc.SetReplicas(want)
		}
	}
	f.decisions++
	f.seconds += float64(time.Now().UnixNano())/1e9 - dStart
}

// PretrainConfig parameterises offline agent training.
type PretrainConfig struct {
	// Samples is the number of decision windows to train over (the paper
	// uses 10,000 to let accuracy converge).
	Samples int
	// Window is the per-sample window (see sinan.CollectConfig.Window on
	// shortened windows vs. Table V accounting).
	Window sim.Time
	// AnomalyEvery injects a CPU-throttle anomaly into a random service
	// every N windows, per Firm's training procedure.
	AnomalyEvery int
	Seed         int64
}

func (c *PretrainConfig) defaults() {
	if c.Samples <= 0 {
		c.Samples = 1000
	}
	if c.Window <= 0 {
		c.Window = sim.Minute
	}
	if c.AnomalyEvery <= 0 {
		c.AnomalyEvery = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// PretrainResult reports Table V accounting for Firm's training.
type PretrainResult struct {
	Samples       int
	SimTime       sim.Time
	AccountedTime sim.Time
}

// Pretrain trains the agents online against a fresh deployment with
// injected performance anomalies.
func Pretrain(f *Firm, mix workload.Mix, totalRPS float64, cfg PretrainConfig) PretrainResult {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	eng := sim.NewEngine(cfg.Seed)
	spec := f.spec
	app, err := services.NewAppWindow(eng, spec, cfg.Window)
	if err != nil {
		panic(err)
	}
	gen := workload.New(eng, app, workload.Constant{Value: totalRPS}, mix)
	gen.Start()

	save := f.cfg.Window
	f.cfg.Window = cfg.Window
	f.SetExplore(true)
	f.Attach(app)
	windows := 0
	var throttled *services.Service
	anom := eng.Every(sim.Time(cfg.AnomalyEvery)*cfg.Window, func() {
		if throttled != nil {
			throttled.SetCPUFactor(1)
			throttled = nil
			return
		}
		name := f.svcNames[rng.Intn(len(f.svcNames))]
		throttled = app.Service(name)
		throttled.SetCPUFactor(0.3 + rng.Float64()*0.4)
	})
	for windows < cfg.Samples {
		eng.RunFor(cfg.Window)
		windows++
	}
	anom.Stop()
	f.Detach()
	f.cfg.Window = save
	return PretrainResult{
		Samples:       windows,
		SimTime:       eng.Now(),
		AccountedTime: sim.Time(windows) * sim.Minute,
	}
}
