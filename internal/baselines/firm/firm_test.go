package firm

import (
	"testing"

	"ursa/internal/baselines"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

func firmApp() services.AppSpec {
	return services.AppSpec{
		Name: "firm-app",
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 2048, CPUs: 1, InitialReplicas: 4,
			IngressCostMs: 0.1, IngressWindow: 32,
			Handlers: map[string][]services.Step{
				"req": services.Seq(services.Compute{MeanMs: 5, CV: 0.4}),
			},
		}},
		Classes: []services.ClassSpec{
			{Name: "req", Entry: "api", SLAPercentile: 99, SLAMillis: 50},
		},
	}
}

func TestPretrainAccounting(t *testing.T) {
	spec := firmApp()
	f := New(spec, []string{"api"}, 300, Config{Seed: 21, Window: 15 * sim.Second})
	res := Pretrain(f, workload.Mix{"req": 1}, 150, PretrainConfig{
		Samples: 60, Window: 15 * sim.Second, Seed: 21,
	})
	if res.Samples != 60 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if res.AccountedTime != 60*sim.Minute {
		t.Fatalf("accounted = %v", res.AccountedTime)
	}
	if f.TrainIterations == 0 {
		t.Fatal("no training happened")
	}
}

func TestFirmControlsApp(t *testing.T) {
	spec := firmApp()
	f := New(spec, []string{"api"}, 300, Config{Seed: 22, Window: 30 * sim.Second})
	Pretrain(f, workload.Mix{"req": 1}, 150, PretrainConfig{
		Samples: 600, Window: 15 * sim.Second, Seed: 22,
	})
	f.SetExplore(false)

	eng := sim.NewEngine(23)
	app, err := services.NewAppWindow(eng, spec, 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.New(eng, app, workload.Constant{Value: 150}, workload.Mix{"req": 1})
	g.Start()
	f.Attach(app)
	minR, maxR := 1<<30, 0
	probe := eng.Every(sim.Minute, func() {
		r := app.Service("api").Replicas()
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	})
	eng.RunUntil(20 * sim.Minute)
	probe.Stop()
	f.Detach()

	if f.AvgDecisionMillis() <= 0 {
		t.Fatal("decision latency not recorded")
	}
	if f.AvgTrainMillis() <= 0 {
		t.Fatal("training latency not recorded")
	}
	// The agent must keep the service inside sane bounds: not pinned at
	// the cap and never below the floor.
	if maxR >= f.cfg.MaxReplicas {
		t.Fatalf("agent pinned at max replicas (%d)", maxR)
	}
	if minR < 1 {
		t.Fatalf("replicas fell below 1: %d", minR)
	}
	if f.Name() != "firm" {
		t.Fatal("name")
	}
}

func TestStateBounded(t *testing.T) {
	spec := firmApp()
	f := New(spec, []string{"api"}, 300, Config{Seed: 24})
	eng := sim.NewEngine(24)
	app := services.MustNewApp(eng, spec)
	g := workload.New(eng, app, workload.Constant{Value: 600}, workload.Mix{"req": 1})
	g.Start()
	app.Service("api").SetCPUFactor(0.05)
	eng.RunUntil(3 * sim.Minute)
	f.app = app
	st := f.state(baselines.Observe(app, 2*sim.Minute, 3*sim.Minute), "api")
	if len(st) != stateDim {
		t.Fatalf("state dim = %d", len(st))
	}
	if st[3] > 3 {
		t.Fatalf("slack not clamped: %v", st[3])
	}
}
