package services

import (
	"ursa/internal/cluster"
	"ursa/internal/metrics"
	"ursa/internal/sim"
)

// TelemetryConfig tunes the app's metrics substrate. The zero value is the
// historical behaviour: exact collectors, unbounded retention — bit-exact
// percentiles with memory O(requests). Production-scale runs set SketchAlpha
// and Retention so memory is O(retained windows) instead.
type TelemetryConfig struct {
	// SketchAlpha, when > 0, backs the latency collectors (E2E, per-service
	// RespTime and RespByClass) with mergeable quantile sketches of that
	// relative-error bound instead of raw samples. Utilisation samples stay
	// exact — they are one value per window already.
	SketchAlpha float64
	// Retention, when > 0, rolls a retention horizon: every sampling tick
	// trims windows older than now−Retention from every collector.
	Retention sim.Time
	// MaxWindows, when > 0, additionally caps retained windows per collector
	// ring-buffer style — the hard bound when Retention alone is not enough
	// (e.g. a collector fed from a paused sampler).
	MaxWindows int
}

// NewAppTelemetry deploys an application with an explicit telemetry
// configuration; cl may be nil for an uncapacitated deployment.
func NewAppTelemetry(eng *sim.Engine, spec AppSpec, window sim.Time, cl *cluster.Cluster, tc TelemetryConfig) (*App, error) {
	return newAppTelemetry(eng, spec, window, cl, tc)
}

// NewAppTelemetryPlaced is NewAppTelemetry with a replica placer installed
// before the initial replicas deploy (see NewAppOnClusterPlaced).
func NewAppTelemetryPlaced(eng *sim.Engine, spec AppSpec, window sim.Time, cl *cluster.Cluster, tc TelemetryConfig, p Placer) (*App, error) {
	return newAppPlaced(eng, spec, window, cl, tc, p)
}

// Telemetry reports the app's telemetry configuration.
func (a *App) Telemetry() TelemetryConfig { return a.telemetry }

// newWindowed builds a latency-sample collector per the telemetry config.
func (a *App) newWindowed() *metrics.Windowed {
	var w *metrics.Windowed
	if a.telemetry.SketchAlpha > 0 {
		w = metrics.NewWindowedSketch(a.window, a.telemetry.SketchAlpha)
	} else {
		w = metrics.NewWindowed(a.window)
	}
	w.SetMaxWindows(a.telemetry.MaxWindows)
	return w
}

// newLatencyRecorder builds a per-class recorder per the telemetry config.
func (a *App) newLatencyRecorder() *metrics.LatencyRecorder {
	var r *metrics.LatencyRecorder
	if a.telemetry.SketchAlpha > 0 {
		r = metrics.NewLatencyRecorderSketch(a.window, a.telemetry.SketchAlpha)
	} else {
		r = metrics.NewLatencyRecorder(a.window)
	}
	r.SetMaxWindows(a.telemetry.MaxWindows)
	return r
}

// newCounterSeries builds a counter per the telemetry config.
func (a *App) newCounterSeries() *metrics.CounterSeries {
	c := metrics.NewCounterSeries(a.window)
	c.SetMaxWindows(a.telemetry.MaxWindows)
	return c
}

// TrimTelemetry drops telemetry windows older than cutoff across the app:
// E2E, every service's latency collectors, counters, and utilisation
// samples. Managers with longer look-backs than the retention horizon must
// cache their own aggregates.
func (a *App) TrimTelemetry(cutoff sim.Time) {
	a.E2E.Trim(cutoff)
	for _, s := range a.ordered {
		s.RespTime.Trim(cutoff)
		s.RespByClass.Trim(cutoff)
		s.UtilSamples.Trim(cutoff)
		s.ArrivalsAll.Trim(cutoff)
		for _, c := range s.Arrivals {
			c.Trim(cutoff)
		}
		s.RPCAttempts.Trim(cutoff)
		s.RPCErrors.Trim(cutoff)
		s.RPCRetries.Trim(cutoff)
	}
}

// TelemetryFootprintBytes estimates retained heap bytes across every
// telemetry collector in the app — the number the bounded-memory tests and
// the ursa-sim memory report watch.
func (a *App) TelemetryFootprintBytes() int {
	b := a.E2E.FootprintBytes()
	for _, s := range a.ordered {
		b += s.RespTime.FootprintBytes()
		b += s.RespByClass.FootprintBytes()
		b += s.UtilSamples.FootprintBytes()
		b += s.ArrivalsAll.FootprintBytes()
		for _, c := range s.Arrivals {
			b += c.FootprintBytes()
		}
		b += s.RPCAttempts.FootprintBytes()
		b += s.RPCErrors.FootprintBytes()
		b += s.RPCRetries.FootprintBytes()
	}
	return b
}
