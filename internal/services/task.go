package services

import (
	"fmt"

	"ursa/internal/sim"
)

// Job is one end-to-end unit of measured work: a client request plus every
// asynchronous continuation it triggers within the same request class. Its
// latency (start → last outstanding branch done) is what the end-to-end SLA
// constrains.
type Job struct {
	Class    string
	Priority int
	Start    sim.Time

	app         *App
	traceID     uint64
	outstanding int
	finished    bool
	failed      bool
	// Done, when non-nil, fires once when the job completes (even if it
	// failed — check Failed).
	Done func(j *Job, latency sim.Time)
}

// add registers one more outstanding branch.
func (j *Job) add() { j.outstanding++ }

// fail marks the job terminally failed: a branch exhausted its RPC retries
// or died with a crashed replica. The job still completes when its last
// branch retires, but is counted against availability instead of yielding an
// E2E latency sample.
func (j *Job) fail() { j.failed = true }

// Failed reports whether the job terminally failed.
func (j *Job) Failed() bool { return j.failed }

// branchDone retires one branch and completes the job at zero.
func (j *Job) branchDone() {
	j.outstanding--
	if j.outstanding < 0 {
		panic("services: job branch accounting went negative")
	}
	if j.outstanding == 0 && !j.finished {
		j.finished = true
		now := j.app.Eng.Now()
		lat := now - j.Start
		if j.failed {
			j.app.failedJobs++
			if j.app.Tracer != nil {
				j.app.Tracer.FailJob(j.traceID, now)
			}
		} else {
			j.app.E2E.Record(now, j.Class, lat.Millis())
			j.app.completedJobs++
			if j.app.Tracer != nil {
				j.app.Tracer.EndJob(j.traceID, now)
			}
		}
		if j.Done != nil {
			j.Done(j, lat)
		}
	}
}

// Request is one invocation of one service (a single tier's view of a job).
type Request struct {
	Job      *Job
	Class    string
	Priority int

	// Failed marks a terminally failed request: its handler aborted because
	// a downstream call exhausted its retries, or its replica crashed.
	Failed bool

	arrival sim.Time
	svc     *Service
	replica *Replica
	onDone  func()

	// abandoned marks a request whose caller gave up waiting (timeout) or
	// died; its span must not enter critical-path accounting.
	abandoned bool
	// settled guards finish against double completion (normal completion
	// racing a crash).
	settled bool
	// slot is this request's index in its replica's inflight list.
	slot int
	// finish completes the handler: metrics, span, worker release, onDone.
	// Stored so a crash can force-complete in-flight requests.
	finish func()
	// doneBranch, when set (and onDone is nil), retires one job branch at
	// completion — the closure-free form of onDone = jobBranchDone that entry
	// and MQ requests use.
	doneBranch bool
}

// runOnDone fires the request's completion notification, if any.
func (r *Request) runOnDone() {
	if r.onDone != nil {
		r.onDone()
	} else if r.doneBranch {
		r.jobBranchDone()
	}
}

// jobBranchDone completes one job branch, propagating a terminal failure of
// this request to the job.
func (r *Request) jobBranchDone() {
	if r.Failed {
		r.Job.fail()
	}
	r.Job.branchDone()
}

// runStepsReference executes handler steps sequentially; waitAcc accumulates
// time spent blocked on nested-RPC responses (excluded from the tier's
// measured response time, per Fig. 2's S0−R0 definition). done fires after
// the final step, or as soon as the request terminally fails (a downstream
// call out of retries aborts the rest of the handler).
//
// This is the retained closure-per-hop reference interpreter, selected by
// UseReferenceSteps; the default execution path is the pooled step-frame
// machine in frame.go, pinned byte-identical to this one.
func (a *App) runStepsReference(req *Request, steps []Step, waitAcc *sim.Time, done func()) {
	var step func(i int)
	step = func(i int) {
		if i == len(steps) || req.Failed {
			done()
			return
		}
		switch st := steps[i].(type) {
		case Compute:
			ms := st.Dist().Sample(req.svc.rng)
			req.replica.cpu.Run(ms/1e3, func() { step(i + 1) })
		case Call:
			target := a.mustService(st.Service)
			class := req.Class
			if st.Class != "" {
				class = st.Class
			}
			// One error draw per logical call (not per delivery attempt): an
			// application error is deterministic under retries.
			fail := st.ErrorProb > 0 && a.drawError(st.ErrorProb)
			switch st.Mode {
			case NestedRPC:
				if a.res == nil && a.Net == nil {
					// The response-wait clock starts at admission by the
					// downstream ingress; send-blocking before that charges
					// the caller's own response time (backpressure).
					var t0 sim.Time
					rpc := &Request{
						Job:      req.Job,
						Class:    class,
						Priority: req.Priority,
						Failed:   fail,
					}
					rpc.onDone = func() {
						if rpc.Failed {
							req.Failed = true
						}
						*waitAcc += a.Eng.Now() - t0
						step(i + 1)
					}
					target.Send(rpc, func() { t0 = a.Eng.Now() })
				} else {
					a.callNested(req, target, class, fail, waitAcc, func() { step(i + 1) })
				}
			case EventRPC:
				// Block the worker until a daemon slot is granted, then
				// respond immediately while the daemon performs the send
				// (possibly blocking on the downstream window) and awaits
				// the response.
				req.replica.acquireDaemon(func(release func()) {
					req.Job.add()
					if a.res == nil && a.Net == nil {
						rpc := &Request{
							Job:      req.Job,
							Class:    class,
							Priority: req.Priority,
							Failed:   fail,
						}
						rpc.onDone = func() {
							release()
							rpc.jobBranchDone()
						}
						target.Send(rpc, nil)
					} else {
						a.sendEvent(req, target, class, fail, release)
					}
					step(i + 1)
				})
			case MQ:
				req.Job.add()
				mq := &Request{
					Job:      req.Job,
					Class:    class,
					Priority: req.Priority,
					Failed:   fail,
				}
				mq.onDone = mq.jobBranchDone
				target.Enqueue(mq)
				step(i + 1)
			default:
				panic(fmt.Sprintf("services: unknown call mode %v", st.Mode))
			}
		case Spawn:
			target := a.mustService(st.Service)
			a.injectAt(target, st.Class)
			step(i + 1)
		case Par:
			if len(st.Branches) == 0 {
				step(i + 1)
				return
			}
			remaining := len(st.Branches)
			waits := make([]sim.Time, len(st.Branches))
			for bi, br := range st.Branches {
				bi := bi
				a.runStepsReference(req, br, &waits[bi], func() {
					remaining--
					if remaining == 0 {
						// Branches overlap in time; count the longest
						// branch wait rather than the sum.
						max := sim.Time(0)
						for _, w := range waits {
							if w > max {
								max = w
							}
						}
						*waitAcc += max
						step(i + 1)
					}
				})
			}
		default:
			panic(fmt.Sprintf("services: unknown step type %T", st))
		}
	}
	step(0)
}
