package services

import (
	"fmt"
	"math/rand"
	"sort"

	"ursa/internal/cluster"
	"ursa/internal/metrics"
	"ursa/internal/sim"
	"ursa/internal/trace"
)

// App is a deployed application: every service instantiated on one engine,
// end-to-end latency accounting, and a per-window metrics sampler. It is the
// object resource managers (Ursa and the baselines) operate on.
type App struct {
	Eng  *sim.Engine
	Spec AppSpec

	services map[string]*Service
	// ordered holds services in spec order. Aggregations iterate this, not
	// the map: float sums depend on addition order, and randomized map
	// iteration would make totals differ by an ulp from run to run.
	ordered []*Service
	window  sim.Time

	// Cluster, when non-nil, gates replica placement on real node
	// capacity. UnschedulableEvents counts placements that failed.
	Cluster             *cluster.Cluster
	UnschedulableEvents int

	// Placer, when non-nil, overrides Cluster.Place for new replicas — the
	// hook a geo-topology uses to pin replicas to their home region and spill
	// when it is capacity-short. Only consulted when Cluster is also set.
	Placer Placer

	// Tracer, when non-nil, samples jobs and records per-service spans.
	Tracer *trace.Tracer

	// Net, when non-nil, intercepts inter-service RPC delivery (the fault
	// injector's latency/drop hook). Set before injecting load.
	Net NetInjector
	// OnEviction, when non-nil, fires after replicas are crash-evicted
	// (node failure or replica crash) so a manager can re-solve and
	// re-place the lost capacity.
	OnEviction func([]Eviction)

	// E2E records end-to-end job latency (ms) per request class.
	E2E *metrics.LatencyRecorder
	// InjectedJobs / completedJobs / failedJobs count job starts,
	// completions, and terminal failures.
	InjectedJobs  int
	completedJobs int
	failedJobs    int

	res     *ResiliencePolicy
	resRNG  *rand.Rand
	errRNG  *rand.Rand
	sampler *sim.Ticker

	telemetry TelemetryConfig

	// framePool / reqPool recycle step frames and requests on the fused
	// execution path (frame.go). Per-app (= per-engine), so parallel
	// experiment runs never share them.
	framePool []*frame
	reqPool   []*Request
}

// Placer chooses a node for a new replica of the named service. Implementors
// must allocate on the app's bound cluster (the returned placement is released
// through it); returning an error leaves the service at its current size and
// counts as an unschedulable event.
type Placer interface {
	PlaceReplica(service string, cpus float64) (cluster.Placement, error)
}

// Eviction records replicas one service lost in a crash event.
type Eviction struct {
	Service  string
	Replicas int
}

// NewApp validates the spec and deploys the application with its initial
// replica counts. Metrics are sampled once per metrics window (1 simulated
// minute, matching the paper's sampling frequency).
func NewApp(eng *sim.Engine, spec AppSpec) (*App, error) {
	return NewAppWindow(eng, spec, metrics.DefaultWindow)
}

// NewAppOnCluster deploys an application whose replicas are placed on (and
// bounded by) a physical cluster.
func NewAppOnCluster(eng *sim.Engine, spec AppSpec, cl *cluster.Cluster) (*App, error) {
	return newApp(eng, spec, metrics.DefaultWindow, cl)
}

// NewAppOnClusterPlaced is NewAppOnCluster with a replica placer installed
// before the initial replicas deploy, so deployment-time placement goes
// through it too (a region map pins even the first replica of every service
// to its home region).
func NewAppOnClusterPlaced(eng *sim.Engine, spec AppSpec, cl *cluster.Cluster, p Placer) (*App, error) {
	return newAppPlaced(eng, spec, metrics.DefaultWindow, cl, TelemetryConfig{}, p)
}

// NewAppWindow is NewApp with a custom metrics window. Exploration and
// profiling harnesses use finer windows so their sampling cadence and the
// metric buckets stay aligned.
func NewAppWindow(eng *sim.Engine, spec AppSpec, window sim.Time) (*App, error) {
	return newApp(eng, spec, window, nil)
}

func newApp(eng *sim.Engine, spec AppSpec, window sim.Time, cl *cluster.Cluster) (*App, error) {
	return newAppTelemetry(eng, spec, window, cl, TelemetryConfig{})
}

func newAppTelemetry(eng *sim.Engine, spec AppSpec, window sim.Time, cl *cluster.Cluster, tc TelemetryConfig) (*App, error) {
	return newAppPlaced(eng, spec, window, cl, tc, nil)
}

func newAppPlaced(eng *sim.Engine, spec AppSpec, window sim.Time, cl *cluster.Cluster, tc TelemetryConfig, p Placer) (*App, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if window <= 0 {
		window = metrics.DefaultWindow
	}
	a := &App{
		Eng:       eng,
		Spec:      spec,
		services:  map[string]*Service{},
		window:    window,
		Cluster:   cl,
		Placer:    p,
		telemetry: tc,
	}
	a.E2E = a.newLatencyRecorder()
	for _, ss := range spec.Services {
		s := newService(a, ss)
		a.services[ss.Name] = s
		a.ordered = append(a.ordered, s)
	}
	a.sampler = eng.Every(a.window, a.sampleMetrics)
	return a, nil
}

// MustNewApp is NewApp, panicking on spec errors; for tests and fixed specs.
func MustNewApp(eng *sim.Engine, spec AppSpec) *App {
	a, err := NewApp(eng, spec)
	if err != nil {
		panic(err)
	}
	return a
}

// Window reports the metrics window size.
func (a *App) Window() sim.Time { return a.window }

// drawError samples one per-call error draw against prob. The stream is
// created on first use, so apps whose handlers carry no error rates never
// touch it — their event sequence is identical to pre-error-rate builds.
func (a *App) drawError(prob float64) bool {
	if a.errRNG == nil {
		a.errRNG = a.Eng.RNG("errors/" + a.Spec.Name)
	}
	return a.errRNG.Float64() < prob
}

// Service returns a service by name, or nil.
func (a *App) Service(name string) *Service { return a.services[name] }

func (a *App) mustService(name string) *Service {
	s := a.services[name]
	if s == nil {
		panic(fmt.Sprintf("services: unknown service %q", name))
	}
	return s
}

// ServiceNames lists services in sorted order.
func (a *App) ServiceNames() []string {
	out := make([]string, 0, len(a.services))
	for n := range a.services {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CompletedJobs reports how many jobs have fully finished.
func (a *App) CompletedJobs() int { return a.completedJobs }

// FailedJobs reports how many jobs terminally failed (a branch exhausted its
// RPC retries or died with a crashed replica).
func (a *App) FailedJobs() int { return a.failedJobs }

// Availability reports completed/(completed+failed) jobs; 1 before any job
// finishes.
func (a *App) Availability() float64 {
	total := a.completedJobs + a.failedJobs
	if total == 0 {
		return 1
	}
	return float64(a.completedJobs) / float64(total)
}

// EvictNode crash-evicts every replica resident on n, in spec order: work on
// their CPUs is dropped, in-flight requests fail, service-level queues
// survive, and placements are released. The OnEviction hook (if set) fires
// once with the per-service counts. Marking the node down first is the
// caller's job (fault injector).
func (a *App) EvictNode(n *cluster.Node) []Eviction {
	var evs []Eviction
	for _, s := range a.ordered {
		if released := s.evictOn(n); len(released) > 0 {
			evs = append(evs, Eviction{Service: s.Name(), Replicas: len(released)})
		}
	}
	a.notifyEviction(evs)
	return evs
}

func (a *App) notifyEviction(evs []Eviction) {
	if len(evs) > 0 && a.OnEviction != nil {
		a.OnEviction(evs)
	}
}

// RefreshNodeCPU re-derives the CPU limit of every replica resident on n (in
// spec order), after the node's interference factor changed.
func (a *App) RefreshNodeCPU(n *cluster.Node) {
	for _, s := range a.ordered {
		for _, r := range s.replicas {
			if r.placement.Node == n {
				r.applyCores()
			}
		}
		for _, r := range s.draining {
			if r.placement.Node == n {
				r.applyCores()
			}
		}
	}
}

// Inject starts one job of the given (non-derived) request class at its
// entry service and returns the job.
func (a *App) Inject(class string) *Job {
	cs := a.Spec.Class(class)
	if cs == nil {
		panic(fmt.Sprintf("services: unknown class %q", class))
	}
	if cs.Entry == "" {
		panic(fmt.Sprintf("services: class %q has no entry service", class))
	}
	return a.injectAt(a.mustService(cs.Entry), class)
}

// injectAt starts a new measured job of class at svc (used by Inject and by
// Spawn steps).
func (a *App) injectAt(svc *Service, class string) *Job {
	cs := a.Spec.Class(class)
	if cs == nil {
		panic(fmt.Sprintf("services: unknown class %q", class))
	}
	j := &Job{
		Class:    class,
		Priority: cs.Priority,
		Start:    a.Eng.Now(),
		app:      a,
	}
	if a.Tracer != nil {
		j.traceID = a.Tracer.StartJob(class, a.Eng.Now())
	}
	a.InjectedJobs++
	j.add()
	entry := a.getRequest()
	entry.Job = j
	entry.Class = class
	entry.Priority = j.Priority
	entry.doneBranch = true
	svc.Enqueue(entry)
	return j
}

// sampleMetrics stores one utilisation sample per service per window, then
// applies the retention policy (if any) so steady-state telemetry memory is
// O(retained windows) regardless of run length.
func (a *App) sampleMetrics() {
	now := a.Eng.Now()
	for _, s := range a.ordered {
		s.UtilSamples.Add(now-1, s.sampleUtilization())
	}
	if a.telemetry.Retention > 0 && now > a.telemetry.Retention {
		a.TrimTelemetry(now - a.telemetry.Retention)
	}
}

// StopSampling halts the periodic sampler (end of experiment).
func (a *App) StopSampling() { a.sampler.Stop() }

// TotalAllocatedCPUs sums currently allocated CPUs over all services.
func (a *App) TotalAllocatedCPUs() float64 {
	t := 0.0
	for _, s := range a.ordered {
		t += s.AllocatedCPUs()
	}
	return t
}

// AllocIntegralCPUSeconds reports ∫ allocated CPUs dt through now, summed
// over services — divide a delta by elapsed seconds for the Fig. 12 average
// allocation metric.
func (a *App) AllocIntegralCPUSeconds() float64 {
	now := a.Eng.Now()
	t := 0.0
	for _, s := range a.ordered {
		t += s.AllocGauge.IntegralUntil(now)
	}
	return t
}
