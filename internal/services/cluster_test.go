package services

import (
	"testing"

	"ursa/internal/cluster"
	"ursa/internal/sim"
)

func TestClusterBoundPlacement(t *testing.T) {
	eng := sim.NewEngine(61)
	cl := cluster.New(cluster.WorstFit, 16)
	spec := oneTierSpec(2) // api: 4 CPUs per replica
	app, err := NewAppOnCluster(eng, spec, cl)
	if err != nil {
		t.Fatal(err)
	}
	if cl.TotalUsed() != 8 {
		t.Fatalf("initial placement used %v CPUs, want 8", cl.TotalUsed())
	}
	svc := app.Service("api")
	svc.SetReplicas(4) // fills the 16-CPU node exactly
	if cl.TotalUsed() != 16 || svc.Replicas() != 4 {
		t.Fatalf("used=%v replicas=%d", cl.TotalUsed(), svc.Replicas())
	}
	// The fifth replica cannot be placed.
	svc.SetReplicas(5)
	if svc.Replicas() != 4 {
		t.Fatalf("over-capacity scale-out succeeded: %d replicas", svc.Replicas())
	}
	if app.UnschedulableEvents == 0 {
		t.Fatal("unschedulable event not recorded")
	}
	// Scaling in releases capacity for later growth.
	svc.SetReplicas(2)
	eng.RunUntil(sim.Second) // drain
	if cl.TotalUsed() != 8 {
		t.Fatalf("release failed: used=%v", cl.TotalUsed())
	}
	svc.SetReplicas(4)
	if svc.Replicas() != 4 || cl.TotalUsed() != 16 {
		t.Fatalf("re-placement failed: replicas=%d used=%v", svc.Replicas(), cl.TotalUsed())
	}
}

func TestClusterSharedAcrossServices(t *testing.T) {
	eng := sim.NewEngine(62)
	cl := cluster.New(cluster.WorstFit, 10)
	spec := AppSpec{
		Name: "shared",
		Services: []ServiceSpec{
			{Name: "a", CPUs: 4, InitialReplicas: 1, Handlers: map[string][]Step{
				"x": Seq(Compute{MeanMs: 1}),
			}},
			{Name: "b", CPUs: 4, InitialReplicas: 1, Handlers: map[string][]Step{
				"x": Seq(Compute{MeanMs: 1}),
			}},
		},
		Classes: []ClassSpec{{Name: "x", Entry: "a", SLAPercentile: 99, SLAMillis: 100}},
	}
	app, err := NewAppOnCluster(eng, spec, cl)
	if err != nil {
		t.Fatal(err)
	}
	// 8 of 10 CPUs used; neither service can add another 4-CPU replica
	// once the other grabs the rest... actually 2 CPUs remain: no one fits.
	app.Service("a").SetReplicas(2)
	if app.Service("a").Replicas() != 1 {
		t.Fatalf("replica placed beyond shared capacity")
	}
	if cl.TotalUsed() != 8 {
		t.Fatalf("used = %v", cl.TotalUsed())
	}
}
