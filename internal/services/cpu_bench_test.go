package services

import (
	"fmt"
	"testing"

	"ursa/internal/sim"
)

// BenchmarkCPUSched measures one arrival→completion cycle of a short burst
// while `active` long-running bursts share the processor. The virtual-time
// scheduler costs O(log n) per event here; the pre-rewrite egalitarian
// rescanner advanced all n bursts on every event, so its per-cycle cost grew
// linearly with the active-burst count.
func BenchmarkCPUSched(b *testing.B) {
	for _, active := range []int{8, 64, 512, 4096} {
		b.Run(fmt.Sprintf("active=%d", active), func(b *testing.B) {
			eng := sim.NewEngine(1)
			c := newCPUSched(eng, 4)
			noop := func() {}
			// Long-running background load that stays active throughout
			// (1e5 core-seconds each: effectively forever next to the
			// microsecond probe bursts, yet small enough that the scheduled
			// completion delay stays well inside the int64-nanosecond range).
			for i := 0; i < active; i++ {
				c.Run(1e5, noop)
			}
			completed := 0
			done := func() { completed++ }
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Run(1e-6, done)
				for want := i + 1; completed < want; {
					eng.Step()
				}
			}
			b.StopTimer()
			if completed != b.N {
				b.Fatalf("completed %d of %d bursts", completed, b.N)
			}
		})
	}
}
