package services

import (
	"testing"
	"time"

	"ursa/internal/sim"
)

// ingressSpec is a single ingress-enabled service: every admission costs
// CPU, and the per-replica flow-control window bounds concurrency.
func ingressSpec(replicas, window int) AppSpec {
	return AppSpec{
		Name: "ingress",
		Services: []ServiceSpec{{
			Name: "recv", Threads: 64, CPUs: 8, InitialReplicas: replicas,
			IngressCostMs: 1, IngressWindow: window,
			Handlers: map[string][]Step{"req": Seq(Compute{MeanMs: 0.1, CV: -1})},
		}},
		Classes: []ClassSpec{{Name: "req", Entry: "recv", SLAPercentile: 99, SLAMillis: 1000}},
	}
}

func TestIngressWaitPreservesFIFO(t *testing.T) {
	eng := sim.NewEngine(30)
	app := MustNewApp(eng, ingressSpec(1, 1))
	svc := app.Service("recv")
	const n = 200
	var order []int
	for i := 0; i < n; i++ {
		i := i
		svc.Send(&Request{Class: "req"}, func() { order = append(order, i) })
	}
	eng.RunUntil(sim.Minute)
	if len(order) != n {
		t.Fatalf("admitted %d of %d sends", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("admission order broken at %d: got send #%d", i, got)
		}
	}
}

// TestIngressBurstDrainsLinearly guards the head-index wait queue: a large
// blocked-sender burst must drain in (amortised) linear time. The old
// implementation shifted the whole slice on every admission — O(n²), which
// for this burst size moves hundreds of gigabytes and takes minutes; the
// ring finishes in a couple of seconds even on a loaded CI box.
func TestIngressBurstDrainsLinearly(t *testing.T) {
	eng := sim.NewEngine(31)
	app := MustNewApp(eng, ingressSpec(4, 8))
	svc := app.Service("recv")
	const n = 300_000
	admitted := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		svc.Send(&Request{Class: "req"}, func() { admitted++ })
	}
	eng.RunUntil(10 * sim.Minute)
	elapsed := time.Since(start)
	if admitted != n {
		t.Fatalf("admitted %d of %d sends (ingress queue left %d)", admitted, n, svc.IngressQueueLen())
	}
	if elapsed > 20*time.Second {
		t.Fatalf("draining %d blocked senders took %v — wait queue is not linear", n, elapsed)
	}
}

func TestPickIngressReplicaRoundRobinFromZero(t *testing.T) {
	eng := sim.NewEngine(32)
	app := MustNewApp(eng, ingressSpec(3, 4))
	svc := app.Service("recv")
	// The very first admission must hit replica 0, then cycle 1, 2, 0, ...
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		got := svc.pickIngressReplica()
		if got != svc.replicas[w] {
			t.Fatalf("pick %d: got replica %v, want index %d", i, got, w)
		}
	}
	_ = eng
}

func TestIngressRRResetOnScaleIn(t *testing.T) {
	eng := sim.NewEngine(33)
	app := MustNewApp(eng, ingressSpec(5, 4))
	svc := app.Service("recv")
	for i := 0; i < 4; i++ {
		svc.pickIngressReplica() // cursor now at 4
	}
	if svc.ingressRR != 4 {
		t.Fatalf("cursor = %d, want 4", svc.ingressRR)
	}
	svc.SetReplicas(2)
	if svc.ingressRR >= len(svc.replicas) {
		t.Fatalf("cursor %d not reset below replica count %d", svc.ingressRR, len(svc.replicas))
	}
	if got := svc.pickIngressReplica(); got != svc.replicas[0] {
		t.Fatal("first pick after scale-in must be replica 0")
	}
	_ = eng
}
