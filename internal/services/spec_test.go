package services

import (
	"strings"
	"testing"
)

func validSpec() AppSpec {
	return AppSpec{
		Name: "valid",
		Services: []ServiceSpec{
			{Name: "front", Handlers: map[string][]Step{
				"read": Seq(Compute{MeanMs: 1}, Call{Service: "back", Mode: NestedRPC}),
			}},
			{Name: "back", Handlers: map[string][]Step{
				"read": Seq(Compute{MeanMs: 2}),
			}},
		},
		Classes: []ClassSpec{{Name: "read", Entry: "front", SLAPercentile: 99, SLAMillis: 50}},
	}
}

func TestValidateOK(t *testing.T) {
	spec := validSpec()
	if err := spec.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateUnknownEntry(t *testing.T) {
	spec := validSpec()
	spec.Classes[0].Entry = "nope"
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "entry service") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateMissingHandler(t *testing.T) {
	spec := validSpec()
	delete(spec.Services[1].Handlers, "read")
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "no handler") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateUnknownCallTarget(t *testing.T) {
	spec := validSpec()
	spec.Services[0].Handlers["read"] = Seq(Call{Service: "ghost", Mode: NestedRPC})
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDuplicateService(t *testing.T) {
	spec := validSpec()
	spec.Services = append(spec.Services, ServiceSpec{Name: "front"})
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate service") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateDuplicateClass(t *testing.T) {
	spec := validSpec()
	spec.Classes = append(spec.Classes, ClassSpec{Name: "read", Entry: "front"})
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate class") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateSpawnUnknownClass(t *testing.T) {
	spec := validSpec()
	spec.Services[0].Handlers["read"] = Seq(Spawn{Service: "back", Class: "ghost"})
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateNonPositiveCompute(t *testing.T) {
	spec := validSpec()
	spec.Services[1].Handlers["read"] = Seq(Compute{MeanMs: 0})
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "non-positive mean") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateParBranches(t *testing.T) {
	spec := validSpec()
	spec.Services[0].Handlers["read"] = Seq(Par{Branches: [][]Step{
		{Call{Service: "back", Mode: NestedRPC}},
		{Call{Service: "missing", Mode: NestedRPC}},
	}})
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateClassOverrideOnCall(t *testing.T) {
	spec := validSpec()
	spec.Services[1].Handlers["store"] = Seq(Compute{MeanMs: 1})
	spec.Services[0].Handlers["read"] = Seq(Call{Service: "back", Mode: NestedRPC, Class: "store"})
	if err := spec.Validate(); err != nil {
		t.Fatalf("class-override call rejected: %v", err)
	}
}

func TestApplyDefaults(t *testing.T) {
	s := ServiceSpec{Name: "x"}
	s.applyDefaults()
	if s.Threads != 8 || s.Daemons != 16 || s.CPUs != 1 || s.InitialReplicas != 1 {
		t.Fatalf("defaults = %+v", s)
	}
}

func TestEntryClasses(t *testing.T) {
	spec := validSpec()
	spec.Classes = append(spec.Classes, ClassSpec{Name: "derived-x", Derived: true})
	got := spec.EntryClasses()
	if len(got) != 1 || got[0] != "read" {
		t.Fatalf("EntryClasses = %v", got)
	}
}

func TestCallModeString(t *testing.T) {
	if NestedRPC.String() != "nested-rpc" || EventRPC.String() != "event-rpc" || MQ.String() != "mq" {
		t.Fatal("CallMode strings wrong")
	}
	if CallMode(9).String() != "CallMode(9)" {
		t.Fatal("unknown CallMode string wrong")
	}
}
