package services

import (
	"math"
	"testing"

	"ursa/internal/cluster"
	"ursa/internal/sim"
	"ursa/internal/trace"
)

// twoTierSpec: frontend computes 5 ms then calls backend (10 ms) over
// nested RPC; everything deterministic.
func twoTierSpec() AppSpec {
	return AppSpec{
		Name: "two-tier",
		Services: []ServiceSpec{
			{
				Name:            "frontend",
				Threads:         4,
				CPUs:            4,
				InitialReplicas: 1,
				Handlers: map[string][]Step{
					"get": Seq(Compute{MeanMs: 5, CV: -1}, Call{Service: "backend", Mode: NestedRPC}),
				},
			},
			{
				Name:            "backend",
				Threads:         4,
				CPUs:            4,
				InitialReplicas: 1,
				Handlers: map[string][]Step{
					"get": Seq(Compute{MeanMs: 10, CV: -1}),
				},
			},
		},
		Classes: []ClassSpec{{Name: "get", Entry: "frontend", SLAPercentile: 99, SLAMillis: 100}},
	}
}

// dropNet drops the first N intercepted sends, then delivers cleanly.
type dropNet struct {
	dropFirst int
	calls     int
}

func (f *dropNet) Intercept(src, dst string) (sim.Time, bool) {
	f.calls++
	return 0, f.calls <= f.dropFirst
}

// delayNet applies a fixed per-call delay sequence, then delivers cleanly.
type delayNet struct {
	delays []sim.Time
	calls  int
}

func (f *delayNet) Intercept(src, dst string) (sim.Time, bool) {
	f.calls++
	if f.calls <= len(f.delays) {
		return f.delays[f.calls-1], false
	}
	return 0, false
}

func TestRetryRecoversDroppedRPC(t *testing.T) {
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, twoTierSpec())
	app.SetResilience(ResiliencePolicy{TimeoutMs: 50, MaxRetries: 3, BackoffBaseMs: 10, BackoffMaxMs: 40, JitterFrac: 0.2})
	app.Net = &dropNet{dropFirst: 1}
	app.Inject("get")
	eng.RunUntil(sim.Second)

	if app.CompletedJobs() != 1 || app.FailedJobs() != 0 {
		t.Fatalf("completed=%d failed=%d, want 1/0", app.CompletedJobs(), app.FailedJobs())
	}
	be := app.Service("backend")
	if got := be.RPCRetries.Total(0, sim.Second); got != 1 {
		t.Fatalf("retries = %v, want 1", got)
	}
	if got := be.RPCErrors.Total(0, sim.Second); got != 1 {
		t.Fatalf("errors = %v, want 1", got)
	}
	if got := be.Availability(0, sim.Second); got != 0.5 {
		t.Fatalf("availability = %v, want 0.5 (1 of 2 attempts failed)", got)
	}
	// Latency ≈ 5 ms compute + 50 ms timeout + ~10 ms backoff + 10 ms retry.
	lat := app.E2E.Class("get").All()[0]
	if lat < 65 || lat > 90 {
		t.Fatalf("E2E latency %v ms, want ≈75 ms (timeout + backoff + retry)", lat)
	}
}

func TestRetriesExhaustedFailJob(t *testing.T) {
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, twoTierSpec())
	app.SetResilience(ResiliencePolicy{TimeoutMs: 20, MaxRetries: 2, BackoffBaseMs: 5, BackoffMaxMs: 10, JitterFrac: 0})
	app.Net = &dropNet{dropFirst: 1 << 30} // drop everything
	app.Inject("get")
	eng.RunUntil(sim.Second)

	if app.CompletedJobs() != 0 || app.FailedJobs() != 1 {
		t.Fatalf("completed=%d failed=%d, want 0/1", app.CompletedJobs(), app.FailedJobs())
	}
	if got := app.Availability(); got != 0 {
		t.Fatalf("app availability = %v, want 0", got)
	}
	if rec := app.E2E.Class("get"); rec != nil && len(rec.All()) != 0 {
		t.Fatalf("failed job produced %d E2E samples, want 0", len(rec.All()))
	}
	be := app.Service("backend")
	if got := be.RPCAttempts.Total(0, sim.Second); got != 3 {
		t.Fatalf("attempts = %v, want 3 (1 + 2 retries)", got)
	}
	if got := be.Availability(0, sim.Second); got != 0 {
		t.Fatalf("backend availability = %v, want 0", got)
	}
}

func TestDropWithoutTimeoutHangs(t *testing.T) {
	// No resilience policy: a dropped message leaves the caller waiting
	// forever, exactly like an unprotected client.
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, twoTierSpec())
	app.Net = &dropNet{dropFirst: 1 << 30}
	app.Inject("get")
	eng.RunUntil(sim.Second)

	if app.CompletedJobs()+app.FailedJobs() != 0 {
		t.Fatalf("job settled (completed=%d failed=%d); a drop without timeout must hang",
			app.CompletedJobs(), app.FailedJobs())
	}
	if got := app.Service("backend").RPCErrors.Total(0, sim.Second); got != 1 {
		t.Fatalf("errors = %v, want 1 (the unrecoverable drop)", got)
	}
}

func TestCrashReplicaFailsInflight(t *testing.T) {
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, oneTierSpec(1))
	app.Inject("get")
	eng.RunUntil(5 * sim.Millisecond) // mid-burst (10 ms compute)
	svc := app.Service("api")
	var hook []Eviction
	app.OnEviction = func(evs []Eviction) { hook = evs }
	if !svc.CrashReplica(0) {
		t.Fatal("CrashReplica(0) found nothing to kill")
	}
	eng.RunUntil(sim.Second)

	if app.FailedJobs() != 1 || app.CompletedJobs() != 0 {
		t.Fatalf("completed=%d failed=%d, want 0/1", app.CompletedJobs(), app.FailedJobs())
	}
	if svc.Replicas() != 0 {
		t.Fatalf("replicas = %d, want 0 after crash", svc.Replicas())
	}
	if len(hook) != 1 || hook[0].Service != "api" || hook[0].Replicas != 1 {
		t.Fatalf("OnEviction payload = %+v", hook)
	}
	if n := len(svc.RespTime.All()); n != 0 {
		t.Fatalf("crashed request left %d tier latency samples, want 0", n)
	}
}

func TestQueuedRequestsSurviveCrash(t *testing.T) {
	spec := oneTierSpec(1)
	spec.Services[0].Threads = 1 // second job must queue
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, spec)
	app.Inject("get")
	app.Inject("get")
	eng.RunUntil(5 * sim.Millisecond)
	svc := app.Service("api")
	svc.CrashReplica(0)
	if svc.QueueLen() != 1 {
		t.Fatalf("queue len = %d after crash, want 1 (queued work survives)", svc.QueueLen())
	}
	svc.AddReplicaWarm(1, 0) // instant replacement
	eng.RunUntil(sim.Second)

	if app.CompletedJobs() != 1 || app.FailedJobs() != 1 {
		t.Fatalf("completed=%d failed=%d, want 1/1", app.CompletedJobs(), app.FailedJobs())
	}
}

func TestWarmReplicaRunsDerated(t *testing.T) {
	eng := sim.NewEngine(1)
	spec := oneTierSpec(1)
	spec.Services[0].CPUs = 1 // one burst saturates the limit
	app := MustNewApp(eng, spec)
	svc := app.Service("api")
	svc.CrashReplica(0)
	// Replacement at 20% speed for 500 ms: the 10 ms burst takes 50 ms.
	svc.AddReplicaWarm(0.2, 500*sim.Millisecond)
	app.Inject("get")
	eng.RunUntil(sim.Second) // past warmup
	app.Inject("get")
	eng.RunUntil(2 * sim.Second)

	lats := app.E2E.Class("get").All()
	if len(lats) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(lats))
	}
	if math.Abs(lats[0]-50) > 1e-6 {
		t.Fatalf("warm-up latency = %v ms, want 50 ms (10 ms at 20%% speed)", lats[0])
	}
	if math.Abs(lats[1]-10) > 1e-6 {
		t.Fatalf("post-warm-up latency = %v ms, want 10 ms", lats[1])
	}
}

func TestEvictNodeFailsResidentsAndReleases(t *testing.T) {
	cl := cluster.New(cluster.BestFit, 8, 8)
	eng := sim.NewEngine(1)
	app, err := NewAppOnCluster(eng, twoTierSpec(), cl)
	if err != nil {
		t.Fatal(err)
	}
	// BestFit packs both 4-CPU replicas onto node-0.
	if cl.NodeByName("node-0").Used() != 8 {
		t.Fatalf("node-0 used = %v, want 8", cl.NodeByName("node-0").Used())
	}
	evs := app.EvictNode(cl.NodeByName("node-0"))
	if len(evs) != 2 || evs[0].Service != "frontend" || evs[1].Service != "backend" {
		t.Fatalf("evictions = %+v", evs)
	}
	if cl.TotalUsed() != 0 {
		t.Fatalf("cluster still holds %v CPUs after eviction", cl.TotalUsed())
	}
	if app.Service("frontend").Replicas() != 0 || app.Service("backend").Replicas() != 0 {
		t.Fatal("evicted services still report replicas")
	}
}

func TestAbandonedAttemptSpanExcludedFromCriticalPath(t *testing.T) {
	// The first frontend→backend attempt is delayed past the timeout; the
	// retry succeeds. The abandoned attempt still executes at the backend
	// and lands a span inside the trace (the frontend's 200 ms tail keeps
	// the job open) — that span must be flagged and must not inflate the
	// backend's critical-path share.
	spec := twoTierSpec()
	spec.Services[0].Handlers["get"] = Seq(
		Compute{MeanMs: 5, CV: -1},
		Call{Service: "backend", Mode: NestedRPC},
		Compute{MeanMs: 200, CV: -1},
	)
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, spec)
	app.Tracer = trace.NewTracer(1, 0)
	app.SetResilience(ResiliencePolicy{TimeoutMs: 100, MaxRetries: 1, BackoffBaseMs: 10, BackoffMaxMs: 10, JitterFrac: 0})
	app.Net = &delayNet{delays: []sim.Time{150 * sim.Millisecond}}
	app.Inject("get")
	eng.RunUntil(sim.Second)

	if app.CompletedJobs() != 1 {
		t.Fatalf("completed = %d, want 1", app.CompletedJobs())
	}
	traces := app.Tracer.Traces()
	if len(traces) != 1 || !traces[0].Complete {
		t.Fatalf("traces = %d (complete=%v), want 1 complete", len(traces), len(traces) == 1 && traces[0].Complete)
	}
	abandoned, backendSpans := 0, 0
	for _, s := range traces[0].Spans {
		if s.Service == "backend" {
			backendSpans++
			if s.Abandoned {
				abandoned++
			}
		}
	}
	if backendSpans != 2 || abandoned != 1 {
		t.Fatalf("backend spans = %d (abandoned %d), want 2 with 1 abandoned", backendSpans, abandoned)
	}
	// Critical path counts only the successful attempt: ≈10 ms, not ≈20.
	bd := app.Tracer.CriticalBreakdown("get")
	if ms := bd["backend"].Millis(); math.Abs(ms-10) > 1 {
		t.Fatalf("backend critical share = %v ms, want ≈10 (abandoned span excluded)", ms)
	}
}

func TestFailedJobTraceIncomplete(t *testing.T) {
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, twoTierSpec())
	app.Tracer = trace.NewTracer(1, 0)
	app.SetResilience(ResiliencePolicy{TimeoutMs: 20, MaxRetries: 1, BackoffBaseMs: 5, BackoffMaxMs: 5, JitterFrac: 0})
	app.Net = &dropNet{dropFirst: 1 << 30}
	app.Inject("get")
	eng.RunUntil(sim.Second)

	traces := app.Tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	if traces[0].Complete {
		t.Fatal("failed job's trace marked complete")
	}
	// The frontend span exists (its handler ran and aborted) and is
	// flagged abandoned.
	if len(traces[0].Spans) != 1 || !traces[0].Spans[0].Abandoned {
		t.Fatalf("spans = %+v, want one abandoned frontend span", traces[0].Spans)
	}
}
