package services

import (
	"fmt"
	"sort"
)

// ServiceSpec is the static configuration of one microservice.
type ServiceSpec struct {
	Name string
	// Threads is the number of worker slots per replica (request handlers
	// executing concurrently). Finite thread pools are what make nested-RPC
	// backpressure possible.
	Threads int
	// Daemons is the number of event-driven continuation slots per replica
	// (Fig. 1(b)'s daemon threads).
	Daemons int
	// CPUs is the container CPU limit per replica. Per §VII-A the paper
	// uses the static CPU manager policy with integral CPUs.
	CPUs float64
	// InitialReplicas is the replica count at deployment time.
	InitialReplicas int
	// MaxReplicas caps scaling (cluster capacity); 0 means unlimited.
	MaxReplicas int
	// StartupDelaySec is the container start latency applied on scale-out.
	StartupDelaySec float64
	// IngressCostMs is the CPU cost of accepting one inbound RPC
	// (deserialisation, connection handling) on the receiving replica.
	// When > 0 the service gets an ingress stage with a bounded
	// flow-control window: senders block inside their own handler until
	// the receiver admits the request — the mechanism behind RPC
	// backpressure (§III). Zero disables the ingress stage; MQ deliveries
	// always bypass it (the broker decouples producer from consumer).
	IngressCostMs float64
	// IngressWindow is the flow-control window per replica (concurrent
	// inbound RPCs being admitted); defaults to 32 when ingress is on.
	IngressWindow int
	// Handlers maps a request class to the steps executed for it.
	Handlers map[string][]Step
}

func (s *ServiceSpec) applyDefaults() {
	if s.Threads <= 0 {
		s.Threads = 8
	}
	if s.Daemons <= 0 {
		s.Daemons = 16
	}
	if s.CPUs <= 0 {
		s.CPUs = 1
	}
	if s.InitialReplicas <= 0 {
		s.InitialReplicas = 1
	}
	if s.IngressCostMs > 0 && s.IngressWindow <= 0 {
		s.IngressWindow = 32
	}
}

// ClassSpec describes one request class or priority level (§VI): its entry
// service and its end-to-end SLA.
type ClassSpec struct {
	Name string
	// Entry is the service that receives the class's requests. Empty for
	// derived classes that are only spawned by other flows.
	Entry string
	// Priority orders queue service; lower is more urgent. MQ consumers
	// always drain lower values first.
	Priority int
	// SLAPercentile is the latency percentile the SLA constrains (e.g. 99,
	// or 50 for the pipeline's low-priority class).
	SLAPercentile float64
	// SLAMillis is the SLA latency target in milliseconds.
	SLAMillis float64
	// Derived marks classes not generated directly by clients (spawned by
	// Spawn steps, e.g. update-timeline).
	Derived bool
}

// AppSpec is a complete application: services plus request classes.
type AppSpec struct {
	Name     string
	Services []ServiceSpec
	Classes  []ClassSpec
}

// Class returns the spec of a class, or nil.
func (a *AppSpec) Class(name string) *ClassSpec {
	for i := range a.Classes {
		if a.Classes[i].Name == name {
			return &a.Classes[i]
		}
	}
	return nil
}

// ServiceSpecByName returns the spec of a service, or nil.
func (a *AppSpec) ServiceSpecByName(name string) *ServiceSpec {
	for i := range a.Services {
		if a.Services[i].Name == name {
			return &a.Services[i]
		}
	}
	return nil
}

// EntryClasses lists non-derived classes (those clients generate), sorted.
func (a *AppSpec) EntryClasses() []string {
	var out []string
	for _, c := range a.Classes {
		if !c.Derived {
			out = append(out, c.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks referential integrity: entries exist, every Call/Spawn
// target exists and implements a handler for the effective class, and class
// names are unique. It walks each class's flow from its entry handler.
func (a *AppSpec) Validate() error {
	svcByName := map[string]*ServiceSpec{}
	for i := range a.Services {
		s := &a.Services[i]
		if s.Name == "" {
			return fmt.Errorf("app %s: service %d has empty name", a.Name, i)
		}
		if _, dup := svcByName[s.Name]; dup {
			return fmt.Errorf("app %s: duplicate service %q", a.Name, s.Name)
		}
		svcByName[s.Name] = s
	}
	seenClass := map[string]bool{}
	for _, c := range a.Classes {
		if c.Name == "" {
			return fmt.Errorf("app %s: class with empty name", a.Name)
		}
		if seenClass[c.Name] {
			return fmt.Errorf("app %s: duplicate class %q", a.Name, c.Name)
		}
		seenClass[c.Name] = true
		if c.Derived && c.Entry == "" {
			continue
		}
		entry, ok := svcByName[c.Entry]
		if !ok {
			return fmt.Errorf("app %s: class %q entry service %q not found", a.Name, c.Name, c.Entry)
		}
		if err := a.validateFlow(svcByName, entry, c.Name, map[string]bool{}); err != nil {
			return err
		}
	}
	return nil
}

// validateFlow recursively checks that svc implements class and that every
// downstream reference resolves.
func (a *AppSpec) validateFlow(svcs map[string]*ServiceSpec, svc *ServiceSpec, class string, visiting map[string]bool) error {
	key := svc.Name + "/" + class
	if visiting[key] {
		return nil // already on the stack; cycles are legal (retries etc.)
	}
	visiting[key] = true
	steps, ok := svc.Handlers[class]
	if !ok {
		return fmt.Errorf("app %s: service %q has no handler for class %q", a.Name, svc.Name, class)
	}
	return a.validateSteps(svcs, svc, class, steps, visiting)
}

func (a *AppSpec) validateSteps(svcs map[string]*ServiceSpec, svc *ServiceSpec, class string, steps []Step, visiting map[string]bool) error {
	for _, st := range steps {
		switch s := st.(type) {
		case Compute:
			if s.MeanMs <= 0 {
				return fmt.Errorf("app %s: service %q class %q: Compute with non-positive mean", a.Name, svc.Name, class)
			}
		case Call:
			target, ok := svcs[s.Service]
			if !ok {
				return fmt.Errorf("app %s: service %q calls unknown service %q", a.Name, svc.Name, s.Service)
			}
			cls := class
			if s.Class != "" {
				cls = s.Class
			}
			if err := a.validateFlow(svcs, target, cls, visiting); err != nil {
				return err
			}
		case Spawn:
			target, ok := svcs[s.Service]
			if !ok {
				return fmt.Errorf("app %s: service %q spawns at unknown service %q", a.Name, svc.Name, s.Service)
			}
			if a.Class(s.Class) == nil {
				return fmt.Errorf("app %s: service %q spawns unknown class %q", a.Name, svc.Name, s.Class)
			}
			if err := a.validateFlow(svcs, target, s.Class, visiting); err != nil {
				return err
			}
		case Par:
			for _, br := range s.Branches {
				if err := a.validateSteps(svcs, svc, class, br, visiting); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("app %s: service %q class %q: unknown step %T", a.Name, svc.Name, class, st)
		}
	}
	return nil
}
