package services

import (
	"math"
	"testing"

	"ursa/internal/sim"
)

func TestCPUSchedSingleBurst(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 1)
	var doneAt sim.Time
	c.Run(0.5, func() { doneAt = eng.Now() })
	eng.Drain(100)
	if doneAt != 500*sim.Millisecond {
		t.Fatalf("single burst finished at %v, want 500ms", doneAt)
	}
}

func TestCPUSchedProcessorSharing(t *testing.T) {
	// Two 1-core-second bursts on 1 core, started together: both finish at 2s.
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 1)
	var done []sim.Time
	c.Run(1, func() { done = append(done, eng.Now()) })
	c.Run(1, func() { done = append(done, eng.Now()) })
	eng.Drain(100)
	if len(done) != 2 || done[0] != 2*sim.Second || done[1] != 2*sim.Second {
		t.Fatalf("PS completions = %v, want both at 2s", done)
	}
}

func TestCPUSchedTwoCoresNoSlowdown(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 2)
	var done []sim.Time
	c.Run(1, func() { done = append(done, eng.Now()) })
	c.Run(1, func() { done = append(done, eng.Now()) })
	eng.Drain(100)
	if len(done) != 2 || done[0] != sim.Second || done[1] != sim.Second {
		t.Fatalf("completions = %v, want both at 1s", done)
	}
}

func TestCPUSchedStaggeredArrival(t *testing.T) {
	// Burst A (1 cs) starts at 0 on 1 core; burst B (1 cs) arrives at 0.5s.
	// A has 0.5 left at t=0.5; both then run at rate 1/2: A finishes at
	// 0.5+1.0=1.5s, B has 0.5 left at 1.5s, runs alone → finishes at 2.0s.
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 1)
	var aDone, bDone sim.Time
	c.Run(1, func() { aDone = eng.Now() })
	eng.Schedule(500*sim.Millisecond, func() {
		c.Run(1, func() { bDone = eng.Now() })
	})
	eng.Drain(100)
	if aDone != 1500*sim.Millisecond {
		t.Fatalf("A done at %v, want 1.5s", aDone)
	}
	if bDone != 2*sim.Second {
		t.Fatalf("B done at %v, want 2s", bDone)
	}
}

func TestCPUSchedThrottleMidBurst(t *testing.T) {
	// 1 cs of work; at t=0.5s the limit drops to 0.25 cores → the remaining
	// 0.5 cs takes 2s → completion at 2.5s. (CPU-limit throttling is how
	// Fig. 2 injects the anomaly.)
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 1)
	var done sim.Time
	c.Run(1, func() { done = eng.Now() })
	eng.Schedule(500*sim.Millisecond, func() { c.SetCores(0.25) })
	eng.Drain(100)
	if done != 2500*sim.Millisecond {
		t.Fatalf("throttled burst done at %v, want 2.5s", done)
	}
	if c.Cores() != 0.25 {
		t.Fatalf("Cores = %v", c.Cores())
	}
}

func TestCPUSchedUtilizationAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 2)
	c.Run(1, func() {}) // 1 core busy for 1s on a 2-core replica
	eng.RunUntil(2 * sim.Second)
	busy, cap := c.snapshot()
	if math.Abs(busy-1) > 1e-9 {
		t.Fatalf("busy = %v, want 1", busy)
	}
	if math.Abs(cap-4) > 1e-9 { // 2 cores × 2s
		t.Fatalf("capacity = %v, want 4", cap)
	}
}

func TestCPUSchedZeroWork(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 1)
	fired := false
	c.Run(0, func() { fired = true })
	eng.Drain(10)
	if !fired {
		t.Fatal("zero-work burst never completed")
	}
}

func TestCPUSchedOverloadConservesWork(t *testing.T) {
	// 10 bursts of 0.1 cs on 0.5 cores: total work 1 cs at 0.5 cores → all
	// done by t=2s, and the busy integral must equal the submitted work.
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 0.5)
	doneCount := 0
	for i := 0; i < 10; i++ {
		c.Run(0.1, func() { doneCount++ })
	}
	eng.Drain(1000)
	if doneCount != 10 {
		t.Fatalf("completed %d/10 bursts", doneCount)
	}
	if eng.Now() != 2*sim.Second {
		t.Fatalf("all done at %v, want 2s", eng.Now())
	}
	busy, _ := c.snapshot()
	if math.Abs(busy-1.0) > 1e-9 {
		t.Fatalf("busy integral = %v, want 1.0 core-seconds", busy)
	}
}
