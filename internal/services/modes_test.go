package services

import (
	"math"
	"testing"

	"ursa/internal/sim"
	"ursa/internal/stats"
)

// chainSpec builds an n-tier chain t1 → t2 → ... → tn connected with the
// given mode; every tier burns exactly burstMs of CPU.
func chainSpec(n int, mode CallMode, burstMs float64) AppSpec {
	spec := AppSpec{Name: "chain-" + mode.String()}
	for i := 1; i <= n; i++ {
		name := tierName(i)
		steps := []Step{Compute{MeanMs: burstMs, CV: -1}}
		if i < n {
			steps = append(steps, Call{Service: tierName(i + 1), Mode: mode})
		}
		spec.Services = append(spec.Services, ServiceSpec{
			Name: name, Threads: 8, CPUs: 2, InitialReplicas: 1,
			Handlers: map[string][]Step{"req": steps},
		})
	}
	spec.Classes = []ClassSpec{{Name: "req", Entry: tierName(1), SLAPercentile: 99, SLAMillis: 1000}}
	return spec
}

func tierName(i int) string {
	return "tier" + string(rune('0'+i))
}

func TestNestedChainEndToEndIsSumOfTiers(t *testing.T) {
	eng := sim.NewEngine(20)
	app := MustNewApp(eng, chainSpec(5, NestedRPC, 10))
	app.Inject("req")
	eng.RunUntil(sim.Second)
	lats := app.E2E.Class("req").All()
	if len(lats) != 1 {
		t.Fatalf("jobs completed = %d", len(lats))
	}
	if math.Abs(lats[0]-50) > 1e-6 {
		t.Fatalf("e2e = %vms, want 50ms (5 tiers × 10ms)", lats[0])
	}
	// Per-tier response excludes downstream wait: every tier records ≈10ms.
	for i := 1; i <= 5; i++ {
		rt := app.Service(tierName(i)).RespTime.All()
		if len(rt) != 1 || math.Abs(rt[0]-10) > 1e-6 {
			t.Fatalf("tier %d response = %v, want [10]", i, rt)
		}
	}
}

func TestEventChainRespondsBeforeDownstream(t *testing.T) {
	eng := sim.NewEngine(21)
	app := MustNewApp(eng, chainSpec(3, EventRPC, 10))
	var jobLatency sim.Time
	j := app.Inject("req")
	j.Done = func(_ *Job, lat sim.Time) { jobLatency = lat }
	eng.RunUntil(sim.Second)
	// Tier 1's handler responds after its own 10ms burst + dispatch; the
	// job as a whole completes only after tier 3 finishes (30ms of serial
	// CPU across tiers).
	rt := app.Service("tier1").RespTime.All()
	if len(rt) != 1 || math.Abs(rt[0]-10) > 1e-6 {
		t.Fatalf("tier1 response = %v, want ≈10ms", rt)
	}
	if math.Abs(jobLatency.Millis()-30) > 1e-6 {
		t.Fatalf("job latency = %v, want 30ms", jobLatency)
	}
}

func TestMQChainDecouplesProducer(t *testing.T) {
	eng := sim.NewEngine(22)
	app := MustNewApp(eng, chainSpec(3, MQ, 10))
	app.Inject("req")
	eng.RunUntil(sim.Second)
	rt1 := app.Service("tier1").RespTime.All()
	if len(rt1) != 1 || math.Abs(rt1[0]-10) > 1e-6 {
		t.Fatalf("tier1 (producer) response = %v, want 10ms", rt1)
	}
	// The job spans all three tiers.
	lats := app.E2E.Class("req").All()
	if len(lats) != 1 || math.Abs(lats[0]-30) > 1e-6 {
		t.Fatalf("e2e = %v, want 30ms", lats)
	}
}

// bpChainSpec is the §III study chain: RPC tiers with an ingress stage
// (flow-control window + per-request receive CPU) so that sending into a
// CPU-starved tier blocks inside the parent's handler.
func bpChainSpec(mode CallMode) AppSpec {
	spec := AppSpec{Name: "bp-chain-" + mode.String()}
	for i := 1; i <= 5; i++ {
		steps := []Step{Compute{MeanMs: 5, CV: 0.3}}
		if i < 5 {
			steps = append(steps, Call{Service: tierName(i + 1), Mode: mode})
		}
		spec.Services = append(spec.Services, ServiceSpec{
			Name: tierName(i), Threads: 2048, Daemons: 32, CPUs: 2, InitialReplicas: 1,
			IngressCostMs: 1, IngressWindow: 16,
			Handlers: map[string][]Step{"req": steps},
		})
	}
	spec.Classes = []ClassSpec{{Name: "req", Entry: tierName(1), SLAPercentile: 99, SLAMillis: 1000}}
	return spec
}

// throttledChainInflation runs the Fig. 2 protocol — 5-tier chain, leaf CPU
// throttled to 38% during minutes 3–6 — and returns per-tier p99 inflation
// (during/before) for tiers 1..5.
func throttledChainInflation(t *testing.T, mode CallMode) [5]float64 {
	t.Helper()
	eng := sim.NewEngine(23)
	app := MustNewApp(eng, bpChainSpec(mode))
	rng := eng.RNG("load")
	const rps = 120
	var arrive func()
	arrive = func() {
		app.Inject("req")
		eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/rps), arrive)
	}
	eng.Schedule(0, arrive)
	leaf := app.Service("tier5")
	eng.At(3*sim.Minute, func() { leaf.SetCPUFactor(0.38) })
	eng.At(6*sim.Minute, func() { leaf.SetCPUFactor(1) })
	eng.RunUntil(6 * sim.Minute)
	var out [5]float64
	for i := 1; i <= 5; i++ {
		rt := app.Service(tierName(i)).RespTime
		before := stats.Percentile(rt.Between(0, 3*sim.Minute), 99)
		during := stats.Percentile(rt.Between(3*sim.Minute, 6*sim.Minute), 99)
		out[i-1] = during / before
	}
	return out
}

func TestBackpressureNestedRPC(t *testing.T) {
	inf := throttledChainInflation(t, NestedRPC)
	if inf[3] < 3 { // tier4, parent of the culprit: significant backpressure
		t.Fatalf("nested RPC: tier4 inflation = %.2fx, want ≥3x (all: %v)", inf[3], inf)
	}
	if inf[1] > 1.5 || inf[2] > 1.5 { // diminishes up the chain
		t.Fatalf("nested RPC: backpressure did not attenuate above tier3: %v", inf)
	}
}

func TestBackpressureEventRPC(t *testing.T) {
	inf := throttledChainInflation(t, EventRPC)
	if inf[3] < 2 {
		t.Fatalf("event RPC: tier4 inflation = %.2fx, want ≥2x (all: %v)", inf[3], inf)
	}
	if inf[0] > 1.5 || inf[1] > 1.5 {
		t.Fatalf("event RPC: backpressure did not attenuate at tiers 1-2: %v", inf)
	}
}

func TestNoBackpressureMQ(t *testing.T) {
	inf := throttledChainInflation(t, MQ)
	for i := 0; i < 4; i++ {
		if inf[i] > 1.5 {
			t.Fatalf("MQ: tier%d shows backpressure: %v", i+1, inf)
		}
	}
	if inf[4] < 2 {
		t.Fatalf("MQ: throttled leaf itself should inflate: %v", inf)
	}
}

func TestParBranchesRunConcurrently(t *testing.T) {
	// front fans out to two backends in parallel (10ms each): e2e ≈ 11ms,
	// not 21ms.
	spec := AppSpec{
		Name: "fanout",
		Services: []ServiceSpec{
			{Name: "front", Threads: 4, CPUs: 2, InitialReplicas: 1, Handlers: map[string][]Step{
				"read": Seq(
					Compute{MeanMs: 1, CV: -1},
					Par{Branches: [][]Step{
						{Call{Service: "b1", Mode: NestedRPC}},
						{Call{Service: "b2", Mode: NestedRPC}},
					}},
				),
			}},
			{Name: "b1", Threads: 4, CPUs: 2, InitialReplicas: 1, Handlers: map[string][]Step{
				"read": Seq(Compute{MeanMs: 10, CV: -1}),
			}},
			{Name: "b2", Threads: 4, CPUs: 2, InitialReplicas: 1, Handlers: map[string][]Step{
				"read": Seq(Compute{MeanMs: 10, CV: -1}),
			}},
		},
		Classes: []ClassSpec{{Name: "read", Entry: "front", SLAPercentile: 99, SLAMillis: 100}},
	}
	eng := sim.NewEngine(24)
	app := MustNewApp(eng, spec)
	app.Inject("read")
	eng.RunUntil(sim.Second)
	lats := app.E2E.Class("read").All()
	if len(lats) != 1 || math.Abs(lats[0]-11) > 1e-6 {
		t.Fatalf("fan-out e2e = %v, want 11ms", lats)
	}
	// front's own response time excludes the overlapped downstream waits.
	rt := app.Service("front").RespTime.All()
	if len(rt) != 1 || math.Abs(rt[0]-1) > 1e-6 {
		t.Fatalf("front response = %v, want 1ms", rt)
	}
}

func TestSpawnCreatesDerivedJob(t *testing.T) {
	spec := AppSpec{
		Name: "spawner",
		Services: []ServiceSpec{
			{Name: "front", Threads: 4, CPUs: 2, InitialReplicas: 1, Handlers: map[string][]Step{
				"upload": Seq(Compute{MeanMs: 5, CV: -1}, Spawn{Service: "worker", Class: "analyze"}),
			}},
			{Name: "worker", Threads: 4, CPUs: 2, InitialReplicas: 1, Handlers: map[string][]Step{
				"analyze": Seq(Compute{MeanMs: 50, CV: -1}),
			}},
		},
		Classes: []ClassSpec{
			{Name: "upload", Entry: "front", SLAPercentile: 99, SLAMillis: 20},
			{Name: "analyze", Entry: "worker", Derived: true, SLAPercentile: 99, SLAMillis: 200},
		},
	}
	eng := sim.NewEngine(25)
	app := MustNewApp(eng, spec)
	app.Inject("upload")
	eng.RunUntil(sim.Second)
	up := app.E2E.Class("upload").All()
	an := app.E2E.Class("analyze").All()
	if len(up) != 1 || math.Abs(up[0]-5) > 1e-6 {
		t.Fatalf("upload e2e = %v, want 5ms (spawn is async)", up)
	}
	if len(an) != 1 || math.Abs(an[0]-50) > 1e-6 {
		t.Fatalf("analyze e2e = %v, want 50ms", an)
	}
	if app.CompletedJobs() != 2 {
		t.Fatalf("completed jobs = %d, want 2", app.CompletedJobs())
	}
}

func TestDaemonPoolLimitsEventDispatch(t *testing.T) {
	// Tier1 has 1 daemon slot; tier2 is slow. A second event call must wait
	// for the first daemon to be released, stretching tier1's handler time.
	spec := chainSpec(2, EventRPC, 1)
	spec.Services[0].Daemons = 1
	spec.Services[1].Handlers["req"] = Seq(Compute{MeanMs: 100, CV: -1})
	eng := sim.NewEngine(26)
	app := MustNewApp(eng, spec)
	app.Inject("req")
	app.Inject("req")
	eng.RunUntil(sim.Second)
	rt := app.Service("tier1").RespTime.All()
	if len(rt) != 2 {
		t.Fatalf("tier1 handled %d", len(rt))
	}
	// First handler ≈1ms; second blocked on the daemon slot until tier2
	// finishes its first 100ms burst.
	if rt[0] > 2 {
		t.Fatalf("first handler = %vms", rt[0])
	}
	if rt[1] < 50 {
		t.Fatalf("second handler = %vms, expected daemon-slot blocking ≥50ms", rt[1])
	}
}

func TestJobConservation(t *testing.T) {
	// Every injected job completes across a mixed-mode topology.
	spec := AppSpec{
		Name: "mixed",
		Services: []ServiceSpec{
			{Name: "a", Threads: 8, CPUs: 4, InitialReplicas: 2, Handlers: map[string][]Step{
				"go": Seq(Compute{MeanMs: 2}, Call{Service: "b", Mode: NestedRPC}, Call{Service: "c", Mode: MQ}),
			}},
			{Name: "b", Threads: 8, CPUs: 4, InitialReplicas: 2, Handlers: map[string][]Step{
				"go": Seq(Compute{MeanMs: 3}, Call{Service: "c", Mode: EventRPC}),
			}},
			{Name: "c", Threads: 8, CPUs: 4, InitialReplicas: 2, Handlers: map[string][]Step{
				"go": Seq(Compute{MeanMs: 4}),
			}},
		},
		Classes: []ClassSpec{{Name: "go", Entry: "a", SLAPercentile: 99, SLAMillis: 500}},
	}
	eng := sim.NewEngine(27)
	app := MustNewApp(eng, spec)
	rng := eng.RNG("load")
	n := 0
	var arrive func()
	arrive = func() {
		if n >= 500 {
			return
		}
		n++
		app.Inject("go")
		eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/100), arrive)
	}
	eng.Schedule(0, arrive)
	eng.RunUntil(2 * sim.Minute)
	if app.CompletedJobs() != 500 {
		t.Fatalf("completed %d/500 jobs", app.CompletedJobs())
	}
}
