// Package services simulates cloud-native microservices on a discrete-event
// engine: replicas with worker thread pools and processor-sharing CPUs,
// three inter-service communication modes (nested RPC, event-driven RPC and
// message queues), request classes and priorities, and dynamic replica
// scaling. It is the stand-in for the paper's Kubernetes + Dapr testbed and
// reproduces the phenomena Ursa depends on — queueing tails, CPU-utilisation
// thresholds, and RPC backpressure (§III).
package services

import (
	"fmt"

	"ursa/internal/stats"
)

// CallMode selects the inter-service communication method (Fig. 1).
type CallMode int

const (
	// NestedRPC is a synchronous call: the calling worker blocks until the
	// downstream response arrives. This is the mode that propagates
	// backpressure most strongly.
	NestedRPC CallMode = iota
	// EventRPC is an event-driven call: the handler hands the call to a
	// bounded daemon pool and responds to its own caller immediately. The
	// handler blocks only while acquiring a daemon slot, which yields the
	// milder backpressure of Fig. 2(b).
	EventRPC
	// MQ appends a message to the downstream service's queue and continues
	// immediately; the producer is never affected by consumer slowness.
	MQ
)

// String implements fmt.Stringer.
func (m CallMode) String() string {
	switch m {
	case NestedRPC:
		return "nested-rpc"
	case EventRPC:
		return "event-rpc"
	case MQ:
		return "mq"
	default:
		return fmt.Sprintf("CallMode(%d)", int(m))
	}
}

// Step is one operation in a service handler. Handlers are slices of steps
// executed in order by a worker thread.
type Step interface{ isStep() }

// Compute burns CPU for a log-normally distributed duration with the given
// mean (milliseconds) and coefficient of variation. The burst runs on the
// replica's processor-sharing CPU, so co-located requests and CPU-limit
// throttling stretch it. CV = 0 selects the default of 0.3; a negative CV
// makes the burst deterministic (exactly MeanMs), which tests use to check
// timing invariants.
type Compute struct {
	MeanMs float64
	CV     float64
}

func (Compute) isStep() {}

// Dist returns the service-time distribution of the burst.
func (c Compute) Dist() stats.Dist {
	switch {
	case c.CV < 0:
		return stats.Deterministic{Value: c.MeanMs}
	case c.CV == 0:
		return stats.LogNormalFromMeanCV(c.MeanMs, 0.3)
	default:
		return stats.LogNormalFromMeanCV(c.MeanMs, c.CV)
	}
}

// Call invokes another service.
type Call struct {
	Service string
	Mode    CallMode
	// Class optionally overrides the request class used to pick the
	// downstream handler (and under which the downstream tier accounts the
	// request). Empty means "inherit the current class".
	Class string
	// ErrorProb, when > 0, is the probability the callee rejects this
	// logical call with an application error: the request is delivered but
	// its handler aborts immediately, so the error propagates exactly like
	// any other downstream failure (nested-RPC callers abort, event/MQ
	// branches fail their job) and client-side retries burn through — an
	// application-level error is not recovered by resending. Draws come from
	// a dedicated per-app RNG stream, so handlers without error rates are
	// byte-identical to builds without this field.
	ErrorProb float64
}

func (Call) isStep() {}

// Spawn enqueues (via MQ) a new measured job of a different request class at
// the target service. This models flows like "uploading a post triggers an
// asynchronous update-timeline job with its own SLA" (§VI).
type Spawn struct {
	Service string
	Class   string
}

func (Spawn) isStep() {}

// Par executes branches concurrently within the same worker (parallel
// outbound calls / parallel compute), completing when every branch does.
type Par struct {
	Branches [][]Step
}

func (Par) isStep() {}

// Seq is a convenience constructor for a handler body.
func Seq(steps ...Step) []Step { return steps }
