package services

import (
	"encoding/json"
	"fmt"
)

// Step serialisation: handlers are encoded as tagged step envelopes so that
// application topologies can be stored as JSON and loaded by the CLI tools.

// stepEnvelope is the wire form of a Step.
type stepEnvelope struct {
	Type string `json:"type"`
	// Compute fields.
	MeanMs float64 `json:"mean_ms,omitempty"`
	CV     float64 `json:"cv,omitempty"`
	// Call / Spawn fields.
	Service string `json:"service,omitempty"`
	Mode    string `json:"mode,omitempty"`
	Class   string `json:"class,omitempty"`
	// Par field.
	Branches [][]stepEnvelope `json:"branches,omitempty"`
}

func encodeSteps(steps []Step) ([]stepEnvelope, error) {
	out := make([]stepEnvelope, 0, len(steps))
	for _, st := range steps {
		switch s := st.(type) {
		case Compute:
			out = append(out, stepEnvelope{Type: "compute", MeanMs: s.MeanMs, CV: s.CV})
		case Call:
			out = append(out, stepEnvelope{Type: "call", Service: s.Service, Mode: s.Mode.String(), Class: s.Class})
		case Spawn:
			out = append(out, stepEnvelope{Type: "spawn", Service: s.Service, Class: s.Class})
		case Par:
			env := stepEnvelope{Type: "par"}
			for _, br := range s.Branches {
				eb, err := encodeSteps(br)
				if err != nil {
					return nil, err
				}
				env.Branches = append(env.Branches, eb)
			}
			out = append(out, env)
		default:
			return nil, fmt.Errorf("services: cannot encode step %T", st)
		}
	}
	return out, nil
}

func decodeSteps(envs []stepEnvelope) ([]Step, error) {
	out := make([]Step, 0, len(envs))
	for _, e := range envs {
		switch e.Type {
		case "compute":
			out = append(out, Compute{MeanMs: e.MeanMs, CV: e.CV})
		case "call":
			mode, err := parseCallMode(e.Mode)
			if err != nil {
				return nil, err
			}
			out = append(out, Call{Service: e.Service, Mode: mode, Class: e.Class})
		case "spawn":
			out = append(out, Spawn{Service: e.Service, Class: e.Class})
		case "par":
			p := Par{}
			for _, br := range e.Branches {
				db, err := decodeSteps(br)
				if err != nil {
					return nil, err
				}
				p.Branches = append(p.Branches, db)
			}
			out = append(out, p)
		default:
			return nil, fmt.Errorf("services: unknown step type %q", e.Type)
		}
	}
	return out, nil
}

func parseCallMode(s string) (CallMode, error) {
	switch s {
	case "nested-rpc", "":
		return NestedRPC, nil
	case "event-rpc":
		return EventRPC, nil
	case "mq":
		return MQ, nil
	default:
		return 0, fmt.Errorf("services: unknown call mode %q", s)
	}
}

// handlersWire is the serialised Handlers map.
type handlersWire map[string][]stepEnvelope

// serviceSpecWire mirrors ServiceSpec with encodable handlers.
type serviceSpecWire struct {
	Name            string       `json:"name"`
	Threads         int          `json:"threads,omitempty"`
	Daemons         int          `json:"daemons,omitempty"`
	CPUs            float64      `json:"cpus,omitempty"`
	InitialReplicas int          `json:"initial_replicas,omitempty"`
	MaxReplicas     int          `json:"max_replicas,omitempty"`
	StartupDelaySec float64      `json:"startup_delay_sec,omitempty"`
	IngressCostMs   float64      `json:"ingress_cost_ms,omitempty"`
	IngressWindow   int          `json:"ingress_window,omitempty"`
	Handlers        handlersWire `json:"handlers"`
}

type appSpecWire struct {
	Name     string            `json:"name"`
	Services []serviceSpecWire `json:"services"`
	Classes  []ClassSpec       `json:"classes"`
}

// MarshalJSON implements json.Marshaler for AppSpec.
func (a AppSpec) MarshalJSON() ([]byte, error) {
	wire := appSpecWire{Name: a.Name, Classes: a.Classes}
	for _, s := range a.Services {
		hw := handlersWire{}
		for class, steps := range s.Handlers {
			enc, err := encodeSteps(steps)
			if err != nil {
				return nil, err
			}
			hw[class] = enc
		}
		wire.Services = append(wire.Services, serviceSpecWire{
			Name: s.Name, Threads: s.Threads, Daemons: s.Daemons, CPUs: s.CPUs,
			InitialReplicas: s.InitialReplicas, MaxReplicas: s.MaxReplicas,
			StartupDelaySec: s.StartupDelaySec,
			IngressCostMs:   s.IngressCostMs, IngressWindow: s.IngressWindow,
			Handlers: hw,
		})
	}
	return json.Marshal(wire)
}

// UnmarshalJSON implements json.Unmarshaler for AppSpec.
func (a *AppSpec) UnmarshalJSON(data []byte) error {
	var wire appSpecWire
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	a.Name = wire.Name
	a.Classes = wire.Classes
	a.Services = nil
	for _, sw := range wire.Services {
		ss := ServiceSpec{
			Name: sw.Name, Threads: sw.Threads, Daemons: sw.Daemons, CPUs: sw.CPUs,
			InitialReplicas: sw.InitialReplicas, MaxReplicas: sw.MaxReplicas,
			StartupDelaySec: sw.StartupDelaySec,
			IngressCostMs:   sw.IngressCostMs, IngressWindow: sw.IngressWindow,
			Handlers: map[string][]Step{},
		}
		for class, envs := range sw.Handlers {
			steps, err := decodeSteps(envs)
			if err != nil {
				return fmt.Errorf("service %s class %s: %w", sw.Name, class, err)
			}
			ss.Handlers[class] = steps
		}
		a.Services = append(a.Services, ss)
	}
	return nil
}
