package services

import (
	"math"
	"testing"

	"ursa/internal/sim"
	"ursa/internal/trace"
)

// TestTracingIntegration checks that a traced nested-RPC request produces
// spans whose per-tier response times reconstruct the end-to-end latency.
func TestTracingIntegration(t *testing.T) {
	eng := sim.NewEngine(71)
	app := MustNewApp(eng, chainSpec(3, NestedRPC, 10))
	app.Tracer = trace.NewTracer(1, 0)
	app.Inject("req")
	eng.RunUntil(sim.Second)

	traces := app.Tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3 tiers", len(tr.Spans))
	}
	// Unloaded deterministic chain: each tier's response time is its 10ms
	// burst, and they sum to the 30ms end-to-end latency.
	sum := sim.Time(0)
	for _, s := range tr.Spans {
		if math.Abs(s.ResponseTime().Millis()-10) > 1e-6 {
			t.Fatalf("span %s response = %v", s.Service, s.ResponseTime())
		}
		sum += s.ResponseTime()
	}
	if sum != tr.Latency() {
		t.Fatalf("span sum %v != e2e %v", sum, tr.Latency())
	}
	if svc, _ := tr.CriticalService(); svc == "" {
		t.Fatal("no critical service")
	}
}

// TestTracingCapturesQueueing verifies queue wait shows up in spans.
func TestTracingCapturesQueueing(t *testing.T) {
	spec := oneTierSpec(1)
	spec.Services[0].Threads = 1
	spec.Services[0].CPUs = 1
	eng := sim.NewEngine(72)
	app := MustNewApp(eng, spec)
	app.Tracer = trace.NewTracer(1, 0)
	app.Inject("get")
	app.Inject("get") // waits for the single worker
	eng.RunUntil(sim.Second)
	traces := app.Tracer.Traces()
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	second := traces[1].Spans[0]
	if second.QueueWait() < 9*sim.Millisecond {
		t.Fatalf("second request queue wait = %v, want ≈10ms", second.QueueWait())
	}
}

// TestTracingSampling verifies only sampled jobs carry spans.
func TestTracingSampling(t *testing.T) {
	eng := sim.NewEngine(73)
	app := MustNewApp(eng, oneTierSpec(2))
	app.Tracer = trace.NewTracer(4, 0)
	for i := 0; i < 16; i++ {
		app.Inject("get")
	}
	eng.RunUntil(sim.Second)
	if got := len(app.Tracer.Traces()); got != 4 {
		t.Fatalf("sampled traces = %d, want 4", got)
	}
}
