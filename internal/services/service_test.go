package services

import (
	"math"
	"testing"

	"ursa/internal/sim"
	"ursa/internal/stats"
)

// oneTierSpec builds a single-service app: class "get" burns exactly 10 ms.
func oneTierSpec(replicas int) AppSpec {
	return AppSpec{
		Name: "one-tier",
		Services: []ServiceSpec{{
			Name:            "api",
			Threads:         4,
			CPUs:            4,
			InitialReplicas: replicas,
			Handlers: map[string][]Step{
				"get": Seq(Compute{MeanMs: 10, CV: -1}),
			},
		}},
		Classes: []ClassSpec{{Name: "get", Entry: "api", SLAPercentile: 99, SLAMillis: 100}},
	}
}

func TestSingleRequestLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, oneTierSpec(1))
	app.Inject("get")
	eng.RunUntil(sim.Second)
	lats := app.E2E.Class("get").All()
	if len(lats) != 1 {
		t.Fatalf("completed %d jobs, want 1", len(lats))
	}
	if math.Abs(lats[0]-10) > 1e-6 {
		t.Fatalf("latency = %vms, want 10ms", lats[0])
	}
	if app.CompletedJobs() != 1 || app.InjectedJobs != 1 {
		t.Fatalf("job accounting: injected=%d completed=%d", app.InjectedJobs, app.CompletedJobs())
	}
}

func TestLowLoadLatencyNearServiceTime(t *testing.T) {
	eng := sim.NewEngine(2)
	app := MustNewApp(eng, oneTierSpec(2))
	rng := eng.RNG("load")
	var arrive func()
	arrive = func() {
		app.Inject("get")
		eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/20), arrive) // 20 RPS
	}
	eng.Schedule(0, arrive)
	eng.RunUntil(2 * sim.Minute)
	lats := app.E2E.Class("get").All()
	p50 := stats.Percentile(lats, 50)
	if math.Abs(p50-10) > 1 {
		t.Fatalf("p50 at low load = %vms, want ≈10ms", p50)
	}
}

func TestQueueingLatencyGrowsWithLoad(t *testing.T) {
	// Capacity of 1 replica: 4 threads/4 cores and 10 ms bursts → 400 RPS.
	// Measure p99 at 40% vs 95% of capacity; queueing must inflate the tail.
	p99At := func(rps float64) float64 {
		eng := sim.NewEngine(3)
		app := MustNewApp(eng, oneTierSpec(1))
		rng := eng.RNG("load")
		var arrive func()
		arrive = func() {
			app.Inject("get")
			eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/rps), arrive)
		}
		eng.Schedule(0, arrive)
		eng.RunUntil(3 * sim.Minute)
		return stats.Percentile(app.E2E.Class("get").All(), 99)
	}
	lo, hi := p99At(160), p99At(380)
	if hi < lo*1.5 {
		t.Fatalf("p99 did not grow with load: %.2fms @160rps vs %.2fms @380rps", lo, hi)
	}
}

func TestMoreReplicasReduceLatency(t *testing.T) {
	run := func(replicas int) float64 {
		eng := sim.NewEngine(4)
		app := MustNewApp(eng, oneTierSpec(replicas))
		rng := eng.RNG("load")
		var arrive func()
		arrive = func() {
			app.Inject("get")
			eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/350), arrive)
		}
		eng.Schedule(0, arrive)
		eng.RunUntil(2 * sim.Minute)
		return stats.Percentile(app.E2E.Class("get").All(), 99)
	}
	one, four := run(1), run(4)
	if four > one*0.8 {
		t.Fatalf("scaling out did not help: 1 rep p99=%.2f, 4 rep p99=%.2f", one, four)
	}
}

func TestScaleOutAndIn(t *testing.T) {
	eng := sim.NewEngine(5)
	app := MustNewApp(eng, oneTierSpec(2))
	svc := app.Service("api")
	if svc.Replicas() != 2 || svc.AllocatedCPUs() != 8 {
		t.Fatalf("initial: replicas=%d cpus=%v", svc.Replicas(), svc.AllocatedCPUs())
	}
	svc.SetReplicas(5)
	if svc.Replicas() != 5 || svc.AllocatedCPUs() != 20 {
		t.Fatalf("after out: replicas=%d cpus=%v", svc.Replicas(), svc.AllocatedCPUs())
	}
	svc.SetReplicas(1)
	if svc.Replicas() != 1 {
		t.Fatalf("after in: replicas=%d", svc.Replicas())
	}
	// Idle draining replicas retire immediately → allocation drops.
	if svc.AllocatedCPUs() != 4 {
		t.Fatalf("after in: cpus=%v, want 4", svc.AllocatedCPUs())
	}
}

func TestScaleInDrainsGracefully(t *testing.T) {
	eng := sim.NewEngine(6)
	app := MustNewApp(eng, oneTierSpec(2))
	svc := app.Service("api")
	// Occupy workers with long bursts on both replicas.
	long := AppSpec{}
	_ = long
	for i := 0; i < 8; i++ {
		app.Inject("get")
	}
	svc.SetReplicas(1)
	// Draining replica still holds work → allocation not yet reduced.
	if svc.AllocatedCPUs() != 8 {
		t.Fatalf("draining replica released early: cpus=%v", svc.AllocatedCPUs())
	}
	eng.RunUntil(sim.Second)
	if svc.AllocatedCPUs() != 4 {
		t.Fatalf("drained replica not retired: cpus=%v", svc.AllocatedCPUs())
	}
	if app.CompletedJobs() != 8 {
		t.Fatalf("lost jobs during drain: %d/8", app.CompletedJobs())
	}
}

func TestScaleUpReactivatesDraining(t *testing.T) {
	eng := sim.NewEngine(7)
	app := MustNewApp(eng, oneTierSpec(3))
	svc := app.Service("api")
	for i := 0; i < 12; i++ {
		app.Inject("get") // keep replicas busy so draining lingers
	}
	svc.SetReplicas(1)
	svc.SetReplicas(3)
	if svc.Replicas() != 3 {
		t.Fatalf("replicas = %d, want 3 (reactivated)", svc.Replicas())
	}
	if svc.AllocatedCPUs() != 12 {
		t.Fatalf("cpus = %v, want 12", svc.AllocatedCPUs())
	}
}

func TestSetReplicasFloorsAtOne(t *testing.T) {
	eng := sim.NewEngine(8)
	app := MustNewApp(eng, oneTierSpec(2))
	svc := app.Service("api")
	svc.SetReplicas(0)
	if svc.Replicas() != 1 {
		t.Fatalf("replicas = %d, want 1", svc.Replicas())
	}
}

func TestMaxReplicasCap(t *testing.T) {
	spec := oneTierSpec(1)
	spec.Services[0].MaxReplicas = 3
	eng := sim.NewEngine(9)
	app := MustNewApp(eng, spec)
	svc := app.Service("api")
	svc.SetReplicas(10)
	if svc.Replicas() != 3 {
		t.Fatalf("replicas = %d, want cap 3", svc.Replicas())
	}
}

func TestStartupDelay(t *testing.T) {
	spec := oneTierSpec(1)
	spec.Services[0].StartupDelaySec = 5
	eng := sim.NewEngine(10)
	app := MustNewApp(eng, spec)
	svc := app.Service("api")
	svc.SetReplicas(2)
	if svc.Replicas() != 2 { // pending start counts toward desired
		t.Fatalf("replicas = %d, want 2 (incl. pending)", svc.Replicas())
	}
	if svc.AllocatedCPUs() != 4 { // but not yet allocated
		t.Fatalf("cpus = %v, want 4 before startup", svc.AllocatedCPUs())
	}
	eng.RunUntil(6 * sim.Second)
	if svc.AllocatedCPUs() != 8 {
		t.Fatalf("cpus = %v, want 8 after startup", svc.AllocatedCPUs())
	}
}

func TestPriorityOrdering(t *testing.T) {
	// One replica, one thread: saturate with low-priority work, then inject
	// one high-priority request — it must overtake all queued low-priority.
	spec := AppSpec{
		Name: "prio",
		Services: []ServiceSpec{{
			Name: "worker", Threads: 1, CPUs: 1, InitialReplicas: 1,
			Handlers: map[string][]Step{
				"hi": Seq(Compute{MeanMs: 10, CV: -1}),
				"lo": Seq(Compute{MeanMs: 10, CV: -1}),
			},
		}},
		Classes: []ClassSpec{
			{Name: "hi", Entry: "worker", Priority: 0},
			{Name: "lo", Entry: "worker", Priority: 1},
		},
	}
	eng := sim.NewEngine(11)
	app := MustNewApp(eng, spec)
	for i := 0; i < 20; i++ {
		app.Inject("lo")
	}
	app.Inject("hi")
	eng.RunUntil(sim.Minute)
	// hi arrives last but runs right after the single in-flight lo request:
	// latency ≈ 10ms (remaining) + 10ms own ≈ 20ms, far below 210ms FIFO.
	hi := app.E2E.Class("hi").All()
	if len(hi) != 1 || hi[0] > 25 {
		t.Fatalf("high-priority latency = %v, want ≈20ms", hi)
	}
}

func TestArrivalCountersPerClass(t *testing.T) {
	eng := sim.NewEngine(12)
	app := MustNewApp(eng, oneTierSpec(1))
	for i := 0; i < 30; i++ {
		app.Inject("get")
	}
	eng.RunUntil(sim.Minute)
	svc := app.Service("api")
	if got := svc.Arrivals["get"].Total(0, sim.Minute); got != 30 {
		t.Fatalf("class arrivals = %v", got)
	}
	if got := svc.ArrivalsAll.Total(0, sim.Minute); got != 30 {
		t.Fatalf("total arrivals = %v", got)
	}
}

func TestUtilizationSampling(t *testing.T) {
	// 1 replica × 4 CPUs; 100 RPS × 10ms = 1 core-second/second → util 25%.
	eng := sim.NewEngine(13)
	app := MustNewApp(eng, oneTierSpec(1))
	rng := eng.RNG("load")
	var arrive func()
	arrive = func() {
		app.Inject("get")
		eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/100), arrive)
	}
	eng.Schedule(0, arrive)
	eng.RunUntil(5 * sim.Minute)
	samples := app.Service("api").UtilSamples.All()
	if len(samples) < 4 {
		t.Fatalf("got %d utilisation samples", len(samples))
	}
	avg := stats.Mean(samples)
	if math.Abs(avg-0.25) > 0.05 {
		t.Fatalf("avg utilisation = %v, want ≈0.25", avg)
	}
}

func TestCPUFactorThrottlingInflatesLatency(t *testing.T) {
	eng := sim.NewEngine(14)
	app := MustNewApp(eng, oneTierSpec(1))
	svc := app.Service("api")
	rng := eng.RNG("load")
	var arrive func()
	arrive = func() {
		app.Inject("get")
		eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/100), arrive)
	}
	eng.Schedule(0, arrive)
	eng.RunUntil(2 * sim.Minute)
	before := app.E2E.Class("get").PercentileBetween(0, 2*sim.Minute, 99)
	svc.SetCPUFactor(0.25) // 4 cores → 1 core; demand 1 cs/s ≈ saturation
	eng.RunUntil(4 * sim.Minute)
	after := app.E2E.Class("get").PercentileBetween(2*sim.Minute, 4*sim.Minute, 99)
	if after < before*2 {
		t.Fatalf("throttling had no effect: before p99=%.2f after p99=%.2f", before, after)
	}
}

func TestAllocIntegral(t *testing.T) {
	eng := sim.NewEngine(15)
	app := MustNewApp(eng, oneTierSpec(2)) // 8 CPUs allocated
	eng.RunUntil(10 * sim.Second)
	got := app.AllocIntegralCPUSeconds()
	if math.Abs(got-80) > 1e-6 {
		t.Fatalf("alloc integral = %v, want 80 cpu·s", got)
	}
	if app.TotalAllocatedCPUs() != 8 {
		t.Fatalf("total allocated = %v", app.TotalAllocatedCPUs())
	}
}
