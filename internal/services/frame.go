package services

import (
	"fmt"

	"ursa/internal/sim"
	"ursa/internal/trace"
)

// UseReferenceSteps, when set before apps are built, routes every handler
// through the retained closure-per-hop reference interpreter
// (runStepsReference) instead of the pooled step-frame machine. The two paths
// are pinned byte-identical by TestFramesMatchReference and the experiment-
// level identity tests; the flag exists so those tests (and A/B benchmarks)
// can run the original implementation without forking the package.
var UseReferenceSteps bool

// frame is one execution of one handler step list: the fused replacement for
// the reference interpreter's closure chain. Where the reference path builds
// a fresh `step` closure, a fresh `finish` closure and a fresh continuation
// closure per hop, a frame carries the program counter (i), the downstream-
// wait accumulator and the completion state in one pooled struct, and every
// engine continuation is a method value bound once per frame lifetime — so in
// steady state a request executes its whole send→queue→serve→reply chain
// without allocating.
//
// Lifetime: frames are recycled through App.framePool. A frame is released
// only when it has completed AND refs — the number of outstanding callbacks
// that can still reach it (a CPU burst completion, a nested-RPC response, an
// ingress admission) — has dropped to zero. A frame whose callback died with
// a crashed replica (cpuSched drops bursts on kill) keeps a positive refs
// count forever and is simply garbage-collected; it never re-enters the pool,
// so a recycled frame can never be reached by a stale continuation.
type frame struct {
	app   *App
	req   *Request
	steps []Step
	i     int // program counter into steps

	// Root-frame completion state (what the reference path's per-request
	// finish closure captured).
	svc     *Service
	rep     *Replica
	started sim.Time

	// wait accumulates time blocked on nested-RPC responses for this frame's
	// step list; waitAcc is where it is charged (&wait for root frames and
	// Par branches — branch waits fold into the parent as max, not sum).
	wait    sim.Time
	waitAcc *sim.Time

	// Par coordination: a parent frame waits for parRemaining branch frames,
	// folding their waits into parMax.
	parent       *frame
	parRemaining int
	parMax       sim.Time

	// In-flight fast-path nested RPC: the outstanding request and the
	// response-wait clock start (stamped by accepted, read by rpcDone). t0
	// reset/overwrite ordering reproduces the reference path's per-call t0
	// exactly — see DESIGN.md §4f.
	rpcReq *Request
	t0     sim.Time

	refs     int
	finished bool

	// Bound once when the frame is first allocated; reused across pool
	// cycles. Taking a method value inline would allocate per use.
	advanceFn  func()
	rpcDoneFn  func()
	acceptedFn func()
	finishFn   func()
}

// getFrame pops a recycled frame or builds one with its method values bound.
func (a *App) getFrame() *frame {
	n := len(a.framePool)
	if n == 0 {
		f := &frame{app: a}
		f.advanceFn = f.advance
		f.rpcDoneFn = f.rpcDone
		f.acceptedFn = f.accepted
		f.finishFn = f.finish
		return f
	}
	f := a.framePool[n-1]
	a.framePool[n-1] = nil
	a.framePool = a.framePool[:n-1]
	return f
}

// putFrame zeroes per-use state (keeping the bound method values) and
// returns the frame to the pool.
func (a *App) putFrame(f *frame) {
	f.req = nil
	f.steps = nil
	f.i = 0
	f.svc = nil
	f.rep = nil
	f.started = 0
	f.wait = 0
	f.waitAcc = nil
	f.parent = nil
	f.parRemaining = 0
	f.parMax = 0
	f.rpcReq = nil
	f.t0 = 0
	f.finished = false
	a.framePool = append(a.framePool, f)
}

// getRequest pops a recycled Request (zeroed) or allocates one.
func (a *App) getRequest() *Request {
	n := len(a.reqPool)
	if n == 0 {
		return &Request{}
	}
	r := a.reqPool[n-1]
	a.reqPool[n-1] = nil
	a.reqPool = a.reqPool[:n-1]
	return r
}

// putRequest recycles a request. Only requests that settled cleanly are ever
// recycled (see frame.finish): a failed or abandoned request may still be
// referenced by a crashed replica's bookkeeping, a late resilience timeout,
// or a caller that gave up on it — exactly the objects the reference path
// leaves to the garbage collector, and so do we.
func (a *App) putRequest(r *Request) {
	*r = Request{}
	a.reqPool = append(a.reqPool, r)
}

// start begins executing steps for req on the frame's bound worker.
func (f *frame) start() { f.exec() }

// exec runs steps from the current program counter until the frame blocks on
// an engine callback or completes. It is the loop form of the reference
// interpreter's recursive `step` closure; synchronous steps (Spawn, MQ) fall
// through without touching the engine.
func (f *frame) exec() {
	a := f.app
	req := f.req
	for {
		if f.i == len(f.steps) || req.Failed {
			f.complete()
			return
		}
		switch st := f.steps[f.i].(type) {
		case Compute:
			ms := st.Dist().Sample(req.svc.rng)
			f.i++
			f.refs++
			req.replica.cpu.Run(ms/1e3, f.advanceFn)
			return
		case Call:
			target := a.mustService(st.Service)
			class := req.Class
			if st.Class != "" {
				class = st.Class
			}
			// One error draw per logical call (not per delivery attempt): an
			// application error is deterministic under retries.
			fail := st.ErrorProb > 0 && a.drawError(st.ErrorProb)
			switch st.Mode {
			case NestedRPC:
				f.i++
				if a.res == nil && a.Net == nil {
					// The response-wait clock starts at admission by the
					// downstream ingress; send-blocking before that charges
					// the caller's own response time (backpressure).
					rpc := a.getRequest()
					rpc.Job = req.Job
					rpc.Class = class
					rpc.Priority = req.Priority
					rpc.Failed = fail
					rpc.onDone = f.rpcDoneFn
					f.rpcReq = rpc
					f.t0 = 0
					f.refs += 2 // rpcDone and accepted each hold the frame
					target.Send(rpc, f.acceptedFn)
				} else {
					f.refs++
					a.callNested(req, target, class, fail, f.waitAcc, f.advanceFn)
				}
				return
			case EventRPC:
				// Block the worker until a daemon slot is granted, then
				// respond immediately while the daemon performs the send
				// (possibly blocking on the downstream window) and awaits
				// the response.
				f.i++
				f.refs++
				req.replica.acquireDaemon(func(release func()) {
					req.Job.add()
					if a.res == nil && a.Net == nil {
						rpc := a.getRequest()
						rpc.Job = req.Job
						rpc.Class = class
						rpc.Priority = req.Priority
						rpc.Failed = fail
						rpc.onDone = func() {
							release()
							rpc.jobBranchDone()
						}
						target.Send(rpc, nil)
					} else {
						a.sendEvent(req, target, class, fail, release)
					}
					f.refs--
					f.exec()
				})
				return
			case MQ:
				req.Job.add()
				mq := a.getRequest()
				mq.Job = req.Job
				mq.Class = class
				mq.Priority = req.Priority
				mq.Failed = fail
				mq.doneBranch = true
				target.Enqueue(mq)
				f.i++
			default:
				panic(fmt.Sprintf("services: unknown call mode %v", st.Mode))
			}
		case Spawn:
			target := a.mustService(st.Service)
			a.injectAt(target, st.Class)
			f.i++
		case Par:
			if len(st.Branches) == 0 {
				f.i++
				continue
			}
			f.i++
			f.parRemaining = len(st.Branches)
			f.parMax = 0
			f.refs += len(st.Branches)
			for _, br := range st.Branches {
				c := a.getFrame()
				c.req = req
				c.steps = br
				c.parent = f
				c.waitAcc = &c.wait
				c.exec()
			}
			return
		default:
			panic(fmt.Sprintf("services: unknown step type %T", st))
		}
	}
}

// advance resumes the frame after an engine callback (CPU burst completion,
// daemon grant, resilient-call outcome).
func (f *frame) advance() {
	f.refs--
	f.exec()
}

// rpcDone resumes the frame after a fast-path nested-RPC response: propagate
// a terminal failure, charge the response wait, continue.
func (f *frame) rpcDone() {
	f.refs--
	if f.rpcReq.Failed {
		f.req.Failed = true
	}
	*f.waitAcc += f.app.Eng.Now() - f.t0
	f.exec()
}

// accepted fires when the downstream ingress admits the fast-path nested
// RPC: start the response-wait clock. Writing t0 after a synchronous
// completion already consumed it is harmless (and matches the reference
// path, whose per-call t0 also went unread in that interleaving).
func (f *frame) accepted() {
	f.refs--
	f.t0 = f.app.Eng.Now()
	f.maybeRelease()
}

// complete fires when the step list ran out (or the request terminally
// failed): fold a Par branch into its parent, or finish the root request.
// Each frame completes at most once — it has at most one outstanding
// continuation at any time, and a crash force-completes the request through
// req.finish without touching the frame.
func (f *frame) complete() {
	if f.finished {
		return
	}
	f.finished = true
	if p := f.parent; p != nil {
		w := f.wait
		f.maybeRelease()
		p.childDone(w)
		return
	}
	f.finish()
	f.maybeRelease()
}

// childDone folds one completed Par branch into this frame; the last branch
// charges the longest branch wait (branches overlap in time) and resumes.
func (f *frame) childDone(w sim.Time) {
	f.refs--
	if w > f.parMax {
		f.parMax = w
	}
	f.parRemaining--
	if f.parRemaining == 0 {
		*f.waitAcc += f.parMax
		f.exec()
	}
}

// finish completes the root request: metrics, span, worker release, onDone —
// the fused form of the reference path's per-request finish closure. It is
// stored in req.finish so a crash can force-complete in-flight requests; the
// settled guard makes the eventual frame completion a no-op after that.
func (f *frame) finish() {
	req := f.req
	if req.settled {
		return // a crash already force-completed this request
	}
	req.settled = true
	s := f.svc
	rep := f.rep
	rep.untrack(req)
	now := f.app.Eng.Now()
	if !req.Failed {
		resp := now - req.arrival - f.wait
		if resp < 0 {
			resp = 0
		}
		s.RespTime.Add(now, resp.Millis())
		s.RespByClass.Record(now, req.Class, resp.Millis())
	}
	if tr := f.app.Tracer; tr != nil && req.Job != nil && req.Job.traceID != 0 {
		tr.AddSpan(req.Job.traceID, trace.Span{
			Service:        s.spec.Name,
			Class:          req.Class,
			Enqueued:       req.arrival,
			Started:        f.started,
			Finished:       now,
			DownstreamWait: f.wait,
			Abandoned:      req.Failed || req.abandoned,
		})
	}
	rep.busyWorkers--
	rep.maybeRetire()
	s.pump()
	req.runOnDone()
	if !req.Failed && !req.abandoned {
		f.app.putRequest(req)
	}
}

// maybeRelease returns the frame to the pool once it has completed and no
// outstanding callback can reach it anymore.
func (f *frame) maybeRelease() {
	if f.finished && f.refs == 0 {
		f.app.putFrame(f)
	}
}
