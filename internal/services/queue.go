package services

// reqQueue is the pending-request queue of a service: strict priority order
// (lower Priority value first), FIFO within a priority. For MQ-connected
// services this *is* the message queue — high-priority messages are always
// drained before low-priority ones (§VI, video processing pipeline).
//
// The heap is typed (no container/heap): pushing through the stdlib's
// any-valued interface boxes one queued{} per enqueue, which on the hot path
// is an allocation per request per tier. Pop order is identical either way —
// (Priority, seq) is a strict total order, so every correct binary heap pops
// the same sequence.
type reqQueue struct {
	h   []queued
	seq uint64
}

type queued struct {
	req *Request
	seq uint64
}

func queuedLess(a, b *queued) bool {
	if a.req.Priority != b.req.Priority {
		return a.req.Priority < b.req.Priority
	}
	return a.seq < b.seq
}

func (q *reqQueue) push(r *Request) {
	q.seq++
	q.h = append(q.h, queued{req: r, seq: q.seq})
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !queuedLess(&q.h[i], &q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *reqQueue) pop() *Request {
	n := len(q.h)
	if n == 0 {
		return nil
	}
	r := q.h[0].req
	n--
	q.h[0] = q.h[n]
	q.h[n] = queued{}
	q.h = q.h[:n]
	i := 0
	for {
		l, rc := 2*i+1, 2*i+2
		best := i
		if l < n && queuedLess(&q.h[l], &q.h[best]) {
			best = l
		}
		if rc < n && queuedLess(&q.h[rc], &q.h[best]) {
			best = rc
		}
		if best == i {
			break
		}
		q.h[i], q.h[best] = q.h[best], q.h[i]
		i = best
	}
	return r
}

func (q *reqQueue) len() int { return len(q.h) }

// lenPriority counts queued requests with exactly the given priority.
func (q *reqQueue) lenPriority(p int) int {
	n := 0
	for _, it := range q.h {
		if it.req.Priority == p {
			n++
		}
	}
	return n
}

// sendQueue is the FIFO of senders blocked on a service's ingress
// flow-control window. A head index replaces the per-admission element
// shift, so draining a burst of n blocked senders is O(n) total instead of
// O(n²); the slice is compacted once the dead prefix crosses half the
// backing array, keeping per-operation cost amortised O(1).
type sendQueue struct {
	items []pendingSend
	head  int
}

func (q *sendQueue) push(p pendingSend) {
	q.items = append(q.items, p)
}

func (q *sendQueue) pop() pendingSend {
	p := q.items[q.head]
	q.items[q.head] = pendingSend{} // release the request and callback for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= 64 && q.head > len(q.items)/2 {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

func (q *sendQueue) len() int { return len(q.items) - q.head }
