package services

import "container/heap"

// reqQueue is the pending-request queue of a service: strict priority order
// (lower Priority value first), FIFO within a priority. For MQ-connected
// services this *is* the message queue — high-priority messages are always
// drained before low-priority ones (§VI, video processing pipeline).
type reqQueue struct {
	h   reqHeap
	seq uint64
}

type queued struct {
	req *Request
	seq uint64
}

type reqHeap []queued

func (h reqHeap) Len() int { return len(h) }
func (h reqHeap) Less(i, j int) bool {
	if h[i].req.Priority != h[j].req.Priority {
		return h[i].req.Priority < h[j].req.Priority
	}
	return h[i].seq < h[j].seq
}
func (h reqHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *reqHeap) Push(x any)   { *h = append(*h, x.(queued)) }
func (h *reqHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = queued{}
	*h = old[:n-1]
	return it
}

func (q *reqQueue) push(r *Request) {
	q.seq++
	heap.Push(&q.h, queued{req: r, seq: q.seq})
}

func (q *reqQueue) pop() *Request {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(queued).req
}

func (q *reqQueue) len() int { return len(q.h) }

// lenPriority counts queued requests with exactly the given priority.
func (q *reqQueue) lenPriority(p int) int {
	n := 0
	for _, it := range q.h {
		if it.req.Priority == p {
			n++
		}
	}
	return n
}

// sendQueue is the FIFO of senders blocked on a service's ingress
// flow-control window. A head index replaces the per-admission element
// shift, so draining a burst of n blocked senders is O(n) total instead of
// O(n²); the slice is compacted once the dead prefix crosses half the
// backing array, keeping per-operation cost amortised O(1).
type sendQueue struct {
	items []pendingSend
	head  int
}

func (q *sendQueue) push(p pendingSend) {
	q.items = append(q.items, p)
}

func (q *sendQueue) pop() pendingSend {
	p := q.items[q.head]
	q.items[q.head] = pendingSend{} // release the request and callback for GC
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= 64 && q.head > len(q.items)/2 {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return p
}

func (q *sendQueue) len() int { return len(q.items) - q.head }
