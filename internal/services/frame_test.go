package services

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"ursa/internal/sim"
)

// kitchenSinkSpec exercises every step mode the frame machine implements:
// Compute (stochastic and deterministic), fast-path nested RPC with and
// without an ingress window, event RPC through a bounded daemon pool, MQ,
// Spawn of a derived class, and nested Par.
func kitchenSinkSpec() AppSpec {
	return AppSpec{
		Name: "kitchen-sink",
		Services: []ServiceSpec{
			{
				Name: "front", Threads: 16, CPUs: 4, InitialReplicas: 2,
				Handlers: map[string][]Step{
					"mixed": Seq(
						Compute{MeanMs: 2, CV: 0.5},
						Par{Branches: [][]Step{
							Seq(Call{Service: "mid", Mode: NestedRPC}),
							Seq(Compute{MeanMs: 1, CV: -1}, Call{Service: "gated", Mode: NestedRPC, Class: "side"}),
						}},
						Call{Service: "events", Mode: EventRPC, Class: "evt"},
						Call{Service: "mq", Mode: MQ, Class: "msg"},
						Compute{MeanMs: 0.5, CV: 1},
					),
					"quick": Seq(Compute{MeanMs: 1, CV: 0.3}, Spawn{Service: "mq", Class: "derived"}),
				},
			},
			{
				Name: "mid", Threads: 16, CPUs: 4, InitialReplicas: 2, Daemons: 2,
				Handlers: map[string][]Step{
					"mixed": Seq(Compute{MeanMs: 3, CV: 0.7}, Call{Service: "leaf", Mode: NestedRPC}),
				},
			},
			{
				Name: "gated", Threads: 8, CPUs: 2, InitialReplicas: 1,
				IngressCostMs: 0.1, IngressWindow: 4,
				Handlers: map[string][]Step{
					"side": Seq(Compute{MeanMs: 2, CV: 0.4}),
				},
			},
			{
				Name: "leaf", Threads: 16, CPUs: 2, InitialReplicas: 2,
				Handlers: map[string][]Step{
					"mixed": Seq(Compute{MeanMs: 1.5, CV: 0.6}),
				},
			},
			{
				Name: "events", Threads: 8, CPUs: 2, InitialReplicas: 1, Daemons: 2,
				Handlers: map[string][]Step{
					"evt": Seq(Compute{MeanMs: 4, CV: 0.5}),
				},
			},
			{
				Name: "mq", Threads: 4, CPUs: 2, InitialReplicas: 1,
				Handlers: map[string][]Step{
					"msg":     Seq(Compute{MeanMs: 2, CV: 0.5}),
					"derived": Seq(Compute{MeanMs: 1, CV: -1}),
				},
			},
		},
		Classes: []ClassSpec{
			{Name: "mixed", Entry: "front", SLAPercentile: 99, SLAMillis: 200},
			{Name: "quick", Entry: "front", Priority: 1, SLAPercentile: 95, SLAMillis: 50},
			{Name: "side", Entry: "gated", Derived: true, SLAPercentile: 99, SLAMillis: 100},
			{Name: "evt", Entry: "events", Derived: true, SLAPercentile: 99, SLAMillis: 100},
			{Name: "msg", Entry: "mq", Derived: true, SLAPercentile: 99, SLAMillis: 500},
			{Name: "derived", Entry: "mq", Derived: true, SLAPercentile: 99, SLAMillis: 500},
		},
	}
}

// frameScenario runs the kitchen-sink app for 5 simulated minutes under a
// deterministic Poisson load and returns a behaviour fingerprint: event
// counts, job accounting, and per-class / per-tier latency quantiles. faults
// optionally enables resilience + network faults and a mid-run replica
// crash.
func frameScenario(seed int64, reference, faults bool) string {
	prev := UseReferenceSteps
	UseReferenceSteps = reference
	defer func() { UseReferenceSteps = prev }()

	eng := sim.NewEngine(seed)
	app := MustNewApp(eng, kitchenSinkSpec())
	if faults {
		app.SetResilience(ResiliencePolicy{TimeoutMs: 100, MaxRetries: 2, BackoffBaseMs: 5, BackoffMaxMs: 20, JitterFrac: 0.2})
		app.Net = &delayNet{delays: []sim.Time{2 * sim.Millisecond, 0, 5 * sim.Millisecond, 0, 0, 3 * sim.Millisecond}}
		eng.Schedule(2*sim.Minute, func() { app.Service("mid").CrashReplica(0) })
		eng.Schedule(2*sim.Minute+30*sim.Second, func() { app.Service("mid").SetReplicas(2) })
	}
	// Deterministic open-loop arrivals, independent of the workload package
	// (this pins services-layer behaviour in isolation).
	rng := rand.New(rand.NewSource(seed * 7919))
	var arrive func()
	arrive = func() {
		if rng.Float64() < 0.3 {
			app.Inject("quick")
		} else {
			app.Inject("mixed")
		}
		eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/80), arrive)
	}
	eng.Schedule(0, arrive)
	eng.RunUntil(5 * sim.Minute)

	var sb strings.Builder
	fmt.Fprintf(&sb, "fired=%d now=%d injected=%d completed=%d failed=%d unsched=%d\n",
		eng.Fired(), eng.Now(), app.InjectedJobs, app.CompletedJobs(), app.FailedJobs(), app.UnschedulableEvents)
	for _, class := range app.E2E.Classes() {
		w := app.E2E.Class(class)
		fmt.Fprintf(&sb, "e2e %s n=%d p50=%.9f p99=%.9f\n", class,
			w.Count(0, 5*sim.Minute),
			w.PercentileBetween(0, 5*sim.Minute, 50),
			w.PercentileBetween(0, 5*sim.Minute, 99))
	}
	for _, name := range app.ServiceNames() {
		s := app.Service(name)
		fmt.Fprintf(&sb, "svc %s n=%d p95=%.9f q=%d arr=%.1f\n", name,
			s.RespTime.Count(0, 5*sim.Minute),
			s.RespTime.PercentileBetween(0, 5*sim.Minute, 95),
			s.QueueLen(),
			s.ArrivalsAll.Total(0, 5*sim.Minute))
	}
	return sb.String()
}

// TestFramesMatchReference pins the pooled step-frame machine byte-identical
// to the closure-per-hop reference interpreter, across seeds, with and
// without resilience + network faults + a mid-run crash.
func TestFramesMatchReference(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed equivalence sweep")
	}
	for seed := int64(1); seed <= 12; seed++ {
		for _, faults := range []bool{false, true} {
			ref := frameScenario(seed, true, faults)
			fused := frameScenario(seed, false, faults)
			if ref != fused {
				t.Fatalf("seed %d faults=%v: fused frames diverge from reference\nref:\n%s\nfused:\n%s",
					seed, faults, ref, fused)
			}
		}
	}
}

// TestFrameAllocsBelowReference pins the point of the fusion: the frame
// machine must allocate strictly less per request than the reference
// interpreter on the same scenario (the reference pays a step closure, a
// finish closure and a continuation closure per hop; frames and requests are
// pool-recycled).
func TestFrameAllocsBelowReference(t *testing.T) {
	measure := func(reference bool) float64 {
		prev := UseReferenceSteps
		UseReferenceSteps = reference
		defer func() { UseReferenceSteps = prev }()
		eng := sim.NewEngine(3)
		app := MustNewApp(eng, kitchenSinkSpec())
		rng := rand.New(rand.NewSource(99))
		var arrive func()
		arrive = func() {
			app.Inject("mixed")
			eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/60), arrive)
		}
		eng.Schedule(0, arrive)
		eng.RunUntil(1 * sim.Minute) // warm pools and metric windows
		before := app.InjectedJobs
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		eng.RunUntil(3 * sim.Minute)
		runtime.ReadMemStats(&m1)
		jobs := app.InjectedJobs - before
		if jobs < 100 {
			t.Fatalf("only %d jobs in measured window", jobs)
		}
		return float64(m1.Mallocs-m0.Mallocs) / float64(jobs)
	}
	ref := measure(true)
	fused := measure(false)
	t.Logf("allocs/job: reference=%.2f fused=%.2f", ref, fused)
	if fused >= ref-4 {
		t.Fatalf("fused path allocates %.2f/job vs reference %.2f — expected ≥4 saved", fused, ref)
	}
}
