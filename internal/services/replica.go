package services

import "ursa/internal/cluster"

// Replica is one container instance of a service: a worker thread pool, a
// daemon pool for event-driven continuations, and a processor-sharing CPU.
type Replica struct {
	svc       *Service
	cpu       *cpuSched
	placement cluster.Placement

	threads     int
	busyWorkers int

	daemons     int
	busyDaemons int
	daemonWait  []func(release func())

	// inflight tracks requests whose handlers are running on this replica,
	// so a crash can fail them; ingressInflight counts admission bursts on
	// this replica's CPU, so a crash can return their flow-control slots.
	inflight        []*Request
	ingressInflight int

	// warmFactor derates the CPU limit while a restarted replica warms up
	// (1 = fully warm).
	warmFactor float64

	draining bool
	retired  bool
	dead     bool
}

func newReplica(s *Service) *Replica {
	cores := s.spec.CPUs * s.cpuFactor
	return &Replica{
		svc:        s,
		cpu:        newCPUSched(s.app.Eng, cores),
		threads:    s.spec.Threads,
		daemons:    s.spec.Daemons,
		warmFactor: 1,
	}
}

// applyCores re-derives the CPU limit from the service throttle factor, the
// warm-up derating, and the resident node's interference factor.
func (r *Replica) applyCores() {
	if r.dead {
		return
	}
	cores := r.svc.spec.CPUs * r.svc.cpuFactor * r.warmFactor
	if n := r.placement.Node; n != nil {
		cores *= n.CPUFactor()
	}
	r.cpu.SetCores(cores)
}

// freeWorkers reports available worker slots.
func (r *Replica) freeWorkers() int { return r.threads - r.busyWorkers }

// track registers a request whose handler runs on this replica.
func (r *Replica) track(req *Request) {
	req.slot = len(r.inflight)
	r.inflight = append(r.inflight, req)
}

// untrack removes a tracked request in O(1) by swapping the last entry into
// its slot.
func (r *Replica) untrack(req *Request) {
	i := req.slot
	if i < 0 || i >= len(r.inflight) || r.inflight[i] != req {
		return
	}
	last := len(r.inflight) - 1
	r.inflight[i] = r.inflight[last]
	r.inflight[i].slot = i
	r.inflight[last] = nil
	r.inflight = r.inflight[:last]
	req.slot = -1
}

// acquireDaemon grants a daemon slot to fn (possibly later, when a slot
// frees). fn receives a release function that must be called exactly once.
// While a handler waits here its worker thread stays blocked — the source of
// the milder event-driven backpressure.
func (r *Replica) acquireDaemon(fn func(release func())) {
	if r.busyDaemons < r.daemons {
		r.busyDaemons++
		fn(r.releaseDaemonFn())
		return
	}
	r.daemonWait = append(r.daemonWait, fn)
}

func (r *Replica) releaseDaemonFn() func() {
	released := false
	return func() {
		if released {
			panic("services: daemon slot released twice")
		}
		released = true
		r.releaseDaemon()
	}
}

func (r *Replica) releaseDaemon() {
	if r.dead {
		// A branch outlived its crashed replica; the slot and any waiting
		// handlers died with the container.
		return
	}
	if len(r.daemonWait) > 0 {
		next := r.daemonWait[0]
		copy(r.daemonWait, r.daemonWait[1:])
		r.daemonWait = r.daemonWait[:len(r.daemonWait)-1]
		next(r.releaseDaemonFn())
		return
	}
	r.busyDaemons--
	r.maybeRetire()
}

// idle reports whether the replica holds no work at all.
func (r *Replica) idle() bool {
	return r.busyWorkers == 0 && r.busyDaemons == 0 && len(r.daemonWait) == 0
}

// maybeRetire finalises a draining replica once it is fully idle.
func (r *Replica) maybeRetire() {
	if !r.draining || r.retired || !r.idle() {
		return
	}
	r.retired = true
	r.svc.finishRetire(r)
}
