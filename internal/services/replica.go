package services

import "ursa/internal/cluster"

// Replica is one container instance of a service: a worker thread pool, a
// daemon pool for event-driven continuations, and a processor-sharing CPU.
type Replica struct {
	svc       *Service
	cpu       *cpuSched
	placement cluster.Placement

	threads     int
	busyWorkers int

	daemons     int
	busyDaemons int
	daemonWait  []func(release func())

	draining bool
	retired  bool
}

func newReplica(s *Service) *Replica {
	cores := s.spec.CPUs * s.cpuFactor
	return &Replica{
		svc:     s,
		cpu:     newCPUSched(s.app.Eng, cores),
		threads: s.spec.Threads,
		daemons: s.spec.Daemons,
	}
}

// freeWorkers reports available worker slots.
func (r *Replica) freeWorkers() int { return r.threads - r.busyWorkers }

// acquireDaemon grants a daemon slot to fn (possibly later, when a slot
// frees). fn receives a release function that must be called exactly once.
// While a handler waits here its worker thread stays blocked — the source of
// the milder event-driven backpressure.
func (r *Replica) acquireDaemon(fn func(release func())) {
	if r.busyDaemons < r.daemons {
		r.busyDaemons++
		fn(r.releaseDaemonFn())
		return
	}
	r.daemonWait = append(r.daemonWait, fn)
}

func (r *Replica) releaseDaemonFn() func() {
	released := false
	return func() {
		if released {
			panic("services: daemon slot released twice")
		}
		released = true
		r.releaseDaemon()
	}
}

func (r *Replica) releaseDaemon() {
	if len(r.daemonWait) > 0 {
		next := r.daemonWait[0]
		copy(r.daemonWait, r.daemonWait[1:])
		r.daemonWait = r.daemonWait[:len(r.daemonWait)-1]
		next(r.releaseDaemonFn())
		return
	}
	r.busyDaemons--
	r.maybeRetire()
}

// idle reports whether the replica holds no work at all.
func (r *Replica) idle() bool {
	return r.busyWorkers == 0 && r.busyDaemons == 0 && len(r.daemonWait) == 0
}

// maybeRetire finalises a draining replica once it is fully idle.
func (r *Replica) maybeRetire() {
	if !r.draining || r.retired || !r.idle() {
		return
	}
	r.retired = true
	r.svc.finishRetire(r)
}
