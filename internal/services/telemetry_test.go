package services

import (
	"math"
	"testing"

	"ursa/internal/sim"
)

// runTelemetryApp drives oneTierSpec at a fixed load for the given duration
// under a telemetry config, and returns the app.
func runTelemetryApp(tc TelemetryConfig, minutes int) *App {
	eng := sim.NewEngine(77)
	app, err := NewAppTelemetry(eng, oneTierSpec(2), 0, nil, tc)
	if err != nil {
		panic(err)
	}
	rng := eng.RNG("load")
	var arrive func()
	arrive = func() {
		app.Inject("get")
		eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/100), arrive) // 100 RPS
	}
	eng.Schedule(0, arrive)
	eng.RunUntil(sim.Time(minutes) * sim.Minute)
	return app
}

// TestTelemetrySketchMatchesExact: a sketch-backed app reports the same
// latency percentiles as an exact-mode app driven by the identical seeded
// run, within the configured relative-error bound (with slack for the
// interpolation the exact path applies between order statistics).
func TestTelemetrySketchMatchesExact(t *testing.T) {
	const alpha = 0.01
	exact := runTelemetryApp(TelemetryConfig{}, 5)
	sk := runTelemetryApp(TelemetryConfig{SketchAlpha: alpha}, 5)
	if !sk.E2E.Class("get").Sketched() || sk.Service("api").RespTime.Alpha() != alpha {
		t.Fatal("telemetry config did not reach the collectors")
	}
	horizon := 5 * sim.Minute
	if e, g := exact.E2E.Class("get").Count(0, horizon), sk.E2E.Class("get").Count(0, horizon); e != g {
		t.Fatalf("sample counts diverged: exact %d, sketch %d", e, g)
	}
	for _, p := range []float64{50, 90, 99} {
		e := exact.E2E.Class("get").PercentileBetween(0, horizon, p)
		g := sk.E2E.Class("get").PercentileBetween(0, horizon, p)
		if math.Abs(g-e) > 0.03*e+1e-9 {
			t.Fatalf("p%v: sketch %v vs exact %v", p, g, e)
		}
	}
}

// TestTelemetryRetentionBoundsMemory: with a rolling retention horizon the
// telemetry footprint of a longer run stays within a small factor of a
// short run's, while the unbounded exact default keeps growing.
func TestTelemetryRetentionBoundsMemory(t *testing.T) {
	tc := TelemetryConfig{SketchAlpha: 0.01, Retention: 5 * sim.Minute}
	short := runTelemetryApp(tc, 6).TelemetryFootprintBytes()
	long := runTelemetryApp(tc, 24).TelemetryFootprintBytes()
	if long > 2*short {
		t.Fatalf("retained footprint grew with run length: %d -> %d bytes", short, long)
	}

	unboundedShort := runTelemetryApp(TelemetryConfig{}, 6).TelemetryFootprintBytes()
	unboundedLong := runTelemetryApp(TelemetryConfig{}, 24).TelemetryFootprintBytes()
	if unboundedLong < 2*unboundedShort {
		t.Fatalf("exact-mode footprint unexpectedly flat: %d -> %d bytes (test premise broken)",
			unboundedShort, unboundedLong)
	}

	// Retention must actually drop old windows: nothing older than the
	// horizon survives the last trim tick.
	app := runTelemetryApp(tc, 24)
	if n := app.E2E.Class("get").Count(0, 18*sim.Minute); n != 0 {
		t.Fatalf("%d samples retained past the retention horizon", n)
	}
	if n := app.E2E.Class("get").Count(20*sim.Minute, 24*sim.Minute); n == 0 {
		t.Fatal("recent windows were trimmed too")
	}
}

// TestTelemetryMaxWindowsCap: the hard per-collector cap holds even without
// a retention horizon.
func TestTelemetryMaxWindowsCap(t *testing.T) {
	app := runTelemetryApp(TelemetryConfig{SketchAlpha: 0.02, MaxWindows: 3}, 10)
	if got := app.E2E.Class("get").NumWindows(); got > 3 {
		t.Fatalf("E2E windows = %d, cap 3", got)
	}
	if got := app.Service("api").ArrivalsAll.Total(0, sim.Hour); got > 3*100*60*2 {
		t.Fatalf("counter retained too much: %v", got)
	}
}
