package services

import (
	"fmt"
	"math/rand"

	"ursa/internal/cluster"
	"ursa/internal/metrics"
	"ursa/internal/sim"
	"ursa/internal/trace"
)

// Service is a running microservice: a pending-request queue shared by its
// replicas (standing in for the cluster load balancer, and for MQ-connected
// services literally the message queue), plus the service's metrics.
type Service struct {
	app  *App
	spec ServiceSpec
	rng  *rand.Rand

	queue    reqQueue
	replicas []*Replica // active
	draining []*Replica
	rrNext   int

	pendingStarts int
	cpuFactor     float64 // throttling injection multiplier (1 = nominal)

	// Ingress flow-control state (active when spec.IngressCostMs > 0).
	ingressBusy int
	ingressWait sendQueue
	ingressRR   int

	// RespTime records the per-tier response time of every request handled
	// by the service: (completion − arrival) − nested-RPC downstream wait,
	// exactly the S0−R0 metric of Fig. 2. Milliseconds.
	RespTime *metrics.Windowed
	// RespByClass is RespTime split per request class.
	RespByClass *metrics.LatencyRecorder
	// Arrivals counts arriving requests per class (the per-class service
	// load the LPR controller divides by the threshold).
	Arrivals map[string]*metrics.CounterSeries
	// ArrivalsAll counts all arrivals.
	ArrivalsAll *metrics.CounterSeries
	// UtilSamples holds one CPU-utilisation sample (0..1) per metrics
	// window, written by the app's sampling ticker.
	UtilSamples *metrics.Windowed
	// AllocGauge tracks currently allocated CPUs across live replicas
	// (active + draining), for the Fig. 12 allocation accounting.
	AllocGauge *metrics.Gauge
	// RPCAttempts / RPCErrors / RPCRetries count resilient-client activity
	// against this service as the callee: delivery attempts, failures
	// (timeouts, drops, aborted handlers), and scheduled retries.
	RPCAttempts *metrics.CounterSeries
	RPCErrors   *metrics.CounterSeries
	RPCRetries  *metrics.CounterSeries

	lastBusy, lastCap       float64
	retiredBusy, retiredCap float64
}

func newService(app *App, spec ServiceSpec) *Service {
	spec.applyDefaults()
	s := &Service{
		app:         app,
		spec:        spec,
		rng:         app.Eng.RNG("svc/" + spec.Name),
		cpuFactor:   1,
		RespTime:    app.newWindowed(),
		RespByClass: app.newLatencyRecorder(),
		Arrivals:    map[string]*metrics.CounterSeries{},
		ArrivalsAll: app.newCounterSeries(),
		UtilSamples: metrics.NewWindowed(app.window),
		AllocGauge:  metrics.NewGauge(app.Eng.Now(), 0),
		RPCAttempts: app.newCounterSeries(),
		RPCErrors:   app.newCounterSeries(),
		RPCRetries:  app.newCounterSeries(),
	}
	s.UtilSamples.SetMaxWindows(app.telemetry.MaxWindows)
	for i := 0; i < spec.InitialReplicas; i++ {
		s.addReplica()
	}
	return s
}

// Name reports the service name.
func (s *Service) Name() string { return s.spec.Name }

// Spec returns a copy of the (defaulted) service specification.
func (s *Service) Spec() ServiceSpec { return s.spec }

// Replicas reports the active replica count (excluding draining ones).
func (s *Service) Replicas() int { return len(s.replicas) + s.pendingStarts }

// AllocatedCPUs reports CPUs currently held (active + draining replicas).
func (s *Service) AllocatedCPUs() float64 { return s.AllocGauge.Value() }

// QueueLen reports the number of requests waiting for a worker.
func (s *Service) QueueLen() int { return s.queue.len() }

// QueueLenPriority reports queued requests of the given priority.
func (s *Service) QueueLenPriority(p int) int { return s.queue.lenPriority(p) }

// addReplica creates and activates a new replica immediately. With a bound
// cluster it first places the replica on a node; placement failure leaves
// the service at its current size and counts as an unschedulable event.
func (s *Service) addReplica() bool {
	r := newReplica(s)
	if cl := s.app.Cluster; cl != nil {
		var p cluster.Placement
		var err error
		if pl := s.app.Placer; pl != nil {
			p, err = pl.PlaceReplica(s.spec.Name, s.spec.CPUs)
		} else {
			p, err = cl.Place(s.spec.CPUs)
		}
		if err != nil {
			s.app.UnschedulableEvents++
			return false
		}
		r.placement = p
		if p.Node.CPUFactor() != 1 {
			r.applyCores() // land on a degraded node at its effective rate
		}
	}
	s.replicas = append(s.replicas, r)
	s.updateAlloc()
	s.drainIngress() // window capacity grew
	s.pump()
	return true
}

// AddReplicaWarm activates one new replica that starts cold: its CPU runs at
// factor × nominal for the warmup duration (cache fill, JIT, connection-pool
// ramp), then restores. The fault injector's crash-restart path uses this.
func (s *Service) AddReplicaWarm(factor float64, warmup sim.Time) bool {
	if !s.addReplica() {
		return false
	}
	r := s.replicas[len(s.replicas)-1]
	if factor > 0 && factor < 1 && warmup > 0 {
		r.warmFactor = factor
		r.applyCores()
		s.app.Eng.Schedule(warmup, func() {
			r.warmFactor = 1
			r.applyCores()
		})
	}
	return true
}

func (s *Service) updateAlloc() {
	live := float64(len(s.replicas)+len(s.draining)) * s.spec.CPUs
	s.AllocGauge.Set(s.app.Eng.Now(), live)
}

// SetReplicas scales the service to n active replicas. Scale-out honours
// StartupDelaySec; scale-in drains replicas gracefully (no new work, retire
// when idle). Draining replicas are reactivated before new ones are created.
func (s *Service) SetReplicas(n int) {
	if n < 1 {
		n = 1
	}
	if s.spec.MaxReplicas > 0 && n > s.spec.MaxReplicas {
		n = s.spec.MaxReplicas
	}
	cur := len(s.replicas) + s.pendingStarts
	switch {
	case n > cur:
		need := n - cur
		// Reactivate draining replicas first.
		for need > 0 && len(s.draining) > 0 {
			r := s.draining[len(s.draining)-1]
			s.draining = s.draining[:len(s.draining)-1]
			r.draining = false
			s.replicas = append(s.replicas, r)
			need--
		}
		for i := 0; i < need; i++ {
			if s.spec.StartupDelaySec > 0 {
				s.pendingStarts++
				s.app.Eng.Schedule(sim.Seconds2Time(s.spec.StartupDelaySec), func() {
					s.pendingStarts--
					s.addReplica()
				})
			} else if !s.addReplica() {
				break // cluster out of capacity
			}
		}
		s.updateAlloc()
		s.pump()
	case n < cur:
		drop := cur - n
		// Prefer cancelling pending starts implicitly by draining active
		// replicas; pending starts still arrive but the next SetReplicas
		// call (controllers run periodically) corrects any overshoot.
		for drop > 0 && len(s.replicas) > 0 {
			last := s.replicas[len(s.replicas)-1]
			s.replicas = s.replicas[:len(s.replicas)-1]
			last.draining = true
			s.draining = append(s.draining, last)
			last.maybeRetire()
			drop--
		}
		if s.rrNext >= len(s.replicas) {
			s.rrNext = 0
		}
		if s.ingressRR >= len(s.replicas) {
			s.ingressRR = 0
		}
		s.updateAlloc()
	}
}

// finishRetire removes a fully drained replica and preserves its CPU
// accounting integrals.
func (s *Service) finishRetire(r *Replica) {
	for i, d := range s.draining {
		if d == r {
			s.draining = append(s.draining[:i], s.draining[i+1:]...)
			break
		}
	}
	busy, cap := r.cpu.snapshot()
	s.retiredBusy += busy
	s.retiredCap += cap
	if cl := s.app.Cluster; cl != nil {
		cl.Release(r.placement)
	}
	s.updateAlloc()
}

// SetCPUFactor throttles (or restores) the CPU limit of every replica to
// factor × nominal CPUs — the Fig. 2 anomaly-injection knob.
func (s *Service) SetCPUFactor(factor float64) {
	if factor <= 0 {
		panic("services: SetCPUFactor needs factor > 0")
	}
	s.cpuFactor = factor
	for _, r := range s.replicas {
		r.applyCores()
	}
	for _, r := range s.draining {
		r.applyCores()
	}
}

// CrashReplica crash-kills the idx-th active replica (no drain; in-flight
// requests fail). It reports whether a replica was killed, and notifies the
// app's OnEviction hook so a manager can re-place the lost capacity.
func (s *Service) CrashReplica(idx int) bool {
	if idx < 0 || idx >= len(s.replicas) {
		return false
	}
	s.crashReplica(s.replicas[idx])
	s.app.notifyEviction([]Eviction{{Service: s.spec.Name, Replicas: 1}})
	return true
}

// evictOn crash-kills every replica resident on node n (active and
// draining), returning the placements that were released.
func (s *Service) evictOn(n *cluster.Node) []cluster.Placement {
	var victims []*Replica
	for _, r := range s.replicas {
		if r.placement.Node == n {
			victims = append(victims, r)
		}
	}
	for _, r := range s.draining {
		if r.placement.Node == n {
			victims = append(victims, r)
		}
	}
	var released []cluster.Placement
	for _, r := range victims {
		released = append(released, s.crashReplica(r))
	}
	return released
}

// crashReplica kills r instantly — the simulation analogue of a container
// dying with its node. Work on its CPU is dropped, in-flight requests fail
// (the connection reset a caller observes), requests still queued at the
// service level survive for the remaining replicas, and the placement is
// released back to the cluster.
func (s *Service) crashReplica(r *Replica) cluster.Placement {
	for i, a := range s.replicas {
		if a == r {
			s.replicas = append(s.replicas[:i], s.replicas[i+1:]...)
			break
		}
	}
	for i, d := range s.draining {
		if d == r {
			s.draining = append(s.draining[:i], s.draining[i+1:]...)
			break
		}
	}
	if s.rrNext >= len(s.replicas) {
		s.rrNext = 0
	}
	if s.ingressRR >= len(s.replicas) {
		s.ingressRR = 0
	}
	r.dead = true
	r.retired = true // maybeRetire must never re-run retirement accounting
	r.draining = false
	r.cpu.kill()
	busy, cap := r.cpu.snapshot()
	s.retiredBusy += busy
	s.retiredCap += cap
	// Admission bursts running on this replica died with its CPU; return
	// their flow-control slots so the ingress window doesn't leak.
	s.ingressBusy -= r.ingressInflight
	r.ingressInflight = 0
	// Fail in-flight handlers. Iterate over a snapshot: finish untracks.
	victims := append([]*Request(nil), r.inflight...)
	for _, q := range victims {
		if q.settled {
			continue
		}
		q.Failed = true
		q.abandoned = true
		q.finish()
	}
	released := r.placement
	if cl := s.app.Cluster; cl != nil {
		cl.Release(r.placement)
	}
	r.placement = cluster.Placement{}
	s.updateAlloc()
	s.pump()
	s.drainIngress()
	return released
}

// Availability reports the fraction of resilient RPC attempts against this
// service that succeeded over [from, to): 1 − errors/attempts. 1 when the
// service saw no resilient attempts.
func (s *Service) Availability(from, to sim.Time) float64 {
	att := s.RPCAttempts.Total(from, to)
	if att <= 0 {
		return 1
	}
	return 1 - s.RPCErrors.Total(from, to)/att
}

type pendingSend struct {
	req      *Request
	accepted func()
}

// Send delivers an RPC request through the service's ingress stage. If the
// flow-control window is full, the request (and the caller's worker or
// daemon thread with it) waits until the receiver admits it; admission then
// costs IngressCostMs of the receiver's CPU. accepted (optional) fires at
// admission — callers use it to start their "waiting for the downstream
// response" clock, so send-blocking is charged to the *sender's* measured
// response time, which is precisely the RPC backpressure of §III.
// With IngressCostMs == 0 the request is enqueued immediately.
func (s *Service) Send(r *Request, accepted func()) {
	if s.spec.IngressCostMs <= 0 {
		s.Enqueue(r)
		if accepted != nil {
			accepted()
		}
		return
	}
	if s.ingressBusy < s.ingressCapacity() && s.hasIngressReplica() {
		s.admit(r, accepted)
		return
	}
	s.ingressWait.push(pendingSend{req: r, accepted: accepted})
}

// ingressCapacity is the total flow-control window across active replicas.
func (s *Service) ingressCapacity() int {
	n := len(s.replicas)
	if n < 1 {
		n = 1
	}
	return s.spec.IngressWindow * n
}

// IngressQueueLen reports senders currently blocked on the window.
func (s *Service) IngressQueueLen() int { return s.ingressWait.len() }

func (s *Service) admit(r *Request, accepted func()) {
	s.ingressBusy++
	rep := s.pickIngressReplica()
	rep.ingressInflight++
	rep.cpu.Run(s.spec.IngressCostMs/1e3, func() {
		rep.ingressInflight--
		s.ingressBusy--
		s.Enqueue(r)
		if accepted != nil {
			accepted()
		}
		s.drainIngress()
	})
}

func (s *Service) pickIngressReplica() *Replica {
	// Round-robin over active replicas, independent of worker placement:
	// use the current cursor, then advance — so replica 0 takes its fair
	// share starting from the very first admission after any scale event.
	if len(s.replicas) == 0 {
		// All replicas draining (transient during scale-in): use one of
		// them; scaling code keeps at least one replica live.
		return s.draining[0]
	}
	idx := s.ingressRR
	if idx >= len(s.replicas) {
		idx = 0
	}
	s.ingressRR = (idx + 1) % len(s.replicas)
	return s.replicas[idx]
}

func (s *Service) drainIngress() {
	for s.ingressWait.len() > 0 && s.ingressBusy < s.ingressCapacity() && s.hasIngressReplica() {
		next := s.ingressWait.pop()
		s.admit(next.req, next.accepted)
	}
}

// hasIngressReplica reports whether any replica — active or draining — can
// run ingress work. False only after a crash wiped the service out; ordinary
// scale-in always keeps at least one live replica, so in fault-free runs
// this never gates admission.
func (s *Service) hasIngressReplica() bool {
	return len(s.replicas) > 0 || len(s.draining) > 0
}

// Enqueue delivers a request to the service.
func (s *Service) Enqueue(r *Request) {
	now := s.app.Eng.Now()
	r.arrival = now
	r.svc = s
	cs, ok := s.Arrivals[r.Class]
	if !ok {
		cs = s.app.newCounterSeries()
		s.Arrivals[r.Class] = cs
	}
	cs.Inc(now, 1)
	s.ArrivalsAll.Inc(now, 1)
	s.queue.push(r)
	s.pump()
}

// pump assigns queued requests to free workers, round-robin over replicas.
func (s *Service) pump() {
	for s.queue.len() > 0 {
		rep := s.pickReplica()
		if rep == nil {
			return
		}
		req := s.queue.pop()
		s.start(rep, req)
	}
}

func (s *Service) pickReplica() *Replica {
	n := len(s.replicas)
	if n == 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		idx := (s.rrNext + i) % n
		if s.replicas[idx].freeWorkers() > 0 {
			s.rrNext = (idx + 1) % n
			return s.replicas[idx]
		}
	}
	return nil
}

// start runs a request's handler on a worker of rep.
func (s *Service) start(rep *Replica, req *Request) {
	steps, ok := s.spec.Handlers[req.Class]
	if !ok {
		panic(fmt.Sprintf("services: %s has no handler for class %q", s.spec.Name, req.Class))
	}
	rep.busyWorkers++
	req.replica = rep
	rep.track(req)
	if !UseReferenceSteps {
		f := s.app.getFrame()
		f.req = req
		f.steps = steps
		f.svc = s
		f.rep = rep
		f.started = s.app.Eng.Now()
		f.waitAcc = &f.wait
		req.finish = f.finishFn
		f.start()
		return
	}
	started := s.app.Eng.Now()
	var wait sim.Time
	req.finish = func() {
		if req.settled {
			return // a crash already force-completed this request
		}
		req.settled = true
		rep.untrack(req)
		now := s.app.Eng.Now()
		if !req.Failed {
			resp := now - req.arrival - wait
			if resp < 0 {
				resp = 0
			}
			s.RespTime.Add(now, resp.Millis())
			s.RespByClass.Record(now, req.Class, resp.Millis())
		}
		if tr := s.app.Tracer; tr != nil && req.Job != nil && req.Job.traceID != 0 {
			tr.AddSpan(req.Job.traceID, trace.Span{
				Service:        s.spec.Name,
				Class:          req.Class,
				Enqueued:       req.arrival,
				Started:        started,
				Finished:       now,
				DownstreamWait: wait,
				Abandoned:      req.Failed || req.abandoned,
			})
		}
		rep.busyWorkers--
		rep.maybeRetire()
		s.pump()
		req.runOnDone()
	}
	s.app.runStepsReference(req, steps, &wait, req.finish)
}

// CPUAccounting reports the service's cumulative CPU accounting: busy
// core-seconds actually consumed and capacity core-seconds provisioned,
// summed over all replicas past and present. Utilisation over an interval is
// Δbusy/Δcapacity between two snapshots.
func (s *Service) CPUAccounting() (busy, capacity float64) {
	busy, capacity = s.retiredBusy, s.retiredCap
	for _, r := range s.replicas {
		b, c := r.cpu.snapshot()
		busy += b
		capacity += c
	}
	for _, r := range s.draining {
		b, c := r.cpu.snapshot()
		busy += b
		capacity += c
	}
	return busy, capacity
}

// sampleUtilization computes the service-wide utilisation since the previous
// call (busy core-seconds over capacity core-seconds), and resets the
// accounting window. The app's sampling ticker calls this once per window.
func (s *Service) sampleUtilization() float64 {
	busy, capacity := s.CPUAccounting()
	db, dc := busy-s.lastBusy, capacity-s.lastCap
	s.lastBusy, s.lastCap = busy, capacity
	if dc <= 0 {
		return 0
	}
	return db / dc
}
