package services

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"ursa/internal/sim"
)

func TestAppSpecJSONRoundTrip(t *testing.T) {
	spec := AppSpec{
		Name: "roundtrip",
		Services: []ServiceSpec{
			{
				Name: "front", Threads: 128, Daemons: 16, CPUs: 2,
				InitialReplicas: 3, MaxReplicas: 10, StartupDelaySec: 2.5,
				IngressCostMs: 0.2, IngressWindow: 32,
				Handlers: map[string][]Step{
					"go": Seq(
						Compute{MeanMs: 1.5, CV: 0.4},
						Par{Branches: [][]Step{
							{Call{Service: "b1", Mode: NestedRPC}},
							{Call{Service: "b2", Mode: EventRPC, Class: "alt"}},
						}},
						Spawn{Service: "w", Class: "bg"},
						Call{Service: "w", Mode: MQ},
					),
				},
			},
			{Name: "b1", Handlers: map[string][]Step{"go": Seq(Compute{MeanMs: 2})}},
			{Name: "b2", Handlers: map[string][]Step{"alt": Seq(Compute{MeanMs: 3})}},
			{Name: "w", Handlers: map[string][]Step{
				"go": Seq(Compute{MeanMs: 4}),
				"bg": Seq(Compute{MeanMs: 5}),
			}},
		},
		Classes: []ClassSpec{
			{Name: "go", Entry: "front", SLAPercentile: 99, SLAMillis: 100},
			{Name: "alt", Derived: true, SLAPercentile: 99, SLAMillis: 100},
			{Name: "bg", Entry: "w", Derived: true, SLAPercentile: 50, SLAMillis: 200},
		},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var got AppSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spec, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", spec, got)
	}
	// The decoded spec must also be deployable.
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded spec invalid: %v", err)
	}
	eng := sim.NewEngine(1)
	app := MustNewApp(eng, got)
	app.Inject("go")
	eng.RunUntil(sim.Second)
	if app.CompletedJobs() == 0 {
		t.Fatal("decoded spec did not run")
	}
}

func TestUnknownStepTypeRejected(t *testing.T) {
	data := []byte(`{"name":"x","services":[{"name":"s","handlers":{"c":[{"type":"teleport"}]}}],"classes":[]}`)
	var got AppSpec
	err := json.Unmarshal(data, &got)
	if err == nil || !strings.Contains(err.Error(), "unknown step type") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownCallModeRejected(t *testing.T) {
	data := []byte(`{"name":"x","services":[{"name":"s","handlers":{"c":[{"type":"call","service":"s","mode":"carrier-pigeon"}]}}],"classes":[]}`)
	var got AppSpec
	err := json.Unmarshal(data, &got)
	if err == nil || !strings.Contains(err.Error(), "unknown call mode") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyModeDefaultsToNested(t *testing.T) {
	data := []byte(`{"name":"x","services":[{"name":"s","handlers":{"c":[{"type":"call","service":"t"}]}},{"name":"t","handlers":{"c":[{"type":"compute","mean_ms":1}]}}],"classes":[{"Name":"c","Entry":"s","SLAPercentile":99,"SLAMillis":10}]}`)
	var got AppSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	call := got.Services[0].Handlers["c"][0].(Call)
	if call.Mode != NestedRPC {
		t.Fatalf("mode = %v", call.Mode)
	}
}
