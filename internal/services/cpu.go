package services

import (
	"math"

	"ursa/internal/metrics"
	"ursa/internal/sim"
)

// burst is one CPU burst executing on a processor-sharing scheduler.
type burst struct {
	remaining float64 // core-seconds of work left
	done      func()
}

// cpuSched is an egalitarian processor-sharing CPU with a configurable core
// count (the container CPU limit). Each active burst progresses at rate
// min(1, cores/active) cores — a thread can use at most one core, and when
// more threads are runnable than cores, everyone slows down proportionally.
// This is how CFS-quota throttling and CPU interference manifest in the
// simulation.
type cpuSched struct {
	eng    *sim.Engine
	cores  float64
	active []*burst
	last   sim.Time
	next   *sim.Event

	// busy integrates min(active, cores): actual core-seconds consumed.
	busy *metrics.Gauge
	// capacity integrates the configured core count, so utilisation over a
	// window is busyΔ/capacityΔ even across limit changes.
	capacity *metrics.Gauge
}

func newCPUSched(eng *sim.Engine, cores float64) *cpuSched {
	if cores <= 0 {
		panic("services: CPU scheduler needs cores > 0")
	}
	return &cpuSched{
		eng:      eng,
		cores:    cores,
		last:     eng.Now(),
		busy:     metrics.NewGauge(eng.Now(), 0),
		capacity: metrics.NewGauge(eng.Now(), cores),
	}
}

// rate is the per-burst execution rate in cores.
func (c *cpuSched) rate() float64 {
	n := float64(len(c.active))
	if n == 0 {
		return 0
	}
	if n <= c.cores {
		return 1
	}
	return c.cores / n
}

// workEps is the smallest meaningful amount of CPU work: one nanosecond at
// one core. Residues below it are rounding noise from the float/Time
// conversions and count as complete — without this, a burst can be left with
// ~1e-10 core-seconds and respawn zero-delay completion events forever.
const workEps = 1e-9

// advance applies elapsed progress to all active bursts.
func (c *cpuSched) advance() {
	now := c.eng.Now()
	elapsed := (now - c.last).Seconds()
	if elapsed > 0 {
		r := c.rate()
		for _, b := range c.active {
			b.remaining -= elapsed * r
			if b.remaining < workEps {
				b.remaining = 0
			}
		}
	}
	c.last = now
}

// replan records the new busy level and schedules the next completion.
func (c *cpuSched) replan() {
	n := float64(len(c.active))
	used := n
	if used > c.cores {
		used = c.cores
	}
	c.busy.Set(c.eng.Now(), used)
	if c.next != nil {
		c.next.Cancel()
		c.next = nil
	}
	if len(c.active) == 0 {
		return
	}
	min := c.active[0].remaining
	for _, b := range c.active[1:] {
		if b.remaining < min {
			min = b.remaining
		}
	}
	// Round the delay up to a whole nanosecond so the completion event
	// never fires fractionally early (which would leave sub-eps residues).
	delay := sim.Time(math.Ceil(min / c.rate() * 1e9))
	c.next = c.eng.Schedule(delay, c.onCompletion)
}

// onCompletion fires when the earliest burst(s) finish.
func (c *cpuSched) onCompletion() {
	c.next = nil
	c.advance()
	var doneFns []func()
	kept := c.active[:0]
	for _, b := range c.active {
		if b.remaining <= workEps {
			doneFns = append(doneFns, b.done)
		} else {
			kept = append(kept, b)
		}
	}
	c.active = kept
	c.replan()
	for _, fn := range doneFns {
		fn()
	}
}

// Run submits a CPU burst of `seconds` core-seconds; done fires when it has
// received that much CPU time.
func (c *cpuSched) Run(seconds float64, done func()) {
	if seconds <= 0 {
		// Zero-length work completes on the next event boundary to keep
		// callback ordering sane.
		c.eng.Schedule(0, done)
		return
	}
	c.advance()
	c.active = append(c.active, &burst{remaining: seconds, done: done})
	c.replan()
}

// SetCores changes the CPU limit (throttling injection, vertical scaling).
func (c *cpuSched) SetCores(cores float64) {
	if cores <= 0 {
		panic("services: SetCores needs cores > 0")
	}
	c.advance()
	c.cores = cores
	c.capacity.Set(c.eng.Now(), cores)
	c.replan()
}

// Cores reports the current CPU limit.
func (c *cpuSched) Cores() float64 { return c.cores }

// snapshot returns the busy and capacity integrals at the current time, for
// windowed utilisation computation.
func (c *cpuSched) snapshot() (busy, capacity float64) {
	now := c.eng.Now()
	return c.busy.IntegralUntil(now), c.capacity.IntegralUntil(now)
}
