package services

import (
	"math"

	"ursa/internal/metrics"
	"ursa/internal/sim"
)

// burst is one CPU burst executing on the processor-sharing scheduler. Under
// virtual-time scheduling a burst is tagged once, on arrival, with its
// virtual finish time; it is never touched again until it completes.
type burst struct {
	tag  float64 // virtual finish time: vArr + work (heap key)
	vArr float64 // virtual clock reading when the burst arrived
	work float64 // core-seconds requested at arrival
	seq  uint64  // arrival order: FIFO tie-break and completion-callback order
	done func()
}

// cpuSched is an egalitarian processor-sharing CPU with a configurable core
// count (the container CPU limit). Each active burst progresses at rate
// min(1, cores/active) cores — a thread can use at most one core, and when
// more threads are runnable than cores, everyone slows down proportionally.
// This is how CFS-quota throttling and CPU interference manifest in the
// simulation.
//
// The implementation is virtual-time processor sharing: a virtual clock vnow
// advances at the per-burst rate (rate() virtual seconds per real second), so
// a burst arriving with w core-seconds of work finishes when vnow reaches
// vArr+w. Bursts sit in a min-heap keyed by that finish tag, making arrival,
// completion and SetCores O(log n) in the number of active bursts — the old
// implementation rescanned every burst on every event, O(n²) per busy
// period. The virtual clock is rebased to zero whenever the scheduler goes
// idle, which keeps float magnitudes small (sums stay within one busy
// period) and preserves the nanosecond-exact completion times of the
// reference egalitarian scanner (see TestCPUSchedMatchesReference).
type cpuSched struct {
	eng   *sim.Engine
	cores float64
	heap  []burst // min-heap by (tag, seq)
	vnow  float64 // virtual clock: per-burst service received this busy period
	seq   uint64
	last  sim.Time
	next  sim.Event
	dead  bool // killed by a crash: drops all work, accepts none

	// completeFn is the bound onCompletion callback, created once: taking the
	// method value inline in replan would allocate a fresh closure per event.
	completeFn func()

	// doneBuf collects completing bursts per event, reused across events.
	doneBuf []burst

	// busy integrates min(active, cores): actual core-seconds consumed.
	busy *metrics.Gauge
	// capacity integrates the configured core count, so utilisation over a
	// window is busyΔ/capacityΔ even across limit changes.
	capacity *metrics.Gauge
}

func newCPUSched(eng *sim.Engine, cores float64) *cpuSched {
	if cores <= 0 {
		panic("services: CPU scheduler needs cores > 0")
	}
	c := &cpuSched{
		eng:      eng,
		cores:    cores,
		last:     eng.Now(),
		busy:     metrics.NewGauge(eng.Now(), 0),
		capacity: metrics.NewGauge(eng.Now(), cores),
	}
	c.completeFn = c.onCompletion
	return c
}

// rate is the per-burst execution rate in cores.
func (c *cpuSched) rate() float64 {
	n := float64(len(c.heap))
	if n == 0 {
		return 0
	}
	if n <= c.cores {
		return 1
	}
	return c.cores / n
}

// workEps is the smallest meaningful amount of CPU work: one nanosecond at
// one core. Residues below it are rounding noise from the float/Time
// conversions and count as complete — without this, a burst can be left with
// ~1e-10 core-seconds and respawn zero-delay completion events forever.
const workEps = 1e-9

// advance moves the virtual clock forward by the elapsed real time times the
// current per-burst rate. This is the whole per-event cost of progressing
// every active burst: each burst's remaining work is implicitly
// work - (vnow - vArr), so one float add updates all of them.
func (c *cpuSched) advance() {
	now := c.eng.Now()
	if elapsed := (now - c.last).Seconds(); elapsed > 0 {
		d := elapsed * c.rate()
		c.vnow += d
	}
	c.last = now
}

// remaining reports a burst's outstanding work in core-seconds, mirroring
// the reference scanner's clamping: a burst that has made virtual progress
// and dropped below workEps counts as exactly zero (the scanner zeroed such
// residues on every advance), while a burst with no virtual progress since
// arrival still holds its exact submitted work, however small.
func (c *cpuSched) remaining(b *burst) float64 {
	if c.vnow == b.vArr {
		return b.work
	}
	rem := b.work - (c.vnow - b.vArr)
	if rem < workEps {
		return 0
	}
	return rem
}

// replan records the new busy level and schedules the next completion.
func (c *cpuSched) replan() {
	n := float64(len(c.heap))
	used := n
	if used > c.cores {
		used = c.cores
	}
	c.busy.Set(c.eng.Now(), used)
	c.next.Cancel()
	c.next = sim.Event{}
	if len(c.heap) == 0 {
		// Idle: rebase the virtual clock so float magnitudes never grow
		// beyond one busy period. No live tags reference the old origin.
		c.vnow = 0
		return
	}
	min := c.remaining(&c.heap[0])
	// Round the delay up to a whole nanosecond so the completion event
	// never fires fractionally early (which would leave sub-eps residues).
	delay := sim.Time(math.Ceil(min / c.rate() * 1e9))
	c.next = c.eng.Schedule(delay, c.completeFn)
}

// onCompletion fires when the earliest burst(s) finish.
func (c *cpuSched) onCompletion() {
	c.next = sim.Event{}
	c.advance()
	c.doneBuf = c.doneBuf[:0]
	for len(c.heap) > 0 {
		top := &c.heap[0]
		if top.work-(c.vnow-top.vArr) > workEps {
			break
		}
		c.doneBuf = append(c.doneBuf, *top)
		c.popBurst()
	}
	// Completion callbacks fire in arrival order, matching the reference
	// scanner's submission-order sweep. Heap pops arrive in (tag, seq)
	// order; an insertion sort on seq restores arrival order without
	// allocating (completion batches are nearly always tiny).
	for i := 1; i < len(c.doneBuf); i++ {
		for j := i; j > 0 && c.doneBuf[j].seq < c.doneBuf[j-1].seq; j-- {
			c.doneBuf[j], c.doneBuf[j-1] = c.doneBuf[j-1], c.doneBuf[j]
		}
	}
	c.replan()
	for i := range c.doneBuf {
		fn := c.doneBuf[i].done
		c.doneBuf[i].done = nil // release the closure promptly
		fn()
	}
}

// Run submits a CPU burst of `seconds` core-seconds; done fires when it has
// received that much CPU time.
func (c *cpuSched) Run(seconds float64, done func()) {
	if c.dead {
		// The replica crashed: the burst (and its continuation) dies with
		// it. Callers recover via timeouts, never via this callback.
		return
	}
	if seconds <= 0 {
		// Zero-length work completes on the next event boundary to keep
		// callback ordering sane.
		c.eng.Schedule(0, done)
		return
	}
	c.advance()
	c.seq++
	c.pushBurst(burst{
		tag:  c.vnow + seconds,
		vArr: c.vnow,
		work: seconds,
		seq:  c.seq,
		done: done,
	})
	c.replan()
}

// kill crash-stops the scheduler: every active burst is dropped (its done
// callback never fires) and the busy/capacity integrals freeze at zero from
// this instant. Snapshot after killing to fold the integrals into the
// service's retired accounting.
func (c *cpuSched) kill() {
	if c.dead {
		return
	}
	c.advance()
	c.dead = true
	c.next.Cancel()
	c.next = sim.Event{}
	for i := range c.heap {
		c.heap[i] = burst{} // release done closures
	}
	c.heap = c.heap[:0]
	now := c.eng.Now()
	c.busy.Set(now, 0)
	c.capacity.Set(now, 0)
	c.vnow = 0
}

// SetCores changes the CPU limit (throttling injection, vertical scaling).
func (c *cpuSched) SetCores(cores float64) {
	if cores <= 0 {
		panic("services: SetCores needs cores > 0")
	}
	if c.dead {
		return
	}
	c.advance()
	c.cores = cores
	c.capacity.Set(c.eng.Now(), cores)
	c.replan()
}

// Cores reports the current CPU limit.
func (c *cpuSched) Cores() float64 { return c.cores }

// snapshot returns the busy and capacity integrals at the current time, for
// windowed utilisation computation.
func (c *cpuSched) snapshot() (busy, capacity float64) {
	now := c.eng.Now()
	return c.busy.IntegralUntil(now), c.capacity.IntegralUntil(now)
}

// burstLess orders the completion heap by virtual finish tag, FIFO among
// equal tags (equal-work bursts arriving at the same instant).
func burstLess(a, b *burst) bool {
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	return a.seq < b.seq
}

func (c *cpuSched) pushBurst(b burst) {
	c.heap = append(c.heap, b)
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !burstLess(&c.heap[i], &c.heap[p]) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

func (c *cpuSched) popBurst() {
	n := len(c.heap) - 1
	c.heap[0] = c.heap[n]
	c.heap[n] = burst{} // drop the done closure reference
	c.heap = c.heap[:n]
	if n > 1 {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			best := i
			if l < n && burstLess(&c.heap[l], &c.heap[best]) {
				best = l
			}
			if r < n && burstLess(&c.heap[r], &c.heap[best]) {
				best = r
			}
			if best == i {
				break
			}
			c.heap[i], c.heap[best] = c.heap[best], c.heap[i]
			i = best
		}
	}
}
