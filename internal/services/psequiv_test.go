package services

import (
	"math"
	"math/rand"
	"testing"

	"ursa/internal/metrics"
	"ursa/internal/sim"
)

// refSched is the egalitarian processor-sharing reference: the pre-rewrite
// O(n)-rescan structure (flat slice of active bursts, linear min-scan on
// every arrival/completion/SetCores) carried over the shared virtual-clock
// arithmetic. It has no heap, no finish tags and no lazy deletion, so it
// cross-checks everything the production scheduler's data structures could
// get wrong: heap ordering, completion batching, FIFO callback order,
// sub-eps clamping, idle rebasing, and the busy/capacity gauge trajectory.
//
// Both implementations deliberately share the virtual-clock float
// arithmetic (one global clock advanced by elapsed*rate per event, burst
// remaining = work - (vnow - vArr)). The original scanner instead
// subtracted elapsed*rate from every burst individually; that rounds
// differently at the last ulp, and reproducing its exact rounding sequence
// requires touching every burst on every event — the O(n²) behaviour this
// rewrite removes. Sharing the arithmetic is what makes completion times
// *identical* (not merely close) between the two implementations; see
// DESIGN.md "Virtual-time processor sharing".
type refBurst struct {
	vArr float64
	work float64
	done func()
}

type refSched struct {
	eng    *sim.Engine
	cores  float64
	active []*refBurst
	vnow   float64
	last   sim.Time
	next   sim.Event
	hasEv  bool

	busy     *metrics.Gauge
	capacity *metrics.Gauge
}

func newRefSched(eng *sim.Engine, cores float64) *refSched {
	return &refSched{
		eng:      eng,
		cores:    cores,
		last:     eng.Now(),
		busy:     metrics.NewGauge(eng.Now(), 0),
		capacity: metrics.NewGauge(eng.Now(), cores),
	}
}

func (c *refSched) rate() float64 {
	n := float64(len(c.active))
	if n == 0 {
		return 0
	}
	if n <= c.cores {
		return 1
	}
	return c.cores / n
}

func (c *refSched) advance() {
	now := c.eng.Now()
	if elapsed := (now - c.last).Seconds(); elapsed > 0 {
		d := elapsed * c.rate()
		c.vnow += d
	}
	c.last = now
}

func (c *refSched) remaining(b *refBurst) float64 {
	if c.vnow == b.vArr {
		return b.work
	}
	rem := b.work - (c.vnow - b.vArr)
	if rem < workEps {
		return 0
	}
	return rem
}

func (c *refSched) replan() {
	n := float64(len(c.active))
	used := n
	if used > c.cores {
		used = c.cores
	}
	c.busy.Set(c.eng.Now(), used)
	if c.hasEv {
		c.next.Cancel()
		c.hasEv = false
	}
	if len(c.active) == 0 {
		c.vnow = 0
		return
	}
	min := c.remaining(c.active[0])
	for _, b := range c.active[1:] {
		if r := c.remaining(b); r < min {
			min = r
		}
	}
	delay := sim.Time(math.Ceil(min / c.rate() * 1e9))
	c.next = c.eng.Schedule(delay, c.onCompletion)
	c.hasEv = true
}

func (c *refSched) onCompletion() {
	c.hasEv = false
	c.advance()
	var doneFns []func()
	kept := c.active[:0]
	for _, b := range c.active {
		if b.work-(c.vnow-b.vArr) <= workEps {
			doneFns = append(doneFns, b.done)
		} else {
			kept = append(kept, b)
		}
	}
	c.active = kept
	c.replan()
	for _, fn := range doneFns {
		fn()
	}
}

func (c *refSched) Run(seconds float64, done func()) {
	if seconds <= 0 {
		c.eng.Schedule(0, done)
		return
	}
	c.advance()
	c.active = append(c.active, &refBurst{vArr: c.vnow, work: seconds, done: done})
	c.replan()
}

func (c *refSched) SetCores(cores float64) {
	c.advance()
	c.cores = cores
	c.capacity.Set(c.eng.Now(), cores)
	c.replan()
}

// psAction is one scripted scheduler stimulus.
type psAction struct {
	at    sim.Time
	work  float64 // > 0: submit a burst; 0: SetCores
	cores float64
}

// randomSchedule builds a reproducible stimulus script mixing bursty
// arrivals, idle gaps (so both schedulers pass through empty periods and
// rebase), nice decimal work sizes, heavy-tailed work sizes, sub-nanosecond
// slivers, and mid-flight CPU-limit changes.
func randomSchedule(rng *rand.Rand, n int) []psAction {
	var acts []psAction
	t := sim.Time(0)
	nice := []float64{0.1, 0.25, 0.5, 1, 0.001, 0.02}
	coreChoices := []float64{0.25, 0.5, 1, 2, 3, 4.5}
	for i := 0; i < n; i++ {
		if rng.Intn(10) == 0 {
			// Long idle gap: drains the schedulers between busy periods.
			t += sim.Time(rng.Intn(5)+1) * sim.Second
		} else {
			t += sim.Time(rng.ExpFloat64() * 20 * float64(sim.Millisecond))
		}
		switch k := rng.Intn(12); {
		case k == 0:
			acts = append(acts, psAction{at: t, cores: coreChoices[rng.Intn(len(coreChoices))]})
		case k == 1:
			acts = append(acts, psAction{at: t, work: nice[rng.Intn(len(nice))]})
		case k == 2:
			acts = append(acts, psAction{at: t, work: rng.Float64() * 3e-9}) // sub-eps sliver
		default:
			acts = append(acts, psAction{at: t, work: rng.ExpFloat64() * 0.05})
		}
	}
	return acts
}

// psLike is the scheduler surface the property test drives.
type psLike interface {
	Run(float64, func())
	SetCores(float64)
}

// runPS drives a scheduler through the script and returns the completion
// time of every submitted burst in submission order.
func runPS(acts []psAction, horizon sim.Time, mk func(*sim.Engine) psLike) (completions []sim.Time) {
	eng := sim.NewEngine(1)
	s := mk(eng)
	for _, a := range acts {
		a := a
		eng.At(a.at, func() {
			if a.work > 0 {
				idx := len(completions)
				completions = append(completions, -1)
				s.Run(a.work, func() { completions[idx] = eng.Now() })
			} else {
				s.SetCores(a.cores)
			}
		})
	}
	eng.RunUntil(horizon)
	eng.Drain(1 << 22)
	return completions
}

// TestCPUSchedMatchesReference is the equivalence property test: random
// burst arrival / SetCores schedules driven through the egalitarian-PS
// reference rescanner and the virtual-time heap scheduler must produce
// identical completion times (exact, to the nanosecond) and identical
// busy/capacity integrals (exact float equality — the gauge updates must
// happen at the same instants with the same values).
func TestCPUSchedMatchesReference(t *testing.T) {
	seeds := 40
	events := 400
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 100))
		acts := randomSchedule(rng, events)
		horizon := acts[len(acts)-1].at + 10*sim.Minute

		var ref *refSched
		refDone := runPS(acts, horizon, func(e *sim.Engine) psLike {
			ref = newRefSched(e, 2)
			return ref
		})
		refBusy := ref.busy.IntegralUntil(ref.eng.Now())
		refCap := ref.capacity.IntegralUntil(ref.eng.Now())

		var vt *cpuSched
		vtDone := runPS(acts, horizon, func(e *sim.Engine) psLike {
			vt = newCPUSched(e, 2)
			return vt
		})
		vtBusy, vtCap := vt.snapshot()

		if len(refDone) != len(vtDone) {
			t.Fatalf("seed %d: %d vs %d submissions", seed, len(refDone), len(vtDone))
		}
		for i := range refDone {
			if refDone[i] != vtDone[i] {
				t.Fatalf("seed %d: burst %d completed at %v (reference) vs %v (virtual-time), Δ=%dns",
					seed, i, refDone[i], vtDone[i], int64(vtDone[i]-refDone[i]))
			}
			if refDone[i] == -1 {
				t.Fatalf("seed %d: burst %d never completed before the horizon", seed, i)
			}
		}
		if refBusy != vtBusy {
			t.Fatalf("seed %d: busy integral %v (reference) vs %v (virtual-time)", seed, refBusy, vtBusy)
		}
		if refCap != vtCap {
			t.Fatalf("seed %d: capacity integral %v vs %v", seed, refCap, vtCap)
		}
	}
}

// TestCPUSchedManyBurstsSameInstant pins the FIFO completion-callback order
// the virtual-time heap must preserve for equal-work bursts submitted at the
// same instant (the reference completes them in submission order).
func TestCPUSchedManyBurstsSameInstant(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 1)
	var order []int
	for i := 0; i < 32; i++ {
		i := i
		c.Run(0.01, func() { order = append(order, i) })
	}
	eng.Drain(10000)
	if len(order) != 32 {
		t.Fatalf("completed %d/32", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order not FIFO at %d: %v", i, order)
		}
	}
}

// TestCPUSchedVirtualClockRebases asserts the virtual clock returns to zero
// whenever the scheduler drains, so float magnitudes are bounded by one busy
// period regardless of how long the simulation runs.
func TestCPUSchedVirtualClockRebases(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newCPUSched(eng, 1)
	for i := 0; i < 10; i++ {
		c.Run(0.5, func() {})
		eng.Drain(1000)
		if c.vnow != 0 {
			t.Fatalf("vnow = %v after drain %d, want 0", c.vnow, i)
		}
	}
}
