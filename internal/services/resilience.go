package services

import (
	"math"

	"ursa/internal/sim"
)

// NetInjector intercepts inter-service RPC delivery for fault injection.
// Implementations live outside this package (internal/faults); services only
// consults the hook on each resilient send.
type NetInjector interface {
	// Intercept reports the added delivery latency and whether the message
	// is dropped outright, for one src→dst RPC at the current simulated
	// time.
	Intercept(src, dst string) (delay sim.Time, drop bool)
}

// ResiliencePolicy is the client-side protection applied to every nested-
// and event-RPC in the application: a per-attempt timeout and bounded
// retries with exponential backoff and deterministic jitter. MQ deliveries
// are exempt — the broker owns durability there.
type ResiliencePolicy struct {
	// TimeoutMs bounds each delivery attempt; 0 disables timeouts (and with
	// them any recovery from dropped messages or crashed callees).
	TimeoutMs float64
	// MaxRetries bounds re-deliveries after the first attempt.
	MaxRetries int
	// BackoffBaseMs is the first retry's backoff; attempt k waits
	// base·2^(k−1), capped at BackoffMaxMs.
	BackoffBaseMs float64
	BackoffMaxMs  float64
	// JitterFrac spreads each backoff uniformly within ±frac of itself,
	// drawn from the sim RNG — deterministic for a fixed seed.
	JitterFrac float64
}

func (p *ResiliencePolicy) applyDefaults() {
	if p.TimeoutMs <= 0 {
		p.TimeoutMs = 1000
	}
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BackoffBaseMs <= 0 {
		p.BackoffBaseMs = 25
	}
	if p.BackoffMaxMs <= 0 {
		p.BackoffMaxMs = 1000
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
}

// SetResilience enables client-side RPC timeouts and retries for every
// nested- and event-RPC in the app. Zero-valued fields take defaults. Note
// that enabling the policy schedules a timeout event per RPC attempt, so a
// resilient run is not event-for-event identical to an unprotected one even
// when no fault ever fires — compare resilient runs with resilient runs.
func (a *App) SetResilience(p ResiliencePolicy) {
	p.applyDefaults()
	a.res = &p
	a.resRNG = a.Eng.RNG("resilience/" + a.Spec.Name)
}

// Resilience returns the active policy, or nil.
func (a *App) Resilience() *ResiliencePolicy { return a.res }

// backoffDelay computes the backoff before retry number `attempt` (1-based
// over completed attempts) with deterministic jitter.
func (a *App) backoffDelay(attempt int) sim.Time {
	p := a.res
	ms := p.BackoffBaseMs * math.Pow(2, float64(attempt-1))
	if ms > p.BackoffMaxMs {
		ms = p.BackoffMaxMs
	}
	if p.JitterFrac > 0 {
		ms *= 1 + p.JitterFrac*(2*a.resRNG.Float64()-1)
	}
	return sim.Millis2Time(ms)
}

// rpcAttempts drives the shared resilient-delivery loop: build a fresh
// Request per attempt (newReq also returns the Send `accepted` callback),
// inject network faults on the edge, arm the per-attempt timeout, and retry
// with backoff until success or exhaustion. outcome(failed) fires exactly
// once — unless a message is dropped (or a callee dies) with no timeout
// configured, in which case the call hangs forever, exactly like an
// unprotected client.
func (a *App) rpcAttempts(src string, target *Service, newReq func() (*Request, func()), outcome func(failed bool)) {
	attempt := 0
	var try func()
	retry := func() {
		if a.res == nil || attempt > a.res.MaxRetries {
			outcome(true)
			return
		}
		target.RPCRetries.Inc(a.Eng.Now(), 1)
		a.Eng.Schedule(a.backoffDelay(attempt), try)
	}
	try = func() {
		attempt++
		target.RPCAttempts.Inc(a.Eng.Now(), 1)
		rpc, accepted := newReq()
		settled := false
		var timer sim.Event
		rpc.onDone = func() {
			if settled {
				return // response landed after the caller gave up
			}
			settled = true
			timer.Cancel()
			if rpc.Failed {
				// The callee's handler aborted (its own downstream failed,
				// or its replica crashed mid-request): an error response.
				target.RPCErrors.Inc(a.Eng.Now(), 1)
				retry()
				return
			}
			outcome(false)
		}
		dropped := false
		var delay sim.Time
		if a.Net != nil {
			delay, dropped = a.Net.Intercept(src, target.Name())
		}
		deliver := func() { target.Send(rpc, accepted) }
		switch {
		case dropped:
			// Lost in the network: only the timeout can recover the call.
		case delay > 0:
			a.Eng.Schedule(delay, deliver)
		default:
			deliver()
		}
		if a.res != nil && a.res.TimeoutMs > 0 {
			timer = a.Eng.Schedule(sim.Millis2Time(a.res.TimeoutMs), func() {
				if settled {
					return
				}
				settled = true
				// The attempt may still be queued or running at the callee;
				// flag it so its late span stays out of the critical path.
				rpc.abandoned = true
				target.RPCErrors.Inc(a.Eng.Now(), 1)
				retry()
			})
		} else if dropped {
			target.RPCErrors.Inc(a.Eng.Now(), 1)
		}
	}
	try()
}

// callNested delivers one logical nested-RPC call under the app's resilience
// policy and network injector. cont runs exactly once: after a successful
// response (downstream wait accounted), or with req.Failed set once attempts
// are exhausted — the calling handler then aborts. fail pre-marks every
// delivery attempt as an application error (Call.ErrorProb): the callee
// rejects each resend too, so the call exhausts its retries and fails.
func (a *App) callNested(req *Request, target *Service, class string, fail bool, waitAcc *sim.Time, cont func()) {
	var t0 sim.Time
	admitted := false
	cur := 0
	a.rpcAttempts(req.svc.Name(), target, func() (*Request, func()) {
		cur++
		mine := cur
		admitted = false
		return &Request{Job: req.Job, Class: class, Priority: req.Priority, Failed: fail},
			func() {
				// Ghost admissions of abandoned attempts must not restart
				// the live attempt's wait clock.
				if mine == cur {
					admitted = true
					t0 = a.Eng.Now()
				}
			}
	}, func(failed bool) {
		if failed {
			req.Failed = true
		} else if admitted {
			*waitAcc += a.Eng.Now() - t0
		}
		cont()
	})
}

// sendEvent is callNested for event-RPC branches: the caller's handler has
// already responded, so a terminal failure fails the job's branch rather
// than aborting the caller.
func (a *App) sendEvent(req *Request, target *Service, class string, fail bool, release func()) {
	job := req.Job
	a.rpcAttempts(req.svc.Name(), target, func() (*Request, func()) {
		return &Request{Job: job, Class: class, Priority: req.Priority, Failed: fail}, nil
	}, func(failed bool) {
		release()
		if failed {
			job.fail()
		}
		job.branchDone()
	})
}
