package services

import (
	"testing"
	"testing/quick"

	"ursa/internal/sim"
)

// TestJobConservationUnderChurn is the simulator's strongest invariant:
// arbitrary replica scaling while traffic flows never loses or duplicates a
// job, across all three communication modes and priorities.
func TestJobConservationUnderChurn(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine(seed)
		spec := AppSpec{
			Name: "churn",
			Services: []ServiceSpec{
				{Name: "a", Threads: 64, CPUs: 2, InitialReplicas: 2,
					IngressCostMs: 0.1, IngressWindow: 8,
					Handlers: map[string][]Step{
						"hi": Seq(Compute{MeanMs: 2, CV: 0.5}, Call{Service: "b", Mode: NestedRPC}),
						"lo": Seq(Compute{MeanMs: 2, CV: 0.5}, Call{Service: "b", Mode: EventRPC}),
					}},
				{Name: "b", Threads: 64, CPUs: 2, InitialReplicas: 2,
					IngressCostMs: 0.1, IngressWindow: 8,
					Handlers: map[string][]Step{
						"hi": Seq(Compute{MeanMs: 3, CV: 0.5}, Call{Service: "c", Mode: MQ}),
						"lo": Seq(Compute{MeanMs: 3, CV: 0.5}),
					}},
				{Name: "c", Threads: 8, CPUs: 2, InitialReplicas: 2,
					Handlers: map[string][]Step{
						"hi": Seq(Compute{MeanMs: 4, CV: 0.5}),
					}},
			},
			Classes: []ClassSpec{
				{Name: "hi", Entry: "a", Priority: 0, SLAPercentile: 99, SLAMillis: 1000},
				{Name: "lo", Entry: "a", Priority: 1, SLAPercentile: 99, SLAMillis: 1000},
			},
		}
		app := MustNewApp(eng, spec)
		rng := eng.RNG("churn")

		// Traffic.
		injected := 0
		var arrive func()
		arrive = func() {
			if injected >= 400 {
				return
			}
			injected++
			if rng.Intn(2) == 0 {
				app.Inject("hi")
			} else {
				app.Inject("lo")
			}
			eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/150), arrive)
		}
		eng.Schedule(0, arrive)

		// Aggressive random scaling of every service every few seconds.
		churn := eng.Every(2*sim.Second, func() {
			for _, name := range app.ServiceNames() {
				app.Service(name).SetReplicas(1 + rng.Intn(5))
			}
		})
		eng.RunUntil(30 * sim.Second)
		churn.Stop()
		eng.RunUntil(2 * sim.Minute) // drain

		return app.CompletedJobs() == injected && app.InjectedJobs == injected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestUtilizationNeverExceedsOneUnderChurn: the CPU accounting invariant
// busy ≤ capacity holds through scaling and throttling.
func TestUtilizationNeverExceedsOneUnderChurn(t *testing.T) {
	eng := sim.NewEngine(9001)
	app := MustNewApp(eng, oneTierSpec(2))
	rng := eng.RNG("load")
	var arrive func()
	arrive = func() {
		app.Inject("get")
		eng.Schedule(sim.Seconds2Time(rng.ExpFloat64()/300), arrive)
	}
	eng.Schedule(0, arrive)
	svc := app.Service("api")
	eng.Every(90*sim.Second, func() { svc.SetReplicas(1 + rng.Intn(4)) })
	eng.Every(2*sim.Minute, func() { svc.SetCPUFactor(0.5 + rng.Float64()) })
	eng.RunUntil(10 * sim.Minute)
	busy, capacity := svc.CPUAccounting()
	if busy > capacity+1e-6 {
		t.Fatalf("busy %.2f exceeds capacity %.2f", busy, capacity)
	}
	for _, u := range svc.UtilSamples.All() {
		if u < -1e-9 || u > 1+1e-6 {
			t.Fatalf("utilisation sample out of [0,1]: %v", u)
		}
	}
}
