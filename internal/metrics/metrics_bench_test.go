package metrics

import (
	"testing"

	"ursa/internal/sim"
)

// benchWindowed builds a collector with many windows, the shape long grid
// runs accumulate (one window per minute, dozens of samples each).
func benchWindowed(windows, perWindow int) *Windowed {
	w := NewWindowed(sim.Minute)
	for i := 0; i < windows; i++ {
		t := sim.Time(i) * sim.Minute
		for j := 0; j < perWindow; j++ {
			w.Add(t+sim.Time(j), float64((i*perWindow+j)%997))
		}
	}
	return w
}

// BenchmarkWindowedPercentile measures the per-window SLA check the
// experiment harness runs every simulated minute: binary-searched window
// lookup plus in-place quickselect over a pooled scratch buffer.
func BenchmarkWindowedPercentile(b *testing.B) {
	w := benchWindowed(480, 64)
	from := 200 * sim.Minute
	to := from + 30*sim.Minute
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.PercentileBetween(from, to, 99)
	}
}

// BenchmarkWindowedCount measures the windowed sample count used by
// violation-rate accounting.
func BenchmarkWindowedCount(b *testing.B) {
	w := benchWindowed(480, 64)
	from := 200 * sim.Minute
	to := from + 30*sim.Minute
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Count(from, to)
	}
}

// benchWindowedSketch mirrors benchWindowed in sketch mode.
func benchWindowedSketch(windows, perWindow int) *Windowed {
	w := NewWindowedSketch(sim.Minute, 0.01)
	for i := 0; i < windows; i++ {
		t := sim.Time(i) * sim.Minute
		for j := 0; j < perWindow; j++ {
			w.Add(t+sim.Time(j), float64((i*perWindow+j)%997))
		}
	}
	return w
}

// BenchmarkWindowedSketchPercentile measures the same 30-window SLA query
// as BenchmarkWindowedPercentile, answered by merging per-window sketches
// instead of quickselecting raw samples.
func BenchmarkWindowedSketchPercentile(b *testing.B) {
	w := benchWindowedSketch(480, 64)
	from := 200 * sim.Minute
	to := from + 30*sim.Minute
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.PercentileBetween(from, to, 99)
	}
}

// BenchmarkTelemetryBytesPerWindowExact reports the steady-state memory per
// window in exact mode: raw samples retained, so bytes/window scales with
// per-window sample count. Paired with the sketch variant below it is the
// headline number of BENCH_telemetry.json.
func BenchmarkTelemetryBytesPerWindowExact(b *testing.B) {
	w := benchWindowed(120, 512)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = w.FootprintBytes()
	}
	b.ReportMetric(float64(n)/float64(w.NumWindows()), "bytes/window")
}

// BenchmarkTelemetryBytesPerWindowSketch is the sketch-mode counterpart:
// bytes/window is bounded by the bucket store regardless of samples seen.
func BenchmarkTelemetryBytesPerWindowSketch(b *testing.B) {
	w := benchWindowedSketch(120, 512)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n = w.FootprintBytes()
	}
	b.ReportMetric(float64(n)/float64(w.NumWindows()), "bytes/window")
}
