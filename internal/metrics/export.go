package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"ursa/internal/sim"
)

// Metrics export mirrors the OTLP/JSON Summary shape, one data point per
// line (JSONL): every retained window of a collector becomes a point with
// its count and a set of quantile values. Exact and sketch collectors
// export identically — the sketch's bounded-error quantiles drop into the
// same quantileValues field real monitoring backends ingest.

// KV is a string attribute on an exported metric point.
type KV struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// QuantileValue is one quantile of a Summary point; Quantile is in [0, 1]
// per OTLP convention.
type QuantileValue struct {
	Quantile float64 `json:"quantile"`
	Value    float64 `json:"value"`
}

// MetricPoint is one exported window of one series.
type MetricPoint struct {
	Name              string          `json:"name"`
	Attributes        []KV            `json:"attributes,omitempty"`
	StartTimeUnixNano string          `json:"startTimeUnixNano"`
	TimeUnixNano      string          `json:"timeUnixNano"`
	Count             int64           `json:"count"`
	Sum               float64         `json:"sum,omitempty"`
	QuantileValues    []QuantileValue `json:"quantileValues,omitempty"`
}

// WindowPoints renders every retained window of w as Summary points named
// name, tagged attrs, reporting the given percentiles (0–100 scale, encoded
// as OTLP [0,1] quantiles). Windows a retention policy already trimmed are
// gone by construction; empty windows never exist in a collector.
func WindowPoints(name string, attrs []KV, w *Windowed, percentiles []float64) []MetricPoint {
	out := make([]MetricPoint, 0, w.NumWindows())
	for i := 0; i < w.NumWindows(); i++ {
		start := w.WindowStartAt(i)
		pt := MetricPoint{
			Name:              name,
			Attributes:        attrs,
			StartTimeUnixNano: strconv.FormatInt(int64(start), 10),
			TimeUnixNano:      strconv.FormatInt(int64(start+w.Window()), 10),
			Count:             int64(w.WindowCountAt(i)),
		}
		for _, p := range percentiles {
			v := w.WindowQuantileAt(i, p)
			if math.IsNaN(v) {
				continue
			}
			pt.QuantileValues = append(pt.QuantileValues, QuantileValue{Quantile: p / 100, Value: v})
		}
		out = append(out, pt)
	}
	return out
}

// CounterPoints renders every retained window of c as count-only points.
func CounterPoints(name string, attrs []KV, c *CounterSeries) []MetricPoint {
	out := make([]MetricPoint, 0, len(c.start)-c.head)
	for i := c.head; i < len(c.start); i++ {
		out = append(out, MetricPoint{
			Name:              name,
			Attributes:        attrs,
			StartTimeUnixNano: strconv.FormatInt(int64(c.start[i]), 10),
			TimeUnixNano:      strconv.FormatInt(int64(c.start[i]+c.window), 10),
			Count:             int64(c.counts[i]),
			Sum:               c.counts[i],
		})
	}
	return out
}

// WritePoints streams points to w as JSONL.
func WritePoints(w io.Writer, pts []MetricPoint) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range pts {
		if err := enc.Encode(&pts[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPoints parses a JSONL metric stream back into points, tolerating
// blank lines.
func ReadPoints(r io.Reader) ([]MetricPoint, error) {
	var out []MetricPoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var pt MetricPoint
		if err := json.Unmarshal(sc.Bytes(), &pt); err != nil {
			return nil, fmt.Errorf("metrics: bad point line %q: %w", sc.Text(), err)
		}
		out = append(out, pt)
	}
	return out, sc.Err()
}

// TimeRange reports the decoded [start, end) of a point.
func (pt *MetricPoint) TimeRange() (sim.Time, sim.Time, error) {
	s, err1 := strconv.ParseInt(pt.StartTimeUnixNano, 10, 64)
	e, err2 := strconv.ParseInt(pt.TimeUnixNano, 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("metrics: bad point timestamps %q/%q", pt.StartTimeUnixNano, pt.TimeUnixNano)
	}
	return sim.Time(s), sim.Time(e), nil
}
