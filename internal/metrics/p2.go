package metrics

import (
	"fmt"
	"math"
	"sort"
)

// P2Quantile is the Jain/Chlamtac P² algorithm: a streaming estimate of a
// single quantile in O(1) memory (five markers), without storing samples.
// Production monitoring agents use sketches like this where the windowed
// collectors in this package would grow unbounded; tests validate it against
// exact percentiles.
type P2Quantile struct {
	p       float64 // quantile in (0,1)
	n       int
	heights [5]float64
	pos     [5]float64 // actual marker positions (1-based)
	desired [5]float64
	incr    [5]float64
	initial []float64
}

// NewP2Quantile builds an estimator for the q-th percentile (0 < q < 100).
func NewP2Quantile(q float64) *P2Quantile {
	if q <= 0 || q >= 100 {
		panic(fmt.Sprintf("metrics: P2 quantile %v out of (0,100)", q))
	}
	p := q / 100
	e := &P2Quantile{p: p}
	e.desired = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.incr = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add feeds one observation.
func (e *P2Quantile) Add(x float64) {
	e.n++
	if e.n <= 5 {
		e.initial = append(e.initial, x)
		if e.n == 5 {
			sort.Float64s(e.initial)
			for i := 0; i < 5; i++ {
				e.heights[i] = e.initial[i]
				e.pos[i] = float64(i + 1)
			}
			e.initial = nil
		}
		return
	}

	// Find the cell k such that heights[k] ≤ x < heights[k+1].
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.desired[i] += e.incr[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.desired[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.heights[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	di := int(d)
	return e.heights[i] + d*(e.heights[i+di]-e.heights[i])/(e.pos[i+di]-e.pos[i])
}

// Count reports observations fed so far.
func (e *P2Quantile) Count() int { return e.n }

// Value reports the current quantile estimate. With fewer than five
// observations it falls back to the exact small-sample percentile.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	if e.n < 5 {
		sorted := append([]float64(nil), e.initial...)
		sort.Float64s(sorted)
		rank := e.p * float64(len(sorted)-1)
		lo := int(rank)
		if lo+1 >= len(sorted) {
			return sorted[len(sorted)-1]
		}
		frac := rank - float64(lo)
		return sorted[lo]*(1-frac) + sorted[lo+1]*frac
	}
	return e.heights[2]
}
