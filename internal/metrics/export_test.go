package metrics

import (
	"bytes"
	"strings"
	"testing"

	"ursa/internal/sim"
)

// TestMetricPointsRoundTrip: per-window Summary points survive the JSONL
// encode/decode cycle with their windows, counts, and quantiles intact —
// for both exact and sketch collectors.
func TestMetricPointsRoundTrip(t *testing.T) {
	for _, mode := range []string{"exact", "sketch"} {
		var w *Windowed
		if mode == "sketch" {
			w = NewWindowedSketch(sim.Minute, 0.01)
		} else {
			w = NewWindowed(sim.Minute)
		}
		for i := 0; i < 300; i++ {
			w.Add(sim.Time(i)*sim.Second, float64(10+i%50))
		}
		attrs := []KV{{Key: "service", Value: "api"}, {Key: "class", Value: "get"}}
		pts := WindowPoints("ursa.latency", attrs, w, []float64{50, 99})
		if len(pts) != w.NumWindows() {
			t.Fatalf("%s: %d points for %d windows", mode, len(pts), w.NumWindows())
		}

		var buf bytes.Buffer
		if err := WritePoints(&buf, pts); err != nil {
			t.Fatal(err)
		}
		if n := strings.Count(buf.String(), "\n"); n != len(pts) {
			t.Fatalf("%s: %d JSONL lines for %d points", mode, n, len(pts))
		}
		back, err := ReadPoints(&buf)
		if err != nil {
			t.Fatal(err)
		}
		total := int64(0)
		for i := range back {
			from, to, err := back[i].TimeRange()
			if err != nil {
				t.Fatal(err)
			}
			if to-from != sim.Minute {
				t.Fatalf("%s: window span %v", mode, to-from)
			}
			if back[i].Count != pts[i].Count || len(back[i].QuantileValues) != 2 {
				t.Fatalf("%s: point %d did not round-trip: %+v", mode, i, back[i])
			}
			if q := back[i].QuantileValues[1]; q.Quantile != 0.99 || q.Value != pts[i].QuantileValues[1].Value {
				t.Fatalf("%s: quantile mismatch %+v", mode, q)
			}
			if back[i].Attributes[0].Value != "api" {
				t.Fatalf("%s: attributes lost", mode)
			}
			total += back[i].Count
		}
		if total != 300 {
			t.Fatalf("%s: decoded counts sum to %d, want 300", mode, total)
		}
	}
}

// TestCounterPointsExport: counter windows export with their counts.
func TestCounterPointsExport(t *testing.T) {
	c := NewCounterSeries(sim.Minute)
	for i := 0; i < 180; i++ {
		c.Inc(sim.Time(i)*sim.Second, 1)
	}
	pts := CounterPoints("ursa.arrivals", nil, c)
	if len(pts) != 3 {
		t.Fatalf("points = %d, want 3", len(pts))
	}
	for _, pt := range pts {
		if pt.Count != 60 || pt.Sum != 60 {
			t.Fatalf("point = %+v, want count 60", pt)
		}
	}
}
