package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"ursa/internal/sim"
	"ursa/internal/stats"
)

// latencyStream draws a deterministic lognormal-ish latency stream with the
// given seed, paired with strictly increasing timestamps spread over spanMin
// minutes.
func latencyStream(seed int64, n, spanMin int) ([]sim.Time, []float64) {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]sim.Time, n)
	vs := make([]float64, n)
	span := sim.Time(spanMin) * sim.Minute
	cur := sim.Time(0)
	step := span / sim.Time(n)
	ln := stats.LogNormalFromMeanCV(80, 0.9)
	for i := range ts {
		cur += sim.Time(rng.Int63n(int64(step)*2) + 1)
		ts[i] = cur
		vs[i] = ln.Sample(rng)
	}
	return ts, vs
}

// TestWindowedOutOfOrderRouting is the regression test for the silent
// out-of-order folding bug: a sample whose window precedes the newest one
// must be credited to the window it belongs to, not the newest window.
func TestWindowedOutOfOrderRouting(t *testing.T) {
	w := NewWindowed(sim.Minute)
	w.Add(10*sim.Second, 1)      // window 0
	w.Add(3*sim.Minute, 100)     // window 3 (newest)
	w.Add(30*sim.Second, 2)      // late arrival for window 0
	w.Add(sim.Minute+sim.Second, 50) // late arrival for never-seen window 1

	if n := w.Count(0, sim.Minute); n != 2 {
		t.Fatalf("window 0 count = %d, want 2 (late sample folded forward?)", n)
	}
	if n := w.Count(sim.Minute, 2*sim.Minute); n != 1 {
		t.Fatalf("window 1 count = %d, want 1 (inserted window lost)", n)
	}
	if n := w.Count(3*sim.Minute, 4*sim.Minute); n != 1 {
		t.Fatalf("window 3 count = %d, want 1 (late samples credited to newest)", n)
	}
	// Window starts must stay sorted for the binary searches.
	for i := 1; i < w.NumWindows(); i++ {
		if w.WindowStartAt(i-1) >= w.WindowStartAt(i) {
			t.Fatalf("window starts out of order at %d", i)
		}
	}
	if got := w.PercentileBetween(0, sim.Minute, 100); got != 2 {
		t.Fatalf("window 0 max = %v, want 2", got)
	}
}

// TestCounterSeriesOutOfOrderRouting: same regression for counters.
func TestCounterSeriesOutOfOrderRouting(t *testing.T) {
	c := NewCounterSeries(sim.Minute)
	c.Inc(10*sim.Second, 1)
	c.Inc(5*sim.Minute, 1)
	c.Inc(20*sim.Second, 1)           // late, existing window 0
	c.Inc(2*sim.Minute+sim.Second, 1) // late, never-seen window 2

	if got := c.Total(0, sim.Minute); got != 2 {
		t.Fatalf("window 0 total = %v, want 2", got)
	}
	if got := c.Total(2*sim.Minute, 3*sim.Minute); got != 1 {
		t.Fatalf("window 2 total = %v, want 1", got)
	}
	if got := c.Total(5*sim.Minute, 6*sim.Minute); got != 1 {
		t.Fatalf("window 5 total = %v, want 1", got)
	}
	if got := c.Total(0, sim.Hour); got != 4 {
		t.Fatalf("grand total = %v, want 4", got)
	}
}

// TestCounterSeriesTotalMatchesLinear cross-checks the prefix-sum Total
// (binary-searched bounds) against a brute-force recount over random
// Inc streams and random query ranges.
func TestCounterSeriesTotalMatchesLinear(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := NewCounterSeries(sim.Minute)
		type ev struct {
			w sim.Time
		}
		var evs []ev
		cur := sim.Time(0)
		for i := 0; i < 3000; i++ {
			cur += sim.Time(rng.Int63n(int64(4 * sim.Second)))
			c.Inc(cur, 1)
			evs = append(evs, ev{cur / sim.Minute * sim.Minute})
		}
		for q := 0; q < 50; q++ {
			from := sim.Time(rng.Int63n(int64(cur)))
			to := from + sim.Time(rng.Int63n(int64(sim.Hour)))
			want := 0.0
			for _, e := range evs {
				if e.w >= from && e.w < to {
					want++
				}
			}
			if got := c.Total(from, to); got != want {
				t.Fatalf("seed %d: Total(%v,%v) = %v, want %v", seed, from, to, got, want)
			}
		}
	}
}

// TestWindowedSketchVsExact is the seeded sketch-vs-exact property test at
// the collector layer: across ≥40 seeds, sketch-mode PercentileBetween
// answers p50/p90/p99 within 2α of the exact collector fed the same
// (timestamp, value) stream — single windows and merged multi-window
// ranges alike.
func TestWindowedSketchVsExact(t *testing.T) {
	const alpha = 0.01
	for seed := int64(1); seed <= 44; seed++ {
		ts, vs := latencyStream(seed, 6000, 10)
		exact := NewWindowed(sim.Minute)
		sk := NewWindowedSketch(sim.Minute, alpha)
		for i := range ts {
			exact.Add(ts[i], vs[i])
			sk.Add(ts[i], vs[i])
		}
		horizon := ts[len(ts)-1] + sim.Minute
		if exact.Count(0, horizon) != sk.Count(0, horizon) {
			t.Fatalf("seed %d: counts differ", seed)
		}
		ranges := [][2]sim.Time{
			{0, horizon},                     // whole run (merged sketches)
			{0, sim.Minute},                  // single window
			{2 * sim.Minute, 7 * sim.Minute}, // partial range
		}
		for _, r := range ranges {
			vals := exact.Between(r[0], r[1])
			sorted := append([]float64(nil), vals...)
			sort.Float64s(sorted)
			for _, p := range []float64{50, 90, 99} {
				g := sk.PercentileBetween(r[0], r[1], p)
				if len(sorted) == 0 {
					if g != 0 {
						t.Fatalf("seed %d: empty range answered %v", seed, g)
					}
					continue
				}
				// The documented guarantee: within relative error α of the
				// bracketing order statistics (exact interpolates between
				// them, which can differ by more than α when windows are
				// small and tail gaps wide — see DESIGN.md §4e).
				rank := p / 100 * float64(len(sorted)-1)
				lo, hi := sorted[int(rank)], sorted[int(math.Ceil(rank))]
				if g < lo*(1-alpha)-1e-9 || g > hi*(1+alpha)+1e-9 {
					t.Fatalf("seed %d p%v [%v,%v): sketch %v outside α-band [%v, %v]",
						seed, p, r[0], r[1], g, lo, hi)
				}
			}
		}
		// Per-window grids: empty cells NaN in both; populated cells within
		// the strict α-band of the window's bracketing order statistics
		// (windows can hold few samples, where interpolation and the
		// sketch's floor-rank answer legitimately differ by more than 2α).
		eg := exact.PerWindowPercentile(horizon, 99)
		sg := sk.PerWindowPercentile(horizon, 99)
		byStart := map[sim.Time][]float64{}
		for i := 0; i < exact.NumWindows(); i++ {
			s, v := exact.WindowAt(i)
			byStart[s] = v
		}
		for i := range eg {
			if math.IsNaN(eg[i]) != math.IsNaN(sg[i]) {
				t.Fatalf("seed %d window %d: emptiness disagrees", seed, i)
			}
			if math.IsNaN(eg[i]) {
				continue
			}
			samples := byStart[sim.Time(i)*sim.Minute]
			sorted := append([]float64(nil), samples...)
			sort.Float64s(sorted)
			rank := 99.0 / 100 * float64(len(sorted)-1)
			lo, hi := sorted[int(rank)], sorted[int(math.Ceil(rank))]
			if sg[i] < lo*(1-alpha)-1e-9 || sg[i] > hi*(1+alpha)+1e-9 {
				t.Fatalf("seed %d window %d: sketch %v outside α-band [%v, %v]",
					seed, i, sg[i], lo, hi)
			}
		}
	}
}

// TestWindowedSketchMemoryFlat is the run-length memory test: feeding 50×
// more samples into the same number of windows leaves the sketch-mode
// footprint essentially flat, while exact mode grows with sample count.
func TestWindowedSketchMemoryFlat(t *testing.T) {
	measure := func(w *Windowed, n int) int {
		rng := rand.New(rand.NewSource(9))
		ln := stats.LogNormalFromMeanCV(80, 0.9)
		span := 10 * sim.Minute
		for i := 0; i < n; i++ {
			w.Add(sim.Time(i)*span/sim.Time(n), ln.Sample(rng))
		}
		return w.FootprintBytes()
	}
	skSmall := measure(NewWindowedSketch(sim.Minute, 0.01), 4000)
	skBig := measure(NewWindowedSketch(sim.Minute, 0.01), 200000)
	exSmall := measure(NewWindowed(sim.Minute), 4000)
	exBig := measure(NewWindowed(sim.Minute), 200000)
	if skBig > 2*skSmall {
		t.Fatalf("sketch footprint grew with samples: %d -> %d bytes", skSmall, skBig)
	}
	if exBig < 20*exSmall {
		t.Fatalf("exact footprint unexpectedly flat: %d -> %d bytes (test premise broken)", exSmall, exBig)
	}
	if skBig*10 > exBig {
		t.Fatalf("sketch mode (%d B) not materially smaller than exact (%d B)", skBig, exBig)
	}
}

// TestWindowedTrimRingAmortized: the head-indexed ring keeps samples
// queryable and correct across repeated Trims, and a MaxWindows cap evicts
// oldest-first as new windows open.
func TestWindowedTrimRing(t *testing.T) {
	w := NewWindowed(sim.Minute)
	for i := 0; i < 100; i++ {
		w.Add(sim.Time(i)*sim.Minute, float64(i))
		if i >= 20 {
			w.Trim(sim.Time(i-10) * sim.Minute) // rolling 10-minute retention
		}
	}
	if got := w.NumWindows(); got != 11 {
		t.Fatalf("live windows after rolling trim = %d, want 11", got)
	}
	if s, v := w.WindowAt(0); s != 89*sim.Minute || v[0] != 89 {
		t.Fatalf("oldest retained window start=%v v=%v", s, v)
	}
	if got := w.PercentileBetween(89*sim.Minute, 100*sim.Minute, 100); got != 99 {
		t.Fatalf("max over retained = %v", got)
	}

	capped := NewWindowedSketch(sim.Minute, 0.02)
	capped.SetMaxWindows(5)
	for i := 0; i < 30; i++ {
		capped.Add(sim.Time(i)*sim.Minute, float64(i))
	}
	if got := capped.NumWindows(); got != 5 {
		t.Fatalf("capped windows = %d, want 5", got)
	}
	if got := capped.WindowStartAt(0); got != 25*sim.Minute {
		t.Fatalf("capped oldest start = %v, want 25m", got)
	}
}

// TestCounterSeriesTrimAndCap mirrors the ring behavior for counters: Trim
// drops old windows without disturbing retained totals, and a cap evicts
// oldest-first.
func TestCounterSeriesTrimAndCap(t *testing.T) {
	c := NewCounterSeries(sim.Minute)
	for i := 0; i < 100; i++ {
		c.Inc(sim.Time(i)*sim.Minute, 1)
		if i >= 20 {
			c.Trim(sim.Time(i-10) * sim.Minute)
		}
	}
	if got := c.Total(0, 200*sim.Minute); got != 11 {
		t.Fatalf("retained total = %v, want 11", got)
	}
	if got := c.Total(95*sim.Minute, 97*sim.Minute); got != 2 {
		t.Fatalf("sub-range total = %v, want 2", got)
	}

	capped := NewCounterSeries(sim.Minute)
	capped.SetMaxWindows(4)
	for i := 0; i < 20; i++ {
		capped.Inc(sim.Time(i)*sim.Minute, 1)
	}
	if got := capped.Total(0, sim.Hour); got != 4 {
		t.Fatalf("capped total = %v, want 4", got)
	}
}

// TestLatencyRecorderSketchMode: per-class collectors inherit sketch mode
// and trim together.
func TestLatencyRecorderSketchMode(t *testing.T) {
	r := NewLatencyRecorderSketch(sim.Minute, 0.01)
	for i := 0; i < 1000; i++ {
		r.Record(sim.Time(i)*sim.Second, "get", float64(50+i%100))
		r.Record(sim.Time(i)*sim.Second, "post", float64(200+i%50))
	}
	if !r.Class("get").Sketched() {
		t.Fatal("class collector not sketch-backed")
	}
	got := r.Class("get").PercentileBetween(0, sim.Hour, 50)
	if got < 95 || got > 105 {
		t.Fatalf("sketched p50 = %v, want ≈99–100", got)
	}
	r.Trim(10 * sim.Minute)
	if n := r.Class("post").Count(0, 10*sim.Minute); n != 0 {
		t.Fatalf("post-trim count before cutoff = %d", n)
	}
	if r.FootprintBytes() <= 0 {
		t.Fatal("recorder footprint not accounted")
	}
}

// TestWindowedSketchRawAccessorsNil: sketch mode retains no raw samples and
// must say so, not return garbage.
func TestWindowedSketchRawAccessorsNil(t *testing.T) {
	w := NewWindowedSketch(sim.Minute, 0.05)
	w.Add(0, 1)
	w.Add(sim.Second, 2)
	if w.Between(0, sim.Hour) != nil || w.All() != nil {
		t.Fatal("sketch mode should return nil raw samples")
	}
	if _, v := w.WindowAt(0); v != nil {
		t.Fatal("WindowAt raw samples should be nil in sketch mode")
	}
	if got := w.WindowCountAt(0); got != 2 {
		t.Fatalf("WindowCountAt = %d", got)
	}
	if got := w.WindowQuantileAt(0, 100); math.Abs(got-2) > 0.2 {
		t.Fatalf("WindowQuantileAt(100) = %v, want ≈2", got)
	}
}
