package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"ursa/internal/sim"
)

func TestWindowedBucketsByMinute(t *testing.T) {
	w := NewWindowed(sim.Minute)
	w.Add(10*sim.Second, 1)
	w.Add(30*sim.Second, 2)
	w.Add(70*sim.Second, 3)
	if w.NumWindows() != 2 {
		t.Fatalf("NumWindows = %d", w.NumWindows())
	}
	s0, v0 := w.WindowAt(0)
	if s0 != 0 || len(v0) != 2 {
		t.Fatalf("window 0: start=%v n=%d", s0, len(v0))
	}
	s1, v1 := w.WindowAt(1)
	if s1 != sim.Minute || len(v1) != 1 || v1[0] != 3 {
		t.Fatalf("window 1: start=%v v=%v", s1, v1)
	}
}

func TestWindowedBetweenAndCount(t *testing.T) {
	w := NewWindowed(sim.Minute)
	for i := 0; i < 10; i++ {
		w.Add(sim.Time(i)*sim.Minute, float64(i))
	}
	got := w.Between(2*sim.Minute, 5*sim.Minute)
	if len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("Between = %v", got)
	}
	if w.Count(0, 10*sim.Minute) != 10 {
		t.Fatalf("Count = %d", w.Count(0, 10*sim.Minute))
	}
	if len(w.All()) != 10 {
		t.Fatalf("All = %v", w.All())
	}
}

func TestPerWindowPercentile(t *testing.T) {
	w := NewWindowed(sim.Minute)
	// Minute 0: constant 10; minute 2: constant 30; minute 1 empty.
	for i := 0; i < 5; i++ {
		w.Add(sim.Time(i)*sim.Second, 10)
		w.Add(2*sim.Minute+sim.Time(i)*sim.Second, 30)
	}
	got := w.PerWindowPercentile(3*sim.Minute, 99)
	if len(got) != 3 || got[0] != 10 || !math.IsNaN(got[1]) || got[2] != 30 {
		t.Fatalf("PerWindowPercentile = %v (empty window must be NaN, not 0)", got)
	}
}

func TestWindowedTrimAndReset(t *testing.T) {
	w := NewWindowed(sim.Minute)
	for i := 0; i < 10; i++ {
		w.Add(sim.Time(i)*sim.Minute, float64(i))
	}
	w.Trim(5 * sim.Minute)
	if w.NumWindows() != 5 {
		t.Fatalf("after Trim: %d windows", w.NumWindows())
	}
	if s, _ := w.WindowAt(0); s != 5*sim.Minute {
		t.Fatalf("first window after Trim starts at %v", s)
	}
	w.Reset()
	if w.NumWindows() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestLatencyRecorderClasses(t *testing.T) {
	r := NewLatencyRecorder(sim.Minute)
	r.Record(0, "read", 5)
	r.Record(0, "write", 9)
	r.Record(sim.Second, "read", 7)
	cs := r.Classes()
	if len(cs) != 2 || cs[0] != "read" || cs[1] != "write" {
		t.Fatalf("Classes = %v", cs)
	}
	if n := r.Class("read").Count(0, sim.Minute); n != 2 {
		t.Fatalf("read count = %d", n)
	}
	if r.Class("absent") != nil {
		t.Fatal("absent class should be nil")
	}
	r.Reset()
	if n := r.Class("read").Count(0, sim.Hour); n != 0 {
		t.Fatal("Reset did not clear recorder")
	}
}

func TestCounterSeriesRate(t *testing.T) {
	c := NewCounterSeries(sim.Minute)
	for i := 0; i < 120; i++ { // 2 events/second for 1 minute
		c.Inc(sim.Time(i)*sim.Second/2, 1)
	}
	if got := c.Total(0, sim.Minute); got != 120 {
		t.Fatalf("Total = %v", got)
	}
	if got := c.Rate(0, sim.Minute); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Rate = %v", got)
	}
	if c.Rate(sim.Minute, sim.Minute) != 0 {
		t.Fatal("empty-interval rate should be 0")
	}
	c.Reset()
	if c.Total(0, sim.Hour) != 0 {
		t.Fatal("Reset did not clear counter")
	}
}

func TestGaugeIntegral(t *testing.T) {
	g := NewGauge(0, 2)
	g.Set(10*sim.Second, 4) // 2 for 10s = 20
	g.Set(20*sim.Second, 0) // 4 for 10s = 40
	if got := g.IntegralUntil(30 * sim.Second); math.Abs(got-60) > 1e-9 {
		t.Fatalf("Integral = %v, want 60", got)
	}
	if g.Value() != 0 {
		t.Fatalf("Value = %v", g.Value())
	}
}

func TestGaugeAverageOver(t *testing.T) {
	g := NewGauge(0, 1)
	snap := g.IntegralUntil(0)
	g.Set(5*sim.Second, 3)
	avg := g.AverageOver(snap, 0, 10*sim.Second)
	if math.Abs(avg-2) > 1e-9 { // 1 for 5s, 3 for 5s → avg 2
		t.Fatalf("AverageOver = %v, want 2", avg)
	}
}

func TestGaugeBackwardsPanics(t *testing.T) {
	g := NewGauge(sim.Minute, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on backwards Set")
		}
	}()
	g.Set(0, 2)
}

// Property: the gauge integral equals the sum of value×duration segments.
func TestGaugeIntegralProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		g := NewGauge(0, 0)
		want := 0.0
		prevV := 0.0
		for i, v := range vals {
			t0 := sim.Time(i) * sim.Second
			t1 := sim.Time(i+1) * sim.Second
			g.Set(t1, float64(v))
			want += prevV * (t1 - t0).Seconds()
			prevV = float64(v)
		}
		end := sim.Time(len(vals)) * sim.Second
		return math.Abs(g.IntegralUntil(end)-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowedEdgeBoundaries pins the half-open [from, to) window semantics
// when samples land exactly on window edges: a sample at t belongs to the
// window starting at t, Between(from, to) includes the window starting at
// `from` and excludes the one starting at `to`, and All() (now an unbounded
// Between) still sees everything — including windows far beyond any fixed
// horizon constant.
func TestWindowedEdgeBoundaries(t *testing.T) {
	w := NewWindowed(sim.Minute)
	// One sample exactly on each of the first six window edges…
	for i := 0; i < 6; i++ {
		w.Add(sim.Time(i)*sim.Minute, float64(i))
	}
	// …and one far beyond the old 1000-hour horizon constant.
	far := 5000 * sim.Hour
	w.Add(far, 99)

	if got := w.Between(2*sim.Minute, 5*sim.Minute); len(got) != 3 || got[0] != 2 || got[2] != 4 {
		t.Fatalf("edge Between = %v, want [2 3 4]", got)
	}
	// from == to is empty, and a window starting exactly at `to` is excluded.
	if got := w.Between(3*sim.Minute, 3*sim.Minute); got != nil {
		t.Fatalf("empty-range Between = %v, want nil", got)
	}
	if n := w.Count(0, far); n != 6 {
		t.Fatalf("Count excluding window at `to` = %d, want 6", n)
	}
	if got := w.All(); len(got) != 7 || got[6] != 99 {
		t.Fatalf("All = %v, want all 7 samples incl. the far one", got)
	}

	// Trim at an exact window edge keeps the window starting at the cutoff.
	w.Trim(3 * sim.Minute)
	if s, v := w.WindowAt(0); s != 3*sim.Minute || len(v) != 1 || v[0] != 3 {
		t.Fatalf("after Trim(3m): first window start=%v v=%v", s, v)
	}
	if got := w.Between(0, far+sim.Minute); len(got) != 4 || got[0] != 3 || got[3] != 99 {
		t.Fatalf("Between after Trim = %v, want [3 4 5 99]", got)
	}
	if got := w.PercentileBetween(3*sim.Minute, 6*sim.Minute, 100); got != 5 {
		t.Fatalf("PercentileBetween after Trim = %v, want 5", got)
	}
}

// Property: Windowed never loses samples — Count over everything equals the
// number of Adds.
func TestWindowedConservationProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		w := NewWindowed(sim.Minute)
		cur := sim.Time(0)
		for _, o := range offsets {
			cur += sim.Time(o) * sim.Millisecond
			w.Add(cur, 1)
		}
		return w.Count(0, cur+sim.Minute) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
