package metrics

import (
	"math"
	"math/rand"
	"testing"

	"ursa/internal/stats"
)

// Adversarial streams for P2Quantile: the degenerate shapes Jain/Chlamtac's
// parabolic interpolation is known to stumble on — constant values (zero
// marker spread), pre-sorted input (markers chase the head), heavy
// duplication (ties break the strict marker ordering), and the n<5 / n=5
// boundary where the estimator switches from exact to interpolated.

func TestP2ConstantStream(t *testing.T) {
	for _, q := range []float64{10, 50, 99} {
		e := NewP2Quantile(q)
		for i := 0; i < 10000; i++ {
			e.Add(7.25)
		}
		if got := e.Value(); got != 7.25 {
			t.Fatalf("q%v of constant stream = %v, want 7.25", q, got)
		}
	}
}

func TestP2PreSortedStream(t *testing.T) {
	for _, q := range []float64{50, 90, 99} {
		e := NewP2Quantile(q)
		n := 50000
		all := make([]float64, n)
		for i := 0; i < n; i++ {
			v := float64(i) // strictly increasing
			e.Add(v)
			all[i] = v
		}
		exact := stats.Percentile(all, q)
		if rel := math.Abs(e.Value()-exact) / float64(n); rel > 0.02 {
			t.Fatalf("q%v of sorted stream = %v vs exact %v (off by %.1f%% of range)",
				q, e.Value(), exact, rel*100)
		}
	}
}

func TestP2ReverseSortedStream(t *testing.T) {
	e := NewP2Quantile(50)
	n := 50000
	all := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(n - i)
		e.Add(v)
		all[i] = v
	}
	exact := stats.Percentile(all, 50)
	if math.Abs(e.Value()-exact)/exact > 0.05 {
		t.Fatalf("median of reverse-sorted stream = %v vs exact %v", e.Value(), exact)
	}
}

func TestP2HeavyDuplicates(t *testing.T) {
	// 90% of mass at 10, the rest spread: the markers sit in long runs of
	// ties. The estimator must neither NaN nor escape the data range, and
	// the median must land on the dominant value.
	rng := rand.New(rand.NewSource(3))
	e := NewP2Quantile(50)
	var all []float64
	for i := 0; i < 40000; i++ {
		v := 10.0
		if rng.Float64() > 0.9 {
			v = 10 + rng.Float64()*100
		}
		e.Add(v)
		all = append(all, v)
	}
	got := e.Value()
	if math.IsNaN(got) || got < 10 || got > 110 {
		t.Fatalf("duplicate-heavy median = %v, escaped data range", got)
	}
	if math.Abs(got-10) > 1 {
		t.Fatalf("duplicate-heavy median = %v, want ≈10 (exact %v)", got, stats.Percentile(all, 50))
	}
}

func TestP2TwoValueStream(t *testing.T) {
	// Alternating two values: every marker update hits the tie/adjacent-
	// marker guards. p90 of {0,0,…,100 every 10th} must stay in range.
	e := NewP2Quantile(90)
	var all []float64
	for i := 0; i < 30000; i++ {
		v := 0.0
		if i%10 == 9 {
			v = 100
		}
		e.Add(v)
		all = append(all, v)
	}
	got := e.Value()
	if got < 0 || got > 100 {
		t.Fatalf("two-value p90 = %v, escaped [0, 100]", got)
	}
}

// TestP2SmallNBoundaries pins the exact-fallback region (n < 5) and the
// first interpolated estimate (n = 5) against stats.Percentile on every
// permutation-ish ordering of a 5-element set.
func TestP2SmallNBoundaries(t *testing.T) {
	base := []float64{9, 1, 7, 3, 5}
	for _, q := range []float64{25, 50, 75, 95} {
		e := NewP2Quantile(q)
		for n := 1; n <= len(base); n++ {
			e.Add(base[n-1])
			got := e.Value()
			if n < 5 {
				// Exact fallback region: must equal the exact percentile of
				// what was added so far.
				want := stats.Percentile(base[:n], q)
				if got != want {
					t.Fatalf("q%v n=%d: %v != exact %v", q, n, got, want)
				}
			} else {
				// First P² estimate: markers were just initialised from the
				// sorted first five, so the value is one of them and must
				// bracket the exact percentile within the sample range.
				if got < 1 || got > 9 {
					t.Fatalf("q%v n=5: %v escaped [1, 9]", q, got)
				}
			}
		}
		if e.Count() != 5 {
			t.Fatalf("count = %d", e.Count())
		}
	}
}

// TestP2MatchesExactAcrossSeeds: broad seeded sweep pinning P² against the
// exact percentile on mixed streams — the promotion gate for using it as a
// cheap single-quantile monitor.
func TestP2MatchesExactAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := []float64{50, 90, 95, 99}[seed%4]
		e := NewP2Quantile(q)
		ln := stats.LogNormalFromMeanCV(50, 0.7)
		var all []float64
		for i := 0; i < 30000; i++ {
			v := ln.Sample(rng)
			e.Add(v)
			all = append(all, v)
		}
		exact := stats.Percentile(all, q)
		if math.Abs(e.Value()-exact)/exact > 0.08 {
			t.Fatalf("seed %d q%v: P² %v vs exact %v", seed, q, e.Value(), exact)
		}
	}
}
