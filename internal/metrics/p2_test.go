package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ursa/internal/stats"
)

func TestP2SmallSamplesExact(t *testing.T) {
	e := NewP2Quantile(50)
	if !math.IsNaN(e.Value()) {
		t.Fatal("empty estimator should be NaN")
	}
	for _, v := range []float64{3, 1, 2} {
		e.Add(v)
	}
	if got := e.Value(); got != 2 {
		t.Fatalf("small-sample median = %v", got)
	}
	if e.Count() != 3 {
		t.Fatalf("count = %d", e.Count())
	}
}

func TestP2MedianUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e := NewP2Quantile(50)
	for i := 0; i < 100000; i++ {
		e.Add(rng.Float64())
	}
	if got := e.Value(); math.Abs(got-0.5) > 0.01 {
		t.Fatalf("uniform median = %v, want ≈0.5", got)
	}
}

func TestP2TailQuantileLogNormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ln := stats.LogNormalFromMeanCV(100, 0.8)
	e := NewP2Quantile(99)
	var all []float64
	for i := 0; i < 200000; i++ {
		v := ln.Sample(rng)
		e.Add(v)
		all = append(all, v)
	}
	exact := stats.Percentile(all, 99)
	if math.Abs(e.Value()-exact)/exact > 0.06 {
		t.Fatalf("p99 estimate %v vs exact %v", e.Value(), exact)
	}
}

func TestP2InvalidQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for q=0")
		}
	}()
	NewP2Quantile(0)
}

// Property: the estimate always lies within [min, max] of the data, and for
// well-behaved streams it approximates the exact percentile.
func TestP2BoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := 5 + rng.Float64()*90
		e := NewP2Quantile(q)
		min, max := math.Inf(1), math.Inf(-1)
		n := 200 + rng.Intn(2000)
		var all []float64
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()*10 + 50
			e.Add(v)
			all = append(all, v)
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		got := e.Value()
		if got < min-1e-9 || got > max+1e-9 {
			return false
		}
		// Loose accuracy: within 15% of the exact value's IQR-scale.
		exact := stats.Percentile(all, q)
		scale := stats.Percentile(all, 90) - stats.Percentile(all, 10)
		return math.Abs(got-exact) <= 0.15*scale+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkP2Add(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	e := NewP2Quantile(99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Add(rng.Float64())
	}
}
