// Package metrics implements the tracing/monitoring substrate (the paper
// deploys Prometheus): fixed-window latency collectors with percentile
// queries, request counters, and gauge series for CPU utilisation. All
// values are indexed by simulated time.
//
// Collectors run in one of two modes. The exact mode retains every raw
// sample per window — bit-exact percentiles, memory O(requests). The sketch
// mode keeps one mergeable quantile sketch per window (stats.Sketch,
// DDSketch-style) — percentiles within a documented relative-error bound α,
// memory O(windows), which is what million-user runs need. Both modes share
// one query API; window storage is a head-indexed ring with amortized O(1)
// trimming, so periodic retention trims never reallocate per call.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"ursa/internal/sim"
	"ursa/internal/stats"
)

// DefaultWindow is the sampling window used throughout the paper's
// evaluation (metrics are collected once per minute).
const DefaultWindow = sim.Minute

// Windowed aggregates float64 samples into fixed, contiguous time windows.
type Windowed struct {
	window sim.Time
	// alpha > 0 selects sketch mode with that relative-error bound.
	alpha float64
	// maxWindows, when > 0, caps retained windows ring-buffer style: the
	// oldest window is dropped as a new one opens.
	maxWindows int

	// Live windows are start[head:] — head advances on Trim/eviction and the
	// arrays compact (copy down) only when more than half is dead, so
	// trimming is amortized O(1) per window instead of O(windows) per call.
	head    int
	start   []sim.Time  // window start times, ascending
	samples [][]float64 // exact mode: samples per window

	sketches []*stats.Sketch // sketch mode: one sketch per window
	free     []*stats.Sketch // recycled sketches from trimmed windows
	scratch  *stats.Sketch   // merge buffer for multi-window queries
}

// NewWindowed returns an exact-mode collector with the given window size.
func NewWindowed(window sim.Time) *Windowed {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Windowed{window: window}
}

// NewWindowedSketch returns a sketch-mode collector: each window stores a
// mergeable quantile sketch with relative-error bound alpha instead of raw
// samples, so memory is O(windows) regardless of sample count. Raw-sample
// queries (Between, All, WindowAt values) return nil in this mode.
func NewWindowedSketch(window sim.Time, alpha float64) *Windowed {
	w := NewWindowed(window)
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("metrics: sketch alpha %v out of (0,1)", alpha))
	}
	w.alpha = alpha
	return w
}

// Window reports the configured window size.
func (w *Windowed) Window() sim.Time { return w.window }

// Sketched reports whether the collector is in sketch mode.
func (w *Windowed) Sketched() bool { return w.alpha > 0 }

// Alpha reports the sketch relative-error bound (0 in exact mode).
func (w *Windowed) Alpha() float64 { return w.alpha }

// SetMaxWindows caps retained windows (0 = unbounded): once the cap is
// reached, opening a new window evicts the oldest.
func (w *Windowed) SetMaxWindows(n int) { w.maxWindows = n }

// newSketch hands out a recycled or fresh per-window sketch.
func (w *Windowed) newSketch() *stats.Sketch {
	if n := len(w.free); n > 0 {
		s := w.free[n-1]
		w.free = w.free[:n-1]
		return s
	}
	return stats.NewSketch(w.alpha)
}

// addAt records v into the physical window index i.
func (w *Windowed) addAt(i int, v float64) {
	if w.Sketched() {
		w.sketches[i].Add(v)
		return
	}
	w.samples[i] = append(w.samples[i], v)
}

// appendWindow opens a new newest window, evicting the oldest if a cap is
// set and reached.
func (w *Windowed) appendWindow(ws sim.Time) {
	if w.maxWindows > 0 && len(w.start)-w.head >= w.maxWindows {
		w.dropOldest()
		w.compact()
	}
	w.start = append(w.start, ws)
	if w.Sketched() {
		w.sketches = append(w.sketches, w.newSketch())
	} else {
		w.samples = append(w.samples, nil)
	}
}

// insertWindow inserts an empty window at physical index i (out-of-order
// arrivals only — the rare path).
func (w *Windowed) insertWindow(i int, ws sim.Time) {
	w.start = append(w.start, 0)
	copy(w.start[i+1:], w.start[i:])
	w.start[i] = ws
	if w.Sketched() {
		w.sketches = append(w.sketches, nil)
		copy(w.sketches[i+1:], w.sketches[i:])
		w.sketches[i] = w.newSketch()
	} else {
		w.samples = append(w.samples, nil)
		copy(w.samples[i+1:], w.samples[i:])
		w.samples[i] = nil
	}
}

// dropOldest frees the oldest live window and advances the ring head.
func (w *Windowed) dropOldest() {
	if w.Sketched() {
		s := w.sketches[w.head]
		s.Reset()
		w.free = append(w.free, s)
		w.sketches[w.head] = nil
	} else {
		w.samples[w.head] = nil
	}
	w.head++
}

// compact copies live windows to the front once more than half the backing
// arrays are dead, keeping Trim amortized O(1).
func (w *Windowed) compact() {
	if w.head == 0 || 2*w.head < len(w.start) {
		return
	}
	n := copy(w.start, w.start[w.head:])
	w.start = w.start[:n]
	if w.Sketched() {
		copy(w.sketches, w.sketches[w.head:])
		clearSketchTail(w.sketches[n:])
		w.sketches = w.sketches[:n]
	} else {
		copy(w.samples, w.samples[w.head:])
		clearSampleTail(w.samples[n:])
		w.samples = w.samples[:n]
	}
	w.head = 0
}

func clearSketchTail(tail []*stats.Sketch) {
	for i := range tail {
		tail[i] = nil
	}
}

func clearSampleTail(tail [][]float64) {
	for i := range tail {
		tail[i] = nil
	}
}

// Add records one sample at time t. Samples normally arrive in
// non-decreasing window order (discrete-event time is monotone); a sample
// whose window precedes the newest one is routed to the window it belongs
// to — inserting the window if it never existed — instead of being silently
// folded into the newest window.
func (w *Windowed) Add(t sim.Time, v float64) {
	ws := t / w.window * w.window
	n := len(w.start)
	if n == w.head || w.start[n-1] < ws {
		w.appendWindow(ws)
		w.addAt(len(w.start)-1, v)
		return
	}
	if w.start[n-1] == ws {
		w.addAt(n-1, v)
		return
	}
	// Out-of-order arrival: find (or create) the window starting at ws.
	i := w.head + sort.Search(n-w.head, func(i int) bool { return w.start[w.head+i] >= ws })
	if i == n || w.start[i] != ws {
		w.insertWindow(i, ws)
	}
	w.addAt(i, v)
}

// NumWindows reports how many (non-empty) windows exist.
func (w *Windowed) NumWindows() int { return len(w.start) - w.head }

// WindowAt returns the i-th live window's start and, in exact mode, its
// samples (nil in sketch mode — use WindowCountAt/WindowQuantileAt).
func (w *Windowed) WindowAt(i int) (sim.Time, []float64) {
	if w.Sketched() {
		return w.start[w.head+i], nil
	}
	return w.start[w.head+i], w.samples[w.head+i]
}

// WindowStartAt reports the start time of the i-th live window.
func (w *Windowed) WindowStartAt(i int) sim.Time { return w.start[w.head+i] }

// WindowCountAt reports the sample count of the i-th live window.
func (w *Windowed) WindowCountAt(i int) int {
	if w.Sketched() {
		return int(w.sketches[w.head+i].Count())
	}
	return len(w.samples[w.head+i])
}

// WindowQuantileAt reports the p-th percentile of the i-th live window
// (NaN when the window is empty — sketch windows are never empty).
func (w *Windowed) WindowQuantileAt(i int, p float64) float64 {
	if w.Sketched() {
		return w.sketches[w.head+i].Quantile(p)
	}
	s := w.samples[w.head+i]
	if len(s) == 0 {
		return math.NaN()
	}
	return stats.Percentile(s, p)
}

// windowRange binary-searches the ascending start slice and returns the
// half-open physical index range of windows whose start lies in [from, to).
func (w *Windowed) windowRange(from, to sim.Time) (lo, hi int) {
	n := len(w.start) - w.head
	lo = w.head + sort.Search(n, func(i int) bool { return w.start[w.head+i] >= from })
	hi = lo + sort.Search(n-(lo-w.head), func(i int) bool { return w.start[lo+i] >= to })
	return lo, hi
}

// Between returns all samples in windows with start in [from, to). The
// returned slice is freshly allocated; callers may keep and mutate it.
// Sketch mode retains no raw samples and returns nil — query Count and
// PercentileBetween instead.
func (w *Windowed) Between(from, to sim.Time) []float64 {
	if w.Sketched() {
		return nil
	}
	lo, hi := w.windowRange(from, to)
	n := 0
	for i := lo; i < hi; i++ {
		n += len(w.samples[i])
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for i := lo; i < hi; i++ {
		out = append(out, w.samples[i]...)
	}
	return out
}

// All returns every recorded sample (nil in sketch mode).
func (w *Windowed) All() []float64 {
	return w.Between(0, sim.Time(math.MaxInt64))
}

// Count reports the number of samples in [from, to).
func (w *Windowed) Count(from, to sim.Time) int {
	lo, hi := w.windowRange(from, to)
	n := 0
	for i := lo; i < hi; i++ {
		if w.Sketched() {
			n += int(w.sketches[i].Count())
		} else {
			n += len(w.samples[i])
		}
	}
	return n
}

// PercentileBetween computes the p-th percentile over [from, to) — 0 when
// the range is empty, matching stats.Percentile on an empty slice. In exact
// mode it gathers the samples into a pooled scratch buffer and selects in
// place, allocating nothing in steady state; in sketch mode it merges the
// window sketches into a reusable scratch sketch (bucket-exact, so the
// answer equals a single sketch over the whole range).
func (w *Windowed) PercentileBetween(from, to sim.Time, p float64) float64 {
	lo, hi := w.windowRange(from, to)
	if w.Sketched() {
		if lo == hi {
			return 0
		}
		if hi-lo == 1 {
			return w.sketches[lo].Quantile(p)
		}
		if w.scratch == nil {
			w.scratch = stats.NewSketch(w.alpha)
		}
		w.scratch.Reset()
		for i := lo; i < hi; i++ {
			w.scratch.Merge(w.sketches[i])
		}
		return w.scratch.Quantile(p)
	}
	scratch := stats.GetScratch()
	buf := *scratch
	for i := lo; i < hi; i++ {
		buf = append(buf, w.samples[i]...)
	}
	v := stats.PercentileInPlace(buf, p)
	*scratch = buf[:0]
	stats.PutScratch(scratch)
	return v
}

// PerWindowPercentile returns, for each aligned window of the run
// [0, horizon), the p-th percentile, with NaN marking windows that have no
// samples — a true 0 ms percentile and "no data" are distinct (the Fig. 2
// heat-maps and violation accounting must not conflate them). This is the
// Fig. 2 heat-map primitive: one value per minute per tier.
func (w *Windowed) PerWindowPercentile(horizon sim.Time, p float64) []float64 {
	n := int((horizon + w.window - 1) / w.window)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	for i := w.head; i < len(w.start); i++ {
		idx := int(w.start[i] / w.window)
		if idx < 0 || idx >= n {
			continue
		}
		if w.Sketched() {
			out[idx] = w.sketches[i].Quantile(p)
		} else if len(w.samples[i]) > 0 {
			out[idx] = stats.Percentile(w.samples[i], p)
		}
	}
	return out
}

// Trim drops windows that start before cutoff, bounding memory on long
// runs. Amortized O(1) per dropped window: the ring head advances and the
// backing arrays compact only when mostly dead.
func (w *Windowed) Trim(cutoff sim.Time) {
	for w.head < len(w.start) && w.start[w.head] < cutoff {
		w.dropOldest()
	}
	w.compact()
}

// Reset discards all samples.
func (w *Windowed) Reset() {
	if w.Sketched() {
		for i := w.head; i < len(w.start); i++ {
			s := w.sketches[i]
			s.Reset()
			w.free = append(w.free, s)
		}
		clearSketchTail(w.sketches)
		w.sketches = w.sketches[:0]
	} else {
		clearSampleTail(w.samples)
		w.samples = w.samples[:0]
	}
	w.start = w.start[:0]
	w.head = 0
}

// FootprintBytes estimates the retained heap bytes of the collector:
// backing arrays plus per-window payloads (raw samples or sketches). It is
// the accounting the bounded-memory tests and the bytes/window benchmark
// report; exact mode grows with sample count, sketch mode with window count.
func (w *Windowed) FootprintBytes() int {
	b := 8 * cap(w.start)
	if w.Sketched() {
		b += 8 * (cap(w.sketches) + cap(w.free))
		for i := w.head; i < len(w.sketches); i++ {
			b += w.sketches[i].FootprintBytes()
		}
		for _, s := range w.free {
			b += s.FootprintBytes()
		}
		if w.scratch != nil {
			b += w.scratch.FootprintBytes()
		}
		return b
	}
	b += 24 * cap(w.samples)
	for i := w.head; i < len(w.samples); i++ {
		b += 8 * cap(w.samples[i])
	}
	return b
}

// LatencyRecorder keeps one Windowed collector per request class.
type LatencyRecorder struct {
	window     sim.Time
	alpha      float64 // >0: per-class collectors are sketch-backed
	maxWindows int
	byClass    map[string]*Windowed
}

// NewLatencyRecorder returns an empty exact-mode recorder with the given
// window.
func NewLatencyRecorder(window sim.Time) *LatencyRecorder {
	return &LatencyRecorder{window: window, byClass: map[string]*Windowed{}}
}

// NewLatencyRecorderSketch returns a recorder whose per-class collectors
// are sketch-backed with relative-error bound alpha.
func NewLatencyRecorderSketch(window sim.Time, alpha float64) *LatencyRecorder {
	r := NewLatencyRecorder(window)
	r.alpha = alpha
	return r
}

// SetMaxWindows caps retained windows per class (applies to collectors
// created after the call and existing ones).
func (r *LatencyRecorder) SetMaxWindows(n int) {
	r.maxWindows = n
	for _, w := range r.byClass {
		w.SetMaxWindows(n)
	}
}

// Record stores a latency sample (milliseconds) for a request class.
func (r *LatencyRecorder) Record(t sim.Time, class string, latencyMs float64) {
	w, ok := r.byClass[class]
	if !ok {
		if r.alpha > 0 {
			w = NewWindowedSketch(r.window, r.alpha)
		} else {
			w = NewWindowed(r.window)
		}
		w.SetMaxWindows(r.maxWindows)
		r.byClass[class] = w
	}
	w.Add(t, latencyMs)
}

// Class returns the collector for the class, or nil when never recorded.
func (r *LatencyRecorder) Class(class string) *Windowed { return r.byClass[class] }

// Classes lists recorded classes in sorted order.
func (r *LatencyRecorder) Classes() []string {
	out := make([]string, 0, len(r.byClass))
	for c := range r.byClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Trim drops windows before cutoff in every class collector.
func (r *LatencyRecorder) Trim(cutoff sim.Time) {
	for _, w := range r.byClass {
		w.Trim(cutoff)
	}
}

// FootprintBytes sums the footprint of every class collector.
func (r *LatencyRecorder) FootprintBytes() int {
	b := 0
	for _, w := range r.byClass {
		b += w.FootprintBytes()
	}
	return b
}

// Reset discards all samples for all classes.
func (r *LatencyRecorder) Reset() {
	for _, w := range r.byClass {
		w.Reset()
	}
}

// CounterSeries counts events per fixed window (request counts → RPS).
// Storage is a head-indexed ring with a running prefix sum, so range totals
// are O(log windows) and retention trims are amortized O(1).
type CounterSeries struct {
	window     sim.Time
	maxWindows int

	head   int
	start  []sim.Time
	counts []float64
	// cum[i] is the all-time cumulative count through window i; base is the
	// all-time cumulative before physical index 0 (nonzero after
	// compaction). Totals are prefix differences — exact for the integer
	// event counts this series records.
	cum  []float64
	base float64
}

// NewCounterSeries returns a counter with the given window.
func NewCounterSeries(window sim.Time) *CounterSeries {
	if window <= 0 {
		window = DefaultWindow
	}
	return &CounterSeries{window: window}
}

// SetMaxWindows caps retained windows (0 = unbounded), ring-buffer style.
func (c *CounterSeries) SetMaxWindows(n int) { c.maxWindows = n }

// cumAt reads the cumulative count through physical index i (i may be
// head−1 … −1 for "before everything retained").
func (c *CounterSeries) cumAt(i int) float64 {
	if i < 0 {
		return c.base
	}
	return c.cum[i]
}

// Inc adds n events at time t. Out-of-order events (an earlier window than
// the newest) are routed to the window they belong to instead of being
// silently credited to the newest window.
func (c *CounterSeries) Inc(t sim.Time, n float64) {
	ws := t / c.window * c.window
	m := len(c.start)
	if m == c.head || c.start[m-1] < ws {
		if c.maxWindows > 0 && m-c.head >= c.maxWindows {
			c.head++
			c.compact()
			m = len(c.start)
		}
		c.start = append(c.start, ws)
		c.counts = append(c.counts, n)
		c.cum = append(c.cum, c.cumAt(m-1)+n)
		return
	}
	if c.start[m-1] == ws {
		c.counts[m-1] += n
		c.cum[m-1] += n
		return
	}
	// Out-of-order: find (or insert) the window and patch the suffix of the
	// prefix-sum array — rare, so O(windows) here is fine.
	i := c.head + sort.Search(m-c.head, func(i int) bool { return c.start[c.head+i] >= ws })
	if i == m || c.start[i] != ws {
		c.start = append(c.start, 0)
		copy(c.start[i+1:], c.start[i:])
		c.start[i] = ws
		c.counts = append(c.counts, 0)
		copy(c.counts[i+1:], c.counts[i:])
		c.counts[i] = 0
		c.cum = append(c.cum, 0)
		copy(c.cum[i+1:], c.cum[i:])
		c.cum[i] = c.cumAt(i - 1)
	}
	c.counts[i] += n
	for ; i < len(c.cum); i++ {
		c.cum[i] += n
	}
}

// compact copies live windows down once more than half the arrays are dead.
func (c *CounterSeries) compact() {
	if c.head == 0 || 2*c.head < len(c.start) {
		return
	}
	c.base = c.cum[c.head-1]
	n := copy(c.start, c.start[c.head:])
	copy(c.counts, c.counts[c.head:])
	copy(c.cum, c.cum[c.head:])
	c.start, c.counts, c.cum = c.start[:n], c.counts[:n], c.cum[:n]
	c.head = 0
}

// Total reports the number of events in [from, to). Both bounds are
// binary-searched and the sum is a prefix difference, so long-run Rate
// queries no longer walk the window series.
func (c *CounterSeries) Total(from, to sim.Time) float64 {
	n := len(c.start) - c.head
	lo := c.head + sort.Search(n, func(i int) bool { return c.start[c.head+i] >= from })
	hi := lo + sort.Search(n-(lo-c.head), func(i int) bool { return c.start[lo+i] >= to })
	if lo == hi {
		return 0
	}
	return c.cumAt(hi-1) - c.cumAt(lo-1)
}

// Rate reports events per second over [from, to).
func (c *CounterSeries) Rate(from, to sim.Time) float64 {
	d := (to - from).Seconds()
	if d <= 0 {
		return 0
	}
	return c.Total(from, to) / d
}

// Trim drops windows that start before cutoff (amortized O(1) per window).
func (c *CounterSeries) Trim(cutoff sim.Time) {
	for c.head < len(c.start) && c.start[c.head] < cutoff {
		c.head++
	}
	c.compact()
}

// FootprintBytes estimates retained heap bytes.
func (c *CounterSeries) FootprintBytes() int {
	return 8 * (cap(c.start) + cap(c.counts) + cap(c.cum))
}

// Reset discards all counts.
func (c *CounterSeries) Reset() {
	c.start = c.start[:0]
	c.counts = c.counts[:0]
	c.cum = c.cum[:0]
	c.head = 0
	c.base = 0
}

// Gauge integrates a piecewise-constant value over time, yielding exact
// time-averages — used for CPU utilisation and allocation accounting. It is
// already O(1) memory: only the running integral is retained, never a
// history series.
type Gauge struct {
	last     sim.Time
	value    float64
	integral float64 // ∫ value dt, in value·seconds
}

// NewGauge returns a gauge with initial value v at time t.
func NewGauge(t sim.Time, v float64) *Gauge {
	return &Gauge{last: t, value: v}
}

// Set updates the gauge to value v at time t, accumulating the integral of
// the previous value over [last, t).
func (g *Gauge) Set(t sim.Time, v float64) {
	if t < g.last {
		panic("metrics: Gauge.Set with time going backwards")
	}
	g.integral += g.value * (t - g.last).Seconds()
	g.last = t
	g.value = v
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.value }

// IntegralUntil reports ∫value dt (value·seconds) from creation through t.
func (g *Gauge) IntegralUntil(t sim.Time) float64 {
	if t < g.last {
		panic("metrics: IntegralUntil before last update")
	}
	return g.integral + g.value*(t-g.last).Seconds()
}

// AverageOver reports the time-average of the gauge over [from, t] given
// the integral at the `from` instant (callers snapshot IntegralUntil(from)).
func (g *Gauge) AverageOver(fromIntegral float64, from, to sim.Time) float64 {
	d := (to - from).Seconds()
	if d <= 0 {
		return g.value
	}
	return (g.IntegralUntil(to) - fromIntegral) / d
}
