// Package metrics implements the tracing/monitoring substrate (the paper
// deploys Prometheus): fixed-window latency collectors with percentile
// queries, request counters, and gauge series for CPU utilisation. All
// values are indexed by simulated time.
package metrics

import (
	"math"
	"sort"

	"ursa/internal/sim"
	"ursa/internal/stats"
)

// DefaultWindow is the sampling window used throughout the paper's
// evaluation (metrics are collected once per minute).
const DefaultWindow = sim.Minute

// Windowed aggregates float64 samples into fixed, contiguous time windows.
type Windowed struct {
	window  sim.Time
	start   []sim.Time  // window start times, ascending
	samples [][]float64 // samples per window
}

// NewWindowed returns a collector with the given window size.
func NewWindowed(window sim.Time) *Windowed {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Windowed{window: window}
}

// Window reports the configured window size.
func (w *Windowed) Window() sim.Time { return w.window }

// Add records one sample at time t. Samples must arrive in non-decreasing
// window order (discrete-event time is monotone, so this holds naturally).
func (w *Windowed) Add(t sim.Time, v float64) {
	ws := t / w.window * w.window
	n := len(w.start)
	if n == 0 || w.start[n-1] < ws {
		w.start = append(w.start, ws)
		w.samples = append(w.samples, nil)
		n++
	}
	w.samples[n-1] = append(w.samples[n-1], v)
}

// NumWindows reports how many (non-empty) windows exist.
func (w *Windowed) NumWindows() int { return len(w.start) }

// WindowAt returns the samples of the i-th non-empty window and its start.
func (w *Windowed) WindowAt(i int) (sim.Time, []float64) {
	return w.start[i], w.samples[i]
}

// windowRange binary-searches the ascending start slice and returns the
// half-open index range of windows whose start lies in [from, to).
func (w *Windowed) windowRange(from, to sim.Time) (lo, hi int) {
	lo = sort.Search(len(w.start), func(i int) bool { return w.start[i] >= from })
	hi = lo + sort.Search(len(w.start)-lo, func(i int) bool { return w.start[lo+i] >= to })
	return lo, hi
}

// Between returns all samples in windows with start in [from, to). The
// returned slice is freshly allocated; callers may keep and mutate it.
func (w *Windowed) Between(from, to sim.Time) []float64 {
	lo, hi := w.windowRange(from, to)
	n := 0
	for i := lo; i < hi; i++ {
		n += len(w.samples[i])
	}
	if n == 0 {
		return nil
	}
	out := make([]float64, 0, n)
	for i := lo; i < hi; i++ {
		out = append(out, w.samples[i]...)
	}
	return out
}

// All returns every recorded sample.
func (w *Windowed) All() []float64 {
	return w.Between(0, sim.Time(math.MaxInt64))
}

// Count reports the number of samples in [from, to).
func (w *Windowed) Count(from, to sim.Time) int {
	lo, hi := w.windowRange(from, to)
	n := 0
	for i := lo; i < hi; i++ {
		n += len(w.samples[i])
	}
	return n
}

// PercentileBetween computes the p-th percentile over [from, to). It gathers
// the samples into a pooled scratch buffer and selects in place, so the
// query allocates nothing in steady state.
func (w *Windowed) PercentileBetween(from, to sim.Time, p float64) float64 {
	lo, hi := w.windowRange(from, to)
	scratch := stats.GetScratch()
	buf := *scratch
	for i := lo; i < hi; i++ {
		buf = append(buf, w.samples[i]...)
	}
	v := stats.PercentileInPlace(buf, p)
	*scratch = buf[:0]
	stats.PutScratch(scratch)
	return v
}

// PerWindowPercentile returns, for each aligned window of the run
// [0, horizon), the p-th percentile (0 when the window has no samples).
// This is the Fig. 2 heat-map primitive: one value per minute per tier.
func (w *Windowed) PerWindowPercentile(horizon sim.Time, p float64) []float64 {
	n := int((horizon + w.window - 1) / w.window)
	out := make([]float64, n)
	for i, s := range w.start {
		idx := int(s / w.window)
		if idx >= 0 && idx < n {
			out[idx] = stats.Percentile(w.samples[i], p)
		}
	}
	return out
}

// Trim drops windows that start before cutoff, bounding memory on long runs.
func (w *Windowed) Trim(cutoff sim.Time) {
	i := sort.Search(len(w.start), func(i int) bool { return w.start[i] >= cutoff })
	if i > 0 {
		w.start = append([]sim.Time(nil), w.start[i:]...)
		w.samples = append([][]float64(nil), w.samples[i:]...)
	}
}

// Reset discards all samples.
func (w *Windowed) Reset() {
	w.start = w.start[:0]
	w.samples = w.samples[:0]
}

// LatencyRecorder keeps one Windowed collector per request class.
type LatencyRecorder struct {
	window  sim.Time
	byClass map[string]*Windowed
}

// NewLatencyRecorder returns an empty recorder with the given window.
func NewLatencyRecorder(window sim.Time) *LatencyRecorder {
	return &LatencyRecorder{window: window, byClass: map[string]*Windowed{}}
}

// Record stores a latency sample (milliseconds) for a request class.
func (r *LatencyRecorder) Record(t sim.Time, class string, latencyMs float64) {
	w, ok := r.byClass[class]
	if !ok {
		w = NewWindowed(r.window)
		r.byClass[class] = w
	}
	w.Add(t, latencyMs)
}

// Class returns the collector for the class, or nil when never recorded.
func (r *LatencyRecorder) Class(class string) *Windowed { return r.byClass[class] }

// Classes lists recorded classes in sorted order.
func (r *LatencyRecorder) Classes() []string {
	out := make([]string, 0, len(r.byClass))
	for c := range r.byClass {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Reset discards all samples for all classes.
func (r *LatencyRecorder) Reset() {
	for _, w := range r.byClass {
		w.Reset()
	}
}

// CounterSeries counts events per fixed window (request counts → RPS).
type CounterSeries struct {
	window sim.Time
	start  []sim.Time
	counts []float64
}

// NewCounterSeries returns a counter with the given window.
func NewCounterSeries(window sim.Time) *CounterSeries {
	if window <= 0 {
		window = DefaultWindow
	}
	return &CounterSeries{window: window}
}

// Inc adds n events at time t.
func (c *CounterSeries) Inc(t sim.Time, n float64) {
	ws := t / c.window * c.window
	m := len(c.start)
	if m == 0 || c.start[m-1] < ws {
		c.start = append(c.start, ws)
		c.counts = append(c.counts, 0)
		m++
	}
	c.counts[m-1] += n
}

// Total reports the number of events in [from, to).
func (c *CounterSeries) Total(from, to sim.Time) float64 {
	lo := sort.Search(len(c.start), func(i int) bool { return c.start[i] >= from })
	s := 0.0
	for i := lo; i < len(c.start) && c.start[i] < to; i++ {
		s += c.counts[i]
	}
	return s
}

// Rate reports events per second over [from, to).
func (c *CounterSeries) Rate(from, to sim.Time) float64 {
	d := (to - from).Seconds()
	if d <= 0 {
		return 0
	}
	return c.Total(from, to) / d
}

// Reset discards all counts.
func (c *CounterSeries) Reset() {
	c.start = c.start[:0]
	c.counts = c.counts[:0]
}

// Gauge integrates a piecewise-constant value over time, yielding exact
// time-averages — used for CPU utilisation and allocation accounting.
type Gauge struct {
	last     sim.Time
	value    float64
	integral float64 // ∫ value dt, in value·seconds
}

// NewGauge returns a gauge with initial value v at time t.
func NewGauge(t sim.Time, v float64) *Gauge {
	return &Gauge{last: t, value: v}
}

// Set updates the gauge to value v at time t, accumulating the integral of
// the previous value over [last, t).
func (g *Gauge) Set(t sim.Time, v float64) {
	if t < g.last {
		panic("metrics: Gauge.Set with time going backwards")
	}
	g.integral += g.value * (t - g.last).Seconds()
	g.last = t
	g.value = v
}

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.value }

// IntegralUntil reports ∫value dt (value·seconds) from creation through t.
func (g *Gauge) IntegralUntil(t sim.Time) float64 {
	if t < g.last {
		panic("metrics: IntegralUntil before last update")
	}
	return g.integral + g.value*(t-g.last).Seconds()
}

// AverageOver reports the time-average of the gauge over [from, t] given
// the integral at the `from` instant (callers snapshot IntegralUntil(from)).
func (g *Gauge) AverageOver(fromIntegral float64, from, to sim.Time) float64 {
	d := (to - from).Seconds()
	if d <= 0 {
		return g.value
	}
	return (g.IntegralUntil(to) - fromIntegral) / d
}
