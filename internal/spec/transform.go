package spec

import "ursa/internal/services"

// TransformSteps rewrites a handler step tree bottom-up. fn receives each
// step and returns its replacement (or nil to drop the step); for Par steps,
// branches have already been transformed when fn sees them. The input is
// never mutated: Par nodes on a changed path are rebuilt, and the result of
// an all-dropped list is nil — matching the semantics handlers expect (an
// absent step, not an empty placeholder).
//
// This is the spec-level substrate for derived-app rewrites ("same app minus
// these spawns", "swap this model's cost"): transforms express the rewrite
// once, instead of each caller hand-rebuilding nested slices.
func TransformSteps(steps []services.Step, fn func(services.Step) services.Step) []services.Step {
	var out []services.Step
	for _, st := range steps {
		if p, ok := st.(services.Par); ok {
			branches := make([][]services.Step, len(p.Branches))
			for i, br := range p.Branches {
				branches[i] = TransformSteps(br, fn)
			}
			st = services.Par{Branches: branches}
		}
		if replaced := fn(st); replaced != nil {
			out = append(out, replaced)
		}
	}
	return out
}

// DropSpawns removes every Spawn step whose class is in drop, including
// spawns nested under Par branches. Other steps are preserved untouched.
func DropSpawns(steps []services.Step, drop map[string]bool) []services.Step {
	return TransformSteps(steps, func(st services.Step) services.Step {
		if sp, ok := st.(services.Spawn); ok && drop[sp.Class] {
			return nil
		}
		return st
	})
}
