// Package spec defines the declarative topology layer: a versioned,
// serializable description of a microservice application — services with
// rpc/worker kinds, per-operation step lists, request classes with SLAs and
// priorities, and a workload mix — together with a YAML/JSON loader, a
// validator that reports field-path errors, a compiler to the simulator's
// native services.AppSpec + workload.Mix, a canonical dumper, and a seeded
// random-topology generator.
//
// The built-in benchmark applications (examples/specs/*.yaml) load through
// this package, so every topology Ursa can evaluate — hand-written or
// generated — is data, not Go code. See DESIGN.md §4g.
package spec

import (
	"fmt"
	"strconv"
	"strings"
)

// Version is the spec schema version this package reads and writes.
const Version = 1

// File is the parsed wire form of a topology spec, prior to compilation.
// Field order follows the canonical file layout.
type File struct {
	// Version is the schema version (must equal Version).
	Version int
	// App names the application.
	App string
	// Regions optionally declares the geo-topology: named node groups plus
	// the WAN edges between them. Empty means the single-region world.
	Regions []Region
	// Services lists the microservices, in file order.
	Services []Service
	// Classes lists the request classes, in file order.
	Classes []Class
	// Workload optionally declares the nominal load: total request rate and
	// the weighted class mix.
	Workload *Workload
}

// Region declares one geo-region: a named node group with per-node CPU
// capacities, plus its outbound WAN edges. Region-aware placement pins each
// service's replicas to its home region's nodes.
type Region struct {
	Name string
	// Nodes lists the CPU capacity of each node in the region's group.
	Nodes []float64
	// WAN lists latency edges to peer regions, in file order. An edge is
	// looked up in either direction, so a symmetric link needs only one
	// declaration.
	WAN []WANEdge
}

// WANEdge is one WAN latency declaration, parsed from `80ms` or
// `80ms +/- 10ms` syntax — the spread is jitter, spreading each cross-region
// delivery uniformly over [latency, latency+jitter).
type WANEdge struct {
	To        string
	LatencyMs float64
	JitterMs  float64
}

// Service describes one microservice.
type Service struct {
	Name string
	// Kind selects the defaults profile: "rpc" (interactive, gRPC-style
	// unbounded handlers, RPC ingress with flow control) or "worker"
	// (bounded MQ-consumer pool, no ingress).
	Kind string
	// CPUs is the container CPU limit per replica (0 = simulator default).
	CPUs float64
	// Replicas is the deployment-time replica count (0 = 1).
	Replicas int
	// Threads overrides the kind's worker-slot default when > 0.
	Threads int
	// Daemons overrides the kind's daemon-slot default when > 0.
	Daemons int
	// MaxReplicas caps scaling; 0 means unlimited.
	MaxReplicas int
	// StartupDelaySec is the container start latency on scale-out, seconds.
	StartupDelaySec float64
	// Region is the service's home region (must be declared under regions:).
	// Empty defaults to the first declared region, or nowhere when the file
	// declares no regions.
	Region string
	// Ingress overrides the kind's ingress profile when non-nil.
	Ingress *Ingress
	// Operations maps operation (request-class) names to handler bodies, in
	// file order.
	Operations []Operation
}

// Ingress configures the RPC ingress stage (§III backpressure).
type Ingress struct {
	// CostMs is the CPU cost of admitting one inbound RPC, milliseconds.
	// Zero disables the ingress stage.
	CostMs float64
	// Window is the per-replica flow-control window.
	Window int
}

// Operation is one request-class handler: an ordered step list.
type Operation struct {
	Name  string
	Steps []Step
}

// StepKind discriminates the step union.
type StepKind int

const (
	// StepCompute burns CPU for a random duration.
	StepCompute StepKind = iota
	// StepCall invokes another service (nested-rpc, event-rpc or mq).
	StepCall
	// StepSpawn enqueues a new measured job of another class.
	StepSpawn
	// StepPar runs branches concurrently within the handler.
	StepPar
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case StepCompute:
		return "compute"
	case StepCall:
		return "call"
	case StepSpawn:
		return "spawn"
	case StepPar:
		return "par"
	default:
		return fmt.Sprintf("StepKind(%d)", int(k))
	}
}

// Step is one operation step; exactly the fields of its Kind are meaningful.
type Step struct {
	Kind StepKind
	// Compute fields.
	Duration Duration
	CV       float64
	// Call / Spawn fields.
	Service string
	Mode    string // "nested-rpc" | "event-rpc" | "mq" ("" = nested-rpc)
	Class   string // Call: optional class override; Spawn: required class
	// ErrorRate is the probability the callee rejects the call with an
	// application error (Call only; 0 = never).
	ErrorRate float64
	// Par field.
	Branches []Branch
}

// Branch is one parallel branch of a Par step.
type Branch struct {
	Steps []Step
}

// Duration is a service-time description parsed from `30ms`-style syntax,
// optionally with a `+/- 10ms` spread.
type Duration struct {
	// MeanMs is the mean, milliseconds.
	MeanMs float64
	// DevMs is the standard deviation from `+/-` syntax, milliseconds; the
	// compiler turns it into a coefficient of variation. Zero means
	// unspecified.
	DevMs float64
}

// Class describes one request class or priority level with its SLA.
type Class struct {
	Name string
	// Entry is the service receiving the class's requests.
	Entry string
	// Priority orders queue service; lower is more urgent.
	Priority int
	// Derived marks classes only spawned by other flows, never injected by
	// clients.
	Derived bool
	// SLA is the end-to-end latency target.
	SLA SLA
}

// SLA is a percentile latency target.
type SLA struct {
	Percentile float64
	LatencyMs  float64
}

// Workload declares nominal load for the app.
type Workload struct {
	// Rate is the total request rate, RPS.
	Rate float64
	// Mix is the weighted class mix, in file order.
	Mix []MixEntry
}

// MixEntry is one class weight of the mix.
type MixEntry struct {
	Class  string
	Weight float64
}

// Error is a loader/validator error carrying the field path it refers to,
// e.g. "services.frontend.operations.upload-post.steps[1].call.service".
type Error struct {
	Path string
	Msg  string
}

// Error implements error.
func (e *Error) Error() string {
	if e.Path == "" {
		return e.Msg
	}
	return e.Path + ": " + e.Msg
}

// errf builds a field-path error.
func errf(path, format string, args ...any) *Error {
	return &Error{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// parseDuration parses `30ms`, `1.5s`, `250us`, `2m`, or `30ms +/- 10ms`.
func parseDuration(s string) (Duration, error) {
	s = strings.TrimSpace(s)
	if i := strings.Index(s, "+/-"); i >= 0 {
		mean, err := parseOneDuration(strings.TrimSpace(s[:i]))
		if err != nil {
			return Duration{}, err
		}
		dev, err := parseOneDuration(strings.TrimSpace(s[i+len("+/-"):]))
		if err != nil {
			return Duration{}, err
		}
		if dev < 0 {
			return Duration{}, fmt.Errorf("negative deviation in %q", s)
		}
		return Duration{MeanMs: mean, DevMs: dev}, nil
	}
	mean, err := parseOneDuration(s)
	if err != nil {
		return Duration{}, err
	}
	return Duration{MeanMs: mean}, nil
}

// parseOneDuration parses a single `<number><unit>` duration into ms.
func parseOneDuration(s string) (float64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty duration")
	}
	units := []struct {
		suffix string
		ms     float64
	}{
		{"us", 0.001}, {"ms", 1}, {"s", 1000}, {"m", 60000},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			num := strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("malformed duration %q (want e.g. \"30ms\" or \"30ms +/- 10ms\")", s)
			}
			return v * u.ms, nil
		}
	}
	return 0, fmt.Errorf("malformed duration %q: missing unit (us|ms|s|m)", s)
}

// formatMs renders a millisecond value in canonical duration syntax.
func formatMs(ms float64) string {
	return strconv.FormatFloat(ms, 'g', -1, 64) + "ms"
}

// formatFloat renders a float without loss.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
