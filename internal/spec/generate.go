package spec

import (
	"fmt"
	"math"
	"math/rand"
)

// GenParams parameterises the seeded random-topology generator. The zero
// value of every bound selects the default noted on the field; Seed and Name
// are the caller's identity for the topology. Two calls with equal params
// produce byte-identical Files on any platform — the generator draws from a
// private rand.Rand in a fixed order and never consults global state.
type GenParams struct {
	// Name is the generated application's name (required).
	Name string
	// Seed drives every random draw.
	Seed int64
	// MinDepth..MaxDepth bound the layers of the service DAG (defaults 2..4,
	// frontend included).
	MinDepth, MaxDepth int
	// MaxWidth bounds services per non-frontend layer (default 3).
	MaxWidth int
	// MaxFanOut bounds outbound calls per handler (default 2).
	MaxFanOut int
	// RPCShare and EventShare set the call-edge kind mix; the remainder is
	// mq (defaults 0.6 / 0.2).
	RPCShare, EventShare float64
	// MaxClasses bounds the interactive request classes (default 2).
	MaxClasses int
	// AsyncProb is the probability of adding a spawned async worker class
	// (default 0.35).
	AsyncProb float64
	// TargetCores sizes the workload rate so the offered compute load is
	// roughly this many cores (default 8).
	TargetCores float64
	// SLAHeadroom, when > 0, scales the SLA target over the estimated mean
	// end-to-end latency. When unset, a headroom in [3.5, 6.5) is drawn per
	// class and applied to a percentile-aware *tail* estimate instead of the
	// mean — the mean is blind to service-time variability and queueing
	// delay, and SLAs drawn as small mean multiples land below the latency
	// range any allocation can reach (the deployment fails outright).
	SLAHeadroom float64
}

func (p *GenParams) defaults() {
	if p.MinDepth <= 0 {
		p.MinDepth = 2
	}
	if p.MaxDepth < p.MinDepth {
		p.MaxDepth = p.MinDepth + 2
	}
	if p.MaxWidth <= 0 {
		p.MaxWidth = 3
	}
	if p.MaxFanOut <= 0 {
		p.MaxFanOut = 2
	}
	if p.RPCShare <= 0 {
		p.RPCShare = 0.6
	}
	if p.EventShare <= 0 {
		p.EventShare = 0.2
	}
	if p.MaxClasses <= 0 {
		p.MaxClasses = 2
	}
	if p.AsyncProb <= 0 {
		p.AsyncProb = 0.35
	}
	if p.TargetCores <= 0 {
		p.TargetCores = 8
	}
}

// Generate builds a random layered-DAG application spec: a frontend, 1..N
// interactive classes flowing through rpc services whose calls always target
// deeper layers (so call chains are acyclic by construction), an optional
// async worker fed by a Spawn, per-class SLAs derived from the estimated
// mean end-to-end latency, and a workload section sized to TargetCores. The
// returned File always passes Validate.
func Generate(p GenParams) (*File, error) {
	p.defaults()
	if p.Name == "" {
		return nil, fmt.Errorf("spec: GenParams.Name required")
	}
	rng := rand.New(rand.NewSource(p.Seed))
	g := &generator{p: p, rng: rng}
	f := g.build()
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("generated spec invalid (seed %d): %w", p.Seed, err)
	}
	return f, nil
}

type generator struct {
	p   GenParams
	rng *rand.Rand
	// layers[l] lists service indices (into file.Services) of layer l.
	layers [][]int
	file   File
}

func (g *generator) build() *File {
	p := g.p
	g.file = File{Version: Version, App: p.Name}
	depth := p.MinDepth + g.rng.Intn(p.MaxDepth-p.MinDepth+1)

	// Layer 0 is the single frontend; deeper layers are 1..MaxWidth wide.
	g.addService("frontend", 0)
	for l := 1; l < depth; l++ {
		width := 1 + g.rng.Intn(p.MaxWidth)
		for i := 0; i < width; i++ {
			g.addService(fmt.Sprintf("svc-%d-%d", l, i), l)
		}
	}

	// Interactive classes: independent flows from the frontend.
	classes := 1 + g.rng.Intn(p.MaxClasses)
	for c := 0; c < classes; c++ {
		name := fmt.Sprintf("op-%c", 'a'+c)
		g.growFlow(0, 0, name)
		pct := 95.0
		if g.rng.Float64() < 0.5 {
			pct = 99.0
		}
		headroom := p.SLAHeadroom
		baseMs := g.estimateMean(0, name, map[string]bool{})
		if headroom <= 0 {
			// The mean estimate is tail-blind: per-step CV runs up to 0.6
			// and queueing delay compounds through the call chain, so upper
			// percentiles sit well above small mean multiples — and the MIP
			// certifies the SLA from *summed per-service tail bounds*, which
			// are heavier still. An SLA drawn too close to the mean is
			// infeasible at ANY allocation (the deployment fails outright
			// instead of being merely hard), so the default draw applies the
			// headroom to a percentile-aware tail estimate: p99 targets
			// inflate each step by more standard deviations than p95 ones,
			// and high-variability flows get proportionally more slack.
			headroom = 3.5 + 3*g.rng.Float64()
			z := 2.0
			if pct == 99 {
				z = 3.0
			}
			baseMs = g.estimateTail(0, name, map[string]bool{}, z)
		}
		g.file.Classes = append(g.file.Classes, Class{
			Name:  name,
			Entry: "frontend",
			SLA:   SLA{Percentile: pct, LatencyMs: roundMs(baseMs * headroom)},
		})
	}

	// Layer width is drawn before flows are grown, so some services may never
	// be targeted by any class; prune them rather than leave operation-less
	// services the validator (rightly) rejects.
	var kept []Service
	for i := range g.file.Services {
		if len(g.file.Services[i].Operations) > 0 {
			kept = append(kept, g.file.Services[i])
		}
	}
	g.file.Services = kept

	// Optionally hang an async worker class off the first interactive flow,
	// like the built-ins' ML and transcode tiers.
	if g.rng.Float64() < p.AsyncProb {
		wi := len(g.file.Services)
		g.file.Services = append(g.file.Services, Service{
			Name:     "async-worker",
			Kind:     "worker",
			CPUs:     float64(int(2) << g.rng.Intn(2)), // 2 or 4
			Replicas: 1 + g.rng.Intn(3),
			Threads:  4 * (1 + g.rng.Intn(4)),
		})
		mean := 50 + 350*g.rng.Float64()
		cv := 0.3 + 0.3*g.rng.Float64()
		g.file.Services[wi].Operations = []Operation{{
			Name: "async-job",
			Steps: []Step{{
				Kind:     StepCompute,
				Duration: Duration{MeanMs: roundMs(mean)},
				CV:       roundMs(cv),
			}},
		}}
		first := &g.file.Services[0]
		op := &first.Operations[0]
		op.Steps = append(op.Steps, Step{Kind: StepSpawn, Service: "async-worker", Class: "async-job"})
		g.file.Classes = append(g.file.Classes, Class{
			Name:    "async-job",
			Entry:   "async-worker",
			Derived: true,
			SLA:     SLA{Percentile: 99, LatencyMs: roundMs(mean * 25)},
		})
	}

	// Workload: weights per interactive class, rate sized to TargetCores of
	// offered compute.
	w := &Workload{}
	var weights []float64
	totalW := 0.0
	for c := 0; c < classes; c++ {
		wgt := float64(1 + g.rng.Intn(10))
		weights = append(weights, wgt)
		totalW += wgt
	}
	costPerReq := 0.0
	for c := 0; c < classes; c++ {
		name := g.file.Classes[c].Name
		costPerReq += weights[c] / totalW * g.computeCost(0, name, map[string]bool{})
	}
	rate := p.TargetCores * 1000 / math.Max(costPerReq, 1)
	w.Rate = roundMs(rate)
	for c := 0; c < classes; c++ {
		w.Mix = append(w.Mix, MixEntry{Class: g.file.Classes[c].Name, Weight: weights[c]})
	}
	g.file.Workload = w
	return &g.file
}

func (g *generator) addService(name string, layer int) {
	for len(g.layers) <= layer {
		g.layers = append(g.layers, nil)
	}
	g.layers[layer] = append(g.layers[layer], len(g.file.Services))
	g.file.Services = append(g.file.Services, Service{
		Name:     name,
		Kind:     "rpc",
		CPUs:     float64(int(1) << g.rng.Intn(3)), // 1, 2 or 4
		Replicas: 1 + g.rng.Intn(2),
	})
}

// growFlow ensures service si implements class, generating its handler (and
// recursively its callees' handlers) if absent. Calls only ever target the
// next layer down, so chains are acyclic by construction.
func (g *generator) growFlow(si, layer int, class string) {
	svc := &g.file.Services[si]
	for i := range svc.Operations {
		if svc.Operations[i].Name == class {
			return
		}
	}
	// Reserve the operation slot before recursing: shared downstream targets
	// see it and stop.
	svc.Operations = append(svc.Operations, Operation{Name: class})
	opIdx := len(svc.Operations) - 1

	steps := []Step{g.computeStep(layer)}
	if layer+1 < len(g.layers) {
		next := g.layers[layer+1]
		fan := 1 + g.rng.Intn(min(g.p.MaxFanOut, len(next)))
		targets := g.rng.Perm(len(next))[:fan]
		var calls []Step
		for _, t := range targets {
			ti := next[t]
			mode := g.pickMode()
			calls = append(calls, Step{Kind: StepCall, Service: g.file.Services[ti].Name, Mode: mode})
			g.growFlow(ti, layer+1, class)
		}
		if len(calls) > 1 && g.rng.Float64() < 0.5 {
			par := Step{Kind: StepPar}
			for _, c := range calls {
				par.Branches = append(par.Branches, Branch{Steps: []Step{c}})
			}
			steps = append(steps, par)
		} else {
			steps = append(steps, calls...)
		}
	}
	// Re-take the pointer: recursion may have appended operations to this
	// same service (sibling classes) and moved the backing array.
	g.file.Services[si].Operations[opIdx].Steps = steps
}

func (g *generator) computeStep(layer int) Step {
	// Deeper layers do the heavier lifting (storage, models), like the
	// benchmark apps.
	base := 1 + 6*float64(layer)
	mean := base + (4*base)*g.rng.Float64()
	cv := 0.2 + 0.4*g.rng.Float64()
	return Step{
		Kind:     StepCompute,
		Duration: Duration{MeanMs: roundMs(mean)},
		CV:       roundMs(cv),
	}
}

func (g *generator) pickMode() string {
	u := g.rng.Float64()
	switch {
	case u < g.p.RPCShare:
		return "nested-rpc"
	case u < g.p.RPCShare+g.p.EventShare:
		return "event-rpc"
	default:
		return "mq"
	}
}

// estimateMean walks a class flow and returns the rough mean end-to-end
// latency: compute means summed, Par taking its slowest branch, every call
// mode counted (mq deliveries are part of the same measured job), plus a
// per-hop ingress allowance.
func (g *generator) estimateMean(si int, class string, visiting map[string]bool) float64 {
	svc := &g.file.Services[si]
	key := svc.Name + "/" + class
	if visiting[key] {
		return 0
	}
	visiting[key] = true
	defer delete(visiting, key)
	for i := range svc.Operations {
		if svc.Operations[i].Name != class {
			continue
		}
		return g.stepsMean(svc.Operations[i].Steps, class, visiting)
	}
	return 0
}

func (g *generator) stepsMean(steps []Step, class string, visiting map[string]bool) float64 {
	total := 0.0
	for i := range steps {
		st := &steps[i]
		switch st.Kind {
		case StepCompute:
			total += st.Duration.MeanMs
		case StepCall:
			total += 1 // ingress + queueing allowance per hop
			total += g.estimateMean(g.serviceIndex(st.Service), effectiveClass(class, st.Class), visiting)
		case StepSpawn:
			// Spawned jobs are measured separately; no e2e contribution.
		case StepPar:
			worst := 0.0
			for bi := range st.Branches {
				if m := g.stepsMean(st.Branches[bi].Steps, class, visiting); m > worst {
					worst = m
				}
			}
			total += worst
		}
	}
	return total
}

// estimateTail is estimateMean's percentile-aware companion: compute steps
// contribute mean·(1 + z·cv) — z standard deviations above the mean — and
// each call hop a (1+z) ms ingress/queueing allowance. z encodes the SLA
// percentile (≈2 for p95, ≈3 for p99), so tighter percentiles and
// higher-variability flows both push the SLA target up. Still a walk, not a
// queueing model: the headroom multiplier absorbs the rest.
func (g *generator) estimateTail(si int, class string, visiting map[string]bool, z float64) float64 {
	svc := &g.file.Services[si]
	key := svc.Name + "/" + class
	if visiting[key] {
		return 0
	}
	visiting[key] = true
	defer delete(visiting, key)
	for i := range svc.Operations {
		if svc.Operations[i].Name != class {
			continue
		}
		return g.stepsTail(svc.Operations[i].Steps, class, visiting, z)
	}
	return 0
}

func (g *generator) stepsTail(steps []Step, class string, visiting map[string]bool, z float64) float64 {
	total := 0.0
	for i := range steps {
		st := &steps[i]
		switch st.Kind {
		case StepCompute:
			total += st.Duration.MeanMs * (1 + z*st.CV)
		case StepCall:
			total += 1 + z
			total += g.estimateTail(g.serviceIndex(st.Service), effectiveClass(class, st.Class), visiting, z)
		case StepSpawn:
			// Spawned jobs are measured separately; no e2e contribution.
		case StepPar:
			worst := 0.0
			for bi := range st.Branches {
				if m := g.stepsTail(st.Branches[bi].Steps, class, visiting, z); m > worst {
					worst = m
				}
			}
			total += worst
		}
	}
	return total
}

// computeCost sums compute milliseconds across ALL branches of a class flow
// — the per-request CPU demand used to size the workload rate.
func (g *generator) computeCost(si int, class string, visiting map[string]bool) float64 {
	svc := &g.file.Services[si]
	key := svc.Name + "/" + class
	if visiting[key] {
		return 0
	}
	visiting[key] = true
	defer delete(visiting, key)
	for i := range svc.Operations {
		if svc.Operations[i].Name != class {
			continue
		}
		return g.stepsCost(svc.Operations[i].Steps, class, visiting)
	}
	return 0
}

func (g *generator) stepsCost(steps []Step, class string, visiting map[string]bool) float64 {
	total := 0.0
	for i := range steps {
		st := &steps[i]
		switch st.Kind {
		case StepCompute:
			total += st.Duration.MeanMs
		case StepCall:
			total += 0.4 // ingress admission cost, both ends
			total += g.computeCost(g.serviceIndex(st.Service), effectiveClass(class, st.Class), visiting)
		case StepSpawn:
			total += g.computeCost(g.serviceIndex(st.Service), st.Class, visiting)
		case StepPar:
			for bi := range st.Branches {
				total += g.stepsCost(st.Branches[bi].Steps, class, visiting)
			}
		}
	}
	return total
}

func (g *generator) serviceIndex(name string) int {
	for i := range g.file.Services {
		if g.file.Services[i].Name == name {
			return i
		}
	}
	panic("spec: generator produced a dangling service reference: " + name)
}

func effectiveClass(current, override string) string {
	if override != "" {
		return override
	}
	return current
}

// roundMs trims a drawn float to 3 decimals so generated files stay readable
// and round-trip exactly through the decimal duration syntax.
func roundMs(v float64) float64 {
	return math.Round(v*1000) / 1000
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
