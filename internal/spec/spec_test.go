package spec

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ursa/internal/services"
)

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want Duration
	}{
		{"30ms", Duration{MeanMs: 30}},
		{"1.5s", Duration{MeanMs: 1500}},
		{"250us", Duration{MeanMs: 0.25}},
		{"2m", Duration{MeanMs: 120000}},
		{"30ms +/- 10ms", Duration{MeanMs: 30, DevMs: 10}},
		{"1s +/- 250ms", Duration{MeanMs: 1000, DevMs: 250}},
		{"  45ms  ", Duration{MeanMs: 45}},
	}
	for _, c := range cases {
		got, err := parseDuration(c.in)
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q: got %+v want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "30", "ms", "fastms", "30ms +/- x", "30xs"} {
		if _, err := parseDuration(bad); err == nil {
			t.Errorf("%q: expected error", bad)
		}
	}
}

func TestYAMLParserBasics(t *testing.T) {
	src := `
# a comment
top: 1
seq:
  - a
  -   b   # trailing comment
flow: {x: 1, y: [2, "three", {z: 'four'}]}
"quoted key": "quoted # value"
nested:
  inner:
    - k: v
      w: u
`
	n, err := parseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	if n.get("top").scalar != "1" {
		t.Errorf("top: %q", n.get("top").scalar)
	}
	seq := n.get("seq")
	if len(seq.items) != 2 || seq.items[0].scalar != "a" || seq.items[1].scalar != "b" {
		t.Errorf("seq: %+v", seq)
	}
	flow := n.get("flow")
	y := flow.get("y")
	if len(y.items) != 3 || y.items[1].scalar != "three" || !y.items[1].quoted {
		t.Errorf("flow.y: %+v", y)
	}
	if y.items[2].get("z").scalar != "four" {
		t.Errorf("flow.y[2].z: %+v", y.items[2])
	}
	if n.get("quoted key").scalar != "quoted # value" {
		t.Errorf("quoted key: %q", n.get("quoted key").scalar)
	}
	item := n.get("nested").get("inner").items[0]
	if item.get("k").scalar != "v" || item.get("w").scalar != "u" {
		t.Errorf("nested seq item: %+v", item)
	}
}

func TestYAMLParserRejects(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"tab indent", "a: 1\n\tb: 2", "tabs are not allowed"},
		{"duplicate key", "a: 1\na: 2", `duplicate key "a"`},
		{"unterminated string", `a: "oops`, "unterminated string"},
		{"bad flow", "a: {x: 1", "expected ',' or '}'"},
		{"empty", "  \n# only comments\n", "empty document"},
	}
	for _, c := range cases {
		if _, err := parseYAML(c.src); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: got %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}

// minimalDoc is a valid two-service doc the error-path table mutates.
const minimalDoc = `version: 1
app: demo
services:
  - name: frontend
    kind: rpc
    cpus: 1
    replicas: 1
    operations:
      get:
        steps:
          - compute: 5ms
          - call: backend
  - name: backend
    kind: rpc
    cpus: 1
    replicas: 1
    operations:
      get:
        steps:
          - compute: 5ms
classes:
  - name: get
    entry: frontend
    sla: {percentile: 99, latency: 100ms}
`

// TestLoaderErrorPaths pins one golden message per loader failure mode: the
// exact field path and wording are the user interface of the validator.
func TestLoaderErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			"malformed duration",
			strings.Replace(minimalDoc, "- compute: 5ms\n          - call: backend", "- compute: fastms\n          - call: backend", 1),
			`app.yaml: services.frontend.operations.get.steps[0].compute: malformed duration "fastms" (want e.g. "30ms" or "30ms +/- 10ms")`,
		},
		{
			"duration missing unit",
			strings.Replace(minimalDoc, "- compute: 5ms\n          - call: backend", "- compute: \"30\"\n          - call: backend", 1),
			`app.yaml: services.frontend.operations.get.steps[0].compute: malformed duration "30": missing unit (us|ms|s|m)`,
		},
		{
			"unknown service reference",
			strings.Replace(minimalDoc, "- call: backend", "- call: nosuch", 1),
			`app.yaml: services.frontend.operations.get.steps[1].call.service: unknown service "nosuch"`,
		},
		{
			"cyclic rpc chain",
			strings.Replace(minimalDoc, "      get:\n        steps:\n          - compute: 5ms\nclasses:",
				"      get:\n        steps:\n          - compute: 5ms\n          - call: frontend\nclasses:", 1),
			`app.yaml: services.backend.operations.get.steps[1].call: cyclic call chain: frontend/get -> backend/get -> frontend/get`,
		},
		{
			"duplicate operation names",
			strings.Replace(minimalDoc, "      get:\n        steps:\n          - compute: 5ms\nclasses:",
				"      get:\n        steps:\n          - compute: 5ms\n      get:\n        steps:\n          - compute: 5ms\nclasses:", 1),
			`app.yaml: duplicate key "get"`,
		},
		{
			"duplicate service names",
			strings.Replace(minimalDoc, "- name: backend", "- name: frontend", 1),
			`app.yaml: services[1].name: duplicate service "frontend"`,
		},
		{
			"unknown field",
			strings.Replace(minimalDoc, "    kind: rpc\n    cpus: 1\n    replicas: 1\n    operations:\n      get:\n        steps:\n          - compute: 5ms\n          - call: backend",
				"    kind: rpc\n    cpus: 1\n    replica_count: 1\n    operations:\n      get:\n        steps:\n          - compute: 5ms\n          - call: backend", 1),
			`app.yaml: services.frontend.replica_count: unknown field (known fields: name, kind, cpus, replicas, threads, daemons, max_replicas, startup_delay, region, ingress, operations)`,
		},
		{
			"service bound to unknown region",
			strings.Replace(minimalDoc, "- name: backend\n    kind: rpc",
				"- name: backend\n    kind: rpc\n    region: mars", 1),
			`app.yaml: services.backend.region: unknown region "mars"`,
		},
		{
			"wan edge to unknown region",
			strings.Replace(minimalDoc, "app: demo\n",
				"app: demo\nregions:\n  - name: us-east\n    nodes: [64]\n    wan:\n      eu-west: 80ms\n", 1),
			`app.yaml: regions.us-east.wan.eu-west: unknown region "eu-west"`,
		},
		{
			"duplicate region",
			strings.Replace(minimalDoc, "app: demo\n",
				"app: demo\nregions:\n  - name: us-east\n    nodes: [64]\n  - name: us-east\n    nodes: [32]\n", 1),
			`app.yaml: regions[1].name: duplicate region "us-east"`,
		},
		{
			"error rate out of range",
			strings.Replace(minimalDoc, "- call: backend",
				"- call: {service: backend, error_rate: 1.5}", 1),
			`app.yaml: services.frontend.operations.get.steps[1].call.error_rate: must be in [0, 1]`,
		},
		{
			"unknown class in mix",
			minimalDoc + "workload:\n  rate: 10\n  mix:\n    nosuch: 1\n",
			`app.yaml: workload.mix.nosuch: unknown class "nosuch"`,
		},
		{
			"unknown kind",
			strings.Replace(minimalDoc, "kind: rpc", "kind: cron", 1),
			`app.yaml: services.frontend.kind: unknown kind "cron" (want rpc|worker)`,
		},
		{
			"unknown call mode",
			strings.Replace(minimalDoc, "- call: backend", "- call: {service: backend, mode: udp}", 1),
			`app.yaml: services.frontend.operations.get.steps[1].call.mode: unknown call mode "udp" (want nested-rpc|event-rpc|mq)`,
		},
		{
			"entry without operation",
			strings.Replace(minimalDoc, "entry: frontend", "entry: backend", 1) + "  - name: extra\n    entry: frontend\n    sla: {percentile: 99, latency: 1s}\n",
			`app.yaml: classes.extra.entry: service "frontend" has no operation "extra"`,
		},
		{
			"cv and spread together",
			strings.Replace(minimalDoc, "- compute: 5ms\n          - call: backend",
				"- compute: {duration: 5ms +/- 1ms, cv: 0.5}\n          - call: backend", 1),
			`app.yaml: services.frontend.operations.get.steps[0].compute: cv and +/- spread are mutually exclusive`,
		},
		{
			"unsupported version",
			strings.Replace(minimalDoc, "version: 1", "version: 9", 1),
			`app.yaml: version: unsupported spec version 9 (this build reads version 1)`,
		},
		{
			"derived class in mix",
			`version: 1
app: demo
services:
  - name: worker
    kind: worker
    cpus: 1
    replicas: 1
    operations:
      bg:
        steps:
          - compute: 5ms
classes:
  - name: bg
    entry: worker
    derived: true
    sla: {percentile: 99, latency: 1s}
workload:
  rate: 10
  mix:
    bg: 1
`,
			`app.yaml: workload.mix.bg: derived class "bg" cannot receive client load`,
		},
	}
	for _, c := range cases {
		_, err := Parse("app.yaml", []byte(c.doc))
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("%s:\n  got:  %s\n  want: %s", c.name, err, c.want)
		}
	}
}

func TestDerivedClassNeedsNoMix(t *testing.T) {
	doc := minimalDoc + `workload:
  rate: 10
  mix:
    get: 1
`
	f, err := Parse("demo.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rate != 10 || c.Mix["get"] != 1 {
		t.Fatalf("workload: %+v", c)
	}
}

func TestBuildKindDefaultsAndOverrides(t *testing.T) {
	doc := `version: 1
app: defaults
services:
  - name: api
    kind: rpc
    cpus: 2
    replicas: 3
    operations:
      get:
        steps:
          - compute: 5ms
  - name: crunch
    kind: worker
    cpus: 4
    threads: 24
    replicas: 2
    operations:
      job:
        steps:
          - compute: 30ms +/- 10ms
  - name: tuned
    kind: rpc
    cpus: 1
    replicas: 1
    threads: 2048
    daemons: 8
    ingress: {cost: 1ms, window: 16}
    operations:
      get:
        steps:
          - compute: 2ms
classes:
  - name: get
    entry: api
    sla: {percentile: 99, latency: 100ms}
  - name: job
    entry: crunch
    derived: true
    sla: {percentile: 95, latency: 2s}
`
	f, err := Parse("defaults.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	// "get" must exist on tuned too for the walker? No: entry is api; tuned is
	// unreachable but still validated structurally.
	c, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	api := c.Spec.ServiceSpecByName("api")
	if api.Threads != 4096 || api.Daemons != 64 || api.IngressCostMs != 0.2 || api.IngressWindow != 32 {
		t.Errorf("rpc defaults: %+v", api)
	}
	crunch := c.Spec.ServiceSpecByName("crunch")
	if crunch.Threads != 24 || crunch.Daemons != 16 || crunch.IngressCostMs != 0 || crunch.IngressWindow != 0 {
		t.Errorf("worker profile: %+v", crunch)
	}
	// +/- spread becomes a CV.
	comp := crunch.Handlers["job"][0].(services.Compute)
	if comp.MeanMs != 30 || comp.CV < 0.333 || comp.CV > 0.334 {
		t.Errorf("spread→cv: %+v", comp)
	}
	tuned := c.Spec.ServiceSpecByName("tuned")
	if tuned.Threads != 2048 || tuned.Daemons != 8 || tuned.IngressCostMs != 1 || tuned.IngressWindow != 16 {
		t.Errorf("overrides: %+v", tuned)
	}
}

func TestTransformStepsDropsOnlyNamedSpawns(t *testing.T) {
	steps := []services.Step{
		services.Compute{MeanMs: 1},
		services.Spawn{Service: "ml", Class: "analyze"},
		services.Par{Branches: [][]services.Step{
			{services.Call{Service: "a"}, services.Spawn{Service: "ml", Class: "analyze"}},
			{services.Spawn{Service: "other", Class: "keep"}},
		}},
		services.Spawn{Service: "other", Class: "keep"},
	}
	got := DropSpawns(steps, map[string]bool{"analyze": true})
	want := []services.Step{
		services.Compute{MeanMs: 1},
		services.Par{Branches: [][]services.Step{
			{services.Call{Service: "a"}},
			{services.Spawn{Service: "other", Class: "keep"}},
		}},
		services.Spawn{Service: "other", Class: "keep"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %#v\nwant %#v", got, want)
	}
	// Input untouched.
	if len(steps) != 4 {
		t.Error("input mutated")
	}
	par := steps[2].(services.Par)
	if len(par.Branches[0]) != 2 {
		t.Error("input Par branch mutated")
	}
	// All-dropped list yields nil, matching handler semantics.
	if got := DropSpawns([]services.Step{services.Spawn{Service: "ml", Class: "analyze"}},
		map[string]bool{"analyze": true}); got != nil {
		t.Errorf("all-dropped: got %#v want nil", got)
	}
}

func TestRegionsRoundTrip(t *testing.T) {
	doc := `version: 1
app: geo
regions:
  - name: us-east
    nodes: [64, 64]
    wan:
      eu-west: 80ms +/- 10ms
  - name: eu-west
    nodes: [48]
services:
  - name: frontend
    kind: rpc
    cpus: 1
    replicas: 1
    region: us-east
    operations:
      get:
        steps:
          - compute: 5ms
          - call: {service: backend, error_rate: 0.02}
  - name: backend
    kind: rpc
    cpus: 1
    replicas: 1
    region: eu-west
    operations:
      get:
        steps:
          - compute: 5ms
classes:
  - name: get
    entry: frontend
    sla: {percentile: 99, latency: 100ms}
`
	f, err := Parse("geo.yaml", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	topo := c.Regions
	if len(topo.Groups) != 2 || topo.Groups[0].Name != "us-east" || len(topo.Groups[0].Capacities) != 2 {
		t.Fatalf("groups: %+v", topo.Groups)
	}
	if len(topo.Links) != 1 || topo.Links[0].LatencyMs != 80 || topo.Links[0].JitterMs != 10 {
		t.Fatalf("links: %+v", topo.Links)
	}
	if topo.Bindings["frontend"] != "us-east" || topo.Bindings["backend"] != "eu-west" {
		t.Fatalf("bindings: %+v", topo.Bindings)
	}
	call := c.Spec.ServiceSpecByName("frontend").Handlers["get"][1].(services.Call)
	if call.ErrorProb != 0.02 {
		t.Fatalf("error_rate not compiled: %+v", call)
	}
	// Encode → parse reproduces the File (regions, bindings, error_rate).
	f2, err := Parse("geo.yaml", f.Encode())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(f, f2) {
		t.Fatalf("round trip changed the file:\n%s\nvs\n%s", f.Encode(), f2.Encode())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := GenParams{Name: "gen-1", Seed: 42}
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same params, different topologies")
	}
	if string(a.Encode()) != string(b.Encode()) {
		t.Fatal("same params, different encodings")
	}
	c, err := Generate(GenParams{Name: "gen-2", Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Services, c.Services) {
		t.Fatal("different seeds produced identical topologies (suspicious)")
	}
}

func TestGenerateAlwaysBuildable(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		f, err := Generate(GenParams{Name: "gen", Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c, err := Build(f)
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		if len(c.Spec.Services) < 2 {
			t.Fatalf("seed %d: degenerate topology (%d services)", seed, len(c.Spec.Services))
		}
		if c.Rate <= 0 {
			t.Fatalf("seed %d: nonpositive rate", seed)
		}
		// Encode → parse → build round-trips to the same simulator spec.
		f2, err := Parse("gen.yaml", f.Encode())
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		c2, err := Build(f2)
		if err != nil {
			t.Fatalf("seed %d: rebuild: %v", seed, err)
		}
		if !reflect.DeepEqual(c.Spec, c2.Spec) {
			t.Fatalf("seed %d: encode/parse round trip changed the spec", seed)
		}
	}
}

func TestGenerateFleet(t *testing.T) {
	fleet, err := GenerateFleet(FleetParams{N: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range fleet {
		want := fmt.Sprintf("tenant-%02d", i)
		if f.App != want {
			t.Fatalf("member %d named %q, want %q", i, f.App, want)
		}
		c, err := Build(f)
		if err != nil {
			t.Fatalf("member %d: build: %v", i, err)
		}
		if c.Rate <= 0 || len(c.Spec.Services) < 2 {
			t.Fatalf("member %d: degenerate tenant (rate %v, %d services)", i, c.Rate, len(c.Spec.Services))
		}
	}
	// Member i must not depend on N: a small fleet is a prefix of a large one.
	solo, err := FleetMember(FleetParams{Seed: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fleet[4], solo) {
		t.Fatal("FleetMember(4) differs from GenerateFleet member 4")
	}
}
