package spec

import (
	"fmt"

	"ursa/internal/region"
	"ursa/internal/services"
	"ursa/internal/workload"
)

// Kind defaults: the two service profiles of the benchmark apps (§VI).
// "rpc" is an interactive service — effectively unbounded gRPC-style
// handlers and an ingress stage whose flow-control window produces
// backpressure. "worker" is a bounded MQ-consumer pool with no ingress.
// Explicit fields in the spec override these.
const (
	rpcDefaultThreads       = 4096
	rpcDefaultDaemons       = 64
	rpcDefaultIngressCostMs = 0.2
	rpcDefaultIngressWindow = 32
	workerDefaultThreads    = 8
	workerDefaultDaemons    = 16
)

// Compiled is the output of Build: the simulator-native application spec
// plus the declared workload.
type Compiled struct {
	// Spec is the deployable application.
	Spec services.AppSpec
	// Mix is the declared request mix (nil when the file has no workload
	// section).
	Mix workload.Mix
	// Rate is the declared total RPS (0 when the file has no workload
	// section).
	Rate float64
	// Regions is the declared geo-topology with per-service home-region
	// bindings (zero value when the file declares no regions). The spill
	// policy is a runtime knob, not spec data.
	Regions region.Topology
}

// Build compiles a validated File into a services.AppSpec and workload.Mix.
// The file should come from Parse (or have had Validate called); Build
// revalidates cheaply and reports any inconsistency as a field-path error.
func Build(f *File) (Compiled, error) {
	if err := f.Validate(); err != nil {
		return Compiled{}, err
	}
	var out Compiled
	out.Spec.Name = f.App
	for i := range f.Services {
		ss, err := buildService(&f.Services[i])
		if err != nil {
			return Compiled{}, err
		}
		out.Spec.Services = append(out.Spec.Services, ss)
	}
	for _, c := range f.Classes {
		out.Spec.Classes = append(out.Spec.Classes, services.ClassSpec{
			Name:          c.Name,
			Entry:         c.Entry,
			Priority:      c.Priority,
			SLAPercentile: c.SLA.Percentile,
			SLAMillis:     c.SLA.LatencyMs,
			Derived:       c.Derived,
		})
	}
	if f.Workload != nil {
		out.Rate = f.Workload.Rate
		out.Mix = workload.Mix{}
		for _, e := range f.Workload.Mix {
			out.Mix[e.Class] = e.Weight
		}
	}
	out.Regions = regionTopology(f)
	// The compiled spec must satisfy the simulator's own validator too —
	// belt and braces; the spec-level walker is strictly stricter today.
	if err := out.Spec.Validate(); err != nil {
		return Compiled{}, fmt.Errorf("compiled spec invalid: %w", err)
	}
	return out, nil
}

func buildService(s *Service) (services.ServiceSpec, error) {
	ss := services.ServiceSpec{
		Name:            s.Name,
		CPUs:            s.CPUs,
		InitialReplicas: s.Replicas,
		MaxReplicas:     s.MaxReplicas,
		StartupDelaySec: s.StartupDelaySec,
		Handlers:        map[string][]services.Step{},
	}
	switch s.Kind {
	case "rpc":
		ss.Threads = rpcDefaultThreads
		ss.Daemons = rpcDefaultDaemons
		ss.IngressCostMs = rpcDefaultIngressCostMs
		ss.IngressWindow = rpcDefaultIngressWindow
	case "worker":
		ss.Threads = workerDefaultThreads
		ss.Daemons = workerDefaultDaemons
	default:
		return ss, errf("services."+s.Name+".kind", "unknown kind %q", s.Kind)
	}
	if s.Threads > 0 {
		ss.Threads = s.Threads
	}
	if s.Daemons > 0 {
		ss.Daemons = s.Daemons
	}
	if s.Ingress != nil {
		ss.IngressCostMs = s.Ingress.CostMs
		ss.IngressWindow = s.Ingress.Window
		if ss.IngressCostMs > 0 && ss.IngressWindow == 0 {
			ss.IngressWindow = rpcDefaultIngressWindow
		}
		if ss.IngressCostMs == 0 {
			ss.IngressWindow = 0
		}
	}
	for _, op := range s.Operations {
		steps, err := buildSteps(op.Steps)
		if err != nil {
			return ss, err
		}
		ss.Handlers[op.Name] = steps
	}
	return ss, nil
}

func buildSteps(in []Step) ([]services.Step, error) {
	var out []services.Step
	for i := range in {
		st := &in[i]
		switch st.Kind {
		case StepCompute:
			cv := st.CV
			if cv == 0 && st.Duration.DevMs > 0 {
				cv = st.Duration.DevMs / st.Duration.MeanMs
			}
			out = append(out, services.Compute{MeanMs: st.Duration.MeanMs, CV: cv})
		case StepCall:
			mode, err := buildMode(st.Mode)
			if err != nil {
				return nil, err
			}
			out = append(out, services.Call{Service: st.Service, Mode: mode, Class: st.Class, ErrorProb: st.ErrorRate})
		case StepSpawn:
			out = append(out, services.Spawn{Service: st.Service, Class: st.Class})
		case StepPar:
			p := services.Par{}
			for bi := range st.Branches {
				steps, err := buildSteps(st.Branches[bi].Steps)
				if err != nil {
					return nil, err
				}
				p.Branches = append(p.Branches, steps)
			}
			out = append(out, p)
		default:
			return nil, fmt.Errorf("spec: unknown step kind %v", st.Kind)
		}
	}
	return out, nil
}

// regionTopology lifts the file's regions section (plus per-service region
// bindings) into the runtime geo-topology. A file with no regions yields the
// zero Topology, whose Install is a no-op.
func regionTopology(f *File) region.Topology {
	var t region.Topology
	for _, r := range f.Regions {
		t.Groups = append(t.Groups, region.Group{
			Name:       r.Name,
			Capacities: append([]float64(nil), r.Nodes...),
		})
		for _, e := range r.WAN {
			t.Links = append(t.Links, region.Link{
				From: r.Name, To: e.To,
				LatencyMs: e.LatencyMs, JitterMs: e.JitterMs,
			})
		}
	}
	for i := range f.Services {
		if s := &f.Services[i]; s.Region != "" {
			if t.Bindings == nil {
				t.Bindings = map[string]string{}
			}
			t.Bindings[s.Name] = s.Region
		}
	}
	return t
}

func buildMode(s string) (services.CallMode, error) {
	switch s {
	case "", "nested-rpc":
		return services.NestedRPC, nil
	case "event-rpc":
		return services.EventRPC, nil
	case "mq":
		return services.MQ, nil
	default:
		return 0, fmt.Errorf("spec: unknown call mode %q", s)
	}
}
