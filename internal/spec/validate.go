package spec

import (
	"fmt"
	"strings"
)

// Validate checks a decoded File semantically and returns the first problem
// found as a field-path *Error: version support, unique service/class/
// operation names, referential integrity of every call/spawn edge, operation
// coverage for every effective class, acyclicity of call chains, SLA sanity,
// and workload mix consistency. Files returned by Parse are already
// validated.
func (f *File) Validate() error {
	if f.Version != Version {
		return errf("version", "unsupported spec version %d (this build reads version %d)", f.Version, Version)
	}
	if f.App == "" {
		return errf("app", "must not be empty")
	}
	if len(f.Services) == 0 {
		return errf("services", "at least one service required")
	}
	regionByName := map[string]bool{}
	for i := range f.Regions {
		r := &f.Regions[i]
		if regionByName[r.Name] {
			return errf(fmt.Sprintf("regions[%d].name", i), "duplicate region %q", r.Name)
		}
		regionByName[r.Name] = true
		path := "regions." + r.Name
		if len(r.Nodes) == 0 {
			return errf(path+".nodes", "at least one node required")
		}
		for j, cap := range r.Nodes {
			if cap <= 0 {
				return errf(fmt.Sprintf("%s.nodes[%d]", path, j), "capacity must be positive")
			}
		}
	}
	for i := range f.Regions {
		r := &f.Regions[i]
		path := "regions." + r.Name
		for _, e := range r.WAN {
			if e.To == r.Name {
				return errf(path+".wan."+e.To, "region cannot link to itself")
			}
			if !regionByName[e.To] {
				return errf(path+".wan."+e.To, "unknown region %q", e.To)
			}
			if e.LatencyMs < 0 {
				return errf(path+".wan."+e.To, "latency must not be negative")
			}
		}
	}
	svcByName := map[string]*Service{}
	for i := range f.Services {
		s := &f.Services[i]
		if _, dup := svcByName[s.Name]; dup {
			return errf(fmt.Sprintf("services[%d].name", i), "duplicate service %q", s.Name)
		}
		svcByName[s.Name] = s
		path := "services." + s.Name
		if s.Kind != "rpc" && s.Kind != "worker" {
			return errf(path+".kind", "unknown kind %q (want rpc|worker)", s.Kind)
		}
		if s.CPUs < 0 {
			return errf(path+".cpus", "must not be negative")
		}
		if s.Replicas < 0 || s.Threads < 0 || s.Daemons < 0 || s.MaxReplicas < 0 {
			return errf(path, "counts must not be negative")
		}
		if s.StartupDelaySec < 0 {
			return errf(path+".startup_delay", "must not be negative")
		}
		if s.Region != "" && !regionByName[s.Region] {
			return errf(path+".region", "unknown region %q", s.Region)
		}
		if s.Ingress != nil {
			if s.Ingress.CostMs < 0 {
				return errf(path+".ingress.cost", "must not be negative")
			}
			if s.Ingress.Window < 0 {
				return errf(path+".ingress.window", "must not be negative")
			}
		}
		if len(s.Operations) == 0 {
			return errf(path+".operations", "at least one operation required")
		}
		for oi := range s.Operations {
			op := &s.Operations[oi]
			opPath := path + ".operations." + op.Name
			if len(op.Steps) == 0 {
				return errf(opPath+".steps", "at least one step required")
			}
			if err := checkStepShapes(op.Steps, opPath+".steps"); err != nil {
				return err
			}
		}
	}
	classByName := map[string]*Class{}
	for i := range f.Classes {
		c := &f.Classes[i]
		if _, dup := classByName[c.Name]; dup {
			return errf(fmt.Sprintf("classes[%d].name", i), "duplicate class %q", c.Name)
		}
		classByName[c.Name] = c
		path := "classes." + c.Name
		if c.Entry == "" && !c.Derived {
			return errf(path+".entry", "required for non-derived classes")
		}
		if c.Entry != "" {
			if _, ok := svcByName[c.Entry]; !ok {
				return errf(path+".entry", "unknown service %q", c.Entry)
			}
		}
		if c.Priority < 0 {
			return errf(path+".priority", "must not be negative")
		}
		if c.SLA.Percentile <= 0 || c.SLA.Percentile > 100 {
			return errf(path+".sla.percentile", "must be in (0, 100]")
		}
		if c.SLA.LatencyMs <= 0 {
			return errf(path+".sla.latency", "must be positive")
		}
	}
	if len(f.Classes) == 0 {
		return errf("classes", "at least one class required")
	}
	// Walk every class flow from its entry: referential integrity, operation
	// coverage and call-chain acyclicity.
	w := &flowWalker{file: f, svcs: svcByName, classes: classByName,
		onStack: map[string]bool{}, done: map[string]bool{}}
	for i := range f.Classes {
		c := &f.Classes[i]
		if c.Entry == "" {
			continue
		}
		if err := w.walk(c.Entry, c.Name, "classes."+c.Name+".entry"); err != nil {
			return err
		}
	}
	if f.Workload != nil {
		if f.Workload.Rate < 0 {
			return errf("workload.rate", "must not be negative")
		}
		total := 0.0
		for _, e := range f.Workload.Mix {
			at := "workload.mix." + e.Class
			c, ok := classByName[e.Class]
			if !ok {
				return errf(at, "unknown class %q", e.Class)
			}
			if c.Derived {
				return errf(at, "derived class %q cannot receive client load", e.Class)
			}
			if e.Weight < 0 {
				return errf(at, "weight must not be negative")
			}
			total += e.Weight
		}
		if len(f.Workload.Mix) > 0 && total <= 0 {
			return errf("workload.mix", "mix has no positive weights")
		}
	}
	return nil
}

// checkStepShapes validates step-local invariants (compute means, nested
// branches); cross-service references are the flow walker's job.
func checkStepShapes(steps []Step, path string) *Error {
	for i := range steps {
		st := &steps[i]
		at := fmt.Sprintf("%s[%d]", path, i)
		switch st.Kind {
		case StepCompute:
			if st.Duration.MeanMs <= 0 {
				return errf(at+".compute.duration", "must be positive")
			}
		case StepCall:
			if st.ErrorRate < 0 || st.ErrorRate > 1 {
				return errf(at+".call.error_rate", "must be in [0, 1]")
			}
		case StepPar:
			if len(st.Branches) == 0 {
				return errf(at+".par.branches", "at least one branch required")
			}
			for bi := range st.Branches {
				if err := checkStepShapes(st.Branches[bi].Steps,
					fmt.Sprintf("%s.par.branches[%d].steps", at, bi)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// flowWalker performs a DFS over (service, class) flows. onStack detects
// cyclic call chains — a cycle means a request could recurse forever, which
// the simulator (and any real deployment) cannot execute. done memoises
// fully-verified flows so shared subtrees are walked once.
type flowWalker struct {
	file    *File
	svcs    map[string]*Service
	classes map[string]*Class
	onStack map[string]bool
	done    map[string]bool
	stack   []string // "service/class" frames, for the cycle message
}

func (w *flowWalker) walk(svcName, class, at string) *Error {
	key := svcName + "/" + class
	if w.onStack[key] {
		return errf(at, "cyclic call chain: %s", w.cyclePath(key))
	}
	if w.done[key] {
		return nil
	}
	svc := w.svcs[svcName]
	var op *Operation
	for i := range svc.Operations {
		if svc.Operations[i].Name == class {
			op = &svc.Operations[i]
			break
		}
	}
	if op == nil {
		return errf(at, "service %q has no operation %q", svcName, class)
	}
	w.onStack[key] = true
	w.stack = append(w.stack, key)
	err := w.walkSteps(op.Steps, svcName, class,
		"services."+svcName+".operations."+class+".steps")
	w.stack = w.stack[:len(w.stack)-1]
	delete(w.onStack, key)
	if err != nil {
		return err
	}
	w.done[key] = true
	return nil
}

func (w *flowWalker) walkSteps(steps []Step, svcName, class, path string) *Error {
	for i := range steps {
		st := &steps[i]
		at := fmt.Sprintf("%s[%d]", path, i)
		switch st.Kind {
		case StepCall:
			if _, ok := w.svcs[st.Service]; !ok {
				return errf(at+".call.service", "unknown service %q", st.Service)
			}
			cls := class
			if st.Class != "" {
				if _, ok := w.classes[st.Class]; !ok {
					return errf(at+".call.class", "unknown class %q", st.Class)
				}
				cls = st.Class
			}
			if err := w.walk(st.Service, cls, at+".call"); err != nil {
				return err
			}
		case StepSpawn:
			if _, ok := w.svcs[st.Service]; !ok {
				return errf(at+".spawn.service", "unknown service %q", st.Service)
			}
			if _, ok := w.classes[st.Class]; !ok {
				return errf(at+".spawn.class", "unknown class %q", st.Class)
			}
			if err := w.walk(st.Service, st.Class, at+".spawn"); err != nil {
				return err
			}
		case StepPar:
			for bi := range st.Branches {
				if err := w.walkSteps(st.Branches[bi].Steps, svcName, class,
					fmt.Sprintf("%s.par.branches[%d].steps", at, bi)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// cyclePath renders the chain from the first occurrence of key to the top of
// the stack, closing back on key.
func (w *flowWalker) cyclePath(key string) string {
	start := 0
	for i, k := range w.stack {
		if k == key {
			start = i
			break
		}
	}
	parts := append(append([]string{}, w.stack[start:]...), key)
	return strings.Join(parts, " -> ")
}
