package spec

import "fmt"

// fleetSeedStride separates per-tenant generator seed streams; distinct from
// the corpus stride so a fleet never reuses corpus topologies for the same
// master seed.
const fleetSeedStride = 2000003

// FleetParams parameterises the multi-tenant fleet generator: N independent
// tenant applications drawn from the same seeded topology generator, sized
// for coexistence on one shared cluster.
type FleetParams struct {
	// Prefix names tenants "<Prefix>-NN" (default "tenant").
	Prefix string
	// N is the tenant count (required for GenerateFleet).
	N int
	// Seed drives the per-tenant generator streams.
	Seed int64
}

func (p *FleetParams) defaults() {
	if p.Prefix == "" {
		p.Prefix = "tenant"
	}
}

// FleetMember builds tenant i of the fleet. Member i depends only on
// (Prefix, Seed, i) — never on N — so a 4-tenant fleet is a prefix of the
// 32-tenant fleet and sweeps over tenant counts share per-tenant work.
// Members stay lean (depth ≤ 3, 4–8 target cores, cycling by index): fleets
// scale by tenant count, not by per-tenant size. SLA headroom is fixed at a
// generous 6× — unlike the adversarial corpus, a fleet should mostly admit,
// so capacity (not SLA infeasibility) is what admission control arbitrates.
func FleetMember(p FleetParams, i int) (*File, error) {
	p.defaults()
	return Generate(GenParams{
		Name:        fmt.Sprintf("%s-%02d", p.Prefix, i),
		Seed:        p.Seed*fleetSeedStride + int64(i),
		MinDepth:    2,
		MaxDepth:    3,
		TargetCores: []float64{4, 6, 8}[i%3],
		SLAHeadroom: 6,
	})
}

// GenerateFleet builds the N tenants of a fleet. Two calls with equal params
// produce byte-identical files, like Generate.
func GenerateFleet(p FleetParams) ([]*File, error) {
	p.defaults()
	if p.N <= 0 {
		return nil, fmt.Errorf("spec: FleetParams.N required")
	}
	files := make([]*File, p.N)
	for i := 0; i < p.N; i++ {
		f, err := FleetMember(p, i)
		if err != nil {
			return nil, fmt.Errorf("fleet member %d: %w", i, err)
		}
		files[i] = f
	}
	return files, nil
}
