package spec

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Parse loads a topology spec from YAML or JSON source. Format is chosen by
// filename extension (".json" = JSON, anything else = YAML); name is used
// only for error messages and may be empty. The returned File has passed
// both structural decoding and semantic validation.
func Parse(name string, data []byte) (*File, error) {
	var root *node
	var err error
	if strings.EqualFold(filepath.Ext(name), ".json") {
		root, err = parseJSONNode(data)
	} else {
		root, err = parseYAML(string(data))
	}
	if err != nil {
		return nil, prefixErr(name, &Error{Msg: err.Error()})
	}
	f, derr := decodeFile(root)
	if derr != nil {
		return nil, prefixErr(name, derr)
	}
	if verr := f.Validate(); verr != nil {
		if e, ok := verr.(*Error); ok {
			return nil, prefixErr(name, e)
		}
		return nil, prefixErr(name, &Error{Msg: verr.Error()})
	}
	return f, nil
}

// prefixErr attaches the file name to a loader error's path.
func prefixErr(name string, e *Error) error {
	if name == "" {
		return e
	}
	if e.Path == "" {
		return &Error{Path: name, Msg: e.Msg}
	}
	return &Error{Path: name + ": " + e.Path, Msg: e.Msg}
}

// parseJSONNode converts a JSON document into the shared node tree. Numbers
// and booleans become their canonical string forms; the decoder re-types
// them by expected field type, exactly as for YAML scalars.
func parseJSONNode(data []byte) (*node, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return jsonToNode(v), nil
}

func jsonToNode(v any) *node {
	switch t := v.(type) {
	case map[string]any:
		out := &node{kind: mapNode}
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out.pairs = append(out.pairs, pair{key: k, value: jsonToNode(t[k])})
		}
		return out
	case []any:
		out := &node{kind: seqNode}
		for _, item := range t {
			out.items = append(out.items, jsonToNode(item))
		}
		return out
	case json.Number:
		return &node{kind: scalarNode, scalar: t.String()}
	case string:
		return &node{kind: scalarNode, scalar: t, quoted: true}
	case bool:
		return &node{kind: scalarNode, scalar: strconv.FormatBool(t)}
	case nil:
		return &node{kind: scalarNode, scalar: ""}
	default:
		return &node{kind: scalarNode, scalar: fmt.Sprint(t)}
	}
}

// ---- structural decoding with field paths ----

func decodeFile(root *node) (*File, *Error) {
	if root.kind != mapNode {
		return nil, errf("", "top level must be a mapping")
	}
	f := &File{}
	if err := checkKeys(root, "", "version", "app", "regions", "services", "classes", "workload"); err != nil {
		return nil, err
	}
	var err *Error
	if f.Version, err = intField(root, "", "version", true); err != nil {
		return nil, err
	}
	if f.App, err = strField(root, "", "app", true); err != nil {
		return nil, err
	}
	if rn := root.get("regions"); rn != nil {
		if rn.kind != seqNode {
			return nil, errf("regions", "want a sequence of regions")
		}
		for i, item := range rn.items {
			r, err := decodeRegion(item, fmt.Sprintf("regions[%d]", i))
			if err != nil {
				return nil, err
			}
			f.Regions = append(f.Regions, r)
		}
	}
	svcs := root.get("services")
	if svcs == nil || svcs.kind != seqNode {
		return nil, errf("services", "required sequence missing")
	}
	for i, sn := range svcs.items {
		sv, err := decodeService(sn, fmt.Sprintf("services[%d]", i))
		if err != nil {
			return nil, err
		}
		f.Services = append(f.Services, sv)
	}
	classes := root.get("classes")
	if classes == nil || classes.kind != seqNode {
		return nil, errf("classes", "required sequence missing")
	}
	for i, cn := range classes.items {
		c, err := decodeClass(cn, fmt.Sprintf("classes[%d]", i))
		if err != nil {
			return nil, err
		}
		f.Classes = append(f.Classes, c)
	}
	if wn := root.get("workload"); wn != nil {
		w, err := decodeWorkload(wn, "workload")
		if err != nil {
			return nil, err
		}
		f.Workload = w
	}
	return f, nil
}

func decodeRegion(n *node, path string) (Region, *Error) {
	var r Region
	if n.kind != mapNode {
		return r, errf(path, "region must be a mapping")
	}
	var err *Error
	if r.Name, err = strField(n, path, "name", true); err != nil {
		return r, err
	}
	path = "regions." + r.Name
	if err := checkKeys(n, path, "name", "nodes", "wan"); err != nil {
		return r, err
	}
	nn := n.get("nodes")
	if nn == nil || nn.kind != seqNode {
		return r, errf(path+".nodes", "required sequence missing")
	}
	for i, cn := range nn.items {
		v, err := scalarFloat(cn, fmt.Sprintf("%s.nodes[%d]", path, i))
		if err != nil {
			return r, err
		}
		r.Nodes = append(r.Nodes, v)
	}
	if wn := n.get("wan"); wn != nil {
		if wn.kind != mapNode {
			return r, errf(path+".wan", "want a mapping of region to latency")
		}
		for _, p := range wn.pairs {
			d, err := durationField(p.value, path+".wan."+p.key)
			if err != nil {
				return r, err
			}
			r.WAN = append(r.WAN, WANEdge{To: p.key, LatencyMs: d.MeanMs, JitterMs: d.DevMs})
		}
	}
	return r, nil
}

func decodeService(n *node, path string) (Service, *Error) {
	var s Service
	if n.kind != mapNode {
		return s, errf(path, "service must be a mapping")
	}
	var err *Error
	if s.Name, err = strField(n, path, "name", true); err != nil {
		return s, err
	}
	// From here on, name the service in paths — friendlier than an index.
	path = "services." + s.Name
	if err := checkKeys(n, path, "name", "kind", "cpus", "replicas", "threads",
		"daemons", "max_replicas", "startup_delay", "region", "ingress", "operations"); err != nil {
		return s, err
	}
	if s.Kind, err = strField(n, path, "kind", true); err != nil {
		return s, err
	}
	if s.CPUs, err = floatField(n, path, "cpus"); err != nil {
		return s, err
	}
	if s.Replicas, err = intField(n, path, "replicas", false); err != nil {
		return s, err
	}
	if s.Threads, err = intField(n, path, "threads", false); err != nil {
		return s, err
	}
	if s.Daemons, err = intField(n, path, "daemons", false); err != nil {
		return s, err
	}
	if s.MaxReplicas, err = intField(n, path, "max_replicas", false); err != nil {
		return s, err
	}
	if sd := n.get("startup_delay"); sd != nil {
		d, err := durationField(sd, path+".startup_delay")
		if err != nil {
			return s, err
		}
		if d.DevMs != 0 {
			return s, errf(path+".startup_delay", "spread syntax not allowed here")
		}
		s.StartupDelaySec = d.MeanMs / 1000
	}
	if s.Region, err = strField(n, path, "region", false); err != nil {
		return s, err
	}
	if in := n.get("ingress"); in != nil {
		ing, err := decodeIngress(in, path+".ingress")
		if err != nil {
			return s, err
		}
		s.Ingress = ing
	}
	ops := n.get("operations")
	if ops == nil || ops.kind != mapNode {
		return s, errf(path+".operations", "required mapping missing")
	}
	for _, p := range ops.pairs {
		opPath := path + ".operations." + p.key
		op, err := decodeOperation(p.key, p.value, opPath)
		if err != nil {
			return s, err
		}
		for _, prev := range s.Operations {
			if prev.Name == op.Name {
				return s, errf(opPath, "duplicate operation %q", op.Name)
			}
		}
		s.Operations = append(s.Operations, op)
	}
	return s, nil
}

func decodeIngress(n *node, path string) (*Ingress, *Error) {
	if n.kind != mapNode {
		return nil, errf(path, "ingress must be a mapping")
	}
	if err := checkKeys(n, path, "cost", "window"); err != nil {
		return nil, err
	}
	ing := &Ingress{}
	if cn := n.get("cost"); cn != nil {
		d, err := durationField(cn, path+".cost")
		if err != nil {
			return nil, err
		}
		if d.DevMs != 0 {
			return nil, errf(path+".cost", "spread syntax not allowed here")
		}
		ing.CostMs = d.MeanMs
	}
	var err *Error
	if ing.Window, err = intField(n, path, "window", false); err != nil {
		return nil, err
	}
	return ing, nil
}

func decodeOperation(name string, n *node, path string) (Operation, *Error) {
	op := Operation{Name: name}
	if n.kind != mapNode {
		return op, errf(path, "operation must be a mapping with a steps list")
	}
	if err := checkKeys(n, path, "steps"); err != nil {
		return op, err
	}
	steps := n.get("steps")
	if steps == nil || steps.kind != seqNode {
		return op, errf(path+".steps", "required sequence missing")
	}
	var err *Error
	if op.Steps, err = decodeSteps(steps, path+".steps"); err != nil {
		return op, err
	}
	return op, nil
}

func decodeSteps(n *node, path string) ([]Step, *Error) {
	var out []Step
	for i, sn := range n.items {
		st, err := decodeStep(sn, fmt.Sprintf("%s[%d]", path, i))
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	return out, nil
}

func decodeStep(n *node, path string) (Step, *Error) {
	var st Step
	if n.kind != mapNode || len(n.pairs) != 1 {
		return st, errf(path, "step must be a single-key mapping: compute | call | spawn | par")
	}
	key, val := n.pairs[0].key, n.pairs[0].value
	switch key {
	case "compute":
		st.Kind = StepCompute
		switch val.kind {
		case scalarNode:
			d, err := parseDuration(val.scalar)
			if err != nil {
				return st, errf(path+".compute", "%v", err)
			}
			st.Duration = d
		case mapNode:
			if err := checkKeys(val, path+".compute", "duration", "cv"); err != nil {
				return st, err
			}
			dn := val.get("duration")
			if dn == nil {
				return st, errf(path+".compute.duration", "required field missing")
			}
			d, err := durationField(dn, path+".compute.duration")
			if err != nil {
				return st, err
			}
			st.Duration = d
			var derr *Error
			if st.CV, derr = floatField(val, path+".compute", "cv"); derr != nil {
				return st, derr
			}
			if st.CV != 0 && st.Duration.DevMs != 0 {
				return st, errf(path+".compute", "cv and +/- spread are mutually exclusive")
			}
		default:
			return st, errf(path+".compute", "want a duration or {duration, cv}")
		}
	case "call":
		st.Kind = StepCall
		switch val.kind {
		case scalarNode:
			if val.scalar == "" {
				return st, errf(path+".call", "empty service name")
			}
			st.Service = val.scalar
		case mapNode:
			if err := checkKeys(val, path+".call", "service", "mode", "class", "error_rate"); err != nil {
				return st, err
			}
			var err *Error
			if st.Service, err = strField(val, path+".call", "service", true); err != nil {
				return st, err
			}
			if st.Mode, err = strField(val, path+".call", "mode", false); err != nil {
				return st, err
			}
			if st.Class, err = strField(val, path+".call", "class", false); err != nil {
				return st, err
			}
			if st.ErrorRate, err = floatField(val, path+".call", "error_rate"); err != nil {
				return st, err
			}
		default:
			return st, errf(path+".call", "want a service name or {service, mode, class}")
		}
		if st.Mode != "" && st.Mode != "nested-rpc" && st.Mode != "event-rpc" && st.Mode != "mq" {
			return st, errf(path+".call.mode", "unknown call mode %q (want nested-rpc|event-rpc|mq)", st.Mode)
		}
	case "spawn":
		st.Kind = StepSpawn
		if val.kind != mapNode {
			return st, errf(path+".spawn", "want {service, class}")
		}
		if err := checkKeys(val, path+".spawn", "service", "class"); err != nil {
			return st, err
		}
		var err *Error
		if st.Service, err = strField(val, path+".spawn", "service", true); err != nil {
			return st, err
		}
		if st.Class, err = strField(val, path+".spawn", "class", true); err != nil {
			return st, err
		}
	case "par":
		st.Kind = StepPar
		if val.kind != mapNode {
			return st, errf(path+".par", "want {branches: [...]}")
		}
		if err := checkKeys(val, path+".par", "branches"); err != nil {
			return st, err
		}
		brs := val.get("branches")
		if brs == nil || brs.kind != seqNode {
			return st, errf(path+".par.branches", "required sequence missing")
		}
		for i, bn := range brs.items {
			bPath := fmt.Sprintf("%s.par.branches[%d]", path, i)
			if bn.kind != mapNode {
				return st, errf(bPath, "branch must be a mapping with a steps list")
			}
			if err := checkKeys(bn, bPath, "steps"); err != nil {
				return st, err
			}
			sn := bn.get("steps")
			if sn == nil || sn.kind != seqNode {
				return st, errf(bPath+".steps", "required sequence missing")
			}
			steps, err := decodeSteps(sn, bPath+".steps")
			if err != nil {
				return st, err
			}
			st.Branches = append(st.Branches, Branch{Steps: steps})
		}
	default:
		return st, errf(path, "unknown step kind %q (want compute|call|spawn|par)", key)
	}
	return st, nil
}

func decodeClass(n *node, path string) (Class, *Error) {
	var c Class
	if n.kind != mapNode {
		return c, errf(path, "class must be a mapping")
	}
	if err := checkKeys(n, path, "name", "entry", "priority", "derived", "sla"); err != nil {
		return c, err
	}
	var err *Error
	if c.Name, err = strField(n, path, "name", true); err != nil {
		return c, err
	}
	path = "classes." + c.Name
	if c.Entry, err = strField(n, path, "entry", false); err != nil {
		return c, err
	}
	if c.Priority, err = intField(n, path, "priority", false); err != nil {
		return c, err
	}
	if c.Derived, err = boolField(n, path, "derived"); err != nil {
		return c, err
	}
	sn := n.get("sla")
	if sn == nil || sn.kind != mapNode {
		return c, errf(path+".sla", "required mapping missing")
	}
	if err := checkKeys(sn, path+".sla", "percentile", "latency"); err != nil {
		return c, err
	}
	if c.SLA.Percentile, err = floatField(sn, path+".sla", "percentile"); err != nil {
		return c, err
	}
	ln := sn.get("latency")
	if ln == nil {
		return c, errf(path+".sla.latency", "required field missing")
	}
	d, err := durationField(ln, path+".sla.latency")
	if err != nil {
		return c, err
	}
	if d.DevMs != 0 {
		return c, errf(path+".sla.latency", "spread syntax not allowed here")
	}
	c.SLA.LatencyMs = d.MeanMs
	return c, nil
}

func decodeWorkload(n *node, path string) (*Workload, *Error) {
	if n.kind != mapNode {
		return nil, errf(path, "workload must be a mapping")
	}
	if err := checkKeys(n, path, "rate", "mix"); err != nil {
		return nil, err
	}
	w := &Workload{}
	var err *Error
	if w.Rate, err = floatField(n, path, "rate"); err != nil {
		return nil, err
	}
	mn := n.get("mix")
	if mn == nil || mn.kind != mapNode {
		return nil, errf(path+".mix", "required mapping missing")
	}
	for _, p := range mn.pairs {
		v, err := scalarFloat(p.value, path+".mix."+p.key)
		if err != nil {
			return nil, err
		}
		w.Mix = append(w.Mix, MixEntry{Class: p.key, Weight: v})
	}
	return w, nil
}

// ---- typed field helpers ----

func checkKeys(n *node, path string, allowed ...string) *Error {
	for _, p := range n.pairs {
		ok := false
		for _, a := range allowed {
			if p.key == a {
				ok = true
				break
			}
		}
		if !ok {
			at := p.key
			if path != "" {
				at = path + "." + p.key
			}
			return errf(at, "unknown field (known fields: %s)", strings.Join(allowed, ", "))
		}
	}
	return nil
}

func fieldPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

func strField(n *node, path, key string, required bool) (string, *Error) {
	fn := n.get(key)
	if fn == nil {
		if required {
			return "", errf(fieldPath(path, key), "required field missing")
		}
		return "", nil
	}
	if fn.kind != scalarNode {
		return "", errf(fieldPath(path, key), "want a string")
	}
	if fn.scalar == "" && required {
		return "", errf(fieldPath(path, key), "must not be empty")
	}
	return fn.scalar, nil
}

func intField(n *node, path, key string, required bool) (int, *Error) {
	fn := n.get(key)
	if fn == nil {
		if required {
			return 0, errf(fieldPath(path, key), "required field missing")
		}
		return 0, nil
	}
	if fn.kind != scalarNode {
		return 0, errf(fieldPath(path, key), "want an integer")
	}
	v, err := strconv.Atoi(fn.scalar)
	if err != nil {
		return 0, errf(fieldPath(path, key), "want an integer, got %q", fn.scalar)
	}
	return v, nil
}

func floatField(n *node, path, key string) (float64, *Error) {
	fn := n.get(key)
	if fn == nil {
		return 0, nil
	}
	return scalarFloat(fn, fieldPath(path, key))
}

func scalarFloat(fn *node, at string) (float64, *Error) {
	if fn.kind != scalarNode {
		return 0, errf(at, "want a number")
	}
	v, err := strconv.ParseFloat(fn.scalar, 64)
	if err != nil {
		return 0, errf(at, "want a number, got %q", fn.scalar)
	}
	return v, nil
}

func boolField(n *node, path, key string) (bool, *Error) {
	fn := n.get(key)
	if fn == nil {
		return false, nil
	}
	if fn.kind != scalarNode || (fn.scalar != "true" && fn.scalar != "false") {
		return false, errf(fieldPath(path, key), "want true or false")
	}
	return fn.scalar == "true", nil
}

func durationField(fn *node, at string) (Duration, *Error) {
	if fn.kind != scalarNode {
		return Duration{}, errf(at, "want a duration like \"30ms\"")
	}
	d, err := parseDuration(fn.scalar)
	if err != nil {
		return Duration{}, errf(at, "%v", err)
	}
	return d, nil
}
