package spec

import (
	"fmt"
	"strings"
)

// A minimal YAML subset parser, sufficient for topology spec files and with
// no external dependencies. It supports:
//
//   - block mappings and block sequences nested by indentation (spaces only);
//   - flow mappings {k: v, ...} and flow sequences [a, b, ...], nestable;
//   - plain, single-quoted and double-quoted scalars;
//   - `#` comments and blank lines;
//   - an optional leading `---` document marker.
//
// Anchors, aliases, multi-line scalars, multiple documents and type tags are
// not supported. Every scalar is kept as its string form; typing happens in
// the decoder, which knows the expected type at each field path.
//
// Mappings preserve key order and reject duplicate keys — spec files use
// operation names as mapping keys, and a silently-dropped duplicate
// operation would be a miserable bug to find.

type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	seqNode
)

// node is the untyped parse tree shared by the YAML and JSON front ends.
type node struct {
	kind   nodeKind
	scalar string
	quoted bool // scalar was quoted in the source (always a string)
	pairs  []pair
	items  []*node
}

type pair struct {
	key   string
	value *node
}

// get returns the value for a mapping key, or nil.
func (n *node) get(key string) *node {
	for i := range n.pairs {
		if n.pairs[i].key == key {
			return n.pairs[i].value
		}
	}
	return nil
}

// line is one logical source line: its indentation depth and content.
type line struct {
	indent int
	text   string
}

// parseYAML parses a document into a node tree.
func parseYAML(src string) (*node, error) {
	lines, err := splitLines(src)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &yamlParser{lines: lines}
	n, err := p.parseBlock(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, fmt.Errorf("unexpected content at indent %d: %q", p.lines[p.pos].indent, p.lines[p.pos].text)
	}
	return n, nil
}

// splitLines strips comments and blanks and computes indentation.
func splitLines(src string) ([]line, error) {
	var out []line
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			trimmed := strings.TrimLeft(raw, " ")
			if strings.HasPrefix(trimmed, "\t") || strings.Contains(raw[:len(raw)-len(trimmed)], "\t") {
				return nil, fmt.Errorf("line %d: tabs are not allowed in indentation", i+1)
			}
		}
		text := stripComment(raw)
		trimmed := strings.TrimRight(text, " \r")
		body := strings.TrimLeft(trimmed, " ")
		if body == "" || body == "---" && len(out) == 0 {
			continue
		}
		out = append(out, line{indent: len(trimmed) - len(body), text: body})
	}
	return out, nil
}

// stripComment removes a trailing `# ...` comment, respecting quotes.
func stripComment(s string) string {
	inS, inD := false, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			if !inD {
				inD = true
			} else if i == 0 || s[i-1] != '\\' {
				inD = false
			}
		case c == '#' && !inS && !inD:
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type yamlParser struct {
	lines []line
	pos   int
	// pushed is a synthetic line injected when a sequence dash carries inline
	// content (`- name: x`); it is consumed before lines[pos].
	pushed *line
}

func (p *yamlParser) peek() (line, bool) {
	if p.pushed != nil {
		return *p.pushed, true
	}
	if p.pos >= len(p.lines) {
		return line{}, false
	}
	return p.lines[p.pos], true
}

func (p *yamlParser) advance() {
	if p.pushed != nil {
		p.pushed = nil
		return
	}
	p.pos++
}

// push injects content as a synthetic line at the given indent, standing in
// for text that followed a `- ` dash on the same physical line.
func (p *yamlParser) push(indent int, text string) {
	l := line{indent: indent, text: text}
	p.pushed = &l
}

// parseBlock parses a block collection or scalar whose first line is at
// indent ≥ min.
func (p *yamlParser) parseBlock(min int) (*node, error) {
	l, ok := p.peek()
	if !ok || l.indent < min {
		return nil, fmt.Errorf("expected a value at indent ≥ %d", min)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseSeq(l.indent)
	}
	if isMappingStart(l.text) {
		return p.parseMap(l.indent)
	}
	// A lone scalar line.
	p.advance()
	s, quoted, err := parseScalar(l.text)
	if err != nil {
		return nil, err
	}
	return &node{kind: scalarNode, scalar: s, quoted: quoted}, nil
}

// parseSeq parses `- item` lines at exactly the given indent.
func (p *yamlParser) parseSeq(indent int) (*node, error) {
	out := &node{kind: seqNode}
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || !(l.text == "-" || strings.HasPrefix(l.text, "- ")) {
			if ok && l.indent > indent {
				return nil, fmt.Errorf("bad indentation %d inside sequence at indent %d: %q", l.indent, indent, l.text)
			}
			return out, nil
		}
		p.advance()
		after := strings.TrimPrefix(l.text, "-")
		rest := strings.TrimLeft(after, " ")
		contentAt := l.indent + 1 + (len(after) - len(rest))
		if rest == "" {
			// Value is the nested block on following lines.
			nl, ok := p.peek()
			if !ok || nl.indent <= indent {
				return nil, fmt.Errorf("sequence item at indent %d has no value", indent)
			}
			item, err := p.parseBlock(indent + 1)
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, item)
			continue
		}
		// Inline content: re-parse it as a virtual first line of a nested
		// block whose indent is where the content started.
		p.push(contentAt, rest)
		item, err := p.parseBlock(indent + 1)
		if err != nil {
			return nil, err
		}
		out.items = append(out.items, item)
	}
}

// parseMap parses `key: value` lines at exactly the given indent.
func (p *yamlParser) parseMap(indent int) (*node, error) {
	out := &node{kind: mapNode}
	for {
		l, ok := p.peek()
		if !ok || l.indent != indent || !isMappingStart(l.text) {
			if ok && l.indent > indent {
				return nil, fmt.Errorf("bad indentation %d inside mapping at indent %d: %q", l.indent, indent, l.text)
			}
			return out, nil
		}
		key, rest, err := splitKey(l.text)
		if err != nil {
			return nil, err
		}
		if out.get(key) != nil {
			return nil, fmt.Errorf("duplicate key %q", key)
		}
		p.advance()
		var value *node
		if rest == "" {
			nl, hasNext := p.peek()
			if hasNext && nl.indent > indent {
				value, err = p.parseBlock(indent + 1)
				if err != nil {
					return nil, err
				}
			} else {
				value = &node{kind: scalarNode, scalar: ""}
			}
		} else {
			value, err = parseInline(rest)
			if err != nil {
				return nil, fmt.Errorf("key %q: %w", key, err)
			}
		}
		out.pairs = append(out.pairs, pair{key: key, value: value})
	}
}

// isMappingStart reports whether a line begins a `key:` mapping entry.
func isMappingStart(text string) bool {
	_, _, err := splitKey(text)
	return err == nil
}

// splitKey splits `key: rest` (or `key:`), respecting quoted keys.
func splitKey(text string) (key, rest string, err error) {
	i := 0
	if len(text) > 0 && (text[0] == '"' || text[0] == '\'') {
		q := text[0]
		j := strings.IndexByte(text[1:], q)
		if j < 0 {
			return "", "", fmt.Errorf("unterminated quoted key in %q", text)
		}
		i = j + 2
		key = text[1 : i-1]
		text = text[i:]
		if !strings.HasPrefix(text, ":") {
			return "", "", fmt.Errorf("expected ':' after quoted key %q", key)
		}
		rest = strings.TrimLeft(text[1:], " ")
		if rest != "" && text[1] != ' ' {
			return "", "", fmt.Errorf("expected space after ':' in mapping")
		}
		return key, rest, nil
	}
	// Plain key: the first ':' that ends the line or is followed by a space.
	for i = 0; i < len(text); i++ {
		if text[i] == ':' && (i == len(text)-1 || text[i+1] == ' ') {
			return strings.TrimRight(text[:i], " "), strings.TrimLeft(text[i+1:], " "), nil
		}
		if text[i] == '#' || text[i] == '{' || text[i] == '[' {
			break
		}
	}
	return "", "", fmt.Errorf("not a mapping entry: %q", text)
}

// parseInline parses an inline value: a flow collection or a scalar.
func parseInline(text string) (*node, error) {
	text = strings.TrimSpace(text)
	if strings.HasPrefix(text, "{") || strings.HasPrefix(text, "[") {
		n, rest, err := parseFlow(text)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("trailing content after flow value: %q", rest)
		}
		return n, nil
	}
	s, quoted, err := parseScalar(text)
	if err != nil {
		return nil, err
	}
	return &node{kind: scalarNode, scalar: s, quoted: quoted}, nil
}

// parseFlow parses a flow collection or scalar and returns unconsumed input.
func parseFlow(text string) (*node, string, error) {
	text = strings.TrimLeft(text, " ")
	switch {
	case strings.HasPrefix(text, "{"):
		out := &node{kind: mapNode}
		rest := strings.TrimLeft(text[1:], " ")
		if strings.HasPrefix(rest, "}") {
			return out, rest[1:], nil
		}
		for {
			key, tail, err := flowKey(rest)
			if err != nil {
				return nil, "", err
			}
			if out.get(key) != nil {
				return nil, "", fmt.Errorf("duplicate key %q", key)
			}
			var val *node
			val, rest, err = parseFlow(tail)
			if err != nil {
				return nil, "", err
			}
			out.pairs = append(out.pairs, pair{key: key, value: val})
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimLeft(rest[1:], " ")
				continue
			}
			if strings.HasPrefix(rest, "}") {
				return out, rest[1:], nil
			}
			return nil, "", fmt.Errorf("expected ',' or '}' in flow mapping near %q", rest)
		}
	case strings.HasPrefix(text, "["):
		out := &node{kind: seqNode}
		rest := strings.TrimLeft(text[1:], " ")
		if strings.HasPrefix(rest, "]") {
			return out, rest[1:], nil
		}
		for {
			var item *node
			var err error
			item, rest, err = parseFlow(rest)
			if err != nil {
				return nil, "", err
			}
			out.items = append(out.items, item)
			rest = strings.TrimLeft(rest, " ")
			if strings.HasPrefix(rest, ",") {
				rest = strings.TrimLeft(rest[1:], " ")
				continue
			}
			if strings.HasPrefix(rest, "]") {
				return out, rest[1:], nil
			}
			return nil, "", fmt.Errorf("expected ',' or ']' in flow sequence near %q", rest)
		}
	default:
		// A scalar inside a flow collection, ended by , } or ].
		if len(text) > 0 && (text[0] == '"' || text[0] == '\'') {
			s, rest, err := quotedScalar(text)
			if err != nil {
				return nil, "", err
			}
			return &node{kind: scalarNode, scalar: s, quoted: true}, rest, nil
		}
		end := strings.IndexAny(text, ",}]")
		if end < 0 {
			end = len(text)
		}
		return &node{kind: scalarNode, scalar: strings.TrimSpace(text[:end])}, text[end:], nil
	}
}

// flowKey reads `key:` inside a flow mapping.
func flowKey(text string) (key, rest string, err error) {
	text = strings.TrimLeft(text, " ")
	if len(text) > 0 && (text[0] == '"' || text[0] == '\'') {
		s, tail, err := quotedScalar(text)
		if err != nil {
			return "", "", err
		}
		tail = strings.TrimLeft(tail, " ")
		if !strings.HasPrefix(tail, ":") {
			return "", "", fmt.Errorf("expected ':' after flow key %q", s)
		}
		return s, tail[1:], nil
	}
	i := strings.IndexByte(text, ':')
	if i < 0 {
		return "", "", fmt.Errorf("expected ':' in flow mapping near %q", text)
	}
	return strings.TrimSpace(text[:i]), text[i+1:], nil
}

// quotedScalar reads a leading quoted string and returns the remainder.
func quotedScalar(text string) (s, rest string, err error) {
	q := text[0]
	if q == '\'' {
		j := strings.IndexByte(text[1:], '\'')
		if j < 0 {
			return "", "", fmt.Errorf("unterminated string %q", text)
		}
		return text[1 : j+1], text[j+2:], nil
	}
	var b strings.Builder
	for i := 1; i < len(text); i++ {
		switch text[i] {
		case '\\':
			if i+1 >= len(text) {
				return "", "", fmt.Errorf("dangling escape in %q", text)
			}
			i++
			switch text[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(text[i])
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", text[i])
			}
		case '"':
			return b.String(), text[i+1:], nil
		default:
			b.WriteByte(text[i])
		}
	}
	return "", "", fmt.Errorf("unterminated string %q", text)
}

// parseScalar parses a whole-line scalar.
func parseScalar(text string) (s string, quoted bool, err error) {
	text = strings.TrimSpace(text)
	if len(text) > 0 && (text[0] == '"' || text[0] == '\'') {
		s, rest, err := quotedScalar(text)
		if err != nil {
			return "", false, err
		}
		if strings.TrimSpace(rest) != "" {
			return "", false, fmt.Errorf("trailing content after string: %q", rest)
		}
		return s, true, nil
	}
	return text, false, nil
}
