package spec

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"ursa/internal/services"
	"ursa/internal/workload"
)

// Canonical lifts a simulator-native application (plus its nominal workload)
// back into the declarative wire form, choosing the most compact canonical
// encoding: service kind is inferred from the ingress profile, fields equal
// to the kind defaults are omitted, operations and mix entries are sorted by
// name. parse(dump(app)) reproduces app exactly (pinned by test for every
// built-in).
func Canonical(spec services.AppSpec, mix workload.Mix, rate float64) (*File, error) {
	f := &File{Version: Version, App: spec.Name}
	for i := range spec.Services {
		sv, err := canonicalService(&spec.Services[i])
		if err != nil {
			return nil, err
		}
		f.Services = append(f.Services, sv)
	}
	for _, c := range spec.Classes {
		f.Classes = append(f.Classes, Class{
			Name:     c.Name,
			Entry:    c.Entry,
			Priority: c.Priority,
			Derived:  c.Derived,
			SLA:      SLA{Percentile: c.SLAPercentile, LatencyMs: c.SLAMillis},
		})
	}
	if rate > 0 || len(mix) > 0 {
		w := &Workload{Rate: rate}
		classes := make([]string, 0, len(mix))
		for c := range mix {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			w.Mix = append(w.Mix, MixEntry{Class: c, Weight: mix[c]})
		}
		f.Workload = w
	}
	return f, nil
}

func canonicalService(s *services.ServiceSpec) (Service, error) {
	sv := Service{
		Name:            s.Name,
		CPUs:            s.CPUs,
		Replicas:        s.InitialReplicas,
		MaxReplicas:     s.MaxReplicas,
		StartupDelaySec: s.StartupDelaySec,
	}
	if s.IngressCostMs > 0 {
		sv.Kind = "rpc"
		if s.Threads != rpcDefaultThreads {
			sv.Threads = s.Threads
		}
		if s.Daemons != rpcDefaultDaemons {
			sv.Daemons = s.Daemons
		}
		if s.IngressCostMs != rpcDefaultIngressCostMs || s.IngressWindow != rpcDefaultIngressWindow {
			sv.Ingress = &Ingress{CostMs: s.IngressCostMs, Window: s.IngressWindow}
		}
	} else {
		sv.Kind = "worker"
		if s.Threads != workerDefaultThreads {
			sv.Threads = s.Threads
		}
		if s.Daemons != workerDefaultDaemons {
			sv.Daemons = s.Daemons
		}
	}
	classes := make([]string, 0, len(s.Handlers))
	for c := range s.Handlers {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		steps, err := canonicalSteps(s.Handlers[c])
		if err != nil {
			return sv, fmt.Errorf("service %s operation %s: %w", s.Name, c, err)
		}
		sv.Operations = append(sv.Operations, Operation{Name: c, Steps: steps})
	}
	return sv, nil
}

func canonicalSteps(in []services.Step) ([]Step, error) {
	var out []Step
	for _, st := range in {
		switch s := st.(type) {
		case services.Compute:
			out = append(out, Step{Kind: StepCompute, Duration: Duration{MeanMs: s.MeanMs}, CV: s.CV})
		case services.Call:
			out = append(out, Step{Kind: StepCall, Service: s.Service, Mode: s.Mode.String(), Class: s.Class, ErrorRate: s.ErrorProb})
		case services.Spawn:
			out = append(out, Step{Kind: StepSpawn, Service: s.Service, Class: s.Class})
		case services.Par:
			p := Step{Kind: StepPar}
			for _, br := range s.Branches {
				steps, err := canonicalSteps(br)
				if err != nil {
					return nil, err
				}
				p.Branches = append(p.Branches, Branch{Steps: steps})
			}
			out = append(out, p)
		default:
			return nil, fmt.Errorf("cannot encode step %T", st)
		}
	}
	return out, nil
}

// Dump renders an application (plus its nominal workload) as a canonical
// YAML spec document.
func Dump(spec services.AppSpec, mix workload.Mix, rate float64) ([]byte, error) {
	f, err := Canonical(spec, mix, rate)
	if err != nil {
		return nil, err
	}
	return f.Encode(), nil
}

// Encode renders the File as canonical YAML.
func (f *File) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "version: %d\n", f.Version)
	fmt.Fprintf(&b, "app: %s\n", yamlScalar(f.App))
	if len(f.Regions) > 0 {
		b.WriteString("\nregions:\n")
		for i := range f.Regions {
			encodeRegion(&b, &f.Regions[i])
		}
	}
	b.WriteString("\nservices:\n")
	for i := range f.Services {
		encodeService(&b, &f.Services[i])
	}
	b.WriteString("\nclasses:\n")
	for i := range f.Classes {
		encodeClass(&b, &f.Classes[i])
	}
	if f.Workload != nil {
		b.WriteString("\nworkload:\n")
		fmt.Fprintf(&b, "  rate: %s\n", formatFloat(f.Workload.Rate))
		if len(f.Workload.Mix) > 0 {
			b.WriteString("  mix:\n")
			for _, e := range f.Workload.Mix {
				fmt.Fprintf(&b, "    %s: %s\n", yamlScalar(e.Class), formatFloat(e.Weight))
			}
		}
	}
	return []byte(b.String())
}

func encodeRegion(b *strings.Builder, r *Region) {
	fmt.Fprintf(b, "  - name: %s\n", yamlScalar(r.Name))
	b.WriteString("    nodes: [")
	for i, c := range r.Nodes {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(formatFloat(c))
	}
	b.WriteString("]\n")
	if len(r.WAN) > 0 {
		b.WriteString("    wan:\n")
		for _, e := range r.WAN {
			lat := formatMs(e.LatencyMs)
			if e.JitterMs > 0 {
				lat += " +/- " + formatMs(e.JitterMs)
			}
			fmt.Fprintf(b, "      %s: %s\n", yamlScalar(e.To), lat)
		}
	}
}

func encodeService(b *strings.Builder, s *Service) {
	fmt.Fprintf(b, "  - name: %s\n", yamlScalar(s.Name))
	fmt.Fprintf(b, "    kind: %s\n", s.Kind)
	fmt.Fprintf(b, "    cpus: %s\n", formatFloat(s.CPUs))
	fmt.Fprintf(b, "    replicas: %d\n", s.Replicas)
	if s.Threads > 0 {
		fmt.Fprintf(b, "    threads: %d\n", s.Threads)
	}
	if s.Daemons > 0 {
		fmt.Fprintf(b, "    daemons: %d\n", s.Daemons)
	}
	if s.MaxReplicas > 0 {
		fmt.Fprintf(b, "    max_replicas: %d\n", s.MaxReplicas)
	}
	if s.StartupDelaySec > 0 {
		fmt.Fprintf(b, "    startup_delay: %s\n", formatMs(s.StartupDelaySec*1000))
	}
	if s.Region != "" {
		fmt.Fprintf(b, "    region: %s\n", yamlScalar(s.Region))
	}
	if s.Ingress != nil {
		b.WriteString("    ingress:\n")
		fmt.Fprintf(b, "      cost: %s\n", formatMs(s.Ingress.CostMs))
		fmt.Fprintf(b, "      window: %d\n", s.Ingress.Window)
	}
	b.WriteString("    operations:\n")
	for i := range s.Operations {
		op := &s.Operations[i]
		fmt.Fprintf(b, "      %s:\n", yamlScalar(op.Name))
		b.WriteString("        steps:\n")
		encodeSteps(b, op.Steps, "          ")
	}
}

func encodeSteps(b *strings.Builder, steps []Step, indent string) {
	for i := range steps {
		st := &steps[i]
		switch st.Kind {
		case StepCompute:
			if st.CV != 0 {
				fmt.Fprintf(b, "%s- compute: {duration: %s, cv: %s}\n",
					indent, formatMs(st.Duration.MeanMs), formatFloat(st.CV))
			} else {
				fmt.Fprintf(b, "%s- compute: {duration: %s}\n", indent, formatMs(st.Duration.MeanMs))
			}
		case StepCall:
			fields := fmt.Sprintf("service: %s, mode: %s", yamlScalar(st.Service), st.Mode)
			if st.Class != "" {
				fields += fmt.Sprintf(", class: %s", yamlScalar(st.Class))
			}
			if st.ErrorRate != 0 {
				fields += fmt.Sprintf(", error_rate: %s", formatFloat(st.ErrorRate))
			}
			fmt.Fprintf(b, "%s- call: {%s}\n", indent, fields)
		case StepSpawn:
			fmt.Fprintf(b, "%s- spawn: {service: %s, class: %s}\n",
				indent, yamlScalar(st.Service), yamlScalar(st.Class))
		case StepPar:
			fmt.Fprintf(b, "%s- par:\n%s    branches:\n", indent, indent)
			for bi := range st.Branches {
				fmt.Fprintf(b, "%s      - steps:\n", indent)
				encodeSteps(b, st.Branches[bi].Steps, indent+"          ")
			}
		}
	}
}

func encodeClass(b *strings.Builder, c *Class) {
	fmt.Fprintf(b, "  - name: %s\n", yamlScalar(c.Name))
	if c.Entry != "" {
		fmt.Fprintf(b, "    entry: %s\n", yamlScalar(c.Entry))
	}
	if c.Priority != 0 {
		fmt.Fprintf(b, "    priority: %d\n", c.Priority)
	}
	if c.Derived {
		b.WriteString("    derived: true\n")
	}
	fmt.Fprintf(b, "    sla: {percentile: %s, latency: %s}\n",
		formatFloat(c.SLA.Percentile), formatMs(c.SLA.LatencyMs))
}

// plainScalar matches strings safe to emit unquoted in our YAML subset.
var plainScalar = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.\-]*$`)

// yamlScalar quotes a string when it could be misread as syntax.
func yamlScalar(s string) string {
	if plainScalar.MatchString(s) && s != "true" && s != "false" && s != "null" {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	s = strings.ReplaceAll(s, "\t", `\t`)
	return `"` + s + `"`
}
