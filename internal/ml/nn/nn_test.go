package nn

import (
	"math"
	"math/rand"
	"testing"

	"ursa/internal/ml/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 1, rng)
	d.W.Data = []float64{2, 3}
	d.B.Data = []float64{1}
	out := d.Forward(tensor.FromSlice(1, 2, []float64{4, 5}))
	if out.Data[0] != 2*4+3*5+1 {
		t.Fatalf("forward = %v", out.Data)
	}
}

// numericalGrad checks backprop against finite differences for a small net.
func TestBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := &Network{Layers: []Layer{
		NewDense(3, 4, rng), &ReLU{},
		NewDense(4, 2, rng), &Sigmoid{},
	}}
	x := tensor.Randn(2, 3, 1, rng)
	y := tensor.FromSlice(2, 2, []float64{0, 1, 1, 0})

	lossAt := func() float64 {
		out := net.Forward(x)
		l, _ := MSELoss(out, y)
		return l
	}

	net.ZeroGrad()
	out := net.Forward(x)
	_, grad := MSELoss(out, y)
	net.Backward(grad)

	const h = 1e-6
	for pi, p := range net.Params() {
		for i := 0; i < len(p.W.Data); i += 3 { // spot-check every 3rd weight
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			lp := lossAt()
			p.W.Data[i] = orig - h
			lm := lossAt()
			p.W.Data[i] = orig
			want := (lp - lm) / (2 * h)
			got := p.G.Data[i]
			if math.Abs(want-got) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %d idx %d: analytic %v vs numeric %v", pi, i, got, want)
			}
		}
	}
}

func TestConv1DBackpropMatchesNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv1D(2, 5, 3, 2, rng)
	net := &Network{Layers: []Layer{conv, &ReLU{}, NewDense(conv.OutLen(), 1, rng)}}
	x := tensor.Randn(2, 10, 1, rng)
	y := tensor.FromSlice(2, 1, []float64{0.5, -0.5})
	lossAt := func() float64 {
		out := net.Forward(x)
		l, _ := MSELoss(out, y)
		return l
	}
	net.ZeroGrad()
	out := net.Forward(x)
	_, grad := MSELoss(out, y)
	net.Backward(grad)
	const h = 1e-6
	p := conv.Params()[0] // conv weights
	for i := 0; i < len(p.W.Data); i += 2 {
		orig := p.W.Data[i]
		p.W.Data[i] = orig + h
		lp := lossAt()
		p.W.Data[i] = orig - h
		lm := lossAt()
		p.W.Data[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-p.G.Data[i]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("conv grad idx %d: analytic %v vs numeric %v", i, p.G.Data[i], want)
		}
	}
}

func TestConv1DOutputShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	conv := NewConv1D(3, 8, 3, 4, rng)
	if conv.OutWidth() != 6 || conv.OutLen() != 24 {
		t.Fatalf("out width %d len %d", conv.OutWidth(), conv.OutLen())
	}
	out := conv.Forward(tensor.Randn(5, 24, 1, rng))
	if out.Rows != 5 || out.Cols != 24 {
		t.Fatalf("forward shape %dx%d", out.Rows, out.Cols)
	}
}

func TestTrainingLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := &Network{Layers: []Layer{
		NewDense(2, 8, rng), &ReLU{},
		NewDense(8, 1, rng), &Sigmoid{},
	}}
	x := tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	y := tensor.FromSlice(4, 1, []float64{0, 1, 1, 0})
	opt := NewAdam(0.05)
	for i := 0; i < 800; i++ {
		net.ZeroGrad()
		out := net.Forward(x)
		_, grad := BCELoss(out, y)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	out := net.Forward(x)
	for i, want := range []float64{0, 1, 1, 0} {
		if math.Abs(out.Data[i]-want) > 0.2 {
			t.Fatalf("XOR not learned: pred=%v", out.Data)
		}
	}
}

func TestTrainingLearnsRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := &Network{Layers: []Layer{
		NewDense(1, 16, rng), &ReLU{},
		NewDense(16, 1, rng),
	}}
	n := 64
	x := tensor.New(n, 1)
	y := tensor.New(n, 1)
	for i := 0; i < n; i++ {
		v := float64(i)/float64(n)*2 - 1
		x.Data[i] = v
		y.Data[i] = v * v
	}
	opt := NewAdam(0.01)
	var loss float64
	for i := 0; i < 1500; i++ {
		net.ZeroGrad()
		out := net.Forward(x)
		var grad *tensor.Matrix
		loss, grad = MSELoss(out, y)
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if loss > 0.005 {
		t.Fatalf("regression did not converge: loss=%v", loss)
	}
}

func TestLossesKnownValues(t *testing.T) {
	pred := tensor.FromSlice(1, 2, []float64{1, 3})
	tgt := tensor.FromSlice(1, 2, []float64{0, 0})
	l, g := MSELoss(pred, tgt)
	if math.Abs(l-5) > 1e-12 { // (1+9)/2
		t.Fatalf("MSE = %v", l)
	}
	if math.Abs(g.Data[0]-1) > 1e-12 || math.Abs(g.Data[1]-3) > 1e-12 {
		t.Fatalf("MSE grad = %v", g.Data)
	}
	p2 := tensor.FromSlice(1, 1, []float64{0.5})
	t2 := tensor.FromSlice(1, 1, []float64{1})
	l2, _ := BCELoss(p2, t2)
	if math.Abs(l2-math.Log(2)) > 1e-9 {
		t.Fatalf("BCE = %v, want ln2", l2)
	}
}

func TestTanhRange(t *testing.T) {
	var th Tanh
	out := th.Forward(tensor.FromSlice(1, 3, []float64{-100, 0, 100}))
	if out.Data[0] != -1 || out.Data[1] != 0 || out.Data[2] != 1 {
		t.Fatalf("tanh = %v", out.Data)
	}
}
