// Package nn is a small feed-forward neural network library with dense and
// 1-D convolution layers, ReLU/sigmoid/tanh activations, MSE and binary
// cross-entropy losses, and the Adam optimizer — enough to reimplement
// Sinan's CNN latency predictor and Firm's actor/critic networks from
// scratch on the standard library.
package nn

import (
	"math"
	"math/rand"

	"ursa/internal/ml/tensor"
)

// Layer is one differentiable network stage.
type Layer interface {
	// Forward maps a batch (rows = examples) to outputs.
	Forward(x *tensor.Matrix) *tensor.Matrix
	// Backward receives ∂L/∂out and returns ∂L/∂in, accumulating parameter
	// gradients internally.
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns parameter/gradient pairs for the optimizer.
	Params() []Param
	// Clone returns a deep copy of the layer's parameters with pristine
	// gradient/activation state, so the copy can run on another goroutine.
	Clone() Layer
}

// Param couples a parameter tensor with its gradient accumulator.
type Param struct {
	W, G *tensor.Matrix
}

// Dense is a fully connected layer: out = x·W + b.
type Dense struct {
	W, B   *tensor.Matrix
	gw, gb *tensor.Matrix
	lastX  *tensor.Matrix
}

// NewDense builds a dense layer with He initialisation.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	return &Dense{
		W:  tensor.Randn(in, out, math.Sqrt(2/float64(in)), rng),
		B:  tensor.New(1, out),
		gw: tensor.New(in, out),
		gb: tensor.New(1, out),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix) *tensor.Matrix {
	d.lastX = x
	out := tensor.MatMul(x, d.W)
	out.AddRowVec(d.B)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	d.gw.Add(tensor.MatMulATB(d.lastX, gradOut))
	d.gb.Add(gradOut.ColSums())
	return tensor.MatMulABT(gradOut, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []Param {
	return []Param{{d.W, d.gw}, {d.B, d.gb}}
}

// Clone implements Layer.
func (d *Dense) Clone() Layer {
	return &Dense{
		W:  d.W.Clone(),
		B:  d.B.Clone(),
		gw: tensor.New(d.gw.Rows, d.gw.Cols),
		gb: tensor.New(d.gb.Rows, d.gb.Cols),
	}
}

// ReLU is max(0, x).
type ReLU struct{ mask []bool }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v <= 0 {
			out.Data[i] = 0
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(g *tensor.Matrix) *tensor.Matrix {
	out := g.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []Param { return nil }

// Clone implements Layer.
func (r *ReLU) Clone() Layer { return &ReLU{} }

// Tanh activation.
type Tanh struct{ lastOut *tensor.Matrix }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	t.lastOut = out
	return out
}

// Backward implements Layer.
func (t *Tanh) Backward(g *tensor.Matrix) *tensor.Matrix {
	out := g.Clone()
	for i := range out.Data {
		y := t.lastOut.Data[i]
		out.Data[i] *= 1 - y*y
	}
	return out
}

// Params implements Layer.
func (t *Tanh) Params() []Param { return nil }

// Clone implements Layer.
func (t *Tanh) Clone() Layer { return &Tanh{} }

// Sigmoid activation.
type Sigmoid struct{ lastOut *tensor.Matrix }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	s.lastOut = out
	return out
}

// Backward implements Layer.
func (s *Sigmoid) Backward(g *tensor.Matrix) *tensor.Matrix {
	out := g.Clone()
	for i := range out.Data {
		y := s.lastOut.Data[i]
		out.Data[i] *= y * (1 - y)
	}
	return out
}

// Params implements Layer.
func (s *Sigmoid) Params() []Param { return nil }

// Clone implements Layer.
func (s *Sigmoid) Clone() Layer { return &Sigmoid{} }

// Conv1D applies `Filters` kernels of width `Kernel` over an input laid out
// as Channels×Width per example (row-major: channel-major). Stride 1, no
// padding. This mirrors the convolution Sinan applies across service tiers.
type Conv1D struct {
	Channels, Width, Kernel, Filters int
	W                                *tensor.Matrix // filters × (channels·kernel)
	B                                *tensor.Matrix
	gw, gb                           *tensor.Matrix
	lastX                            *tensor.Matrix
}

// NewConv1D builds the layer; input rows are channels·width long.
func NewConv1D(channels, width, kernel, filters int, rng *rand.Rand) *Conv1D {
	if kernel > width {
		panic("nn: kernel wider than input")
	}
	fan := channels * kernel
	return &Conv1D{
		Channels: channels, Width: width, Kernel: kernel, Filters: filters,
		W:  tensor.Randn(filters, fan, math.Sqrt(2/float64(fan)), rng),
		B:  tensor.New(1, filters),
		gw: tensor.New(filters, fan),
		gb: tensor.New(1, filters),
	}
}

// OutWidth reports the spatial output width.
func (c *Conv1D) OutWidth() int { return c.Width - c.Kernel + 1 }

// OutLen reports the flattened output length per example.
func (c *Conv1D) OutLen() int { return c.OutWidth() * c.Filters }

// Forward implements Layer; output rows are filters·outWidth long
// (filter-major).
func (c *Conv1D) Forward(x *tensor.Matrix) *tensor.Matrix {
	c.lastX = x
	ow := c.OutWidth()
	out := tensor.New(x.Rows, c.OutLen())
	for r := 0; r < x.Rows; r++ {
		in := x.Data[r*x.Cols : (r+1)*x.Cols]
		for f := 0; f < c.Filters; f++ {
			w := c.W.Data[f*c.W.Cols : (f+1)*c.W.Cols]
			for p := 0; p < ow; p++ {
				s := c.B.Data[f]
				for ch := 0; ch < c.Channels; ch++ {
					io := ch * c.Width
					wo := ch * c.Kernel
					for k := 0; k < c.Kernel; k++ {
						s += in[io+p+k] * w[wo+k]
					}
				}
				out.Data[r*out.Cols+f*ow+p] = s
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv1D) Backward(g *tensor.Matrix) *tensor.Matrix {
	ow := c.OutWidth()
	gin := tensor.New(c.lastX.Rows, c.lastX.Cols)
	for r := 0; r < g.Rows; r++ {
		in := c.lastX.Data[r*c.lastX.Cols : (r+1)*c.lastX.Cols]
		gi := gin.Data[r*gin.Cols : (r+1)*gin.Cols]
		for f := 0; f < c.Filters; f++ {
			w := c.W.Data[f*c.W.Cols : (f+1)*c.W.Cols]
			gw := c.gw.Data[f*c.gw.Cols : (f+1)*c.gw.Cols]
			for p := 0; p < ow; p++ {
				go_ := g.Data[r*g.Cols+f*ow+p]
				if go_ == 0 {
					continue
				}
				c.gb.Data[f] += go_
				for ch := 0; ch < c.Channels; ch++ {
					io := ch * c.Width
					wo := ch * c.Kernel
					for k := 0; k < c.Kernel; k++ {
						gw[wo+k] += go_ * in[io+p+k]
						gi[io+p+k] += go_ * w[wo+k]
					}
				}
			}
		}
	}
	return gin
}

// Params implements Layer.
func (c *Conv1D) Params() []Param {
	return []Param{{c.W, c.gw}, {c.B, c.gb}}
}

// Clone implements Layer.
func (c *Conv1D) Clone() Layer {
	return &Conv1D{
		Channels: c.Channels, Width: c.Width, Kernel: c.Kernel, Filters: c.Filters,
		W:  c.W.Clone(),
		B:  c.B.Clone(),
		gw: tensor.New(c.gw.Rows, c.gw.Cols),
		gb: tensor.New(c.gb.Rows, c.gb.Cols),
	}
}

// Network is a layer stack.
type Network struct {
	Layers []Layer
}

// Forward runs the full stack.
func (n *Network) Forward(x *tensor.Matrix) *tensor.Matrix {
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates output gradients through the stack.
func (n *Network) Backward(g *tensor.Matrix) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// Params collects all parameters.
func (n *Network) Params() []Param {
	var out []Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Clone returns a deep copy of the network: identical weights, fresh
// gradient and activation buffers. Forward caches inputs per layer, so a
// network must never be shared across goroutines — clone it instead.
func (n *Network) Clone() *Network {
	out := &Network{Layers: make([]Layer, len(n.Layers))}
	for i, l := range n.Layers {
		out.Layers[i] = l.Clone()
	}
	return out
}

// ZeroGrad clears all gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.G.Zero()
	}
}

// MSELoss returns the mean-squared-error loss and ∂L/∂pred.
func MSELoss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	if pred.Rows != target.Rows || pred.Cols != target.Cols {
		panic("nn: MSE shape mismatch")
	}
	n := float64(len(pred.Data))
	grad := tensor.New(pred.Rows, pred.Cols)
	loss := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d / n
	}
	return loss / n, grad
}

// BCELoss returns binary cross-entropy (expects sigmoid outputs in (0,1))
// and ∂L/∂pred.
func BCELoss(pred, target *tensor.Matrix) (float64, *tensor.Matrix) {
	const eps = 1e-9
	n := float64(len(pred.Data))
	grad := tensor.New(pred.Rows, pred.Cols)
	loss := 0.0
	for i := range pred.Data {
		p := math.Min(math.Max(pred.Data[i], eps), 1-eps)
		y := target.Data[i]
		loss += -(y*math.Log(p) + (1-y)*math.Log(1-p))
		grad.Data[i] = (p - y) / (p * (1 - p)) / n
	}
	return loss / n, grad
}

// Adam is the Adam optimizer.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*tensor.Matrix]*tensor.Matrix
}

// NewAdam builds an optimizer with standard hyper-parameters.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*tensor.Matrix]*tensor.Matrix{},
		v: map[*tensor.Matrix]*tensor.Matrix{},
	}
}

// CloneFor deep-copies the optimizer state for a cloned parameter set:
// oldParams and newParams must align index-wise (as returned by Params on
// the original and cloned network). Moment estimates keyed by the old
// tensors are re-keyed onto the new ones, so the clone resumes training
// exactly where the original stood.
func (a *Adam) CloneFor(oldParams, newParams []Param) *Adam {
	c := NewAdam(a.LR)
	c.Beta1, c.Beta2, c.Eps, c.t = a.Beta1, a.Beta2, a.Eps, a.t
	for i := range oldParams {
		if i >= len(newParams) {
			break
		}
		if m, ok := a.m[oldParams[i].W]; ok {
			c.m[newParams[i].W] = m.Clone()
		}
		if v, ok := a.v[oldParams[i].W]; ok {
			c.v[newParams[i].W] = v.Clone()
		}
	}
	return c
}

// Step applies one update to all params and zeroes their gradients.
func (a *Adam) Step(params []Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p.W]
		if !ok {
			m = tensor.New(p.W.Rows, p.W.Cols)
			a.m[p.W] = m
		}
		v, ok := a.v[p.W]
		if !ok {
			v = tensor.New(p.W.Rows, p.W.Cols)
			a.v[p.W] = v
		}
		for i := range p.W.Data {
			g := p.G.Data[i]
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			p.W.Data[i] -= a.LR * (m.Data[i] / bc1) / (math.Sqrt(v.Data[i]/bc2) + a.Eps)
		}
		p.G.Zero()
	}
}
