// Package tensor provides the minimal dense linear algebra the ML baselines
// need: row-major float64 matrices with the usual operations. It exists so
// the Sinan (CNN + boosted trees) and Firm (RL) reimplementations are
// self-contained, matching the repository's no-external-dependencies rule.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows×cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic("tensor: data length does not match shape")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Randn fills a new matrix with N(0, std) entries.
func Randn(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
	return m
}

// At reads element (r, c).
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set writes element (r, c).
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero clears all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMul returns a×b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			av := a.Data[i*a.Cols+k]
			if av == 0 {
				continue
			}
			bo := k * b.Cols
			oo := i * out.Cols
			for j := 0; j < b.Cols; j++ {
				out.Data[oo+j] += av * b.Data[bo+j]
			}
		}
	}
	return out
}

// MatMulATB returns aᵀ×b (used for weight gradients).
func MatMulATB(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: matmulATB shape mismatch")
	}
	out := New(a.Cols, b.Cols)
	for r := 0; r < a.Rows; r++ {
		ao := r * a.Cols
		bo := r * b.Cols
		for i := 0; i < a.Cols; i++ {
			av := a.Data[ao+i]
			if av == 0 {
				continue
			}
			oo := i * out.Cols
			for j := 0; j < b.Cols; j++ {
				out.Data[oo+j] += av * b.Data[bo+j]
			}
		}
	}
	return out
}

// MatMulABT returns a×bᵀ (used for input gradients).
func MatMulABT(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: matmulABT shape mismatch")
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ao := i * a.Cols
		for j := 0; j < b.Rows; j++ {
			bo := j * b.Cols
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.Data[ao+k] * b.Data[bo+k]
			}
			out.Data[i*out.Cols+j] = s
		}
	}
	return out
}

// AddRowVec adds a 1×n row vector to every row in place.
func (m *Matrix) AddRowVec(v *Matrix) {
	if v.Rows != 1 || v.Cols != m.Cols {
		panic("tensor: AddRowVec shape mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		o := r * m.Cols
		for c := 0; c < m.Cols; c++ {
			m.Data[o+c] += v.Data[c]
		}
	}
}

// Add adds b element-wise in place.
func (m *Matrix) Add(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("tensor: Add shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += b.Data[i]
	}
}

// Scale multiplies all elements in place.
func (m *Matrix) Scale(f float64) {
	for i := range m.Data {
		m.Data[i] *= f
	}
}

// ColSums returns a 1×cols matrix of column sums.
func (m *Matrix) ColSums() *Matrix {
	out := New(1, m.Cols)
	for r := 0; r < m.Rows; r++ {
		o := r * m.Cols
		for c := 0; c < m.Cols; c++ {
			out.Data[c] += m.Data[o+c]
		}
	}
	return out
}

// Norm reports the Frobenius norm.
func (m *Matrix) Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
