package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on shape mismatch")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Property: aᵀb and abᵀ agree with explicit transposition through MatMul.
func TestTransposedProductsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := Randn(m, n, 1, rng)
		b := Randn(m, k, 1, rng)
		atb := MatMulATB(a, b) // n×k
		at := New(n, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		want := MatMul(at, b)
		for i := range atb.Data {
			if math.Abs(atb.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		c := Randn(k, n, 1, rng)
		abt := MatMulABT(a, c) // m×k
		ct := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				ct.Set(j, i, c.At(i, j))
			}
		}
		want2 := MatMul(a, ct)
		for i := range abt.Data {
			if math.Abs(abt.Data[i]-want2.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddRowVecAndColSums(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.AddRowVec(FromSlice(1, 2, []float64{10, 20}))
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVec = %v", m.Data)
	}
	cs := m.ColSums()
	if cs.At(0, 0) != 11+13 || cs.At(0, 1) != 22+24 {
		t.Fatalf("ColSums = %v", cs.Data)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares backing data")
	}
}

func TestScaleZeroNorm(t *testing.T) {
	m := FromSlice(1, 3, []float64{3, 4, 0})
	if m.Norm() != 5 {
		t.Fatalf("Norm = %v", m.Norm())
	}
	m.Scale(2)
	if m.At(0, 1) != 8 {
		t.Fatal("Scale failed")
	}
	m.Zero()
	if m.Norm() != 0 {
		t.Fatal("Zero failed")
	}
}
