// Package rl provides the reinforcement-learning building blocks for the
// Firm baseline: a replay buffer and a deterministic actor-critic agent
// (DDPG-style, with target networks and exploration noise) built on the nn
// package. Firm assigns one such agent per microservice (§VII-B).
package rl

import (
	"math/rand"

	"ursa/internal/ml/nn"
	"ursa/internal/ml/tensor"
)

// Transition is one (s, a, r, s') experience.
type Transition struct {
	State     []float64
	Action    float64
	Reward    float64
	NextState []float64
}

// Replay is a fixed-capacity ring replay buffer.
type Replay struct {
	buf  []Transition
	next int
	full bool
}

// NewReplay allocates a buffer of the given capacity.
func NewReplay(capacity int) *Replay {
	return &Replay{buf: make([]Transition, capacity)}
}

// Add stores a transition, overwriting the oldest when full.
func (r *Replay) Add(t Transition) {
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports stored transitions.
func (r *Replay) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Clone copies the buffer. Transitions are copied by value; their state
// slices are immutable after Add, so sharing them is safe across goroutines.
func (r *Replay) Clone() *Replay {
	return &Replay{buf: append([]Transition(nil), r.buf...), next: r.next, full: r.full}
}

// Sample draws n transitions with replacement.
func (r *Replay) Sample(n int, rng *rand.Rand) []Transition {
	m := r.Len()
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[rng.Intn(m)]
	}
	return out
}

// Agent is a DDPG-lite actor-critic: the actor maps state → action in
// [-1, 1]; the critic maps (state, action) → value.
type Agent struct {
	StateDim int
	actor    *nn.Network
	critic   *nn.Network
	actorTgt *nn.Network
	criticT  *nn.Network
	optA     *nn.Adam
	optC     *nn.Adam
	rng      *rand.Rand

	Gamma float64 // discount
	Tau   float64 // target soft-update rate
	Noise float64 // exploration noise std (decays)

	// UpdateCount tracks training iterations (control-plane accounting).
	UpdateCount int
}

// NewAgent builds an agent with small two-hidden-layer networks.
func NewAgent(stateDim, hidden int, rng *rand.Rand) *Agent {
	mkActor := func() *nn.Network {
		return &nn.Network{Layers: []nn.Layer{
			nn.NewDense(stateDim, hidden, rng), &nn.ReLU{},
			nn.NewDense(hidden, hidden, rng), &nn.ReLU{},
			nn.NewDense(hidden, 1, rng), &nn.Tanh{},
		}}
	}
	mkCritic := func() *nn.Network {
		return &nn.Network{Layers: []nn.Layer{
			nn.NewDense(stateDim+1, hidden, rng), &nn.ReLU{},
			nn.NewDense(hidden, hidden, rng), &nn.ReLU{},
			nn.NewDense(hidden, 1, rng),
		}}
	}
	a := &Agent{
		StateDim: stateDim,
		actor:    mkActor(), critic: mkCritic(),
		actorTgt: mkActor(), criticT: mkCritic(),
		optA: nn.NewAdam(1e-3), optC: nn.NewAdam(1e-3),
		rng:   rng,
		Gamma: 0.9, Tau: 0.01, Noise: 0.3,
	}
	copyParams(a.actorTgt, a.actor)
	copyParams(a.criticT, a.critic)
	return a
}

// Clone deep-copies the agent — networks, target networks and optimizer
// moments — handing the copy its own RNG. Clones of one agent are
// identical, so fanning deployments over clones is deterministic.
func (a *Agent) Clone(rng *rand.Rand) *Agent {
	c := &Agent{
		StateDim: a.StateDim,
		actor:    a.actor.Clone(), critic: a.critic.Clone(),
		actorTgt: a.actorTgt.Clone(), criticT: a.criticT.Clone(),
		rng:   rng,
		Gamma: a.Gamma, Tau: a.Tau, Noise: a.Noise,

		UpdateCount: a.UpdateCount,
	}
	c.optA = a.optA.CloneFor(a.actor.Params(), c.actor.Params())
	c.optC = a.optC.CloneFor(a.critic.Params(), c.critic.Params())
	return c
}

func copyParams(dst, src *nn.Network) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		copy(dp[i].W.Data, sp[i].W.Data)
	}
}

func softUpdate(dst, src *nn.Network, tau float64) {
	dp, sp := dst.Params(), src.Params()
	for i := range dp {
		for j := range dp[i].W.Data {
			dp[i].W.Data[j] = (1-tau)*dp[i].W.Data[j] + tau*sp[i].W.Data[j]
		}
	}
}

// Act returns the policy action for a state; explore adds Gaussian noise.
func (a *Agent) Act(state []float64, explore bool) float64 {
	x := tensor.FromSlice(1, a.StateDim, append([]float64(nil), state...))
	out := a.actor.Forward(x).Data[0]
	if explore {
		out += a.rng.NormFloat64() * a.Noise
	}
	if out > 1 {
		out = 1
	}
	if out < -1 {
		out = -1
	}
	return out
}

// Train runs one mini-batch update from the replay buffer.
func (a *Agent) Train(replay *Replay, batch int) {
	if replay.Len() < batch {
		return
	}
	a.UpdateCount++
	ts := replay.Sample(batch, a.rng)

	// Critic target: r + γ·Q'(s', π'(s')).
	states := tensor.New(batch, a.StateDim)
	nexts := tensor.New(batch, a.StateDim)
	for i, t := range ts {
		copy(states.Data[i*a.StateDim:], t.State)
		copy(nexts.Data[i*a.StateDim:], t.NextState)
	}
	nextActs := a.actorTgt.Forward(nexts)
	saNext := tensor.New(batch, a.StateDim+1)
	for i := range ts {
		copy(saNext.Data[i*(a.StateDim+1):], nexts.Data[i*a.StateDim:(i+1)*a.StateDim])
		saNext.Data[i*(a.StateDim+1)+a.StateDim] = nextActs.Data[i]
	}
	qNext := a.criticT.Forward(saNext)
	target := tensor.New(batch, 1)
	for i, t := range ts {
		target.Data[i] = t.Reward + a.Gamma*qNext.Data[i]
	}

	// Critic update.
	sa := tensor.New(batch, a.StateDim+1)
	for i, t := range ts {
		copy(sa.Data[i*(a.StateDim+1):], t.State)
		sa.Data[i*(a.StateDim+1)+a.StateDim] = t.Action
	}
	a.critic.ZeroGrad()
	q := a.critic.Forward(sa)
	_, grad := nn.MSELoss(q, target)
	a.critic.Backward(grad)
	a.optC.Step(a.critic.Params())

	// Actor update: maximize Q(s, π(s)) → gradient ascent through the
	// critic's action input.
	a.actor.ZeroGrad()
	acts := a.actor.Forward(states)
	saPi := tensor.New(batch, a.StateDim+1)
	for i := range ts {
		copy(saPi.Data[i*(a.StateDim+1):], ts[i].State)
		saPi.Data[i*(a.StateDim+1)+a.StateDim] = acts.Data[i]
	}
	a.critic.ZeroGrad()
	a.critic.Forward(saPi)
	ones := tensor.New(batch, 1)
	for i := range ones.Data {
		ones.Data[i] = -1.0 / float64(batch) // ascent on Q
	}
	gSA := a.criticGradInput(saPi, ones)
	gAct := tensor.New(batch, 1)
	for i := 0; i < batch; i++ {
		gAct.Data[i] = gSA.Data[i*(a.StateDim+1)+a.StateDim]
	}
	a.actor.Backward(gAct)
	a.optA.Step(a.actor.Params())
	a.critic.ZeroGrad()

	softUpdate(a.actorTgt, a.actor, a.Tau)
	softUpdate(a.criticT, a.critic, a.Tau)
	if a.Noise > 0.05 {
		a.Noise *= 0.999
	}
}

// criticGradInput backpropagates through the critic to its inputs (the
// critic has just run Forward on the same batch).
func (a *Agent) criticGradInput(_, gradOut *tensor.Matrix) *tensor.Matrix {
	g := gradOut
	for i := len(a.critic.Layers) - 1; i >= 0; i-- {
		g = a.critic.Layers[i].Backward(g)
	}
	return g
}
