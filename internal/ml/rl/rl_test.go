package rl

import (
	"math/rand"
	"testing"
)

func TestReplayRing(t *testing.T) {
	r := NewReplay(3)
	for i := 0; i < 5; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	rng := rand.New(rand.NewSource(1))
	for _, tr := range r.Sample(10, rng) {
		if tr.Reward < 2 { // 0 and 1 were overwritten
			t.Fatalf("sampled evicted transition %v", tr.Reward)
		}
	}
}

func TestActBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAgent(3, 8, rng)
	for i := 0; i < 50; i++ {
		s := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		act := a.Act(s, true)
		if act < -1 || act > 1 {
			t.Fatalf("action out of range: %v", act)
		}
	}
}

// TestAgentLearnsBandit trains the agent on a 1-step problem where reward =
// -(action - 0.6)²: the policy should move toward 0.6.
func TestAgentLearnsBandit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAgent(1, 16, rng)
	a.Gamma = 0 // contextual bandit
	replay := NewReplay(2048)
	state := []float64{1}
	for i := 0; i < 1500; i++ {
		act := a.Act(state, true)
		r := -(act - 0.6) * (act - 0.6)
		replay.Add(Transition{State: state, Action: act, Reward: r, NextState: state})
		a.Train(replay, 32)
	}
	final := a.Act(state, false)
	if final < 0.3 || final > 0.9 {
		t.Fatalf("policy did not converge toward 0.6: %v", final)
	}
	if a.UpdateCount == 0 {
		t.Fatal("no updates counted")
	}
}

func TestNoiseDecays(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewAgent(1, 4, rng)
	replay := NewReplay(64)
	for i := 0; i < 64; i++ {
		replay.Add(Transition{State: []float64{0}, Action: 0, Reward: 0, NextState: []float64{0}})
	}
	before := a.Noise
	for i := 0; i < 100; i++ {
		a.Train(replay, 8)
	}
	if a.Noise >= before {
		t.Fatal("exploration noise did not decay")
	}
}

func TestTrainNoopWhenBufferSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewAgent(1, 4, rng)
	replay := NewReplay(64)
	replay.Add(Transition{State: []float64{0}, Action: 0, Reward: 0, NextState: []float64{0}})
	a.Train(replay, 32)
	if a.UpdateCount != 0 {
		t.Fatal("trained on an under-filled buffer")
	}
}
