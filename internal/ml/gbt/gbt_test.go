package gbt

import (
	"math"
	"math/rand"
	"testing"
)

func TestRegressorLearnsStepFunction(t *testing.T) {
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		v := float64(i) / 200
		X = append(X, []float64{v})
		if v < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 5)
		}
	}
	r := TrainRegressor(X, y, Config{Trees: 30, Depth: 2})
	if got := r.Predict([]float64{0.2}); math.Abs(got-1) > 0.3 {
		t.Fatalf("low side = %v", got)
	}
	if got := r.Predict([]float64{0.8}); math.Abs(got-5) > 0.3 {
		t.Fatalf("high side = %v", got)
	}
	if r.NumTrees() != 30 {
		t.Fatalf("trees = %d", r.NumTrees())
	}
}

func TestRegressorLearnsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		X = append(X, []float64{a, b})
		y = append(y, a*a+b)
	}
	r := TrainRegressor(X, y, Config{Trees: 120, Depth: 4, LearningRate: 0.15})
	sse := 0.0
	for i := 0; i < 100; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		d := r.Predict([]float64{a, b}) - (a*a + b)
		sse += d * d
	}
	if rmse := math.Sqrt(sse / 100); rmse > 0.25 {
		t.Fatalf("RMSE = %v", rmse)
	}
}

func TestClassifierSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		X = append(X, []float64{a, b})
		if a+b > 1 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	c := TrainClassifier(X, y, Config{Trees: 60, Depth: 3})
	correct := 0
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		p := c.PredictProb([]float64{a, b})
		want := 0.0
		if a+b > 1 {
			want = 1
		}
		if (p > 0.5) == (want == 1) {
			correct++
		}
	}
	if correct < 180 {
		t.Fatalf("accuracy = %d/200", correct)
	}
}

func TestClassifierProbabilitiesInRange(t *testing.T) {
	X := [][]float64{{0}, {1}, {0}, {1}}
	y := []float64{0, 1, 0, 1}
	c := TrainClassifier(X, y, Config{Trees: 10, Depth: 1, MinLeaf: 1})
	for _, x := range X {
		p := c.PredictProb(x)
		if p < 0 || p > 1 {
			t.Fatalf("prob out of range: %v", p)
		}
	}
	if c.PredictProb([]float64{1}) <= c.PredictProb([]float64{0}) {
		t.Fatal("classifier did not order classes")
	}
}

func TestConstantTargetGivesConstantPrediction(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{7, 7, 7, 7}
	r := TrainRegressor(X, y, Config{Trees: 5, Depth: 2, MinLeaf: 1})
	if got := r.Predict([]float64{2.5}); math.Abs(got-7) > 1e-9 {
		t.Fatalf("constant prediction = %v", got)
	}
}

func TestBadInputPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty data")
		}
	}()
	TrainRegressor(nil, nil, Config{})
}
