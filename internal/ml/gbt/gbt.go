// Package gbt implements gradient-boosted regression trees (CART base
// learners, squared or logistic loss) from scratch — the "boosted trees"
// component of Sinan's SLA-violation predictor.
package gbt

import (
	"math"
	"sort"
)

// Config controls boosting.
type Config struct {
	Trees        int     // number of boosting rounds
	Depth        int     // max tree depth
	LearningRate float64 // shrinkage
	MinLeaf      int     // minimum samples per leaf
}

func (c *Config) defaults() {
	if c.Trees <= 0 {
		c.Trees = 50
	}
	if c.Depth <= 0 {
		c.Depth = 3
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 5
	}
}

type node struct {
	feature     int
	threshold   float64
	left, right *node
	value       float64
	leaf        bool
}

func (n *node) predict(x []float64) float64 {
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// fitTree builds a regression tree on residuals.
func fitTree(X [][]float64, y []float64, idx []int, depth int, cfg Config) *node {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	if depth >= cfg.Depth || len(idx) < 2*cfg.MinLeaf {
		return &node{leaf: true, value: mean}
	}
	bestFeat, bestThr, bestGain := -1, 0.0, 0.0
	baseSSE := 0.0
	for _, i := range idx {
		d := y[i] - mean
		baseSSE += d * d
	}
	nFeat := len(X[0])
	order := make([]int, len(idx))
	for f := 0; f < nFeat; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		// Prefix sums for O(n) split evaluation.
		sumL, cntL := 0.0, 0
		total := mean * float64(len(idx))
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			sumL += y[i]
			cntL++
			if cntL < cfg.MinLeaf || len(order)-cntL < cfg.MinLeaf {
				continue
			}
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			sumR := total - sumL
			cntR := len(order) - cntL
			gain := sumL*sumL/float64(cntL) + sumR*sumR/float64(cntR) - total*total/float64(len(idx))
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeat = f
				bestThr = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeat == -1 {
		return &node{leaf: true, value: mean}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &node{leaf: true, value: mean}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThr,
		left:      fitTree(X, y, li, depth+1, cfg),
		right:     fitTree(X, y, ri, depth+1, cfg),
	}
}

// Regressor is a squared-loss gradient-boosted ensemble.
type Regressor struct {
	cfg   Config
	base  float64
	trees []*node
}

// TrainRegressor fits the ensemble to (X, y).
func TrainRegressor(X [][]float64, y []float64, cfg Config) *Regressor {
	cfg.defaults()
	if len(X) == 0 || len(X) != len(y) {
		panic("gbt: bad training data")
	}
	r := &Regressor{cfg: cfg}
	for _, v := range y {
		r.base += v
	}
	r.base /= float64(len(y))
	pred := make([]float64, len(y))
	for i := range pred {
		pred[i] = r.base
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	resid := make([]float64, len(y))
	for t := 0; t < cfg.Trees; t++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		tree := fitTree(X, resid, idx, 0, cfg)
		r.trees = append(r.trees, tree)
		for i := range pred {
			pred[i] += cfg.LearningRate * tree.predict(X[i])
		}
	}
	return r
}

// Predict evaluates one example.
func (r *Regressor) Predict(x []float64) float64 {
	out := r.base
	for _, t := range r.trees {
		out += r.cfg.LearningRate * t.predict(x)
	}
	return out
}

// NumTrees reports the ensemble size.
func (r *Regressor) NumTrees() int { return len(r.trees) }

// Classifier is a logistic-loss gradient-boosted ensemble for binary labels.
type Classifier struct {
	cfg   Config
	base  float64 // log-odds prior
	trees []*node
}

// TrainClassifier fits the ensemble to (X, y) with y ∈ {0,1}.
func TrainClassifier(X [][]float64, y []float64, cfg Config) *Classifier {
	cfg.defaults()
	if len(X) == 0 || len(X) != len(y) {
		panic("gbt: bad training data")
	}
	pos := 0.0
	for _, v := range y {
		pos += v
	}
	p := math.Min(math.Max(pos/float64(len(y)), 1e-6), 1-1e-6)
	c := &Classifier{cfg: cfg, base: math.Log(p / (1 - p))}
	score := make([]float64, len(y))
	for i := range score {
		score[i] = c.base
	}
	idx := make([]int, len(y))
	for i := range idx {
		idx[i] = i
	}
	grad := make([]float64, len(y))
	for t := 0; t < cfg.Trees; t++ {
		for i := range grad {
			grad[i] = y[i] - sigmoid(score[i]) // negative gradient of log-loss
		}
		tree := fitTree(X, grad, idx, 0, cfg)
		c.trees = append(c.trees, tree)
		for i := range score {
			score[i] += cfg.LearningRate * tree.predict(X[i])
		}
	}
	return c
}

// PredictProb reports P(y=1 | x).
func (c *Classifier) PredictProb(x []float64) float64 {
	s := c.base
	for _, t := range c.trees {
		s += c.cfg.LearningRate * t.predict(x)
	}
	return sigmoid(s)
}

// NumTrees reports the ensemble size.
func (c *Classifier) NumTrees() int { return len(c.trees) }

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
