package sim

import (
	"fmt"
)

// Event is a generation-counted handle to a scheduled callback. Events are
// returned by the scheduling methods so callers can Cancel them (for example
// a processor-sharing scheduler re-planning completion times, or a timeout
// that was beaten by a response).
//
// Handles are small values, safe to copy and safe to keep after the event
// fired or was canceled: every operation first checks the handle's generation
// against the engine's event arena, so a stale handle is simply a no-op. The
// zero Event is a valid "no event" handle; Cancel and Canceled on it do
// nothing. Once the underlying arena slot has been recycled for a *new*
// event, queries on the old handle report zero values.
type Event struct {
	eng  *Engine
	slot int32
	gen  uint64
}

// At reports the simulated time the event fires (or would have fired). It
// returns 0 once the slot has been recycled for a newer event.
func (ev Event) At() Time {
	if ev.eng == nil {
		return 0
	}
	sl := &ev.eng.slots[ev.slot]
	if sl.gen != ev.gen {
		return 0
	}
	return sl.at
}

// Canceled reports whether Cancel was called on the event.
func (ev Event) Canceled() bool {
	if ev.eng == nil {
		return false
	}
	sl := &ev.eng.slots[ev.slot]
	return sl.gen == ev.gen && sl.canceled
}

// Cancel prevents the event from firing and immediately releases its arena
// slot for reuse. Canceling an already-fired or already-canceled event is a
// no-op. The queue entry is dropped lazily; when more than half of the queue
// is canceled entries, the queue is compacted in one O(n) sweep.
func (ev Event) Cancel() {
	if ev.eng == nil {
		return
	}
	e := ev.eng
	sl := &e.slots[ev.slot]
	if sl.gen != ev.gen || !sl.pending {
		return
	}
	sl.pending = false
	sl.canceled = true
	sl.fn = nil
	sl.h = nil
	e.free = append(e.free, ev.slot)
	e.stale++
	if e.stale*2 > len(e.heap) && len(e.heap) >= reapMinQueue {
		e.Compact()
	}
}

// reapMinQueue is the queue length below which bulk reaping is not worth the
// sweep; tiny queues self-clean through normal pops.
const reapMinQueue = 16

// Handler receives scheduled callbacks without a per-call closure. Components
// that schedule the same logical callback over and over (a load generator
// arming its next arrival, a ticker re-arming itself, a pooled step machine
// advancing a request) implement Handler once and pass themselves to
// ScheduleHandler/AtHandler: storing a pointer-backed interface in the event
// arena allocates nothing, where building a fresh func() closure per call
// allocates every time.
type Handler interface{ OnEvent() }

// eventSlot is one arena cell. Slots are recycled through a free list; gen
// increments on every (re)allocation, which is what invalidates old handles
// and old queue entries. Exactly one of fn and h is set per lifetime.
type eventSlot struct {
	fn       func()
	h        Handler
	at       Time
	gen      uint64
	pending  bool // scheduled and neither fired nor canceled
	canceled bool // how the last lifetime ended (cleared on reuse)
}

// eventEntry is one queue element of the 4-ary min-heap. It carries the
// ordering key (at, seq) inline so comparisons never chase the arena, plus
// the (slot, gen) pair that says which event lifetime it belongs to. An
// entry whose generation no longer matches its slot — or whose slot is no
// longer pending — is garbage and is skipped (or swept out) without firing.
type eventEntry struct {
	at   Time
	seq  uint64
	slot int32
	gen  uint64
}

func entryLess(a, b eventEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on the engine's
// goroutine, which is what makes runs bit-for-bit reproducible.
//
// The event queue is a typed 4-ary min-heap of plain value entries over a
// pooled event arena: scheduling allocates nothing in steady state (slots are
// recycled through a free list), and cancellation is O(1) with lazy deletion
// plus bulk compaction.
type Engine struct {
	now   Time
	seq   uint64
	heap  []eventEntry
	slots []eventSlot
	free  []int32
	stale int // canceled-but-unswept entries still in heap
	seed  int64
	// fired counts executed (non-canceled) events, for diagnostics.
	fired uint64
}

// NewEngine returns an engine at time zero. The seed parameterises all RNG
// streams derived through Engine.RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Seed reports the engine's base seed.
func (e *Engine) Seed() int64 { return e.seed }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many live (scheduled, not canceled) events are queued.
func (e *Engine) Pending() int { return len(e.heap) - e.stale }

// Compact sweeps canceled entries out of the queue in one O(n) pass and
// restores the heap invariant. It runs automatically when canceled entries
// outnumber live ones; callers may also invoke it on demand.
func (e *Engine) Compact() {
	if e.stale == 0 {
		return
	}
	kept := e.heap[:0]
	for _, en := range e.heap {
		sl := &e.slots[en.slot]
		if sl.gen == en.gen && sl.pending {
			kept = append(kept, en)
		}
	}
	e.heap = kept
	e.stale = 0
	// Standard bottom-up heapify over the surviving entries.
	for i := (len(e.heap) - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Schedule runs fn after delay. It panics if delay is negative.
func (e *Engine) Schedule(delay Time, fn func()) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// ScheduleHandler runs h.OnEvent after delay. Unlike Schedule it stores the
// handler interface directly in the event arena, so scheduling a pointer-
// backed handler allocates nothing.
func (e *Engine) ScheduleHandler(delay Time, h Handler) Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleHandler with negative delay %v", delay))
	}
	return e.AtHandler(e.now+delay, h)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) Event {
	sl, ev := e.alloc(t)
	sl.fn = fn
	return ev
}

// AtHandler runs h.OnEvent at absolute time t, which must not be in the past.
func (e *Engine) AtHandler(t Time, h Handler) Event {
	sl, ev := e.alloc(t)
	sl.h = h
	return ev
}

// alloc claims an arena slot and queues it for time t; the caller fills in
// the callback (fn or h).
func (e *Engine) alloc(t Time) (*eventSlot, Event) {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, e.now))
	}
	e.seq++
	var s int32
	if n := len(e.free); n > 0 {
		s = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.slots = append(e.slots, eventSlot{})
		s = int32(len(e.slots) - 1)
	}
	sl := &e.slots[s]
	sl.gen++
	sl.at = t
	sl.pending = true
	sl.canceled = false
	e.push(eventEntry{at: t, seq: e.seq, slot: s, gen: sl.gen})
	return sl, Event{eng: e, slot: s, gen: sl.gen}
}

// push inserts an entry and sifts it up the 4-ary heap.
func (e *Engine) push(en eventEntry) {
	e.heap = append(e.heap, en)
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(e.heap[i], e.heap[p]) {
			break
		}
		e.heap[i], e.heap[p] = e.heap[p], e.heap[i]
		i = p
	}
}

// popTop removes the minimum entry and restores the heap invariant.
func (e *Engine) popTop() {
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	if n > 1 {
		e.siftDown(0)
	}
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	for {
		best := i
		lo := 4*i + 1
		if lo >= n {
			return
		}
		hi := lo + 4
		if hi > n {
			hi = n
		}
		for c := lo; c < hi; c++ {
			if entryLess(h[c], h[best]) {
				best = c
			}
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// fireTop consumes the top entry, which the caller has verified is live,
// releases its slot, advances the clock and runs the callback.
func (e *Engine) fireTop(en eventEntry) {
	sl := &e.slots[en.slot]
	fn, h := sl.fn, sl.h
	sl.fn = nil
	sl.h = nil
	sl.pending = false
	e.free = append(e.free, en.slot)
	e.now = en.at
	e.fired++
	if fn != nil {
		fn()
	} else {
		h.OnEvent()
	}
}

// Step executes the next pending event, skipping canceled ones. It returns
// false when no events remain.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		en := e.heap[0]
		e.popTop()
		sl := &e.slots[en.slot]
		if sl.gen != en.gen || !sl.pending {
			e.stale--
			continue
		}
		e.fireTop(en)
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event is
// strictly after the deadline; the clock is then advanced to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 {
		en := e.heap[0]
		sl := &e.slots[en.slot]
		if sl.gen != en.gen || !sl.pending {
			e.popTop()
			e.stale--
			continue
		}
		if en.at > deadline {
			break
		}
		e.popTop()
		e.fireTop(en)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Drain runs until no events remain. A maxEvents guard prevents runaway
// models; it panics when exceeded.
func (e *Engine) Drain(maxEvents uint64) {
	var n uint64
	for e.Step() {
		n++
		if n > maxEvents {
			panic("sim: Drain exceeded event budget; model is likely self-perpetuating")
		}
	}
}

// Every schedules fn to run now+period, then every period thereafter, until
// the returned Ticker is stopped.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker is a repeating event; see Engine.Every.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	ev      Event
	stopped bool
}

func (t *Ticker) arm() {
	t.ev = t.engine.ScheduleHandler(t.period, t)
}

// OnEvent implements Handler: one tick. Scheduling the ticker itself (rather
// than a fresh closure per tick) makes periodic samplers allocation-free.
func (t *Ticker) OnEvent() {
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.arm()
	}
}

// Stop cancels future ticks and immediately drops the armed event from the
// queue, so a stopped ticker leaves nothing behind to fire as a no-op.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
	t.ev = Event{}
}
