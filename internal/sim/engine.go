package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are returned by the scheduling
// methods so callers can Cancel them (for example a processor-sharing
// scheduler re-planning completion times, or a timeout that was beaten by a
// response).
type Event struct {
	at       Time
	seq      uint64 // tie-break: FIFO among events at the same instant
	fn       func()
	index    int // heap index, -1 when popped
	canceled bool
}

// At reports the simulated time the event fires (or would have fired).
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all model code runs inside event callbacks on the engine's
// goroutine, which is what makes runs bit-for-bit reproducible.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	seed   int64
	// fired counts executed (non-canceled) events, for diagnostics.
	fired uint64
}

// NewEngine returns an engine at time zero. The seed parameterises all RNG
// streams derived through Engine.RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Seed reports the engine's base seed.
func (e *Engine) Seed() int64 { return e.seed }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued (including canceled ones not
// yet reaped).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay. It panics if delay is negative.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) is before now (%v)", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// Step executes the next pending event, skipping canceled ones. It returns
// false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event is
// strictly after the deadline; the clock is then advanced to the deadline.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.canceled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.fired++
		next.fn()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d from the current time.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Drain runs until no events remain. A maxEvents guard prevents runaway
// models; it panics when exceeded.
func (e *Engine) Drain(maxEvents uint64) {
	var n uint64
	for e.Step() {
		n++
		if n > maxEvents {
			panic("sim: Drain exceeded event budget; model is likely self-perpetuating")
		}
	}
}

// Every schedules fn to run now+period, then every period thereafter, until
// the returned Ticker is stopped.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm()
	return t
}

// Ticker is a repeating event; see Engine.Every.
type Ticker struct {
	engine  *Engine
	period  Time
	fn      func()
	ev      *Event
	stopped bool
}

func (t *Ticker) arm() {
	t.ev = t.engine.Schedule(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
