// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the foundation of the repository: the simulated microservice
// cluster, the load generators, and every experiment harness schedule their
// work as events on a single Engine. Simulated time is completely decoupled
// from wall-clock time, so hours of "cluster time" (for example the 166-hour
// ML data-collection runs of Table V) execute in seconds.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, expressed as nanoseconds since the
// start of the simulation. The zero Time is the simulation epoch.
type Time int64

// Common durations, usable as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// FromDuration converts a time.Duration into a simulated duration.
func FromDuration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Duration converts t, interpreted as a duration, to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Minutes reports t as floating-point minutes.
func (t Time) Minutes() float64 { return float64(t) / float64(Minute) }

// Hours reports t as floating-point hours.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// String formats t with time.Duration semantics ("1.5s", "3m20s", ...).
func (t Time) String() string { return time.Duration(t).String() }

// Seconds2Time converts floating point seconds to a Time delta.
func Seconds2Time(s float64) Time { return Time(s * float64(Second)) }

// Millis2Time converts floating point milliseconds to a Time delta.
func Millis2Time(ms float64) Time { return Time(ms * float64(Millisecond)) }

// CheckNonNegative panics if t is negative; used to validate delays built
// from arithmetic on measured values.
func CheckNonNegative(t Time, what string) {
	if t < 0 {
		panic(fmt.Sprintf("sim: negative %s: %v", what, t))
	}
}
