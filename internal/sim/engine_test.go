package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Fatalf("FromDuration = %v", got)
	}
	if got := (2 * Second).Millis(); got != 2000 {
		t.Fatalf("Millis = %v", got)
	}
	if got := (90 * Minute).Hours(); got != 1.5 {
		t.Fatalf("Hours = %v", got)
	}
	if got := Seconds2Time(0.25); got != 250*Millisecond {
		t.Fatalf("Seconds2Time = %v", got)
	}
	if got := Millis2Time(1.5); got != 1500*Microsecond {
		t.Fatalf("Millis2Time = %v", got)
	}
	if (3 * Second).String() != "3s" {
		t.Fatalf("String = %q", (3 * Second).String())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*Second, func() { order = append(order, 3) })
	e.Schedule(1*Second, func() { order = append(order, 1) })
	e.Schedule(2*Second, func() { order = append(order, 2) })
	e.Drain(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { order = append(order, i) })
	}
	e.Drain(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(Second, func() { fired = true })
	ev.Cancel()
	e.Drain(10)
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*Second, func() {})
	e.RunUntil(5 * Second)
	if e.Now() != 5*Second {
		t.Fatalf("Now = %v, want 5s", e.Now())
	}
	if e.Fired() != 0 {
		t.Fatal("future event fired early")
	}
	e.RunFor(10 * Second)
	if e.Fired() != 1 || e.Now() != 15*Second {
		t.Fatalf("fired=%d now=%v", e.Fired(), e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.Schedule(Second, func() {
		got = append(got, e.Now())
		e.Schedule(Second, func() { got = append(got, e.Now()) })
	})
	e.Drain(10)
	if len(got) != 2 || got[0] != Second || got[1] != 2*Second {
		t.Fatalf("nested schedule times = %v", got)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tick := e.Every(Minute, func() { n++ })
	e.RunUntil(5 * Minute)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	tick.Stop()
	e.RunUntil(10 * Minute)
	if n != 5 {
		t.Fatalf("ticker fired after Stop: %d", n)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick *Ticker
	tick = e.Every(Second, func() {
		n++
		if n == 3 {
			tick.Stop()
		}
	})
	e.RunUntil(10 * Second)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	NewEngine(1).Schedule(-Second, func() {})
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, func() {})
	e.RunUntil(2 * Second)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on At in the past")
		}
	}()
	e.At(Second, func() {})
}

func TestRNGIndependentStreams(t *testing.T) {
	e := NewEngine(42)
	a, b := e.RNG("a"), e.RNG("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 'a' and 'b' collide %d/100 draws", same)
	}
	// Same name must reproduce the same stream.
	c, d := NewEngine(42).RNG("a"), NewEngine(42).RNG("a")
	for i := 0; i < 100; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same (seed,name) stream not reproducible")
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := NewEngine(7)
		rng := e.RNG("load")
		var times []Time
		var arrive func()
		arrive = func() {
			times = append(times, e.Now())
			if len(times) < 50 {
				e.Schedule(Time(rng.ExpFloat64()*float64(Second)), arrive)
			}
		}
		e.Schedule(0, arrive)
		e.Drain(1000)
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: RunUntil never decreases the clock and fires every event at or
// before the deadline, in timestamp order.
func TestRunUntilProperty(t *testing.T) {
	f := func(delays []uint16, deadline uint32) bool {
		e := NewEngine(1)
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Time(d)*Millisecond, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		dl := Time(deadline) * Millisecond
		e.RunUntil(dl)
		if e.Now() < dl {
			return false
		}
		prev := Time(-1)
		for _, ft := range fireTimes {
			if ft > dl || ft < prev {
				return false
			}
			prev = ft
		}
		// All events at or before the deadline must have fired.
		want := 0
		for _, d := range delays {
			if Time(d)*Millisecond <= dl {
				want++
			}
		}
		return len(fireTimes) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
