package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := FromDuration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Fatalf("FromDuration = %v", got)
	}
	if got := (2 * Second).Millis(); got != 2000 {
		t.Fatalf("Millis = %v", got)
	}
	if got := (90 * Minute).Hours(); got != 1.5 {
		t.Fatalf("Hours = %v", got)
	}
	if got := Seconds2Time(0.25); got != 250*Millisecond {
		t.Fatalf("Seconds2Time = %v", got)
	}
	if got := Millis2Time(1.5); got != 1500*Microsecond {
		t.Fatalf("Millis2Time = %v", got)
	}
	if (3 * Second).String() != "3s" {
		t.Fatalf("String = %q", (3 * Second).String())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3*Second, func() { order = append(order, 3) })
	e.Schedule(1*Second, func() { order = append(order, 1) })
	e.Schedule(2*Second, func() { order = append(order, 2) })
	e.Drain(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { order = append(order, i) })
	}
	e.Drain(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(Second, func() { fired = true })
	ev.Cancel()
	e.Drain(10)
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10*Second, func() {})
	e.RunUntil(5 * Second)
	if e.Now() != 5*Second {
		t.Fatalf("Now = %v, want 5s", e.Now())
	}
	if e.Fired() != 0 {
		t.Fatal("future event fired early")
	}
	e.RunFor(10 * Second)
	if e.Fired() != 1 || e.Now() != 15*Second {
		t.Fatalf("fired=%d now=%v", e.Fired(), e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	e.Schedule(Second, func() {
		got = append(got, e.Now())
		e.Schedule(Second, func() { got = append(got, e.Now()) })
	})
	e.Drain(10)
	if len(got) != 2 || got[0] != Second || got[1] != 2*Second {
		t.Fatalf("nested schedule times = %v", got)
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tick := e.Every(Minute, func() { n++ })
	e.RunUntil(5 * Minute)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
	tick.Stop()
	e.RunUntil(10 * Minute)
	if n != 5 {
		t.Fatalf("ticker fired after Stop: %d", n)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tick *Ticker
	tick = e.Every(Second, func() {
		n++
		if n == 3 {
			tick.Stop()
		}
	})
	e.RunUntil(10 * Second)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative delay")
		}
	}()
	NewEngine(1).Schedule(-Second, func() {})
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(Second, func() {})
	e.RunUntil(2 * Second)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on At in the past")
		}
	}()
	e.At(Second, func() {})
}

func TestRNGIndependentStreams(t *testing.T) {
	e := NewEngine(42)
	a, b := e.RNG("a"), e.RNG("b")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 'a' and 'b' collide %d/100 draws", same)
	}
	// Same name must reproduce the same stream.
	c, d := NewEngine(42).RNG("a"), NewEngine(42).RNG("a")
	for i := 0; i < 100; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same (seed,name) stream not reproducible")
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := NewEngine(7)
		rng := e.RNG("load")
		var times []Time
		var arrive func()
		arrive = func() {
			times = append(times, e.Now())
			if len(times) < 50 {
				e.Schedule(Time(rng.ExpFloat64()*float64(Second)), arrive)
			}
		}
		e.Schedule(0, arrive)
		e.Drain(1000)
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: RunUntil never decreases the clock and fires every event at or
// before the deadline, in timestamp order.
func TestRunUntilProperty(t *testing.T) {
	f := func(delays []uint16, deadline uint32) bool {
		e := NewEngine(1)
		var fireTimes []Time
		for _, d := range delays {
			e.Schedule(Time(d)*Millisecond, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		dl := Time(deadline) * Millisecond
		e.RunUntil(dl)
		if e.Now() < dl {
			return false
		}
		prev := Time(-1)
		for _, ft := range fireTimes {
			if ft > dl || ft < prev {
				return false
			}
			prev = ft
		}
		// All events at or before the deadline must have fired.
		want := 0
		for _, d := range delays {
			if Time(d)*Millisecond <= dl {
				want++
			}
		}
		return len(fireTimes) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingReportsLiveCount(t *testing.T) {
	e := NewEngine(1)
	evs := make([]Event, 10)
	for i := range evs {
		evs[i] = e.Schedule(Time(i+1)*Second, func() {})
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", e.Pending())
	}
	// Cancel a minority: lazy deletion keeps entries queued, but Pending
	// must report only live events.
	for i := 0; i < 4; i++ {
		evs[i].Cancel()
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending after 4 cancels = %d, want 6", e.Pending())
	}
	e.Drain(100)
	if e.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", e.Pending())
	}
	if e.Fired() != 6 {
		t.Fatalf("Fired = %d, want 6", e.Fired())
	}
}

func TestCompactOnDemand(t *testing.T) {
	e := NewEngine(1)
	evs := make([]Event, 8)
	for i := range evs {
		evs[i] = e.Schedule(Time(i+1)*Second, func() {})
	}
	for i := 0; i < 3; i++ {
		evs[i].Cancel()
	}
	e.Compact()
	if len(e.heap) != 5 || e.stale != 0 {
		t.Fatalf("after Compact: %d entries, %d stale; want 5, 0", len(e.heap), e.stale)
	}
	// The surviving events still fire in order.
	var order []Time
	for e.Step() {
		order = append(order, e.Now())
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("events fired out of order after Compact: %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
}

func TestBulkReapOnMajorityCanceled(t *testing.T) {
	e := NewEngine(1)
	evs := make([]Event, 64)
	for i := range evs {
		evs[i] = e.Schedule(Time(i+1)*Millisecond, func() {})
	}
	// Cancel until canceled entries outnumber live ones: the queue must
	// compact itself rather than grow garbage.
	for i := 0; i < 40; i++ {
		evs[i].Cancel()
	}
	// The sweep fires as soon as stale entries hit a majority, so garbage
	// never exceeds half the queue and at least one compaction happened.
	if e.stale*2 > len(e.heap) {
		t.Fatalf("queue holds %d stale of %d entries; bulk reap did not keep up", e.stale, len(e.heap))
	}
	if len(e.heap) >= 64 {
		t.Fatalf("queue never compacted: %d entries", len(e.heap))
	}
	if e.Pending() != 24 {
		t.Fatalf("Pending = %d, want 24", e.Pending())
	}
	e.Drain(100)
	if e.Fired() != 24 {
		t.Fatalf("Fired = %d, want 24", e.Fired())
	}
}

func TestTickerStopDropsArmedEvent(t *testing.T) {
	e := NewEngine(1)
	tick := e.Every(Minute, func() {})
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 armed tick", e.Pending())
	}
	tick.Stop()
	if e.Pending() != 0 {
		t.Fatalf("Pending after Stop = %d, want 0: the armed event must drop immediately", e.Pending())
	}
	e.RunUntil(10 * Minute)
	if e.Fired() != 0 {
		t.Fatal("stopped ticker still fired")
	}
}

func TestStaleHandleIsInert(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	ev := e.Schedule(Second, func() { fired++ })
	if ev.At() != Second {
		t.Fatalf("At = %v, want 1s", ev.At())
	}
	e.Drain(10)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	// The slot is recycled for a new event; the old handle must not be able
	// to cancel or observe it.
	ev2 := e.Schedule(Second, func() { fired++ })
	ev.Cancel()
	if ev.Canceled() {
		t.Fatal("stale handle reports Canceled")
	}
	e.Drain(10)
	if fired != 2 {
		t.Fatalf("stale Cancel killed the recycled event: fired = %d, want 2", fired)
	}
	_ = ev2
}

func TestCancelIsIdempotentAndPostFireSafe(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(Second, func() {})
	ev.Cancel()
	ev.Cancel() // double cancel: no double-free of the arena slot
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	// The freed slot is reused exactly once.
	a := e.Schedule(Second, func() {})
	b := e.Schedule(2*Second, func() {})
	e.Drain(10)
	if e.Fired() != 2 {
		t.Fatalf("Fired = %d, want 2", e.Fired())
	}
	a.Cancel() // post-fire cancel: no-op
	b.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after post-fire cancels", e.Pending())
	}
}

func TestZeroEventHandle(t *testing.T) {
	var ev Event
	ev.Cancel() // must not panic
	if ev.Canceled() || ev.At() != 0 {
		t.Fatal("zero handle should report nothing")
	}
}

// TestHeavyChurnDeterminism exercises the pooled arena under schedule/cancel
// churn: two identical runs must fire identical event sequences even while
// slots are recycled and the queue compacts.
func TestHeavyChurnDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(3)
		rng := e.RNG("churn")
		var fired []Time
		var pendingEvs []Event
		var tickFn func()
		n := 0
		tickFn = func() {
			n++
			if n > 400 {
				return
			}
			// Schedule a few, cancel a random subset of earlier ones.
			for i := 0; i < 4; i++ {
				d := Time(rng.Intn(1000)+1) * Millisecond
				ev := e.Schedule(d, func() { fired = append(fired, e.Now()) })
				pendingEvs = append(pendingEvs, ev)
			}
			for len(pendingEvs) > 8 {
				idx := rng.Intn(len(pendingEvs))
				pendingEvs[idx].Cancel()
				pendingEvs = append(pendingEvs[:idx], pendingEvs[idx+1:]...)
			}
			e.Schedule(Time(rng.Intn(50)+1)*Millisecond, tickFn)
		}
		e.Schedule(0, tickFn)
		e.Drain(1 << 20)
		return fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs fired %d vs %d events", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// countHandler is a Handler that counts firings and records the fire time.
type countHandler struct {
	eng *Engine
	n   int
	at  []Time
}

func (h *countHandler) OnEvent() {
	h.n++
	h.at = append(h.at, h.eng.Now())
}

// TestScheduleHandlerFiresLikeSchedule checks the handler path interleaves
// with closure events in exactly (time, seq) order and supports Cancel.
func TestScheduleHandlerFiresLikeSchedule(t *testing.T) {
	e := NewEngine(1)
	h := &countHandler{eng: e}
	var order []string
	e.Schedule(2*Millisecond, func() { order = append(order, "fn@2") })
	e.ScheduleHandler(Millisecond, h)
	e.ScheduleHandler(2*Millisecond, h) // same time as fn@2, scheduled later
	ev := e.ScheduleHandler(3*Millisecond, h)
	ev.Cancel()
	e.Drain(100)
	if h.n != 2 {
		t.Fatalf("handler fired %d times, want 2 (one canceled)", h.n)
	}
	if h.at[0] != Millisecond || h.at[1] != 2*Millisecond {
		t.Fatalf("handler fire times = %v", h.at)
	}
	if len(order) != 1 || order[0] != "fn@2" {
		t.Fatalf("closure event did not fire: %v", order)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}

// TestScheduleHandlerZeroAlloc pins the headline property of the handler
// path: scheduling and firing a pointer-backed handler allocates nothing once
// the arena is warm. This is the invariant that keeps batched arrivals and
// pooled step frames allocation-free per event.
func TestScheduleHandlerZeroAlloc(t *testing.T) {
	e := NewEngine(1)
	h := &countHandler{eng: e}
	// Warm the arena, heap storage and the handler's at slice.
	for i := 0; i < 256; i++ {
		e.ScheduleHandler(Time(i+1), h)
	}
	e.Drain(1 << 20)
	h.at = h.at[:0]
	allocs := testing.AllocsPerRun(1000, func() {
		e.ScheduleHandler(Millisecond, h)
		e.Step()
		h.at = h.at[:0]
	})
	if allocs != 0 {
		t.Fatalf("ScheduleHandler round trip allocates %.1f/op, want 0", allocs)
	}
}
