package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEngineSchedule measures the schedule→fire round trip of the event
// core with a warm arena: each iteration schedules one event and steps it.
// The pooled arena and typed 4-ary heap make this zero-allocation in steady
// state (the pre-rewrite container/heap design paid one boxed *Event
// allocation per At).
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	// Warm the arena and heap storage.
	for i := 0; i < 1024; i++ {
		e.Schedule(Time(i), fn)
	}
	e.Drain(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Millisecond, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleDepth measures scheduling against a standing queue
// of the given depth, the regime grid runs spend most of their time in.
func BenchmarkEngineScheduleDepth(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			e := NewEngine(1)
			fn := func() {}
			for i := 0; i < depth; i++ {
				e.Schedule(Hour+Time(i), fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Schedule(Millisecond, fn)
				e.Step()
			}
		})
	}
}

// benchHandler is a Handler with a visible side effect, for the
// closure-free scheduling benchmarks.
type benchHandler struct{ n int }

func (h *benchHandler) OnEvent() { h.n++ }

// BenchmarkEngineScheduleHandler measures the closure-free schedule→fire
// round trip: the handler interface is stored directly in the event arena, so
// the path is 0 allocs/op without the caller having to hoist a closure.
func BenchmarkEngineScheduleHandler(b *testing.B) {
	e := NewEngine(1)
	h := &benchHandler{}
	for i := 0; i < 1024; i++ {
		e.ScheduleHandler(Time(i), h)
	}
	e.Drain(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScheduleHandler(Millisecond, h)
		e.Step()
	}
}

// BenchmarkEngineCancel measures the schedule→cancel churn path (timeouts
// beaten by responses, PS replanning): O(1) lazy deletion plus amortized
// bulk reaping.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(Second, fn)
		ev.Cancel()
	}
}
