package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG derives an independent, named random stream from the engine seed.
// Components (each service, each load generator, ...) take their own stream
// so that adding instrumentation or reordering unrelated code does not
// perturb the random sequence another component observes.
func (e *Engine) RNG(name string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
}
