package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"ursa/internal/sim"
)

// Span export writes finished traces as OTLP-style JSON spans, one object
// per line (JSONL), so real trace tooling — or a jq one-liner — can inspect
// simulated incidents. Each trace emits a root span carrying the job-level
// fields followed by one child span per service visit; IDs are hex strings
// in OTLP's 16-byte trace / 8-byte span convention and nanosecond
// timestamps are decimal strings, matching the OTLP/JSON encoding. The
// mapping is lossless: DecodeSpans reconstructs the original Trace values.

// SpanRecord is one exported span line.
type SpanRecord struct {
	TraceID           string       `json:"traceId"`
	SpanID            string       `json:"spanId"`
	ParentSpanID      string       `json:"parentSpanId,omitempty"`
	Name              string       `json:"name"`
	StartTimeUnixNano string       `json:"startTimeUnixNano"`
	EndTimeUnixNano   string       `json:"endTimeUnixNano"`
	Attributes        []Attribute  `json:"attributes,omitempty"`
	Status            StatusRecord `json:"status"`
}

// Attribute is an OTLP-style key/value pair.
type Attribute struct {
	Key   string         `json:"key"`
	Value AttributeValue `json:"value"`
}

// AttributeValue holds exactly one of the OTLP scalar variants.
type AttributeValue struct {
	StringValue *string `json:"stringValue,omitempty"`
	IntValue    *string `json:"intValue,omitempty"` // int64 as decimal string, per OTLP/JSON
	BoolValue   *bool   `json:"boolValue,omitempty"`
}

// StatusRecord mirrors OTLP span status: code 1 = OK, 2 = ERROR.
type StatusRecord struct {
	Code int `json:"code,omitempty"`
}

const (
	statusOK    = 1
	statusError = 2

	attrJobID          = "ursa.job_id"
	attrClass          = "ursa.class"
	attrStartedNano    = "ursa.started_unix_nano"
	attrDownstreamWait = "ursa.downstream_wait_ns"
)

func stringAttr(key, v string) Attribute {
	return Attribute{Key: key, Value: AttributeValue{StringValue: &v}}
}

func intAttr(key string, v int64) Attribute {
	s := strconv.FormatInt(v, 10)
	return Attribute{Key: key, Value: AttributeValue{IntValue: &s}}
}

func (a Attribute) intValue() (int64, bool) {
	if a.Value.IntValue == nil {
		return 0, false
	}
	v, err := strconv.ParseInt(*a.Value.IntValue, 10, 64)
	return v, err == nil
}

// traceIDFor renders the 16-byte trace ID for a job.
func traceIDFor(jobID uint64) string { return fmt.Sprintf("%032x", jobID) }

// spanIDFor renders the 8-byte span ID: the root span is seq 0, service
// spans follow in recorded order.
func spanIDFor(jobID uint64, seq int) string {
	return fmt.Sprintf("%016x", jobID<<16|uint64(seq+1)&0xffff)
}

// ExportSpans renders a finished trace as its span records: root first,
// then one per service visit in recorded order.
func ExportSpans(t *Trace) []SpanRecord {
	root := SpanRecord{
		TraceID:           traceIDFor(t.JobID),
		SpanID:            spanIDFor(t.JobID, -1),
		Name:              t.Class,
		StartTimeUnixNano: strconv.FormatInt(int64(t.Start), 10),
		EndTimeUnixNano:   strconv.FormatInt(int64(t.End), 10),
		Attributes:        []Attribute{intAttr(attrJobID, int64(t.JobID))},
		Status:            StatusRecord{Code: statusOK},
	}
	if !t.Complete {
		root.Status.Code = statusError
	}
	out := make([]SpanRecord, 0, 1+len(t.Spans))
	out = append(out, root)
	for i, s := range t.Spans {
		rec := SpanRecord{
			TraceID:           root.TraceID,
			SpanID:            spanIDFor(t.JobID, i),
			ParentSpanID:      root.SpanID,
			Name:              s.Service,
			StartTimeUnixNano: strconv.FormatInt(int64(s.Enqueued), 10),
			EndTimeUnixNano:   strconv.FormatInt(int64(s.Finished), 10),
			Attributes: []Attribute{
				stringAttr(attrClass, s.Class),
				intAttr(attrStartedNano, int64(s.Started)),
				intAttr(attrDownstreamWait, int64(s.DownstreamWait)),
			},
			Status: StatusRecord{Code: statusOK},
		}
		if s.Abandoned {
			rec.Status.Code = statusError
		}
		out = append(out, rec)
	}
	return out
}

// SpanWriter streams span records to an io.Writer as JSONL. Writes are
// buffered; the caller must Flush (or Close) when done. The first write
// error sticks and suppresses further output.
type SpanWriter struct {
	bw  *bufio.Writer
	err error
}

// NewSpanWriter wraps w for JSONL span output.
func NewSpanWriter(w io.Writer) *SpanWriter {
	return &SpanWriter{bw: bufio.NewWriter(w)}
}

// ExportTrace writes every span of a finished trace, one JSON object per
// line. Safe to install directly as Tracer.Exporter via a closure.
func (sw *SpanWriter) ExportTrace(t *Trace) {
	if sw.err != nil {
		return
	}
	for _, rec := range ExportSpans(t) {
		line, err := json.Marshal(rec)
		if err == nil {
			_, err = sw.bw.Write(append(line, '\n'))
		}
		if err != nil {
			sw.err = err
			return
		}
	}
}

// Flush drains the buffer and reports the first error seen.
func (sw *SpanWriter) Flush() error {
	if sw.err != nil {
		return sw.err
	}
	sw.err = sw.bw.Flush()
	return sw.err
}

// ReadSpans parses a JSONL span stream (as produced by SpanWriter) back
// into records, tolerating blank lines.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("trace: bad span line %q: %w", sc.Text(), err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// DecodeSpans reconstructs traces from exported span records, inverting
// ExportSpans exactly: root spans define the trace, child spans restore
// service visits in span-ID order. Traces are returned in ascending job-ID
// order.
func DecodeSpans(recs []SpanRecord) ([]*Trace, error) {
	byTrace := map[string]*Trace{}
	spans := map[string][]SpanRecord{}
	for _, rec := range recs {
		if rec.ParentSpanID != "" {
			spans[rec.TraceID] = append(spans[rec.TraceID], rec)
			continue
		}
		start, err1 := strconv.ParseInt(rec.StartTimeUnixNano, 10, 64)
		end, err2 := strconv.ParseInt(rec.EndTimeUnixNano, 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("trace: bad root timestamps in %s", rec.TraceID)
		}
		t := &Trace{
			Class:    rec.Name,
			Start:    sim.Time(start),
			End:      sim.Time(end),
			Complete: rec.Status.Code != statusError,
		}
		for _, a := range rec.Attributes {
			if a.Key == attrJobID {
				if v, ok := a.intValue(); ok {
					t.JobID = uint64(v)
				}
			}
		}
		byTrace[rec.TraceID] = t
	}
	out := make([]*Trace, 0, len(byTrace))
	for id, t := range byTrace {
		childs := spans[id]
		sort.Slice(childs, func(i, j int) bool { return childs[i].SpanID < childs[j].SpanID })
		for _, rec := range childs {
			enq, err1 := strconv.ParseInt(rec.StartTimeUnixNano, 10, 64)
			fin, err2 := strconv.ParseInt(rec.EndTimeUnixNano, 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("trace: bad span timestamps in %s", id)
			}
			s := Span{
				Service:   rec.Name,
				Enqueued:  sim.Time(enq),
				Finished:  sim.Time(fin),
				Abandoned: rec.Status.Code == statusError,
			}
			for _, a := range rec.Attributes {
				switch a.Key {
				case attrClass:
					if a.Value.StringValue != nil {
						s.Class = *a.Value.StringValue
					}
				case attrStartedNano:
					if v, ok := a.intValue(); ok {
						s.Started = sim.Time(v)
					}
				case attrDownstreamWait:
					if v, ok := a.intValue(); ok {
						s.DownstreamWait = sim.Time(v)
					}
				}
			}
			t.Spans = append(t.Spans, s)
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out, nil
}
