package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"ursa/internal/sim"
)

// buildTraces finishes n traces through a tracer, alternating complete and
// failed, with an abandoned span on the failures — the shapes a faults run
// produces.
func buildTraces(n int) *Tracer {
	tr := NewTracer(1, 0)
	for i := 0; i < n; i++ {
		id := tr.StartJob("get", sim.Time(i)*sim.Millisecond)
		s := span("front", sim.Time(i)*sim.Millisecond, sim.Time(i)*sim.Millisecond+sim.Microsecond,
			sim.Time(i+5)*sim.Millisecond, 2*sim.Millisecond)
		tr.AddSpan(id, s)
		tr.AddSpan(id, span("backend", sim.Time(i)*sim.Millisecond, sim.Time(i)*sim.Millisecond,
			sim.Time(i+3)*sim.Millisecond, 0))
		if i%2 == 1 {
			ab := span("backend", sim.Time(i)*sim.Millisecond, sim.Time(i)*sim.Millisecond,
				sim.Time(i+9)*sim.Millisecond, 0)
			ab.Abandoned = true
			tr.AddSpan(id, ab)
			tr.FailJob(id, sim.Time(i+9)*sim.Millisecond)
		} else {
			tr.EndJob(id, sim.Time(i+5)*sim.Millisecond)
		}
	}
	return tr
}

// TestSpanExportRoundTrip: JSONL out, JSONL in, traces equal — including
// incomplete traces and abandoned spans.
func TestSpanExportRoundTrip(t *testing.T) {
	tr := buildTraces(6)
	var buf bytes.Buffer
	sw := NewSpanWriter(&buf)
	for _, trc := range tr.Traces() {
		sw.ExportTrace(trc)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every line is standalone JSON with OTLP-style fields.
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if want := 6 + 6*2 + 3; len(lines) != want { // roots + 2 spans each + 3 abandoned
		t.Fatalf("lines = %d, want %d", len(lines), want)
	}
	for _, l := range lines {
		if !strings.Contains(l, `"traceId"`) || !strings.Contains(l, `"startTimeUnixNano"`) {
			t.Fatalf("line missing OTLP fields: %s", l)
		}
	}
	recs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpans(recs)
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Traces()
	if len(back) != len(orig) {
		t.Fatalf("decoded %d traces, want %d", len(back), len(orig))
	}
	for i := range orig {
		if !reflect.DeepEqual(*orig[i], *back[i]) {
			t.Fatalf("trace %d did not round-trip:\norig %+v\nback %+v", i, orig[i], back[i])
		}
	}
	// The failed traces must round-trip their incompleteness and abandonment.
	if back[1].Complete {
		t.Fatal("failed trace decoded as complete")
	}
	if !back[1].Spans[2].Abandoned {
		t.Fatal("abandoned span lost its flag")
	}
}

// TestExporterStreamsPastCap: the exporter sees every finished trace even
// when Cap retains almost none of them.
func TestExporterStreamsPastCap(t *testing.T) {
	tr := NewTracer(1, 2)
	exported := 0
	tr.Exporter = func(*Trace) { exported++ }
	for i := 0; i < 50; i++ {
		id := tr.StartJob("c", sim.Time(i))
		tr.EndJob(id, sim.Time(i)+sim.Second)
	}
	if exported != 50 {
		t.Fatalf("exporter saw %d traces, want 50", exported)
	}
	if len(tr.Traces()) != 2 {
		t.Fatalf("retained = %d, want 2", len(tr.Traces()))
	}
}

// TestTracerCapRingOrder: heavy churn through a capped tracer keeps
// Traces() oldest-first with the right contents (the ring must not scramble
// order across compactions).
func TestTracerCapRingOrder(t *testing.T) {
	tr := NewTracer(1, 7)
	for i := 0; i < 1000; i++ {
		id := tr.StartJob("c", sim.Time(i))
		tr.EndJob(id, sim.Time(i)+sim.Second)
	}
	got := tr.Traces()
	if len(got) != 7 {
		t.Fatalf("retained = %d, want 7", len(got))
	}
	for i, trc := range got {
		if trc.Start != sim.Time(993+i) {
			t.Fatalf("slot %d start = %v, want %v", i, trc.Start, 993+i)
		}
	}
}

// TestFlushOpenClosesInFlight: jobs still open when the run ends surface as
// incomplete traces, deterministically ordered, and reach the exporter.
func TestFlushOpenClosesInFlight(t *testing.T) {
	tr := NewTracer(1, 0)
	var exported []*Trace
	tr.Exporter = func(t *Trace) { exported = append(exported, t) }
	a := tr.StartJob("c", 0)
	b := tr.StartJob("c", sim.Second)
	tr.AddSpan(b, span("svc", sim.Second, sim.Second, 0, 0)) // still running: no finish
	tr.EndJob(a, 2*sim.Second)
	tr.FlushOpen(5 * sim.Second)

	got := tr.Traces()
	if len(got) != 2 || len(exported) != 2 {
		t.Fatalf("traces = %d exported = %d, want 2/2", len(got), len(exported))
	}
	fl := got[1]
	if fl.Complete || fl.End != 5*sim.Second || fl.JobID != b {
		t.Fatalf("flushed trace = %+v", fl)
	}
	tr.FlushOpen(6 * sim.Second) // idempotent on an empty open set
	if len(tr.Traces()) != 2 {
		t.Fatal("second FlushOpen changed state")
	}
}
