package trace

import (
	"strings"
	"testing"

	"ursa/internal/sim"
)

func span(svc string, enq, start, fin, wait sim.Time) Span {
	return Span{Service: svc, Class: "c", Enqueued: enq, Started: start, Finished: fin, DownstreamWait: wait}
}

func TestSpanMetrics(t *testing.T) {
	s := span("a", 0, 2*sim.Millisecond, 10*sim.Millisecond, 3*sim.Millisecond)
	if s.QueueWait() != 2*sim.Millisecond {
		t.Fatalf("QueueWait = %v", s.QueueWait())
	}
	if s.ResponseTime() != 7*sim.Millisecond {
		t.Fatalf("ResponseTime = %v", s.ResponseTime())
	}
	if s.OwnTime() != 5*sim.Millisecond {
		t.Fatalf("OwnTime = %v", s.OwnTime())
	}
}

func TestSpanClampsNegative(t *testing.T) {
	s := span("a", 0, 0, 2*sim.Millisecond, 5*sim.Millisecond)
	if s.ResponseTime() != 0 || s.OwnTime() != 0 {
		t.Fatal("negative times should clamp to 0")
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(3, 0)
	sampled := 0
	for i := 0; i < 9; i++ {
		if id := tr.StartJob("c", 0); id != 0 {
			sampled++
			tr.EndJob(id, sim.Second)
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9, want 3", sampled)
	}
	if len(tr.Traces()) != 3 {
		t.Fatalf("completed traces = %d", len(tr.Traces()))
	}
}

func TestTracerCapEvictsOldest(t *testing.T) {
	tr := NewTracer(1, 2)
	for i := 0; i < 5; i++ {
		id := tr.StartJob("c", sim.Time(i))
		tr.EndJob(id, sim.Time(i)+sim.Second)
	}
	got := tr.Traces()
	if len(got) != 2 {
		t.Fatalf("retained = %d", len(got))
	}
	if got[0].Start != 3 || got[1].Start != 4 {
		t.Fatalf("wrong traces retained: %v %v", got[0].Start, got[1].Start)
	}
}

func TestCriticalService(t *testing.T) {
	tr := NewTracer(1, 0)
	id := tr.StartJob("c", 0)
	tr.AddSpan(id, span("fast", 0, 0, 2*sim.Millisecond, 0))
	tr.AddSpan(id, span("slow", 0, 0, 50*sim.Millisecond, 0))
	tr.AddSpan(id, span("slow", 0, 0, 30*sim.Millisecond, 0)) // cumulative 80ms
	tr.EndJob(id, 100*sim.Millisecond)
	trc := tr.Traces()[0]
	svc, total := trc.CriticalService()
	if svc != "slow" || total != 80*sim.Millisecond {
		t.Fatalf("critical = %s/%v", svc, total)
	}
	if trc.Latency() != 100*sim.Millisecond {
		t.Fatalf("latency = %v", trc.Latency())
	}
	if !strings.Contains(trc.String(), "slow/c") {
		t.Fatal("String missing span line")
	}
}

func TestSlowestAndBreakdown(t *testing.T) {
	tr := NewTracer(1, 0)
	for i, lat := range []sim.Time{10 * sim.Millisecond, 90 * sim.Millisecond, 40 * sim.Millisecond} {
		id := tr.StartJob("c", 0)
		tr.AddSpan(id, span("svc", 0, 0, lat, 0))
		tr.EndJob(id, lat)
		_ = i
	}
	slow := tr.SlowestTrace("c")
	if slow == nil || slow.Latency() != 90*sim.Millisecond {
		t.Fatalf("slowest = %v", slow)
	}
	bd := tr.CriticalBreakdown("c")
	if bd["svc"] != 140*sim.Millisecond {
		t.Fatalf("breakdown = %v", bd)
	}
	if tr.SlowestTrace("absent") != nil {
		t.Fatal("absent class should return nil")
	}
	if len(tr.TracesFor("c")) != 3 {
		t.Fatal("TracesFor wrong")
	}
}

func TestUnsampledOpsAreNoops(t *testing.T) {
	tr := NewTracer(2, 0)
	tr.AddSpan(0, span("a", 0, 0, sim.Second, 0))
	tr.EndJob(0, sim.Second)
	if len(tr.Traces()) != 0 {
		t.Fatal("noop ops created traces")
	}
}

func TestFailJobMarksTraceIncomplete(t *testing.T) {
	tr := NewTracer(1, 0)
	id := tr.StartJob("c", 0)
	tr.AddSpan(id, span("a", 0, 0, 10*sim.Millisecond, 0))
	tr.FailJob(id, 10*sim.Millisecond)
	got := tr.Traces()
	if len(got) != 1 {
		t.Fatalf("traces = %d, want 1", len(got))
	}
	if got[0].Complete {
		t.Fatal("failed trace marked complete")
	}
	if got[0].End != 10*sim.Millisecond {
		t.Fatalf("end = %v", got[0].End)
	}
	if tr.FailJob(999, 0); len(tr.Traces()) != 1 {
		t.Fatal("failing an unknown job created a trace")
	}
}

func TestCriticalPathSkipsAbandonedSpans(t *testing.T) {
	tr := NewTracer(1, 0)
	id := tr.StartJob("c", 0)
	// An abandoned retry attempt with a huge S0−R0 must not dominate.
	ab := span("a", 0, 0, 100*sim.Millisecond, 0)
	ab.Abandoned = true
	tr.AddSpan(id, ab)
	tr.AddSpan(id, span("b", 0, 0, 30*sim.Millisecond, 0))
	tr.AddSpan(id, span("a", 0, 0, 20*sim.Millisecond, 0))
	tr.EndJob(id, 100*sim.Millisecond)

	svc, tot := tr.Traces()[0].CriticalService()
	if svc != "b" || tot != 30*sim.Millisecond {
		t.Fatalf("critical = %s/%v, want b/30ms (abandoned span excluded)", svc, tot)
	}
	bd := tr.CriticalBreakdown("c")
	if bd["a"] != 20*sim.Millisecond || bd["b"] != 30*sim.Millisecond {
		t.Fatalf("breakdown = %v", bd)
	}
}
