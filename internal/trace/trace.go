// Package trace implements request-level distributed tracing for the
// simulated cluster — the per-request view of the paper's tracing framework
// (§V.1). A Tracer samples jobs and records one span per service visit:
// queueing, execution, and downstream-wait segments, which is the data the
// §III study's per-tier response time (S0−R0) is derived from. Traces also
// power critical-path analysis: which service contributed the most latency
// to a slow request.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"ursa/internal/sim"
)

// Span is one service visit by one request.
type Span struct {
	Service string
	Class   string
	// Enqueued is when the request arrived at the service (R0).
	Enqueued sim.Time
	// Started is when a worker began the handler.
	Started sim.Time
	// Finished is when the handler completed (S0).
	Finished sim.Time
	// DownstreamWait is time blocked awaiting nested-RPC responses.
	DownstreamWait sim.Time
	// Abandoned marks a span whose caller gave up on it (RPC timeout) or
	// whose request terminally failed (crash, exhausted retries). Abandoned
	// spans carry no meaningful S0−R0 and are excluded from critical-path
	// accounting.
	Abandoned bool
}

// QueueWait is the time spent waiting for a worker.
func (s Span) QueueWait() sim.Time { return s.Started - s.Enqueued }

// ResponseTime is S0−R0 minus downstream wait — the §III per-tier metric.
func (s Span) ResponseTime() sim.Time {
	rt := s.Finished - s.Enqueued - s.DownstreamWait
	if rt < 0 {
		rt = 0
	}
	return rt
}

// OwnTime is handler execution time excluding queueing and downstream wait.
func (s Span) OwnTime() sim.Time {
	ot := s.Finished - s.Started - s.DownstreamWait
	if ot < 0 {
		ot = 0
	}
	return ot
}

// Trace is the set of spans of one job.
type Trace struct {
	JobID    uint64
	Class    string
	Start    sim.Time
	End      sim.Time
	Spans    []Span
	Complete bool
}

// Latency is the end-to-end job latency.
func (t *Trace) Latency() sim.Time { return t.End - t.Start }

// CriticalService reports the service whose cumulative response time is the
// largest share of the trace — the first place to look when a request is
// slow.
func (t *Trace) CriticalService() (string, sim.Time) {
	byService := map[string]sim.Time{}
	for _, s := range t.Spans {
		if s.Abandoned {
			continue
		}
		byService[s.Service] += s.ResponseTime()
	}
	bestSvc, bestT := "", sim.Time(-1)
	names := make([]string, 0, len(byService))
	for n := range byService {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic tie-break
	for _, n := range names {
		if byService[n] > bestT {
			bestSvc, bestT = n, byService[n]
		}
	}
	return bestSvc, bestT
}

// String renders the trace as an indented timeline.
func (t *Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace job=%d class=%s latency=%v spans=%d\n", t.JobID, t.Class, t.Latency(), len(t.Spans))
	for _, s := range t.Spans {
		fmt.Fprintf(&b, "  %-20s queue=%-10v own=%-10v dswait=%-10v\n",
			s.Service+"/"+s.Class, s.QueueWait(), s.OwnTime(), s.DownstreamWait)
	}
	return b.String()
}

// Tracer collects traces for a sampled fraction of jobs.
type Tracer struct {
	// SampleEvery keeps one of every N jobs (1 = all).
	SampleEvery int
	// Cap bounds retained traces (oldest evicted); 0 = unlimited.
	Cap int
	// Exporter, when set, receives every trace the moment it finishes
	// (complete or failed), before retention applies — so spans stream out
	// even on runs whose Cap evicts them from memory moments later.
	Exporter func(*Trace)

	nextID  uint64
	counter int
	open    map[uint64]*Trace
	// Retained traces live in done[head:]; eviction advances head and the
	// slice compacts only when more than half is dead, so a full ring costs
	// amortized O(1) per finished job instead of an O(Cap) realloc.
	done []*Trace
	head int
}

// NewTracer builds a tracer sampling one of every n jobs, retaining at most
// cap completed traces.
func NewTracer(n, cap int) *Tracer {
	if n < 1 {
		n = 1
	}
	return &Tracer{SampleEvery: n, Cap: cap, open: map[uint64]*Trace{}}
}

// StartJob possibly begins a trace for a new job; 0 means "not sampled".
func (tr *Tracer) StartJob(class string, now sim.Time) uint64 {
	tr.counter++
	if tr.counter%tr.SampleEvery != 0 {
		return 0
	}
	tr.nextID++
	id := tr.nextID
	tr.open[id] = &Trace{JobID: id, Class: class, Start: now}
	return id
}

// AddSpan appends a span to an open trace.
func (tr *Tracer) AddSpan(id uint64, s Span) {
	if id == 0 {
		return
	}
	if t, ok := tr.open[id]; ok {
		t.Spans = append(t.Spans, s)
	}
}

// EndJob completes a trace.
func (tr *Tracer) EndJob(id uint64, now sim.Time) { tr.finishJob(id, now, true) }

// FailJob closes the trace of a terminally failed job. The trace is retained
// for analysis but marked incomplete — some spans never happened, others are
// abandoned attempts.
func (tr *Tracer) FailJob(id uint64, now sim.Time) { tr.finishJob(id, now, false) }

func (tr *Tracer) finishJob(id uint64, now sim.Time, complete bool) {
	if id == 0 {
		return
	}
	t, ok := tr.open[id]
	if !ok {
		return
	}
	delete(tr.open, id)
	t.End = now
	t.Complete = complete
	if tr.Exporter != nil {
		tr.Exporter(t)
	}
	tr.done = append(tr.done, t)
	if tr.Cap > 0 && len(tr.done)-tr.head > tr.Cap {
		tr.done[tr.head] = nil
		tr.head++
		if 2*tr.head >= len(tr.done) {
			n := copy(tr.done, tr.done[tr.head:])
			for i := n; i < len(tr.done); i++ {
				tr.done[i] = nil
			}
			tr.done = tr.done[:n]
			tr.head = 0
		}
	}
}

// FlushOpen force-closes every still-open trace as incomplete at time now
// (ascending job ID, so output is deterministic) — the end-of-run sweep
// that surfaces jobs still in flight or abandoned when the simulation
// stopped. The closed traces go through the usual finish path, so the
// Exporter sees them and retention applies.
func (tr *Tracer) FlushOpen(now sim.Time) {
	ids := make([]uint64, 0, len(tr.open))
	for id := range tr.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		tr.finishJob(id, now, false)
	}
}

// Traces returns completed traces (oldest first).
func (tr *Tracer) Traces() []*Trace { return tr.done[tr.head:] }

// TracesFor filters completed traces by class.
func (tr *Tracer) TracesFor(class string) []*Trace {
	var out []*Trace
	for _, t := range tr.Traces() {
		if t.Class == class {
			out = append(out, t)
		}
	}
	return out
}

// SlowestTrace returns the completed trace with the highest latency for a
// class (nil when none).
func (tr *Tracer) SlowestTrace(class string) *Trace {
	var best *Trace
	for _, t := range tr.Traces() {
		if t.Class != class {
			continue
		}
		if best == nil || t.Latency() > best.Latency() {
			best = t
		}
	}
	return best
}

// CriticalBreakdown aggregates, across a class's traces, each service's
// share of cumulative response time — a coarse critical-path profile.
func (tr *Tracer) CriticalBreakdown(class string) map[string]sim.Time {
	out := map[string]sim.Time{}
	for _, t := range tr.Traces() {
		if t.Class != class {
			continue
		}
		for _, s := range t.Spans {
			if s.Abandoned {
				continue
			}
			out[s.Service] += s.ResponseTime()
		}
	}
	return out
}
