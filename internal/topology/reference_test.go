package topology

import (
	"reflect"
	"testing"

	"ursa/internal/services"
	"ursa/internal/workload"
)

// This file pins the spec-compiled applications to the original hand-written
// Go constructors, kept here verbatim as the reference. Every experiment is
// a pure function of (AppSpec, Mix, RPS, seed), so DeepEqual here means
// every pre-refactor experiment output is reproduced byte-for-byte.

func refRPC(name string, cpus float64, replicas int, handlers map[string][]services.Step) services.ServiceSpec {
	return services.ServiceSpec{
		Name:            name,
		Threads:         4096,
		Daemons:         64,
		CPUs:            cpus,
		InitialReplicas: replicas,
		IngressCostMs:   0.2,
		IngressWindow:   32,
		Handlers:        handlers,
	}
}

func refWorker(name string, cpus float64, threads, replicas int, handlers map[string][]services.Step) services.ServiceSpec {
	return services.ServiceSpec{
		Name:            name,
		Threads:         threads,
		Daemons:         16,
		CPUs:            cpus,
		InitialReplicas: replicas,
		Handlers:        handlers,
	}
}

func refSocialNetwork() services.AppSpec {
	composeFlow := services.Seq(
		services.Compute{MeanMs: 4.0},
		services.Par{Branches: [][]services.Step{
			{services.Call{Service: "text-service", Mode: services.NestedRPC}},
			{services.Call{Service: "user-service", Mode: services.NestedRPC}},
			{services.Call{Service: "url-shorten", Mode: services.NestedRPC}},
		}},
		services.Call{Service: "post-storage", Mode: services.NestedRPC},
		services.Spawn{Service: "home-timeline", Class: UpdateTimeline},
		services.Spawn{Service: "sentiment-ml", Class: SentimentAnalysis},
	)
	return services.AppSpec{
		Name: "social-network",
		Services: []services.ServiceSpec{
			refRPC("frontend", 2, 2, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 1.5}, services.Call{Service: "compose-post", Mode: services.NestedRPC}),
				UploadComment: services.Seq(services.Compute{MeanMs: 1.5}, services.Call{Service: "compose-post", Mode: services.NestedRPC}),
				ReadTimeline:  services.Seq(services.Compute{MeanMs: 1.5}, services.Call{Service: "user-timeline", Mode: services.NestedRPC}),
				UploadImage:   services.Seq(services.Compute{MeanMs: 2.0}, services.Call{Service: "image-store", Mode: services.NestedRPC}),
				DownloadImage: services.Seq(services.Compute{MeanMs: 1.5}, services.Call{Service: "image-store", Mode: services.NestedRPC}),
			}),
			refRPC("compose-post", 2, 2, map[string][]services.Step{
				UploadPost:    composeFlow,
				UploadComment: composeFlow,
			}),
			refRPC("text-service", 2, 1, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 8.0}),
				UploadComment: services.Seq(services.Compute{MeanMs: 8.0}),
			}),
			refRPC("user-service", 1, 2, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 3.0}),
				UploadComment: services.Seq(services.Compute{MeanMs: 3.0}),
			}),
			refRPC("url-shorten", 1, 2, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 2.5}),
				UploadComment: services.Seq(services.Compute{MeanMs: 2.5}),
			}),
			refRPC("post-storage", 2, 2, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 6.0}),
				UploadComment: services.Seq(services.Compute{MeanMs: 6.0}),
				ReadTimeline:  services.Seq(services.Compute{MeanMs: 35.0, CV: 0.4}),
				ObjectDetect:  services.Seq(services.Compute{MeanMs: 6.0}),
			}),
			refRPC("user-timeline", 2, 2, map[string][]services.Step{
				ReadTimeline: services.Seq(
					services.Compute{MeanMs: 20.0, CV: 0.4},
					services.Call{Service: "post-storage", Mode: services.NestedRPC},
				),
			}),
			refRPC("social-graph", 1, 1, map[string][]services.Step{
				UpdateTimeline: services.Seq(services.Compute{MeanMs: 6.0}),
			}),
			refWorker("home-timeline", 4, 16, 4, map[string][]services.Step{
				UpdateTimeline: services.Seq(
					services.Compute{MeanMs: 15.0},
					services.Call{Service: "social-graph", Mode: services.NestedRPC},
					services.Compute{MeanMs: 60.0, CV: 0.6},
				),
			}),
			refRPC("image-store", 2, 2, map[string][]services.Step{
				UploadImage: services.Seq(
					services.Compute{MeanMs: 45.0, CV: 0.5},
					services.Spawn{Service: "object-detect-ml", Class: ObjectDetect},
				),
				DownloadImage: services.Seq(services.Compute{MeanMs: 12.0, CV: 0.5}),
				ObjectDetect:  services.Seq(services.Compute{MeanMs: 12.0, CV: 0.5}),
			}),
			refWorker("sentiment-ml", 4, 8, 6, map[string][]services.Step{
				SentimentAnalysis: services.Seq(services.Compute{MeanMs: 140, CV: 0.5}),
			}),
			refWorker("object-detect-ml", 4, 8, 5, map[string][]services.Step{
				ObjectDetect: services.Seq(
					services.Call{Service: "image-store", Mode: services.NestedRPC},
					services.Call{Service: "post-storage", Mode: services.NestedRPC},
					services.Compute{MeanMs: 2600, CV: 0.45},
				),
			}),
		},
		Classes: []services.ClassSpec{
			{Name: UploadPost, Entry: "frontend", SLAPercentile: 99, SLAMillis: 75},
			{Name: UploadComment, Entry: "frontend", SLAPercentile: 99, SLAMillis: 75},
			{Name: ReadTimeline, Entry: "frontend", SLAPercentile: 99, SLAMillis: 250},
			{Name: UpdateTimeline, Entry: "home-timeline", Derived: true, SLAPercentile: 99, SLAMillis: 500},
			{Name: UploadImage, Entry: "frontend", SLAPercentile: 99, SLAMillis: 200},
			{Name: DownloadImage, Entry: "frontend", SLAPercentile: 99, SLAMillis: 75},
			{Name: SentimentAnalysis, Entry: "sentiment-ml", Derived: true, SLAPercentile: 99, SLAMillis: 500},
			{Name: ObjectDetect, Entry: "object-detect-ml", Derived: true, SLAPercentile: 99, SLAMillis: 10000},
		},
	}
}

func refSocialNetworkMix() workload.Mix {
	return workload.Mix{
		UploadPost:    1,
		UploadComment: 75,
		DownloadImage: 15,
		ReadTimeline:  25,
		UploadImage:   4,
	}
}

func refVanillaSocialNetwork() services.AppSpec {
	app := refSocialNetwork()
	app.Name = "vanilla-social-network"
	var keptServices []services.ServiceSpec
	for _, s := range app.Services {
		switch s.Name {
		case "sentiment-ml", "object-detect-ml":
			continue
		}
		for class, steps := range s.Handlers {
			s.Handlers[class] = refStripSpawns(steps, map[string]bool{
				SentimentAnalysis: true, ObjectDetect: true,
			})
		}
		keptServices = append(keptServices, s)
	}
	app.Services = keptServices
	var keptClasses []services.ClassSpec
	for _, c := range app.Classes {
		if c.Name == SentimentAnalysis || c.Name == ObjectDetect {
			continue
		}
		keptClasses = append(keptClasses, c)
	}
	app.Classes = keptClasses
	return app
}

func refStripSpawns(steps []services.Step, drop map[string]bool) []services.Step {
	var out []services.Step
	for _, st := range steps {
		switch s := st.(type) {
		case services.Spawn:
			if drop[s.Class] {
				continue
			}
			out = append(out, s)
		case services.Par:
			branches := make([][]services.Step, len(s.Branches))
			for i, br := range s.Branches {
				branches[i] = refStripSpawns(br, drop)
			}
			out = append(out, services.Par{Branches: branches})
		default:
			out = append(out, st)
		}
	}
	return out
}

func refMediaService() services.AppSpec {
	return services.AppSpec{
		Name: "media-service",
		Services: []services.ServiceSpec{
			refRPC("media-frontend", 2, 2, map[string][]services.Step{
				UploadVideo:   services.Seq(services.Compute{MeanMs: 3.0}, services.Call{Service: "movie-id", Mode: services.NestedRPC}),
				DownloadVideo: services.Seq(services.Compute{MeanMs: 3.0}, services.Call{Service: "video-store", Mode: services.NestedRPC}),
				GetInfo:       services.Seq(services.Compute{MeanMs: 2.0}, services.Call{Service: "movie-info", Mode: services.NestedRPC}),
				RateVideo:     services.Seq(services.Compute{MeanMs: 2.0}, services.Call{Service: "rating", Mode: services.NestedRPC}),
			}),
			refRPC("movie-id", 1, 1, map[string][]services.Step{
				UploadVideo: services.Seq(
					services.Compute{MeanMs: 3.0},
					services.Call{Service: "video-store", Mode: services.NestedRPC},
					services.Spawn{Service: "transcoder", Class: TranscodeVideo},
					services.Spawn{Service: "thumbnailer", Class: GenerateThumbnail},
				),
			}),
			refRPC("video-store", 4, 3, map[string][]services.Step{
				UploadVideo:       services.Seq(services.Compute{MeanMs: 520, CV: 0.45}),
				DownloadVideo:     services.Seq(services.Compute{MeanMs: 380, CV: 0.45}),
				TranscodeVideo:    services.Seq(services.Compute{MeanMs: 150, CV: 0.5}),
				GenerateThumbnail: services.Seq(services.Compute{MeanMs: 100, CV: 0.5}),
			}),
			refRPC("movie-info", 2, 2, map[string][]services.Step{
				GetInfo: services.Seq(
					services.Compute{MeanMs: 25.0, CV: 0.4},
					services.Par{Branches: [][]services.Step{
						{services.Call{Service: "review-storage", Mode: services.NestedRPC}},
						{services.Call{Service: "rating", Mode: services.NestedRPC, Class: GetInfo}},
					}},
				),
				RateVideo: services.Seq(services.Compute{MeanMs: 40.0, CV: 0.4}),
			}),
			refRPC("review-storage", 2, 2, map[string][]services.Step{
				GetInfo: services.Seq(services.Compute{MeanMs: 32.0, CV: 0.4}),
			}),
			refRPC("rating", 2, 2, map[string][]services.Step{
				GetInfo:   services.Seq(services.Compute{MeanMs: 15.0, CV: 0.4}),
				RateVideo: services.Seq(services.Compute{MeanMs: 60.0, CV: 0.4}, services.Call{Service: "movie-info", Mode: services.NestedRPC}),
			}),
			refWorker("transcoder", 4, 8, 3, map[string][]services.Step{
				TranscodeVideo: services.Seq(
					services.Call{Service: "video-store", Mode: services.NestedRPC},
					services.Compute{MeanMs: 11000, CV: 0.5},
					services.Call{Service: "video-store", Mode: services.NestedRPC},
				),
			}),
			refWorker("thumbnailer", 2, 8, 2, map[string][]services.Step{
				GenerateThumbnail: services.Seq(
					services.Call{Service: "video-store", Mode: services.NestedRPC},
					services.Compute{MeanMs: 420, CV: 0.5},
				),
			}),
		},
		Classes: []services.ClassSpec{
			{Name: UploadVideo, Entry: "media-frontend", SLAPercentile: 99, SLAMillis: 2000},
			{Name: DownloadVideo, Entry: "media-frontend", SLAPercentile: 99, SLAMillis: 1500},
			{Name: GetInfo, Entry: "media-frontend", SLAPercentile: 99, SLAMillis: 250},
			{Name: RateVideo, Entry: "media-frontend", SLAPercentile: 99, SLAMillis: 400},
			{Name: TranscodeVideo, Entry: "transcoder", Derived: true, SLAPercentile: 99, SLAMillis: 40000},
			{Name: GenerateThumbnail, Entry: "thumbnailer", Derived: true, SLAPercentile: 99, SLAMillis: 2000},
		},
	}
}

func refMediaServiceMix() workload.Mix {
	return workload.Mix{
		UploadVideo:   1,
		GetInfo:       100,
		DownloadVideo: 25,
		RateVideo:     25,
	}
}

func refVideoPipeline() services.AppSpec {
	stageFlow := func(meanMs float64, cv float64, next string) map[string][]services.Step {
		build := func() []services.Step {
			steps := services.Seq(services.Compute{MeanMs: meanMs, CV: cv})
			if next != "" {
				steps = append(steps, services.Call{Service: next, Mode: services.MQ})
			}
			return steps
		}
		return map[string][]services.Step{
			HighPriority: build(),
			LowPriority:  build(),
		}
	}
	return services.AppSpec{
		Name: "video-pipeline",
		Services: []services.ServiceSpec{
			refWorker("metadata-extract", 2, 4, 2, stageFlow(300, 0.4, "snapshot")),
			refWorker("snapshot", 4, 8, 3, stageFlow(900, 0.4, "face-recognition")),
			refWorker("face-recognition", 4, 8, 5, stageFlow(1300, 0.45, "")),
		},
		Classes: []services.ClassSpec{
			{Name: HighPriority, Entry: "metadata-extract", Priority: 0, SLAPercentile: 99, SLAMillis: 20000},
			{Name: LowPriority, Entry: "metadata-extract", Priority: 1, SLAPercentile: 50, SLAMillis: 4000},
		},
	}
}

// TestSpecCompiledAppsMatchReference is the identity pin of the spec-driven
// refactor: the compiled spec files must reproduce the original constructors
// exactly, including handler step trees, so experiment outputs cannot move.
func TestSpecCompiledAppsMatchReference(t *testing.T) {
	cases := []struct {
		name string
		got  services.AppSpec
		want services.AppSpec
	}{
		{"social-network", SocialNetwork(), refSocialNetwork()},
		{"vanilla-social-network", VanillaSocialNetwork(), refVanillaSocialNetwork()},
		{"media-service", MediaService(), refMediaService()},
		{"video-pipeline", VideoPipeline(), refVideoPipeline()},
	}
	for _, c := range cases {
		if !reflect.DeepEqual(c.got, c.want) {
			t.Errorf("%s: compiled spec differs from reference constructor", c.name)
			diffAppSpecs(t, c.got, c.want)
		}
	}
}

func TestSpecCompiledMixesMatchReference(t *testing.T) {
	if got, want := SocialNetworkMix(), refSocialNetworkMix(); !reflect.DeepEqual(got, want) {
		t.Errorf("social-network mix: got %v want %v", got, want)
	}
	wantVanilla := refSocialNetworkMix()
	delete(wantVanilla, UploadImage)
	if got := VanillaSocialNetworkMix(); !reflect.DeepEqual(got, wantVanilla) {
		t.Errorf("vanilla mix: got %v want %v", got, wantVanilla)
	}
	if got, want := MediaServiceMix(), refMediaServiceMix(); !reflect.DeepEqual(got, want) {
		t.Errorf("media-service mix: got %v want %v", got, want)
	}
}

func TestAppsRatesMatchHarness(t *testing.T) {
	want := map[string]float64{
		"social-network":         100,
		"vanilla-social-network": 100,
		"media-service":          60,
		"video-pipeline":         4,
	}
	for _, a := range Apps() {
		if a.RPS != want[a.Name] {
			t.Errorf("%s: RPS %v, want %v", a.Name, a.RPS, want[a.Name])
		}
	}
}

// diffAppSpecs narrows a DeepEqual failure down to the first differing field
// so YAML mistakes are easy to locate.
func diffAppSpecs(t *testing.T, got, want services.AppSpec) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("  name: got %q want %q", got.Name, want.Name)
	}
	if len(got.Services) != len(want.Services) {
		t.Errorf("  services: got %d want %d", len(got.Services), len(want.Services))
		return
	}
	for i := range got.Services {
		g, w := got.Services[i], want.Services[i]
		if g.Name != w.Name {
			t.Errorf("  services[%d]: got %q want %q", i, g.Name, w.Name)
			continue
		}
		gh, wh := g.Handlers, w.Handlers
		g.Handlers, w.Handlers = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("  service %s settings: got %+v want %+v", g.Name, g, w)
		}
		for class := range wh {
			if !reflect.DeepEqual(gh[class], wh[class]) {
				t.Errorf("  service %s handler %s: got %#v want %#v", g.Name, class, gh[class], wh[class])
			}
		}
		for class := range gh {
			if _, ok := wh[class]; !ok {
				t.Errorf("  service %s: unexpected handler %s", g.Name, class)
			}
		}
	}
	if !reflect.DeepEqual(got.Classes, want.Classes) {
		t.Errorf("  classes: got %+v want %+v", got.Classes, want.Classes)
	}
}
