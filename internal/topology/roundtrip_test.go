package topology

import (
	"reflect"
	"testing"

	"ursa/internal/services"
	"ursa/internal/spec"
)

// TestDumpParseRoundTrip is the satellite property of the spec layer:
// parse(dump(app)) reproduces app exactly for every built-in application,
// including the derived vanilla variant and the §III chains — so
// `ursa-sim -dump-topology` output is always a faithful, editable starting
// point.
func TestDumpParseRoundTrip(t *testing.T) {
	for _, app := range Apps() {
		data, err := spec.Dump(app.Spec, app.Mix, app.RPS)
		if err != nil {
			t.Fatalf("%s: dump: %v", app.Name, err)
		}
		f, err := spec.Parse(app.Name+".yaml", data)
		if err != nil {
			t.Fatalf("%s: parse of dumped spec: %v\n%s", app.Name, err, data)
		}
		c, err := spec.Build(f)
		if err != nil {
			t.Fatalf("%s: build of dumped spec: %v", app.Name, err)
		}
		if !reflect.DeepEqual(c.Spec, app.Spec) {
			t.Errorf("%s: dump/parse round trip changed the app", app.Name)
			diffAppSpecs(t, c.Spec, app.Spec)
		}
		if !reflect.DeepEqual(c.Mix, app.Mix) {
			t.Errorf("%s: mix round trip: got %v want %v", app.Name, c.Mix, app.Mix)
		}
		if c.Rate != app.RPS {
			t.Errorf("%s: rate round trip: got %v want %v", app.Name, c.Rate, app.RPS)
		}
	}
	for _, mode := range []services.CallMode{services.NestedRPC, services.EventRPC, services.MQ} {
		chain := BackpressureChain(mode)
		data, err := spec.Dump(chain, nil, 0)
		if err != nil {
			t.Fatalf("chain %s: dump: %v", mode, err)
		}
		f, err := spec.Parse("chain.yaml", data)
		if err != nil {
			t.Fatalf("chain %s: parse: %v\n%s", mode, err, data)
		}
		c, err := spec.Build(f)
		if err != nil {
			t.Fatalf("chain %s: build: %v", mode, err)
		}
		if !reflect.DeepEqual(c.Spec, chain) {
			t.Errorf("chain %s: round trip changed the app", mode)
			diffAppSpecs(t, c.Spec, chain)
		}
	}
}

// TestCheckedInSpecsAreCanonical re-dumps each checked-in benchmark app and
// re-parses the result, guarding the dumper against drift from the schema
// the files actually use.
func TestCheckedInSpecsAreCanonical(t *testing.T) {
	for _, name := range []string{"social-network", "media-service", "video-pipeline"} {
		app, ok := AppByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if _, err := spec.Canonical(app.Spec, app.Mix, app.RPS); err != nil {
			t.Errorf("%s: not canonicalizable: %v", name, err)
		}
	}
}
