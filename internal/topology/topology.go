// Package topology exposes the benchmark applications of §VI — the
// re-implemented DeathStarBench social network and media service plus the
// video processing pipeline — along with the synthetic 5-tier chains used by
// the §III backpressure study.
//
// The benchmark apps are defined as declarative spec documents under
// examples/specs/ (embedded at build time) and compiled into simulator-native
// AppSpecs by internal/spec. The Go constructors here are thin loaders kept
// for API stability; reference_test.go pins the compiled output to the
// original hand-written constructors structure-for-structure, which keeps
// every experiment byte-identical across the data-driven refactor.
//
// Interactive functionality is wired with nested RPCs; deferred work
// (timeline fan-out, ML inference, transcoding, the whole video pipeline)
// goes through message queues, exactly as the paper prescribes. Per-class
// SLAs are the values of Tables II, III and IV.
package topology

import (
	"fmt"
	"sort"
	"sync"

	"ursa/examples/specs"
	"ursa/internal/services"
	"ursa/internal/spec"
	"ursa/internal/workload"
)

// Social-network request classes (Table II).
const (
	UploadPost        = "upload-post"
	UploadComment     = "upload-comment"
	ReadTimeline      = "read-timeline"
	UpdateTimeline    = "update-timeline"
	UploadImage       = "upload-image"
	DownloadImage     = "download-image"
	SentimentAnalysis = "sentiment-analysis"
	ObjectDetect      = "object-detect"
)

// Media-service request classes (Table III).
const (
	UploadVideo       = "upload-video"
	DownloadVideo     = "download-video"
	GetInfo           = "get-info"
	RateVideo         = "rate-video"
	TranscodeVideo    = "transcode-video"
	GenerateThumbnail = "generate-thumbnail"
)

// Video-pipeline request classes (Table IV).
const (
	HighPriority = "high-priority"
	LowPriority  = "low-priority"
)

// parsed caches the decoded (not compiled) spec files: parsing is pure, but
// compiled AppSpecs hold mutable handler maps that callers are free to edit
// (VanillaSocialNetwork does), so every constructor call compiles fresh.
var parsed sync.Map // filename -> *spec.File

func mustLoad(file string) *spec.File {
	if v, ok := parsed.Load(file); ok {
		return v.(*spec.File)
	}
	data, err := specs.FS.ReadFile(file)
	if err != nil {
		panic(fmt.Sprintf("topology: embedded spec %s missing: %v", file, err))
	}
	f, err := spec.Parse(file, data)
	if err != nil {
		panic(fmt.Sprintf("topology: %v", err))
	}
	actual, _ := parsed.LoadOrStore(file, f)
	return actual.(*spec.File)
}

func mustCompile(file string) spec.Compiled {
	c, err := spec.Build(mustLoad(file))
	if err != nil {
		panic(fmt.Sprintf("topology: %s: %v", file, err))
	}
	return c
}

// SocialNetwork builds the re-implemented social network (§VI): text posts
// and timelines via RPC, plus image upload, sentiment analysis and object
// detection connected via message queues.
func SocialNetwork() services.AppSpec {
	return mustCompile("social-network.yaml").Spec
}

// SocialNetworkMix is the exploration/deployment request mix of §VII-C:
// post : comment : download-image : read-timeline ≈ 1 : 75 : 15 : 25, plus
// a small stream of image uploads that feed the ML services.
func SocialNetworkMix() workload.Mix {
	return mustCompile("social-network.yaml").Mix
}

// VanillaSocialNetwork is the original-functionality benchmark used in
// §VII-E: the same application with the ML services disabled. It is derived
// from the social-network spec by a step-tree transform rather than a
// separate file — "the same app minus the ML spawns" stays true by
// construction.
func VanillaSocialNetwork() services.AppSpec {
	app := SocialNetwork()
	app.Name = "vanilla-social-network"
	var keptServices []services.ServiceSpec
	for _, s := range app.Services {
		switch s.Name {
		case "sentiment-ml", "object-detect-ml":
			continue
		}
		// Drop spawns that target the ML services.
		for class, steps := range s.Handlers {
			s.Handlers[class] = spec.DropSpawns(steps, map[string]bool{
				SentimentAnalysis: true, ObjectDetect: true,
			})
		}
		keptServices = append(keptServices, s)
	}
	app.Services = keptServices
	var keptClasses []services.ClassSpec
	for _, c := range app.Classes {
		if c.Name == SentimentAnalysis || c.Name == ObjectDetect {
			continue
		}
		keptClasses = append(keptClasses, c)
	}
	app.Classes = keptClasses
	return app
}

// VanillaSocialNetworkMix drops image uploads (they only feed the ML path).
func VanillaSocialNetworkMix() workload.Mix {
	m := SocialNetworkMix()
	delete(m, UploadImage)
	return m
}

// MediaService builds the re-implemented media service (§VI): reviews and
// ratings via RPC, plus real video upload/download with FFmpeg-style
// transcoding and thumbnailing behind message queues.
func MediaService() services.AppSpec {
	return mustCompile("media-service.yaml").Spec
}

// MediaServiceMix is the §VII-C mix: upload-video : get-info :
// download-video : rate-video ≈ 1 : 100 : 25 : 25.
func MediaServiceMix() workload.Mix {
	return mustCompile("media-service.yaml").Mix
}

// VideoPipeline builds the three-stage video processing pipeline (§VI):
// metadata extraction → snapshots → face recognition, connected by MQs.
// High-priority requests always run first when workers are available;
// low-priority requests run only when no high-priority request waits.
func VideoPipeline() services.AppSpec {
	return mustCompile("video-pipeline.yaml").Spec
}

// VideoPipelineMix returns a high:low priority mix, e.g. (25, 75).
func VideoPipelineMix(high, low float64) workload.Mix {
	return workload.Mix{HighPriority: high, LowPriority: low}
}

// BackpressureChain builds the §III study chain: five identical tiers
// connected by the given communication mode, with RPC ingress flow control.
// It stays a Go constructor: the mode parameter makes it a family of apps,
// not a fixed document.
func BackpressureChain(mode services.CallMode) services.AppSpec {
	spec := services.AppSpec{Name: "chain-" + mode.String()}
	for i := 1; i <= 5; i++ {
		steps := services.Seq(services.Compute{MeanMs: 5, CV: 0.3})
		if i < 5 {
			steps = append(steps, services.Call{Service: ChainTier(i + 1), Mode: mode})
		}
		spec.Services = append(spec.Services, services.ServiceSpec{
			Name: ChainTier(i), Threads: 4096, Daemons: 32, CPUs: 2, InitialReplicas: 1,
			IngressCostMs: 1, IngressWindow: 16,
			Handlers: map[string][]services.Step{"req": steps},
		})
	}
	spec.Classes = []services.ClassSpec{{Name: "req", Entry: ChainTier(1), SLAPercentile: 99, SLAMillis: 1000}}
	return spec
}

// ChainTier names the i-th tier of the backpressure chain (1-based; tier 1
// is client-facing).
func ChainTier(i int) string { return fmt.Sprintf("tier%d", i) }

// App is one benchmark application with its exploration-time request mix and
// nominal deployment rate (the spec file's workload section).
type App struct {
	Name string
	Spec services.AppSpec
	Mix  workload.Mix
	RPS  float64
}

// Apps returns every benchmark application sorted by name — the §VII-E
// evaluation grid. The deterministic order makes it safe to iterate in any
// code whose output order matters.
func Apps() []App {
	apps := []App{
		{"social-network", SocialNetwork(), SocialNetworkMix(), mustCompile("social-network.yaml").Rate},
		{"vanilla-social-network", VanillaSocialNetwork(), VanillaSocialNetworkMix(), mustCompile("social-network.yaml").Rate},
		{"media-service", MediaService(), MediaServiceMix(), mustCompile("media-service.yaml").Rate},
		{"video-pipeline", VideoPipeline(), VideoPipelineMix(50, 50), mustCompile("video-pipeline.yaml").Rate},
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
	return apps
}

// AppByName returns the named benchmark application, or false.
func AppByName(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
