// Package topology defines the benchmark applications of §VI — the
// re-implemented DeathStarBench social network and media service plus the
// video processing pipeline — as simulated service graphs, along with the
// synthetic 5-tier chains used by the §III backpressure study.
//
// Interactive functionality is wired with nested RPCs; deferred work
// (timeline fan-out, ML inference, transcoding, the whole video pipeline)
// goes through message queues, exactly as the paper prescribes. Per-class
// SLAs are the values of Tables II, III and IV.
package topology

import (
	"fmt"

	"ursa/internal/services"
	"ursa/internal/workload"
)

// rpc returns the common settings of an interactive (RPC-facing) service:
// effectively unbounded handler concurrency (gRPC-style goroutines) and an
// ingress stage whose flow-control window produces backpressure when the
// service is CPU-starved.
func rpc(name string, cpus float64, replicas int, handlers map[string][]services.Step) services.ServiceSpec {
	return services.ServiceSpec{
		Name:            name,
		Threads:         4096,
		Daemons:         64,
		CPUs:            cpus,
		InitialReplicas: replicas,
		IngressCostMs:   0.2,
		IngressWindow:   32,
		Handlers:        handlers,
	}
}

// worker returns the common settings of an MQ-consumer service: a bounded
// worker pool (messages wait in the queue, which is what gives priority
// scheduling meaning) and no RPC ingress.
func worker(name string, cpus float64, threads, replicas int, handlers map[string][]services.Step) services.ServiceSpec {
	return services.ServiceSpec{
		Name:            name,
		Threads:         threads,
		Daemons:         16,
		CPUs:            cpus,
		InitialReplicas: replicas,
		Handlers:        handlers,
	}
}

// Social-network request classes (Table II).
const (
	UploadPost        = "upload-post"
	UploadComment     = "upload-comment"
	ReadTimeline      = "read-timeline"
	UpdateTimeline    = "update-timeline"
	UploadImage       = "upload-image"
	DownloadImage     = "download-image"
	SentimentAnalysis = "sentiment-analysis"
	ObjectDetect      = "object-detect"
)

// SocialNetwork builds the re-implemented social network (§VI): text posts
// and timelines via RPC, plus image upload, sentiment analysis and object
// detection connected via message queues.
func SocialNetwork() services.AppSpec {
	composeFlow := services.Seq(
		services.Compute{MeanMs: 4.0},
		services.Par{Branches: [][]services.Step{
			{services.Call{Service: "text-service", Mode: services.NestedRPC}},
			{services.Call{Service: "user-service", Mode: services.NestedRPC}},
			{services.Call{Service: "url-shorten", Mode: services.NestedRPC}},
		}},
		services.Call{Service: "post-storage", Mode: services.NestedRPC},
		services.Spawn{Service: "home-timeline", Class: UpdateTimeline},
		services.Spawn{Service: "sentiment-ml", Class: SentimentAnalysis},
	)
	return services.AppSpec{
		Name: "social-network",
		Services: []services.ServiceSpec{
			rpc("frontend", 2, 2, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 1.5}, services.Call{Service: "compose-post", Mode: services.NestedRPC}),
				UploadComment: services.Seq(services.Compute{MeanMs: 1.5}, services.Call{Service: "compose-post", Mode: services.NestedRPC}),
				ReadTimeline:  services.Seq(services.Compute{MeanMs: 1.5}, services.Call{Service: "user-timeline", Mode: services.NestedRPC}),
				UploadImage:   services.Seq(services.Compute{MeanMs: 2.0}, services.Call{Service: "image-store", Mode: services.NestedRPC}),
				DownloadImage: services.Seq(services.Compute{MeanMs: 1.5}, services.Call{Service: "image-store", Mode: services.NestedRPC}),
			}),
			rpc("compose-post", 2, 2, map[string][]services.Step{
				UploadPost:    composeFlow,
				UploadComment: composeFlow,
			}),
			rpc("text-service", 2, 1, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 8.0}),
				UploadComment: services.Seq(services.Compute{MeanMs: 8.0}),
			}),
			rpc("user-service", 1, 2, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 3.0}),
				UploadComment: services.Seq(services.Compute{MeanMs: 3.0}),
			}),
			rpc("url-shorten", 1, 2, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 2.5}),
				UploadComment: services.Seq(services.Compute{MeanMs: 2.5}),
			}),
			rpc("post-storage", 2, 2, map[string][]services.Step{
				UploadPost:    services.Seq(services.Compute{MeanMs: 6.0}),
				UploadComment: services.Seq(services.Compute{MeanMs: 6.0}),
				ReadTimeline:  services.Seq(services.Compute{MeanMs: 35.0, CV: 0.4}),
				ObjectDetect:  services.Seq(services.Compute{MeanMs: 6.0}),
			}),
			rpc("user-timeline", 2, 2, map[string][]services.Step{
				ReadTimeline: services.Seq(
					services.Compute{MeanMs: 20.0, CV: 0.4},
					services.Call{Service: "post-storage", Mode: services.NestedRPC},
				),
			}),
			rpc("social-graph", 1, 1, map[string][]services.Step{
				UpdateTimeline: services.Seq(services.Compute{MeanMs: 6.0}),
			}),
			// home-timeline consumes update-timeline jobs from the queue and
			// fans the post out to followers' timelines.
			worker("home-timeline", 4, 16, 4, map[string][]services.Step{
				UpdateTimeline: services.Seq(
					services.Compute{MeanMs: 15.0},
					services.Call{Service: "social-graph", Mode: services.NestedRPC},
					services.Compute{MeanMs: 60.0, CV: 0.6},
				),
			}),
			rpc("image-store", 2, 2, map[string][]services.Step{
				UploadImage: services.Seq(
					services.Compute{MeanMs: 45.0, CV: 0.5},
					services.Spawn{Service: "object-detect-ml", Class: ObjectDetect},
				),
				DownloadImage: services.Seq(services.Compute{MeanMs: 12.0, CV: 0.5}),
				ObjectDetect:  services.Seq(services.Compute{MeanMs: 12.0, CV: 0.5}),
			}),
			// ML services are MQ consumers with heavy, less stable service
			// times (Hugging Face models in the paper).
			worker("sentiment-ml", 4, 8, 6, map[string][]services.Step{
				SentimentAnalysis: services.Seq(services.Compute{MeanMs: 140, CV: 0.5}),
			}),
			worker("object-detect-ml", 4, 8, 5, map[string][]services.Step{
				// Object-detect fetches the image and post contents, then
				// runs DETR (§VII-G swaps this for MobileNet).
				ObjectDetect: services.Seq(
					services.Call{Service: "image-store", Mode: services.NestedRPC},
					services.Call{Service: "post-storage", Mode: services.NestedRPC},
					services.Compute{MeanMs: 2600, CV: 0.45},
				),
			}),
		},
		Classes: []services.ClassSpec{
			{Name: UploadPost, Entry: "frontend", SLAPercentile: 99, SLAMillis: 75},
			{Name: UploadComment, Entry: "frontend", SLAPercentile: 99, SLAMillis: 75},
			{Name: ReadTimeline, Entry: "frontend", SLAPercentile: 99, SLAMillis: 250},
			{Name: UpdateTimeline, Entry: "home-timeline", Derived: true, SLAPercentile: 99, SLAMillis: 500},
			{Name: UploadImage, Entry: "frontend", SLAPercentile: 99, SLAMillis: 200},
			{Name: DownloadImage, Entry: "frontend", SLAPercentile: 99, SLAMillis: 75},
			{Name: SentimentAnalysis, Entry: "sentiment-ml", Derived: true, SLAPercentile: 99, SLAMillis: 500},
			{Name: ObjectDetect, Entry: "object-detect-ml", Derived: true, SLAPercentile: 99, SLAMillis: 10000},
		},
	}
}

// SocialNetworkMix is the exploration/deployment request mix of §VII-C:
// post : comment : download-image : read-timeline ≈ 1 : 75 : 15 : 25, plus
// a small stream of image uploads that feed the ML services.
func SocialNetworkMix() workload.Mix {
	return workload.Mix{
		UploadPost:    1,
		UploadComment: 75,
		DownloadImage: 15,
		ReadTimeline:  25,
		UploadImage:   4,
	}
}

// VanillaSocialNetwork is the original-functionality benchmark used in
// §VII-E: the same application with the ML services disabled.
func VanillaSocialNetwork() services.AppSpec {
	app := SocialNetwork()
	app.Name = "vanilla-social-network"
	var keptServices []services.ServiceSpec
	for _, s := range app.Services {
		switch s.Name {
		case "sentiment-ml", "object-detect-ml":
			continue
		}
		// Drop spawns that target the ML services.
		for class, steps := range s.Handlers {
			s.Handlers[class] = stripSpawns(steps, map[string]bool{
				SentimentAnalysis: true, ObjectDetect: true,
			})
		}
		keptServices = append(keptServices, s)
	}
	app.Services = keptServices
	var keptClasses []services.ClassSpec
	for _, c := range app.Classes {
		if c.Name == SentimentAnalysis || c.Name == ObjectDetect {
			continue
		}
		keptClasses = append(keptClasses, c)
	}
	app.Classes = keptClasses
	return app
}

// VanillaSocialNetworkMix drops image uploads (they only feed the ML path).
func VanillaSocialNetworkMix() workload.Mix {
	m := SocialNetworkMix()
	delete(m, UploadImage)
	return m
}

func stripSpawns(steps []services.Step, drop map[string]bool) []services.Step {
	var out []services.Step
	for _, st := range steps {
		switch s := st.(type) {
		case services.Spawn:
			if drop[s.Class] {
				continue
			}
			out = append(out, s)
		case services.Par:
			branches := make([][]services.Step, len(s.Branches))
			for i, br := range s.Branches {
				branches[i] = stripSpawns(br, drop)
			}
			out = append(out, services.Par{Branches: branches})
		default:
			out = append(out, st)
		}
	}
	return out
}

// Media-service request classes (Table III).
const (
	UploadVideo       = "upload-video"
	DownloadVideo     = "download-video"
	GetInfo           = "get-info"
	RateVideo         = "rate-video"
	TranscodeVideo    = "transcode-video"
	GenerateThumbnail = "generate-thumbnail"
)

// MediaService builds the re-implemented media service (§VI): reviews and
// ratings via RPC, plus real video upload/download with FFmpeg-style
// transcoding and thumbnailing behind message queues.
func MediaService() services.AppSpec {
	return services.AppSpec{
		Name: "media-service",
		Services: []services.ServiceSpec{
			rpc("media-frontend", 2, 2, map[string][]services.Step{
				UploadVideo:   services.Seq(services.Compute{MeanMs: 3.0}, services.Call{Service: "movie-id", Mode: services.NestedRPC}),
				DownloadVideo: services.Seq(services.Compute{MeanMs: 3.0}, services.Call{Service: "video-store", Mode: services.NestedRPC}),
				GetInfo:       services.Seq(services.Compute{MeanMs: 2.0}, services.Call{Service: "movie-info", Mode: services.NestedRPC}),
				RateVideo:     services.Seq(services.Compute{MeanMs: 2.0}, services.Call{Service: "rating", Mode: services.NestedRPC}),
			}),
			rpc("movie-id", 1, 1, map[string][]services.Step{
				UploadVideo: services.Seq(
					services.Compute{MeanMs: 3.0},
					services.Call{Service: "video-store", Mode: services.NestedRPC},
					services.Spawn{Service: "transcoder", Class: TranscodeVideo},
					services.Spawn{Service: "thumbnailer", Class: GenerateThumbnail},
				),
			}),
			rpc("video-store", 4, 3, map[string][]services.Step{
				// Upload writes the raw video (large payload).
				UploadVideo: services.Seq(services.Compute{MeanMs: 520, CV: 0.45}),
				// Download streams it back.
				DownloadVideo:     services.Seq(services.Compute{MeanMs: 380, CV: 0.45}),
				TranscodeVideo:    services.Seq(services.Compute{MeanMs: 150, CV: 0.5}),
				GenerateThumbnail: services.Seq(services.Compute{MeanMs: 100, CV: 0.5}),
			}),
			rpc("movie-info", 2, 2, map[string][]services.Step{
				GetInfo: services.Seq(
					services.Compute{MeanMs: 25.0, CV: 0.4},
					services.Par{Branches: [][]services.Step{
						{services.Call{Service: "review-storage", Mode: services.NestedRPC}},
						{services.Call{Service: "rating", Mode: services.NestedRPC, Class: GetInfo}},
					}},
				),
				RateVideo: services.Seq(services.Compute{MeanMs: 40.0, CV: 0.4}),
			}),
			rpc("review-storage", 2, 2, map[string][]services.Step{
				GetInfo: services.Seq(services.Compute{MeanMs: 32.0, CV: 0.4}),
			}),
			rpc("rating", 2, 2, map[string][]services.Step{
				GetInfo:   services.Seq(services.Compute{MeanMs: 15.0, CV: 0.4}),
				RateVideo: services.Seq(services.Compute{MeanMs: 60.0, CV: 0.4}, services.Call{Service: "movie-info", Mode: services.NestedRPC}),
			}),
			// FFmpeg-style heavy lifting behind queues.
			worker("transcoder", 4, 8, 3, map[string][]services.Step{
				TranscodeVideo: services.Seq(
					services.Call{Service: "video-store", Mode: services.NestedRPC},
					services.Compute{MeanMs: 11000, CV: 0.5},
					services.Call{Service: "video-store", Mode: services.NestedRPC},
				),
			}),
			worker("thumbnailer", 2, 8, 2, map[string][]services.Step{
				GenerateThumbnail: services.Seq(
					services.Call{Service: "video-store", Mode: services.NestedRPC},
					services.Compute{MeanMs: 420, CV: 0.5},
				),
			}),
		},
		Classes: []services.ClassSpec{
			{Name: UploadVideo, Entry: "media-frontend", SLAPercentile: 99, SLAMillis: 2000},
			{Name: DownloadVideo, Entry: "media-frontend", SLAPercentile: 99, SLAMillis: 1500},
			{Name: GetInfo, Entry: "media-frontend", SLAPercentile: 99, SLAMillis: 250},
			{Name: RateVideo, Entry: "media-frontend", SLAPercentile: 99, SLAMillis: 400},
			{Name: TranscodeVideo, Entry: "transcoder", Derived: true, SLAPercentile: 99, SLAMillis: 40000},
			{Name: GenerateThumbnail, Entry: "thumbnailer", Derived: true, SLAPercentile: 99, SLAMillis: 2000},
		},
	}
}

// MediaServiceMix is the §VII-C mix: upload-video : get-info :
// download-video : rate-video ≈ 1 : 100 : 25 : 25.
func MediaServiceMix() workload.Mix {
	return workload.Mix{
		UploadVideo:   1,
		GetInfo:       100,
		DownloadVideo: 25,
		RateVideo:     25,
	}
}

// Video-pipeline request classes (Table IV).
const (
	HighPriority = "high-priority"
	LowPriority  = "low-priority"
)

// VideoPipeline builds the three-stage video processing pipeline (§VI):
// metadata extraction → snapshots → face recognition, connected by MQs.
// High-priority requests always run first when workers are available;
// low-priority requests run only when no high-priority request waits.
func VideoPipeline() services.AppSpec {
	stageFlow := func(meanMs float64, cv float64, next string) map[string][]services.Step {
		build := func() []services.Step {
			steps := services.Seq(services.Compute{MeanMs: meanMs, CV: cv})
			if next != "" {
				steps = append(steps, services.Call{Service: next, Mode: services.MQ})
			}
			return steps
		}
		return map[string][]services.Step{
			HighPriority: build(),
			LowPriority:  build(),
		}
	}
	return services.AppSpec{
		Name: "video-pipeline",
		Services: []services.ServiceSpec{
			worker("metadata-extract", 2, 4, 2, stageFlow(300, 0.4, "snapshot")),
			worker("snapshot", 4, 8, 3, stageFlow(900, 0.4, "face-recognition")),
			worker("face-recognition", 4, 8, 5, stageFlow(1300, 0.45, "")),
		},
		Classes: []services.ClassSpec{
			{Name: HighPriority, Entry: "metadata-extract", Priority: 0, SLAPercentile: 99, SLAMillis: 20000},
			{Name: LowPriority, Entry: "metadata-extract", Priority: 1, SLAPercentile: 50, SLAMillis: 4000},
		},
	}
}

// VideoPipelineMix returns a high:low priority mix, e.g. (25, 75).
func VideoPipelineMix(high, low float64) workload.Mix {
	return workload.Mix{HighPriority: high, LowPriority: low}
}

// BackpressureChain builds the §III study chain: five identical tiers
// connected by the given communication mode, with RPC ingress flow control.
func BackpressureChain(mode services.CallMode) services.AppSpec {
	spec := services.AppSpec{Name: "chain-" + mode.String()}
	for i := 1; i <= 5; i++ {
		steps := services.Seq(services.Compute{MeanMs: 5, CV: 0.3})
		if i < 5 {
			steps = append(steps, services.Call{Service: ChainTier(i + 1), Mode: mode})
		}
		spec.Services = append(spec.Services, services.ServiceSpec{
			Name: ChainTier(i), Threads: 4096, Daemons: 32, CPUs: 2, InitialReplicas: 1,
			IngressCostMs: 1, IngressWindow: 16,
			Handlers: map[string][]services.Step{"req": steps},
		})
	}
	spec.Classes = []services.ClassSpec{{Name: "req", Entry: ChainTier(1), SLAPercentile: 99, SLAMillis: 1000}}
	return spec
}

// ChainTier names the i-th tier of the backpressure chain (1-based; tier 1
// is client-facing).
func ChainTier(i int) string { return fmt.Sprintf("tier%d", i) }

// Apps returns every benchmark application keyed by name, with its
// exploration-time request mix — the §VII-E evaluation grid.
func Apps() map[string]struct {
	Spec services.AppSpec
	Mix  workload.Mix
} {
	return map[string]struct {
		Spec services.AppSpec
		Mix  workload.Mix
	}{
		"social-network":         {SocialNetwork(), SocialNetworkMix()},
		"vanilla-social-network": {VanillaSocialNetwork(), VanillaSocialNetworkMix()},
		"media-service":          {MediaService(), MediaServiceMix()},
		"video-pipeline":         {VideoPipeline(), VideoPipelineMix(50, 50)},
	}
}
