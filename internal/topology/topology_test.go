package topology

import (
	"encoding/json"
	"reflect"
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/workload"
)

func TestAllSpecsValidate(t *testing.T) {
	for _, app := range Apps() {
		spec := app.Spec
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
	}
	chain := BackpressureChain(services.NestedRPC)
	if err := chain.Validate(); err != nil {
		t.Errorf("chain: %v", err)
	}
}

func TestVanillaDropsMLServices(t *testing.T) {
	v := VanillaSocialNetwork()
	for _, s := range v.Services {
		if s.Name == "sentiment-ml" || s.Name == "object-detect-ml" {
			t.Fatalf("vanilla still contains %s", s.Name)
		}
	}
	if v.Class(SentimentAnalysis) != nil || v.Class(ObjectDetect) != nil {
		t.Fatal("vanilla still declares ML classes")
	}
	if err := v.Validate(); err != nil {
		t.Fatalf("vanilla spec invalid: %v", err)
	}
	// Original is untouched (deep-copy semantics for handlers we modify).
	full := SocialNetwork()
	if full.ServiceSpecByName("image-store") == nil {
		t.Fatal("full spec broken")
	}
	found := false
	for _, st := range full.ServiceSpecByName("image-store").Handlers[UploadImage] {
		if sp, ok := st.(services.Spawn); ok && sp.Class == ObjectDetect {
			found = true
		}
	}
	if !found {
		t.Fatal("full social network lost its object-detect spawn")
	}
}

// runApp drives an app at the given total RPS for the given duration and
// returns the app for inspection.
func runApp(t *testing.T, spec services.AppSpec, mix workload.Mix, rps float64, dur sim.Time, seed int64) *services.App {
	t.Helper()
	eng := sim.NewEngine(seed)
	app := services.MustNewApp(eng, spec)
	g := workload.New(eng, app, workload.Constant{Value: rps}, mix)
	g.Start()
	eng.RunUntil(dur)
	return app
}

func TestSocialNetworkMeetsSLAsAtModerateLoad(t *testing.T) {
	app := runApp(t, SocialNetwork(), SocialNetworkMix(), 100, 10*sim.Minute, 31)
	if app.CompletedJobs() == 0 {
		t.Fatal("no jobs completed")
	}
	for _, cs := range app.Spec.Classes {
		rec := app.E2E.Class(cs.Name)
		if rec == nil {
			t.Errorf("class %s never completed", cs.Name)
			continue
		}
		// Skip the warm-up minute.
		lat := rec.Between(sim.Minute, 10*sim.Minute)
		p := stats.Percentile(lat, cs.SLAPercentile)
		if p > cs.SLAMillis {
			t.Errorf("%s: p%.0f = %.1fms exceeds SLA %.0fms at moderate load",
				cs.Name, cs.SLAPercentile, p, cs.SLAMillis)
		}
		if p < cs.SLAMillis*0.02 {
			t.Errorf("%s: p%.0f = %.1fms is implausibly far below SLA %.0fms (mis-scaled workload?)",
				cs.Name, cs.SLAPercentile, p, cs.SLAMillis)
		}
	}
}

func TestMediaServiceMeetsSLAsAtModerateLoad(t *testing.T) {
	app := runApp(t, MediaService(), MediaServiceMix(), 60, 10*sim.Minute, 32)
	for _, cs := range app.Spec.Classes {
		rec := app.E2E.Class(cs.Name)
		if rec == nil {
			t.Errorf("class %s never completed", cs.Name)
			continue
		}
		lat := rec.Between(sim.Minute, 10*sim.Minute)
		p := stats.Percentile(lat, cs.SLAPercentile)
		if p > cs.SLAMillis {
			t.Errorf("%s: p%.0f = %.1fms exceeds SLA %.0fms", cs.Name, cs.SLAPercentile, p, cs.SLAMillis)
		}
	}
}

func TestVideoPipelineMeetsSLAsAtModerateLoad(t *testing.T) {
	app := runApp(t, VideoPipeline(), VideoPipelineMix(50, 50), 4, 20*sim.Minute, 33)
	for _, cs := range app.Spec.Classes {
		rec := app.E2E.Class(cs.Name)
		if rec == nil {
			t.Errorf("class %s never completed", cs.Name)
			continue
		}
		lat := rec.Between(2*sim.Minute, 20*sim.Minute)
		p := stats.Percentile(lat, cs.SLAPercentile)
		if p > cs.SLAMillis {
			t.Errorf("%s: p%.0f = %.1fms exceeds SLA %.0fms", cs.Name, cs.SLAPercentile, p, cs.SLAMillis)
		}
	}
}

func TestVideoPipelinePriorityInversionImpossible(t *testing.T) {
	// Under pressure, high-priority p99 must stay well below low-priority
	// p99: low-priority waits, high-priority doesn't.
	app := runApp(t, VideoPipeline(), VideoPipelineMix(25, 75), 7, 20*sim.Minute, 34)
	hi := stats.Percentile(app.E2E.Class(HighPriority).Between(2*sim.Minute, 20*sim.Minute), 99)
	lo := stats.Percentile(app.E2E.Class(LowPriority).Between(2*sim.Minute, 20*sim.Minute), 99)
	if hi >= lo {
		t.Fatalf("priority inversion: high p99=%.0fms ≥ low p99=%.0fms", hi, lo)
	}
}

func TestSocialNetworkDerivedClassesFlow(t *testing.T) {
	// Uploading a post must spawn update-timeline and sentiment jobs;
	// uploading an image must spawn object-detect jobs.
	app := runApp(t, SocialNetwork(), workload.Mix{UploadPost: 1, UploadImage: 1}, 20, 5*sim.Minute, 35)
	for _, derived := range []string{UpdateTimeline, SentimentAnalysis, ObjectDetect} {
		rec := app.E2E.Class(derived)
		if rec == nil || rec.Count(0, 5*sim.Minute) == 0 {
			t.Errorf("derived class %s produced no completions", derived)
		}
	}
}

func TestMediaDerivedClassesFlow(t *testing.T) {
	app := runApp(t, MediaService(), workload.Mix{UploadVideo: 1}, 2, 10*sim.Minute, 36)
	for _, derived := range []string{TranscodeVideo, GenerateThumbnail} {
		rec := app.E2E.Class(derived)
		if rec == nil || rec.Count(0, 10*sim.Minute) == 0 {
			t.Errorf("derived class %s produced no completions", derived)
		}
	}
}

func TestChainTierNames(t *testing.T) {
	if ChainTier(1) != "tier1" || ChainTier(5) != "tier5" {
		t.Fatal("ChainTier naming wrong")
	}
}

func TestSpecsJSONRoundTrip(t *testing.T) {
	for _, app := range Apps() {
		data, err := json.Marshal(app.Spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", app.Name, err)
		}
		var got services.AppSpec
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("%s: unmarshal: %v", app.Name, err)
		}
		if !reflect.DeepEqual(app.Spec, got) {
			t.Errorf("%s: JSON round trip mismatch", app.Name)
		}
	}
}
