package workload

import (
	"math"
	"testing"
	"testing/quick"

	"ursa/internal/services"
	"ursa/internal/sim"
)

func testApp(eng *sim.Engine) *services.App {
	return services.MustNewApp(eng, services.AppSpec{
		Name: "wl-test",
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 64, CPUs: 8, InitialReplicas: 4,
			Handlers: map[string][]services.Step{
				"a": services.Seq(services.Compute{MeanMs: 1, CV: -1}),
				"b": services.Seq(services.Compute{MeanMs: 1, CV: -1}),
			},
		}},
		Classes: []services.ClassSpec{
			{Name: "a", Entry: "api", SLAPercentile: 99, SLAMillis: 100},
			{Name: "b", Entry: "api", SLAPercentile: 99, SLAMillis: 100},
		},
	})
}

func TestConstantRate(t *testing.T) {
	eng := sim.NewEngine(1)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 100}, Mix{"a": 1})
	g.Start()
	eng.RunUntil(10 * sim.Minute)
	got := float64(g.Injected["a"]) / 600
	if math.Abs(got-100) > 5 {
		t.Fatalf("constant rate = %.1f RPS, want ≈100", got)
	}
}

func TestMixRatios(t *testing.T) {
	eng := sim.NewEngine(2)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 200}, Mix{"a": 3, "b": 1})
	g.Start()
	eng.RunUntil(10 * sim.Minute)
	frac := float64(g.Injected["a"]) / float64(g.Injected["a"]+g.Injected["b"])
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("class-a fraction = %.3f, want ≈0.75", frac)
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Base: 50, Peak: 150, Period: 60 * sim.Minute}
	if got := d.RPS(0); got != 50 {
		t.Fatalf("RPS(0) = %v", got)
	}
	if got := d.RPS(30 * sim.Minute); math.Abs(got-150) > 1e-9 {
		t.Fatalf("RPS(mid) = %v, want 150", got)
	}
	if got := d.RPS(15 * sim.Minute); math.Abs(got-100) > 1e-9 {
		t.Fatalf("RPS(quarter) = %v, want 100", got)
	}
	// Periodic.
	if got := d.RPS(75 * sim.Minute); math.Abs(got-100) > 1e-9 {
		t.Fatalf("RPS(1.25 periods) = %v, want 100", got)
	}
}

func TestBurstPattern(t *testing.T) {
	b := Burst{Base: 100, Factor: 2.25, Start: 5 * sim.Minute, Len: 2 * sim.Minute}
	if b.RPS(0) != 100 || b.RPS(6*sim.Minute) != 225 || b.RPS(8*sim.Minute) != 100 {
		t.Fatal("burst pattern wrong")
	}
}

func TestDiurnalLoadTracksPattern(t *testing.T) {
	eng := sim.NewEngine(3)
	app := testApp(eng)
	g := New(eng, app, Diurnal{Base: 20, Peak: 200, Period: 20 * sim.Minute}, Mix{"a": 1})
	g.Start()
	eng.RunUntil(20 * sim.Minute)
	arr := app.Service("api").ArrivalsAll
	early := arr.Rate(0, 2*sim.Minute)
	mid := arr.Rate(9*sim.Minute, 11*sim.Minute)
	if mid < early*3 {
		t.Fatalf("diurnal peak not visible: early=%.1f mid=%.1f", early, mid)
	}
}

func TestStop(t *testing.T) {
	eng := sim.NewEngine(4)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 100}, Mix{"a": 1})
	g.Start()
	eng.RunUntil(time1)
	g.Stop()
	n := g.Injected["a"]
	eng.RunUntil(2 * time1)
	if g.Injected["a"] != n {
		t.Fatalf("generator kept injecting after Stop: %d → %d", n, g.Injected["a"])
	}
}

const time1 = 1 * sim.Minute

func TestScaledMix(t *testing.T) {
	m := Mix{"a": 2, "b": 2}
	s := m.Scaled("a", 2)
	if s["a"] != 4 || s["b"] != 2 {
		t.Fatalf("Scaled = %v", s)
	}
	if m["a"] != 2 {
		t.Fatal("Scaled mutated the original mix")
	}
	if got := s.Fraction("a"); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("Fraction = %v", got)
	}
}

func TestZeroRateIdles(t *testing.T) {
	eng := sim.NewEngine(5)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 0}, Mix{"a": 1})
	g.Start()
	eng.RunUntil(time1)
	if g.Injected["a"] != 0 {
		t.Fatal("zero-rate pattern injected requests")
	}
}

func TestMixPanicsWithoutWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty mix")
		}
	}()
	Mix{"a": 0}.normalize()
}

// Property: diurnal RPS stays within [Base, Peak] for all times.
func TestDiurnalBoundsProperty(t *testing.T) {
	d := Diurnal{Base: 10, Peak: 90, Period: 33 * sim.Minute}
	f := func(raw uint32) bool {
		ts := sim.Time(raw) * sim.Second
		r := d.RPS(ts)
		return r >= 10-1e-9 && r <= 90+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
