package workload

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"ursa/internal/services"
	"ursa/internal/sim"
)

func testApp(eng *sim.Engine) *services.App {
	return services.MustNewApp(eng, services.AppSpec{
		Name: "wl-test",
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 64, CPUs: 8, InitialReplicas: 4,
			Handlers: map[string][]services.Step{
				"a": services.Seq(services.Compute{MeanMs: 1, CV: -1}),
				"b": services.Seq(services.Compute{MeanMs: 1, CV: -1}),
			},
		}},
		Classes: []services.ClassSpec{
			{Name: "a", Entry: "api", SLAPercentile: 99, SLAMillis: 100},
			{Name: "b", Entry: "api", SLAPercentile: 99, SLAMillis: 100},
		},
	})
}

func TestConstantRate(t *testing.T) {
	eng := sim.NewEngine(1)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 100}, Mix{"a": 1})
	g.Start()
	eng.RunUntil(10 * sim.Minute)
	got := float64(g.Injected["a"]) / 600
	if math.Abs(got-100) > 5 {
		t.Fatalf("constant rate = %.1f RPS, want ≈100", got)
	}
}

func TestMixRatios(t *testing.T) {
	eng := sim.NewEngine(2)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 200}, Mix{"a": 3, "b": 1})
	g.Start()
	eng.RunUntil(10 * sim.Minute)
	frac := float64(g.Injected["a"]) / float64(g.Injected["a"]+g.Injected["b"])
	if math.Abs(frac-0.75) > 0.03 {
		t.Fatalf("class-a fraction = %.3f, want ≈0.75", frac)
	}
}

func TestDiurnalShape(t *testing.T) {
	d := Diurnal{Base: 50, Peak: 150, Period: 60 * sim.Minute}
	if got := d.RPS(0); got != 50 {
		t.Fatalf("RPS(0) = %v", got)
	}
	if got := d.RPS(30 * sim.Minute); math.Abs(got-150) > 1e-9 {
		t.Fatalf("RPS(mid) = %v, want 150", got)
	}
	if got := d.RPS(15 * sim.Minute); math.Abs(got-100) > 1e-9 {
		t.Fatalf("RPS(quarter) = %v, want 100", got)
	}
	// Periodic.
	if got := d.RPS(75 * sim.Minute); math.Abs(got-100) > 1e-9 {
		t.Fatalf("RPS(1.25 periods) = %v, want 100", got)
	}
}

func TestShiftPattern(t *testing.T) {
	d := Diurnal{Base: 50, Peak: 150, Period: 60 * sim.Minute}
	s := Shift{Inner: d, Offset: 15 * sim.Minute}
	// The shifted pattern at t reads the inner pattern at t+Offset.
	for _, tm := range []sim.Time{0, 10 * sim.Minute, 45 * sim.Minute, 100 * sim.Minute} {
		if got, want := s.RPS(tm), d.RPS(tm+15*sim.Minute); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Shift.RPS(%v) = %v, want %v", tm, got, want)
		}
	}
	// A whole-period shift is the identity.
	full := Shift{Inner: d, Offset: 60 * sim.Minute}
	if got := full.RPS(20 * sim.Minute); math.Abs(got-d.RPS(20*sim.Minute)) > 1e-9 {
		t.Fatalf("whole-period shift not identity: %v", got)
	}
}

func TestBurstPattern(t *testing.T) {
	b := Burst{Base: 100, Factor: 2.25, Start: 5 * sim.Minute, Len: 2 * sim.Minute}
	if b.RPS(0) != 100 || b.RPS(6*sim.Minute) != 225 || b.RPS(8*sim.Minute) != 100 {
		t.Fatal("burst pattern wrong")
	}
}

func TestDiurnalLoadTracksPattern(t *testing.T) {
	eng := sim.NewEngine(3)
	app := testApp(eng)
	g := New(eng, app, Diurnal{Base: 20, Peak: 200, Period: 20 * sim.Minute}, Mix{"a": 1})
	g.Start()
	eng.RunUntil(20 * sim.Minute)
	arr := app.Service("api").ArrivalsAll
	early := arr.Rate(0, 2*sim.Minute)
	mid := arr.Rate(9*sim.Minute, 11*sim.Minute)
	if mid < early*3 {
		t.Fatalf("diurnal peak not visible: early=%.1f mid=%.1f", early, mid)
	}
}

func TestStop(t *testing.T) {
	eng := sim.NewEngine(4)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 100}, Mix{"a": 1})
	g.Start()
	eng.RunUntil(time1)
	g.Stop()
	n := g.Injected["a"]
	eng.RunUntil(2 * time1)
	if g.Injected["a"] != n {
		t.Fatalf("generator kept injecting after Stop: %d → %d", n, g.Injected["a"])
	}
}

const time1 = 1 * sim.Minute

func TestScaledMix(t *testing.T) {
	m := Mix{"a": 2, "b": 2}
	s := m.Scaled("a", 2)
	if s["a"] != 4 || s["b"] != 2 {
		t.Fatalf("Scaled = %v", s)
	}
	if m["a"] != 2 {
		t.Fatal("Scaled mutated the original mix")
	}
	if got := s.Fraction("a"); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("Fraction = %v", got)
	}
}

func TestZeroRateIdles(t *testing.T) {
	eng := sim.NewEngine(5)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 0}, Mix{"a": 1})
	g.Start()
	eng.RunUntil(time1)
	if g.Injected["a"] != 0 {
		t.Fatal("zero-rate pattern injected requests")
	}
}

func TestMixPanicsWithoutWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty mix")
		}
	}()
	Mix{"a": 0}.normalize()
}

// Property: diurnal RPS stays within [Base, Peak] for all times.
func TestDiurnalBoundsProperty(t *testing.T) {
	d := Diurnal{Base: 10, Peak: 90, Period: 33 * sim.Minute}
	f := func(raw uint32) bool {
		ts := sim.Time(raw) * sim.Second
		r := d.RPS(ts)
		return r >= 10-1e-9 && r <= 90+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// recPattern wraps a pattern and records every RPS query time. The generator
// queries the pattern exactly once per arrival (at the previous arrival's
// processing time) plus once per idle re-check, so the recorded sequence is a
// complete fingerprint of the arrival timeline in both arrival paths.
type recPattern struct {
	inner Pattern
	times []sim.Time
}

func (r *recPattern) RPS(t sim.Time) float64 {
	r.times = append(r.times, t)
	return r.inner.RPS(t)
}

// arrivalFingerprint runs one generator (legacy or batched) for 10 simulated
// minutes and serializes everything observable about the run: every pattern
// query time, total events fired, per-class injection counts, and the
// millisecond-exact per-window p99 of the downstream service.
func arrivalFingerprint(seed int64, legacy bool, base Pattern, script func(eng *sim.Engine, g *Generator)) string {
	eng := sim.NewEngine(seed)
	app := testApp(eng)
	rec := &recPattern{inner: base}
	g := New(eng, app, rec, Mix{"a": 3, "b": 1})
	g.legacy = legacy
	if script != nil {
		script(eng, g)
	}
	g.Start()
	eng.RunUntil(10 * sim.Minute)
	var b strings.Builder
	fmt.Fprintf(&b, "fired=%d a=%d b=%d\n", eng.Fired(), g.Injected["a"], g.Injected["b"])
	for _, ts := range rec.times {
		fmt.Fprintf(&b, "%d,", int64(ts))
	}
	b.WriteString("\n")
	p99 := app.Service("api").RespTime.PerWindowPercentile(10*sim.Minute, 99)
	fmt.Fprintf(&b, "p99=%v\n", p99)
	return b.String()
}

// TestBatchedMatchesLegacy is the batching property test: across many seeds
// and load shapes (constant, diurnal, a zero-rate idle window), the batched
// arrival path must reproduce the legacy one-timer-per-arrival path
// byte-for-byte — same arrival times, same classes, same event count, same
// downstream latencies.
func TestBatchedMatchesLegacy(t *testing.T) {
	shapes := map[string]Pattern{
		"constant": Constant{Value: 120},
		"diurnal":  Diurnal{Base: 40, Peak: 200, Period: 6 * sim.Minute},
		// A dead window exercises the idle re-check path mid-run.
		"idle-window": Modulate{Base: Constant{Value: 90}, Factor: 0, Start: 3 * sim.Minute, Len: 90 * sim.Second},
	}
	for name, shape := range shapes {
		for seed := int64(1); seed <= 24; seed++ {
			want := arrivalFingerprint(seed, true, shape, nil)
			got := arrivalFingerprint(seed, false, shape, nil)
			if want != got {
				t.Fatalf("%s seed %d: batched arrivals diverge from legacy\nlegacy:  %.200s\nbatched: %.200s",
					name, seed, want, got)
			}
		}
	}
}

// TestSetPatternMidBlock pins the SetPattern/block interaction: an RPS step
// injected mid-block (the batched path pre-draws 256 arrivals ≈ 2.6 s at
// 100 RPS, so minute 4 is deep inside a block) must take effect at the next
// arrival boundary exactly as the legacy path does — the already-armed gap
// keeps the old rate, every later gap uses the new one.
func TestSetPatternMidBlock(t *testing.T) {
	script := func(eng *sim.Engine, g *Generator) {
		eng.At(4*sim.Minute+137*sim.Millisecond, func() { g.SetPattern(Constant{Value: 400}) })
		eng.At(7*sim.Minute+11*sim.Millisecond, func() { g.SetPattern(Constant{Value: 30}) })
	}
	for seed := int64(1); seed <= 8; seed++ {
		want := arrivalFingerprint(seed, true, Constant{Value: 100}, script)
		got := arrivalFingerprint(seed, false, Constant{Value: 100}, script)
		if want != got {
			t.Fatalf("seed %d: mid-block SetPattern diverges\nlegacy:  %.200s\nbatched: %.200s", seed, want, got)
		}
		// The step must actually be visible: ≥3x the base arrivals.
		if n := countInjected(seed); n < 3*100*60 {
			t.Fatalf("seed %d: RPS step not visible (%d arrivals)", seed, n)
		}
	}
}

func countInjected(seed int64) int {
	eng := sim.NewEngine(seed)
	app := testApp(eng)
	g := New(eng, app, Constant{Value: 100}, Mix{"a": 1})
	eng.At(4*sim.Minute, func() { g.SetPattern(Constant{Value: 400}) })
	g.Start()
	eng.RunUntil(10 * sim.Minute)
	return g.Injected["a"]
}

// TestStopMidBlock pins the Stop/block interaction: stopping deep inside a
// pre-drawn block halts injection at the very next arrival boundary, exactly
// like the legacy path, with no stray arrivals from the unconsumed tail.
func TestStopMidBlock(t *testing.T) {
	script := func(eng *sim.Engine, g *Generator) {
		eng.At(5*sim.Minute+731*sim.Millisecond, g.Stop)
	}
	for seed := int64(1); seed <= 8; seed++ {
		want := arrivalFingerprint(seed, true, Constant{Value: 150}, script)
		got := arrivalFingerprint(seed, false, Constant{Value: 150}, script)
		if want != got {
			t.Fatalf("seed %d: mid-block Stop diverges\nlegacy:  %.200s\nbatched: %.200s", seed, want, got)
		}
	}
}

// allocsPerArrival measures steady-state heap allocations per arrival for
// one arrival path, injection pipeline included (Job, Request, metrics — the
// same in both paths, so the difference isolates the generator machinery).
func allocsPerArrival(t *testing.T, legacy bool) float64 {
	t.Helper()
	eng := sim.NewEngine(9)
	app := services.MustNewApp(eng, services.AppSpec{
		Name: "alloc-test",
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 64, CPUs: 8, InitialReplicas: 4,
			Handlers: map[string][]services.Step{
				"a": services.Seq(services.Compute{MeanMs: 0.001, CV: -1}),
			},
		}},
		Classes: []services.ClassSpec{{Name: "a", Entry: "api", SLAPercentile: 99, SLAMillis: 100}},
	})
	g := New(eng, app, Constant{Value: 1000}, Mix{"a": 1})
	g.legacy = legacy
	g.Start()
	eng.RunUntil(2 * sim.Minute) // warm slabs, Injected map, engine arena
	before := g.Injected["a"]
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	eng.RunFor(time1)
	runtime.ReadMemStats(&m1)
	arrivals := g.Injected["a"] - before
	if arrivals < 100 {
		t.Fatalf("only %d arrivals in measured window", arrivals)
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(arrivals)
}

// TestBatchedArrivalAllocs pins the batching win: the batched path must
// allocate measurably less per arrival than the retained legacy path (which
// pays a fresh arrival closure per arrival, plus per-draw RNG overhead the
// block refill amortizes into retained slabs).
func TestBatchedArrivalAllocs(t *testing.T) {
	legacyAllocs := allocsPerArrival(t, true)
	batchedAllocs := allocsPerArrival(t, false)
	if batchedAllocs > legacyAllocs-0.5 {
		t.Fatalf("batched path allocates %.2f/arrival vs legacy %.2f — expected ≥0.5 saved",
			batchedAllocs, legacyAllocs)
	}
}
