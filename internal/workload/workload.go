// Package workload generates open-loop user load against a simulated
// application — the stand-in for the paper's Locust deployment (§VII-A).
// Arrivals follow a (possibly non-homogeneous) Poisson process; request
// classes are drawn from a weighted mix. Constant, diurnal, burst and skewed
// patterns reproduce the three load regimes of §VII-E.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"ursa/internal/services"
	"ursa/internal/sim"
)

// Pattern is a time-varying target request rate.
type Pattern interface {
	// RPS reports the target arrival rate at simulated time t.
	RPS(t sim.Time) float64
}

// Constant is a fixed-rate pattern.
type Constant struct {
	Value float64
}

// RPS implements Pattern.
func (c Constant) RPS(sim.Time) float64 { return c.Value }

// Diurnal ramps linearly from Base up to Peak at Period/2 and back down —
// the paper's "RPS first gradually increases and then gradually decreases".
// The pattern repeats every Period.
type Diurnal struct {
	Base, Peak float64
	Period     sim.Time
}

// RPS implements Pattern.
func (d Diurnal) RPS(t sim.Time) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	phase := float64(t%d.Period) / float64(d.Period) // 0..1
	var frac float64
	if phase < 0.5 {
		frac = phase * 2
	} else {
		frac = (1 - phase) * 2
	}
	return d.Base + (d.Peak-d.Base)*frac
}

// Shift advances a pattern in time: RPS(t) = Inner.RPS(t+Offset). Wrapping a
// periodic pattern (Diurnal) with per-deployment offsets phase-shifts the same
// curve across deployments — the follow-the-sun workload, where each region's
// peak lands in another region's trough.
type Shift struct {
	Inner  Pattern
	Offset sim.Time
}

// RPS implements Pattern.
func (s Shift) RPS(t sim.Time) float64 { return s.Inner.RPS(t + s.Offset) }

// Burst holds Base RPS and multiplies it by Factor during [Start, Start+Len)
// — the paper's "RPS increases sharply by 50% to 125%".
type Burst struct {
	Base   float64
	Factor float64
	Start  sim.Time
	Len    sim.Time
}

// RPS implements Pattern.
func (b Burst) RPS(t sim.Time) float64 {
	if t >= b.Start && t < b.Start+b.Len {
		return b.Base * b.Factor
	}
	return b.Base
}

// Modulate multiplies a base pattern by Factor during [Start, Start+Len) —
// sharp bursts superimposed on any underlying pattern.
type Modulate struct {
	Base   Pattern
	Factor float64
	Start  sim.Time
	Len    sim.Time
}

// RPS implements Pattern.
func (m Modulate) RPS(t sim.Time) float64 {
	r := m.Base.RPS(t)
	if t >= m.Start && t < m.Start+m.Len {
		return r * m.Factor
	}
	return r
}

// Mix is a weighted request-class mix; weights need not sum to 1.
type Mix map[string]float64

// Normalize returns classes (sorted) and cumulative probabilities.
func (m Mix) normalize() (classes []string, cum []float64) {
	for c := range m {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	total := 0.0
	for _, c := range classes {
		w := m[c]
		if w < 0 {
			panic(fmt.Sprintf("workload: negative weight for class %q", c))
		}
		total += w
	}
	if total <= 0 {
		panic("workload: mix has no positive weights")
	}
	acc := 0.0
	for _, c := range classes {
		acc += m[c] / total
		cum = append(cum, acc)
	}
	return classes, cum
}

// Scaled returns a copy of the mix with the given class's weight multiplied
// by f — how the skewed-load experiments double or halve update frequencies.
func (m Mix) Scaled(class string, f float64) Mix {
	out := Mix{}
	for c, w := range m {
		out[c] = w
	}
	if _, ok := out[class]; ok {
		out[class] *= f
	}
	return out
}

// Fraction reports the normalized weight of a class.
func (m Mix) Fraction(class string) float64 {
	total := 0.0
	for _, w := range m {
		total += w
	}
	if total <= 0 {
		return 0
	}
	return m[class] / total
}

// UseLegacyArrivals, when set before generators are started, routes every
// arrival through the retained one-timer-per-arrival reference path instead
// of the batched fast path. The two paths are pinned byte-identical by
// TestBatchedMatchesLegacy and the experiment-level identity tests; the flag
// exists so those tests (and A/B benchmarks) can run the original
// implementation without forking the package.
var UseLegacyArrivals bool

// arrivalBlock is how many (inter-arrival, class) RNG draw pairs the batched
// path pre-generates at a time. Bigger blocks amortize RNG calls further but
// pre-draw deeper past a Stop; 256 keeps the slabs L1-resident.
const arrivalBlock = 256

// Generator drives Poisson arrivals of mixed request classes into an app.
//
// The default (batched) implementation pre-draws RNG values in blocks and
// keeps exactly one pending arrival timer, armed through the engine's
// closure-free handler path — zero allocations per arrival in steady state.
// Batching preserves the reference path's behaviour exactly (see DESIGN.md
// §4f): draws are consumed pairwise in the same stream order, each
// inter-arrival gap is still scaled by the pattern rate read at the previous
// arrival, and the single Schedule call per arrival happens at the same
// moment — so event times, engine sequence numbers and every injected
// (time, class) pair are identical to the legacy path.
type Generator struct {
	eng     *sim.Engine
	app     *services.App
	pattern Pattern
	classes []string
	cum     []float64
	rng     *rand.Rand
	stopped bool
	legacy  bool
	// Injected counts requests injected per class.
	Injected map[string]int

	// Batched-arrival state: raw ExpFloat64 gap draws and Float64 class
	// draws, consumed pairwise at index idx. Raw draws are pattern-agnostic —
	// gaps are scaled by the live rate only when the next timer is armed, so
	// SetPattern needs no block invalidation.
	expDraws []float64
	clsDraws []float64
	idx      int
	// idleWait marks the pending timer as a rate re-check (pattern returned
	// rate ≤ 0) rather than an arrival.
	idleWait bool
}

// New creates a generator; call Start to begin injecting load.
func New(eng *sim.Engine, app *services.App, pattern Pattern, mix Mix) *Generator {
	classes, cum := mix.normalize()
	return &Generator{
		eng:      eng,
		app:      app,
		pattern:  pattern,
		classes:  classes,
		cum:      cum,
		rng:      eng.RNG("workload/" + app.Spec.Name),
		legacy:   UseLegacyArrivals,
		Injected: map[string]int{},
	}
}

// Start begins the open-loop arrival process.
func (g *Generator) Start() {
	if g.legacy {
		g.scheduleNext()
		return
	}
	g.armNext()
}

// Stop halts future arrivals (in-flight requests drain normally). A pending
// arrival timer fires as a no-op, exactly like the legacy path.
func (g *Generator) Stop() { g.stopped = true }

// SetPattern swaps the load pattern. It takes effect at the next arrival
// boundary: the already-armed gap was scaled by the old pattern's rate (it
// was drawn at the previous arrival), and every later gap is scaled by the
// new pattern's rate at arm time — identical in both arrival paths, because
// the batched blocks store raw unscaled draws.
func (g *Generator) SetPattern(p Pattern) { g.pattern = p }

// refill pre-draws one block of (gap, class) RNG pairs. Pairwise order
// matches the legacy path's interleaved consumption (Exp₁ F₁ Exp₂ F₂ …), so
// both paths read the identical value sequence from the generator's private
// stream.
func (g *Generator) refill() {
	if cap(g.expDraws) == 0 {
		g.expDraws = make([]float64, 0, arrivalBlock)
		g.clsDraws = make([]float64, 0, arrivalBlock)
	}
	g.expDraws = g.expDraws[:0]
	g.clsDraws = g.clsDraws[:0]
	for i := 0; i < arrivalBlock; i++ {
		g.expDraws = append(g.expDraws, g.rng.ExpFloat64())
		g.clsDraws = append(g.clsDraws, g.rng.Float64())
	}
	g.idx = 0
}

// armNext schedules the next arrival (or a 1-second idle re-check when the
// pattern rate is non-positive) on the closure-free handler path.
func (g *Generator) armNext() {
	if g.stopped {
		return
	}
	rate := g.pattern.RPS(g.eng.Now())
	if rate <= 0 {
		// Idle: re-check for a live rate once a second, consuming no draws.
		g.idleWait = true
		g.eng.ScheduleHandler(sim.Second, g)
		return
	}
	if g.idx == len(g.expDraws) {
		g.refill()
	}
	gap := sim.Seconds2Time(g.expDraws[g.idx] / rate)
	g.eng.ScheduleHandler(gap, g)
}

// OnEvent implements sim.Handler: one arrival (or one idle re-check) fires.
func (g *Generator) OnEvent() {
	if g.stopped {
		return
	}
	if g.idleWait {
		g.idleWait = false
		g.armNext()
		return
	}
	class := g.pickFrom(g.clsDraws[g.idx])
	g.idx++
	g.Injected[class]++
	g.app.Inject(class)
	g.armNext()
}

// scheduleNext is the retained one-timer-per-arrival reference path: one
// ExpFloat64 + one Float64 + two closures per arrival. It is the ground truth
// the batched path is pinned against.
func (g *Generator) scheduleNext() {
	if g.stopped {
		return
	}
	rate := g.pattern.RPS(g.eng.Now())
	if rate <= 0 {
		// Idle: re-check for a live rate once a second.
		g.eng.Schedule(sim.Second, g.scheduleNext)
		return
	}
	gap := sim.Seconds2Time(g.rng.ExpFloat64() / rate)
	g.eng.Schedule(gap, func() {
		if g.stopped {
			return
		}
		class := g.pick()
		g.Injected[class]++
		g.app.Inject(class)
		g.scheduleNext()
	})
}

func (g *Generator) pick() string {
	return g.pickFrom(g.rng.Float64())
}

func (g *Generator) pickFrom(u float64) string {
	for i, c := range g.cum {
		if u <= c {
			return g.classes[i]
		}
	}
	return g.classes[len(g.classes)-1]
}
