// Package workload generates open-loop user load against a simulated
// application — the stand-in for the paper's Locust deployment (§VII-A).
// Arrivals follow a (possibly non-homogeneous) Poisson process; request
// classes are drawn from a weighted mix. Constant, diurnal, burst and skewed
// patterns reproduce the three load regimes of §VII-E.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"ursa/internal/services"
	"ursa/internal/sim"
)

// Pattern is a time-varying target request rate.
type Pattern interface {
	// RPS reports the target arrival rate at simulated time t.
	RPS(t sim.Time) float64
}

// Constant is a fixed-rate pattern.
type Constant struct {
	Value float64
}

// RPS implements Pattern.
func (c Constant) RPS(sim.Time) float64 { return c.Value }

// Diurnal ramps linearly from Base up to Peak at Period/2 and back down —
// the paper's "RPS first gradually increases and then gradually decreases".
// The pattern repeats every Period.
type Diurnal struct {
	Base, Peak float64
	Period     sim.Time
}

// RPS implements Pattern.
func (d Diurnal) RPS(t sim.Time) float64 {
	if d.Period <= 0 {
		return d.Base
	}
	phase := float64(t%d.Period) / float64(d.Period) // 0..1
	var frac float64
	if phase < 0.5 {
		frac = phase * 2
	} else {
		frac = (1 - phase) * 2
	}
	return d.Base + (d.Peak-d.Base)*frac
}

// Burst holds Base RPS and multiplies it by Factor during [Start, Start+Len)
// — the paper's "RPS increases sharply by 50% to 125%".
type Burst struct {
	Base   float64
	Factor float64
	Start  sim.Time
	Len    sim.Time
}

// RPS implements Pattern.
func (b Burst) RPS(t sim.Time) float64 {
	if t >= b.Start && t < b.Start+b.Len {
		return b.Base * b.Factor
	}
	return b.Base
}

// Modulate multiplies a base pattern by Factor during [Start, Start+Len) —
// sharp bursts superimposed on any underlying pattern.
type Modulate struct {
	Base   Pattern
	Factor float64
	Start  sim.Time
	Len    sim.Time
}

// RPS implements Pattern.
func (m Modulate) RPS(t sim.Time) float64 {
	r := m.Base.RPS(t)
	if t >= m.Start && t < m.Start+m.Len {
		return r * m.Factor
	}
	return r
}

// Mix is a weighted request-class mix; weights need not sum to 1.
type Mix map[string]float64

// Normalize returns classes (sorted) and cumulative probabilities.
func (m Mix) normalize() (classes []string, cum []float64) {
	for c := range m {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	total := 0.0
	for _, c := range classes {
		w := m[c]
		if w < 0 {
			panic(fmt.Sprintf("workload: negative weight for class %q", c))
		}
		total += w
	}
	if total <= 0 {
		panic("workload: mix has no positive weights")
	}
	acc := 0.0
	for _, c := range classes {
		acc += m[c] / total
		cum = append(cum, acc)
	}
	return classes, cum
}

// Scaled returns a copy of the mix with the given class's weight multiplied
// by f — how the skewed-load experiments double or halve update frequencies.
func (m Mix) Scaled(class string, f float64) Mix {
	out := Mix{}
	for c, w := range m {
		out[c] = w
	}
	if _, ok := out[class]; ok {
		out[class] *= f
	}
	return out
}

// Fraction reports the normalized weight of a class.
func (m Mix) Fraction(class string) float64 {
	total := 0.0
	for _, w := range m {
		total += w
	}
	if total <= 0 {
		return 0
	}
	return m[class] / total
}

// Generator drives Poisson arrivals of mixed request classes into an app.
type Generator struct {
	eng     *sim.Engine
	app     *services.App
	pattern Pattern
	classes []string
	cum     []float64
	rng     *rand.Rand
	stopped bool
	// Injected counts requests injected per class.
	Injected map[string]int
}

// New creates a generator; call Start to begin injecting load.
func New(eng *sim.Engine, app *services.App, pattern Pattern, mix Mix) *Generator {
	classes, cum := mix.normalize()
	return &Generator{
		eng:      eng,
		app:      app,
		pattern:  pattern,
		classes:  classes,
		cum:      cum,
		rng:      eng.RNG("workload/" + app.Spec.Name),
		Injected: map[string]int{},
	}
}

// Start begins the open-loop arrival process.
func (g *Generator) Start() {
	g.scheduleNext()
}

// Stop halts future arrivals (in-flight requests drain normally).
func (g *Generator) Stop() { g.stopped = true }

// SetPattern swaps the load pattern (takes effect from the next arrival).
func (g *Generator) SetPattern(p Pattern) { g.pattern = p }

func (g *Generator) scheduleNext() {
	if g.stopped {
		return
	}
	rate := g.pattern.RPS(g.eng.Now())
	if rate <= 0 {
		// Idle: re-check for a live rate once a second.
		g.eng.Schedule(sim.Second, g.scheduleNext)
		return
	}
	gap := sim.Seconds2Time(g.rng.ExpFloat64() / rate)
	g.eng.Schedule(gap, func() {
		if g.stopped {
			return
		}
		class := g.pick()
		g.Injected[class]++
		g.app.Inject(class)
		g.scheduleNext()
	})
}

func (g *Generator) pick() string {
	u := g.rng.Float64()
	for i, c := range g.cum {
		if u <= c {
			return g.classes[i]
		}
	}
	return g.classes[len(g.classes)-1]
}
