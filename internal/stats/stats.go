// Package stats provides the statistical machinery Ursa relies on:
// descriptive statistics, percentile estimation, Welch's t-test (used by the
// backpressure profiler to detect latency convergence and by the resource
// controller to detect threshold crossings under noise), and the random
// distributions that drive the simulated services.
package stats

import (
	"math"
	"sort"
	"sync"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// scratchPool recycles the working buffers of percentile queries so the
// metrics hot path allocates nothing in steady state. Buffers are shared
// across goroutines (experiment cells run on a worker pool), which sync.Pool
// handles; results never depend on pool state.
var scratchPool = sync.Pool{New: func() any {
	s := make([]float64, 0, 256)
	return &s
}}

// GetScratch returns a reusable empty float64 buffer. Append into it, use
// it, then hand it back with PutScratch.
func GetScratch() *[]float64 { return scratchPool.Get().(*[]float64) }

// PutScratch returns a buffer obtained from GetScratch to the pool.
func PutScratch(s *[]float64) {
	*s = (*s)[:0]
	scratchPool.Put(s)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted and is not
// modified. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	scratch := GetScratch()
	buf := append(*scratch, xs...)
	v := PercentileInPlace(buf, p)
	*scratch = buf[:0]
	PutScratch(scratch)
	return v
}

// PercentileInPlace is Percentile over a caller-owned buffer it is allowed
// to reorder: it quickselects the bracketing order statistics in expected
// O(n) instead of sorting, with no allocation. The result is identical to
// Percentile (same order statistics, same interpolation arithmetic).
func PercentileInPlace(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return selectK(xs, 0)
	}
	if p >= 100 {
		return selectK(xs, n-1)
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	v := selectK(xs, lo)
	if lo == hi {
		return v
	}
	// selectK leaves every element right of lo at or above xs[lo], so the
	// (lo+1)-th order statistic is the minimum of that tail.
	nxt := xs[lo+1]
	for _, x := range xs[lo+2:] {
		if fless(x, nxt) {
			nxt = x
		}
	}
	frac := rank - float64(lo)
	return v*(1-frac) + nxt*frac
}

// fless orders float64s exactly like sort.Float64s: ascending with NaNs
// first, so quickselect agrees with the sort-based reference on any input.
func fless(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// selectK partially reorders xs so xs[k] holds the k-th smallest element,
// everything before it is no larger and everything after it is no smaller.
// Median-of-three pivoting with three-way (Dutch-flag) partitioning keeps it
// expected O(n) even on heavily duplicated inputs.
func selectK(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if fless(xs[mid], xs[lo]) {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if fless(xs[hi], xs[lo]) {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if fless(xs[hi], xs[mid]) {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		lt, i, gt := lo, lo, hi
		for i <= gt {
			switch {
			case fless(xs[i], pivot):
				xs[lt], xs[i] = xs[i], xs[lt]
				lt++
				i++
			case fless(pivot, xs[i]):
				xs[i], xs[gt] = xs[gt], xs[i]
				gt--
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt - 1
		case k > gt:
			lo = gt + 1
		default:
			return xs[k]
		}
	}
	return xs[k]
}

// PercentileSorted is Percentile for an already ascending-sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GridPercentiles fills out[i] with the ps[i]-th percentile of xs, sorting a
// pooled copy of xs once and reading every percentile from the sorted slice.
// For k percentiles over n samples this is one O(n log n) sort instead of k
// O(n) selections (each of which also copies xs), which is what makes cached
// percentile tables over a whole grid cheap to build. Results are bit-
// identical to calling Percentile(xs, p) per entry: both read the same order
// statistics with the same interpolation arithmetic. xs is not modified; an
// empty xs yields all zeros.
func GridPercentiles(xs, ps, out []float64) {
	if len(xs) == 0 {
		for i := range ps {
			out[i] = 0
		}
		return
	}
	scratch := GetScratch()
	buf := append(*scratch, xs...)
	sort.Float64s(buf)
	for i, p := range ps {
		out[i] = PercentileSorted(buf, p)
	}
	*scratch = buf[:0]
	PutScratch(scratch)
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  PercentileSorted(sorted, 50),
		P90:  PercentileSorted(sorted, 90),
		P99:  PercentileSorted(sorted, 99),
	}
}
