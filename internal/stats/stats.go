// Package stats provides the statistical machinery Ursa relies on:
// descriptive statistics, percentile estimation, Welch's t-test (used by the
// backpressure profiler to detect latency convergence and by the resource
// controller to detect threshold crossings under noise), and the random
// distributions that drive the simulated services.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted. It returns 0
// for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile for an already ascending-sorted slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the descriptive statistics of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  PercentileSorted(sorted, 50),
		P90:  PercentileSorted(sorted, 90),
		P99:  PercentileSorted(sorted, 99),
	}
}
