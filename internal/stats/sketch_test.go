package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// sketchStream draws a deterministic stream whose shape varies by seed:
// lognormal latencies, uniform, exponential, or a bimodal mix — the
// distributions windowed latency collectors actually see.
func sketchStream(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	switch seed % 4 {
	case 0:
		ln := LogNormalFromMeanCV(100, 0.8)
		for i := range out {
			out[i] = ln.Sample(rng)
		}
	case 1:
		for i := range out {
			out[i] = 1 + 999*rng.Float64()
		}
	case 2:
		for i := range out {
			out[i] = rng.ExpFloat64() * 50
		}
	default:
		for i := range out {
			if rng.Float64() < 0.8 {
				out[i] = 10 + 5*rng.NormFloat64()
			} else {
				out[i] = 200 + 40*rng.NormFloat64()
			}
		}
	}
	return out
}

// TestSketchRelativeErrorProperty pins the sketch's headline guarantee
// across ≥40 seeds and four stream shapes: for p50/p90/p99 the sketch
// answer is within relative error α of the bracketing order statistics
// (the strict DDSketch bound), and within 2α of the interpolated exact
// percentile the rest of the repo reports (the documented tolerance in
// DESIGN.md §4e).
func TestSketchRelativeErrorProperty(t *testing.T) {
	const alpha = 0.01
	for seed := int64(1); seed <= 44; seed++ {
		xs := sketchStream(seed, 20000)
		s := NewSketch(alpha)
		for _, x := range xs {
			s.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, p := range []float64{50, 90, 99} {
			got := s.Quantile(p)
			rank := p / 100 * float64(len(xs)-1)
			lo, hi := sorted[int(rank)], sorted[int(math.Ceil(rank))]
			// Strict bound: within α of the bracketing order statistics.
			if got < lo*(1-alpha)-1e-12 || got > hi*(1+alpha)+1e-12 {
				t.Fatalf("seed %d p%v: sketch %v outside α-band of order stats [%v, %v]",
					seed, p, got, lo, hi)
			}
			// Documented tolerance vs the interpolated exact percentile.
			exact := PercentileSorted(sorted, p)
			if math.Abs(got-exact) > 2*alpha*math.Abs(exact)+1e-9 {
				t.Fatalf("seed %d p%v: sketch %v vs exact %v exceeds 2α", seed, p, got, exact)
			}
		}
	}
}

// TestSketchMergeEquivalence: sketching shards and merging is bucket-exact
// versus sketching the whole stream — the property sharded managers and
// per-window rollups rely on.
func TestSketchMergeEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		xs := sketchStream(seed, 9000)
		whole := NewSketch(0.02)
		for _, x := range xs {
			whole.Add(x)
		}
		merged := NewSketch(0.02)
		for i := 0; i < len(xs); i += 1500 {
			shard := NewSketch(0.02)
			for _, x := range xs[i : i+1500] {
				shard.Add(x)
			}
			merged.Merge(shard)
		}
		if merged.Count() != whole.Count() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			t.Fatalf("seed %d: merged count/min/max differ", seed)
		}
		for p := 0.0; p <= 100; p += 2.5 {
			if merged.Quantile(p) != whole.Quantile(p) {
				t.Fatalf("seed %d p%v: merged %v != whole %v", seed, p,
					merged.Quantile(p), whole.Quantile(p))
			}
		}
	}
}

func TestSketchSerializationRoundTrip(t *testing.T) {
	s := NewSketch(0.01)
	for _, x := range sketchStream(3, 5000) {
		s.Add(x)
	}
	s.Add(0)
	s.Add(-4.5)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != s.Count() || back.Min() != s.Min() || back.Max() != s.Max() || back.Alpha() != s.Alpha() {
		t.Fatal("round-trip lost header state")
	}
	for p := 0.0; p <= 100; p += 1 {
		if back.Quantile(p) != s.Quantile(p) {
			t.Fatalf("p%v: %v != %v after round trip", p, back.Quantile(p), s.Quantile(p))
		}
	}
	// A decoded sketch keeps working: adds and merges land in the same bins.
	back.Add(123.4)
	s.Add(123.4)
	if back.Quantile(99) != s.Quantile(99) {
		t.Fatal("decoded sketch diverged after Add")
	}
}

func TestSketchEmptyAndEdgeQuantiles(t *testing.T) {
	s := NewSketch(0.01)
	if !math.IsNaN(s.Quantile(50)) {
		t.Fatal("empty sketch should answer NaN")
	}
	s.Add(42)
	for _, p := range []float64{0, 50, 100} {
		if got := s.Quantile(p); got != 42 {
			t.Fatalf("single value p%v = %v", p, got)
		}
	}
	s2 := NewSketch(0.01)
	s2.Add(-10)
	s2.Add(0)
	s2.Add(10)
	if got := s2.Quantile(0); got != -10 {
		t.Fatalf("p0 = %v, want exact min", got)
	}
	if got := s2.Quantile(100); got != 10 {
		t.Fatalf("p100 = %v, want exact max", got)
	}
	if got := s2.Quantile(50); got != 0 {
		t.Fatalf("p50 = %v, want zero bucket", got)
	}
}

func TestSketchMergeAlphaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic merging sketches with different alpha")
		}
	}()
	a, b := NewSketch(0.01), NewSketch(0.02)
	b.Add(1)
	a.Merge(b)
}

// TestSketchCollapseKeepsHighQuantiles: with a small bucket cap the store
// collapses its lowest buckets. Quantiles that land inside the collapsed
// region lose the guarantee (by design — DDSketch trades the low tail for
// the memory cap), but quantiles above the collapse floor keep the α bound.
// 512 buckets at α=1% retain a ~2.8×10⁴ dynamic range below the max, so on
// a stream spanning 9 decades the upper half of the distribution is safe.
func TestSketchCollapseKeepsHighQuantiles(t *testing.T) {
	const alpha = 0.01
	s := NewSketchBins(alpha, 512)
	rng := rand.New(rand.NewSource(7))
	var xs []float64
	for i := 0; i < 50000; i++ {
		// 9 orders of magnitude — far more range than 512 buckets cover.
		x := math.Pow(10, rng.Float64()*9-3)
		xs = append(xs, x)
		s.Add(x)
	}
	if got := len(s.pos.bins); got > 512 {
		t.Fatalf("store grew to %d bins, cap 512", got)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, p := range []float64{75, 95, 99, 99.9} {
		got := s.Quantile(p)
		rank := p / 100 * float64(len(xs)-1)
		lo, hi := sorted[int(rank)], sorted[int(math.Ceil(rank))]
		if got < lo*(1-alpha)-1e-12 || got > hi*(1+alpha)+1e-12 {
			t.Fatalf("p%v after collapse: %v outside [%v, %v] α-band", p, got, lo, hi)
		}
	}
	// A quantile below the collapse floor still answers something sane:
	// clamped into the data range, never below the true value (collapsing
	// low buckets can only shift low quantiles upward).
	exactP1 := PercentileSorted(sorted, 1)
	if got := s.Quantile(1); got < exactP1*(1-alpha) || got > s.Max() {
		t.Fatalf("collapsed-region p1 = %v, want ≥ %v and ≤ max", got, exactP1)
	}
}

func TestSketchResetAndClone(t *testing.T) {
	s := NewSketch(0.01)
	for _, x := range sketchStream(5, 2000) {
		s.Add(x)
	}
	c := s.Clone()
	s.Reset()
	if s.Count() != 0 || !math.IsNaN(s.Quantile(50)) {
		t.Fatal("Reset left state behind")
	}
	if c.Count() != 2000 {
		t.Fatal("Clone shares state with reset original")
	}
	s.Add(5)
	if c.Quantile(50) == 5 {
		t.Fatal("Clone aliases original bins")
	}
}

func TestSketchFootprintBounded(t *testing.T) {
	s := NewSketch(0.01)
	var grew []int
	for i := 0; i < 1_000_000; i++ {
		s.Add(1 + float64(i%1000))
		if i == 1000 || i == 999_999 {
			grew = append(grew, s.FootprintBytes())
		}
	}
	if grew[1] > grew[0]*2 {
		t.Fatalf("footprint grew with sample count: %d -> %d bytes", grew[0], grew[1])
	}
}
