package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// Sketch is a mergeable quantile sketch with a relative-error guarantee, in
// the DDSketch family: values are counted into logarithmically-spaced buckets
// sized so every bucket's representative value is within a factor (1±α) of
// any value it covers. Quantile queries therefore answer within relative
// error α of the true order statistic, using memory proportional to the
// dynamic range of the data (log_γ(max/min) buckets) instead of the sample
// count. Two sketches built with the same α merge exactly — the merged
// sketch is bucket-for-bucket identical to one built over the concatenated
// stream — which is what lets per-shard or per-window summaries roll up into
// run-level percentiles without retaining raw samples.
//
// The bucket store is bounded: when the dynamic range would exceed MaxBins
// buckets, the lowest buckets collapse into one, trading accuracy at the
// low quantiles (which bounded-memory monitoring systems accept) for a hard
// memory cap. Values with magnitude below zeroThreshold are counted exactly
// in a dedicated zero bucket; negative values go to a mirrored store.
type Sketch struct {
	alpha   float64
	gamma   float64 // (1+α)/(1−α): bucket i covers (γ^(i−1), γ^i]
	lnGamma float64
	maxBins int

	pos, neg store
	zero     int64
	count    int64
	sum      float64
	min, max float64
}

// DefaultSketchBins bounds the per-store bucket count. 2048 buckets at
// α = 1% cover ~17 orders of magnitude of dynamic range — far beyond any
// latency distribution — so collapse only engages on pathological streams.
const DefaultSketchBins = 2048

// zeroThreshold is the smallest magnitude tracked logarithmically; values
// closer to zero are counted in the exact zero bucket.
const zeroThreshold = 1e-9

// NewSketch builds a sketch with relative-error bound alpha (0 < alpha < 1)
// and the default bucket cap.
func NewSketch(alpha float64) *Sketch {
	return NewSketchBins(alpha, DefaultSketchBins)
}

// NewSketchBins is NewSketch with an explicit per-store bucket cap
// (maxBins ≤ 0 means unbounded).
func NewSketchBins(alpha float64, maxBins int) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: sketch alpha %v out of (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		maxBins: maxBins,
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Alpha reports the relative-error bound the sketch was built with.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count reports the number of values added.
func (s *Sketch) Count() int64 { return s.count }

// Sum reports the running sum of added values.
func (s *Sketch) Sum() float64 { return s.sum }

// Min reports the exact minimum added value (+Inf when empty).
func (s *Sketch) Min() float64 { return s.min }

// Max reports the exact maximum added value (−Inf when empty).
func (s *Sketch) Max() float64 { return s.max }

// Add counts one value.
func (s *Sketch) Add(v float64) { s.AddN(v, 1) }

// AddN counts a value n times.
func (s *Sketch) AddN(v float64, n int64) {
	if n <= 0 {
		return
	}
	s.count += n
	s.sum += v * float64(n)
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	switch {
	case v > zeroThreshold:
		s.pos.add(s.index(v), n, s.maxBins)
	case v < -zeroThreshold:
		s.neg.add(s.index(-v), n, s.maxBins)
	default:
		s.zero += n
	}
}

// index maps a positive value to its bucket: the smallest i with γ^i ≥ v.
func (s *Sketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) / s.lnGamma))
}

// bucketValue is the representative of bucket i: the midpoint 2γ^i/(1+γ),
// within relative error α of every value in (γ^(i−1), γ^i].
func (s *Sketch) bucketValue(i int) float64 {
	return math.Exp(float64(i)*s.lnGamma) * 2 / (1 + s.gamma)
}

// Quantile reports the p-th percentile (0 ≤ p ≤ 100) of the added values,
// within relative error α of the corresponding order statistic (clamped to
// the exact [min, max]). NaN when the sketch is empty. The rank convention
// matches stats.Percentile: rank = p/100·(n−1), answered at ⌊rank⌋.
func (s *Sketch) Quantile(p float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return s.min
	}
	if p >= 100 {
		return s.max
	}
	rank := int64(p / 100 * float64(s.count-1))
	cum := int64(0)
	// Ascending value order: most-negative first (highest neg bucket), then
	// the zero bucket, then positives.
	for i := len(s.neg.bins) - 1; i >= 0; i-- {
		cum += s.neg.bins[i]
		if cum > rank {
			return s.clamp(-s.bucketValue(s.neg.offset + i))
		}
	}
	cum += s.zero
	if cum > rank {
		return s.clamp(0)
	}
	for i, c := range s.pos.bins {
		cum += c
		if cum > rank {
			return s.clamp(s.bucketValue(s.pos.offset + i))
		}
	}
	return s.max
}

func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Merge folds o into s. Both sketches must share the same α; bucket counts
// add exactly, so merging shard sketches is equivalent to sketching the
// concatenated stream. o is left unchanged.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.count == 0 {
		return
	}
	if o.alpha != s.alpha {
		panic(fmt.Sprintf("stats: merging sketches with different alpha (%v vs %v)", s.alpha, o.alpha))
	}
	s.count += o.count
	s.sum += o.sum
	s.zero += o.zero
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.pos.merge(&o.pos, s.maxBins)
	s.neg.merge(&o.neg, s.maxBins)
}

// Reset empties the sketch, keeping its α, bucket cap and bin capacity so a
// pooled scratch sketch can be reused without reallocating.
func (s *Sketch) Reset() {
	s.pos.reset()
	s.neg.reset()
	s.zero, s.count, s.sum = 0, 0, 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
}

// Clone returns an independent deep copy.
func (s *Sketch) Clone() *Sketch {
	c := *s
	c.pos.bins = append([]int64(nil), s.pos.bins...)
	c.neg.bins = append([]int64(nil), s.neg.bins...)
	return &c
}

// FootprintBytes estimates the retained heap bytes of the sketch: the fixed
// header plus the bucket arrays. It is the accounting the bounded-memory
// telemetry tests and the bytes/window benchmark report.
func (s *Sketch) FootprintBytes() int {
	const header = 14 * 8 // struct scalars + two slice headers
	return header + 8*(cap(s.pos.bins)+cap(s.neg.bins))
}

// sketchJSON is the serialized form: everything needed to reconstruct the
// sketch exactly, with bucket arrays as (offset, counts) pairs.
type sketchJSON struct {
	Alpha   float64 `json:"alpha"`
	MaxBins int     `json:"maxBins"`
	Zero    int64   `json:"zero,omitempty"`
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	PosOff  int     `json:"posOffset,omitempty"`
	Pos     []int64 `json:"pos,omitempty"`
	NegOff  int     `json:"negOffset,omitempty"`
	Neg     []int64 `json:"neg,omitempty"`
}

// MarshalJSON serializes the sketch. Infinite min/max (empty sketch) are
// encoded as nulls via the count==0 convention: decoders restore them.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	j := sketchJSON{
		Alpha: s.alpha, MaxBins: s.maxBins,
		Zero: s.zero, Count: s.count, Sum: s.sum,
		PosOff: s.pos.offset, Pos: s.pos.bins,
		NegOff: s.neg.offset, Neg: s.neg.bins,
	}
	if s.count > 0 {
		j.Min, j.Max = s.min, s.max
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a sketch serialized by MarshalJSON.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var j sketchJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Alpha <= 0 || j.Alpha >= 1 {
		return fmt.Errorf("stats: sketch alpha %v out of (0,1)", j.Alpha)
	}
	*s = *NewSketchBins(j.Alpha, j.MaxBins)
	s.zero, s.count, s.sum = j.Zero, j.Count, j.Sum
	if j.Count > 0 {
		s.min, s.max = j.Min, j.Max
	}
	s.pos = store{offset: j.PosOff, bins: append([]int64(nil), j.Pos...)}
	s.neg = store{offset: j.NegOff, bins: append([]int64(nil), j.Neg...)}
	return nil
}

// store is a contiguous run of bucket counts; bins[i] counts bucket
// offset+i. Growth extends the run; exceeding maxBins collapses the lowest
// buckets into the lowest retained one (DDSketch's collapsing strategy:
// extreme low quantiles degrade, high quantiles keep the α bound).
type store struct {
	offset int
	bins   []int64
}

func (st *store) reset() {
	for i := range st.bins {
		st.bins[i] = 0
	}
	st.bins = st.bins[:0]
	st.offset = 0
}

func (st *store) add(idx int, n int64, maxBins int) {
	if len(st.bins) == 0 {
		st.offset = idx
		st.bins = append(st.bins[:0], n)
		return
	}
	lo, hi := st.offset, st.offset+len(st.bins)-1
	switch {
	case idx < lo:
		// The lowest index the cap allows is hi−maxBins+1; grow the store
		// down to it (or to idx if that fits), then fold anything below the
		// floor into the floor bucket.
		floor := idx
		if maxBins > 0 && hi-idx+1 > maxBins {
			floor = hi - maxBins + 1
		}
		if floor < lo {
			grown := make([]int64, hi-floor+1)
			copy(grown[lo-floor:], st.bins)
			st.bins, st.offset = grown, floor
		}
		if idx < st.offset {
			st.bins[0] += n
			return
		}
	case idx > hi:
		for i := hi + 1; i <= idx; i++ {
			st.bins = append(st.bins, 0)
		}
		if maxBins > 0 && len(st.bins) > maxBins {
			st.collapseLowest(len(st.bins) - maxBins)
		}
	}
	st.bins[idx-st.offset] += n
}

// collapseLowest folds the k lowest buckets into bucket k, then drops them.
func (st *store) collapseLowest(k int) {
	var sum int64
	for i := 0; i <= k && i < len(st.bins); i++ {
		sum += st.bins[i]
	}
	st.bins[k] = sum
	st.bins = append(st.bins[:0], st.bins[k:]...)
	st.offset += k
}

func (st *store) merge(o *store, maxBins int) {
	for i, c := range o.bins {
		if c != 0 {
			st.add(o.offset+i, c, maxBins)
		}
	}
}
