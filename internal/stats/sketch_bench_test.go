package stats

import (
	"math/rand"
	"testing"
)

// benchSketch fills a sketch with a lognormal latency stream, the value
// distribution the telemetry layer actually sees.
func benchSketch(n int, seed int64) *Sketch {
	rng := rand.New(rand.NewSource(seed))
	ln := LogNormalFromMeanCV(80, 0.9)
	s := NewSketch(0.01)
	for i := 0; i < n; i++ {
		s.Add(ln.Sample(rng))
	}
	return s
}

// BenchmarkSketchAdd measures the per-sample ingest cost of the bounded-
// memory quantile sketch — the price every recorded latency pays in sketch
// telemetry mode.
func BenchmarkSketchAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ln := LogNormalFromMeanCV(80, 0.9)
	vals := make([]float64, 8192)
	for i := range vals {
		vals[i] = ln.Sample(rng)
	}
	s := NewSketch(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(vals[i&8191])
	}
}

// BenchmarkSketchMerge measures merging one window sketch into another —
// the inner loop of multi-window PercentileBetween in sketch mode.
func BenchmarkSketchMerge(b *testing.B) {
	src := benchSketch(20000, 2)
	dst := NewSketch(0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Reset()
		dst.Merge(src)
	}
}

// BenchmarkSketchQuantile measures a p99 query against a populated sketch.
func BenchmarkSketchQuantile(b *testing.B) {
	s := benchSketch(20000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Quantile(99)
	}
}
