package stats

import (
	"math"
	"math/rand"
)

// Dist is a sampleable positive distribution, used for service times.
type Dist interface {
	// Sample draws one value using the supplied RNG.
	Sample(r *rand.Rand) float64
	// Mean reports the distribution mean.
	Mean() float64
}

// LogNormal is a log-normal distribution with log-space parameters Mu and
// Sigma. Microservice CPU service times are heavy-tailed; log-normal is the
// standard model and is what gives the simulated tiers realistic p99/p50
// ratios.
type LogNormal struct {
	Mu, Sigma float64
}

// LogNormalFromMeanCV builds a log-normal with the given (linear-space)
// mean and coefficient of variation cv = std/mean.
func LogNormalFromMeanCV(mean, cv float64) LogNormal {
	if mean <= 0 {
		panic("stats: LogNormalFromMeanCV requires mean > 0")
	}
	if cv < 0 {
		panic("stats: LogNormalFromMeanCV requires cv >= 0")
	}
	s2 := math.Log(1 + cv*cv)
	return LogNormal{
		Mu:    math.Log(mean) - s2/2,
		Sigma: math.Sqrt(s2),
	}
}

// Sample draws from the distribution.
func (l LogNormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean reports exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Quantile returns the p-th percentile (0 < p < 100) of the distribution.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(l.Mu + l.Sigma*NormalQuantile(p/100))
}

// Exponential is an exponential distribution with the given Rate (1/mean),
// used for inter-arrival times of the Poisson load generators.
type Exponential struct {
	Rate float64
}

// Sample draws from the distribution.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() / e.Rate }

// Mean reports 1/rate.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

// Deterministic always returns Value; useful in tests.
type Deterministic struct {
	Value float64
}

// Sample returns the fixed value.
func (d Deterministic) Sample(*rand.Rand) float64 { return d.Value }

// Mean returns the fixed value.
func (d Deterministic) Mean() float64 { return d.Value }

// NormalQuantile returns the standard normal quantile for probability
// p ∈ (0,1), using the Acklam rational approximation (relative error
// below 1.15e-9, ample for percentile bookkeeping).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires 0 < p < 1")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
