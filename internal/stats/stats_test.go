package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); !almost(got, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice stats should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if Percentile([]float64{42}, 99) != 42 {
		t.Fatal("single-element percentile")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Abs(math.Mod(p1, 100))
		p2 = math.Abs(math.Mod(p2, 100))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		lo, hi := Percentile(xs, p1), Percentile(xs, p2)
		return lo <= hi && lo >= Min(xs) && hi <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPercentileMatchesSortReference cross-checks the quickselect-based
// Percentile against the obvious sort-then-index implementation on random
// inputs with duplicates and adversarial shapes.
func TestPercentileMatchesSortReference(t *testing.T) {
	sortRef := func(xs []float64, p float64) float64 {
		cp := append([]float64(nil), xs...)
		sort.Float64s(cp)
		return PercentileSorted(cp, p)
	}
	rng := rand.New(rand.NewSource(11))
	shapes := []func(n int) []float64{
		func(n int) []float64 { // uniform
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.Float64() * 100
			}
			return xs
		},
		func(n int) []float64 { // heavy duplicates
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(5))
			}
			return xs
		},
		func(n int) []float64 { // sorted ascending (median-of-3 stress)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		},
		func(n int) []float64 { // sorted descending
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		},
		func(n int) []float64 { // all equal
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 7.5
			}
			return xs
		},
	}
	ps := []float64{0, 1, 25, 50, 75, 90, 99, 99.9, 100}
	for si, shape := range shapes {
		for _, n := range []int{1, 2, 3, 10, 101, 1000} {
			xs := shape(n)
			for _, p := range ps {
				want := sortRef(xs, p)
				got := Percentile(xs, p)
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("shape %d n=%d p=%v: quickselect %v vs sort %v", si, n, p, got, want)
				}
			}
		}
	}
}

// TestPercentileNaNHandling pins that quickselect orders NaNs the way
// sort.Float64s does (NaNs first), so results with NaN samples match the
// historical sort-based behaviour exactly.
func TestPercentileNaNHandling(t *testing.T) {
	xs := []float64{3, math.NaN(), 1, math.NaN(), 2}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	for _, p := range []float64{0, 10, 50, 90, 100} {
		want := PercentileSorted(cp, p)
		got := Percentile(xs, p)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("p=%v: quickselect %v vs sort %v", p, got, want)
		}
	}
}

// TestPercentileInPlaceReordersOnly asserts PercentileInPlace permutes its
// input without changing the multiset of values.
func TestPercentileInPlaceReordersOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	before := append([]float64(nil), xs...)
	sort.Float64s(before)
	PercentileInPlace(xs, 95)
	after := append([]float64(nil), xs...)
	sort.Float64s(after)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("value multiset changed at %d: %v vs %v", i, before[i], after[i])
		}
	}
}

// Property: quickselect equals the sort reference on arbitrary finite input.
func TestPercentileSelectProperty(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsInf(x, 0) {
				xs = append(xs, x) // NaNs intentionally kept
			}
		}
		p = math.Abs(math.Mod(p, 100))
		cp := append([]float64(nil), xs...)
		sort.Float64s(cp)
		want := PercentileSorted(cp, p)
		got := Percentile(xs, p)
		return got == want || (math.IsNaN(got) && math.IsNaN(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	s := Summarize(xs)
	if s.N != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("Summary basics wrong: %+v", s)
	}
	if !almost(s.P50, 500.5, 1e-9) || !almost(s.P99, 990.01, 0.1) {
		t.Fatalf("Summary percentiles wrong: %+v", s)
	}
}

func TestWelchTTestKnownValue(t *testing.T) {
	// Hand-computed example:
	// a = {1..5}:  mean 3, var 2.5, n 5  → var/n = 0.5
	// b = {2,4,..10}: mean 6, var 10, n 5 → var/n = 2.0
	// t  = (3-6)/sqrt(2.5)            = -1.897366596...
	// df = 2.5² / (0.5²/4 + 2²/4)     = 6.25/1.0625 = 5.88235...
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	r := WelchTTest(a, b)
	if !almost(r.T, -3.0/math.Sqrt(2.5), 1e-12) {
		t.Fatalf("T = %v, want %v", r.T, -3.0/math.Sqrt(2.5))
	}
	if !almost(r.DF, 6.25/1.0625, 1e-12) {
		t.Fatalf("DF = %v, want %v", r.DF, 6.25/1.0625)
	}
	// t=1.897 at df≈5.88 is between the 0.10 and 0.05 two-sided critical
	// values (1.943 and 2.447 at df=6), so p must land in (0.05, 0.15).
	if r.P <= 0.05 || r.P >= 0.15 {
		t.Fatalf("P = %v, want in (0.05, 0.15)", r.P)
	}
}

func TestStudentTTailCriticalValues(t *testing.T) {
	// Standard two-sided 5% critical values: P(T > t_crit) must be 0.025.
	cases := []struct{ tcrit, df float64 }{
		{12.7062, 1}, {2.7764, 4}, {2.2281, 10}, {2.0423, 30}, {1.9600, 1e6},
	}
	for _, c := range cases {
		if got := studentTTail(c.tcrit, c.df); !almost(got, 0.025, 3e-4) {
			t.Errorf("studentTTail(%v, df=%v) = %v, want 0.025", c.tcrit, c.df, got)
		}
	}
	if studentTTail(math.Inf(1), 5) != 0 {
		t.Error("tail at +inf should be 0")
	}
	if got := studentTTail(0, 7); !almost(got, 0.5, 1e-12) {
		t.Errorf("tail at 0 = %v, want 0.5", got)
	}
}

func TestWelchTTestIdenticalSamples(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	r := WelchTTest(a, a)
	if r.P != 1 {
		t.Fatalf("identical zero-variance samples: P = %v, want 1", r.P)
	}
	if !MeansEqual(a, a, 0.05) {
		t.Fatal("MeansEqual(a,a) = false")
	}
}

func TestWelchTTestZeroVarianceDifferent(t *testing.T) {
	a := []float64{5, 5, 5}
	b := []float64{6, 6, 6}
	r := WelchTTest(a, b)
	if r.P != 0 {
		t.Fatalf("distinct constants: P = %v, want 0", r.P)
	}
}

func TestWelchTTestSmallSamples(t *testing.T) {
	if r := WelchTTest([]float64{1}, []float64{2, 3}); r.P != 1 {
		t.Fatalf("n<2 should return P=1, got %v", r.P)
	}
}

func TestMeanGreater(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	big, small := make([]float64, 50), make([]float64, 50)
	for i := range big {
		big[i] = 10 + rng.NormFloat64()
		small[i] = 5 + rng.NormFloat64()
	}
	if !MeanGreater(big, small, 0.05) {
		t.Fatal("MeanGreater(10s,5s) = false")
	}
	if MeanGreater(small, big, 0.05) {
		t.Fatal("MeanGreater(5s,10s) = true")
	}
	if MeanGreater(small, small, 0.05) {
		t.Fatal("MeanGreater(x,x) = true")
	}
}

// Property: the t-test is symmetric — swapping samples flips T and keeps P.
func TestWelchSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 10+rng.Intn(20))
		b := make([]float64, 10+rng.Intn(20))
		for i := range a {
			a[i] = rng.NormFloat64() * 3
		}
		for i := range b {
			b[i] = 1 + rng.NormFloat64()
		}
		r1, r2 := WelchTTest(a, b), WelchTTest(b, a)
		return almost(r1.T, -r2.T, 1e-9) && almost(r1.P, r2.P, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almost(got, x, 1e-10) {
			t.Fatalf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = 3x^2 - 2x^3.
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := 3*x*x - 2*x*x*x
		if got := RegIncBeta(2, 2, x); !almost(got, want, 1e-10) {
			t.Fatalf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Fatal("boundary values wrong")
	}
}

func TestNormalQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0}, {0.975, 1.959964}, {0.99, 2.326348}, {0.025, -1.959964}, {0.001, -3.090232},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almost(got, c.want, 1e-4) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestLogNormalFromMeanCV(t *testing.T) {
	ln := LogNormalFromMeanCV(10, 0.5)
	if !almost(ln.Mean(), 10, 1e-9) {
		t.Fatalf("analytic mean = %v, want 10", ln.Mean())
	}
	rng := rand.New(rand.NewSource(42))
	n := 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := ln.Sample(rng)
		if v <= 0 {
			t.Fatal("log-normal sample <= 0")
		}
		sum += v
		sumsq += v * v
	}
	m := sum / float64(n)
	sd := math.Sqrt(sumsq/float64(n) - m*m)
	if !almost(m, 10, 0.15) {
		t.Fatalf("empirical mean = %v", m)
	}
	if !almost(sd/m, 0.5, 0.05) {
		t.Fatalf("empirical cv = %v", sd/m)
	}
}

func TestLogNormalQuantileMatchesEmpirical(t *testing.T) {
	ln := LogNormalFromMeanCV(100, 1.0)
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = ln.Sample(rng)
	}
	sort.Float64s(xs)
	for _, p := range []float64{50, 90, 99} {
		emp := PercentileSorted(xs, p)
		ana := ln.Quantile(p)
		if math.Abs(emp-ana)/ana > 0.05 {
			t.Fatalf("p%v: empirical %v vs analytic %v", p, emp, ana)
		}
	}
}

func TestExponential(t *testing.T) {
	e := Exponential{Rate: 4}
	if e.Mean() != 0.25 {
		t.Fatalf("Mean = %v", e.Mean())
	}
	rng := rand.New(rand.NewSource(3))
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += e.Sample(rng)
	}
	if !almost(sum/float64(n), 0.25, 0.01) {
		t.Fatalf("empirical mean = %v", sum/float64(n))
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 7}
	if d.Sample(nil) != 7 || d.Mean() != 7 {
		t.Fatal("Deterministic broken")
	}
}

// TestGridPercentilesMatchesPercentile pins the cached-table read path: a
// grid built by one sort must be bit-identical to per-percentile quickselect
// calls, including empty input and unsorted/duplicated samples.
func TestGridPercentilesMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ps := []float64{0, 50, 75, 90, 95, 99, 99.5, 99.8, 99.9, 100}
	out := make([]float64, len(ps))
	for _, n := range []int{0, 1, 2, 7, 100, 2531} {
		xs := make([]float64, n)
		for i := range xs {
			if i%5 == 0 {
				xs[i] = float64(rng.Intn(4)) // duplicates
			} else {
				xs[i] = rng.ExpFloat64() * 50
			}
		}
		GridPercentiles(xs, ps, out)
		for i, p := range ps {
			if want := Percentile(xs, p); out[i] != want {
				t.Fatalf("n=%d p=%v: grid %v vs direct %v", n, p, out[i], want)
			}
		}
	}
}

// TestGridPercentilesDoesNotMutate pins that the input slice is untouched.
func TestGridPercentilesDoesNotMutate(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	orig := append([]float64(nil), xs...)
	out := make([]float64, 3)
	GridPercentiles(xs, []float64{10, 50, 90}, out)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("input mutated at %d: %v vs %v", i, xs, orig)
		}
	}
}
