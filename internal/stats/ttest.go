package stats

import "math"

// TTestResult reports the outcome of a Welch two-sample t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest performs Welch's unequal-variances t-test on samples a and b
// and returns the two-sided p-value for the null hypothesis that the means
// are equal. This is the test the paper uses both to detect convergence of
// the proxy latency during backpressure profiling (§III) and to decide
// threshold crossings in the resource controller (§V.4).
//
// Degenerate inputs (fewer than 2 points, or two identical zero-variance
// samples) return P = 1 so callers treat them as "no evidence of change".
func WelchTTest(a, b []float64) TTestResult {
	na, nb := float64(len(a)), float64(len(b))
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{P: 1}
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	sa, sb := va/na, vb/nb
	se := sa + sb
	if se == 0 {
		if ma == mb {
			return TTestResult{P: 1}
		}
		// Zero variance but different means: certain difference.
		return TTestResult{T: math.Inf(sign(ma - mb)), DF: na + nb - 2, P: 0}
	}
	t := (ma - mb) / math.Sqrt(se)
	df := se * se / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * studentTTail(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}
}

// MeansEqual reports whether the test fails to reject equality of means at
// significance level alpha (i.e. the samples look statistically the same).
func MeansEqual(a, b []float64, alpha float64) bool {
	return WelchTTest(a, b).P >= alpha
}

// MeanGreater reports whether the mean of a is significantly greater than
// the mean of b at one-sided significance level alpha. The resource
// controller uses this to decide that the actual load has exceeded the
// scaling threshold despite noise.
func MeanGreater(a, b []float64, alpha float64) bool {
	r := WelchTTest(a, b)
	if r.T <= 0 {
		return false
	}
	return r.P/2 < alpha
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// studentTTail returns P(T > t) for a Student-t variable with df degrees of
// freedom, t ≥ 0, via the regularized incomplete beta function.
func studentTTail(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// RegIncBeta computes the regularized incomplete beta function I_x(a, b)
// using the continued-fraction expansion (Numerical Recipes' betacf).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
