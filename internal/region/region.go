// Package region is the geo-topology subsystem: it partitions a cluster into
// named regions (node groups with their own capacity indexes), attaches
// deterministic WAN latency/jitter to cross-region RPC edges, and makes
// replica placement region-aware — replicas pin to their service's home
// region and, under the spill policy, overflow into the nearest foreign
// region when home is capacity-short. FailRegion/RecoverRegion drive the
// correlated all-nodes-at-once failure mode that distinguishes a region
// outage from the single-node faults of internal/faults.
//
// Determinism contract (the same one internal/faults keeps): installing an
// empty Topology is a no-op — no Placer, no net hook, no RNG stream — so a
// zero-region run is byte-identical to a build without this package. A
// non-empty topology draws WAN jitter from the dedicated "region/wan" stream
// and leaves every other stream untouched.
//
// WAN semantics: cross-region delay applies to nested- and event-RPC edges
// (the delivery paths that consult services.NetInjector); MQ deliveries are
// modeled as a region-local broker and stay undelayed. Delay is derived from
// the *home* regions of caller and callee services — a replica spilled into a
// foreign region keeps its service's home coordinates, a deliberate
// approximation that keeps the edge latency a pure function of the service
// pair. An inner injector (e.g. internal/faults net rules) chains behind the
// WAN hook: its delay adds, its drops drop. Install the region map after
// faults.Start so the chain composes.
package region

import (
	"fmt"
	"math/rand"
	"sort"

	"ursa/internal/cluster"
	"ursa/internal/services"
	"ursa/internal/sim"
)

// Group declares one region: a named group of nodes with given CPU
// capacities.
type Group struct {
	Name       string
	Capacities []float64
}

// Link is the WAN edge between two regions. Lookup tries From→To, then
// To→From, then the topology default — declare one direction for a symmetric
// link. Jitter spreads each delivery uniformly over [0, JitterMs).
type Link struct {
	From, To  string
	LatencyMs float64
	JitterMs  float64
}

// Topology declares a full geo-layout. The zero value (no groups) is the
// single-region world every pre-region experiment runs in.
type Topology struct {
	Groups []Group
	Links  []Link
	// DefaultLatencyMs/DefaultJitterMs apply to cross-region pairs without
	// an explicit link.
	DefaultLatencyMs float64
	DefaultJitterMs  float64
	// Bindings maps service name → home region. Services without a binding
	// default to the first declared region.
	Bindings map[string]string
	// Spill lets placement overflow into foreign regions (nearest first by
	// WAN latency, then declaration order) when the home region is
	// capacity-short. Off models independent per-region autoscalers: a
	// capacity-short region just stays short.
	Spill bool
}

// Empty reports whether the topology declares no regions.
func (t Topology) Empty() bool { return len(t.Groups) == 0 }

// Cluster builds the grouped cluster this topology describes.
func (t Topology) Cluster(strategy cluster.Strategy) *cluster.Cluster {
	groups := make([]cluster.NodeGroup, len(t.Groups))
	for i, g := range t.Groups {
		groups[i] = cluster.NodeGroup{Name: g.Name, Capacities: g.Capacities}
	}
	return cluster.NewGrouped(strategy, groups...)
}

// Map is a topology wired into a running app: the region-aware Placer, the
// WAN edge injector, and the correlated region failure driver.
type Map struct {
	eng  *sim.Engine
	app  *services.App
	cl   *cluster.Cluster
	topo Topology

	home       map[string]string   // service → home region
	order      []string            // region names, declaration order
	spillOrder map[string][]string // home → foreign regions, nearest first
	wan        map[[2]string]Link
	rng        *rand.Rand
	inner      services.NetInjector
	failed     map[string]bool

	// Spilled counts replicas placed outside their home region; WANHops
	// counts cross-region RPC deliveries that gained WAN delay.
	Spilled int
	WANHops int
}

// New validates the topology against a grouped cluster and builds the region
// map's placement state — home bindings, spill order, WAN table — without
// touching any app. The returned Map can serve PlaceReplica immediately, so
// it can be handed to services.NewAppOnClusterPlaced and then completed with
// Bind once the app exists. New rejects an empty topology; callers wanting
// the install-nothing behaviour use Install.
func New(topo Topology, cl *cluster.Cluster) (*Map, error) {
	if topo.Empty() {
		return nil, fmt.Errorf("region: empty topology")
	}
	if cl == nil {
		return nil, fmt.Errorf("region: nil cluster")
	}
	m := &Map{
		cl:         cl,
		topo:       topo,
		home:       map[string]string{},
		spillOrder: map[string][]string{},
		wan:        map[[2]string]Link{},
		failed:     map[string]bool{},
	}
	seen := map[string]int{}
	for i, g := range topo.Groups {
		if _, dup := seen[g.Name]; dup {
			return nil, fmt.Errorf("region: duplicate region %q", g.Name)
		}
		seen[g.Name] = i
		if cl.GroupNodes(g.Name) == nil {
			return nil, fmt.Errorf("region: cluster has no node group %q (build it with Topology.Cluster)", g.Name)
		}
		m.order = append(m.order, g.Name)
	}
	for _, l := range topo.Links {
		for _, end := range []string{l.From, l.To} {
			if _, ok := seen[end]; !ok {
				return nil, fmt.Errorf("region: WAN link references unknown region %q", end)
			}
		}
		m.wan[[2]string{l.From, l.To}] = l
	}
	for name, r := range topo.Bindings {
		if _, ok := seen[r]; !ok {
			return nil, fmt.Errorf("region: service %q bound to unknown region %q", name, r)
		}
		m.home[name] = r
	}
	for _, g := range topo.Groups {
		var alts []string
		for _, h := range topo.Groups {
			if h.Name != g.Name {
				alts = append(alts, h.Name)
			}
		}
		sort.SliceStable(alts, func(i, j int) bool {
			li, lj := m.link(g.Name, alts[i]).LatencyMs, m.link(g.Name, alts[j]).LatencyMs
			if li != lj {
				return li < lj
			}
			return seen[alts[i]] < seen[alts[j]]
		})
		m.spillOrder[g.Name] = alts
	}
	return m, nil
}

// Bind completes the map against a deployed app: the WAN RNG stream is
// created, the WAN injector chains in front of any existing app.Net hook
// (install after faults.Start so the chain composes), and app.Placer pins
// every future replica. Bind panics if the app is bound to a different
// cluster than the map.
func (m *Map) Bind(eng *sim.Engine, app *services.App) {
	if app.Cluster != m.cl {
		panic("region: app is bound to a different cluster than the region map")
	}
	m.eng = eng
	m.app = app
	m.rng = eng.RNG("region/wan")
	m.inner = app.Net
	app.Net = m
	app.Placer = m
}

// Install wires the topology into an already-deployed app: New + Bind.
// Installing an empty topology is a no-op and returns (nil, nil) — the
// zero-region world stays byte-identical to a build without this package.
// Replicas placed before Install keep their nodes; use Deploy (or
// NewAppOnClusterPlaced + New/Bind) when deployment-time replicas must pin
// too.
func Install(eng *sim.Engine, app *services.App, topo Topology) (*Map, error) {
	if topo.Empty() {
		return nil, nil
	}
	if app.Cluster == nil {
		return nil, fmt.Errorf("region: app %q has no bound cluster", app.Spec.Name)
	}
	m, err := New(topo, app.Cluster)
	if err != nil {
		return nil, err
	}
	m.Bind(eng, app)
	return m, nil
}

// Deploy builds the grouped cluster for the topology, deploys the app with
// region-pinned placement from the very first replica, and wires the WAN
// injector. spill enables cross-region overflow placement.
func Deploy(eng *sim.Engine, spec services.AppSpec, topo Topology, strategy cluster.Strategy, spill bool) (*services.App, *Map, error) {
	if topo.Empty() {
		return nil, nil, fmt.Errorf("region: empty topology (deploy with services.NewAppOnCluster instead)")
	}
	topo.Spill = spill
	cl := topo.Cluster(strategy)
	m, err := New(topo, cl)
	if err != nil {
		return nil, nil, err
	}
	app, err := services.NewAppOnClusterPlaced(eng, spec, cl, m)
	if err != nil {
		return nil, nil, err
	}
	m.Bind(eng, app)
	return app, m, nil
}

// MustInstall is Install, panicking on topology errors.
func MustInstall(eng *sim.Engine, app *services.App, topo Topology) *Map {
	m, err := Install(eng, app, topo)
	if err != nil {
		panic(err)
	}
	return m
}

// link resolves the WAN edge between two regions: forward, reverse, default.
func (m *Map) link(a, b string) Link {
	if l, ok := m.wan[[2]string{a, b}]; ok {
		return l
	}
	if l, ok := m.wan[[2]string{b, a}]; ok {
		return l
	}
	return Link{LatencyMs: m.topo.DefaultLatencyMs, JitterMs: m.topo.DefaultJitterMs}
}

// Regions lists region names in declaration order.
func (m *Map) Regions() []string { return m.order }

// HomeOf reports a service's home region: its explicit binding, or the first
// declared region when unbound.
func (m *Map) HomeOf(service string) string {
	if r, ok := m.home[service]; ok {
		return r
	}
	return m.order[0]
}

// Failed reports whether a region is currently failed.
func (m *Map) Failed(name string) bool { return m.failed[name] }

// PlaceReplica implements services.Placer: pin to the home region, spill to
// the nearest foreign region (by WAN latency) when home is capacity-short
// and the policy allows. The returned error is always the home region's
// capacity diagnostic, so an unschedulable event names the region that was
// actually short.
func (m *Map) PlaceReplica(service string, cpus float64) (cluster.Placement, error) {
	home := m.HomeOf(service)
	p, err := m.cl.PlaceIn(home, cpus)
	if err == nil {
		return p, nil
	}
	if m.topo.Spill {
		if _, short := err.(cluster.ErrNoCapacity); short {
			for _, alt := range m.spillOrder[home] {
				if q, err2 := m.cl.PlaceIn(alt, cpus); err2 == nil {
					m.Spilled++
					return q, nil
				}
			}
		}
	}
	return cluster.Placement{}, err
}

// Intercept implements services.NetInjector: cross-region RPC edges gain the
// link's latency plus uniform jitter from the dedicated "region/wan" stream;
// intra-region edges pass through untouched. Any inner injector (fault
// rules) chains behind: its delay adds, its drops drop.
func (m *Map) Intercept(src, dst string) (sim.Time, bool) {
	var delay sim.Time
	rs, rd := m.HomeOf(src), m.HomeOf(dst)
	if rs != rd {
		l := m.link(rs, rd)
		ms := l.LatencyMs
		if l.JitterMs > 0 {
			ms += l.JitterMs * m.rng.Float64()
		}
		if ms > 0 {
			m.WANHops++
			delay = sim.Millis2Time(ms)
		}
	}
	if m.inner != nil {
		d, drop := m.inner.Intercept(src, dst)
		if drop {
			return 0, true
		}
		delay += d
	}
	return delay, false
}

// FailRegion fails every node of the region at once: all nodes are marked
// down first — so the eviction cascade's re-placements can never land on a
// sibling that is about to fail too — then each node's resident replicas are
// crash-evicted (firing the app's OnEviction hook per node). Returns the
// number of replicas evicted.
func (m *Map) FailRegion(name string) int {
	nodes := m.cl.GroupNodes(name)
	if nodes == nil {
		panic(fmt.Sprintf("region: unknown region %q", name))
	}
	for _, n := range nodes {
		n.SetDown(true)
	}
	evicted := 0
	for _, n := range nodes {
		for _, ev := range m.app.EvictNode(n) {
			evicted += ev.Replicas
		}
	}
	m.failed[name] = true
	return evicted
}

// RecoverRegion brings every node of the region back up. Existing placements
// elsewhere are untouched; the manager's next re-solve (or scale-out) starts
// landing replicas in the region again.
func (m *Map) RecoverRegion(name string) {
	nodes := m.cl.GroupNodes(name)
	if nodes == nil {
		panic(fmt.Sprintf("region: unknown region %q", name))
	}
	for _, n := range nodes {
		n.SetDown(false)
	}
	delete(m.failed, name)
}
