package region

import (
	"math"
	"testing"

	"ursa/internal/cluster"
	"ursa/internal/services"
	"ursa/internal/sim"
)

// geoSpec: frontend (5 ms) → backend (10 ms) over nested RPC, deterministic
// compute, one replica each.
func geoSpec() services.AppSpec {
	return services.AppSpec{
		Name: "geo",
		Services: []services.ServiceSpec{
			{
				Name:            "frontend",
				Threads:         4,
				CPUs:            4,
				InitialReplicas: 1,
				Handlers: map[string][]services.Step{
					"get": services.Seq(
						services.Compute{MeanMs: 5, CV: -1},
						services.Call{Service: "backend", Mode: services.NestedRPC},
					),
				},
			},
			{
				Name:            "backend",
				Threads:         4,
				CPUs:            1,
				InitialReplicas: 1,
				Handlers: map[string][]services.Step{
					"get": services.Seq(services.Compute{MeanMs: 10, CV: -1}),
				},
			},
		},
		Classes: []services.ClassSpec{{Name: "get", Entry: "frontend", SLAPercentile: 99, SLAMillis: 500}},
	}
}

func twoRegionTopo() Topology {
	return Topology{
		Groups: []Group{
			{Name: "us-east", Capacities: []float64{8, 8}},
			{Name: "eu-west", Capacities: []float64{8}},
		},
		Links:    []Link{{From: "us-east", To: "eu-west", LatencyMs: 80}},
		Bindings: map[string]string{"frontend": "us-east", "backend": "eu-west"},
	}
}

func TestInstallEmptyTopologyIsNoOp(t *testing.T) {
	eng := sim.NewEngine(1)
	app := services.MustNewApp(eng, geoSpec())
	m, err := Install(eng, app, Topology{})
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		t.Fatal("empty topology returned a live map")
	}
	if app.Net != nil || app.Placer != nil {
		t.Fatal("empty topology installed hooks")
	}
}

func TestDeployPinsInitialReplicasToHomeRegions(t *testing.T) {
	eng := sim.NewEngine(1)
	app, m, err := Deploy(eng, geoSpec(), twoRegionTopo(), cluster.BestFit, false)
	if err != nil {
		t.Fatal(err)
	}
	cl := app.Cluster
	if got := cl.GroupUsed("us-east"); got != 4 {
		t.Fatalf("us-east used = %v, want 4 (frontend)", got)
	}
	if got := cl.GroupUsed("eu-west"); got != 1 {
		t.Fatalf("eu-west used = %v, want 1 (backend)", got)
	}
	if m.Spilled != 0 {
		t.Fatalf("spilled = %d, want 0", m.Spilled)
	}
	if m.HomeOf("frontend") != "us-east" || m.HomeOf("backend") != "eu-west" {
		t.Fatalf("homes: %s / %s", m.HomeOf("frontend"), m.HomeOf("backend"))
	}
}

func TestUnboundServiceDefaultsToFirstRegion(t *testing.T) {
	topo := twoRegionTopo()
	delete(topo.Bindings, "backend")
	eng := sim.NewEngine(1)
	app, _, err := Deploy(eng, geoSpec(), topo, cluster.BestFit, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Cluster.GroupUsed("us-east"); got != 5 {
		t.Fatalf("us-east used = %v, want 5 (both services)", got)
	}
}

func TestSpillOverflowsNearestRegionOnly(t *testing.T) {
	topo := Topology{
		Groups: []Group{
			{Name: "us", Capacities: []float64{4}},
			{Name: "ap", Capacities: []float64{8}},
			{Name: "eu", Capacities: []float64{8}},
		},
		Links: []Link{
			{From: "us", To: "eu", LatencyMs: 20},
			{From: "us", To: "ap", LatencyMs: 120},
		},
		Bindings: map[string]string{"frontend": "us", "backend": "us"},
	}
	eng := sim.NewEngine(1)
	// frontend (4 CPUs) fills us; backend (1 CPU) must spill to eu, the
	// nearest foreign region — not ap, which is declared earlier.
	app, m, err := Deploy(eng, geoSpec(), topo, cluster.BestFit, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Spilled != 1 {
		t.Fatalf("spilled = %d, want 1", m.Spilled)
	}
	if got := app.Cluster.GroupUsed("eu"); got != 1 {
		t.Fatalf("eu used = %v, want 1 (spilled backend)", got)
	}
	if got := app.Cluster.GroupUsed("ap"); got != 0 {
		t.Fatalf("ap used = %v, want 0", got)
	}
}

func TestPinnedModeRefusesSpill(t *testing.T) {
	topo := Topology{
		Groups: []Group{
			{Name: "us", Capacities: []float64{4}},
			{Name: "eu", Capacities: []float64{8}},
		},
		Bindings: map[string]string{"frontend": "us", "backend": "us"},
	}
	eng := sim.NewEngine(1)
	app, m, err := Deploy(eng, geoSpec(), topo, cluster.BestFit, false)
	if err != nil {
		t.Fatal(err)
	}
	if app.UnschedulableEvents != 1 {
		t.Fatalf("unschedulable = %d, want 1", app.UnschedulableEvents)
	}
	if m.Spilled != 0 {
		t.Fatalf("spilled = %d, want 0", m.Spilled)
	}
	if got := app.Service("backend").Replicas(); got != 0 {
		t.Fatalf("backend replicas = %d, want 0 (pinned, region full)", got)
	}
}

func TestCrossRegionRPCGainsWANLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	app, m, err := Deploy(eng, geoSpec(), twoRegionTopo(), cluster.BestFit, false)
	if err != nil {
		t.Fatal(err)
	}
	app.Inject("get")
	eng.RunUntil(sim.Second)
	lats := app.E2E.Class("get").All()
	if len(lats) != 1 {
		t.Fatalf("completed %d jobs, want 1", len(lats))
	}
	// 5 ms frontend + 80 ms WAN on the request edge + 10 ms backend; the
	// response path is not delayed.
	if math.Abs(lats[0]-95) > 1e-6 {
		t.Fatalf("latency = %v ms, want 95", lats[0])
	}
	if m.WANHops != 1 {
		t.Fatalf("WAN hops = %d, want 1", m.WANHops)
	}
}

func TestIntraRegionRPCStaysUndelayed(t *testing.T) {
	topo := twoRegionTopo()
	topo.Bindings["backend"] = "us-east"
	eng := sim.NewEngine(1)
	app, m, err := Deploy(eng, geoSpec(), topo, cluster.BestFit, false)
	if err != nil {
		t.Fatal(err)
	}
	app.Inject("get")
	eng.RunUntil(sim.Second)
	lats := app.E2E.Class("get").All()
	if len(lats) != 1 || math.Abs(lats[0]-15) > 1e-6 {
		t.Fatalf("latency = %v, want [15]", lats)
	}
	if m.WANHops != 0 {
		t.Fatalf("WAN hops = %d, want 0", m.WANHops)
	}
}

func TestWANJitterIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) float64 {
		topo := twoRegionTopo()
		topo.Links[0].JitterMs = 20
		eng := sim.NewEngine(seed)
		app, _, err := Deploy(eng, geoSpec(), topo, cluster.BestFit, false)
		if err != nil {
			t.Fatal(err)
		}
		app.Inject("get")
		eng.RunUntil(sim.Second)
		lats := app.E2E.Class("get").All()
		if len(lats) != 1 {
			t.Fatalf("completed %d jobs, want 1", len(lats))
		}
		return lats[0]
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different latencies: %v vs %v", a, b)
	}
	if a < 95 || a >= 115 {
		t.Fatalf("jittered latency %v outside [95, 115)", a)
	}
}

func TestFailRegionEvictsAndRecoverReopens(t *testing.T) {
	eng := sim.NewEngine(1)
	app, m, err := Deploy(eng, geoSpec(), twoRegionTopo(), cluster.BestFit, true)
	if err != nil {
		t.Fatal(err)
	}
	evicted := m.FailRegion("eu-west")
	if evicted != 1 {
		t.Fatalf("evicted = %d, want 1 (backend)", evicted)
	}
	if !m.Failed("eu-west") {
		t.Fatal("region not marked failed")
	}
	if got := app.Cluster.GroupUsed("eu-west"); got != 0 {
		t.Fatalf("eu-west still holds %v CPUs", got)
	}
	// Scale-out during the outage spills into the surviving region.
	app.Service("backend").SetReplicas(1)
	if m.Spilled != 1 {
		t.Fatalf("spilled = %d, want 1", m.Spilled)
	}
	if got := app.Cluster.GroupUsed("us-east"); got != 5 {
		t.Fatalf("us-east used = %v, want 5", got)
	}

	m.RecoverRegion("eu-west")
	if m.Failed("eu-west") {
		t.Fatal("region still marked failed after recovery")
	}
	// New placements pin home again.
	app.Service("backend").SetReplicas(2)
	if got := app.Cluster.GroupUsed("eu-west"); got != 1 {
		t.Fatalf("eu-west used = %v after recovery, want 1", got)
	}
}

func TestInnerInjectorChains(t *testing.T) {
	eng := sim.NewEngine(1)
	topo := twoRegionTopo()
	cl := topo.Cluster(cluster.BestFit)
	m, err := New(topo, cl)
	if err != nil {
		t.Fatal(err)
	}
	app, err := services.NewAppOnClusterPlaced(eng, geoSpec(), cl, m)
	if err != nil {
		t.Fatal(err)
	}
	app.Net = addNet{delay: sim.Millis2Time(7)}
	m.Bind(eng, app)
	d, drop := m.Intercept("frontend", "backend")
	if drop || d != sim.Millis2Time(80)+sim.Millis2Time(7) {
		t.Fatalf("chained delay = %v drop=%v, want 87ms", d, drop)
	}
	app.Net = dropNet{}
	mm, err := New(topo, cl)
	if err != nil {
		t.Fatal(err)
	}
	mm.Bind(eng, app)
	if _, drop := mm.Intercept("frontend", "backend"); !drop {
		t.Fatal("inner drop not honoured")
	}
}

type addNet struct{ delay sim.Time }

func (a addNet) Intercept(src, dst string) (sim.Time, bool) { return a.delay, false }

type dropNet struct{}

func (dropNet) Intercept(src, dst string) (sim.Time, bool) { return 0, true }
