// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize    c·x
//	subject to  A x ≤ b,  x ≥ 0
//
// It is the LP engine underneath the branch-and-bound MIP solver
// (internal/mip), which together substitute for the Gurobi dependency of the
// paper's optimization engine (§V.3).
package lp

import (
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// LP is a linear program: minimize C·x subject to A x ≤ B, x ≥ 0.
type LP struct {
	C []float64
	A [][]float64
	B []float64
}

// Result is the outcome of solving an LP.
type Result struct {
	Status Status
	X      []float64
	Obj    float64
}

const eps = 1e-9

// Solve runs two-phase simplex with Bland's anti-cycling rule.
func Solve(p LP) Result {
	m, n := len(p.A), len(p.C)
	for i, row := range p.A {
		if len(row) != n {
			panic(fmt.Sprintf("lp: row %d has %d coefficients, want %d", i, len(row), n))
		}
	}
	if len(p.B) != m {
		panic("lp: len(B) != rows of A")
	}

	// Tableau columns: [x(n) | slack(m) | artificial(k) | rhs], where the
	// k artificials cover rows with negative b.
	negRows := 0
	for _, bv := range p.B {
		if bv < -eps {
			negRows++
		}
	}
	k := negRows
	nStruct := n + m // structural columns (decision + slack)
	cols := nStruct + k + 1
	t := make([][]float64, m+1)
	for i := range t {
		t[i] = make([]float64, cols)
	}
	basis := make([]int, m)
	artRows := []int{}
	ai := 0
	for i := 0; i < m; i++ {
		copy(t[i], p.A[i])
		t[i][n+i] = 1
		t[i][cols-1] = p.B[i]
		basis[i] = n + i
		if p.B[i] < -eps {
			// Negate the row so rhs ≥ 0 (slack coefficient becomes −1) and
			// add an artificial basis variable.
			for j := 0; j < cols; j++ {
				t[i][j] = -t[i][j]
			}
			col := nStruct + ai
			t[i][col] = 1
			basis[i] = col
			artRows = append(artRows, i)
			ai++
		}
	}

	if k > 0 {
		// Phase 1: minimize the sum of artificial variables.
		obj := t[m]
		for j := range obj {
			obj[j] = 0
		}
		for a := 0; a < k; a++ {
			obj[nStruct+a] = 1
		}
		for _, i := range artRows {
			for j := 0; j < cols; j++ {
				t[m][j] -= t[i][j]
			}
		}
		if !iterate(t, basis, cols, cols-1) {
			return Result{Status: Infeasible}
		}
		if -t[m][cols-1] > 1e-7 {
			return Result{Status: Infeasible}
		}
		// Drive remaining artificial variables out of the basis where
		// possible; rows where it isn't are redundant with artificial = 0.
		for i := 0; i < m; i++ {
			if basis[i] >= nStruct {
				for j := 0; j < nStruct; j++ {
					if math.Abs(t[i][j]) > eps {
						pivot(t, basis, i, j, cols)
						break
					}
				}
			}
		}
	}

	// Phase 2: install the real objective and price out basic columns.
	obj := t[m]
	for j := range obj {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = p.C[j]
	}
	for i, bi := range basis {
		if bi < n && math.Abs(obj[bi]) > eps {
			coef := obj[bi]
			for j := 0; j < cols; j++ {
				obj[j] -= coef * t[i][j]
			}
		}
	}
	// Only structural columns may enter in phase 2.
	if !iterate(t, basis, cols, nStruct) {
		return Result{Status: Unbounded}
	}

	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = t[i][cols-1]
		}
	}
	objVal := 0.0
	for j := 0; j < n; j++ {
		objVal += p.C[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Obj: objVal}
}

// iterate runs simplex pivots until optimal (true) or unbounded (false).
// Entering candidates are restricted to columns < maxEnter.
func iterate(t [][]float64, basis []int, cols, maxEnter int) bool {
	m := len(basis)
	for iter := 0; ; iter++ {
		if iter > 200000 {
			panic("lp: iteration limit exceeded (cycling?)")
		}
		// Entering column: Bland's rule — smallest index with negative
		// reduced cost.
		enter := -1
		for j := 0; j < maxEnter; j++ {
			if t[m][j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return true
		}
		// Leaving row: minimum ratio, Bland tie-break on basis index.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][enter] > eps {
				ratio := t[i][cols-1] / t[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return false
		}
		pivot(t, basis, leave, enter, cols)
	}
}

func pivot(t [][]float64, basis []int, row, col, cols int) {
	pv := t[row][col]
	for j := 0; j < cols; j++ {
		t[row][j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if math.Abs(f) <= eps {
			t[i][col] = 0
			continue
		}
		for j := 0; j < cols; j++ {
			t[i][j] -= f * t[row][j]
		}
	}
	basis[row] = col
}
