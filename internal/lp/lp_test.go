package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleMaximization(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
	r := Solve(LP{
		C: []float64{-3, -5},
		A: [][]float64{{1, 0}, {0, 2}, {3, 2}},
		B: []float64{4, 12, 18},
	})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !near(r.Obj, -36) || !near(r.X[0], 2) || !near(r.X[1], 6) {
		t.Fatalf("got x=%v obj=%v", r.X, r.Obj)
	}
}

func TestTrivialMinimumAtOrigin(t *testing.T) {
	r := Solve(LP{C: []float64{1, 1}, A: [][]float64{{1, 1}}, B: []float64{10}})
	if r.Status != Optimal || !near(r.Obj, 0) {
		t.Fatalf("r = %+v", r)
	}
}

func TestGreaterEqualConstraint(t *testing.T) {
	// min x + 2y s.t. x + y ≥ 4 (−x − y ≤ −4), y ≤ 3 → x=4, y=0, obj 4.
	r := Solve(LP{
		C: []float64{1, 2},
		A: [][]float64{{-1, -1}, {0, 1}},
		B: []float64{-4, 3},
	})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !near(r.Obj, 4) || !near(r.X[0], 4) {
		t.Fatalf("x=%v obj=%v", r.X, r.Obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 3.
	r := Solve(LP{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -3},
	})
	if r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min −x with x ≥ 0 and only a lower-bound style constraint.
	r := Solve(LP{C: []float64{-1}, A: [][]float64{{-1}}, B: []float64{0}})
	if r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestEqualityViaTwoInequalities(t *testing.T) {
	// min 2x + 3y s.t. x + y = 5 (≤ and ≥), x ≤ 3 → y ≥ 2; pick x=3,y=2 → 12.
	r := Solve(LP{
		C: []float64{2, 3},
		A: [][]float64{{1, 1}, {-1, -1}, {1, 0}},
		B: []float64{5, -5, 3},
	})
	if r.Status != Optimal || !near(r.Obj, 12) {
		t.Fatalf("r = %+v", r)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example (with Bland's rule it must terminate).
	r := Solve(LP{
		C: []float64{-0.75, 150, -0.02, 6},
		A: [][]float64{
			{0.25, -60, -0.04, 9},
			{0.5, -90, -0.02, 3},
			{0, 0, 1, 0},
		},
		B: []float64{0, 0, 1},
	})
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !near(r.Obj, -0.05) {
		t.Fatalf("obj = %v, want -0.05", r.Obj)
	}
}

func TestRedundantConstraint(t *testing.T) {
	// Duplicate rows should not break phase 1/2.
	r := Solve(LP{
		C: []float64{1, 1},
		A: [][]float64{{-1, -1}, {-1, -1}, {1, 0}},
		B: []float64{-2, -2, 5},
	})
	if r.Status != Optimal || !near(r.Obj, 2) {
		t.Fatalf("r = %+v", r)
	}
}

// Property: on random feasible-by-construction problems, the solution
// satisfies all constraints and is at least as good as a random feasible
// point.
func TestRandomProblemsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		p := LP{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		x0 := make([]float64, n) // a known feasible point
		for j := range x0 {
			x0[j] = rng.Float64() * 5
			p.C[j] = rng.Float64()*4 - 1
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			lhs := 0.0
			for j := 0; j < n; j++ {
				p.A[i][j] = rng.Float64()*2 - 0.5
				lhs += p.A[i][j] * x0[j]
			}
			p.B[i] = lhs + rng.Float64() // slack ensures feasibility of x0
		}
		r := Solve(p)
		if r.Status == Infeasible {
			return false // x0 is feasible by construction
		}
		if r.Status == Unbounded {
			return true // possible with negative costs; fine
		}
		// Check feasibility of the reported optimum.
		for i := 0; i < m; i++ {
			lhs := 0.0
			for j := 0; j < n; j++ {
				if r.X[j] < -1e-7 {
					return false
				}
				lhs += p.A[i][j] * r.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				return false
			}
		}
		// Optimality vs. the known feasible point.
		obj0 := 0.0
		for j := 0; j < n; j++ {
			obj0 += p.C[j] * x0[j]
		}
		return r.Obj <= obj0+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Fatal("status strings wrong")
	}
}
