// Package mip solves mixed 0/1 integer programs
//
//	minimize    c·x
//	subject to  A x ≤ b,  x ≥ 0,  x_j ∈ {0,1} for j ∈ Integer
//
// by LP-relaxation branch-and-bound (the "branch-and-bound algorithm"
// reference [39] of the paper). Ursa's optimization engine uses the
// specialised one-hot solver in internal/core for speed; this generic solver
// provides the exact formulation of MIP (1) and is cross-checked against the
// specialised solver in tests.
package mip

import (
	"math"

	"ursa/internal/lp"
)

// Problem is a 0/1 mixed integer program.
type Problem struct {
	C       []float64
	A       [][]float64
	B       []float64
	Integer []bool // len == len(C); true marks binary variables
}

// Result reports the solve outcome.
type Result struct {
	Status lp.Status
	X      []float64
	Obj    float64
	Nodes  int // branch-and-bound nodes explored
}

// Solve runs depth-first branch and bound with best-first variable choice
// (most fractional binary variable).
func Solve(p Problem) Result {
	if len(p.Integer) != len(p.C) {
		panic("mip: len(Integer) != len(C)")
	}
	n := len(p.C)

	// Base relaxation: original constraints plus x_j ≤ 1 for binaries.
	baseA := make([][]float64, 0, len(p.A)+n)
	baseB := make([]float64, 0, len(p.B)+n)
	for i := range p.A {
		baseA = append(baseA, p.A[i])
		baseB = append(baseB, p.B[i])
	}
	for j := 0; j < n; j++ {
		if p.Integer[j] {
			row := make([]float64, n)
			row[j] = 1
			baseA = append(baseA, row)
			baseB = append(baseB, 1)
		}
	}

	best := Result{Status: lp.Infeasible, Obj: math.Inf(1)}
	nodes := 0

	// fixed[j]: -1 free, 0 or 1 fixed.
	var rec func(fixed []int)
	rec = func(fixed []int) {
		nodes++
		if nodes > 2_000_000 {
			panic("mip: node budget exceeded")
		}
		a := baseA
		b := baseB
		for j, v := range fixed {
			switch v {
			case 0:
				row := make([]float64, n)
				row[j] = 1
				a = append(a[:len(a):len(a)], row)
				b = append(b[:len(b):len(b)], 0)
			case 1:
				row := make([]float64, n)
				row[j] = -1
				a = append(a[:len(a):len(a)], row)
				b = append(b[:len(b):len(b)], -1)
			}
		}
		r := lp.Solve(lp.LP{C: p.C, A: a, B: b})
		if r.Status == lp.Infeasible {
			return
		}
		if r.Status == lp.Unbounded {
			// With binaries fixed/bounded this means the continuous part is
			// unbounded; propagate as the final answer.
			best = Result{Status: lp.Unbounded}
			return
		}
		if r.Obj >= best.Obj-1e-9 {
			return // bound: cannot beat incumbent
		}
		// Find the most fractional binary variable.
		branch := -1
		bestFrac := 1e-6
		for j := 0; j < n; j++ {
			if !p.Integer[j] || fixed[j] != -1 {
				continue
			}
			f := math.Abs(r.X[j] - math.Round(r.X[j]))
			if f > bestFrac {
				bestFrac = f
				branch = j
			}
		}
		if branch == -1 {
			// Integral (within tolerance): new incumbent.
			x := make([]float64, n)
			copy(x, r.X)
			for j := 0; j < n; j++ {
				if p.Integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			best = Result{Status: lp.Optimal, X: x, Obj: r.Obj}
			return
		}
		// Explore the rounded side first (often finds incumbents quickly).
		first, second := 1, 0
		if r.X[branch] < 0.5 {
			first, second = 0, 1
		}
		for _, v := range []int{first, second} {
			if best.Status == lp.Unbounded {
				return
			}
			fixed[branch] = v
			rec(fixed)
			fixed[branch] = -1
		}
	}

	fixed := make([]int, n)
	for j := range fixed {
		fixed[j] = -1
	}
	rec(fixed)
	best.Nodes = nodes
	return best
}
