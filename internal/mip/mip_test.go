package mip

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ursa/internal/lp"
)

func near(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsack(t *testing.T) {
	// max 10a + 13b + 7c s.t. 3a + 4b + 2c ≤ 6, binary → a=0? enumerate:
	// (1,0,1): w=5 v=17; (0,1,1): w=6 v=20; (1,1,0): w=7 infeasible → 20.
	r := Solve(Problem{
		C:       []float64{-10, -13, -7},
		A:       [][]float64{{3, 4, 2}},
		B:       []float64{6},
		Integer: []bool{true, true, true},
	})
	if r.Status != lp.Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !near(r.Obj, -20) || r.X[0] != 0 || r.X[1] != 1 || r.X[2] != 1 {
		t.Fatalf("x=%v obj=%v", r.X, r.Obj)
	}
}

func TestIntegralityMatters(t *testing.T) {
	// LP relaxation of max x1+x2 s.t. 2x1+2x2 ≤ 3 gives 1.5; binary gives 1.
	r := Solve(Problem{
		C:       []float64{-1, -1},
		A:       [][]float64{{2, 2}},
		B:       []float64{3},
		Integer: []bool{true, true},
	})
	if !near(r.Obj, -1) {
		t.Fatalf("obj = %v, want -1", r.Obj)
	}
}

func TestOneHotSelection(t *testing.T) {
	// Pick exactly one of three options (x1+x2+x3 = 1) minimizing cost with
	// a requirement row: value ≥ 5 where values are (3, 5, 9), costs (1,2,4).
	r := Solve(Problem{
		C: []float64{1, 2, 4},
		A: [][]float64{
			{1, 1, 1}, {-1, -1, -1}, // equality
			{-3, -5, -9}, // value ≥ 5
		},
		B:       []float64{1, -1, -5},
		Integer: []bool{true, true, true},
	})
	if r.Status != lp.Optimal || !near(r.Obj, 2) || r.X[1] != 1 {
		t.Fatalf("r = %+v", r)
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// x1 + x2 ≥ 3 with two binaries.
	r := Solve(Problem{
		C:       []float64{1, 1},
		A:       [][]float64{{-1, -1}},
		B:       []float64{-3},
		Integer: []bool{true, true},
	})
	if r.Status != lp.Infeasible {
		t.Fatalf("status = %v", r.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min 3y + x s.t. x ≥ 2.5 − 2y, x continuous ≥ 0, y binary.
	// y=1 → x ≥ 0.5 → obj 3.5; y=0 → x ≥ 2.5 → obj 2.5. Optimal y=0.
	r := Solve(Problem{
		C:       []float64{1, 3},
		A:       [][]float64{{-1, -2}},
		B:       []float64{-2.5},
		Integer: []bool{false, true},
	})
	if r.Status != lp.Optimal || !near(r.Obj, 2.5) || r.X[1] != 0 {
		t.Fatalf("r = %+v", r)
	}
}

// bruteForce enumerates all binary assignments (pure-binary problems only).
func bruteForce(p Problem) (float64, bool) {
	n := len(p.C)
	best := math.Inf(1)
	found := false
	for mask := 0; mask < 1<<n; mask++ {
		feasible := true
		for i := range p.A {
			lhs := 0.0
			for j := 0; j < n; j++ {
				if mask>>j&1 == 1 {
					lhs += p.A[i][j]
				}
			}
			if lhs > p.B[i]+1e-9 {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		obj := 0.0
		for j := 0; j < n; j++ {
			if mask>>j&1 == 1 {
				obj += p.C[j]
			}
		}
		if obj < best {
			best = obj
			found = true
		}
	}
	return best, found
}

// Property: on random pure-binary problems, B&B matches brute force.
func TestMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		p := Problem{
			C:       make([]float64, n),
			A:       make([][]float64, m),
			B:       make([]float64, m),
			Integer: make([]bool, n),
		}
		for j := 0; j < n; j++ {
			p.C[j] = math.Round(rng.Float64()*20-10) / 2
			p.Integer[j] = true
		}
		for i := 0; i < m; i++ {
			p.A[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				p.A[i][j] = math.Round(rng.Float64()*10 - 3)
			}
			p.B[i] = math.Round(rng.Float64() * 8)
		}
		want, feasible := bruteForce(p)
		got := Solve(p)
		if !feasible {
			return got.Status == lp.Infeasible
		}
		return got.Status == lp.Optimal && math.Abs(got.Obj-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeCountReported(t *testing.T) {
	r := Solve(Problem{
		C:       []float64{-1, -1, -1},
		A:       [][]float64{{2, 2, 2}},
		B:       []float64{3},
		Integer: []bool{true, true, true},
	})
	if r.Nodes < 1 {
		t.Fatalf("Nodes = %d", r.Nodes)
	}
}
