package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// profilesFile is the on-disk envelope for exploration output.
type profilesFile struct {
	Version  int                 `json:"version"`
	Profiles map[string]*Profile `json:"profiles"`
}

// SaveProfiles serialises exploration output so a deployment can reuse it
// without re-exploring (Ursa explores once per application version, §V.2).
func SaveProfiles(w io.Writer, profiles map[string]*Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(profilesFile{Version: 1, Profiles: profiles})
}

// LoadProfiles reads exploration output saved by SaveProfiles.
func LoadProfiles(r io.Reader) (map[string]*Profile, error) {
	var f profilesFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding profiles: %w", err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("core: unsupported profiles version %d", f.Version)
	}
	if f.Profiles == nil {
		return nil, fmt.Errorf("core: profiles file has no profiles")
	}
	for name, p := range f.Profiles {
		if p == nil || p.Service == "" {
			return nil, fmt.Errorf("core: profile %q is malformed", name)
		}
		p.SortPoints()
	}
	return f.Profiles, nil
}
