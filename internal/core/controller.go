package core

import (
	"math"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
)

// ControllerConfig parameterises the resource controller (§V.4).
type ControllerConfig struct {
	// Interval is the control period (one metrics window by default).
	Interval sim.Time
	// LoadWindows is how many recent windows of load feed the t-test.
	LoadWindows int
	// Alpha is the one-sided t-test significance for threshold crossings.
	Alpha float64
	// Headroom divides the LPR threshold to keep a safety margin when
	// converting load to replicas (1.0 = none).
	Headroom float64
	// DisableTTest is an ablation switch: threshold crossings are acted on
	// immediately without Welch-t-test confirmation, exposing the
	// controller to load-noise flapping (§V.4 motivates the test).
	DisableTTest bool
}

func (c *ControllerConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = sim.Minute
	}
	if c.LoadWindows <= 0 {
		c.LoadWindows = 2
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	if c.Headroom <= 0 {
		c.Headroom = 0.9
	}
}

// Controller scales each service so that no request class's load per replica
// exceeds its LPR threshold. Crossings are confirmed with Welch's t-test
// against the load samples recorded at exploration time, absorbing noise.
type Controller struct {
	cfg ControllerConfig
	app *services.App
	sol *Solution

	// DecisionCount and DecisionSeconds accumulate wall-clock cost of the
	// decision path (control-plane latency, Table VI).
	DecisionCount   int
	DecisionSeconds float64
}

// NewController builds a controller from an optimization solution.
func NewController(app *services.App, sol *Solution, cfg ControllerConfig) *Controller {
	cfg.defaults()
	return &Controller{cfg: cfg, app: app, sol: sol}
}

// SetSolution swaps in recalculated thresholds (anomaly recovery path).
func (c *Controller) SetSolution(sol *Solution) { c.sol = sol }

// Solution returns the thresholds in force.
func (c *Controller) Solution() *Solution { return c.sol }

// Tick runs one control decision for every managed service. It returns the
// replica changes applied (service → new count) for observability.
func (c *Controller) Tick() map[string]int {
	start := nowWall()
	changes := map[string]int{}
	now := c.app.Eng.Now()
	from := now - sim.Time(c.cfg.LoadWindows)*c.cfg.Interval
	if from < 0 {
		from = 0
	}
	// Sorted order: SetReplicas on cluster-bound apps places replicas as it
	// goes, so visit order must not depend on map iteration.
	for _, name := range sortedChoiceNames(c.sol) {
		choice := c.sol.Choices[name]
		svc := c.app.Service(name)
		if svc == nil {
			continue
		}
		cur := svc.Replicas()
		want := c.desiredReplicas(svc, choice, cur, from, now)
		if want != cur {
			svc.SetReplicas(want)
			changes[name] = want
		}
	}
	c.DecisionCount++
	c.DecisionSeconds += nowWall() - start
	return changes
}

// desiredReplicas computes max over classes of ceil(load / threshold), with
// t-test confirmation in both directions.
func (c *Controller) desiredReplicas(svc *services.Service, choice *Choice, cur int, from, to sim.Time) int {
	want := cur
	scaleUp := false
	needed := 1       // sized from the latest window (burst reaction)
	steadyNeeded := 1 // sized from the window mean (scale-down target)
	for class, thr := range choice.LPR {
		eff := thr * c.cfg.Headroom
		counter := svc.Arrivals[class]
		if counter == nil {
			continue
		}
		// Recent per-window service-level load samples.
		var loads []float64
		for w := from; w < to; w += c.cfg.Interval {
			loads = append(loads, counter.Rate(w, w+c.cfg.Interval))
		}
		if len(loads) == 0 {
			continue
		}
		// Size from the most recent window so sharp bursts translate into
		// replicas within one control period.
		latest := loads[len(loads)-1]
		n := int(math.Ceil(latest / eff))
		if n < 1 {
			n = 1
		}
		if n > needed {
			needed = n
		}
		if ns := int(math.Ceil(stats.Mean(loads) / eff)); ns > steadyNeeded {
			steadyNeeded = ns
		}
		// Scale-up confirmation: the per-replica load significantly
		// exceeds the recorded threshold samples (t-test), or exceeds it
		// so obviously that no statistics are needed (burst fast path).
		perReplica := make([]float64, len(loads))
		for i, l := range loads {
			perReplica[i] = l / float64(cur)
		}
		ref := choice.RateSamples[class]
		if len(ref) == 0 {
			ref = []float64{thr, thr}
		}
		refScaled := make([]float64, len(ref))
		for i, r := range ref {
			refScaled[i] = r * c.cfg.Headroom
		}
		if n > cur {
			if c.cfg.DisableTTest || latest/float64(cur) > 1.25*eff || stats.MeanGreater(perReplica, refScaled, c.cfg.Alpha) {
				scaleUp = true
			}
		}
	}
	switch {
	case needed > cur:
		if scaleUp {
			want = needed
		}
	case steadyNeeded < cur && needed < cur:
		// Scale down only when the steady load would still fit with
		// confidence: the threshold at the reduced count must significantly
		// exceed the observed per-replica load at that reduced count.
		down := steadyNeeded
		confident := true
		for class, thr := range choice.LPR {
			counter := svc.Arrivals[class]
			if counter == nil {
				continue
			}
			var perReplica []float64
			for w := from; w < to; w += c.cfg.Interval {
				perReplica = append(perReplica, counter.Rate(w, w+c.cfg.Interval)/float64(down))
			}
			if len(perReplica) == 0 {
				continue
			}
			ref := choice.RateSamples[class]
			if len(ref) == 0 {
				ref = []float64{thr, thr}
			}
			refScaled := make([]float64, len(ref))
			for i, r := range ref {
				refScaled[i] = r * c.cfg.Headroom
			}
			if !c.cfg.DisableTTest && !stats.MeanGreater(refScaled, perReplica, c.cfg.Alpha) {
				confident = false
				break
			}
		}
		if confident {
			want = down
		}
	}
	return want
}

// AvgDecisionMillis reports the mean wall-clock decision latency.
func (c *Controller) AvgDecisionMillis() float64 {
	if c.DecisionCount == 0 {
		return 0
	}
	return c.DecisionSeconds / float64(c.DecisionCount) * 1e3
}
