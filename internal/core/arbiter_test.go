package core

import (
	"sync"
	"testing"

	"ursa/internal/cluster"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// arbiterProfiles explores the mini app once per test binary: every arbiter
// test deploys clones of the same exploration output, like the fleet
// experiments do.
var (
	arbiterExploreOnce sync.Once
	arbiterProfileSet  map[string]*Profile
)

func arbiterProfiles(t *testing.T) map[string]*Profile {
	t.Helper()
	arbiterExploreOnce.Do(func() {
		e := miniExplorer()
		profiles, _, err := e.ExploreAll(fastExploreConfig())
		if err != nil {
			t.Fatal(err)
		}
		arbiterProfileSet = profiles
	})
	if arbiterProfileSet == nil {
		t.Skip("exploration failed in an earlier test")
	}
	return CloneProfiles(arbiterProfileSet)
}

func arbiterTenantSpec(name string, t *testing.T) TenantSpec {
	return TenantSpec{
		Name:     name,
		Spec:     miniExplorer().Spec,
		Profiles: arbiterProfiles(t),
		Mix:      workload.Mix{"req": 1},
		TotalRPS: 150,
	}
}

// TestArbiterAdmitsAndRefreshes drives three tenants behind one arbiter on a
// shared cluster: all admit with a positive certified demand, the steady-state
// refresh loop re-solves each tenant against live loads, and — with the fast
// path on by default — most of those re-solves are incremental.
func TestArbiterAdmitsAndRefreshes(t *testing.T) {
	eng := sim.NewEngine(42)
	cl := cluster.New(cluster.WorstFit, 64, 64, 64, 64)
	arb := NewArbiter(eng, cl)

	for _, name := range []string{"tenant-00", "tenant-01", "tenant-02"} {
		ten, err := arb.Admit(arbiterTenantSpec(name, t))
		if err != nil {
			t.Fatalf("admit %s: %v", name, err)
		}
		if ten.AdmittedCPUs <= 0 {
			t.Fatalf("admit %s: non-positive certified demand %v", name, ten.AdmittedCPUs)
		}
		gen := workload.New(eng, ten.App, workload.Constant{Value: ten.TotalRPS}, ten.Mix)
		gen.Start()
	}
	if _, err := arb.Admit(arbiterTenantSpec("tenant-00", t)); err == nil {
		t.Fatal("duplicate tenant admitted")
	}
	arb.StartRefresh(0)
	eng.RunUntil(12 * sim.Minute)
	arb.Stop()

	if got := len(arb.Tenants()); got != 3 {
		t.Fatalf("tenants = %d, want 3", got)
	}
	if arb.Tenant("tenant-01") == nil {
		t.Fatal("Tenant lookup by name failed")
	}
	if arb.AdmissionRejects != 0 {
		t.Fatalf("AdmissionRejects = %d on an uncontended cluster", arb.AdmissionRejects)
	}
	if share := arb.FastShare(); share <= 0.5 {
		t.Fatalf("FastShare = %v; steady-state refreshes should mostly hit the fast path", share)
	}
	if ms := arb.AvgDecisionMillis(); ms <= 0 {
		t.Fatalf("AvgDecisionMillis = %v", ms)
	}
	for _, ten := range arb.Tenants() {
		if ten.App.CompletedJobs() == 0 {
			t.Fatalf("tenant %s completed no jobs", ten.Name)
		}
	}
}

// TestArbiterRejectsOverCommit pins admission control: a tenant whose
// certified demand exceeds the cluster's free capacity is rejected with
// ErrAdmission, before any app is created, leaving the cluster untouched.
func TestArbiterRejectsOverCommit(t *testing.T) {
	eng := sim.NewEngine(42)
	cl := cluster.New(cluster.WorstFit, 0.5)
	arb := NewArbiter(eng, cl)

	_, err := arb.Admit(arbiterTenantSpec("tenant-00", t))
	if err == nil {
		t.Fatal("admission succeeded on a 0.5-CPU cluster")
	}
	if _, ok := err.(ErrAdmission); !ok {
		t.Fatalf("error = %v (%T), want ErrAdmission", err, err)
	}
	if arb.AdmissionRejects != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1", arb.AdmissionRejects)
	}
	if cl.TotalUsed() != 0 || len(arb.Tenants()) != 0 {
		t.Fatalf("rejected admission left residue: used=%v tenants=%d", cl.TotalUsed(), len(arb.Tenants()))
	}
}

// TestArbiterNoFastResolve pins the escape hatch end to end: tenants admitted
// with NoFastResolve run a full solve on every steady-state refresh.
func TestArbiterNoFastResolve(t *testing.T) {
	eng := sim.NewEngine(42)
	cl := cluster.New(cluster.WorstFit, 64, 64)
	arb := NewArbiter(eng, cl)

	ts := arbiterTenantSpec("tenant-00", t)
	ts.NoFastResolve = true
	ten, err := arb.Admit(ts)
	if err != nil {
		t.Fatal(err)
	}
	workload.New(eng, ten.App, workload.Constant{Value: ten.TotalRPS}, ten.Mix).Start()
	arb.StartRefresh(0)
	eng.RunUntil(8 * sim.Minute)
	arb.Stop()

	if ten.Manager.OptimizeCount < 3 {
		t.Fatalf("OptimizeCount = %d; refresh loop did not run", ten.Manager.OptimizeCount)
	}
	if arb.FastShare() != 0 {
		t.Fatalf("FastShare = %v with NoFastResolve", arb.FastShare())
	}
}

// TestArbiterFailNodeFanout drives the fleet crash path: a node failure fans
// eviction out across tenants, each tenant's manager re-places its lost
// replicas, and recovery returns the node's capacity to the index.
func TestArbiterFailNodeFanout(t *testing.T) {
	eng := sim.NewEngine(7)
	cl := cluster.New(cluster.WorstFit, 16, 16, 16)
	arb := NewArbiter(eng, cl)

	for _, name := range []string{"tenant-00", "tenant-01"} {
		ten, err := arb.Admit(arbiterTenantSpec(name, t))
		if err != nil {
			t.Fatalf("admit %s: %v", name, err)
		}
		workload.New(eng, ten.App, workload.Constant{Value: ten.TotalRPS}, ten.Mix).Start()
	}
	arb.StartRefresh(0)
	eng.RunUntil(5 * sim.Minute)

	replicas := func() int {
		total := 0
		for _, ten := range arb.Tenants() {
			for _, name := range ten.App.ServiceNames() {
				total += ten.App.Service(name).Replicas()
			}
		}
		return total
	}
	before := replicas()
	availBefore := cl.AvailableCapacity()
	var evicted int
	eng.Schedule(0, func() { evicted = arb.FailNode("node-0") })
	eng.RunUntil(5*sim.Minute + sim.Second)
	if evicted == 0 {
		t.Fatal("node failure evicted nothing; test needs replicas on node-0")
	}
	if got := cl.AvailableCapacity(); got >= availBefore {
		t.Fatalf("AvailableCapacity %v did not drop from %v after node failure", got, availBefore)
	}
	if after := replicas(); after < before {
		t.Fatalf("arbiter did not re-place evicted capacity: %d replicas before, %d after (%d evicted)",
			before, after, evicted)
	}

	arb.RecoverNode("node-0")
	if got := cl.AvailableCapacity(); got != availBefore {
		t.Fatalf("AvailableCapacity %v after recovery, want %v", got, availBefore)
	}
	arb.Stop()
}
