package core

import "ursa/internal/stats"

// This file carries the explicit form of the paper's Theorem 1, used by the
// optimizer's percentile DP and directly testable on its own:
//
//	t_c(x_c) ≤ Σ t_i(x_i)   whenever   100 − x_c ≥ Σ (100 − x_i)
//
// for a chain S_1..S_n with arbitrary (even adversarially correlated) joint
// latency distributions.

// ResidualBudgetOK reports whether a percentile decomposition satisfies the
// Theorem 1 side condition: the per-service residuals fit the end-to-end
// residual budget.
func ResidualBudgetOK(xc float64, xs []float64) bool {
	budget := 100 - xc
	used := 0.0
	for _, x := range xs {
		used += 100 - x
	}
	return used <= budget+1e-9
}

// LatencyBound computes the Theorem 1 upper bound Σ t_i(x_i) from sampled
// per-service latency distributions. It panics when the decomposition does
// not satisfy the residual condition — a bound computed from an invalid
// decomposition is not a bound.
func LatencyBound(xc float64, dists [][]float64, xs []float64) float64 {
	if len(dists) != len(xs) {
		panic("core: LatencyBound needs one percentile per distribution")
	}
	if !ResidualBudgetOK(xc, xs) {
		panic("core: percentile decomposition violates the Theorem 1 residual condition")
	}
	sum := 0.0
	for i, d := range dists {
		sum += stats.Percentile(d, xs[i])
	}
	return sum
}

// EqualSplit returns the equal-residual decomposition for a chain of length
// n at end-to-end percentile xc: every x_i = 100 − (100−x_c)/n. It always
// satisfies the residual condition with equality.
func EqualSplit(xc float64, n int) []float64 {
	out := make([]float64, n)
	share := (100 - xc) / float64(n)
	for i := range out {
		out[i] = 100 - share
	}
	return out
}
