package core

import (
	"fmt"

	"ursa/internal/cluster"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// DefaultRefreshInterval is the fleet steady-state cadence: once per metrics
// window each tenant's manager re-solves against its live loads — almost
// always served by the ReSolveEpsilon fast path under stable traffic.
const DefaultRefreshInterval = sim.Minute

// TenantSpec describes one application asking for admission to the shared
// cluster: its topology, exploration profiles, expected workload, and the
// per-tenant control configs (each tenant keeps its own SLA targets — they
// ride in the AppSpec's classes).
type TenantSpec struct {
	Name     string
	Spec     services.AppSpec
	Profiles map[string]*Profile
	Mix      workload.Mix
	TotalRPS float64

	Controller ControllerConfig
	Anomaly    AnomalyConfig

	// NoFastResolve disables the manager's incremental re-solve fast path
	// (ReSolveEpsilon = 0), forcing a full model solve on every Optimize —
	// the -no-fast-resolve escape hatch.
	NoFastResolve bool
}

// Tenant is one admitted application: its manager, its deployed app, and the
// model-certified CPU demand it claimed at admission.
type Tenant struct {
	Name         string
	Manager      *Manager
	App          *services.App
	Mix          workload.Mix
	TotalRPS     float64
	AdmittedCPUs float64
}

// ErrAdmission reports an admission rejection: the tenant's model-certified
// demand exceeds the cluster's free capacity.
type ErrAdmission struct {
	Tenant   string
	NeedCPUs float64
	FreeCPUs float64
}

func (e ErrAdmission) Error() string {
	return fmt.Sprintf("arbiter: tenant %s needs %.1f CPUs, cluster has %.1f free",
		e.Tenant, e.NeedCPUs, e.FreeCPUs)
}

// Arbiter fronts one shared cluster for many per-app managers — the
// fleet-scale control plane of ROADMAP item 1 (one resource manager
// arbitrating a large cluster across applications, as in Alibaba's elastic
// provisioning): admission control against model-certified demand, all
// placement through the one indexed cluster, per-tenant SLA management by
// each tenant's own manager, and node-failure eviction fan-out across
// tenants. It is engine-driven and deterministic, like everything else in
// the simulation.
type Arbiter struct {
	Eng     *sim.Engine
	Cluster *cluster.Cluster

	// AdmissionRejects counts tenants turned away for lack of capacity.
	AdmissionRejects int

	tenants []*Tenant
	byName  map[string]*Tenant
	refresh *sim.Ticker
}

// NewArbiter wraps a cluster in an arbiter on the given engine.
func NewArbiter(eng *sim.Engine, cl *cluster.Cluster) *Arbiter {
	return &Arbiter{Eng: eng, Cluster: cl, byName: map[string]*Tenant{}}
}

// Admit runs admission control and, on success, deploys the tenant: solve
// the tenant's performance model for its expected load, compare the
// certified CPU demand against the cluster's free capacity, and only then
// create the app and attach its manager. The admission solve is not wasted —
// the manager's deploy-time Optimize sees identical loads and is served by
// the incremental fast path. Rejection leaves the cluster untouched.
func (a *Arbiter) Admit(ts TenantSpec) (*Tenant, error) {
	if _, dup := a.byName[ts.Name]; dup {
		return nil, fmt.Errorf("arbiter: duplicate tenant %q", ts.Name)
	}
	mgr := NewManager(ts.Spec, ts.Profiles)
	if ts.NoFastResolve {
		mgr.ReSolveEpsilon = 0
	}
	sol, err := mgr.Optimize(mgr.LoadsFromMix(ts.Mix, ts.TotalRPS))
	if err != nil {
		a.AdmissionRejects++
		return nil, fmt.Errorf("arbiter: tenant %s model solve: %w", ts.Name, err)
	}
	free := a.Cluster.AvailableCapacity() - a.Cluster.TotalUsed()
	if sol.TotalCPUs > free {
		a.AdmissionRejects++
		return nil, ErrAdmission{Tenant: ts.Name, NeedCPUs: sol.TotalCPUs, FreeCPUs: free}
	}
	app, err := services.NewAppOnCluster(a.Eng, ts.Spec, a.Cluster)
	if err != nil {
		return nil, fmt.Errorf("arbiter: tenant %s deploy: %w", ts.Name, err)
	}
	if err := mgr.Run(app, ts.Mix, ts.TotalRPS, ts.Controller, ts.Anomaly); err != nil {
		return nil, fmt.Errorf("arbiter: tenant %s attach: %w", ts.Name, err)
	}
	t := &Tenant{
		Name:         ts.Name,
		Manager:      mgr,
		App:          app,
		Mix:          ts.Mix,
		TotalRPS:     ts.TotalRPS,
		AdmittedCPUs: sol.TotalCPUs,
	}
	a.tenants = append(a.tenants, t)
	a.byName[ts.Name] = t
	return t, nil
}

// StartRefresh begins the fleet steady-state loop: every interval, each
// tenant's manager re-solves against its live loads and refreshes its
// controller and detector. Under stable traffic the ReSolveEpsilon fast
// path serves these; a tenant whose load drifted past ε falls back to a
// full solve on its own — no cross-tenant coupling.
func (a *Arbiter) StartRefresh(interval sim.Time) {
	if interval <= 0 {
		interval = DefaultRefreshInterval
	}
	a.refresh = a.Eng.Every(interval, func() {
		for _, t := range a.tenants {
			live := t.Manager.LiveLoads(t.App, 3)
			if len(live) == 0 {
				continue
			}
			if sol, err := t.Manager.Optimize(live); err == nil {
				t.Manager.Controller.SetSolution(sol)
				t.Manager.Detector.SetSolution(sol)
			}
		}
	})
}

// FailNode marks a node down and fans the eviction out to every tenant in
// admission order. Each affected app's OnEviction hook (installed by its
// manager's Run) re-solves against live loads and re-places the lost
// replicas on the remaining capacity immediately. Returns the total
// replicas evicted across tenants.
func (a *Arbiter) FailNode(name string) int {
	n := a.Cluster.NodeByName(name)
	if n == nil {
		panic(fmt.Sprintf("arbiter: unknown node %q", name))
	}
	n.SetDown(true)
	evicted := 0
	for _, t := range a.tenants {
		for _, ev := range t.App.EvictNode(n) {
			evicted += ev.Replicas
		}
	}
	return evicted
}

// RecoverNode returns a failed node's capacity to the placement index.
func (a *Arbiter) RecoverNode(name string) {
	n := a.Cluster.NodeByName(name)
	if n == nil {
		panic(fmt.Sprintf("arbiter: unknown node %q", name))
	}
	n.SetDown(false)
}

// Tenants lists admitted tenants in admission order.
func (a *Arbiter) Tenants() []*Tenant { return a.tenants }

// Tenant finds an admitted tenant by name (nil if unknown).
func (a *Arbiter) Tenant(name string) *Tenant { return a.byName[name] }

// AvgDecisionMillis reports the mean wall-clock control-plane decision
// latency across every tenant manager, weighted by decision count.
func (a *Arbiter) AvgDecisionMillis() float64 {
	count := 0
	seconds := 0.0
	for _, t := range a.tenants {
		m := t.Manager
		count += m.OptimizeCount
		seconds += m.OptimizeSeconds
		if m.Controller != nil {
			count += m.Controller.DecisionCount
			seconds += m.Controller.DecisionSeconds
		}
	}
	if count == 0 {
		return 0
	}
	return seconds / float64(count) * 1e3
}

// FastShare reports the fraction of model solves across the fleet served by
// the incremental fast path.
func (a *Arbiter) FastShare() float64 {
	fast, total := 0, 0
	for _, t := range a.tenants {
		fast += t.Manager.FastResolveCount
		total += t.Manager.OptimizeCount
	}
	if total == 0 {
		return 0
	}
	return float64(fast) / float64(total)
}

// UnschedulableEvents sums failed placements across tenant apps.
func (a *Arbiter) UnschedulableEvents() int {
	n := 0
	for _, t := range a.tenants {
		n += t.App.UnschedulableEvents
	}
	return n
}

// Stop halts the refresh loop and every tenant manager.
func (a *Arbiter) Stop() {
	if a.refresh != nil {
		a.refresh.Stop()
		a.refresh = nil
	}
	for _, t := range a.tenants {
		t.Manager.Stop()
	}
}
