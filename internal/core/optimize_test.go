package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ursa/internal/stats"
)

// syntheticProfile builds a profile whose points have deterministic latency
// distributions: constSamples(v) yields every percentile == v.
func constSamples(v float64) []float64 {
	out := make([]float64, 200)
	for i := range out {
		out[i] = v
	}
	return out
}

func syntheticProfile(service string, cpus float64, pts ...LPRPoint) *Profile {
	p := &Profile{Service: service, CPUsPerReplica: cpus, BackpressureUtil: 0.7, Points: pts}
	p.SortPoints()
	return p
}

func point(replicas int, lpr float64, latMs float64, classes ...string) LPRPoint {
	pt := LPRPoint{
		Replicas:    replicas,
		LPR:         map[string]float64{},
		RateSamples: map[string][]float64{},
		Latency:     map[string][]float64{},
	}
	for _, c := range classes {
		pt.LPR[c] = lpr
		pt.RateSamples[c] = []float64{lpr * 0.95, lpr, lpr * 1.05}
		pt.Latency[c] = constSamples(latMs)
	}
	return pt
}

// twoServiceModel: chain a → b for class "req" (p99 ≤ target). Each service
// has a cheap/slow and an expensive/fast operating point.
func twoServiceModel(targetMs float64) *Model {
	return &Model{
		Profiles: map[string]*Profile{
			"a": syntheticProfile("a", 2,
				point(2, 50, 10, "req"), // LPR 50 → 10ms at every percentile
				point(1, 100, 40, "req"),
			),
			"b": syntheticProfile("b", 4,
				point(2, 50, 15, "req"),
				point(1, 100, 60, "req"),
			),
		},
		Targets: []ClassTarget{{
			Name: "req", Percentile: 99, TargetMs: targetMs,
			Path: []PathVisit{{Service: "a", Class: "req", Count: 1}, {Service: "b", Class: "req", Count: 1}},
		}},
		Loads: map[string]map[string]float64{
			"a": {"req": 100},
			"b": {"req": 100},
		},
	}
}

func TestSolvePicksCheapestFeasible(t *testing.T) {
	// Loose target: both services can run at high LPR (cheap).
	m := twoServiceModel(150)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Cheapest: a at LPR 100 (1 replica × 2 cpus), b at LPR 100 (1 × 4).
	if got := sol.TotalCPUs; math.Abs(got-6) > 1e-9 {
		t.Fatalf("TotalCPUs = %v, want 6", got)
	}
	if sol.Choices["a"].LPR["req"] != 100 || sol.Choices["b"].LPR["req"] != 100 {
		t.Fatalf("choices = a:%v b:%v", sol.Choices["a"].LPR, sol.Choices["b"].LPR)
	}
	if sol.BoundMs["req"] > 150 {
		t.Fatalf("bound %v exceeds target", sol.BoundMs["req"])
	}
}

func TestSolveUpgradesUnderTightTarget(t *testing.T) {
	// Tight target 60ms: high-LPR combo gives 100ms (infeasible); the
	// solver must upgrade. Upgrading a (2cpus extra) gives 40+15... wait:
	// combos: (10,15)=25 cost 4+8=12; (10,60)=70 ✗; (40,15)=55 cost 2+8=10;
	// (40,60)=100 ✗. Feasible: 25@12 and 55@10 → cheapest 55 at cost 10.
	m := twoServiceModel(60)
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.TotalCPUs-10) > 1e-9 {
		t.Fatalf("TotalCPUs = %v, want 10", sol.TotalCPUs)
	}
	if sol.Choices["a"].LPR["req"] != 100 || sol.Choices["b"].LPR["req"] != 50 {
		t.Fatalf("wrong upgrade: a:%v b:%v", sol.Choices["a"].LPR, sol.Choices["b"].LPR)
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := twoServiceModel(20) // best possible is 25ms
	if _, err := m.Solve(); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestSolveResidualBudget(t *testing.T) {
	// Distributions where the percentile choice matters: latency grows
	// steeply with percentile. With x=99 (budget 10 units) across 2
	// services, choices like (99, 99.9)... must keep Σ residuals ≤ 1%.
	grad := func(base float64) []float64 {
		// Sorted samples 1..1000 scaled: p50=base, p99.9≈2×base.
		out := make([]float64, 1000)
		for i := range out {
			out[i] = base * (0.5 + 1.5*float64(i)/999)
		}
		return out
	}
	pa := LPRPoint{Replicas: 1, LPR: map[string]float64{"req": 100},
		RateSamples: map[string][]float64{"req": {100}},
		Latency:     map[string][]float64{"req": grad(10)}}
	pb := LPRPoint{Replicas: 1, LPR: map[string]float64{"req": 100},
		RateSamples: map[string][]float64{"req": {100}},
		Latency:     map[string][]float64{"req": grad(20)}}
	m := &Model{
		Profiles: map[string]*Profile{
			"a": syntheticProfile("a", 1, pa),
			"b": syntheticProfile("b", 1, pb),
		},
		Targets: []ClassTarget{{
			Name: "req", Percentile: 99, TargetMs: 1e6,
			Path: []PathVisit{{Service: "a", Class: "req", Count: 1}, {Service: "b", Class: "req", Count: 1}},
		}},
		Loads: map[string]map[string]float64{"a": {"req": 50}, "b": {"req": 50}},
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	percs := sol.PercentileChoice["req"]
	if len(percs) != 2 {
		t.Fatalf("percentile choices = %v", percs)
	}
	budget := 0.0
	for _, p := range percs {
		if p < 99 {
			t.Fatalf("percentile %v below feasible range for 1%% budget", p)
		}
		budget += 100 - p
	}
	if budget > 1.0+1e-9 {
		t.Fatalf("residual budget violated: Σ(100-x_i) = %v > 1", budget)
	}
}

func TestOptionCostEquation3(t *testing.T) {
	// r_i = max_j(A_j / a_j) × u_i with two classes.
	pt := LPRPoint{LPR: map[string]float64{"x": 10, "y": 40}}
	m := &Model{
		Profiles: map[string]*Profile{"s": {Service: "s", CPUsPerReplica: 3}},
		Loads:    map[string]map[string]float64{"s": {"x": 25, "y": 60}},
	}
	cost, ok := m.optionCost("s", &pt)
	if !ok {
		t.Fatal("option rejected")
	}
	// max(25/10, 60/40) = 2.5 replicas × 3 cpus = 7.5.
	if math.Abs(cost-7.5) > 1e-9 {
		t.Fatalf("cost = %v, want 7.5", cost)
	}
}

func TestOptionCostRejectsUnobservedClass(t *testing.T) {
	pt := LPRPoint{LPR: map[string]float64{"x": 10}}
	m := &Model{
		Profiles: map[string]*Profile{"s": {Service: "s", CPUsPerReplica: 1}},
		Loads:    map[string]map[string]float64{"s": {"x": 5, "novel": 3}},
	}
	if _, ok := m.optionCost("s", &pt); ok {
		t.Fatal("option with unobserved loaded class must be rejected")
	}
}

func TestMultiClassSolve(t *testing.T) {
	// One shared service handles two classes with different SLAs; the
	// binding class forces the upgrade.
	shared := syntheticProfile("shared", 2,
		point(2, 20, 30, "fast", "slow"),
		point(1, 40, 120, "fast", "slow"),
	)
	m := &Model{
		Profiles: map[string]*Profile{"shared": shared},
		Targets: []ClassTarget{
			{Name: "fast", Percentile: 99, TargetMs: 50,
				Path: []PathVisit{{Service: "shared", Class: "fast", Count: 1}}},
			{Name: "slow", Percentile: 99, TargetMs: 500,
				Path: []PathVisit{{Service: "shared", Class: "slow", Count: 1}}},
		},
		Loads: map[string]map[string]float64{"shared": {"fast": 10, "slow": 10}},
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// The fast class's 50ms target rules out the 120ms point.
	if sol.Choices["shared"].LPR["fast"] != 20 {
		t.Fatalf("choice = %+v", sol.Choices["shared"])
	}
}

func TestVisitCountsScaleLatency(t *testing.T) {
	// A service visited twice contributes 2×D; target between 1× and 2×
	// must be infeasible.
	m := &Model{
		Profiles: map[string]*Profile{
			"s": syntheticProfile("s", 1, point(1, 10, 30, "req")),
		},
		Targets: []ClassTarget{{
			Name: "req", Percentile: 99, TargetMs: 45,
			Path: []PathVisit{{Service: "s", Class: "req", Count: 2}},
		}},
		Loads: map[string]map[string]float64{"s": {"req": 5}},
	}
	if _, err := m.Solve(); err == nil {
		t.Fatal("2×30ms=60ms should violate a 45ms target")
	}
}

func TestEstimateBound(t *testing.T) {
	dists := map[string][]float64{
		"a/req": constSamples(10),
		"b/req": constSamples(25),
	}
	tgt := ClassTarget{
		Name: "req", Percentile: 99, TargetMs: 0,
		Path: []PathVisit{{Service: "a", Class: "req", Count: 1}, {Service: "b", Class: "req", Count: 1}},
	}
	bound, ok := EstimateBound(tgt, dists)
	if !ok {
		t.Fatal("estimate failed")
	}
	if math.Abs(bound-35) > 1e-9 {
		t.Fatalf("bound = %v, want 35 (constant dists)", bound)
	}
	// Missing distribution → not ok.
	if _, ok := EstimateBound(tgt, map[string][]float64{"a/req": constSamples(1)}); ok {
		t.Fatal("estimate with missing dist should fail")
	}
}

// TestTheorem1Property validates the paper's Theorem 1 empirically: for a
// chain where e2e = Σ per-service latencies (with correlated or independent
// components), the x_c-th e2e percentile is bounded by Σ t_i(x_i) whenever
// Σ(100−x_i) ≤ 100−x_c.
func TestTheorem1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // services
		N := 4000            // requests
		per := make([][]float64, n)
		for i := range per {
			per[i] = make([]float64, N)
		}
		e2e := make([]float64, N)
		correlated := rng.Intn(2) == 1
		for k := 0; k < N; k++ {
			common := rng.ExpFloat64()
			for i := 0; i < n; i++ {
				v := rng.ExpFloat64() * float64(i+1)
				if correlated {
					v += common * float64(i+1) // strong positive correlation
				}
				per[i][k] = v
				e2e[k] += v
			}
		}
		// Random residual split: x_c = 99, Σ(100−x_i) ≤ 1.
		xc := 99.0
		budget := 100 - xc
		xs := make([]float64, n)
		remaining := budget
		for i := 0; i < n; i++ {
			share := remaining / float64(n-i)
			xs[i] = 100 - share
			remaining -= share
		}
		bound := 0.0
		for i := 0; i < n; i++ {
			sort.Float64s(per[i])
			bound += stats.PercentileSorted(per[i], xs[i])
		}
		actual := stats.Percentile(e2e, xc)
		// Allow a hair of sampling tolerance.
		return actual <= bound*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLoadTargetsDropped(t *testing.T) {
	// A declared class with zero load must not constrain (or break) the
	// solve even though no exploration data exists for it.
	m := twoServiceModel(150)
	m.Targets = append(m.Targets, ClassTarget{
		Name: "ghost", Percentile: 99, TargetMs: 1,
		Path: []PathVisit{{Service: "a", Class: "ghost", Count: 1}},
	})
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sol.BoundMs["ghost"]; ok {
		t.Fatal("ghost class should not be certified")
	}
	if sol.BoundMs["req"] <= 0 {
		t.Fatal("active class lost its bound")
	}
}
