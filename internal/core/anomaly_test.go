package core

import (
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// twoClassApp serves two classes at one service, for ratio-deviation tests.
func twoClassApp() services.AppSpec {
	return services.AppSpec{
		Name: "two-class",
		Services: []services.ServiceSpec{{
			Name: "api", Threads: 4096, CPUs: 4, InitialReplicas: 4,
			IngressCostMs: 0.1, IngressWindow: 32,
			Handlers: map[string][]services.Step{
				"a": services.Seq(services.Compute{MeanMs: 2, CV: 0.3}),
				"b": services.Seq(services.Compute{MeanMs: 2, CV: 0.3}),
			},
		}},
		Classes: []services.ClassSpec{
			{Name: "a", Entry: "api", SLAPercentile: 99, SLAMillis: 50},
			{Name: "b", Entry: "api", SLAPercentile: 99, SLAMillis: 50},
		},
	}
}

func anomalyFixture(t *testing.T, mix workload.Mix, seed int64) (*sim.Engine, *services.App, *Detector) {
	t.Helper()
	eng := sim.NewEngine(seed)
	app := services.MustNewApp(eng, twoClassApp())
	sol := &Solution{Choices: map[string]*Choice{
		"api": {
			Service: "api",
			// Thresholds tuned for a balanced 1:1 mix.
			LPR: map[string]float64{"a": 25, "b": 25},
		},
	}}
	det := NewDetector(app, sol, TargetsFor(app.Spec), AnomalyConfig{
		Interval: sim.Minute, RatioDeviation: 1.5, SLAViolationFreq: 0.2, HistoryWindows: 3,
	})
	gen := workload.New(eng, app, workload.Constant{Value: 100}, mix)
	gen.Start()
	return eng, app, det
}

func TestRatioDeviationBalancedMix(t *testing.T) {
	eng, _, det := anomalyFixture(t, workload.Mix{"a": 1, "b": 1}, 51)
	eng.RunUntil(4 * sim.Minute)
	dev := det.RequestRatioDeviation("api", sim.Minute, 4*sim.Minute)
	if dev > 1.2 {
		t.Fatalf("balanced mix deviation = %v, want ≈1", dev)
	}
	det.Tick()
	for _, ev := range det.Events {
		if ev.Kind == "load" {
			t.Fatalf("false load anomaly: %+v", ev)
		}
	}
}

func TestRatioDeviationSkewedMixTriggers(t *testing.T) {
	eng, _, det := anomalyFixture(t, workload.Mix{"a": 9, "b": 1}, 52)
	recalcs := 0
	det.Recalculate = func(sim.Time, string) { recalcs++ }
	eng.RunUntil(4 * sim.Minute)
	dev := det.RequestRatioDeviation("api", sim.Minute, 4*sim.Minute)
	if dev < 1.5 {
		t.Fatalf("skewed mix deviation = %v, want > 1.5", dev)
	}
	det.Tick()
	if recalcs == 0 {
		t.Fatal("skewed mix did not trigger recalculation")
	}
}

func TestLatencyAnomalyTriggersReexplore(t *testing.T) {
	eng, app, det := anomalyFixture(t, workload.Mix{"a": 1, "b": 1}, 53)
	var reexplored []string
	det.Reexplore = func(_ sim.Time, class string) { reexplored = append(reexplored, class) }
	// Throttle the service so SLAs blow up (0.04 cores per replica makes a
	// single 2ms burst take ≥50ms, the SLA).
	app.Service("api").SetCPUFactor(0.01)
	eng.RunUntil(4 * sim.Minute)
	det.Tick()
	if len(reexplored) == 0 {
		t.Fatal("sustained SLA violations did not trigger re-exploration")
	}
	found := false
	for _, ev := range det.Events {
		if ev.Kind == "latency" && ev.Value > 0.2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no latency event recorded: %+v", det.Events)
	}
}

func TestHealthyDeploymentNoEvents(t *testing.T) {
	eng, _, det := anomalyFixture(t, workload.Mix{"a": 1, "b": 1}, 54)
	eng.RunUntil(4 * sim.Minute)
	det.Tick()
	if len(det.Events) != 0 {
		t.Fatalf("healthy run produced events: %+v", det.Events)
	}
}
