package core

import (
	"testing"

	"ursa/internal/cluster"
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/workload"
)

// TestManagerEndToEnd drives the full Ursa pipeline on the mini app:
// exploration → optimization → deployment under a diurnal load, checking
// that the system scales with load and holds the SLA.
func TestManagerEndToEnd(t *testing.T) {
	e := miniExplorer()
	profiles, _, err := e.ExploreAll(fastExploreConfig())
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine(99)
	app := services.MustNewApp(eng, e.Spec)
	mgr := NewManager(e.Spec, profiles)
	mix := workload.Mix{"req": 1}
	if err := mgr.Run(app, mix, 150, ControllerConfig{}, AnomalyConfig{}); err != nil {
		t.Fatal(err)
	}
	gen := workload.New(eng, app, workload.Diurnal{Base: 80, Peak: 400, Period: 40 * sim.Minute}, mix)
	gen.Start()

	minReps, maxReps := 1<<30, 0
	probe := eng.Every(sim.Minute, func() {
		r := app.Service("back").Replicas()
		if r < minReps {
			minReps = r
		}
		if r > maxReps {
			maxReps = r
		}
	})
	eng.RunUntil(40 * sim.Minute)
	probe.Stop()
	mgr.Stop()

	if maxReps <= minReps {
		t.Fatalf("no scaling under diurnal load: replicas stayed at %d", minReps)
	}

	// SLA violation rate over per-minute windows must be low.
	rec := app.E2E.Class("req")
	total, violated := 0, 0
	for w := 2 * sim.Minute; w < 40*sim.Minute; w += sim.Minute {
		vals := rec.Between(w, w+sim.Minute)
		if len(vals) == 0 {
			continue
		}
		total++
		if stats.Percentile(vals, 99) > 60 {
			violated++
		}
	}
	if total == 0 {
		t.Fatal("no traffic measured")
	}
	rate := float64(violated) / float64(total)
	if rate > 0.15 {
		t.Fatalf("SLA violation rate %.1f%% too high under Ursa", rate*100)
	}

	if mgr.OptimizeCount == 0 || mgr.AvgOptimizeMillis() <= 0 {
		t.Fatal("optimizer accounting missing")
	}
	if mgr.Controller.DecisionCount == 0 {
		t.Fatal("controller never ticked")
	}
}

// TestManagerRecalculateOnSkew checks the anomaly-recovery path: a skewed
// mix triggers recalculation with live loads.
func TestManagerRecalculateOnSkew(t *testing.T) {
	spec := twoClassApp()
	e := &Explorer{
		Spec:       spec,
		Mix:        workload.Mix{"a": 1, "b": 1},
		TotalRPS:   100,
		Thresholds: map[string]float64{"api": 0.7},
	}
	profiles, _, err := e.ExploreAll(fastExploreConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(100)
	app := services.MustNewApp(eng, spec)
	mgr := NewManager(spec, profiles)
	if err := mgr.Run(app, workload.Mix{"a": 1, "b": 1}, 100,
		ControllerConfig{}, AnomalyConfig{Interval: 2 * sim.Minute, RatioDeviation: 1.4}); err != nil {
		t.Fatal(err)
	}
	// Deploy with a heavily skewed live mix instead.
	gen := workload.New(eng, app, workload.Constant{Value: 100}, workload.Mix{"a": 9, "b": 1})
	gen.Start()
	eng.RunUntil(15 * sim.Minute)
	mgr.Stop()
	if mgr.OptimizeCount < 2 {
		t.Fatalf("skewed mix did not trigger recalculation: optimize count = %d", mgr.OptimizeCount)
	}
	if len(mgr.Detector.Events) == 0 {
		t.Fatal("no anomaly events recorded")
	}
}

func TestOptimizeIncrementalFastPath(t *testing.T) {
	mgr := &Manager{
		Profiles: twoServiceModel(150).Profiles,
		Targets:  twoServiceModel(150).Targets,
	}
	mgr.ReSolveEpsilon = 0.1
	loads := map[string]map[string]float64{"a": {"req": 100}, "b": {"req": 100}}
	full, err := mgr.Optimize(loads)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.FastResolveCount != 0 {
		t.Fatalf("first solve must be full, FastResolveCount=%d", mgr.FastResolveCount)
	}

	// Loads move by 5% (< ε): fast path, same picks and bounds, refreshed
	// costs.
	moved := map[string]map[string]float64{"a": {"req": 105}, "b": {"req": 105}}
	fast, err := mgr.Optimize(moved)
	if err != nil {
		t.Fatal(err)
	}
	if mgr.FastResolveCount != 1 {
		t.Fatalf("expected fast-path hit, FastResolveCount=%d", mgr.FastResolveCount)
	}
	ref, err := (&Model{Profiles: mgr.Profiles, Targets: mgr.Targets, Loads: moved}).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if fast.TotalCPUs != ref.TotalCPUs {
		t.Fatalf("fast-path TotalCPUs %v != full solve %v", fast.TotalCPUs, ref.TotalCPUs)
	}
	for name, ch := range ref.Choices {
		got := fast.Choices[name]
		if got == nil || got.PointIndex != ch.PointIndex || got.CostCPUs != ch.CostCPUs {
			t.Fatalf("fast-path choice %s = %+v, want %+v", name, got, ch)
		}
	}
	if fast.BoundMs["req"] != full.BoundMs["req"] {
		t.Fatalf("fast path changed the certified bound: %v vs %v", fast.BoundMs["req"], full.BoundMs["req"])
	}

	// Loads move by 50% (≥ ε): full solve again.
	big := map[string]map[string]float64{"a": {"req": 150}, "b": {"req": 150}}
	if _, err := mgr.Optimize(big); err != nil {
		t.Fatal(err)
	}
	if mgr.FastResolveCount != 1 {
		t.Fatalf("large move must miss the fast path, FastResolveCount=%d", mgr.FastResolveCount)
	}

	// A changed support set (new loaded class) forces a full solve.
	if mgr.lastSol == nil {
		t.Fatal("full solve did not refresh the incumbent")
	}
	withGhost := map[string]map[string]float64{"a": {"req": 150, "ghost": 1}, "b": {"req": 150}}
	if _, err := mgr.Optimize(withGhost); err == nil {
		// The ghost class has no explored LPR entry, so the model errors —
		// which is precisely why support changes must not take the fast path.
		t.Fatal("expected full solve to reject the unexplored class")
	}
	if mgr.FastResolveCount != 1 {
		t.Fatalf("support change must miss the fast path, FastResolveCount=%d", mgr.FastResolveCount)
	}

	// A swapped profile pointer invalidates the incumbent.
	loads2 := map[string]map[string]float64{"a": {"req": 150}, "b": {"req": 150}}
	if _, err := mgr.Optimize(loads2); err != nil { // re-establish incumbent
		t.Fatal(err)
	}
	mgr.Profiles["a"] = mgr.Profiles["a"].Clone()
	if _, err := mgr.Optimize(loads2); err != nil {
		t.Fatal(err)
	}
	if mgr.FastResolveCount != 1 {
		t.Fatalf("profile swap must miss the fast path, FastResolveCount=%d", mgr.FastResolveCount)
	}
}

// TestOptimizeFastPathOffForZeroValue pins the escape hatch: a zero-value
// Manager literal (ReSolveEpsilon 0) must run a full solve on every Optimize.
func TestOptimizeFastPathOffForZeroValue(t *testing.T) {
	m := twoServiceModel(150)
	mgr := &Manager{Profiles: m.Profiles, Targets: m.Targets}
	loads := map[string]map[string]float64{"a": {"req": 100}, "b": {"req": 100}}
	for i := 0; i < 3; i++ {
		if _, err := mgr.Optimize(loads); err != nil {
			t.Fatal(err)
		}
	}
	if mgr.FastResolveCount != 0 {
		t.Fatalf("fast path must be off at ε=0, FastResolveCount=%d", mgr.FastResolveCount)
	}
	if mgr.OptimizeCount != 3 {
		t.Fatalf("OptimizeCount = %d", mgr.OptimizeCount)
	}
}

// TestNewManagerFastPathDefaultOn pins the flipped default: managers built by
// NewManager (and their CloneFresh copies) serve steady-state re-solves from
// the incremental path, and fall back to a full solve past ε drift.
func TestNewManagerFastPathDefaultOn(t *testing.T) {
	m := twoServiceModel(150)
	mgr := NewManager(services.AppSpec{}, m.Profiles)
	mgr.Targets = m.Targets
	if mgr.ReSolveEpsilon != DefaultReSolveEpsilon {
		t.Fatalf("NewManager ReSolveEpsilon = %v, want DefaultReSolveEpsilon %v", mgr.ReSolveEpsilon, DefaultReSolveEpsilon)
	}
	if got := mgr.CloneFresh().ReSolveEpsilon; got != mgr.ReSolveEpsilon {
		t.Fatalf("CloneFresh dropped ReSolveEpsilon: %v", got)
	}
	loads := map[string]map[string]float64{"a": {"req": 100}, "b": {"req": 100}}
	if _, err := mgr.Optimize(loads); err != nil {
		t.Fatal(err)
	}
	// Within ε: served incrementally.
	drift := map[string]map[string]float64{"a": {"req": 102}, "b": {"req": 99}}
	if _, err := mgr.Optimize(drift); err != nil {
		t.Fatal(err)
	}
	if mgr.FastResolveCount != 1 {
		t.Fatalf("within-ε re-solve must hit the fast path, FastResolveCount=%d", mgr.FastResolveCount)
	}
	// Past ε: full solve fallback.
	jump := map[string]map[string]float64{"a": {"req": 150}, "b": {"req": 99}}
	if _, err := mgr.Optimize(jump); err != nil {
		t.Fatal(err)
	}
	if mgr.FastResolveCount != 1 || mgr.OptimizeCount != 3 {
		t.Fatalf("past-ε re-solve must fall back to a full solve: fast=%d total=%d",
			mgr.FastResolveCount, mgr.OptimizeCount)
	}
}

// TestManagerReplacesEvictedReplicas drives the crash-recovery path: a node
// failure evicts replicas mid-run and the manager must re-place them
// immediately via the OnEviction hook, not wait for drift detection.
func TestManagerReplacesEvictedReplicas(t *testing.T) {
	e := miniExplorer()
	profiles, _, err := e.ExploreAll(fastExploreConfig())
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine(7)
	cl := cluster.New(cluster.WorstFit, 16, 16)
	app, err := services.NewAppOnCluster(eng, e.Spec, cl)
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(e.Spec, profiles)
	if err := mgr.Run(app, workload.Mix{"req": 1}, 150, ControllerConfig{}, AnomalyConfig{}); err != nil {
		t.Fatal(err)
	}
	gen := workload.New(eng, app, workload.Constant{Value: 150}, workload.Mix{"req": 1})
	gen.Start()

	eng.RunUntil(5 * sim.Minute)
	before := app.Service("front").Replicas() + app.Service("back").Replicas()
	n0 := cl.NodeByName("node-0")
	var evicted int
	eng.Schedule(0, func() {
		n0.SetDown(true)
		for _, ev := range app.EvictNode(n0) {
			evicted += ev.Replicas
		}
	})
	eng.RunUntil(5*sim.Minute + sim.Second)
	if evicted == 0 {
		t.Fatal("node failure evicted nothing; test needs replicas on node-0")
	}
	after := app.Service("front").Replicas() + app.Service("back").Replicas()
	if after < before {
		t.Fatalf("manager did not re-place evicted capacity: %d replicas before, %d after (%d evicted)",
			before, after, evicted)
	}
	for _, n := range cl.Nodes() {
		if n.Down() && n.Used() > 0 {
			t.Fatalf("down node %s still holds %v CPUs", n.Name, n.Used())
		}
	}
	mgr.Stop()
	if app.OnEviction != nil {
		t.Fatal("Stop did not detach the eviction hook")
	}
}
