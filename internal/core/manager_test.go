package core

import (
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/workload"
)

// TestManagerEndToEnd drives the full Ursa pipeline on the mini app:
// exploration → optimization → deployment under a diurnal load, checking
// that the system scales with load and holds the SLA.
func TestManagerEndToEnd(t *testing.T) {
	e := miniExplorer()
	profiles, _, err := e.ExploreAll(fastExploreConfig())
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine(99)
	app := services.MustNewApp(eng, e.Spec)
	mgr := NewManager(e.Spec, profiles)
	mix := workload.Mix{"req": 1}
	if err := mgr.Run(app, mix, 150, ControllerConfig{}, AnomalyConfig{}); err != nil {
		t.Fatal(err)
	}
	gen := workload.New(eng, app, workload.Diurnal{Base: 80, Peak: 400, Period: 40 * sim.Minute}, mix)
	gen.Start()

	minReps, maxReps := 1<<30, 0
	probe := eng.Every(sim.Minute, func() {
		r := app.Service("back").Replicas()
		if r < minReps {
			minReps = r
		}
		if r > maxReps {
			maxReps = r
		}
	})
	eng.RunUntil(40 * sim.Minute)
	probe.Stop()
	mgr.Stop()

	if maxReps <= minReps {
		t.Fatalf("no scaling under diurnal load: replicas stayed at %d", minReps)
	}

	// SLA violation rate over per-minute windows must be low.
	rec := app.E2E.Class("req")
	total, violated := 0, 0
	for w := 2 * sim.Minute; w < 40*sim.Minute; w += sim.Minute {
		vals := rec.Between(w, w+sim.Minute)
		if len(vals) == 0 {
			continue
		}
		total++
		if stats.Percentile(vals, 99) > 60 {
			violated++
		}
	}
	if total == 0 {
		t.Fatal("no traffic measured")
	}
	rate := float64(violated) / float64(total)
	if rate > 0.15 {
		t.Fatalf("SLA violation rate %.1f%% too high under Ursa", rate*100)
	}

	if mgr.OptimizeCount == 0 || mgr.AvgOptimizeMillis() <= 0 {
		t.Fatal("optimizer accounting missing")
	}
	if mgr.Controller.DecisionCount == 0 {
		t.Fatal("controller never ticked")
	}
}

// TestManagerRecalculateOnSkew checks the anomaly-recovery path: a skewed
// mix triggers recalculation with live loads.
func TestManagerRecalculateOnSkew(t *testing.T) {
	spec := twoClassApp()
	e := &Explorer{
		Spec:       spec,
		Mix:        workload.Mix{"a": 1, "b": 1},
		TotalRPS:   100,
		Thresholds: map[string]float64{"api": 0.7},
	}
	profiles, _, err := e.ExploreAll(fastExploreConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(100)
	app := services.MustNewApp(eng, spec)
	mgr := NewManager(spec, profiles)
	if err := mgr.Run(app, workload.Mix{"a": 1, "b": 1}, 100,
		ControllerConfig{}, AnomalyConfig{Interval: 2 * sim.Minute, RatioDeviation: 1.4}); err != nil {
		t.Fatal(err)
	}
	// Deploy with a heavily skewed live mix instead.
	gen := workload.New(eng, app, workload.Constant{Value: 100}, workload.Mix{"a": 9, "b": 1})
	gen.Start()
	eng.RunUntil(15 * sim.Minute)
	mgr.Stop()
	if mgr.OptimizeCount < 2 {
		t.Fatalf("skewed mix did not trigger recalculation: optimize count = %d", mgr.OptimizeCount)
	}
	if len(mgr.Detector.Events) == 0 {
		t.Fatal("no anomaly events recorded")
	}
}
