package core

import (
	"testing"

	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/workload"
)

// miniApp is a 2-service chain with one class, light enough to explore fast.
func miniApp() services.AppSpec {
	return services.AppSpec{
		Name: "mini",
		Services: []services.ServiceSpec{
			{
				Name: "front", Threads: 4096, Daemons: 64, CPUs: 1,
				IngressCostMs: 0.1, IngressWindow: 32, InitialReplicas: 2,
				Handlers: map[string][]services.Step{
					"req": services.Seq(services.Compute{MeanMs: 1.5, CV: 0.4},
						services.Call{Service: "back", Mode: services.NestedRPC}),
				},
			},
			{
				Name: "back", Threads: 4096, Daemons: 64, CPUs: 1,
				IngressCostMs: 0.1, IngressWindow: 32, InitialReplicas: 2,
				Handlers: map[string][]services.Step{
					"req": services.Seq(services.Compute{MeanMs: 4.0, CV: 0.4}),
				},
			},
		},
		Classes: []services.ClassSpec{
			{Name: "req", Entry: "front", SLAPercentile: 99, SLAMillis: 60},
		},
	}
}

func miniExplorer() *Explorer {
	return &Explorer{
		Spec:     miniApp(),
		Mix:      workload.Mix{"req": 1},
		TotalRPS: 200,
		Thresholds: map[string]float64{
			"front": 0.7,
			"back":  0.7,
		},
	}
}

func fastExploreConfig() ExploreConfig {
	return ExploreConfig{
		WindowsPerPoint:  4,
		Window:           20 * sim.Second,
		SLAViolationFreq: 0.25,
		Seed:             11,
	}
}

func TestServiceClassLoads(t *testing.T) {
	e := miniExplorer()
	loads := e.ServiceClassLoads()
	if loads["front"]["req"] != 200 || loads["back"]["req"] != 200 {
		t.Fatalf("loads = %+v", loads)
	}
}

func TestServiceClassLoadsWithSpawnsAndVisits(t *testing.T) {
	spec := services.AppSpec{
		Name: "spawny",
		Services: []services.ServiceSpec{
			{Name: "a", Handlers: map[string][]services.Step{
				"main": services.Seq(
					services.Compute{MeanMs: 1},
					services.Call{Service: "b", Mode: services.NestedRPC},
					services.Call{Service: "b", Mode: services.NestedRPC},
					services.Spawn{Service: "w", Class: "derived"},
				),
			}},
			{Name: "b", Handlers: map[string][]services.Step{"main": services.Seq(services.Compute{MeanMs: 1})}},
			{Name: "w", Handlers: map[string][]services.Step{"derived": services.Seq(services.Compute{MeanMs: 5})}},
		},
		Classes: []services.ClassSpec{
			{Name: "main", Entry: "a", SLAPercentile: 99, SLAMillis: 100},
			{Name: "derived", Entry: "w", Derived: true, SLAPercentile: 99, SLAMillis: 100},
		},
	}
	e := &Explorer{Spec: spec, Mix: workload.Mix{"main": 1}, TotalRPS: 50}
	loads := e.ServiceClassLoads()
	if loads["b"]["main"] != 100 { // visited twice per request
		t.Fatalf("b load = %v, want 100", loads["b"]["main"])
	}
	if loads["w"]["derived"] != 50 { // one spawn per request
		t.Fatalf("w load = %v, want 50", loads["w"]["derived"])
	}
}

func TestGenerousReplicas(t *testing.T) {
	e := miniExplorer()
	reps := e.GenerousReplicas(0.25)
	// back: 200 rps × 3.1ms (incl ingress) = 0.62 cs/s; /(2×0.25) → ≥2.
	if reps["back"] < 2 {
		t.Fatalf("generous replicas = %+v", reps)
	}
}

func TestExploreServiceRecordsMonotonicLPR(t *testing.T) {
	e := miniExplorer()
	p, err := e.ExploreService("back", fastExploreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Points) < 2 {
		t.Fatalf("exploration found %d points, want ≥2", len(p.Points))
	}
	// Points ascend in LPR; latency tails should not shrink as LPR grows.
	first, last := p.Points[0], p.Points[len(p.Points)-1]
	if first.MaxLPR() >= last.MaxLPR() {
		t.Fatalf("LPR not ascending: %v → %v", first.MaxLPR(), last.MaxLPR())
	}
	if last.LatencyAt("req", 99) < first.LatencyAt("req", 99)*0.8 {
		t.Fatalf("p99 fell as load-per-replica grew: %.2f → %.2f",
			first.LatencyAt("req", 99), last.LatencyAt("req", 99))
	}
	if first.Util >= last.Util {
		t.Fatalf("utilisation not increasing with LPR: %.2f → %.2f", first.Util, last.Util)
	}
	// Early-stop: every recorded point respects the backpressure threshold.
	for _, pt := range p.Points {
		if pt.Util >= 0.7 {
			t.Fatalf("recorded point beyond backpressure threshold: util=%.2f", pt.Util)
		}
	}
	if p.Samples == 0 || p.ExploreTime == 0 {
		t.Fatalf("accounting empty: %+v", p)
	}
}

func TestExploreAllSummary(t *testing.T) {
	e := miniExplorer()
	profiles, sum, err := e.ExploreAll(fastExploreConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 {
		t.Fatalf("profiles = %v", len(profiles))
	}
	if sum.Samples != profiles["front"].Samples+profiles["back"].Samples {
		t.Fatal("sample accounting wrong")
	}
	if sum.WallTime > sum.TotalTime {
		t.Fatal("wall time cannot exceed total time")
	}
	if sum.WallTime != maxTime(profiles["front"].ExploreTime, profiles["back"].ExploreTime) {
		t.Fatal("wall time should be the max per-service time (parallel exploration)")
	}
}

func maxTime(a, b sim.Time) sim.Time {
	if a > b {
		return a
	}
	return b
}

func TestExploreUnknownService(t *testing.T) {
	e := miniExplorer()
	if _, err := e.ExploreService("ghost", fastExploreConfig()); err == nil {
		t.Fatal("expected error for unknown service")
	}
}

// TestExploreThenOptimizeEndToEnd drives the full pipeline: explore both
// services, solve the model, and check the solution is coherent.
func TestExploreThenOptimizeEndToEnd(t *testing.T) {
	e := miniExplorer()
	profiles, _, err := e.ExploreAll(fastExploreConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{
		Profiles: profiles,
		Targets:  TargetsFor(e.Spec),
		Loads:    e.ServiceClassLoads(),
	}
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.BoundMs["req"] > 60 {
		t.Fatalf("certified bound %.1fms exceeds the 60ms SLA", sol.BoundMs["req"])
	}
	if sol.TotalCPUs <= 0 {
		t.Fatal("no resources allocated")
	}
	for _, svc := range []string{"front", "back"} {
		if sol.Choices[svc] == nil || sol.Choices[svc].LPR["req"] <= 0 {
			t.Fatalf("missing choice for %s", svc)
		}
	}
}
