package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ursa/internal/stats"
)

func TestResidualBudgetOK(t *testing.T) {
	if !ResidualBudgetOK(99, []float64{99.5, 99.5}) {
		t.Fatal("0.5+0.5 = 1 should satisfy a 1%% budget")
	}
	if ResidualBudgetOK(99, []float64{99, 99.5}) {
		t.Fatal("1+0.5 > 1 should fail")
	}
	if !ResidualBudgetOK(50, EqualSplit(50, 5)) {
		t.Fatal("equal split must satisfy the budget")
	}
}

func TestEqualSplit(t *testing.T) {
	xs := EqualSplit(99, 4)
	for _, x := range xs {
		if x != 99.75 {
			t.Fatalf("EqualSplit = %v", xs)
		}
	}
	if !ResidualBudgetOK(99, xs) {
		t.Fatal("equal split violates its own budget")
	}
}

func TestLatencyBoundPanicsOnInvalidDecomposition(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid decomposition")
		}
	}()
	LatencyBound(99, [][]float64{{1}, {2}}, []float64{99, 99})
}

// TestTheorem1HoldsOnSimulatedChains verifies the bound on adversarially
// correlated synthetic chains — the strongest claim of the theorem.
func TestTheorem1HoldsOnSimulatedChains(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		N := 3000
		dists := make([][]float64, n)
		for i := range dists {
			dists[i] = make([]float64, N)
		}
		e2e := make([]float64, N)
		// Mixture: comonotone (worst case for sums) and independent parts.
		for k := 0; k < N; k++ {
			u := rng.Float64()
			for i := 0; i < n; i++ {
				var v float64
				if k%2 == 0 {
					v = u * float64(i+1) * 10 // perfectly correlated
				} else {
					v = rng.ExpFloat64() * float64(i+1)
				}
				dists[i][k] = v
				e2e[k] += v
			}
		}
		xc := 95.0
		xs := EqualSplit(xc, n)
		bound := LatencyBound(xc, dists, xs)
		actual := stats.Percentile(e2e, xc)
		return actual <= bound*1.01 // tiny interpolation tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
