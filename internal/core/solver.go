package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"ursa/internal/stats"
)

// This file holds the optimised decision path: a reusable solver with
// precomputed state that Model.Solve runs on. It returns bit-identical
// results to solveReference (same picks, bounds, percentile assignment and
// errors — property-tested in solver_test.go); the speed comes from
//
//   - percentile rows read from the per-Profile cached tables (one sort per
//     point per class, ever) instead of one quickselect per option × target
//     × percentile per solve;
//   - per-service cost orders computed once per solve instead of re-sorted
//     inside every branch-and-bound node;
//   - per-option minimum latencies precomputed so the optimistic child bound
//     is O(1) per target instead of a scan over the percentile grid;
//   - dominance pruning: operating points that are at least as expensive and
//     at least as slow (on every target and percentile) as a strictly
//     cheaper point are dropped from the search before it starts;
//   - pooled DP arenas reused across percentile-assignment evaluations, so
//     steady-state re-solves allocate only the returned Solution.

// defaultLeafBudget caps the search on pathological models: at most this
// many non-dominated leaf feasibility evaluations before the incumbent (if
// any) is returned as-is.
const defaultLeafBudget = 5_000_000

// leafBudget resolves the model's search budget.
func (m *Model) leafBudget() int {
	if m.NodeBudget > 0 {
		return m.NodeBudget
	}
	return defaultLeafBudget
}

// costOrder returns the option indices of opts in ascending cost order,
// reusing buf when it has capacity. Both solvers obtain their iteration
// order from this one helper (the fast solver once per service per solve,
// the reference inside every node as it always did): sort.Slice is
// deterministic, so one shared implementation guarantees the two searches
// visit subtrees in exactly the same sequence — including ties, where the
// (unstable) sort's output is arbitrary but reproducible.
func costOrder(opts []option, buf []int) []int {
	order := buf[:0]
	for i := range opts {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return opts[order[a]].cost < opts[order[b]].cost })
	return order
}

// dominatedFlags marks options the search can skip: option A of a service
// is dominated when another option B of the same service has strictly lower
// cost and a latency contribution no larger than A's for every target and
// grid percentile. Any leaf using A is preceded (in cheapest-first order)
// by the corresponding leaf using B, which is feasible whenever A's is and
// strictly cheaper — so by the time A's subtree would be explored the
// incumbent is already below anything the subtree can offer, and skipping
// it cannot change the returned pick, bound or percentile assignment. Cost
// ties are never pruned: which of two equal-cost options wins depends on
// visit order, and pruning one could flip the reported pick.
func dominatedFlags(opts [][]option, nTgt int) [][]bool {
	out := make([][]bool, len(opts))
	for si := range opts {
		ops := opts[si]
		flags := make([]bool, len(ops))
		for a := range ops {
			for b := range ops {
				if ops[b].cost >= ops[a].cost {
					continue
				}
				dominates := true
				for t := 0; t < nTgt && dominates; t++ {
					ra, rb := ops[a].lat[t], ops[b].lat[t]
					if ra == nil {
						continue
					}
					for β := range ra {
						if rb[β] > ra[β] {
							dominates = false
							break
						}
					}
				}
				if dominates {
					flags[a] = true
					break
				}
			}
		}
		out[si] = flags
	}
	return out
}

// solver is the reusable optimised search. All slices are arenas that grow
// to the largest model seen and are reused across solves; a solver is not
// safe for concurrent use (Model.Solve hands instances out via a pool).
type solver struct {
	m        *Model
	nSvc     int
	nTgt     int
	svcNames []string
	terms    [][]term
	termsBuf []term
	budgets  []int
	targetMs []float64

	opts    [][]option
	optsBuf []option
	latBuf  [][]float64 // per-option lat tables, nTgt entries each
	rowBuf  []float64   // percentile rows, len(Percentiles) each

	orders    [][]int // per-service option positions, cheapest-first (costOrder)
	dominated [][]bool

	optMin      [][]float64 // optMin[si][oi*nTgt+t]: min over grid of opts[si][oi].lat[t]
	optMinBuf   []float64
	bestContrib []float64 // [t*nSvc+si], over the full (undominated) option set
	minCostFrom []float64

	// Search state.
	pos       []int // option position per service along the current path
	bestPos   []int
	haveBest  bool
	bestCost  float64
	latAt     []float64 // (nSvc+1) × nTgt: latSoFar per depth
	nodes     int
	leafEvals int
	budget    int
	capped    bool

	// Percentile-assignment DP arena.
	residuals []int
	dpLat     []float64
	dpChoice  []int8
	dpRows    [][]float64
}

var solverPool = sync.Pool{New: func() any { return &solver{} }}

// solve runs the optimised decision path for m, whose targets must already
// be filtered to active ones.
func (s *solver) solve(m *Model) (*Solution, error) {
	s.m = m
	if err := s.compile(); err != nil {
		return nil, err
	}
	s.precompute()
	s.search()
	// The nSvc == 0 guard covers a model whose every target was dropped for
	// carrying no load: the reference treats its empty pick as "nothing
	// found" and errors, and the fast path must agree.
	if !s.haveBest || s.nSvc == 0 {
		return nil, fmt.Errorf("core: no feasible LPR combination for the explored allocation space")
	}
	return s.materialise()
}

// growF/growI/growRows size arenas without reallocating in steady state.
func growF(buf []float64, n int) []float64 {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]float64, n)
}

func growI(buf []int, n int) []int {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]int, n)
}

// compile mirrors Model.compile — same validation, same option filtering,
// same term tables — but reads latency rows from the Profile percentile
// caches instead of re-selecting order statistics from raw samples, and
// builds everything into reused arenas.
func (s *solver) compile() error {
	m := s.m
	s.svcNames = s.svcNames[:0]
	seen := map[string]bool{}
	for _, tgt := range m.Targets {
		if len(tgt.Path) == 0 {
			return fmt.Errorf("core: target %s has an empty path", tgt.Name)
		}
		for _, v := range tgt.Path {
			if !seen[v.Service] {
				seen[v.Service] = true
				s.svcNames = append(s.svcNames, v.Service)
			}
		}
	}
	sort.Strings(s.svcNames)
	s.nSvc = len(s.svcNames)
	s.nTgt = len(m.Targets)

	if cap(s.terms) < s.nTgt {
		s.terms = make([][]term, s.nTgt)
	}
	s.terms = s.terms[:s.nTgt]
	s.budgets = growI(s.budgets, s.nTgt)
	s.targetMs = growF(s.targetMs, s.nTgt)
	s.termsBuf = s.termsBuf[:0]
	for t, tgt := range m.Targets {
		s.budgets[t] = residualUnits(tgt.Percentile)
		s.targetMs[t] = m.targetMs(t)
		start := len(s.termsBuf)
		for _, v := range tgt.Path {
			s.termsBuf = append(s.termsBuf, term{service: v.Service, class: v.Class, count: float64(v.Count)})
		}
		s.terms[t] = s.termsBuf[start:len(s.termsBuf):len(s.termsBuf)]
	}

	if cap(s.opts) < s.nSvc {
		s.opts = make([][]option, s.nSvc)
	}
	s.opts = s.opts[:s.nSvc]
	s.optsBuf = s.optsBuf[:0]
	s.latBuf = s.latBuf[:0]
	s.rowBuf = s.rowBuf[:0]
	nPerc := len(Percentiles)
	for si, name := range s.svcNames {
		p := m.Profiles[name]
		if p == nil || len(p.Points) == 0 {
			return fmt.Errorf("core: no exploration profile for service %q", name)
		}
		grids := p.pointGrids()
		start := len(s.optsBuf)
		for pi := range p.Points {
			pt := &p.Points[pi]
			cost, ok := m.optionCost(name, pt)
			if !ok {
				continue
			}
			latStart := len(s.latBuf)
			for t := 0; t < s.nTgt; t++ {
				s.latBuf = append(s.latBuf, nil)
			}
			lat := s.latBuf[latStart:len(s.latBuf):len(s.latBuf)]
			usable := true
			for t := range m.Targets {
				var mine *term
				for k := range s.terms[t] {
					if s.terms[t][k].service == name {
						mine = &s.terms[t][k]
						break
					}
				}
				if mine == nil {
					continue
				}
				if len(pt.Latency[mine.class]) == 0 {
					usable = false
					break
				}
				grid := grids[pi][mine.class]
				rowStart := len(s.rowBuf)
				for b := 0; b < nPerc; b++ {
					s.rowBuf = append(s.rowBuf, mine.count*grid[b])
				}
				lat[t] = s.rowBuf[rowStart:len(s.rowBuf):len(s.rowBuf)]
			}
			if usable {
				s.optsBuf = append(s.optsBuf, option{index: pi, cost: cost, lat: lat})
			}
		}
		s.opts[si] = s.optsBuf[start:len(s.optsBuf):len(s.optsBuf)]
		if len(s.opts[si]) == 0 {
			return fmt.Errorf("core: service %q has no usable LPR points for the current classes", name)
		}
	}
	return nil
}

// precompute builds the per-solve search tables: cost orders (once, not per
// node), dominance flags, per-option minimum latencies, the full-set
// best-contribution bound data and the cost suffix minima.
func (s *solver) precompute() {
	nSvc, nTgt := s.nSvc, s.nTgt

	if cap(s.orders) < nSvc {
		s.orders = make([][]int, nSvc)
	}
	s.orders = s.orders[:nSvc]
	for si := range s.opts {
		s.orders[si] = costOrder(s.opts[si], s.orders[si])
	}

	s.dominated = dominatedFlags(s.opts, nTgt)

	if cap(s.optMin) < nSvc {
		s.optMin = make([][]float64, nSvc)
	}
	s.optMin = s.optMin[:nSvc]
	s.optMinBuf = s.optMinBuf[:0]
	for si := range s.opts {
		start := len(s.optMinBuf)
		for oi := range s.opts[si] {
			op := &s.opts[si][oi]
			for t := 0; t < nTgt; t++ {
				best := math.Inf(1)
				if op.lat[t] != nil {
					for _, v := range op.lat[t] {
						if v < best {
							best = v
						}
					}
				}
				s.optMinBuf = append(s.optMinBuf, best)
			}
		}
		s.optMin[si] = s.optMinBuf[start:len(s.optMinBuf):len(s.optMinBuf)]
	}

	// bestContrib spans the full option set (dominated ones included): the
	// reference's optimistic bound uses every option, and sharing its exact
	// values keeps the two searches' prune decisions — and therefore their
	// leaf sequences under a binding budget — identical.
	s.bestContrib = growF(s.bestContrib, nTgt*nSvc)
	for t := 0; t < nTgt; t++ {
		for si := 0; si < nSvc; si++ {
			best := 0.0
			found := false
			for _, op := range s.opts[si] {
				if op.lat[t] == nil {
					continue
				}
				for _, v := range op.lat[t] {
					if !found || v < best {
						best = v
						found = true
					}
				}
			}
			s.bestContrib[t*nSvc+si] = best
		}
	}

	s.minCostFrom = growF(s.minCostFrom, nSvc+1)
	s.minCostFrom[nSvc] = 0
	for si := nSvc - 1; si >= 0; si-- {
		minCost := math.Inf(1)
		for _, op := range s.opts[si] {
			if op.cost < minCost {
				minCost = op.cost
			}
		}
		s.minCostFrom[si] = s.minCostFrom[si+1] + minCost
	}

	s.pos = growI(s.pos, nSvc)
	s.bestPos = growI(s.bestPos, nSvc)
	s.latAt = growF(s.latAt, (nSvc+1)*nTgt)
	for t := 0; t < nTgt; t++ {
		s.latAt[t] = 0
	}

	s.residuals = growI(s.residuals, len(Percentiles))
	for b, p := range Percentiles {
		s.residuals[b] = residualUnits(p)
	}
	maxTerms, maxBudget := 0, 0
	for t := 0; t < nTgt; t++ {
		if len(s.terms[t]) > maxTerms {
			maxTerms = len(s.terms[t])
		}
		if s.budgets[t] > maxBudget {
			maxBudget = s.budgets[t]
		}
	}
	dpCells := (maxTerms + 1) * (maxBudget + 1)
	s.dpLat = growF(s.dpLat, dpCells)
	if cap(s.dpChoice) < dpCells {
		s.dpChoice = make([]int8, dpCells)
	}
	s.dpChoice = s.dpChoice[:dpCells]
	if cap(s.dpRows) < maxTerms {
		s.dpRows = make([][]float64, maxTerms)
	}
	s.dpRows = s.dpRows[:maxTerms]
}

// search runs the dominance-pruned branch-and-bound.
func (s *solver) search() {
	s.bestCost = math.Inf(1)
	s.haveBest = false
	s.nodes = 0
	s.leafEvals = 0
	s.budget = s.m.leafBudget()
	s.capped = false
	s.rec(0, 0)
}

func (s *solver) rec(si int, costSoFar float64) {
	s.nodes++
	if s.capped {
		return
	}
	if costSoFar+s.minCostFrom[si] >= s.bestCost {
		return
	}
	nSvc, nTgt := s.nSvc, s.nTgt
	lat := s.latAt[si*nTgt : (si+1)*nTgt]
	if si == nSvc {
		// Every pick on this path is non-dominated, so each leaf counts
		// against the shared search budget.
		s.leafEvals++
		if s.leafEvals > s.budget {
			s.capped = true
			return
		}
		for t := 0; t < nTgt; t++ {
			if _, ok := s.assign(t, false); !ok {
				return
			}
		}
		s.bestCost = costSoFar
		s.haveBest = true
		copy(s.bestPos, s.pos)
		return
	}
	// Optimistic per-target feasibility using best-case remaining, summed in
	// the same order as the reference.
	for t := 0; t < nTgt; t++ {
		optimistic := lat[t]
		row := s.bestContrib[t*nSvc : (t+1)*nSvc]
		for sj := si; sj < nSvc; sj++ {
			optimistic += row[sj]
		}
		if optimistic > s.targetMs[t] {
			return
		}
	}
	next := s.latAt[(si+1)*nTgt : (si+2)*nTgt]
	optMin := s.optMin[si]
	for _, oi := range s.orders[si] {
		if s.dominated[si][oi] {
			continue
		}
		op := &s.opts[si][oi]
		base := oi * nTgt
		for t := 0; t < nTgt; t++ {
			if op.lat[t] != nil {
				next[t] = lat[t] + optMin[base+t]
			} else {
				next[t] = lat[t]
			}
		}
		s.pos[si] = oi
		s.rec(si+1, costSoFar+op.cost)
	}
}

// assign solves the percentile-budget DP for target t against the current
// path picks (s.pos), reusing the solver's arena. With recover it also
// reconstructs the chosen percentiles (allocating the returned slice); the
// search's feasibility checks pass recover=false and allocate nothing. The
// arithmetic — iteration order, comparisons, interpolation inputs — matches
// Model.assignPercentiles cell for cell.
func (s *solver) assign(t int, recover bool) (assignment, bool) {
	tms := s.terms[t]
	budget := s.budgets[t]
	pos := s.pos
	if recover {
		pos = s.bestPos
	}
	svcAt := func(name string) int {
		lo, hi := 0, s.nSvc
		for lo < hi {
			mid := (lo + hi) / 2
			if s.svcNames[mid] < name {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	rows := s.dpRows[:len(tms)]
	for k := range tms {
		si := svcAt(tms[k].service)
		rows[k] = s.opts[si][pos[si]].lat[t]
	}

	if s.m.EqualSplitPercentiles {
		β := equalSplitIndex(budget, len(tms))
		if β == -1 {
			return assignment{}, false
		}
		bound := 0.0
		for k := range tms {
			bound += rows[k][β]
		}
		if bound > s.targetMs[t] {
			return assignment{}, false
		}
		if !recover {
			return assignment{bound: bound}, true
		}
		percs := make([]float64, len(tms))
		for k := range percs {
			percs[k] = Percentiles[β]
		}
		return assignment{percentiles: percs, bound: bound}, true
	}

	const inf = math.MaxFloat64 / 4
	stride := budget + 1
	cells := (len(tms) + 1) * stride
	dpLat := s.dpLat[:cells]
	dpChoice := s.dpChoice[:cells]
	for i := range dpLat {
		dpLat[i] = inf
		dpChoice[i] = -1
	}
	dpLat[budget] = 0
	for k := 0; k < len(tms); k++ {
		krow := dpLat[k*stride : (k+1)*stride]
		nrow := dpLat[(k+1)*stride : (k+2)*stride]
		ncho := dpChoice[(k+1)*stride : (k+2)*stride]
		row := rows[k]
		for b := 0; b <= budget; b++ {
			cur := krow[b]
			if cur >= inf {
				continue
			}
			for β, r := range s.residuals {
				if r > b {
					continue
				}
				nb := b - r
				nl := cur + row[β]
				if nl < nrow[nb] {
					nrow[nb] = nl
					ncho[nb] = int8(β)
				}
			}
		}
	}
	lastRow := dpLat[len(tms)*stride : (len(tms)+1)*stride]
	bestB, bestLat := -1, inf
	for b := 0; b <= budget; b++ {
		if lastRow[b] < bestLat {
			bestLat = lastRow[b]
			bestB = b
		}
	}
	if bestB == -1 || bestLat > s.targetMs[t] {
		return assignment{}, false
	}
	if !recover {
		return assignment{bound: bestLat}, true
	}
	percs := make([]float64, len(tms))
	b := bestB
	for k := len(tms); k >= 1; k-- {
		β := dpChoice[k*stride+b]
		percs[k-1] = Percentiles[β]
		b += s.residuals[β]
	}
	return assignment{percentiles: percs, bound: bestLat}, true
}

// materialise builds the Solution for the winning pick. Option lookups are
// direct (the search tracks option positions), fixing the old O(options)
// cost re-scan per service.
func (s *solver) materialise() (*Solution, error) {
	m := s.m
	sol := &Solution{
		Choices:          make(map[string]*Choice, s.nSvc),
		PercentileChoice: make(map[string][]float64, s.nTgt),
		BoundMs:          make(map[string]float64, s.nTgt),
		TotalCPUs:        s.bestCost,
		Nodes:            s.nodes,
	}
	for si, name := range s.svcNames {
		op := &s.opts[si][s.bestPos[si]]
		pt := &m.Profiles[name].Points[op.index]
		sol.Choices[name] = &Choice{
			Service:     name,
			PointIndex:  op.index,
			LPR:         pt.LPR,
			RateSamples: pt.RateSamples,
			CostCPUs:    op.cost,
		}
	}
	for t, tgt := range m.Targets {
		assign, ok := s.assign(t, true)
		if !ok {
			return nil, fmt.Errorf("core: internal: winning pick infeasible for %s", tgt.Name)
		}
		sol.PercentileChoice[tgt.Name] = assign.percentiles
		sol.BoundMs[tgt.Name] = assign.bound
	}
	return sol, nil
}

// estimateArena pools the DP state of EstimateBound: the Fig. 9/10
// estimator runs once per class per measurement window, and fig9-style
// sweeps call it thousands of times.
type estimateArena struct {
	rows    [][]float64
	rowBuf  []float64
	dp      []float64
	resid   []int
	residOK bool
}

var estimatePool = sync.Pool{New: func() any { return &estimateArena{} }}

// estimateBound is the arena-backed implementation behind EstimateBound.
func (a *estimateArena) estimateBound(tgt ClassTarget, dists map[string][]float64) (float64, bool) {
	budget := residualUnits(tgt.Percentile)
	nPerc := len(Percentiles)
	if !a.residOK {
		a.resid = growI(a.resid, nPerc)
		for b, p := range Percentiles {
			a.resid[b] = residualUnits(p)
		}
		a.residOK = true
	}
	if cap(a.rows) < len(tgt.Path) {
		a.rows = make([][]float64, len(tgt.Path))
	}
	a.rows = a.rows[:len(tgt.Path)]
	a.rowBuf = growF(a.rowBuf, len(tgt.Path)*nPerc)
	for k, v := range tgt.Path {
		samples := dists[v.Service+"/"+v.Class]
		if len(samples) == 0 {
			return 0, false
		}
		row := a.rowBuf[k*nPerc : (k+1)*nPerc]
		// One sort per sample set; count-scaled grid reads match the old
		// per-percentile quickselect bit for bit.
		stats.GridPercentiles(samples, Percentiles, row)
		for b := range row {
			row[b] = float64(v.Count) * row[b]
		}
		a.rows[k] = row
	}
	const inf = math.MaxFloat64 / 4
	stride := budget + 1
	a.dp = growF(a.dp, (len(a.rows)+1)*stride)
	dp := a.dp
	for i := range dp {
		dp[i] = inf
	}
	dp[budget] = 0
	for k := 0; k < len(a.rows); k++ {
		krow := dp[k*stride : (k+1)*stride]
		nrow := dp[(k+1)*stride : (k+2)*stride]
		row := a.rows[k]
		for b := 0; b <= budget; b++ {
			cur := krow[b]
			if cur >= inf {
				continue
			}
			for β, r := range a.resid {
				if r > b {
					continue
				}
				if v := cur + row[β]; v < nrow[b-r] {
					nrow[b-r] = v
				}
			}
		}
	}
	last := dp[len(a.rows)*stride : (len(a.rows)+1)*stride]
	best := inf
	for b := 0; b <= budget; b++ {
		if last[b] < best {
			best = last[b]
		}
	}
	if best >= inf {
		return 0, false
	}
	return best, true
}
