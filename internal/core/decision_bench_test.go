package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// fig11ScaleModel builds a deterministic synthetic model at the scale of the
// social-network case in the fig11 grids: 12 services, 8 end-to-end class
// targets over partially shared 3–6 service paths, 3 LPR points per service
// and ~100k latency samples in total. Benchmarks over it are self-contained
// (no exploration run) yet exercise the same search shape as the real
// decision path.
func fig11ScaleModel() *Model {
	rng := rand.New(rand.NewSource(42))
	const nSvc, nTgt, nPts = 12, 8, 3
	classes := make([]string, nTgt)
	for t := range classes {
		classes[t] = fmt.Sprintf("class%d", t)
	}
	svcs := make([]string, nSvc)
	profiles := make(map[string]*Profile, nSvc)
	loads := make(map[string]map[string]float64, nSvc)
	for i := range svcs {
		name := fmt.Sprintf("svc%02d", i)
		svcs[i] = name
		pts := make([]LPRPoint, 0, nPts)
		for pi := 0; pi < nPts; pi++ {
			lpr := 30 * float64(pi+1)
			pt := LPRPoint{
				Replicas:    nPts - pi,
				LPR:         map[string]float64{},
				RateSamples: map[string][]float64{},
				Latency:     map[string][]float64{},
			}
			for _, cls := range classes {
				pt.LPR[cls] = lpr
				pt.RateSamples[cls] = []float64{lpr * 0.95, lpr, lpr * 1.05}
				samples := make([]float64, 1100)
				base := 2 + 3*float64(pi)*rng.Float64()
				for k := range samples {
					samples[k] = base * math.Exp(rng.NormFloat64()*0.4)
				}
				pt.Latency[cls] = samples
			}
			pts = append(pts, pt)
		}
		p := &Profile{Service: name, CPUsPerReplica: 2, BackpressureUtil: 0.7, Points: pts}
		p.SortPoints()
		profiles[name] = p
		ld := map[string]float64{}
		for _, cls := range classes {
			ld[cls] = 20 + rng.Float64()*60
		}
		loads[name] = ld
	}
	targets := make([]ClassTarget, 0, nTgt)
	for t := 0; t < nTgt; t++ {
		pathLen := 3 + rng.Intn(4)
		perm := rng.Perm(nSvc)[:pathLen]
		path := make([]PathVisit, 0, pathLen)
		for _, si := range perm {
			path = append(path, PathVisit{Service: svcs[si], Class: classes[t], Count: 1})
		}
		targets = append(targets, ClassTarget{
			Name:       classes[t],
			Percentile: 99,
			TargetMs:   80 * float64(pathLen),
			Path:       path,
		})
	}
	return &Model{Profiles: profiles, Targets: targets, Loads: loads}
}

// BenchmarkSolve measures the optimised decision path on the fig11-scale
// model, steady state (percentile tables warm — the profiler precomputes
// them off the decision path in production too).
func BenchmarkSolve(b *testing.B) {
	m := fig11ScaleModel()
	if _, err := m.Solve(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveReference is the pre-optimisation baseline on the identical
// model: the retained reference implementation recomputes percentiles from
// raw samples, re-sorts options per node and allocates DP tables per leaf.
// The Solve/SolveReference ratio in BENCH_decision.json is the headline
// decision-path speedup.
func BenchmarkSolveReference(b *testing.B) {
	m := fig11ScaleModel()
	if _, err := m.solveReference(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.solveReference(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateBound measures the Fig. 9/10 window estimator: one
// 8-term class target over fresh 1100-sample window distributions.
func BenchmarkEstimateBound(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const terms = 8
	dists := make(map[string][]float64, terms)
	path := make([]PathVisit, 0, terms)
	for i := 0; i < terms; i++ {
		svc := fmt.Sprintf("svc%02d", i)
		samples := make([]float64, 1100)
		for k := range samples {
			samples[k] = 5 * math.Exp(rng.NormFloat64()*0.4)
		}
		dists[svc+"/req"] = samples
		path = append(path, PathVisit{Service: svc, Class: "req", Count: 1})
	}
	tgt := ClassTarget{Name: "req", Percentile: 99, TargetMs: 1e9, Path: path}
	if _, ok := EstimateBound(tgt, dists); !ok {
		b.Fatal("estimator failed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := EstimateBound(tgt, dists); !ok {
			b.Fatal("estimator failed")
		}
	}
}

// BenchmarkResolveFastPath measures the incremental re-solve: loads jitter
// by ±1% (< ε) around the last full solve, so every Optimize is served by
// the O(terms) incumbent re-verification.
func BenchmarkResolveFastPath(b *testing.B) {
	m := fig11ScaleModel()
	mgr := &Manager{Profiles: m.Profiles, Targets: m.Targets, ReSolveEpsilon: 0.05}
	if _, err := mgr.Optimize(m.Loads); err != nil {
		b.Fatal(err)
	}
	jittered := make([]map[string]map[string]float64, 2)
	for j := range jittered {
		scale := 1 + 0.01*float64(2*j-1)
		out := make(map[string]map[string]float64, len(m.Loads))
		for svc, classes := range m.Loads {
			c := make(map[string]float64, len(classes))
			for class, v := range classes {
				c[class] = v * scale
			}
			out[svc] = c
		}
		jittered[j] = out
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mgr.Optimize(jittered[i%2]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if mgr.FastResolveCount != b.N {
		b.Fatalf("fast path served %d of %d optimizes", mgr.FastResolveCount, b.N)
	}
}
