package core

import (
	"math"
	"testing"

	"ursa/internal/lp"
	"ursa/internal/mip"
)

// TestExactMIPMatchesSpecializedSolver cross-checks the generic
// branch-and-bound on the exact MIP (1) formulation against the specialised
// solver used in production: identical optimal objectives.
func TestExactMIPMatchesSpecializedSolver(t *testing.T) {
	for _, target := range []float64{150, 90, 70} {
		m := twoServiceModel(target)
		want, err := m.Solve()
		if err != nil {
			t.Fatalf("target %v: specialized solve: %v", target, err)
		}
		prob, decode, err := m.BuildExactMIP()
		if err != nil {
			t.Fatal(err)
		}
		got := mip.Solve(prob)
		if got.Status != lp.Optimal {
			t.Fatalf("target %v: generic status %v", target, got.Status)
		}
		if math.Abs(got.Obj-want.TotalCPUs) > 1e-6 {
			t.Fatalf("target %v: generic obj %v != specialized %v", target, got.Obj, want.TotalCPUs)
		}
		picks := decode(got.X)
		if len(picks) != 2 {
			t.Fatalf("decode = %v", picks)
		}
	}
}

func TestExactMIPInfeasibleAgrees(t *testing.T) {
	m := twoServiceModel(20) // specialized solver reports infeasible
	if _, err := m.Solve(); err == nil {
		t.Fatal("specialized should be infeasible")
	}
	prob, _, err := m.BuildExactMIP()
	if err != nil {
		t.Fatal(err)
	}
	if got := mip.Solve(prob); got.Status != lp.Infeasible {
		t.Fatalf("generic status = %v, want infeasible", got.Status)
	}
}

func TestExactMIPSize(t *testing.T) {
	m := twoServiceModel(150)
	vars, cons, err := m.ExactMIPSize()
	if err != nil {
		t.Fatal(err)
	}
	// 4 δ + 16 γ + 32 z = 52 vars.
	if vars != 52 {
		t.Fatalf("vars = %d, want 52", vars)
	}
	if cons <= 0 {
		t.Fatalf("constraints = %d", cons)
	}
}

func TestPercentileGridString(t *testing.T) {
	s := PercentileGridString()
	if s == "" {
		t.Fatal("empty grid")
	}
}
