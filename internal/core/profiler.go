package core

import (
	"ursa/internal/services"
	"ursa/internal/sim"
	"ursa/internal/stats"
	"ursa/internal/workload"
)

// ScaleProfilingLoad rescales a per-class offered load so the tested
// service's nominal CPU demand equals target × its per-replica CPU limit.
// The profiling engine (Fig. 3) must drive the service near saturation at
// low CPU limits for the proxy-latency knee — and hence the
// backpressure-free utilisation threshold — to be observable; the class mix
// (fan-in ratios) is preserved.
func ScaleProfilingLoad(ss services.ServiceSpec, rates map[string]float64, target float64) map[string]float64 {
	if target <= 0 {
		target = 0.85
	}
	if ss.CPUs <= 0 {
		ss.CPUs = 1
	}
	demand := 0.0 // core-seconds per second at the given rates
	for class, r := range rates {
		demand += r * nominalCPUMs(&ss, class) / 1e3
	}
	if demand <= 0 {
		return rates
	}
	k := target * ss.CPUs / demand
	out := make(map[string]float64, len(rates))
	for class, r := range rates {
		out[class] = r * k
	}
	return out
}

// computeOnly strips Call and Spawn steps from a handler, keeping only its
// local CPU work — the profiling engine tests the service in isolation, with
// the proxy standing in for its real parents.
func computeOnly(steps []services.Step) []services.Step {
	out := computesIn(steps)
	if len(out) == 0 {
		// A handler that only calls downstream still costs a little CPU.
		out = services.Seq(services.Compute{MeanMs: 0.1})
	}
	return out
}

func computesIn(steps []services.Step) []services.Step {
	var out []services.Step
	for _, st := range steps {
		switch s := st.(type) {
		case services.Compute:
			out = append(out, s)
		case services.Par:
			for _, br := range s.Branches {
				out = append(out, computesIn(br)...)
			}
		}
	}
	return out
}

// ProfilerConfig parameterises backpressure-free threshold profiling (§III).
type ProfilerConfig struct {
	// Factors is the ascending CPU-limit sweep (fraction of nominal CPUs).
	Factors []float64
	// WindowsPerStep is how many measurement windows each limit runs for.
	WindowsPerStep int
	// Window is the measurement window (default 30 s; profiling uses finer
	// windows than deployment so the sweep converges quickly).
	Window sim.Time
	// Alpha is the Welch t-test significance level for declaring the proxy
	// latency converged.
	Alpha float64
	// Seed drives the simulated harness.
	Seed int64
}

func (c *ProfilerConfig) defaults() {
	if len(c.Factors) == 0 {
		for f := 0.3; f <= 2.001; f += 0.1 {
			c.Factors = append(c.Factors, f)
		}
	}
	if c.WindowsPerStep <= 0 {
		c.WindowsPerStep = 8
	}
	if c.Window <= 0 {
		c.Window = 30 * sim.Second
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ProfileStep is one point of the CPU-limit sweep (the Fig. 4 curves).
type ProfileStep struct {
	CPULimit     float64 // cores given to the tested service
	ProxyP99Mean float64 // mean of per-window proxy p99 latency (ms)
	ProxyP99Std  float64
	ServiceP99   float64 // tested service's own p99 (ms)
	Util         float64 // tested service CPU utilisation (0..1)
	Converged    bool    // true from the step where proxy latency converged
}

// BackpressureResult is the §III profiling outcome for one service.
type BackpressureResult struct {
	Service string
	// Threshold is the backpressure-free CPU utilisation threshold: the
	// utilisation observed just before the proxy latency converged.
	Threshold float64
	Steps     []ProfileStep
}

// ProfileBackpressureThreshold runs the 3-tier profiling engine of Fig. 3
// against one service: a proxy forwards the service's class mix via nested
// RPC while the engine sweeps the service's CPU limit upward and watches the
// proxy's p99 latency with Welch's t-test. The CPU utilisation just before
// convergence is the service's backpressure-free threshold.
//
// classRPS is the per-class offered load (requests/second aggregated over
// upstreams, per §III's fan-in synthesis). Services without an RPC ingress
// stage (MQ consumers) cannot exert backpressure on callers and get
// threshold 1.0 without a sweep.
func ProfileBackpressureThreshold(svc services.ServiceSpec, classRPS map[string]float64, cfg ProfilerConfig) BackpressureResult {
	cfg.defaults()
	if svc.IngressCostMs <= 0 {
		return BackpressureResult{Service: svc.Name, Threshold: 1.0}
	}

	res := BackpressureResult{Service: svc.Name}
	steps := make([]profilingStep, 0, len(cfg.Factors))
	for _, f := range cfg.Factors {
		steps = append(steps, runProfilingStep(svc, classRPS, f, cfg))
	}
	// Convergence is judged against the final (highest-limit) step: a step
	// is converged when Welch's t-test cannot distinguish its proxy latency
	// from the final one *and* its mean is in the final step's range.
	// (Comparing only adjacent steps false-positives between two saturated
	// steps, whose enormous variances make any means look "equal".)
	last := steps[len(steps)-1]
	firstConverged := len(steps) - 1
	for k := len(steps) - 2; k >= 0; k-- {
		same := stats.MeansEqual(steps[k].proxyP99Windows, last.proxyP99Windows, cfg.Alpha)
		closeMean := steps[k].ProxyP99Mean <= last.ProxyP99Mean*1.3+1e-9
		if same && closeMean {
			firstConverged = k
			continue
		}
		break
	}
	if firstConverged > 0 {
		res.Threshold = steps[firstConverged-1].Util
	} else {
		// Converged across the whole sweep: even the tightest limit shows
		// no backpressure; the highest observed utilisation is safe.
		res.Threshold = steps[0].Util
	}
	for k := range steps {
		st := steps[k].ProfileStep
		st.Converged = k >= firstConverged
		res.Steps = append(res.Steps, st)
	}
	return res
}

type profilingStep struct {
	ProfileStep
	proxyP99Windows []float64
}

// runProfilingStep runs one independent harness at the given CPU factor.
func runProfilingStep(svc services.ServiceSpec, classRPS map[string]float64, factor float64, cfg ProfilerConfig) profilingStep {
	target := svc
	target.Name = "tested"
	target.InitialReplicas = 1
	target.MaxReplicas = 1
	target.Handlers = map[string][]services.Step{}
	mix := workload.Mix{}
	total := 0.0
	proxyHandlers := map[string][]services.Step{}
	for class, rps := range classRPS {
		if rps <= 0 {
			continue
		}
		src := svc.Handlers[class]
		if src == nil {
			continue
		}
		target.Handlers[class] = computeOnly(src)
		proxyHandlers[class] = services.Seq(
			services.Compute{MeanMs: 0.2},
			services.Call{Service: "tested", Mode: services.NestedRPC},
		)
		mix[class] = rps
		total += rps
	}
	if total <= 0 {
		return profilingStep{ProfileStep: ProfileStep{CPULimit: svc.CPUs * factor}, proxyP99Windows: []float64{0, 0}}
	}

	spec := services.AppSpec{
		Name: "bp-profile-" + svc.Name,
		Services: []services.ServiceSpec{
			{
				Name: "proxy", Threads: 8192, Daemons: 64, CPUs: 8,
				InitialReplicas: 1, IngressCostMs: 0.05, IngressWindow: 4096,
				Handlers: proxyHandlers,
			},
			target,
		},
	}
	for class := range mix {
		spec.Classes = append(spec.Classes, services.ClassSpec{
			Name: class, Entry: "proxy", SLAPercentile: 99, SLAMillis: 1e9,
		})
	}

	eng := sim.NewEngine(cfg.Seed)
	app, err := services.NewAppWindow(eng, spec, cfg.Window)
	if err != nil {
		panic(err)
	}
	tested := app.Service("tested")
	tested.SetCPUFactor(factor)
	gen := workload.New(eng, app, workload.Constant{Value: total}, mix)
	gen.Start()

	// Warm up one window, then measure.
	warm := cfg.Window
	horizon := warm + sim.Time(cfg.WindowsPerStep)*cfg.Window
	eng.RunUntil(warm)
	busy0, cap0 := tested.CPUAccounting()
	eng.RunUntil(horizon)
	busy1, cap1 := tested.CPUAccounting()
	util := 0.0
	if cap1 > cap0 {
		util = (busy1 - busy0) / (cap1 - cap0)
	}

	// The proxy's latency as its clients see it — including the nested wait
	// on the tested service — is the app's end-to-end latency (the proxy is
	// the entry tier).
	var p99s []float64
	for w := warm; w < horizon; w += cfg.Window {
		var vals []float64
		for class := range mix {
			if rec := app.E2E.Class(class); rec != nil {
				vals = append(vals, rec.Between(w, w+cfg.Window)...)
			}
		}
		p99s = append(p99s, stats.Percentile(vals, 99))
	}
	return profilingStep{
		ProfileStep: ProfileStep{
			CPULimit:     svc.CPUs * factor,
			ProxyP99Mean: stats.Mean(p99s),
			ProxyP99Std:  stats.StdDev(p99s),
			ServiceP99:   tested.RespTime.PercentileBetween(warm, horizon, 99),
			Util:         util,
		},
		proxyP99Windows: p99s,
	}
}
